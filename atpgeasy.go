// Package atpgeasy is a from-scratch Go reproduction of "Why is ATPG
// Easy?" (Prasad, Chong, Keutzer, DAC 1999): SAT-based automatic test
// pattern generation in the Larrabee/TEGUS formulation, the caching-based
// backtracking solver of the paper's Algorithm 1, and the cut-width
// machinery that explains why practically encountered ATPG instances are
// tractable despite the problem's NP-completeness.
//
// This package is the facade over the implementation packages:
//
//	internal/logic       gate-level Boolean networks and simulation
//	internal/bench,blif  ISCAS .bench and BLIF netlist I/O
//	internal/decomp      technology decomposition to ≤k-input AND/OR
//	internal/cnf         CIRCUIT-SAT encoding (Figure 2)
//	internal/sat         Simple / Caching (Algorithm 1) / DPLL solvers
//	internal/atpg        fault lists, the C_ψ^ATPG miter, the engine
//	internal/faultsim    64-way parallel-pattern fault simulation
//	internal/hypergraph  cut-width (Definition 4.1)
//	internal/partition   Fiduccia–Mattheyses bipartitioning
//	internal/mla         min-cut linear arrangement (exact + recursive)
//	internal/core        DCSF counts, Theorem 4.1/Lemma 4.2/5.2 machinery
//	internal/kbounded    Fujiwara's k-bounded class (Section 3.2)
//	internal/qhorn       Horn/2-SAT/renamable/q-Horn recognition (3.1)
//	internal/bdd         ROBDDs and the Berman/McMillan bound (Section 6)
//	internal/gen         circuit generators and benchmark-suite stand-ins
//	internal/experiments the paper's figures as runnable experiments
//
// The quickstart is three calls: build (or load) a circuit, pick a fault,
// generate a test:
//
//	b := atpgeasy.NewBuilder("demo")
//	x, y := b.Input("x"), b.Input("y")
//	b.MarkOutput(b.Gate(atpgeasy.And, "g", x, y))
//	c := b.MustBuild()
//	res, _ := atpgeasy.GenerateTest(c, atpgeasy.Fault{Net: c.MustLookup("g"), StuckAt: false})
package atpgeasy

import (
	"context"
	"io"
	"time"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/bench"
	"atpgeasy/internal/blif"
	"atpgeasy/internal/checkpoint"
	"atpgeasy/internal/cnf"
	"atpgeasy/internal/core"
	"atpgeasy/internal/decomp"
	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/mla"
	"atpgeasy/internal/obs"
	"atpgeasy/internal/sat"
)

// Core circuit types, re-exported from the implementation packages.
type (
	// Circuit is an immutable combinational Boolean network.
	Circuit = logic.Circuit
	// Builder constructs circuits incrementally.
	Builder = logic.Builder
	// GateType enumerates gate functions.
	GateType = logic.GateType
	// Fault is a single stuck-at fault ψ(X, B).
	Fault = atpg.Fault
	// TestResult is the outcome of test generation for one fault.
	TestResult = atpg.Result
	// Summary aggregates a full-circuit ATPG run.
	Summary = atpg.Summary
	// RunOptions control a full-circuit ATPG run (collapsing, fault
	// dropping, per-fault budget, per-worker solver cache limit).
	RunOptions = atpg.RunOptions
	// Engine generates tests fault by fault on a configurable worker pool.
	Engine = atpg.Engine
	// Formula is a CNF formula.
	Formula = cnf.Formula
	// Solver decides CNF satisfiability.
	Solver = sat.Solver
	// SolverStats is the per-solve search counter set (nodes, decisions,
	// sub-formula cache hits/misses/evictions/bytes, ...); it appears per
	// fault in TestResult.SolverStats and run-wide in Summary.SolverTotals.
	SolverStats = sat.Stats
)

// DefaultCacheLimit is the Caching solver's sub-formula cache bound in
// bytes when no explicit limit is configured (RunOptions.CacheLimit or
// Caching.CacheLimit of 0).
const DefaultCacheLimit = sat.DefaultCacheLimit

// Random-pattern pre-phase defaults (RunOptions.RPTBatches and
// RPTIdleStop): up to DefaultRPTBatches 64-pattern batches, stopping
// early after DefaultRPTIdleStop consecutive batches with no new
// detections.
const (
	DefaultRPTBatches  = atpg.DefaultRPTBatches
	DefaultRPTIdleStop = atpg.DefaultRPTIdleStop
)

// DefaultGroupMax is the region-group size cap of incremental solving
// (RunOptions.GroupMax of 0): at most this many collapsed faults share
// one encoded region formula and one persistent solver instance.
const DefaultGroupMax = atpg.DefaultGroupMax

// Observability types: attach a Telemetry to RunOptions to get live
// metrics, a per-fault JSONL trace and periodic progress callbacks out of
// an engine run. All hooks are optional and nil-safe; a nil Telemetry (the
// default) costs one pointer check per fault.
type (
	// Telemetry bundles the engine's observability hooks.
	Telemetry = atpg.Telemetry
	// Progress is one snapshot of a running ATPG job (done/total counts,
	// coverage, ETA).
	Progress = atpg.Progress
	// PhaseTimes is the per-phase time breakdown of a Summary (CNF build,
	// SAT solve, fault simulation).
	PhaseTimes = atpg.PhaseTimes
	// EngineMetrics is the engine's counter/gauge/histogram set, registered
	// on a MetricsRegistry.
	EngineMetrics = atpg.Metrics
	// MetricsRegistry holds named metrics and renders them in Prometheus
	// text format.
	MetricsRegistry = obs.Registry
	// Trace is a JSONL event sink for per-fault trace events.
	Trace = obs.Trace
	// MetricsServer serves /metrics, /debug/vars and /debug/pprof for a
	// registry.
	MetricsServer = obs.Server
	// SpanTracer emits hierarchical span records (run → phase → chunk →
	// fault) into a Trace sink; wire one into Telemetry.Spans.
	SpanTracer = obs.Tracer
	// SpanContext identifies an in-flight span for parenting children.
	SpanContext = obs.SpanContext
	// FlightRing is the engine's always-on flight recorder: a fixed-size
	// lock-free ring of recent dispatch/solve/commit events, dumped on
	// panics and interrupts.
	FlightRing = obs.Ring
	// EffortLog is the append-only JSONL sink for per-fault effort
	// records (schema EffortSchema); wire one into RunOptions.EffortLog.
	EffortLog = atpg.EffortLog
	// EffortRecord joins one fault's structural features with the solver
	// effort its verdict took.
	EffortRecord = atpg.EffortRecord
	// EffortHeader is the first record of an effort log.
	EffortHeader = atpg.EffortHeader
	// FaultFeatures is the cheap structural feature vector of one fault
	// (fanout cone, sub-circuit gates, SCOAP, optional cut-width).
	FaultFeatures = atpg.FaultFeatures
)

// EffortSchema versions the effort-log record format.
const EffortSchema = atpg.EffortSchema

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEngineMetrics registers the engine's metric set on reg. shards sizes
// the per-worker sharded counters; pass the engine's worker count (values
// < 1 are clamped to 1).
func NewEngineMetrics(reg *MetricsRegistry, shards int) *EngineMetrics {
	return atpg.NewMetrics(reg, shards)
}

// NewTrace wraps w in a JSONL trace sink. Close flushes (and closes w if
// it is an io.Closer).
func NewTrace(w io.Writer) *Trace { return obs.NewTrace(w) }

// CreateTrace creates path and returns a JSONL trace sink writing to it.
func CreateTrace(path string) (*Trace, error) { return obs.CreateTrace(path) }

// NewSpanTracer returns a span tracer emitting into sink.
func NewSpanTracer(sink *Trace) *SpanTracer { return obs.NewTracer(sink) }

// NewFlightRing returns a flight-recorder ring holding the most recent n
// events (rounded up to a power of two, minimum 16).
func NewFlightRing(n int) *FlightRing { return obs.NewRing(n) }

// NewEffortLog wraps w in a buffered effort-record sink.
func NewEffortLog(w io.Writer) *EffortLog { return atpg.NewEffortLog(w) }

// CreateEffortLog opens (truncating) an effort log file at path.
func CreateEffortLog(path string) (*EffortLog, error) { return atpg.CreateEffortLog(path) }

// DecodeEffortLog parses an effort-log stream into its header and
// records, tolerating a truncated final line.
func DecodeEffortLog(r io.Reader) (EffortHeader, []EffortRecord, error) {
	return atpg.DecodeEffortLog(r)
}

// ServeMetrics starts an HTTP server on addr (host:port, port 0 picks one)
// exposing reg on /metrics (Prometheus text format), expvar on /debug/vars
// and the pprof profiles on /debug/pprof/. Close it when the run ends.
func ServeMetrics(addr string, reg *MetricsRegistry) (*MetricsServer, error) {
	return obs.Serve(addr, reg)
}

// Gate type constants.
const (
	Input  = logic.Input
	Const0 = logic.Const0
	Const1 = logic.Const1
	Buf    = logic.Buf
	Not    = logic.Not
	And    = logic.And
	Or     = logic.Or
	Nand   = logic.Nand
	Nor    = logic.Nor
	Xor    = logic.Xor
	Xnor   = logic.Xnor
)

// Per-fault ATPG outcomes. Errored marks a fault whose per-fault
// pipeline panicked; the run isolates the panic (stack in
// TestResult.Stack) and continues.
const (
	Detected   = atpg.Detected
	Untestable = atpg.Untestable
	Aborted    = atpg.Aborted
	Errored    = atpg.Errored
)

// Resilience types: escalating retries for over-budget faults, and the
// crash-recovery checkpoint journal (see internal/checkpoint and the
// README's "Crash recovery & retries" section).
type (
	// RetryTier summarizes one escalation tier of the post-sweep retry
	// phase (Summary.Retries).
	RetryTier = atpg.RetryTier
	// ResumeState pre-applies verdicts replayed from a previous run's
	// journal (RunOptions.Resume).
	ResumeState = atpg.ResumeState
	// ResumeRPT restores a journaled random-pattern pre-phase outcome.
	ResumeRPT = atpg.ResumeRPT
	// JournalSink receives final fault verdicts as they are decided
	// (RunOptions.Journal); *CheckpointJournal implements it.
	JournalSink = atpg.JournalSink
	// CheckpointJournal is an append-only JSONL crash-recovery journal.
	CheckpointJournal = checkpoint.Journal
	// CheckpointState is the replayed content of a journal.
	CheckpointState = checkpoint.State
	// CheckpointHeader binds a journal to one exact run.
	CheckpointHeader = checkpoint.Header
	// CheckpointOptions configure journal durability (per-record fsync,
	// rotation threshold).
	CheckpointOptions = checkpoint.Options
)

// Retry-phase defaults (RunOptions.RetryTiers / RetryBackoff): three
// escalation tiers, each with four times the previous budget.
const (
	DefaultRetryTiers   = atpg.DefaultRetryTiers
	DefaultRetryBackoff = atpg.DefaultRetryBackoff
)

// OpenCheckpoint creates (or, with a prior Load result, continues) a
// crash-recovery journal; pass it as RunOptions.Journal.
func OpenCheckpoint(path string, hdr CheckpointHeader, prior *CheckpointState, opt CheckpointOptions) (*CheckpointJournal, error) {
	return checkpoint.New(path, hdr, prior, opt)
}

// LoadCheckpoint replays the journal at path, tolerating the truncated
// trailing record a hard kill can leave.
func LoadCheckpoint(path string) (*CheckpointState, error) { return checkpoint.Load(path) }

// CheckpointFingerprint hashes everything that determines a run's
// verdict and vector identity, for CheckpointHeader.FaultHash.
func CheckpointFingerprint(c *Circuit, faults []Fault, opt RunOptions) uint64 {
	return atpg.CheckpointFingerprint(c, faults, opt)
}

// NewBuilder returns an empty circuit builder.
func NewBuilder(name string) *Builder { return logic.NewBuilder(name) }

// ReadBench parses an ISCAS .bench netlist.
func ReadBench(r io.Reader, name string) (*Circuit, error) { return bench.Read(r, name) }

// WriteBench writes an ISCAS .bench netlist.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// ReadBLIF parses a combinational BLIF model.
func ReadBLIF(r io.Reader) (*Circuit, error) { return blif.Read(r) }

// WriteBLIF writes a combinational BLIF model.
func WriteBLIF(w io.Writer, c *Circuit) error { return blif.Write(w, c) }

// Decompose maps the circuit onto ≤k-input AND/OR gates with inversions —
// the paper's tech_decomp step (k = 3 in all its experiments).
func Decompose(c *Circuit, k int) (*Circuit, error) { return decomp.Decompose(c, k) }

// AllFaults enumerates both stuck-at faults on every net.
func AllFaults(c *Circuit) []Fault { return atpg.AllFaults(c) }

// CollapseFaults drops faults structurally equivalent to a fault on their
// reader's output net.
func CollapseFaults(c *Circuit, faults []Fault) []Fault { return atpg.Collapse(c, faults) }

// GenerateTest runs SAT-based test generation for one fault with the
// default (DPLL) solver and verifies any produced vector by simulation.
func GenerateTest(c *Circuit, f Fault) (TestResult, error) {
	eng := &atpg.Engine{VerifyTests: true}
	return eng.TestFault(c, f)
}

// RunATPG generates tests for every collapsed stuck-at fault in the
// classic TEGUS flow: equivalence + dominance collapsing, a seeded
// random-pattern pre-phase that fault-simulates away the easy faults,
// SAT-based generation for the survivors, and fault dropping of later
// faults covered by earlier vectors. It runs on GOMAXPROCS workers; use
// RunATPGParallel for explicit worker counts, budgets or cancellation.
func RunATPG(c *Circuit) (*Summary, error) {
	return RunATPGParallel(context.Background(), c, 0, 0)
}

// RunATPGParallel is RunATPG with explicit parallelism and robustness
// controls: workers fault-solving goroutines (0 = GOMAXPROCS), a
// per-fault SAT budget (0 = unlimited), and a context whose cancellation
// drains the run and returns the partial summary with ctx.Err().
// Summary.Results and Vectors come back in fault-list order regardless of
// worker completion order. Solving is incremental (region-grouped, learned
// clauses shared between a region's faults); set RunOptions.Incremental
// yourself via Engine.Run to ablate it.
func RunATPGParallel(ctx context.Context, c *Circuit, workers int, perFaultBudget time.Duration) (*Summary, error) {
	eng := &atpg.Engine{VerifyTests: true, Workers: workers}
	return eng.Run(ctx, c, atpg.RunOptions{
		Collapse:       true,
		Dominance:      true,
		DropDetected:   true,
		Incremental:    true,
		RPTBatches:     atpg.DefaultRPTBatches,
		Seed:           1,
		PerFaultBudget: perFaultBudget,
	})
}

// VerifyTest checks by simulation that the vector detects the fault.
func VerifyTest(c *Circuit, f Fault, vec []bool) bool { return atpg.VerifyTest(c, f, vec) }

// EncodeATPG builds the ATPG-SAT formula CIRCUIT-SAT(C_ψ^ATPG) for a
// fault: the instance class whose tractability the paper explains.
func EncodeATPG(c *Circuit, f Fault) (*Formula, error) {
	m, err := atpg.NewMiter(c, f)
	if err != nil {
		return nil, err
	}
	return m.Encode()
}

// EncodeCircuitSAT builds the CIRCUIT-SAT formula f(C) of Section 2.
func EncodeCircuitSAT(c *Circuit) (*Formula, error) { return cnf.FromCircuit(c, nil) }

// NewDPLL returns the production conflict-driven solver (the TEGUS role).
func NewDPLL() Solver { return &sat.DPLL{} }

// NewCaching returns the paper's Algorithm 1 — caching-based backtracking
// under the given static variable ordering (nil = index order). The
// sub-formula cache is bounded by DefaultCacheLimit; use NewCachingBounded
// to tune it.
func NewCaching(order []int) Solver { return &sat.Caching{Order: order} }

// NewCachingBounded is NewCaching with an explicit sub-formula cache
// memory bound in bytes per solver/worker (0 = DefaultCacheLimit). A full
// cache evicts least-recently-referenced entries, trading pruning power
// for flat memory; results are unaffected.
func NewCachingBounded(order []int, cacheLimit int64) Solver {
	return &sat.Caching{Order: order, CacheLimit: cacheLimit}
}

// NewSimple returns plain backtracking under the given static ordering.
func NewSimple(order []int) Solver { return &sat.Simple{Order: order} }

// EstimateCutWidth estimates the minimum cut-width of the circuit
// (Definition 4.1) by min-cut linear arrangement and returns the witness
// node ordering. The ordering doubles as a variable ordering for the
// caching solver on f(C), realizing the Theorem 4.1 bound.
func EstimateCutWidth(c *Circuit) (int, []int) {
	return mla.EstimateCutWidth(hypergraph.FromCircuit(c), mla.Options{})
}

// FaultWidth is one Figure 8 datapoint: the size and estimated cut-width
// of the subcircuit C_ψ^sub relevant to a fault.
type FaultWidth = core.FaultWidth

// WidthProfile computes a FaultWidth point for every fault — the data
// behind the paper's Figure 8.
func WidthProfile(c *Circuit, faults []Fault) ([]FaultWidth, error) {
	return core.WidthProfile(c, faults, mla.Options{})
}

// Classification is the empirical log-bounded-width verdict of Definition
// 5.1: the fitted growth curves (best first) and whether the logarithmic
// family wins.
type Classification = core.Classification

// ClassifyWidthGrowth fits linear/logarithmic/power curves to a width
// profile and reports whether the circuit family looks log-bounded-width
// (and hence provably easy for ATPG, per Lemma 5.1).
func ClassifyWidthGrowth(points []FaultWidth) (Classification, error) {
	return core.ClassifyWidthGrowth(points)
}

// Theorem41Bound is the paper's running-time bound n·2^(2·k_fo·W) for
// Algorithm 1 on a CIRCUIT-SAT formula.
func Theorem41Bound(n, kfo, width int) float64 { return core.Theorem41Bound(n, kfo, width) }

// PolyATPGResult is the outcome of the provably width-bounded ATPG
// procedure.
type PolyATPGResult = core.PolyATPGResult

// GenerateTestBounded runs the paper's tractability argument as an
// algorithm (Lemma 5.1): MLA-order the circuit, derive the 2W+2 miter
// ordering of Lemma 4.2, and decide the instance with the caching-based
// backtracking solver. The result reports the widths and the Theorem 4.1
// node guarantee alongside the verdict — slower than GenerateTest's DPLL,
// but with a provable bound on log-bounded-width circuits.
func GenerateTestBounded(c *Circuit, f Fault) (*PolyATPGResult, error) {
	return core.PolyATPG(c, f, mla.Options{})
}
