module atpgeasy

go 1.22
