package core

import (
	"math"
	"math/rand"
	"testing"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/cnf"
	"atpgeasy/internal/fit"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/kbounded"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/mla"
	"atpgeasy/internal/sat"
)

// singleOutputRandom builds a random single-output circuit (the setting of
// Section 4.2's analysis).
func singleOutputRandom(rng *rand.Rand, gates int) *logic.Circuit {
	b := logic.NewBuilder("rand1")
	nin := 3 + rng.Intn(3)
	for i := 0; i < nin; i++ {
		b.Input("in" + string(rune('a'+i)))
	}
	types := []logic.GateType{logic.And, logic.Or}
	for i := 0; i < gates; i++ {
		gt := types[rng.Intn(len(types))]
		arity := 2
		fanin := make([]int, arity)
		neg := make([]bool, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(b.NumNodes())
			neg[j] = rng.Intn(4) == 0
		}
		b.GateN(gt, "g"+string(rune('A'+i%26))+string(rune('0'+i/26)), fanin, neg)
	}
	b.MarkOutput(b.NumNodes() - 1)
	return b.MustBuild()
}

// TestLemma41Bound: for single-output circuits, the number of distinct
// consistent sub-formulas after assigning any prefix of the ordering is
// at most 2^(2·k_fo·cut) where cut is the hypergraph cut at that prefix.
func TestLemma41Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	circuits := []*logic.Circuit{logic.Figure4a()}
	for i := 0; i < 6; i++ {
		circuits = append(circuits, singleOutputRandom(rng, 8))
	}
	for ci, c := range circuits {
		f, err := cnf.FromCircuit(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := hypergraph.FromCircuit(c)
		order := c.TopoOrder() // any fixed ordering; the lemma holds per cut
		profile, err := g.CutProfile(order)
		if err != nil {
			t.Fatal(err)
		}
		kfo := c.MaxFanout()
		if kfo < 1 {
			kfo = 1
		}
		for p := 1; p < c.NumNodes() && p <= 14; p++ {
			count, err := CountDCSF(f, order, p)
			if err != nil {
				t.Fatal(err)
			}
			bound := Lemma41Bound(kfo, profile[p-1])
			if float64(count) > bound {
				t.Errorf("circuit %d prefix %d: DCSF %d > bound %g (cut %d, kfo %d)",
					ci, p, count, bound, profile[p-1], kfo)
			}
		}
	}
}

// TestLemma41CutZExample reproduces the Section 4.2 worked example: for
// the cut δ_V = {b,c,f,a,h} of Figure 4(a), the naive bound is 2^5
// sub-formulas but the single crossing net (between h and i) limits the
// count to at most 2^2; the actual count is even smaller.
func TestLemma41CutZExample(t *testing.T) {
	c := logic.Figure4a()
	f, err := cnf.FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	order := logic.Figure4aOrderingA(c)
	count, err := CountDCSF(f, order, 5)
	if err != nil {
		t.Fatal(err)
	}
	// k_fo = 1 for the tree-shaped example; cut Z has size 1 → bound 2^2.
	if bound := Lemma41Bound(c.MaxFanout(), 1); float64(count) > bound {
		t.Errorf("cut Z: DCSF %d > bound %g", count, bound)
	}
	if count < 1 {
		t.Errorf("cut Z: DCSF %d, expected ≥ 1", count)
	}
}

func TestCountDCSFErrors(t *testing.T) {
	f := cnf.NewFormula(2)
	if _, err := CountDCSF(f, []int{0, 1}, 3); err == nil {
		t.Error("prefix beyond ordering accepted")
	}
	if _, err := CountDCSF(f, make([]int, 30), 25); err == nil {
		t.Error("oversized prefix accepted")
	}
}

// TestTheorem41Bound: the caching solver's node count on f(C), under an
// ordering of width W, stays within a small constant of n·2^(2·k_fo·W).
func TestTheorem41Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 8; trial++ {
		c := singleOutputRandom(rng, 12)
		f, err := cnf.FromCircuit(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := hypergraph.FromCircuit(c)
		w, order := mla.EstimateCutWidth(g, mla.Options{})
		sol := (&sat.Caching{Order: order}).Solve(f)
		if sol.Status == sat.Unknown {
			t.Fatal("solver aborted")
		}
		bound := 4 * Theorem41Bound(c.NumNodes(), c.MaxFanout(), w)
		if float64(sol.Stats.Nodes) > bound {
			t.Errorf("trial %d: nodes %d > 4·bound %g (n=%d kfo=%d W=%d)",
				trial, sol.Stats.Nodes, bound, c.NumNodes(), c.MaxFanout(), w)
		}
		// And the level-width bound behind the theorem: max DCSF over
		// prefixes ≤ 2^(2·k_fo·W).
		if c.NumNodes() <= 14 {
			maxDCSF, err := MaxDCSF(f, order)
			if err != nil {
				t.Fatal(err)
			}
			if float64(maxDCSF) > Lemma41Bound(c.MaxFanout(), w) {
				t.Errorf("trial %d: max DCSF %d > %g", trial, maxDCSF, Lemma41Bound(c.MaxFanout(), w))
			}
		}
	}
}

// TestLemma42MiterOrdering: the derived miter ordering has width at most
// 2·W(C,h) + 2, for random circuits, faults and orderings.
func TestLemma42MiterOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		c := singleOutputRandom(rng, 10+rng.Intn(15))
		gC := hypergraph.FromCircuit(c)
		var order []int
		if trial%2 == 0 {
			_, order = mla.EstimateCutWidth(gC, mla.Options{})
		} else {
			order = rng.Perm(c.NumNodes())
		}
		wC, err := gC.CutWidth(order)
		if err != nil {
			t.Fatal(err)
		}
		f := atpg.Fault{Net: rng.Intn(c.NumNodes()), StuckAt: rng.Intn(2) == 1}
		m, err := atpg.NewMiter(c, f)
		if err == atpg.ErrUnobservable {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		mOrder, err := MiterOrdering(m, order)
		if err != nil {
			t.Fatal(err)
		}
		gM := hypergraph.FromCircuit(m.Circuit)
		wM, err := gM.CutWidth(mOrder)
		if err != nil {
			t.Fatal(err)
		}
		if wM > Lemma42Bound(wC) {
			t.Errorf("trial %d fault %s: W(miter)=%d > 2·%d+2", trial, f.Name(c), wM, wC)
		}
	}
}

// TestFigure7MiterWidth reproduces Figure 7: from ordering A (width 3) of
// the Figure 4(a) circuit, the derived ordering A' gives the ATPG circuit
// for the stuck-at-1 fault on f a cut-width of at most 2·3+2; the paper
// reports 4.
func TestFigure7MiterWidth(t *testing.T) {
	c := logic.Figure4a()
	m, err := atpg.NewMiter(c, atpg.Fault{Net: c.MustLookup("f"), StuckAt: true})
	if err != nil {
		t.Fatal(err)
	}
	order := logic.Figure4aOrderingA(c)
	mOrder, err := MiterOrdering(m, order)
	if err != nil {
		t.Fatal(err)
	}
	g := hypergraph.FromCircuit(m.Circuit)
	w, err := g.CutWidth(mOrder)
	if err != nil {
		t.Fatal(err)
	}
	if w > Lemma42Bound(3) {
		t.Errorf("W(miter, A') = %d > 8", w)
	}
	t.Logf("W(miter, A') = %d (paper's Figure 7 reports 4)", w)
	if w > 5 {
		t.Errorf("W(miter, A') = %d, expected close to the paper's 4", w)
	}
}

func TestMiterOrderingErrors(t *testing.T) {
	c := logic.Figure4a()
	m, err := atpg.NewMiter(c, atpg.Fault{Net: c.MustLookup("f"), StuckAt: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MiterOrdering(m, []int{0, 1}); err == nil {
		t.Error("partial ordering accepted")
	}
	if _, err := MiterOrdering(m, []int{0, 1, 2, 3, 4, 5, 6, 7, 99}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

// TestLemma52TreeWidth: balanced k-ary trees admit orderings of width at
// most (k-1)·log₂(n).
func TestLemma52TreeWidth(t *testing.T) {
	for _, tc := range []struct{ k, depth int }{
		{2, 3}, {2, 6}, {2, 10}, {3, 3}, {3, 5}, {4, 3}, {5, 3},
	} {
		c := gen.KaryTree(tc.k, tc.depth)
		order, err := TreeOrdering(c)
		if err != nil {
			t.Fatalf("k=%d d=%d: %v", tc.k, tc.depth, err)
		}
		g := hypergraph.FromCircuit(c)
		w, err := g.CutWidth(order)
		if err != nil {
			t.Fatal(err)
		}
		// Our DFS post-order witness achieves (k-1)·log2(n) + 1: at the
		// deepest point each of the ~log_k(n) ancestors contributes up to
		// k-1 completed-child edges plus one in-progress leaf edge. The
		// lemma's exact construction lives in the unavailable tech report
		// [7]; an additive +1 preserves the asymptotic claim.
		bound := Lemma52Bound(tc.k, c.NumNodes()) + 1
		if float64(w) > bound {
			t.Errorf("k=%d depth=%d n=%d: width %d > (k-1)·log2(n)+1 = %.2f",
				tc.k, tc.depth, c.NumNodes(), w, bound)
		}
	}
}

func TestTreeOrderingRejectsNonTrees(t *testing.T) {
	b := logic.NewBuilder("dag")
	x := b.Input("x")
	y := b.Input("y")
	a := b.Gate(logic.And, "a", x, y)
	o1 := b.Gate(logic.Or, "o1", a, x) // x has fanout 2
	b.MarkOutput(o1)
	c := b.MustBuild()
	if _, err := TreeOrdering(c); err == nil {
		t.Error("non-tree accepted")
	}
}

func TestTreeOrderingForest(t *testing.T) {
	// Two independent trees (multi-output forest).
	b := logic.NewBuilder("forest")
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	w := b.Input("w")
	b.MarkOutput(b.Gate(logic.And, "a", x, y))
	b.MarkOutput(b.Gate(logic.Or, "o", z, w))
	c := b.MustBuild()
	order, err := TreeOrdering(c)
	if err != nil {
		t.Fatal(err)
	}
	g := hypergraph.FromCircuit(c)
	wd, err := g.CutWidth(order)
	if err != nil {
		t.Fatal(err)
	}
	if wd > 2 {
		t.Errorf("forest width = %d", wd)
	}
}

func TestWidthProfileAndClassify(t *testing.T) {
	c := gen.RippleAdder(8)
	faults := atpg.Collapse(c, atpg.AllFaults(c))
	points, err := WidthProfile(c, faults, mla.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(faults) {
		t.Fatalf("points = %d, faults = %d", len(points), len(faults))
	}
	for _, p := range points {
		if p.SubSize <= 0 || p.Width < 0 {
			t.Errorf("bad point %+v", p)
		}
		if p.SubSize > c.NumNodes() {
			t.Errorf("subcircuit larger than circuit: %+v", p)
		}
	}
}

func TestClassifyWidthGrowthSynthetic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pts []FaultWidth
	for i := 0; i < 300; i++ {
		size := 10 + rng.Intn(5000)
		w := int(3*math.Log(float64(size))+1) + rng.Intn(2)
		pts = append(pts, FaultWidth{SubSize: size, Width: w})
	}
	cl, err := ClassifyWidthGrowth(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.LogBounded {
		t.Errorf("log-generated data classified as %v", cl.Curves[0].Kind)
	}
	// Linearly growing widths must not be classified log-bounded.
	var lin []FaultWidth
	for i := 0; i < 300; i++ {
		size := 10 + rng.Intn(5000)
		lin = append(lin, FaultWidth{SubSize: size, Width: size/10 + rng.Intn(3)})
	}
	cl2, err := ClassifyWidthGrowth(lin)
	if err != nil {
		t.Fatal(err)
	}
	if cl2.LogBounded {
		t.Error("linear data classified log-bounded")
	}
	if cl2.Curves[0].Kind == fit.Logarithmic {
		t.Error("linear data best-fitted by log")
	}
	if _, err := ClassifyWidthGrowth(pts[:2]); err == nil {
		t.Error("2 points accepted")
	}
}

func TestMultiOutputWidth(t *testing.T) {
	c := logic.Figure4a()
	w, err := MultiOutputWidth(c, mla.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w < 2 || w > 3 {
		t.Errorf("single-output width = %d, want 2..3", w)
	}
	// Multi-output: ripple adder cones are narrow.
	add := gen.RippleAdder(6)
	w2, err := MultiOutputWidth(add, mla.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2 < 1 || w2 > 8 {
		t.Errorf("ripple6 multi-output width = %d", w2)
	}
	empty := logic.NewBuilder("none").MustBuild()
	if _, err := MultiOutputWidth(empty, mla.Options{}); err == nil {
		t.Error("no-output circuit accepted")
	}
}

func TestBoundsFormulas(t *testing.T) {
	if Lemma41Bound(1, 3) != 64 {
		t.Errorf("Lemma41Bound(1,3) = %g", Lemma41Bound(1, 3))
	}
	if Theorem41Bound(10, 1, 2) != 160 {
		t.Errorf("Theorem41Bound = %g", Theorem41Bound(10, 1, 2))
	}
	if Lemma42Bound(3) != 8 {
		t.Errorf("Lemma42Bound(3) = %d", Lemma42Bound(3))
	}
	if got := Lemma52Bound(3, 8); math.Abs(got-6) > 1e-9 {
		t.Errorf("Lemma52Bound(3,8) = %g", got)
	}
}

// TestLemma43MultiOutput: the 2W+2 miter-ordering bound also holds for
// multi-output circuits (Lemma 4.3), with W the width of the whole-
// circuit arrangement.
func TestLemma43MultiOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 20; trial++ {
		c := multiOutputRandom(rng, 12+rng.Intn(10))
		gC := hypergraph.FromCircuit(c)
		_, order := mla.EstimateCutWidth(gC, mla.Options{})
		wC, err := gC.CutWidth(order)
		if err != nil {
			t.Fatal(err)
		}
		f := atpg.Fault{Net: rng.Intn(c.NumNodes()), StuckAt: rng.Intn(2) == 1}
		m, err := atpg.NewMiter(c, f)
		if err == atpg.ErrUnobservable {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		mOrder, err := MiterOrdering(m, order)
		if err != nil {
			t.Fatal(err)
		}
		gM := hypergraph.FromCircuit(m.Circuit)
		wM, err := gM.CutWidth(mOrder)
		if err != nil {
			t.Fatal(err)
		}
		if wM > Lemma42Bound(wC) {
			t.Errorf("trial %d fault %s: W(miter)=%d > 2·%d+2", trial, f.Name(c), wM, wC)
		}
	}
}

func multiOutputRandom(rng *rand.Rand, gates int) *logic.Circuit {
	b := logic.NewBuilder("randm")
	nin := 3 + rng.Intn(3)
	for i := 0; i < nin; i++ {
		b.Input("in" + string(rune('a'+i)))
	}
	types := []logic.GateType{logic.And, logic.Or}
	for i := 0; i < gates; i++ {
		gt := types[rng.Intn(len(types))]
		fanin := []int{rng.Intn(b.NumNodes()), rng.Intn(b.NumNodes())}
		neg := []bool{rng.Intn(4) == 0, rng.Intn(4) == 0}
		b.GateN(gt, "g"+string(rune('A'+i%26))+string(rune('0'+i/26)), fanin, neg)
	}
	b.MarkOutput(b.NumNodes() - 1)
	b.MarkOutput(b.NumNodes() - 2)
	b.MarkOutput(b.NumNodes() - 4)
	return b.MustBuild()
}

// TestTheorem51KBounded demonstrates Theorem 5.1 empirically: the classic
// k-bounded families (ripple adders, cellular arrays, decoders — Section
// 3.2's examples from Fujiwara) have cut-widths that stay far below any
// linear growth as the circuits scale, consistent with log-bounded-width.
func TestTheorem51KBounded(t *testing.T) {
	families := []struct {
		name  string
		build func(n int) *logic.Circuit
		sizes []int
	}{
		{"ripple", func(n int) *logic.Circuit { return gen.RippleAdder(n) }, []int{4, 16, 64, 256}},
		{"cell1d", func(n int) *logic.Circuit { return gen.CellularArray1D(n) }, []int{4, 16, 64, 256}},
		{"decoder", func(n int) *logic.Circuit { return gen.Decoder(n) }, []int{2, 4, 6, 8}},
	}
	for _, fam := range families {
		var prevW, prevN int
		for _, n := range fam.sizes {
			c := fam.build(n)
			g := hypergraph.FromCircuit(c)
			w, _ := mla.EstimateCutWidth(g, mla.Options{})
			size := c.NumNodes()
			// Log-bounded-width families: the width must grow far slower
			// than the size. Require W ≤ 4·log2(size) + 4, a generous
			// constant that linear-width families (multipliers) blow
			// through immediately.
			bound := 4*math.Log2(float64(size)) + 4
			if float64(w) > bound {
				t.Errorf("%s n=%d (size %d): width %d > 4·log2+4 = %.1f", fam.name, n, size, w, bound)
			}
			if prevN > 0 && size > 2*prevN && w > 4*prevW+4 {
				t.Errorf("%s: width jumped %d → %d while size %d → %d", fam.name, prevW, w, prevN, size)
			}
			prevW, prevN = w, size
		}
	}
}

// TestKBoundedWitnessAgreesWithWidth ties the two classifications
// together on the canonical example: the ripple adder is certified
// 3-bounded by its full-adder partition, and its measured width profile
// is classified log-bounded.
func TestKBoundedWitnessAgreesWithWidth(t *testing.T) {
	c := gen.RippleAdder(16)
	if _, ok := kbounded.Greedy(c, 3); !ok {
		// The greedy partitioner merges fanout-free regions; the ripple
		// adder certifies with the canonical full-adder blocks, which
		// greedy may or may not find — accept either, but the width story
		// must hold regardless.
		t.Log("greedy did not certify 3-boundedness (the canonical witness needs full-adder blocks)")
	}
	faults := atpg.Collapse(c, atpg.AllFaults(c))
	points, err := WidthProfile(c, faults, mla.Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxW := 0
	for _, p := range points {
		if p.Width > maxW {
			maxW = p.Width
		}
	}
	if float64(maxW) > 3*math.Log2(float64(c.NumNodes()))+4 {
		t.Errorf("ripple16 max per-fault width %d exceeds the log-bounded envelope", maxW)
	}
}

// TestPolyATPG: the width-bounded ATPG procedure agrees with exhaustive
// simulation and respects its own Theorem 4.1 node guarantee (within the
// small constant the backtracking tree's branching adds).
func TestPolyATPG(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 6; trial++ {
		c := singleOutputRandom(rng, 10)
		for _, f := range []atpg.Fault{
			{Net: rng.Intn(c.NumNodes()), StuckAt: false},
			{Net: rng.Intn(c.NumNodes()), StuckAt: true},
		} {
			res, err := PolyATPG(c, f, mla.Options{})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, f.Name(c), err)
			}
			want := exhaustivelyTestablePoly(c, f)
			if (res.Status == atpg.Detected) != want {
				t.Errorf("trial %d %s: %v, testable=%v", trial, f.Name(c), res.Status, want)
			}
			if res.Status == atpg.Detected || res.Status == atpg.Untestable {
				if res.MiterWidth > Lemma42Bound(res.CircuitWidth) {
					t.Errorf("trial %d: miter width %d > 2·%d+2", trial, res.MiterWidth, res.CircuitWidth)
				}
				if float64(res.Nodes) > 4*res.NodeBound {
					t.Errorf("trial %d: %d nodes > 4× bound %g", trial, res.Nodes, res.NodeBound)
				}
			}
		}
	}
	// Unobservable fault short-circuits to untestable.
	b := logic.NewBuilder("dead")
	x := b.Input("x")
	b.Gate(logic.Not, "dead", x)
	o := b.Gate(logic.Buf, "o", x)
	b.MarkOutput(o)
	c := b.MustBuild()
	res, err := PolyATPG(c, atpg.Fault{Net: c.MustLookup("dead")}, mla.Options{})
	if err != nil || res.Status != atpg.Untestable {
		t.Errorf("unobservable: %v %v", res, err)
	}
}

func exhaustivelyTestablePoly(c *logic.Circuit, f atpg.Fault) bool {
	nin := len(c.Inputs)
	for pat := 0; pat < 1<<uint(nin); pat++ {
		in := make([]bool, nin)
		for i := range in {
			in[i] = pat>>uint(i)&1 == 1
		}
		if atpg.VerifyTest(c, f, in) {
			return true
		}
	}
	return false
}

// TestClassifyRejectsMultiplierGrowth: the array multiplier family (the
// C6288 class, Θ(√n) cut-width) must not be classified log-bounded.
func TestClassifyRejectsMultiplierGrowth(t *testing.T) {
	var pts []FaultWidth
	for _, n := range []int{3, 4, 6, 8} {
		c := gen.ArrayMultiplier(n)
		faults := atpg.Collapse(c, atpg.AllFaults(c))
		step := len(faults)/20 + 1
		var sample []atpg.Fault
		for i := 0; i < len(faults); i += step {
			sample = append(sample, faults[i])
		}
		p, err := WidthProfile(c, sample, mla.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p...)
	}
	cl, err := ClassifyWidthGrowth(pts)
	if err != nil {
		t.Fatal(err)
	}
	if cl.LogBounded {
		t.Errorf("multiplier family classified log-bounded; best fit %v", cl.Curves[0])
	}
}
