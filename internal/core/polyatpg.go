package core

import (
	"fmt"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/mla"
	"atpgeasy/internal/sat"
)

// PolyATPGResult is the outcome of the width-bounded ATPG procedure.
type PolyATPGResult struct {
	Status atpg.Status
	Vector []bool
	// CircuitWidth is W(C, h) for the MLA-derived ordering of the parent
	// circuit; MiterWidth is the derived miter ordering's width, at most
	// 2·CircuitWidth + 2 by Lemma 4.2/4.3.
	CircuitWidth int
	MiterWidth   int
	// NodeBound is the Theorem 4.1 guarantee n·2^(2·k_fo·W_miter) on the
	// backtracking nodes of the caching solver; Nodes is what it used.
	NodeBound float64
	Nodes     int64
}

// PolyATPG is the paper's tractability argument turned into an algorithm
// (Lemma 5.1): order the circuit by approximate min-cut linear
// arrangement, derive the C_ψ^ATPG ordering of Lemma 4.2 (width ≤ 2W+2),
// and decide the ATPG-SAT instance with the caching-based backtracking
// solver (Algorithm 1) under that ordering. For log-bounded-width
// circuits the node bound — and hence the runtime — is polynomial in the
// circuit size.
//
// It is not the fastest engine in this module (the DPLL engine is); it is
// the *provably bounded* one, and the returned widths and node counts let
// callers check the guarantee on their own circuits.
func PolyATPG(c *logic.Circuit, f atpg.Fault, opt mla.Options) (*PolyATPGResult, error) {
	m, err := atpg.NewMiter(c, f)
	if err == atpg.ErrUnobservable {
		return &PolyATPGResult{Status: atpg.Untestable}, nil
	}
	if err != nil {
		return nil, err
	}
	g := hypergraph.FromCircuit(c)
	wC, order := mla.EstimateCutWidth(g, opt)
	mOrder, err := MiterOrdering(m, order)
	if err != nil {
		return nil, err
	}
	gm := hypergraph.FromCircuit(m.Circuit)
	wM, err := gm.CutWidth(mOrder)
	if err != nil {
		return nil, err
	}
	formula, err := m.Encode()
	if err != nil {
		return nil, err
	}
	kfo := m.Circuit.MaxFanout()
	if kfo < 1 {
		kfo = 1
	}
	res := &PolyATPGResult{
		CircuitWidth: wC,
		MiterWidth:   wM,
		NodeBound:    Theorem41Bound(m.Circuit.NumNodes(), kfo, wM),
	}
	sol := (&sat.Caching{Order: mOrder}).Solve(formula)
	res.Nodes = sol.Stats.Nodes
	switch sol.Status {
	case sat.Sat:
		res.Status = atpg.Detected
		res.Vector = m.ExtractTest(c, sol.Model)
		if !atpg.VerifyTest(c, f, res.Vector) {
			return nil, fmt.Errorf("core: PolyATPG produced a non-detecting vector for %s", f.Name(c))
		}
	case sat.Unsat:
		res.Status = atpg.Untestable
	default:
		res.Status = atpg.Aborted
	}
	return res, nil
}
