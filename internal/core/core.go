// Package core implements the primary contribution of "Why is ATPG Easy?":
// the characterization of ATPG-SAT complexity in terms of circuit
// cut-width (Sections 4 and 5 of the paper).
//
// It provides:
//
//   - distinct-consistent-sub-formula (DCSF) counting and the Lemma 4.1
//     bound  F(δ) ≤ 2^(2·k_fo·|cut|);
//   - the Theorem 4.1 runtime bound  R(f) = O(n·2^(2·k_fo·W(C,h)))  for
//     the caching-based backtracking solver;
//   - the Lemma 4.2/4.3 ordering construction: from an ordering of C,
//     an ordering of the ATPG miter C_ψ^ATPG with width ≤ 2·W(C,h) + 2;
//   - the Lemma 5.2 tree ordering with width ≤ (k-1)·log₂(n);
//   - per-fault width profiles of C_ψ^sub (the Figure 8 data series) and
//     the log-bounded-width classification of Definition 5.1.
package core

import (
	"fmt"
	"math"
	"sort"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/cnf"
	"atpgeasy/internal/fit"
	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/mla"
)

// CountDCSF enumerates every truth assignment to the first prefixLen
// variables of the ordering and counts the distinct consistent
// sub-formulas (residuals without null clauses) of f — the quantity
// F(δ_V) bounded by Lemma 4.1. It is exponential in prefixLen (≤ 24).
func CountDCSF(f *cnf.Formula, order []int, prefixLen int) (int, error) {
	if prefixLen < 0 || prefixLen > len(order) {
		return 0, fmt.Errorf("core: prefix length %d out of range", prefixLen)
	}
	if prefixLen > 24 {
		return 0, fmt.Errorf("core: DCSF enumeration limited to 24 prefix variables, got %d", prefixLen)
	}
	assign := make([]cnf.Value, f.NumVars)
	seen := make(map[string]struct{})
	var buf []byte
	for pat := 0; pat < 1<<uint(prefixLen); pat++ {
		for i := 0; i < prefixLen; i++ {
			assign[order[i]] = cnf.ValueOf(pat>>uint(i)&1 == 1)
		}
		if f.HasNullClause(assign) {
			continue // not a consistent sub-formula
		}
		buf = f.AppendResidualKey(buf[:0], assign)
		if _, ok := seen[string(buf)]; !ok {
			seen[string(buf)] = struct{}{}
		}
	}
	return len(seen), nil
}

// MaxDCSF returns the maximum DCSF count over all prefixes of the
// ordering — the quantity that bounds the caching solver's backtracking
// tree level widths.
func MaxDCSF(f *cnf.Formula, order []int) (int, error) {
	max := 0
	for p := 1; p <= len(order); p++ {
		n, err := CountDCSF(f, order, p)
		if err != nil {
			return 0, err
		}
		if n > max {
			max = n
		}
	}
	return max, nil
}

// Lemma41Bound is the bound of Lemma 4.1:  F(δ) ≤ 2^(2·k_fo·cut).
func Lemma41Bound(kfo, cut int) float64 {
	return math.Pow(2, float64(2*kfo*cut))
}

// Theorem41Bound is the running-time bound of Theorem 4.1 for Algorithm 1
// on the CIRCUIT-SAT formula of a circuit with n variables, fanout bound
// k_fo, and cut-width W under the chosen ordering:  n · 2^(2·k_fo·W).
func Theorem41Bound(n, kfo, width int) float64 {
	return float64(n) * math.Pow(2, float64(2*kfo*width))
}

// MiterOrdering realizes Lemma 4.2/4.3: given an ordering of the parent
// circuit's nodes, it constructs an ordering h_ψ of the miter C_ψ^ATPG
// with W(C_ψ^ATPG, h_ψ) ≤ 2·W(C, h) + 2. The construction places the
// faulty copy of every duplicated node immediately after its good copy,
// and each output XOR immediately after its operand pair.
func MiterOrdering(m *atpg.Miter, parentOrder []int) ([]int, error) {
	// XOR node for each observable parent output: the miter outputs are
	// in Observable order.
	xorOf := make(map[int]int, len(m.Observable))
	for i, o := range m.Observable {
		xorOf[o] = m.Circuit.Outputs[i]
	}
	order := make([]int, 0, m.Circuit.NumNodes())
	for _, v := range parentOrder {
		if v < 0 || v >= len(m.GoodOf) {
			return nil, fmt.Errorf("core: parent node %d out of range", v)
		}
		if g := m.GoodOf[v]; g >= 0 {
			order = append(order, g)
		}
		if f := m.FaultyOf[v]; f >= 0 {
			order = append(order, f)
		}
		if x, ok := xorOf[v]; ok {
			order = append(order, x)
		}
	}
	if len(order) != m.Circuit.NumNodes() {
		return nil, fmt.Errorf("core: parent ordering covers %d of %d miter nodes (ordering must span all parent nodes)",
			len(order), m.Circuit.NumNodes())
	}
	return order, nil
}

// Lemma42Bound is the right-hand side of Lemma 4.2: 2·W + 2.
func Lemma42Bound(parentWidth int) int { return 2*parentWidth + 2 }

// TreeOrdering returns a linear arrangement for a fanout-free circuit
// (every net feeds at most one gate): depth-first post-order from each
// root, visiting children in decreasing subtree size. For a complete
// k-ary tree this realizes Lemma 5.2's width bound (k-1)·log₂(n).
func TreeOrdering(c *logic.Circuit) ([]int, error) {
	for id := range c.Nodes {
		if len(c.Nodes[id].Fanout) > 1 {
			return nil, fmt.Errorf("core: net %q has fanout %d; TreeOrdering requires a fanout-free circuit",
				c.Nodes[id].Name, len(c.Nodes[id].Fanout))
		}
	}
	size := make([]int, c.NumNodes())
	for _, id := range c.TopoOrder() {
		size[id] = 1
		for _, f := range c.Nodes[id].Fanin {
			size[id] += size[f]
		}
	}
	var order []int
	visited := make([]bool, c.NumNodes())
	var dfs func(id int)
	dfs = func(id int) {
		visited[id] = true
		children := append([]int(nil), c.Nodes[id].Fanin...)
		sort.Slice(children, func(i, j int) bool { return size[children[i]] > size[children[j]] })
		for _, ch := range children {
			dfs(ch)
		}
		order = append(order, id)
	}
	// Roots: nets with no readers, largest first.
	var roots []int
	for id := range c.Nodes {
		if len(c.Nodes[id].Fanout) == 0 {
			roots = append(roots, id)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return size[roots[i]] > size[roots[j]] })
	for _, r := range roots {
		if !visited[r] {
			dfs(r)
		}
	}
	if len(order) != c.NumNodes() {
		return nil, fmt.Errorf("core: tree ordering covered %d of %d nodes", len(order), c.NumNodes())
	}
	return order, nil
}

// Lemma52Bound is the width bound of Lemma 5.2 for a k-ary tree with n
// nodes: (k-1)·log₂(n).
func Lemma52Bound(k, n int) float64 {
	return float64(k-1) * math.Log2(float64(n))
}

// FaultWidth is one data point of the Figure 8 experiments: the size of
// C_ψ^sub (an approximate measure of the ATPG-SAT instance's variable
// count) and its estimated cut-width (indicative of the instance's
// solving complexity, per Equation 4.5 and Lemma 4.3).
type FaultWidth struct {
	Fault   atpg.Fault
	SubSize int
	Width   int
}

// WidthProfile computes a FaultWidth point for every given fault: the
// approximate min-cut linear arrangement width of the whole subcircuit
// C_ψ^sub. (An ordering of the whole subcircuit restricts to an ordering
// of each output cone with no larger width, so this upper-bounds the
// multi-output W(C, H) of Equation 4.4.)
func WidthProfile(c *logic.Circuit, faults []atpg.Fault, opt mla.Options) ([]FaultWidth, error) {
	out := make([]FaultWidth, 0, len(faults))
	for _, f := range faults {
		sub, err := atpg.SubCircuit(c, f)
		if err != nil {
			return nil, fmt.Errorf("fault %s: %w", f.Name(c), err)
		}
		g := hypergraph.FromCircuit(sub.Circuit)
		w, _ := mla.EstimateCutWidth(g, opt)
		out = append(out, FaultWidth{Fault: f, SubSize: sub.NumNodes(), Width: w})
	}
	return out, nil
}

// MultiOutputWidth computes the Equation 4.4 cut-width of a multi-output
// circuit: the maximum over primary-output cones C_i of the estimated
// width W(C_i, h_i), each cone arranged independently.
func MultiOutputWidth(c *logic.Circuit, opt mla.Options) (int, error) {
	if len(c.Outputs) == 0 {
		return 0, fmt.Errorf("core: circuit %q has no outputs", c.Name)
	}
	max := 0
	for _, o := range c.Outputs {
		cone, err := c.Cone(c.Name+"_cone", o)
		if err != nil {
			return 0, err
		}
		g := hypergraph.FromCircuit(cone.Circuit)
		w, _ := mla.EstimateCutWidth(g, opt)
		if w > max {
			max = w
		}
	}
	return max, nil
}

// Classification is the outcome of the log-bounded-width test of
// Definition 5.1 applied empirically: the three fitted curves (best
// first) and whether the growth is consistent with log-bounded width.
//
// The paper reports the logarithmic curve as the best least-squares fit
// on its suites. Over any bounded size range a logarithm and a small-
// exponent power law are nearly indistinguishable (ln x vs. x^0.33 differ
// by under 10% across [10, 4000]), so the verdict here accepts either:
// LogBounded is true when the best fit is logarithmic, or a power curve
// with exponent ≤ 0.4 while the linear fit loses. The threshold separates
// the log-like families (benchmark suites fit x^0.18..0.34) from genuine
// polynomial width growth (array multipliers — the C6288 class — fit
// x^0.48, consistent with their Θ(√n) 2-D cut-width). A linear best fit —
// the shape that would refute the paper — always yields false.
type Classification struct {
	Curves     []fit.Curve
	LogBounded bool
}

// ClassifyWidthGrowth fits linear, logarithmic and power curves to
// (size, width) data and classifies the growth per Classification.
func ClassifyWidthGrowth(points []FaultWidth) (Classification, error) {
	if len(points) < 3 {
		return Classification{}, fmt.Errorf("core: need ≥ 3 points, got %d", len(points))
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = float64(p.SubSize)
		ys[i] = float64(p.Width)
	}
	curves := fit.Best(xs, ys)
	if len(curves) == 0 {
		return Classification{}, fmt.Errorf("core: no curve family could be fitted")
	}
	return Classification{
		Curves:     curves,
		LogBounded: sublinearBest(curves),
	}, nil
}

// sublinearBest implements the Classification verdict rule.
func sublinearBest(curves []fit.Curve) bool {
	best := curves[0]
	switch best.Kind {
	case fit.Logarithmic:
		return true
	case fit.Power:
		return best.B <= 0.4
	default:
		return false
	}
}
