// Package qhorn implements the polynomial-time SAT class recognizers of
// Section 3.1 of "Why is ATPG Easy?" — Horn, 2-SAT, renamable (hidden)
// Horn, and the q-Horn class of Boros, Crama and Hammer — plus the
// Purdom–Brown average-time parameterization of Section 3.3. The paper
// uses these to argue that ATPG-SAT instances do not fall into any known
// easy class, so their practical easiness needs a different explanation.
package qhorn

import (
	"fmt"

	"atpgeasy/internal/cnf"
)

// IsHorn reports whether every clause has at most one positive literal.
// Clauses are treated as literal sets (the paper's definition), so a
// repeated positive literal counts once.
func IsHorn(f *cnf.Formula) bool {
	for _, c := range f.Clauses {
		pos := -1
		horn := true
		for _, l := range c {
			if !l.IsNeg() {
				if pos >= 0 && pos != l.Var() {
					horn = false
					break
				}
				pos = l.Var()
			}
		}
		if !horn {
			return false
		}
	}
	return true
}

// Is2CNF reports whether every clause has at most two literals.
func Is2CNF(f *cnf.Formula) bool {
	for _, c := range f.Clauses {
		if len(c) > 2 {
			return false
		}
	}
	return true
}

// Solve2SAT decides a 2-CNF formula by strongly connected components of
// the implication graph (unit clauses are treated as (l ∨ l)). It returns
// satisfiability and a model when satisfiable, or an error if some clause
// has more than two literals.
func Solve2SAT(f *cnf.Formula) (bool, []bool, error) {
	n := f.NumVars
	adj := make([][]int32, 2*n)
	addImp := func(from, to cnf.Lit) {
		adj[from] = append(adj[from], int32(to))
	}
	for _, c := range f.Clauses {
		switch len(c) {
		case 0:
			return false, nil, nil
		case 1:
			addImp(c[0].Not(), c[0])
		case 2:
			addImp(c[0].Not(), c[1])
			addImp(c[1].Not(), c[0])
		default:
			return false, nil, fmt.Errorf("qhorn: clause with %d literals is not 2-CNF", len(c))
		}
	}
	comp := sccTarjanIterative(adj)
	model := make([]bool, n)
	for v := 0; v < n; v++ {
		pos, neg := cnf.NewLit(v, false), cnf.NewLit(v, true)
		if comp[pos] == comp[neg] {
			return false, nil, nil
		}
		// Tarjan numbers components in reverse topological order: the
		// literal whose component comes *earlier* in that numbering is
		// later topologically and gets value true.
		model[v] = comp[pos] < comp[neg]
	}
	return true, model, nil
}

// sccTarjanIterative computes SCC ids (Tarjan, iterative). Components are
// numbered in reverse topological order.
func sccTarjanIterative(adj [][]int32) []int32 {
	n := len(adj)
	const undef = int32(-1)
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = undef
		comp[i] = undef
	}
	var stack []int32
	var counter, nComp int32
	type frame struct {
		v  int32
		ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != undef {
			continue
		}
		frames := []frame{{int32(root), 0}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			if fr.ei < len(adj[fr.v]) {
				w := adj[fr.v][fr.ei]
				fr.ei++
				if index[w] == undef {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[fr.v] {
					low[fr.v] = index[w]
				}
				continue
			}
			v := fr.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

// RenamableHorn decides whether some subset of variables can be
// complemented ("renamed") to make the formula Horn, by Lewis's reduction
// to 2-SAT: after renaming, each clause may keep at most one positive
// literal, so for every literal pair in a clause at least one must become
// negative. It returns the decision and, when renamable, the flip set.
func RenamableHorn(f *cnf.Formula) (bool, []bool) {
	// Variable r_v in the 2-SAT instance means "rename v". A positive
	// literal x stays positive iff ¬r_x; a negative literal ¬x becomes
	// positive iff r_x. Forbid two positives: (makesNeg(i) ∨ makesNeg(j)),
	// where makesNeg(x positive) = r_x and makesNeg(¬x) = ¬r_x.
	sys := cnf.NewFormula(f.NumVars)
	makesNeg := func(l cnf.Lit) cnf.Lit {
		return cnf.NewLit(l.Var(), l.IsNeg())
	}
	for _, raw := range f.Clauses {
		// Deduplicate: clauses are literal sets.
		c, _ := append(cnf.Clause(nil), raw...).Normalize()
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if c[i].Var() == c[j].Var() {
					continue
				}
				sys.AddClause(makesNeg(c[i]), makesNeg(c[j]))
			}
		}
	}
	sat, model, err := Solve2SAT(sys)
	if err != nil || !sat {
		return false, nil
	}
	return true, model
}
