package qhorn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/cnf"
	"atpgeasy/internal/logic"
)

func lit(v int, neg bool) cnf.Lit { return cnf.NewLit(v, neg) }

func TestIsHorn(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(lit(0, false), lit(1, true))              // one positive
	f.AddClause(lit(0, true), lit(1, true), lit(2, true)) // zero positive
	if !IsHorn(f) {
		t.Error("Horn formula rejected")
	}
	f.AddClause(lit(0, false), lit(2, false))
	if IsHorn(f) {
		t.Error("two-positive clause accepted")
	}
}

func TestIs2CNF(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(lit(0, false), lit(1, false))
	if !Is2CNF(f) {
		t.Error("2-CNF rejected")
	}
	f.AddClause(lit(0, false), lit(1, false), lit(2, false))
	if Is2CNF(f) {
		t.Error("3-clause accepted")
	}
}

// TestSolve2SATAgainstBruteForce: SCC solver agrees with enumeration.
func TestSolve2SATAgainstBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		f := cnf.NewFormula(n)
		for i := 0; i < 2+rng.Intn(14); i++ {
			k := 1 + rng.Intn(2)
			c := make([]cnf.Lit, k)
			for j := range c {
				c[j] = lit(rng.Intn(n), rng.Intn(2) == 1)
			}
			f.AddClause(c...)
		}
		gotSat, model, err := Solve2SAT(f)
		if err != nil {
			return false
		}
		wantSat := false
		assign := make([]bool, n)
		for pat := 0; pat < 1<<uint(n) && !wantSat; pat++ {
			for i := range assign {
				assign[i] = pat>>uint(i)&1 == 1
			}
			if f.Eval(assign) {
				wantSat = true
			}
		}
		if gotSat != wantSat {
			return false
		}
		if gotSat && !f.Eval(model) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSolve2SATRejectsWideClauses(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(lit(0, false), lit(1, false), lit(2, false))
	if _, _, err := Solve2SAT(f); err == nil {
		t.Error("3-literal clause accepted")
	}
}

func TestSolve2SATEmptyClause(t *testing.T) {
	f := cnf.NewFormula(1)
	f.Clauses = append(f.Clauses, cnf.Clause{})
	sat, _, err := Solve2SAT(f)
	if err != nil || sat {
		t.Errorf("empty clause: sat=%v err=%v", sat, err)
	}
}

func TestRenamableHorn(t *testing.T) {
	// (x ∨ y) is not Horn but renaming x makes it (¬x' ∨ y): Horn.
	f := cnf.NewFormula(2)
	f.AddClause(lit(0, false), lit(1, false))
	ok, flips := RenamableHorn(f)
	if !ok {
		t.Fatal("(x ∨ y) should be renamable Horn")
	}
	if !applyRenaming(f, flips, t) {
		t.Error("renamed formula is not Horn")
	}
	if IsHorn(f) {
		t.Error("(x ∨ y) misclassified as already Horn")
	}
}

// applyRenaming flips the given variables and checks Horn-ness.
func applyRenaming(f *cnf.Formula, flips []bool, t *testing.T) bool {
	t.Helper()
	g := cnf.NewFormula(f.NumVars)
	for _, c := range f.Clauses {
		nc := make([]cnf.Lit, len(c))
		for i, l := range c {
			if flips[l.Var()] {
				nc[i] = l.Not()
			} else {
				nc[i] = l
			}
		}
		g.AddClause(nc...)
	}
	return IsHorn(g)
}

// TestRenamableHornProperty: whenever the recognizer says yes, the flip
// set must actually make the formula Horn; a brute-force cross-check
// validates the "no" answers.
func TestRenamableHornProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		f := cnf.NewFormula(n)
		for i := 0; i < 2+rng.Intn(8); i++ {
			k := 1 + rng.Intn(3)
			c := make([]cnf.Lit, k)
			for j := range c {
				c[j] = lit(rng.Intn(n), rng.Intn(2) == 1)
			}
			f.AddClause(c...)
		}
		got, flips := RenamableHorn(f)
		want := false
		for mask := 0; mask < 1<<uint(n) && !want; mask++ {
			fl := make([]bool, n)
			for i := range fl {
				fl[i] = mask>>uint(i)&1 == 1
			}
			if applyRenaming(f, fl, t) {
				want = true
			}
		}
		if got != want {
			return false
		}
		if got && !applyRenaming(f, flips, t) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// verifyQHornValuation checks a 2·α valuation against the defining
// inequality.
func verifyQHornValuation(f *cnf.Formula, twoAlpha []int) bool {
	for _, c := range f.Clauses {
		total := 0
		for _, l := range c {
			w := twoAlpha[l.Var()]
			if l.IsNeg() {
				w = 2 - w
			}
			total += w
		}
		if total > 2 {
			return false
		}
	}
	return true
}

func TestIsQHornBasics(t *testing.T) {
	// Horn formulas are q-Horn (take α ≡ 1).
	f := cnf.NewFormula(3)
	f.AddClause(lit(0, false), lit(1, true))
	f.AddClause(lit(1, false), lit(2, true), lit(0, true))
	res, val := IsQHorn(f, 0)
	if res != QHorn {
		t.Fatalf("Horn formula: %v", res)
	}
	if !verifyQHornValuation(f, val) {
		t.Error("returned valuation invalid")
	}
	// 2-CNF formulas are q-Horn (take α ≡ ½).
	g := cnf.NewFormula(3)
	g.AddClause(lit(0, false), lit(1, false))
	g.AddClause(lit(1, true), lit(2, false))
	if res, val := IsQHorn(g, 0); res != QHorn || !verifyQHornValuation(g, val) {
		t.Errorf("2-CNF formula: %v", res)
	}
}

func TestIsQHornRejects(t *testing.T) {
	// Classic non-q-Horn core: two clauses with three positive literals
	// each, sharing complements so no valuation fits. (x+y+z)(¬x+¬y+¬z)
	// is q-Horn? α≡½ gives 1.5 > 1 for both — not allowed. α = (1,0,0):
	// clause1 = 1 ✓; clause2 = 0+1+1 = 2 ✗. (0,1,0): c1=1 ✓ c2: 1+0+1=2 ✗.
	// Any α with one 1 and rest 0 fails clause2; all-0 fails... c1 = 0 ✓?
	// α=(0,0,0): c1 = 0 ≤ 1 ✓? Positive literals weigh α = 0 → Σ=0 ✓;
	// c2: negatives weigh 1 each → 3 ✗. So not q-Horn.
	f := cnf.NewFormula(3)
	f.AddClause(lit(0, false), lit(1, false), lit(2, false))
	f.AddClause(lit(0, true), lit(1, true), lit(2, true))
	if res, _ := IsQHorn(f, 0); res != NotQHorn {
		t.Errorf("(x+y+z)(~x+~y+~z): %v, want not-q-horn", res)
	}
}

// TestIsQHornAgainstBruteForce: exact enumeration over 3^n valuations.
func TestIsQHornAgainstBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		f := cnf.NewFormula(n)
		for i := 0; i < 2+rng.Intn(10); i++ {
			k := 1 + rng.Intn(3)
			c := make([]cnf.Lit, k)
			for j := range c {
				c[j] = lit(rng.Intn(n), rng.Intn(2) == 1)
			}
			f.AddClause(c...)
		}
		res, val := IsQHorn(f, 0)
		if res == Unknown {
			return false
		}
		want := false
		total := 1
		for i := 0; i < n; i++ {
			total *= 3
		}
		for enc := 0; enc < total && !want; enc++ {
			v := make([]int, n)
			e := enc
			for i := range v {
				v[i] = e % 3
				e /= 3
			}
			if verifyQHornValuation(f, v) {
				want = true
			}
		}
		if (res == QHorn) != want {
			return false
		}
		if res == QHorn && !verifyQHornValuation(f, val) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestIsQHornNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := cnf.NewFormula(40)
	for i := 0; i < 170; i++ {
		c := make([]cnf.Lit, 3)
		for j := range c {
			c[j] = lit(rng.Intn(40), rng.Intn(2) == 1)
		}
		f.AddClause(c...)
	}
	res, _ := IsQHorn(f, 1)
	if res == QHorn {
		// With a 1-node budget we can only get lucky via propagation; a
		// definite QHorn must then carry a valid valuation, checked above.
		t.Log("propagation alone decided the instance")
	}
}

// TestATPGNotQHorn reproduces the Section 3.1 claim: the ATPG-SAT
// instance of the paper's example circuit is not q-Horn — nor Horn, nor
// 2-SAT, nor renamable Horn.
func TestATPGNotQHorn(t *testing.T) {
	c := logic.Figure4a()
	m, err := atpg.NewMiter(c, atpg.Fault{Net: c.MustLookup("f"), StuckAt: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if IsHorn(f) {
		t.Error("ATPG-SAT instance is Horn")
	}
	if Is2CNF(f) {
		t.Error("ATPG-SAT instance is 2-CNF")
	}
	if ok, _ := RenamableHorn(f); ok {
		t.Error("ATPG-SAT instance is renamable Horn")
	}
	res, _ := IsQHorn(f, 0)
	if res != NotQHorn {
		t.Errorf("ATPG-SAT instance q-Horn status: %v, want not-q-horn", res)
	}
}

func TestParameterize(t *testing.T) {
	c := logic.Figure4a()
	f, err := cnf.FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := Parameterize(f)
	if p.Vars != 9 || p.Clauses != 13 {
		t.Errorf("params = %+v", p)
	}
	if !p.InPolyAverageClass() {
		t.Error("bounded-fanin circuit formula not in the poly-average class")
	}
	dense := AverageTimeParams{ClauseDensity: 50, AvgClauseLen: 3}
	if dense.InPolyAverageClass() {
		t.Error("dense random formula misclassified")
	}
}
