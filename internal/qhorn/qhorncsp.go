package qhorn

import (
	"atpgeasy/internal/cnf"
)

// QHornResult is the outcome of a q-Horn recognition.
type QHornResult int8

// Recognition outcomes. NotQHorn and QHorn are definite; Unknown means
// the search hit its node limit (recognition here is exact backtracking
// over the {0, ½, 1} valuation, exponential in the worst case).
const (
	NotQHorn QHornResult = iota
	QHorn
	Unknown
)

// String returns "not-q-horn", "q-horn" or "unknown".
func (r QHornResult) String() string {
	switch r {
	case NotQHorn:
		return "not-q-horn"
	case QHorn:
		return "q-horn"
	default:
		return "unknown"
	}
}

// The three α values, encoded as domain bits.
const (
	vZero = 1 << iota // α = 0
	vHalf             // α = ½
	vOne              // α = 1
	vAll  = vZero | vHalf | vOne
)

// halfWeights maps a domain bit to twice the α value.
func twiceAlpha(bit uint8) int {
	switch bit {
	case vZero:
		return 0
	case vHalf:
		return 1
	default:
		return 2
	}
}

// IsQHorn decides membership in the q-Horn class of Boros, Crama and
// Hammer via its valuation characterization: f is q-Horn iff there is an
// α: vars → {0, ½, 1} such that for every clause
//
//	Σ_{positive literals x} α(x) + Σ_{negative literals ¬x} (1 − α(x)) ≤ 1.
//
// The search is a three-valued CSP with full constraint propagation and
// backtracking; maxNodes (≤ 0 means a generous default) bounds the search
// and yields Unknown on exhaustion. The returned valuation holds 2·α per
// variable when the result is QHorn.
func IsQHorn(f *cnf.Formula, maxNodes int64) (QHornResult, []int) {
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	s := &qhornSolver{f: f, maxNodes: maxNodes}
	s.domain = make([]uint8, f.NumVars)
	for i := range s.domain {
		s.domain[i] = vAll
	}
	// occurrence lists
	s.occ = make([][]int32, f.NumVars)
	for ci, c := range f.Clauses {
		// Empty clauses impose no valuation constraint (Σ over no literals
		// is 0 ≤ 1); the formula is then trivially unsatisfiable, which is
		// fine — class membership is about recognizing easy instances.
		for _, l := range c {
			s.occ[l.Var()] = append(s.occ[l.Var()], int32(ci))
		}
	}
	if !s.propagateAll() {
		return NotQHorn, nil
	}
	switch s.search() {
	case 1:
		out := make([]int, f.NumVars)
		for v, d := range s.domain {
			out[v] = twiceAlpha(d)
		}
		return QHorn, out
	case 0:
		return NotQHorn, nil
	default:
		return Unknown, nil
	}
}

type qhornSolver struct {
	f        *cnf.Formula
	domain   []uint8 // bitset over {vZero, vHalf, vOne}
	occ      [][]int32
	maxNodes int64
	nodes    int64
}

// litWeightBounds returns the min and max possible 2·weight of literal l
// under the current domain of its variable.
func (s *qhornSolver) litWeightBounds(l cnf.Lit) (lo, hi int) {
	d := s.domain[l.Var()]
	lo, hi = 2, 0
	for _, bit := range []uint8{vZero, vHalf, vOne} {
		if d&bit == 0 {
			continue
		}
		w := twiceAlpha(bit)
		if l.IsNeg() {
			w = 2 - w
		}
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	return lo, hi
}

// reviseClause prunes variable values that would force the clause weight
// above 1 (i.e. 2·weight above 2). It returns false on a wipe-out and
// appends touched variables to the queue.
func (s *qhornSolver) reviseClause(ci int32, queue *[]int32) bool {
	c := s.f.Clauses[ci]
	totalMin := 0
	mins := make([]int, len(c))
	for i, l := range c {
		lo, _ := s.litWeightBounds(l)
		mins[i] = lo
		totalMin += lo
	}
	if totalMin > 2 {
		return false
	}
	for i, l := range c {
		v := l.Var()
		d := s.domain[v]
		newD := d
		for _, bit := range []uint8{vZero, vHalf, vOne} {
			if d&bit == 0 {
				continue
			}
			w := twiceAlpha(bit)
			if l.IsNeg() {
				w = 2 - w
			}
			if totalMin-mins[i]+w > 2 {
				newD &^= bit
			}
		}
		if newD == 0 {
			return false
		}
		if newD != d {
			s.domain[v] = newD
			*queue = append(*queue, int32(v))
		}
	}
	return true
}

func (s *qhornSolver) propagateAll() bool {
	queue := make([]int32, 0, len(s.f.Clauses))
	for ci := range s.f.Clauses {
		if !s.reviseClause(int32(ci), &queue) {
			return false
		}
	}
	return s.propagate(queue)
}

func (s *qhornSolver) propagate(queue []int32) bool {
	inQueue := make(map[int32]bool)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		delete(inQueue, v)
		for _, ci := range s.occ[v] {
			var touched []int32
			if !s.reviseClause(ci, &touched) {
				return false
			}
			for _, t := range touched {
				if !inQueue[t] {
					inQueue[t] = true
					queue = append(queue, t)
				}
			}
		}
	}
	return true
}

// search returns 1 (solution), 0 (none), -1 (node limit).
func (s *qhornSolver) search() int {
	s.nodes++
	if s.nodes > s.maxNodes {
		return -1
	}
	// Pick an undecided variable with the smallest domain > 1.
	pick := -1
	best := 4
	for v, d := range s.domain {
		n := popcount3(d)
		if n > 1 && n < best {
			best = n
			pick = v
			if n == 2 {
				break
			}
		}
	}
	if pick < 0 {
		return 1 // all singleton domains and constraints propagated clean
	}
	saved := append([]uint8(nil), s.domain...)
	for _, bit := range []uint8{vHalf, vOne, vZero} {
		if s.domain[pick]&bit == 0 {
			continue
		}
		s.domain[pick] = bit
		if s.propagate([]int32{int32(pick)}) {
			switch s.search() {
			case 1:
				return 1
			case -1:
				return -1
			}
		}
		copy(s.domain, saved)
	}
	return 0
}

func popcount3(d uint8) int {
	n := 0
	for _, bit := range []uint8{vZero, vHalf, vOne} {
		if d&bit != 0 {
			n++
		}
	}
	return n
}

// AverageTimeParams is the Purdom–Brown parameterization of Section 3.3:
// a random-CNF model with v variables, t clauses, and per-literal
// probability p (estimated here as avgLen/v from a concrete formula).
type AverageTimeParams struct {
	Vars          int
	Clauses       int
	AvgClauseLen  float64
	LiteralProb   float64 // AvgClauseLen / Vars
	ClauseDensity float64 // Clauses / Vars
}

// Parameterize extracts the average-time parameters from a formula.
func Parameterize(f *cnf.Formula) AverageTimeParams {
	s := f.Stats()
	p := AverageTimeParams{
		Vars:         s.Vars,
		Clauses:      s.ClauseCount,
		AvgClauseLen: s.AvgClauseLen,
	}
	if s.Vars > 0 {
		p.LiteralProb = s.AvgClauseLen / float64(s.Vars)
		p.ClauseDensity = float64(s.ClauseCount) / float64(s.Vars)
	}
	return p
}

// InPolyAverageClass reports whether the parameters land in the regime the
// paper invokes from Purdom and Brown [21]: clause count linear in the
// variable count (bounded density) with bounded average clause length, so
// the literal probability p vanishes as Θ(1/v). CIRCUIT-SAT formulas from
// bounded-fanin/fanout gate netlists always satisfy this; the point of
// Section 3.3 is that the converse fails, so the classification "suggests"
// rather than proves easiness.
func (p AverageTimeParams) InPolyAverageClass() bool {
	return p.ClauseDensity <= 8 && p.AvgClauseLen <= 6
}
