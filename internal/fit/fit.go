// Package fit implements the least-squares curve fitting used in Section
// 5.2.2 of "Why is ATPG Easy?": the cut-width-versus-size scatter data is
// fitted with linear (y = ax+b), logarithmic (y = a·ln x + b) and power
// (y = a·x^b) curves, and the best fit — by sum of squared errors on the
// original scale — is reported. The paper found the logarithmic curve gave
// the best fit on every benchmark suite.
package fit

import (
	"fmt"
	"math"
	"sort"
)

// Kind identifies a curve family.
type Kind int8

// The three curve families compared by the paper.
const (
	Linear Kind = iota
	Logarithmic
	Power
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Logarithmic:
		return "logarithmic"
	case Power:
		return "power"
	default:
		return fmt.Sprintf("Kind(%d)", int8(k))
	}
}

// Curve is a fitted curve y = f(x).
type Curve struct {
	Kind Kind
	A, B float64
	// SSE is the sum of squared errors on the original (y) scale.
	SSE float64
	// R2 is the coefficient of determination on the original scale.
	R2 float64
	N  int
}

// Eval evaluates the fitted curve at x.
func (c Curve) Eval(x float64) float64 {
	switch c.Kind {
	case Linear:
		return c.A*x + c.B
	case Logarithmic:
		return c.A*math.Log(x) + c.B
	case Power:
		return c.A * math.Pow(x, c.B)
	default:
		return math.NaN()
	}
}

// String renders the curve equation with its fit quality.
func (c Curve) String() string {
	var eq string
	switch c.Kind {
	case Linear:
		eq = fmt.Sprintf("y = %.4g·x + %.4g", c.A, c.B)
	case Logarithmic:
		eq = fmt.Sprintf("y = %.4g·ln(x) + %.4g", c.A, c.B)
	case Power:
		eq = fmt.Sprintf("y = %.4g·x^%.4g", c.A, c.B)
	}
	return fmt.Sprintf("%s  (R²=%.4f, n=%d)", eq, c.R2, c.N)
}

// leastSquares fits y = a·u + b over transformed abscissae u.
func leastSquares(u, y []float64) (a, b float64, ok bool) {
	n := float64(len(u))
	if len(u) < 2 {
		return 0, 0, false
	}
	var su, sy, suu, suy float64
	for i := range u {
		su += u[i]
		sy += y[i]
		suu += u[i] * u[i]
		suy += u[i] * y[i]
	}
	den := n*suu - su*su
	if math.Abs(den) < 1e-12 {
		return 0, 0, false
	}
	a = (n*suy - su*sy) / den
	b = (sy - a*su) / n
	return a, b, true
}

func quality(k Kind, a, b float64, xs, ys []float64) Curve {
	c := Curve{Kind: k, A: a, B: b, N: len(xs)}
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssTot float64
	for i := range xs {
		e := ys[i] - c.Eval(xs[i])
		c.SSE += e * e
		d := ys[i] - mean
		ssTot += d * d
	}
	if ssTot > 0 {
		c.R2 = 1 - c.SSE/ssTot
	} else {
		c.R2 = 1
	}
	return c
}

// Fit fits one curve family to the points. Logarithmic and Power require
// strictly positive x; Power additionally requires strictly positive y.
func Fit(k Kind, xs, ys []float64) (Curve, error) {
	if len(xs) != len(ys) {
		return Curve{}, fmt.Errorf("fit: %d x values, %d y values", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Curve{}, fmt.Errorf("fit: need at least 2 points, got %d", len(xs))
	}
	switch k {
	case Linear:
		a, b, ok := leastSquares(xs, ys)
		if !ok {
			return Curve{}, fmt.Errorf("fit: degenerate linear system")
		}
		return quality(k, a, b, xs, ys), nil
	case Logarithmic:
		u := make([]float64, len(xs))
		for i, x := range xs {
			if x <= 0 {
				return Curve{}, fmt.Errorf("fit: logarithmic fit needs x > 0, got %g", x)
			}
			u[i] = math.Log(x)
		}
		a, b, ok := leastSquares(u, ys)
		if !ok {
			return Curve{}, fmt.Errorf("fit: degenerate logarithmic system")
		}
		return quality(k, a, b, xs, ys), nil
	case Power:
		u := make([]float64, len(xs))
		v := make([]float64, len(xs))
		for i := range xs {
			if xs[i] <= 0 || ys[i] <= 0 {
				return Curve{}, fmt.Errorf("fit: power fit needs x,y > 0, got (%g,%g)", xs[i], ys[i])
			}
			u[i] = math.Log(xs[i])
			v[i] = math.Log(ys[i])
		}
		// ln y = ln a + b·ln x.
		bCoef, lnA, ok := leastSquares(u, v)
		if !ok {
			return Curve{}, fmt.Errorf("fit: degenerate power system")
		}
		return quality(k, math.Exp(lnA), bCoef, xs, ys), nil
	default:
		return Curve{}, fmt.Errorf("fit: unknown kind %v", k)
	}
}

// Best fits all three families and returns them sorted by SSE ascending
// (best first). Families that cannot be fitted (domain violations) are
// omitted.
func Best(xs, ys []float64) []Curve {
	var out []Curve
	for _, k := range []Kind{Linear, Logarithmic, Power} {
		if c, err := Fit(k, xs, ys); err == nil {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SSE < out[j].SSE })
	return out
}
