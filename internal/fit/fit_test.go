package fit

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 2
	}
	c, err := Fit(Linear, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c.A, 3, 1e-9) || !almostEqual(c.B, 2, 1e-9) {
		t.Errorf("a=%g b=%g", c.A, c.B)
	}
	if c.SSE > 1e-12 || !almostEqual(c.R2, 1, 1e-9) {
		t.Errorf("SSE=%g R2=%g", c.SSE, c.R2)
	}
}

func TestLogarithmicExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 100}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5*math.Log(x) - 1
	}
	c, err := Fit(Logarithmic, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c.A, 5, 1e-9) || !almostEqual(c.B, -1, 1e-9) {
		t.Errorf("a=%g b=%g", c.A, c.B)
	}
}

func TestPowerExact(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 50}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 * math.Pow(x, 0.7)
	}
	c, err := Fit(Power, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c.A, 2, 1e-6) || !almostEqual(c.B, 0.7, 1e-6) {
		t.Errorf("a=%g b=%g", c.A, c.B)
	}
	if got := c.Eval(4); !almostEqual(got, 2*math.Pow(4, 0.7), 1e-6) {
		t.Errorf("Eval(4) = %g", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(Linear, []float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Fit(Linear, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit(Logarithmic, []float64{-1, 2}, []float64{1, 2}); err == nil {
		t.Error("negative x accepted for log fit")
	}
	if _, err := Fit(Power, []float64{1, 2}, []float64{0, 2}); err == nil {
		t.Error("zero y accepted for power fit")
	}
	if _, err := Fit(Linear, []float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
	if _, err := Fit(Kind(99), []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestBestPrefersGeneratingFamily: noisy data generated from each family
// should be best fitted by that family.
func TestBestPrefersGeneratingFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 400
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 5 + rng.Float64()*3000
	}
	gen := map[Kind]func(x float64) float64{
		Linear:      func(x float64) float64 { return 0.02*x + 3 },
		Logarithmic: func(x float64) float64 { return 4*math.Log(x) + 1 },
		Power:       func(x float64) float64 { return 0.8 * math.Pow(x, 0.45) },
	}
	for kind, f := range gen {
		ys := make([]float64, n)
		for i := range ys {
			ys[i] = f(xs[i]) + rng.NormFloat64()*0.3
			if ys[i] <= 0 {
				ys[i] = 0.01
			}
		}
		curves := Best(xs, ys)
		if len(curves) != 3 {
			t.Fatalf("%v data: %d curves fitted", kind, len(curves))
		}
		if curves[0].Kind != kind {
			t.Errorf("%v data: best fit is %v (SSE %.3g vs %.3g)", kind, curves[0].Kind, curves[0].SSE, curves[1].SSE)
		}
	}
}

func TestKindAndCurveString(t *testing.T) {
	if Linear.String() != "linear" || Logarithmic.String() != "logarithmic" || Power.String() != "power" {
		t.Error("Kind names wrong")
	}
	c := Curve{Kind: Logarithmic, A: 2, B: 1, R2: 0.99, N: 10}
	if s := c.String(); len(s) == 0 {
		t.Error("empty curve string")
	}
	if !math.IsNaN((Curve{Kind: Kind(99)}).Eval(1)) {
		t.Error("unknown kind Eval should be NaN")
	}
}
