// Package mla implements min-cut linear arrangement (MLA) of hypergraphs —
// the cut-width estimation procedure of Section 5.2.1 of "Why is ATPG
// Easy?". By definition the minimum cut-width of a circuit is the max-cut
// value obtained under a min-cut linear arrangement; since MLA is
// NP-complete, the paper (following Hochbaum [13]) approximates it by
// recursive min-cut bipartitioning until the partitions are small, then
// solves each small partition exactly. Package partition supplies the
// bipartitioner (the hMETIS role).
//
// The recursion uses terminal propagation: when a block is split, its
// connections to the already-placed region on the left and the pending
// region on the right are represented by two pinned terminal vertices, so
// the bipartitioner accounts for external wires — without this, widths of
// large circuits are badly overestimated because every level of the
// recursion re-cuts the same external nets.
package mla

import (
	"fmt"
	"sort"

	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/partition"
)

// Options configure the arrangement.
type Options struct {
	// ExactThreshold is the block size at and below which the exact
	// subset-DP MLA is used. Zero means 10; values above 18 are clamped to
	// 18 to bound memory.
	ExactThreshold int
	// Partition configures the FM bipartitioner used at each recursion
	// level.
	Partition partition.Options
}

func (o Options) withDefaults() Options {
	if o.ExactThreshold == 0 {
		o.ExactThreshold = 10
	}
	if o.ExactThreshold > 18 {
		o.ExactThreshold = 18
	}
	return o
}

// Order computes an approximate min-cut linear arrangement of g and
// returns the vertex ordering.
func Order(g *hypergraph.Graph, opt Options) []int {
	opt = opt.withDefaults()
	all := make([]int, g.NumNodes)
	for i := range all {
		all[i] = i
	}
	a := &arranger{
		g:        g,
		opt:      opt,
		status:   make([]uint8, g.NumNodes),
		incident: make([][]int32, g.NumNodes),
	}
	for i := range a.status {
		a.status[i] = statusBlock
	}
	for ei, e := range g.Edges {
		if len(e) < 2 {
			continue
		}
		for _, v := range e {
			a.incident[v] = append(a.incident[v], int32(ei))
		}
	}
	return a.arrange(all, opt.Partition.Seed)
}

// EstimateCutWidth computes an approximate minimum cut-width of g: the
// smaller of the recursive-MLA ordering's width and the identity
// ordering's width (both are valid upper bounds on the minimum; circuit
// hypergraphs number vertices topologically, which is itself often a
// decent arrangement). The returned ordering witnesses the width.
func EstimateCutWidth(g *hypergraph.Graph, opt Options) (int, []int) {
	order := Order(g, opt)
	w, err := g.CutWidth(order)
	if err != nil {
		panic(fmt.Sprintf("mla: internal: invalid ordering produced: %v", err))
	}
	ident := make([]int, g.NumNodes)
	for i := range ident {
		ident[i] = i
	}
	wi, _ := g.CutWidth(ident)
	if wi < w {
		return wi, ident
	}
	return w, order
}

// Vertex status during the recursion.
const (
	statusLeft  uint8 = iota // already placed, left of the current block
	statusBlock              // inside the block being arranged
	statusRight              // pending, right of the current block
)

type arranger struct {
	g        *hypergraph.Graph
	opt      Options
	status   []uint8
	incident [][]int32
}

// arrange orders the vertex subset vs (all of which have statusBlock) and
// marks them statusLeft as they are emitted.
func (a *arranger) arrange(vs []int, seed int64) []int {
	if len(vs) == 0 {
		return nil
	}
	if len(vs) == 1 {
		a.status[vs[0]] = statusLeft
		return []int{vs[0]}
	}
	if len(vs) <= a.opt.ExactThreshold {
		return a.arrangeExact(vs)
	}
	sub, toParent, fixed := a.induced(vs)
	popt := a.opt.Partition
	popt.Seed = seed
	res := partition.Multilevel(sub, fixed, popt)
	var left, right []int
	for i, v := range toParent {
		if v < 0 {
			continue // terminal
		}
		if res.Side[i] {
			right = append(right, v)
		} else {
			left = append(left, v)
		}
	}
	// Degenerate split (possible only on pathological graphs): fall back
	// to an arbitrary balanced split to guarantee progress.
	if len(left) == 0 || len(right) == 0 {
		mid := len(vs) / 2
		left = append([]int(nil), vs[:mid]...)
		right = append([]int(nil), vs[mid:]...)
	}
	for _, v := range right {
		a.status[v] = statusRight
	}
	out := a.arrange(left, seed*2654435761+1)
	for _, v := range right {
		a.status[v] = statusBlock
	}
	return append(out, a.arrange(right, seed*2654435761+2)...)
}

// arrangeExact solves a small block with the pinned-ends exact DP, with
// terminals representing the exterior.
func (a *arranger) arrangeExact(vs []int) []int {
	sub, toParent, fixed := a.induced(vs)
	first, last := -1, -1
	for i, f := range fixed {
		switch f {
		case partition.FixedA:
			first = i
		case partition.FixedB:
			last = i
		}
	}
	local, _, err := exactOrderPinned(sub, first, last)
	if err != nil {
		local = make([]int, sub.NumNodes)
		for i := range local {
			local[i] = i
		}
	}
	out := make([]int, 0, len(vs))
	for _, lv := range local {
		if v := toParent[lv]; v >= 0 {
			out = append(out, v)
			a.status[v] = statusLeft
		}
	}
	return out
}

// induced builds the sub-hypergraph on the block: edges clipped to the
// block's vertices, extended with a left terminal (pinned to side A /
// ordered first) when the edge also touches already-placed vertices and a
// right terminal (side B / last) when it touches pending vertices. It
// returns the subgraph, the local→parent map (-1 for terminals) and the
// fixture slice (nil when no terminal was needed).
func (a *arranger) induced(vs []int) (*hypergraph.Graph, []int, []partition.Fixture) {
	toLocal := make(map[int]int, len(vs))
	toParent := make([]int, len(vs), len(vs)+2)
	for i, v := range vs {
		toLocal[v] = i
		toParent[i] = v
	}
	leftT, rightT := -1, -1
	edgeSet := make(map[int32]bool)
	for _, v := range vs {
		for _, ei := range a.incident[v] {
			edgeSet[ei] = true
		}
	}
	// Deterministic edge order: map iteration order would otherwise make
	// the whole arrangement vary from run to run.
	edgeIDs := make([]int, 0, len(edgeSet))
	for ei := range edgeSet {
		edgeIDs = append(edgeIDs, int(ei))
	}
	sort.Ints(edgeIDs)
	n := len(vs)
	var clippedEdges [][]int
	needLeft, needRight := false, false
	for _, ei := range edgeIDs {
		e := a.g.Edges[ei]
		var clipped []int
		hasLeft, hasRight := false, false
		for _, v := range e {
			switch {
			case a.status[v] == statusLeft:
				hasLeft = true
			case a.status[v] == statusRight:
				hasRight = true
			default:
				if lv, ok := toLocal[v]; ok {
					clipped = append(clipped, lv)
				} else {
					// statusBlock vertex outside this block can occur only
					// for sibling blocks mid-recursion; treat as right.
					hasRight = true
				}
			}
		}
		if len(clipped) == 0 {
			continue
		}
		if hasLeft {
			needLeft = true
		}
		if hasRight {
			needRight = true
		}
		if len(clipped) < 2 && !hasLeft && !hasRight {
			continue
		}
		// Record; terminals appended after their ids are known.
		clippedEdges = append(clippedEdges, clipped)
		if hasLeft {
			clippedEdges[len(clippedEdges)-1] = append(clippedEdges[len(clippedEdges)-1], -1) // placeholder L
		}
		if hasRight {
			clippedEdges[len(clippedEdges)-1] = append(clippedEdges[len(clippedEdges)-1], -2) // placeholder R
		}
	}
	if needLeft {
		leftT = n
		n++
		toParent = append(toParent, -1)
	}
	if needRight {
		rightT = n
		n++
		toParent = append(toParent, -1)
	}
	sub := hypergraph.New(n)
	for _, e := range clippedEdges {
		for i, v := range e {
			switch v {
			case -1:
				e[i] = leftT
			case -2:
				e[i] = rightT
			}
		}
		if len(e) >= 2 {
			sub.AddEdge(e...)
		}
	}
	var fixed []partition.Fixture
	if needLeft || needRight {
		fixed = make([]partition.Fixture, n)
		if leftT >= 0 {
			fixed[leftT] = partition.FixedA
		}
		if rightT >= 0 {
			fixed[rightT] = partition.FixedB
		}
	}
	return sub, toParent, fixed
}

// DegreeLowerBound returns a cheap valid lower bound on the minimum
// cut-width: for any vertex of degree d (over edges spanning ≥ 2
// vertices), every linear arrangement places at least ⌈d/2⌉ of its
// incident edges across the gap on one side of the vertex. Together with
// EstimateCutWidth this sandwiches the true minimum.
func DegreeLowerBound(g *hypergraph.Graph) int {
	maxDeg := 0
	deg := make([]int, g.NumNodes)
	for _, e := range g.Edges {
		if len(e) < 2 {
			continue
		}
		for _, v := range e {
			deg[v]++
			if deg[v] > maxDeg {
				maxDeg = deg[v]
			}
		}
	}
	return (maxDeg + 1) / 2
}

// ExactOrder computes a minimum cut-width linear arrangement of g by
// dynamic programming over vertex subsets: W[S] = max(cut(S), min over
// v∈S of W[S\{v}]), where cut(S) is the number of hyperedges crossing the
// (S, V\S) boundary. It is exponential — O(2^n · (n + |E|)) — and limited
// to n ≤ 22.
func ExactOrder(g *hypergraph.Graph) ([]int, int, error) {
	return exactOrderPinned(g, -1, -1)
}

// exactOrderPinned is ExactOrder with optional pinned endpoints: vertex
// first (if ≥ 0) must be ordered first and last (if ≥ 0) ordered last.
func exactOrderPinned(g *hypergraph.Graph, first, last int) ([]int, int, error) {
	n := g.NumNodes
	if n > 22 {
		return nil, 0, fmt.Errorf("mla: ExactOrder limited to 22 vertices, got %d", n)
	}
	if n == 0 {
		return nil, 0, nil
	}
	masks := make([]uint32, 0, len(g.Edges))
	for _, e := range g.Edges {
		if len(e) < 2 {
			continue
		}
		var m uint32
		for _, v := range e {
			m |= 1 << uint(v)
		}
		masks = append(masks, m)
	}
	size := 1 << uint(n)
	const inf = uint16(0xffff)
	width := make([]uint16, size)
	choice := make([]int8, size)
	full := uint32(size - 1)
	var firstBit, lastBit uint32
	if first >= 0 {
		firstBit = 1 << uint(first)
	}
	if last >= 0 {
		lastBit = 1 << uint(last)
	}
	for s := 1; s < size; s++ {
		set := uint32(s)
		// Pinning: every non-empty prefix must contain first; last may
		// only appear in the full set.
		if firstBit != 0 && set&firstBit == 0 {
			width[set] = inf
			choice[set] = -1
			continue
		}
		if lastBit != 0 && set&lastBit != 0 && set != full {
			width[set] = inf
			choice[set] = -1
			continue
		}
		cut := uint16(0)
		for _, m := range masks {
			if m&set != 0 && m&^set != 0 {
				cut++
			}
		}
		best := inf
		var bestV int8 = -1
		for v := 0; v < n; v++ {
			bit := uint32(1) << uint(v)
			if set&bit == 0 {
				continue
			}
			// first may only be the last-placed vertex of the singleton
			// prefix {first}.
			if bit == firstBit && set != firstBit {
				continue
			}
			w := width[set&^bit]
			if w < best {
				best = w
				bestV = int8(v)
			}
		}
		if bestV < 0 {
			width[set] = inf
			choice[set] = -1
			continue
		}
		if cut > best {
			best = cut
		}
		width[set] = best
		choice[set] = bestV
	}
	if width[full] == inf {
		return nil, 0, fmt.Errorf("mla: pinning constraints unsatisfiable")
	}
	order := make([]int, n)
	set := full
	for i := n - 1; i >= 0; i-- {
		v := choice[set]
		order[i] = int(v)
		set &^= 1 << uint(v)
	}
	return order, int(width[full]), nil
}
