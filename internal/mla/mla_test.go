package mla

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/partition"
)

func pathGraph(n int) *hypergraph.Graph {
	g := hypergraph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycleGraph(n int) *hypergraph.Graph {
	g := pathGraph(n)
	g.AddEdge(n-1, 0)
	return g
}

func TestExactOrderPath(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10} {
		g := pathGraph(n)
		order, w, err := ExactOrder(g)
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		if n == 1 {
			want = 0
		}
		if w != want {
			t.Errorf("path %d: exact width %d, want %d", n, w, want)
		}
		got, err := g.CutWidth(order)
		if err != nil || got != w {
			t.Errorf("path %d: ordering width %d (err %v) != reported %d", n, got, err, w)
		}
	}
}

func TestExactOrderCycle(t *testing.T) {
	g := cycleGraph(8)
	_, w, err := ExactOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("cycle width = %d, want 2", w)
	}
}

func TestExactOrderEmpty(t *testing.T) {
	order, w, err := ExactOrder(hypergraph.New(0))
	if err != nil || w != 0 || len(order) != 0 {
		t.Errorf("empty: %v %d %v", order, w, err)
	}
}

func TestExactOrderTooLarge(t *testing.T) {
	if _, _, err := ExactOrder(hypergraph.New(23)); err == nil {
		t.Error("expected size error")
	}
}

// TestExactOrderFigure4a: Figure 6 states ordering A (width 3) "happens
// to be" a minimum cut-width ordering. On our reconstruction of the figure
// the exact DP finds a width-2 ordering (b,c,f,a,h,i,g,d,e), so we assert
// the minimum is ≤ 3 and within 1 of ordering A; the width-3 value of
// ordering A itself is checked in package hypergraph.
func TestExactOrderFigure4a(t *testing.T) {
	c := logic.Figure4a()
	g := hypergraph.FromCircuit(c)
	order, w, err := ExactOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	if w > 3 || w < 2 {
		t.Errorf("W_min(fig4a) = %d, want 2..3", w)
	}
	if got, _ := g.CutWidth(order); got != w {
		t.Errorf("witness ordering has width %d, reported %d", got, w)
	}
}

// TestExactMatchesBruteForce: exact DP equals brute-force over all
// permutations on tiny graphs.
func TestExactMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		g := hypergraph.New(n)
		for e := 0; e < 1+rng.Intn(6); e++ {
			k := 2 + rng.Intn(2)
			vs := make([]int, k)
			for i := range vs {
				vs[i] = rng.Intn(n)
			}
			g.AddEdge(vs...)
		}
		_, got, err := ExactOrder(g)
		if err != nil {
			return false
		}
		want := bruteForceWidth(g)
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func bruteForceWidth(g *hypergraph.Graph) int {
	n := g.NumNodes
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := -1
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			w, _ := g.CutWidth(perm)
			if best < 0 || w < best {
				best = w
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestOrderIsPermutation(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := hypergraph.New(n)
		for e := 0; e < n; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			g.AddEdge(a, b)
		}
		order := Order(g, Options{Partition: partition.Options{Seed: seed}})
		return g.CheckOrdering(order) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEstimateNeverBelowExact: the recursive-bisection estimate is an
// upper bound on the true minimum cut-width.
func TestEstimateNeverBelowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(8)
		g := hypergraph.New(n)
		for e := 0; e < n+rng.Intn(n); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		_, exact, err := ExactOrder(g)
		if err != nil {
			t.Fatal(err)
		}
		est, _ := EstimateCutWidth(g, Options{ExactThreshold: 4, Partition: partition.Options{Seed: int64(trial)}})
		if est < exact {
			t.Errorf("trial %d: estimate %d below exact %d", trial, est, exact)
		}
	}
}

// TestEstimateQualityOnPaths: recursive bisection on a long path should
// stay close to the optimal width of 1 (bisection of a path cuts 1 edge
// per level, giving a small additive overhead, not growth with n).
func TestEstimateQualityOnPaths(t *testing.T) {
	g := pathGraph(200)
	w, order := EstimateCutWidth(g, Options{Partition: partition.Options{Seed: 2, Restarts: 6}})
	if err := g.CheckOrdering(order); err != nil {
		t.Fatal(err)
	}
	if w > 6 {
		t.Errorf("path-200 estimated width = %d, want small (≤6)", w)
	}
}

func TestEstimateDisconnected(t *testing.T) {
	// Two disjoint paths; estimator must handle disconnected graphs.
	g := hypergraph.New(20)
	for i := 0; i+1 < 10; i++ {
		g.AddEdge(i, i+1)
		g.AddEdge(10+i, 10+i+1)
	}
	w, _ := EstimateCutWidth(g, Options{Partition: partition.Options{Seed: 4}})
	if w > 4 {
		t.Errorf("disconnected estimate %d, want small", w)
	}
}

func TestEstimateFigure4a(t *testing.T) {
	c := logic.Figure4a()
	g := hypergraph.FromCircuit(c)
	w, _ := EstimateCutWidth(g, Options{Partition: partition.Options{Seed: 1, Restarts: 8}})
	// With ExactThreshold 10 ≥ 9 nodes the estimate equals the exact
	// minimum, which is 2 on our reconstruction (≤ ordering A's 3).
	if w > 3 {
		t.Errorf("estimate = %d, want ≤ 3", w)
	}
}

func TestInducedTerminalPropagation(t *testing.T) {
	// Graph 0-1-2-3-4 (path). Arrange block {2,3} with 0,1 already placed
	// left and 4 pending right: the induced subgraph must contain a left
	// terminal attached to 2 (edge 1-2) and a right terminal attached to
	// 3 (edge 3-4).
	g := hypergraph.New(5)
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(i, i+1)
	}
	a := &arranger{
		g:        g,
		opt:      Options{}.withDefaults(),
		status:   []uint8{statusLeft, statusLeft, statusBlock, statusBlock, statusRight},
		incident: make([][]int32, 5),
	}
	for ei, e := range g.Edges {
		for _, v := range e {
			a.incident[v] = append(a.incident[v], int32(ei))
		}
	}
	sub, toParent, fixed := a.induced([]int{2, 3})
	if sub.NumNodes != 4 {
		t.Fatalf("sub nodes = %d, want 2 block + 2 terminals", sub.NumNodes)
	}
	if toParent[0] != 2 || toParent[1] != 3 || toParent[2] != -1 || toParent[3] != -1 {
		t.Errorf("toParent = %v", toParent)
	}
	nA, nB := 0, 0
	for _, f := range fixed {
		switch f {
		case partition.FixedA:
			nA++
		case partition.FixedB:
			nB++
		}
	}
	if nA != 1 || nB != 1 {
		t.Errorf("fixtures = %v", fixed)
	}
	// Three edges survive: {2,3}, {2,L}, {3,R} (locally).
	if len(sub.Edges) != 3 {
		t.Errorf("sub edges = %v", sub.Edges)
	}
}

// TestExactOrderPinned: pinned endpoints are respected and the width
// matches brute force over constrained permutations.
func TestExactOrderPinned(t *testing.T) {
	g := pathGraph(5)
	order, w, err := exactOrderPinned(g, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 4 || order[len(order)-1] != 0 {
		t.Errorf("pinning violated: %v", order)
	}
	// Path pinned backwards end-to-end still has width 1 (reverse order).
	if w != 1 {
		t.Errorf("width = %d, want 1", w)
	}
	// Pinning both ends to the same vertex is unsatisfiable for n ≥ 2.
	if _, _, err := exactOrderPinned(g, 2, 2); err == nil {
		t.Error("contradictory pinning accepted")
	}
}

// TestTerminalPropagationImprovesWidth: on a long path, terminal-
// propagated recursive bisection stays near the optimal width 1 even with
// a weak partitioner configuration.
func TestTerminalPropagationImprovesWidth(t *testing.T) {
	g := pathGraph(600)
	w, order := EstimateCutWidth(g, Options{Partition: partition.Options{Seed: 3, Restarts: 1, MaxPasses: 4}})
	if err := g.CheckOrdering(order); err != nil {
		t.Fatal(err)
	}
	if w > 4 {
		t.Errorf("path-600 width = %d, want ≤ 4 with terminal propagation", w)
	}
}

// TestDegreeLowerBoundSandwich: the degree bound never exceeds the exact
// minimum width, which never exceeds the recursive-bisection estimate.
func TestDegreeLowerBoundSandwich(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(9)
		g := hypergraph.New(n)
		for e := 0; e < 2+rng.Intn(2*n); e++ {
			k := 2 + rng.Intn(2)
			vs := make([]int, k)
			for i := range vs {
				vs[i] = rng.Intn(n)
			}
			g.AddEdge(vs...)
		}
		lo := DegreeLowerBound(g)
		_, exact, err := ExactOrder(g)
		if err != nil {
			return false
		}
		est, _ := EstimateCutWidth(g, Options{ExactThreshold: 4, Partition: partition.Options{Seed: seed}})
		return lo <= exact && exact <= est
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDegreeLowerBoundValues(t *testing.T) {
	// Star with 5 leaves (2-vertex edges): max degree 5 → bound 3, and
	// the true width is 3 (hub in the middle: ceil(5/2)).
	g := hypergraph.New(6)
	for leaf := 1; leaf < 6; leaf++ {
		g.AddEdge(0, leaf)
	}
	if got := DegreeLowerBound(g); got != 3 {
		t.Errorf("star bound = %d, want 3", got)
	}
	_, w, err := ExactOrder(g)
	if err != nil || w != 3 {
		t.Errorf("star exact = %d (err %v), want 3", w, err)
	}
	// Singleton edges are ignored.
	g2 := hypergraph.New(2)
	g2.AddEdge(0)
	if got := DegreeLowerBound(g2); got != 0 {
		t.Errorf("singleton bound = %d", got)
	}
}
