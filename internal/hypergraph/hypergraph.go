// Package hypergraph implements the undirected hypergraph view of a
// Boolean network used in Section 4.2 of "Why is ATPG Easy?": the gates,
// inputs and outputs are the nodes and the signal nets are the hyperedges.
// It provides the cut-width of Definition 4.1 — for an ordering h of the
// vertices, the maximum over positions i of the number of hyperedges with
// one endpoint ordered ≤ i and another ordered > i.
package hypergraph

import (
	"fmt"
	"sort"

	"atpgeasy/internal/logic"
)

// Graph is an undirected hypergraph. Each edge is the set of vertices it
// spans (the paper denotes a hyperedge by its vertex set).
type Graph struct {
	NumNodes  int
	Edges     [][]int
	NodeNames []string // optional, for diagnostics
}

// New returns a hypergraph with n nodes and no edges.
func New(n int) *Graph { return &Graph{NumNodes: n} }

// AddEdge adds a hyperedge spanning the given vertices. Duplicates are
// removed; edges spanning fewer than two distinct vertices are kept (they
// can never cross a cut, but keeping them preserves edge indexing for
// callers). It panics on out-of-range vertices.
func (g *Graph) AddEdge(vs ...int) {
	set := append([]int(nil), vs...)
	sort.Ints(set)
	out := set[:0]
	for i, v := range set {
		if v < 0 || v >= g.NumNodes {
			panic(fmt.Sprintf("hypergraph: vertex %d out of range [0,%d)", v, g.NumNodes))
		}
		if i > 0 && v == set[i-1] {
			continue
		}
		out = append(out, v)
	}
	g.Edges = append(g.Edges, out)
}

// FromCircuit builds the hypergraph of a circuit: one vertex per node
// (gate, input or output) and one hyperedge per net, spanning the net's
// driver and all its readers. Nets with no readers yield singleton edges.
func FromCircuit(c *logic.Circuit) *Graph {
	g := New(c.NumNodes())
	g.NodeNames = make([]string, c.NumNodes())
	for i := range c.Nodes {
		g.NodeNames[i] = c.Nodes[i].Name
	}
	for i := range c.Nodes {
		span := make([]int, 0, 1+len(c.Nodes[i].Fanout))
		span = append(span, i)
		span = append(span, c.Nodes[i].Fanout...)
		g.AddEdge(span...)
	}
	return g
}

// Degree returns the number of hyperedges incident to vertex v.
func (g *Graph) Degree(v int) int {
	d := 0
	for _, e := range g.Edges {
		for _, u := range e {
			if u == v {
				d++
				break
			}
		}
	}
	return d
}

// Pins returns the total number of (edge, vertex) incidences.
func (g *Graph) Pins() int {
	n := 0
	for _, e := range g.Edges {
		n += len(e)
	}
	return n
}

// CheckOrdering validates that order is a permutation of all vertices.
func (g *Graph) CheckOrdering(order []int) error {
	if len(order) != g.NumNodes {
		return fmt.Errorf("hypergraph: ordering covers %d of %d vertices", len(order), g.NumNodes)
	}
	seen := make([]bool, g.NumNodes)
	for _, v := range order {
		if v < 0 || v >= g.NumNodes || seen[v] {
			return fmt.Errorf("hypergraph: ordering is not a permutation (at %d)", v)
		}
		seen[v] = true
	}
	return nil
}

// CutProfile returns, for each gap i between positions i and i+1 of the
// ordering (i in 1..n-1, returned at index i-1), the number of hyperedges
// crossing that gap — edges with one endpoint at position ≤ i and another
// at position > i.
func (g *Graph) CutProfile(order []int) ([]int, error) {
	if err := g.CheckOrdering(order); err != nil {
		return nil, err
	}
	n := g.NumNodes
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i + 1 // 1-based positions, as in Definition 4.1
	}
	diff := make([]int, n+2)
	for _, e := range g.Edges {
		if len(e) < 2 {
			continue
		}
		minP, maxP := n+1, 0
		for _, v := range e {
			p := pos[v]
			if p < minP {
				minP = p
			}
			if p > maxP {
				maxP = p
			}
		}
		if minP < maxP {
			// Edge crosses every gap i with minP ≤ i < maxP.
			diff[minP]++
			diff[maxP]--
		}
	}
	profile := make([]int, 0, n-1)
	cur := 0
	for i := 1; i <= n-1; i++ {
		cur += diff[i]
		profile = append(profile, cur)
	}
	return profile, nil
}

// CutWidth returns W(G, h) of Definition 4.1: the maximum cut over all
// positions of the ordering.
func (g *Graph) CutWidth(order []int) (int, error) {
	profile, err := g.CutProfile(order)
	if err != nil {
		return 0, err
	}
	w := 0
	for _, c := range profile {
		if c > w {
			w = c
		}
	}
	return w, nil
}

// CutSize returns the size of the cut (S, V\S): the number of hyperedges
// with at least one endpoint on each side. S is given as a vertex set.
func (g *Graph) CutSize(inS []bool) int {
	cut := 0
	for _, e := range g.Edges {
		hasIn, hasOut := false, false
		for _, v := range e {
			if inS[v] {
				hasIn = true
			} else {
				hasOut = true
			}
			if hasIn && hasOut {
				cut++
				break
			}
		}
	}
	return cut
}
