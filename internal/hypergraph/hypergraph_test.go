package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atpgeasy/internal/logic"
)

func path4() *Graph {
	// Path a-b-c-d as 2-vertex hyperedges.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	return g
}

func TestCutWidthPath(t *testing.T) {
	g := path4()
	// Natural order: width 1 at every gap.
	w, err := g.CutWidth([]int{0, 1, 2, 3})
	if err != nil || w != 1 {
		t.Errorf("path natural order: w=%d err=%v, want 1", w, err)
	}
	// Interleaved order 0,2,1,3: edges (0,1),(1,2),(2,3) cross gap 2.
	w, err = g.CutWidth([]int{0, 2, 1, 3})
	if err != nil || w != 3 {
		t.Errorf("path interleaved: w=%d err=%v, want 3", w, err)
	}
}

func TestCutProfile(t *testing.T) {
	g := path4()
	p, err := g.CutProfile([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 1}
	if len(p) != len(want) {
		t.Fatalf("profile = %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Errorf("profile[%d] = %d, want %d", i, p[i], want[i])
		}
	}
}

func TestHyperedgeCountedOnce(t *testing.T) {
	// A single hyperedge spanning all 4 vertices crosses every gap once.
	g := New(4)
	g.AddEdge(0, 1, 2, 3)
	p, err := g.CutProfile([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range p {
		if c != 1 {
			t.Errorf("gap %d: cut %d, want 1 (hyperedge counted once)", i, c)
		}
	}
}

func TestSingletonAndDuplicateVertices(t *testing.T) {
	g := New(3)
	g.AddEdge(1)          // singleton: never crosses
	g.AddEdge(0, 2, 0, 2) // duplicates removed
	w, err := g.CutWidth([]int{0, 1, 2})
	if err != nil || w != 1 {
		t.Errorf("w=%d err=%v, want 1", w, err)
	}
	if len(g.Edges[1]) != 2 {
		t.Errorf("duplicate vertices kept: %v", g.Edges[1])
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2).AddEdge(0, 5)
}

func TestCheckOrdering(t *testing.T) {
	g := path4()
	for _, bad := range [][]int{{0, 1, 2}, {0, 1, 2, 2}, {0, 1, 2, 9}} {
		if err := g.CheckOrdering(bad); err == nil {
			t.Errorf("ordering %v accepted", bad)
		}
		if _, err := g.CutWidth(bad); err == nil {
			t.Errorf("CutWidth accepted %v", bad)
		}
	}
	if err := g.CheckOrdering([]int{3, 1, 0, 2}); err != nil {
		t.Errorf("valid ordering rejected: %v", err)
	}
}

// TestFigure6CutwidthOrderingA verifies the paper's Figure 6: the circuit
// of Figure 4(a) has cut-width 3 under ordering A = b,c,f,a,h,d,e,g,i.
func TestFigure6CutwidthOrderingA(t *testing.T) {
	c := logic.Figure4a()
	g := FromCircuit(c)
	order := logic.Figure4aOrderingA(c)
	w, err := g.CutWidth(order)
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 {
		p, _ := g.CutProfile(order)
		t.Errorf("W(fig4a, A) = %d, want 3; profile %v", w, p)
	}
	// And the cut Z of Section 4.2 — after {b,c,f,a,h} — is crossed only
	// by the net between h and i: cut size 1.
	p, _ := g.CutProfile(order)
	if p[4] != 1 {
		t.Errorf("cut after position 5 (cut Z) = %d, want 1", p[4])
	}
}

func TestFromCircuitStructure(t *testing.T) {
	c := logic.Figure4a()
	g := FromCircuit(c)
	if g.NumNodes != c.NumNodes() {
		t.Errorf("nodes = %d, want %d", g.NumNodes, c.NumNodes())
	}
	if len(g.Edges) != c.NumNodes() {
		t.Errorf("edges = %d, want one per net = %d", len(g.Edges), c.NumNodes())
	}
	// Net h spans h and its reader i.
	h, i := c.MustLookup("h"), c.MustLookup("i")
	found := false
	for _, e := range g.Edges {
		if len(e) == 2 && e[0] == min(h, i) && e[1] == max(h, i) {
			found = true
		}
	}
	if !found {
		t.Error("net h's hyperedge {h,i} missing")
	}
}

func TestDegreeAndPins(t *testing.T) {
	g := path4()
	if d := g.Degree(1); d != 2 {
		t.Errorf("Degree(1) = %d, want 2", d)
	}
	if d := g.Degree(0); d != 1 {
		t.Errorf("Degree(0) = %d, want 1", d)
	}
	if p := g.Pins(); p != 6 {
		t.Errorf("Pins = %d, want 6", p)
	}
}

func TestCutSize(t *testing.T) {
	g := path4()
	if got := g.CutSize([]bool{true, true, false, false}); got != 1 {
		t.Errorf("cut {0,1} = %d, want 1", got)
	}
	if got := g.CutSize([]bool{true, false, true, false}); got != 3 {
		t.Errorf("cut {0,2} = %d, want 3", got)
	}
	if got := g.CutSize([]bool{true, true, true, true}); got != 0 {
		t.Errorf("full set cut = %d, want 0", got)
	}
}

// TestProfileMatchesCutSize: property check that the sweep-based profile
// agrees with direct per-prefix cut computation on random hypergraphs.
func TestProfileMatchesCutSize(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := New(n)
		for e := 0; e < 2+rng.Intn(10); e++ {
			k := 1 + rng.Intn(3)
			vs := make([]int, k+1)
			for i := range vs {
				vs[i] = rng.Intn(n)
			}
			g.AddEdge(vs...)
		}
		order := rng.Perm(n)
		profile, err := g.CutProfile(order)
		if err != nil {
			return false
		}
		inS := make([]bool, n)
		for i := 0; i < n-1; i++ {
			inS[order[i]] = true
			if g.CutSize(inS) != profile[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCutWidthIsOrderDependent: a star graph has width n-1 with the hub
// first... actually the hub placement doesn't matter for 2-vertex edges —
// check a known order-sensitive case instead.
func TestCutWidthOrderSensitivity(t *testing.T) {
	// Two disjoint paths 0-1-2 and 3-4-5.
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	wGood, _ := g.CutWidth([]int{0, 1, 2, 3, 4, 5})
	wBad, _ := g.CutWidth([]int{0, 3, 1, 4, 2, 5})
	if wGood != 1 {
		t.Errorf("segregated order width = %d, want 1", wGood)
	}
	if wBad <= wGood {
		t.Errorf("interleaved order width = %d, should exceed %d", wBad, wGood)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
