// Package podem implements a PODEM-style structural test generator for
// single stuck-at faults — the portfolio engine's third backend beside
// the caching backtracker and the CDCL solver.
//
// Where the SAT backends decide a CNF miter, PODEM searches directly on
// the circuit: it assigns primary inputs one at a time, simulates the
// good and faulty machines in three-valued logic (0, 1, X), and steers
// each assignment through an objective/backtrace pair — first activate
// the fault (set the fault net to the complement of the stuck value),
// then advance the D-frontier (gates with a fault effect on an input and
// an undetermined output) toward a primary output. Because only primary
// inputs are ever decision variables, backtracking is a simple flip/pop
// over the PI decision stack, and the inputs never assigned come out as
// X — don't-care bits in the returned pattern, for free.
//
// Implication is event-driven: each decision or backtrack re-evaluates
// only the nodes downstream of the changed inputs, drained in ascending
// node-ID (= topological) order off a dirty bitmap, so a sweep costs
// O(affected) rather than O(support). That is what makes PODEM
// competitive with the incremental CDCL backend on mid-size cones, where
// a full-support sweep per decision would dominate the search.
//
// Determinism contract: Run is a pure function of (circuit, fault,
// options). Every choice — which D-frontier gate to advance, which X
// input to backtrace through, tie-breaks between equal controllability
// costs — is resolved by smallest node ID, so the same fault always
// produces the same pattern regardless of scheduling. This is the
// structural analog of the sat package's lex-least branching guarantee
// (see the internal/sat package comment): callers may rely on
// byte-identical patterns at any worker count.
package podem

import (
	"math/bits"
	"time"

	"atpgeasy/internal/logic"
)

// Tri is a three-valued signal: 0, 1 or X (unknown / don't-care).
type Tri uint8

// Signal values. The composite five-valued alphabet of the classic
// algorithm (0, 1, X, D, D̄) is represented as a pair of Tri values, one
// per machine: D is good 1 / faulty 0, D̄ the reverse.
const (
	F0 Tri = 0
	F1 Tri = 1
	TX Tri = 2
)

// String returns "0", "1" or "X".
func (t Tri) String() string {
	switch t {
	case F0:
		return "0"
	case F1:
		return "1"
	default:
		return "X"
	}
}

// Status is the outcome of a Run call.
type Status int8

// Outcomes. Aborted means a resource limit (backtracks, deadline or
// cancellation) was hit before the search completed; the fault may still
// be testable.
const (
	Detected Status = iota
	Untestable
	Aborted
)

// String returns "detected", "untestable" or "aborted".
func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	default:
		return "aborted"
	}
}

// Options bound and guide a Run call. The zero value searches without
// limits under unit controllability costs.
type Options struct {
	// MaxBacktracks aborts the search after this many backtracks
	// (0 = unbounded). A backtrack-limit abort is deterministic: the
	// same fault aborts at the same point in every run, so a caller's
	// fallback to another backend is deterministic too.
	MaxBacktracks int64
	// Deadline, when nonzero, aborts the search once passed. Checked
	// every few implication sweeps; unlike MaxBacktracks this abort is
	// timing-dependent.
	Deadline time.Time
	// Cancel, when non-nil, aborts the search once closed.
	Cancel <-chan struct{}
	// CC0 and CC1, when non-nil, are per-net controllability costs
	// (SCOAP-style: the effort to set the net to 0 resp. 1) indexed by
	// node ID. Backtrace uses them to pick the easiest X input when any
	// input satisfies the objective and the hardest when all inputs
	// must — the standard PODEM guidance. Nil falls back to unit costs
	// (pure smallest-ID order). The heuristic affects search effort
	// only, never verdicts.
	CC0, CC1 []int32
}

// Result is the outcome of one Run.
type Result struct {
	Status Status
	// Pattern is the generated test over c.Inputs, in input order, valid
	// when Status is Detected. Inputs the search never constrained are
	// TX: any fill detects the fault.
	Pattern []Tri
	// Search counters: PI decisions, backtracks (decision flips/pops)
	// and three-valued gate evaluations across all implication sweeps.
	Decisions    int64
	Backtracks   int64
	Implications int64
}

// Vector returns the pattern as a []bool with every X filled as fill.
func (r *Result) Vector(fill bool) []bool {
	vec := make([]bool, len(r.Pattern))
	for i, t := range r.Pattern {
		switch t {
		case F1:
			vec[i] = true
		case F0:
			vec[i] = false
		default:
			vec[i] = fill
		}
	}
	return vec
}

// limitCheckMask throttles the deadline/cancel polls to one per 64
// implication sweeps.
const limitCheckMask = 63

// engine is the per-Run search state. All slices are indexed by node ID
// of the parent circuit; only IDs in the fault's support (transitive
// fanin of its fanout cone) are ever touched.
type engine struct {
	c   *logic.Circuit
	net int
	sa  Tri // the stuck value as a Tri

	sub    []int  // support node IDs, ascending (= topological) order
	cone   []int  // transitive fanout node IDs, ascending
	inCone []bool // transitive fanout membership
	subPIs []int  // primary inputs inside the support, ascending
	outs   []int  // primary outputs inside the cone, ascending

	// pos maps node ID -> position in sub (-1 outside); dirty is the
	// pending re-evaluation bitmap over those positions. Because fanins
	// precede fanouts in ID order, draining set bits lowest-first always
	// sees finalized fanin values, and a changed node only ever marks
	// higher positions — one ascending pass per sweep.
	pos   []int32
	dirty []uint64

	good   []Tri
	faulty []Tri // meaningful only on cone nodes; elsewhere == good
	assign []Tri // PI decisions, indexed by input node ID

	// canReach[n], recomputed each sweep, reports that cone node n can
	// still carry a fault effect to a primary output: its composite
	// value is undetermined (or already D) and a forward path of such
	// nodes reaches an output. The X-path check of the classic
	// algorithm.
	canReach []bool

	opt    Options
	res    Result
	sweeps int64
}

// Run generates a test for net stuck-at sa on c. It is safe for
// concurrent use with other Run calls on the same circuit (the circuit
// is read-only; all search state is per-call).
func Run(c *logic.Circuit, net int, sa bool, opt Options) Result {
	e := &engine{c: c, net: net, opt: opt}
	if sa {
		e.sa = F1
	} else {
		e.sa = F0
	}

	e.cone = c.TransitiveFanout(net)
	e.inCone = make([]bool, c.NumNodes())
	for _, id := range e.cone {
		e.inCone[id] = true
	}
	for _, o := range c.Outputs {
		if e.inCone[o] {
			e.outs = append(e.outs, o)
		}
	}
	if len(e.outs) == 0 {
		e.res.Status = Untestable // no observable output in the fanout
		return e.res
	}
	e.sub = c.TransitiveFanin(e.cone...)
	e.pos = make([]int32, c.NumNodes())
	for i := range e.pos {
		e.pos[i] = -1
	}
	for p, id := range e.sub {
		e.pos[id] = int32(p)
		if c.Nodes[id].Type == logic.Input {
			e.subPIs = append(e.subPIs, id)
		}
	}
	e.good = make([]Tri, c.NumNodes())
	e.faulty = make([]Tri, c.NumNodes())
	e.assign = make([]Tri, c.NumNodes())
	e.canReach = make([]bool, c.NumNodes())
	for i := range e.assign {
		e.assign[i] = TX
	}
	// The faulty machine's fault net is pinned to the stuck value for the
	// whole search; implication never re-evaluates it.
	e.faulty[net] = e.sa

	// Seed every support position dirty: the first imply is a full sweep
	// that establishes consistent values from the all-X assignment.
	e.dirty = make([]uint64, (len(e.sub)+63)/64)
	for i := range e.dirty {
		e.dirty[i] = ^uint64(0)
	}
	if tail := uint(len(e.sub)) & 63; tail != 0 {
		e.dirty[len(e.dirty)-1] = (1 << tail) - 1
	}

	e.search()
	return e.res
}

// negTri inverts a determined value and passes X through.
func negTri(t Tri, neg bool) Tri {
	if !neg || t == TX {
		return t
	}
	return t ^ 1
}

// evalGood evaluates node id's good-machine value in three-valued logic.
func (e *engine) evalGood(id int) Tri {
	n := &e.c.Nodes[id]
	switch n.Type {
	case logic.Input:
		return e.assign[id]
	case logic.Const0:
		return F0
	case logic.Const1:
		return F1
	case logic.Buf, logic.Not:
		v := negTri(e.good[n.Fanin[0]], n.Negated(0))
		if n.Type == logic.Not {
			v = negTri(v, true)
		}
		return v
	case logic.And, logic.Nand:
		out := F1
		for i, fi := range n.Fanin {
			v := negTri(e.good[fi], n.Negated(i))
			if v == F0 {
				out = F0
				break
			}
			if v == TX {
				out = TX
			}
		}
		if n.Type == logic.Nand {
			out = negTri(out, true)
		}
		return out
	case logic.Or, logic.Nor:
		out := F0
		for i, fi := range n.Fanin {
			v := negTri(e.good[fi], n.Negated(i))
			if v == F1 {
				out = F1
				break
			}
			if v == TX {
				out = TX
			}
		}
		if n.Type == logic.Nor {
			out = negTri(out, true)
		}
		return out
	default: // Xor, Xnor
		out := F0
		for i, fi := range n.Fanin {
			v := negTri(e.good[fi], n.Negated(i))
			if v == TX {
				return TX
			}
			out ^= v
		}
		if n.Type == logic.Xnor {
			out = negTri(out, true)
		}
		return out
	}
}

// faultyIn reads the value fanin fi presents to a faulty-machine gate:
// the faulty value inside the cone, the shared good value outside it.
func (e *engine) faultyIn(fi int) Tri {
	if e.inCone[fi] {
		return e.faulty[fi]
	}
	return e.good[fi]
}

// evalFaulty evaluates cone node id's faulty-machine value. The fault
// net itself is never evaluated — its faulty value is pinned at setup.
func (e *engine) evalFaulty(id int) Tri {
	n := &e.c.Nodes[id]
	switch n.Type {
	case logic.Input:
		return e.assign[id]
	case logic.Const0:
		return F0
	case logic.Const1:
		return F1
	case logic.Buf, logic.Not:
		v := negTri(e.faultyIn(n.Fanin[0]), n.Negated(0))
		if n.Type == logic.Not {
			v = negTri(v, true)
		}
		return v
	case logic.And, logic.Nand:
		out := F1
		for i, fi := range n.Fanin {
			v := negTri(e.faultyIn(fi), n.Negated(i))
			if v == F0 {
				out = F0
				break
			}
			if v == TX {
				out = TX
			}
		}
		if n.Type == logic.Nand {
			out = negTri(out, true)
		}
		return out
	case logic.Or, logic.Nor:
		out := F0
		for i, fi := range n.Fanin {
			v := negTri(e.faultyIn(fi), n.Negated(i))
			if v == F1 {
				out = F1
				break
			}
			if v == TX {
				out = TX
			}
		}
		if n.Type == logic.Nor {
			out = negTri(out, true)
		}
		return out
	default: // Xor, Xnor
		out := F0
		for i, fi := range n.Fanin {
			v := negTri(e.faultyIn(fi), n.Negated(i))
			if v == TX {
				return TX
			}
			out ^= v
		}
		if n.Type == logic.Xnor {
			out = negTri(out, true)
		}
		return out
	}
}

// markDirty queues node id for re-evaluation in the next imply sweep.
func (e *engine) markDirty(id int) {
	if p := e.pos[id]; p >= 0 {
		e.dirty[p>>6] |= 1 << (uint(p) & 63)
	}
}

// imply drains the dirty bitmap in ascending position (= topological)
// order: each queued node is re-evaluated in both machines, and a node
// whose value changed marks its in-support fanouts — always at higher
// positions, so one pass settles the network. Monotone in the PI
// assignment during forward search — adding assignments only turns X
// into 0/1 — which is what makes the frontier checks below sound;
// backtracking re-queues the un-assigned inputs and the same drain
// restores the weaker values.
func (e *engine) imply() {
	var evals int64
	for w := 0; w < len(e.dirty); w++ {
		for e.dirty[w] != 0 {
			b := bits.TrailingZeros64(e.dirty[w])
			e.dirty[w] &^= 1 << uint(b)
			p := w<<6 | b
			id := e.sub[p]
			evals++
			g := e.evalGood(id)
			changed := g != e.good[id]
			e.good[id] = g
			if e.inCone[id] && id != e.net {
				f := e.evalFaulty(id)
				if f != e.faulty[id] {
					e.faulty[id] = f
					changed = true
				}
			}
			if !changed {
				continue
			}
			for _, fo := range e.c.Nodes[id].Fanout {
				if p2 := e.pos[fo]; p2 >= 0 {
					e.dirty[p2>>6] |= 1 << (uint(p2) & 63)
				}
			}
		}
	}
	e.res.Implications += evals
	e.sweeps++
}

// compositeBlocked reports that cone node n can no longer carry a fault
// effect: both machines determined and equal.
func (e *engine) compositeBlocked(n int) bool {
	return e.good[n] != TX && e.faulty[n] != TX && e.good[n] == e.faulty[n]
}

// isD reports a fault effect at cone node n: both machines determined
// and different.
func (e *engine) isD(n int) bool {
	return e.good[n] != TX && e.faulty[n] != TX && e.good[n] != e.faulty[n]
}

// updateReach recomputes canReach over the cone by one reverse
// topological sweep: a cone node still matters iff it is not blocked and
// is an output or feeds a cone reader that still matters.
func (e *engine) updateReach() {
	for i := len(e.cone) - 1; i >= 0; i-- {
		id := e.cone[i]
		if e.compositeBlocked(id) {
			e.canReach[id] = false
			continue
		}
		r := e.c.IsOutput(id)
		if !r {
			for _, fo := range e.c.Nodes[id].Fanout {
				if e.inCone[fo] && e.canReach[fo] {
					r = true
					break
				}
			}
		}
		e.canReach[id] = r
	}
}

// detected reports a fault effect at a primary output.
func (e *engine) detected() bool {
	for _, o := range e.outs {
		if e.isD(o) {
			return true
		}
	}
	return false
}

// failed reports that the current partial assignment can never detect
// the fault: activation lost (good fault net stuck at the fault value),
// or activation fixed with no undetermined path left from the fault site
// to an output.
func (e *engine) failed() bool {
	if e.good[e.net] != TX && e.good[e.net] == e.sa {
		return true
	}
	if e.good[e.net] == TX {
		return false // activation objective still open
	}
	// Activated: the fault net carries D. updateReach has run for this
	// sweep, so the X-path check is one array read.
	return !e.canReach[e.net]
}

// ctrlCost is the controllability cost of setting net id to v.
func (e *engine) ctrlCost(id int, v Tri) int64 {
	if v == F0 {
		if e.opt.CC0 != nil {
			return int64(e.opt.CC0[id])
		}
	} else if e.opt.CC1 != nil {
		return int64(e.opt.CC1[id])
	}
	return 1
}

// objective picks the next (net, value) goal: activate the fault if its
// good value is still X, otherwise advance the lowest-ID D-frontier gate
// that can still reach an output, asking for a non-controlling value on
// its lowest-ID X input. Returns ok=false when no gate offers an X input
// to steer — the caller then falls back to a plain PI decision.
func (e *engine) objective() (net int, val Tri, ok bool) {
	if e.good[e.net] == TX {
		return e.net, e.sa ^ 1, true
	}
	// D-frontier: cone gates with a fault-effect input, an undetermined
	// output, and a live X-path. e.cone is ascending, so the first match
	// is the lowest ID.
	for _, id := range e.cone {
		if id == e.net || !e.canReach[id] {
			continue
		}
		if e.good[id] != TX && e.faulty[id] != TX {
			continue // output determined: not frontier
		}
		n := &e.c.Nodes[id]
		hasD := false
		for _, fi := range n.Fanin {
			if e.inCone[fi] && e.isD(fi) {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		for i, fi := range n.Fanin {
			if e.good[fi] != TX {
				continue
			}
			// Ask for the non-controlling value so the fault effect
			// passes through; XOR/XNOR have none, any value propagates.
			var nc Tri
			switch n.Type {
			case logic.And, logic.Nand:
				nc = F1
			case logic.Or, logic.Nor:
				nc = F0
			default:
				nc = F0
			}
			return fi, negTri(nc, n.Negated(i)), true
		}
	}
	return 0, TX, false
}

// backtrace walks an objective back to an unassigned primary input
// through X-valued nets, choosing at each gate the easiest X input when
// one suffices and the hardest when all are needed (ties to the lowest
// ID). The walk always terminates at an X input: a gate with an X output
// has at least one X fanin, and constants are never X.
func (e *engine) backtrace(net int, val Tri) (int, Tri) {
	for {
		n := &e.c.Nodes[net]
		if n.Type == logic.Input {
			return net, val
		}
		outInv := n.Type == logic.Not || n.Type == logic.Nand || n.Type == logic.Nor
		vb := negTri(val, outInv)
		var need Tri // base-gate input value to request
		var all bool // true when every input must take it
		switch n.Type {
		case logic.Buf, logic.Not:
			need, all = vb, true
		case logic.And, logic.Nand:
			need, all = vb, vb == F1 // AND=1 needs all inputs 1; AND=0 needs one 0
		case logic.Or, logic.Nor:
			need, all = vb, vb == F0 // OR=0 needs all inputs 0; OR=1 needs one 1
		default: // Xor, Xnor: no controlling value; steer the first X input
			need, all = vb, false
		}
		best, bestJ := int64(-1), -1
		var bestVal Tri
		for j, fi := range n.Fanin {
			if e.good[fi] != TX {
				continue
			}
			want := negTri(need, n.Negated(j))
			cost := e.ctrlCost(fi, want)
			better := bestJ < 0
			if !better {
				if all {
					better = cost > best // hardest first: fail fast
				} else {
					better = cost < best // easiest first
				}
			}
			if better {
				best, bestJ, bestVal = cost, j, want
			}
		}
		// bestJ >= 0 always: the objective net has good X, so some fanin
		// is X (a gate over determined inputs is determined).
		net, val = n.Fanin[bestJ], bestVal
	}
}

// frame is one PI decision on the stack.
type frame struct {
	pi     int
	val    Tri
	second bool // both values tried; next failure pops
}

// aborted polls the deadline and cancellation channel, throttled to one
// check per limitCheckMask+1 sweeps.
func (e *engine) abortedByLimits() bool {
	// Poll on the first sweep (so a pre-expired deadline aborts before
	// any verdict) and every limitCheckMask+1 sweeps after.
	if e.sweeps&limitCheckMask != 1 {
		return false
	}
	if !e.opt.Deadline.IsZero() && time.Now().After(e.opt.Deadline) {
		return true
	}
	if e.opt.Cancel != nil {
		select {
		case <-e.opt.Cancel:
			return true
		default:
		}
	}
	return false
}

// search is the PODEM main loop: imply, test, backtrack on failure,
// otherwise decide one more primary input via objective/backtrace.
func (e *engine) search() {
	var stack []frame
	for {
		e.imply()
		if e.abortedByLimits() {
			e.res.Status = Aborted
			return
		}
		if e.detected() {
			e.res.Status = Detected
			e.res.Pattern = make([]Tri, len(e.c.Inputs))
			for i, in := range e.c.Inputs {
				e.res.Pattern[i] = e.assign[in]
			}
			return
		}
		e.updateReach()
		if e.failed() {
			// Backtrack: flip the deepest single-tried decision, popping
			// exhausted ones; an empty stack proves untestability.
			for {
				if len(stack) == 0 {
					e.res.Status = Untestable
					return
				}
				top := &stack[len(stack)-1]
				if !top.second {
					top.second = true
					top.val ^= 1
					e.assign[top.pi] = top.val
					e.markDirty(top.pi)
					break
				}
				e.assign[top.pi] = TX
				e.markDirty(top.pi)
				stack = stack[:len(stack)-1]
			}
			e.res.Backtracks++
			if e.opt.MaxBacktracks > 0 && e.res.Backtracks >= e.opt.MaxBacktracks {
				e.res.Status = Aborted
				return
			}
			continue
		}
		net, val, ok := e.objective()
		var pi int
		var pv Tri
		if ok {
			pi, pv = e.backtrace(net, val)
		} else {
			// No steerable X input on the frontier (the undetermined
			// side lives only in the faulty machine): fall back to the
			// lowest unassigned support PI. Completeness is unaffected —
			// the search still enumerates PI assignments.
			pi = -1
			for _, id := range e.subPIs {
				if e.assign[id] == TX {
					pi = id
					break
				}
			}
			if pi < 0 {
				// Fully assigned yet neither detected nor failed cannot
				// happen (all values determined); guard anyway.
				e.res.Status = Untestable
				return
			}
			pv = F0
		}
		e.assign[pi] = pv
		e.markDirty(pi)
		stack = append(stack, frame{pi: pi, val: pv})
		e.res.Decisions++
	}
}
