package podem_test

import (
	"reflect"
	"testing"
	"time"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/podem"
)

// bruteForce decides a fault by exhaustive simulation: it returns true
// and a detecting vector when any input assignment exposes the fault at
// a primary output.
func bruteForce(t *testing.T, c *logic.Circuit, net int, sa bool) (bool, []bool) {
	t.Helper()
	n := len(c.Inputs)
	if n > 16 {
		t.Fatalf("bruteForce: %d inputs is too many", n)
	}
	forced := map[int]bool{net: sa}
	vec := make([]bool, n)
	for m := 0; m < 1<<n; m++ {
		for i := range vec {
			vec[i] = m&(1<<i) != 0
		}
		good := c.Simulate(vec)
		bad := c.SimulateWith(vec, forced)
		for _, o := range c.Outputs {
			if good[o] != bad[o] {
				out := make([]bool, n)
				copy(out, vec)
				return true, out
			}
		}
	}
	return false, nil
}

// checkDetects verifies that vec exposes the fault at some output.
func checkDetects(t *testing.T, c *logic.Circuit, net int, sa bool, vec []bool) {
	t.Helper()
	good := c.Simulate(vec)
	bad := c.SimulateWith(vec, map[int]bool{net: sa})
	for _, o := range c.Outputs {
		if good[o] != bad[o] {
			return
		}
	}
	t.Errorf("net%d/%v: pattern %v does not detect the fault", net, sa, vec)
}

// allFaults enumerates both stuck-at polarities on every non-constant net.
func allFaults(c *logic.Circuit) [][2]int {
	var out [][2]int
	for id := range c.Nodes {
		switch c.Nodes[id].Type {
		case logic.Const0, logic.Const1:
			continue
		}
		out = append(out, [2]int{id, 0}, [2]int{id, 1})
	}
	return out
}

// TestAgainstBruteForce checks verdicts and patterns against exhaustive
// simulation on a bank of small circuits, with both X fills.
func TestAgainstBruteForce(t *testing.T) {
	circuits := []*logic.Circuit{
		logic.Figure4a(),
		gen.ArrayMultiplier(3),
		gen.Random(gen.RandomParams{Inputs: 8, Gates: 40, Seed: 3}),
		gen.Random(gen.RandomParams{Inputs: 10, Gates: 80, Seed: 11}),
		gen.Random(gen.RandomParams{Inputs: 9, Gates: 60, Seed: 42, InvProb: 0.4}),
	}
	for _, c := range circuits {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for _, f := range allFaults(c) {
				net, sa := f[0], f[1] == 1
				want, _ := bruteForce(t, c, net, sa)
				res := podem.Run(c, net, sa, podem.Options{})
				if want && res.Status != podem.Detected {
					t.Fatalf("net%d/%v: got %v, brute force says testable", net, sa, res.Status)
				}
				if !want && res.Status != podem.Untestable {
					t.Fatalf("net%d/%v: got %v, brute force says untestable", net, sa, res.Status)
				}
				if res.Status == podem.Detected {
					checkDetects(t, c, net, sa, res.Vector(false))
					checkDetects(t, c, net, sa, res.Vector(true))
				}
			}
		})
	}
}

// TestDeterministic checks that two runs of the same fault produce the
// same result, counters included.
func TestDeterministic(t *testing.T) {
	c := gen.Random(gen.RandomParams{Inputs: 12, Gates: 120, Seed: 5})
	for _, f := range allFaults(c) {
		net, sa := f[0], f[1] == 1
		a := podem.Run(c, net, sa, podem.Options{})
		b := podem.Run(c, net, sa, podem.Options{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("net%d/%v: runs differ: %+v vs %+v", net, sa, a, b)
		}
	}
}

// TestScoapGuidanceKeepsVerdicts checks that controllability costs steer
// the search without changing any verdict.
func TestScoapGuidanceKeepsVerdicts(t *testing.T) {
	c := gen.Random(gen.RandomParams{Inputs: 10, Gates: 100, Seed: 9})
	// Arbitrary but deterministic per-net costs.
	cc0 := make([]int32, c.NumNodes())
	cc1 := make([]int32, c.NumNodes())
	for i := range cc0 {
		cc0[i] = int32(1 + (i*7)%13)
		cc1[i] = int32(1 + (i*5)%11)
	}
	for _, f := range allFaults(c) {
		net, sa := f[0], f[1] == 1
		plain := podem.Run(c, net, sa, podem.Options{})
		guided := podem.Run(c, net, sa, podem.Options{CC0: cc0, CC1: cc1})
		if plain.Status != guided.Status {
			t.Fatalf("net%d/%v: plain %v, guided %v", net, sa, plain.Status, guided.Status)
		}
		if guided.Status == podem.Detected {
			checkDetects(t, c, net, sa, guided.Vector(false))
		}
	}
}

// TestMaxBacktracksAborts checks the deterministic backtrack-limit abort.
func TestMaxBacktracksAborts(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	aborted := 0
	for _, f := range allFaults(c) {
		net, sa := f[0], f[1] == 1
		res := podem.Run(c, net, sa, podem.Options{MaxBacktracks: 1})
		if res.Status == podem.Aborted {
			aborted++
			if res.Backtracks != 1 {
				t.Fatalf("net%d/%v: aborted with %d backtracks, want 1", net, sa, res.Backtracks)
			}
			// The abort must be reproducible.
			again := podem.Run(c, net, sa, podem.Options{MaxBacktracks: 1})
			if again.Status != podem.Aborted {
				t.Fatalf("net%d/%v: abort not deterministic", net, sa)
			}
		}
	}
	if aborted == 0 {
		t.Fatal("no fault hit the 1-backtrack limit on mult4")
	}
}

// TestDeadlineAborts checks that an already-expired deadline aborts.
func TestDeadlineAborts(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	res := podem.Run(c, c.Outputs[0], false, podem.Options{
		Deadline: time.Now().Add(-time.Second),
	})
	if res.Status != podem.Aborted {
		t.Fatalf("expired deadline: got %v, want aborted", res.Status)
	}
}

// TestCancelAborts checks that a closed cancel channel aborts.
func TestCancelAborts(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	done := make(chan struct{})
	close(done)
	res := podem.Run(c, c.Outputs[0], false, podem.Options{Cancel: done})
	if res.Status != podem.Aborted {
		t.Fatalf("closed cancel: got %v, want aborted", res.Status)
	}
}

// TestXPatternsHaveX checks that PODEM actually leaves don't-cares in
// patterns — the backend's headline feature — on a circuit with disjoint
// output cones.
func TestXPatternsHaveX(t *testing.T) {
	c := gen.Random(gen.RandomParams{Inputs: 12, Gates: 100, Seed: 21})
	sawX := false
	for _, f := range allFaults(c) {
		net, sa := f[0], f[1] == 1
		res := podem.Run(c, net, sa, podem.Options{})
		if res.Status != podem.Detected {
			continue
		}
		for _, v := range res.Pattern {
			if v == podem.TX {
				sawX = true
			}
		}
		if sawX {
			break
		}
	}
	if !sawX {
		t.Fatal("no detected fault produced an X bit in its pattern")
	}
}

// TestUnobservableFault checks the immediate-untestable path for a net
// with no primary output in its fanout (possible only via dead logic; a
// net feeding nothing is promoted to an output by the generator, so use
// a hand-built circuit where a cone is masked by a constant).
func TestConstMaskedFault(t *testing.T) {
	b := logic.NewBuilder("masked")
	x := b.Input("x")
	zero := b.Const("zero", false)
	g := b.GateN(logic.And, "g", []int{x, zero}, nil) // g = x AND 0 = 0
	b.MarkOutput(g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// x stuck-at-1 can never be observed through g.
	res := podem.Run(c, x, true, podem.Options{})
	if res.Status != podem.Untestable {
		t.Fatalf("masked fault: got %v, want untestable", res.Status)
	}
}

func BenchmarkPodemMult8(b *testing.B) {
	c := gen.ArrayMultiplier(8)
	faults := allFaults(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range faults {
			podem.Run(c, f[0], f[1] == 1, podem.Options{})
		}
	}
}
