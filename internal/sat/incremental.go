package sat

import (
	"sort"

	"atpgeasy/internal/cnf"
)

// Incremental is an assumption-based CDCL solver whose learned clauses,
// variable activities, and saved phases survive across calls. One
// instance is Loaded with a formula once and then queried many times
// with SolveAssuming — the MiniSat incremental interface. The ATPG
// engine uses it to solve every fault of a fanout region on one
// instance, so conflicts learned proving one fault untestable (or
// finding its vector) prune the search for the region's other faults.
//
// Determinism contract: when Load is given a priority variable list,
// every decision assigns the first unassigned priority variable to
// false before any activity-ordered decision is considered. The first
// model found then projects onto the priority variables as the
// lexicographically least assignment among all models consistent with
// the assumptions, regardless of which learned clauses happen to be in
// the database. This is what keeps region-grouped solving
// byte-identical to fresh-per-fault solving: both extract the same
// lex-least test vector.
//
// An Incremental value is not safe for concurrent use; the ATPG engine
// keeps one per worker, held by the worker's Arena.
type Incremental struct {
	// MaxConflicts bounds the conflicts of a single SolveAssuming call
	// (0 = unbounded). The call returns Unknown when exhausted; the
	// instance stays valid and a retry resumes with all learned
	// clauses intact.
	MaxConflicts int64

	// LearnedLimit bounds the learned-clause database in bytes
	// (0 = DefaultLearnedLimit). When learned storage exceeds the
	// limit the database is reduced to half of it, worst clauses
	// (high LBD, low activity) first.
	LearnedLimit int64

	st incState
}

// DefaultLearnedLimit is the learned-clause byte budget when
// Incremental.LearnedLimit is zero.
const DefaultLearnedLimit = 16 << 20

// learnedShrinkFloor is the smallest budget ShrinkLearned imposes,
// mirroring cacheShrinkFloor on the arena cache: shrinking degrades
// clause reuse, it never disables the solver.
const learnedShrinkFloor = 64 << 10

// Activity rescale parameters shared with the DPLL solver (see
// rescaleActivities in dpll.go).
//
// incState carries the persistent solver state between SolveAssuming
// calls. The layout mirrors dpllState so the two solvers stay easy to
// diff; the incremental additions are the clause slab (clauses must
// outlive the encoder buffers Load copies them from), per-learned-
// clause metadata (born call / LBD / activity), the priority branching
// order, and the failed latch that distinguishes global UNSAT from
// UNSAT-under-assumptions.
type incState struct {
	numVars  int
	clauses  [][]cnf.Lit // problem clauses [0,nProblem) then learned
	nProblem int
	slab     []cnf.Lit // backing storage for problem clause literals

	watches  [][]int32
	assign   []cnf.Value
	level    []int32
	reason   []int32
	trail    []cnf.Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     *varHeap
	phase    []bool
	seen     []bool

	// priority holds the branching variables decided lex-first: every
	// decision takes priority[prioCursor] (the first unassigned entry)
	// and assigns it false before any heap decision is considered.
	// prioCursor only moves forward within one decision sequence and
	// resets on every backtrack.
	priority   []int
	prioCursor int

	// Learned-clause metadata, parallel to clauses[nProblem:].
	born         []int64 // SolveAssuming call number that learned it
	lbd          []int32 // distinct decision levels at learn time (glue)
	act          []float64
	claInc       float64
	learnedBytes int64

	calls  int64 // SolveAssuming invocations since Load
	failed bool  // conflict at level 0: UNSAT regardless of assumptions

	stats Stats // per-call, reset by SolveAssuming
}

// NewIncremental returns an empty incremental solver; call Load before
// SolveAssuming.
func NewIncremental() *Incremental { return &Incremental{} }

// clauseBytes approximates the heap footprint of one learned clause:
// the literal array plus slice header and metadata entries.
func clauseBytes(n int) int64 { return int64(16*n + 48) }

func (s *Incremental) effectiveLearnedLimit() int64 {
	if s.LearnedLimit > 0 {
		return s.LearnedLimit
	}
	return DefaultLearnedLimit
}

// LearnedBytes reports the current learned-clause storage.
func (s *Incremental) LearnedBytes() int64 { return s.st.learnedBytes }

// NumLearned reports the learned clauses currently in the database.
func (s *Incremental) NumLearned() int { return len(s.st.clauses) - s.st.nProblem }

// ShrinkLearned halves the learned-clause budget (sticky, floored at
// learnedShrinkFloor) and immediately reduces the database to fit.
// Arena.Shrink calls it under memory pressure, between solves, when the
// owning worker's arena holds an incremental instance. It returns the
// new budget.
func (s *Incremental) ShrinkLearned() int64 {
	cur := s.effectiveLearnedLimit()
	next := cur / 2
	if next < learnedShrinkFloor {
		next = learnedShrinkFloor
	}
	s.LearnedLimit = next
	// Between calls the solver is fully backtracked, which reduceDB
	// requires; if called mid-search (it should not be), the reduction
	// waits for the next call boundary.
	if len(s.st.trailLim) == 0 && s.st.learnedBytes > next {
		s.reduceDB(next)
	}
	return next
}

// Failed reports whether the loaded formula is unsatisfiable
// independent of any assumptions (a conflict was derived at decision
// level 0). Only then may a caller record an Unsat result as global.
func (s *Incremental) Failed() bool { return s.st.failed }

// Load resets the instance to formula f with branching priority order
// prio (may be nil for pure activity branching). The clause data is
// copied: f may alias encoder buffers the caller will overwrite.
// Learned clauses, activities, and phases from any previous Load are
// discarded — Load is a cold start for a new formula; knowledge reuse
// happens across SolveAssuming calls, not across Loads.
func (s *Incremental) Load(f *cnf.Formula, prio []int) {
	st := &s.st
	n := f.NumVars
	st.numVars = n
	st.failed = false
	st.calls = 0
	st.qhead = 0
	st.varInc = 1
	st.claInc = 1
	st.learnedBytes = 0
	st.prioCursor = 0
	st.trail = st.trail[:0]
	st.trailLim = st.trailLim[:0]
	st.born = st.born[:0]
	st.lbd = st.lbd[:0]
	st.act = st.act[:0]
	st.clauses = st.clauses[:0]

	st.assign = zeroed(st.assign, n) // Unassigned == 0
	st.level = zeroed(st.level, n)
	st.activity = zeroed(st.activity, n)
	st.phase = zeroed(st.phase, n)
	st.seen = zeroed(st.seen, n)
	st.reason = sized(st.reason, n)
	for i := range st.reason {
		st.reason[i] = -1
	}
	st.watches = sized(st.watches, 2*n)
	for i := range st.watches {
		st.watches[i] = st.watches[i][:0]
	}
	st.priority = append(st.priority[:0], prio...)

	// The heap aliases the activity slice, which zeroed may have
	// reallocated; rebuild it from scratch.
	st.heap = newVarHeap(st.activity)
	for v := 0; v < n; v++ {
		st.heap.push(v)
	}

	// Copy, normalize, and watch the problem clauses, mirroring
	// newDPLLState so both solvers search the same clause set.
	need := 0
	for _, c := range f.Clauses {
		need += len(c)
	}
	if cap(st.slab) < need {
		st.slab = make([]cnf.Lit, 0, need)
	}
	st.slab = st.slab[:0]
	for _, c := range f.Clauses {
		norm, taut := append(cnf.Clause(nil), c...).Normalize()
		if taut {
			continue
		}
		switch len(norm) {
		case 0:
			st.failed = true
		case 1:
			if !s.enqueue(norm[0], -1) {
				st.failed = true
			}
		default:
			start := len(st.slab)
			st.slab = append(st.slab, norm...)
			cl := st.slab[start : start+len(norm) : start+len(norm)]
			ci := int32(len(st.clauses))
			st.clauses = append(st.clauses, cl)
			st.watches[cl[0]] = append(st.watches[cl[0]], ci)
			st.watches[cl[1]] = append(st.watches[cl[1]], ci)
		}
		for _, l := range norm {
			st.activity[l.Var()] += 0.1
		}
	}
	st.nProblem = len(st.clauses)
	st.heap.rebuild(n)

	if !st.failed && s.propagate() >= 0 {
		st.failed = true
	}
}

// Solve implements the Solver interface: one-shot solving without
// assumptions or priority order, Loading f fresh.
func (s *Incremental) Solve(f *cnf.Formula) Solution {
	s.Load(f, nil)
	return s.SolveAssuming(nil, Limits{})
}

// SolveAssuming searches for a model of the loaded formula under the
// given assumption literals. Outcomes:
//
//   - Sat: Model is a satisfying assignment consistent with the
//     assumptions; with a priority order its projection onto the
//     priority variables is lex-least.
//   - Unsat: no model under these assumptions. The formula itself may
//     still be satisfiable under other assumptions unless Failed()
//     reports true — callers must not record a plain Unsat as global.
//   - Unknown: MaxConflicts or Limits exhausted; the instance remains
//     valid and a retry resumes with all learned clauses intact.
//
// The solver is left fully backtracked on return, ready for the next
// call. Per-call Stats report LearnedKept (clauses surviving from
// earlier calls), LearnedReused (of those, ones that participated in
// this call's conflict analyses), and ClauseDBBytes (learned storage
// at call end).
func (s *Incremental) SolveAssuming(assumps []cnf.Lit, lim Limits) Solution {
	st := &s.st
	st.calls++
	st.stats = Stats{LearnedKept: int64(len(st.born))}
	defer s.cancelUntil(0)

	// finish backtracks, enforces the learned budget (reduction needs
	// level 0, so call boundaries and restarts are where it runs), and
	// snapshots the DB gauge. Models are extracted before finish.
	finish := func(status Status, model []bool) Solution {
		s.cancelUntil(0)
		if st.learnedBytes > s.effectiveLearnedLimit() {
			s.reduceDB(s.effectiveLearnedLimit())
		}
		st.stats.ClauseDBBytes = st.learnedBytes
		return Solution{Status: status, Model: model, Stats: st.stats}
	}

	if st.failed {
		return finish(Unsat, nil)
	}
	if lim.expired() {
		return finish(Unknown, nil)
	}
	// A previous call may have left the database over a freshly
	// shrunk budget; reduce before searching.
	if st.learnedBytes > s.effectiveLearnedLimit() {
		s.reduceDB(s.effectiveLearnedLimit())
	}

	restartLimit := int64(100)
	var conflicts, conflictsAtRestart, steps int64
	for {
		steps++
		if steps%limitCheck == 0 && lim.expired() {
			return finish(Unknown, nil)
		}
		confl := s.propagate()
		if confl >= 0 {
			st.stats.Conflicts++
			conflicts++
			conflictsAtRestart++
			if len(st.trailLim) == 0 {
				// Conflict with no decisions or assumptions on the
				// trail: globally UNSAT.
				st.failed = true
				return finish(Unsat, nil)
			}
			if len(st.trailLim) <= len(assumps) {
				// Every decision level on the trail is an assumption
				// level, so the conflict refutes the assumptions, not
				// the formula: Unsat for this call only. If a clause
				// learned in an earlier call delivered the refutation,
				// credit the reuse counter — this is the common case
				// where retention short-circuits a whole re-proof.
				if li := int(confl) - st.nProblem; li >= 0 && st.born[li] < st.calls {
					st.stats.LearnedReused++
				}
				return finish(Unsat, nil)
			}
			if s.MaxConflicts > 0 && conflicts > s.MaxConflicts {
				return finish(Unknown, nil)
			}
			learnt, back := s.analyze(confl)
			// Backjumping below the assumption prefix is allowed:
			// the decision loop re-asserts popped assumptions. A unit
			// learnt lands at level 0 and persists across calls — it
			// is implied by the formula alone, since conflict analysis
			// resolves only over clauses of the database.
			s.cancelUntil(back)
			if !s.learn(learnt) {
				st.failed = true
				return finish(Unsat, nil)
			}
			st.varInc /= 0.95
			s.decayClauseActivity()
			continue
		}

		if conflictsAtRestart >= restartLimit {
			conflictsAtRestart = 0
			restartLimit = restartLimit * 3 / 2
			s.cancelUntil(0)
			if st.learnedBytes > s.effectiveLearnedLimit() {
				s.reduceDB(s.effectiveLearnedLimit())
			}
			continue
		}

		// Assert the next pending assumption, one decision level per
		// assumption. An assumption already true still pushes a dummy
		// level so trail levels map 1:1 onto assumption indices; an
		// assumption already false contradicts the formula or an
		// earlier assumption — Unsat for this call.
		if lvl := len(st.trailLim); lvl < len(assumps) {
			a := assumps[lvl]
			switch s.litValue(a) {
			case cnf.True:
				st.trailLim = append(st.trailLim, len(st.trail))
			case cnf.False:
				return finish(Unsat, nil)
			default:
				st.stats.Decisions++
				st.trailLim = append(st.trailLim, len(st.trail))
				s.enqueue(a, -1)
			}
			continue
		}

		l := s.pickBranch()
		if l == litUndef {
			model := make([]bool, st.numVars)
			for i := range model {
				model[i] = st.assign[i] == cnf.True
			}
			return finish(Sat, model)
		}
		st.stats.Decisions++
		if d := len(st.trailLim) + 1; d > st.stats.MaxDepth {
			st.stats.MaxDepth = d
		}
		st.trailLim = append(st.trailLim, len(st.trail))
		s.enqueue(l, -1)
	}
}

func (s *Incremental) litValue(l cnf.Lit) cnf.Value {
	v := s.st.assign[l.Var()]
	if v == cnf.Unassigned {
		return cnf.Unassigned
	}
	if (v == cnf.True) != l.IsNeg() {
		return cnf.True
	}
	return cnf.False
}

// enqueue asserts literal l with the given reason clause index,
// reporting false if l is already false.
func (s *Incremental) enqueue(l cnf.Lit, reason int32) bool {
	st := &s.st
	switch s.litValue(l) {
	case cnf.True:
		return true
	case cnf.False:
		return false
	}
	v := l.Var()
	st.assign[v] = cnf.ValueOf(!l.IsNeg())
	st.level[v] = int32(len(st.trailLim))
	st.reason[v] = reason
	st.trail = append(st.trail, l)
	return true
}

// propagate performs two-watched-literal unit propagation, returning
// the index of a conflicting clause or -1. Structurally identical to
// dpllState.propagate.
func (s *Incremental) propagate() int32 {
	st := &s.st
	for st.qhead < len(st.trail) {
		p := st.trail[st.qhead]
		st.qhead++
		st.stats.Propagations++
		falseLit := p.Not()
		ws := st.watches[falseLit]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			c := st.clauses[ci]
			if c[0] == falseLit {
				c[0], c[1] = c[1], c[0]
			}
			if s.litValue(c[0]) == cnf.True {
				kept = append(kept, ci)
				continue
			}
			moved := false
			for k := 2; k < len(c); k++ {
				if s.litValue(c[k]) != cnf.False {
					c[1], c[k] = c[k], c[1]
					st.watches[c[1]] = append(st.watches[c[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, ci)
			if !s.enqueue(c[0], ci) {
				kept = append(kept, ws[wi+1:]...)
				st.watches[falseLit] = kept
				return ci
			}
		}
		st.watches[falseLit] = kept
	}
	return -1
}

// bumpVar bumps a variable's VSIDS activity, rescaling activities and
// varInc together on overflow via the helper shared with DPLL.
func (s *Incremental) bumpVar(v int) {
	st := &s.st
	st.activity[v] += st.varInc
	if st.activity[v] > activityLimit {
		rescaleActivities(st.activity, &st.varInc)
	}
	st.heap.update(v)
}

// analyze derives the 1-UIP learned clause for conflict confl and the
// backjump level, mirroring dpllState.analyze. It additionally bumps
// the activity of every learned clause on the conflict chain and
// counts toward Stats.LearnedReused the ones born in earlier calls —
// the direct measure of cross-fault knowledge reuse.
func (s *Incremental) analyze(confl int32) ([]cnf.Lit, int) {
	st := &s.st
	learnt := []cnf.Lit{litUndef}
	counter := 0
	p := litUndef
	index := len(st.trail) - 1
	for {
		if li := int(confl) - st.nProblem; li >= 0 {
			s.bumpClause(li)
			if st.born[li] < st.calls {
				st.stats.LearnedReused++
			}
		}
		c := st.clauses[confl]
		for _, q := range c {
			if q == p {
				continue
			}
			v := q.Var()
			if !st.seen[v] && st.level[v] > 0 {
				st.seen[v] = true
				s.bumpVar(v)
				if int(st.level[v]) == len(st.trailLim) {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !st.seen[st.trail[index].Var()] {
			index--
		}
		p = st.trail[index]
		index--
		st.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = st.reason[p.Var()]
	}
	learnt[0] = p.Not()
	back := 0
	for i := 1; i < len(learnt); i++ {
		if int(st.level[learnt[i].Var()]) > back {
			back = int(st.level[learnt[i].Var()])
		}
	}
	for _, l := range learnt[1:] {
		st.seen[l.Var()] = false
	}
	return learnt, back
}

// learn installs a freshly derived clause and asserts learnt[0],
// recording born call, LBD, and activity for the reduction policy. It
// reports false on a root-level contradiction (global UNSAT).
func (s *Incremental) learn(learnt []cnf.Lit) bool {
	st := &s.st
	st.stats.Learned++
	if len(learnt) == 1 {
		return s.enqueue(learnt[0], -1)
	}
	cl := append([]cnf.Lit(nil), learnt...)
	// Watch the asserting literal and a deepest-level literal so the
	// clause stays correctly watched after the backjump.
	deepest := 1
	for i := 2; i < len(cl); i++ {
		if st.level[cl[i].Var()] > st.level[cl[deepest].Var()] {
			deepest = i
		}
	}
	cl[1], cl[deepest] = cl[deepest], cl[1]
	ci := int32(len(st.clauses))
	st.clauses = append(st.clauses, cl)
	st.watches[cl[0]] = append(st.watches[cl[0]], ci)
	st.watches[cl[1]] = append(st.watches[cl[1]], ci)
	st.born = append(st.born, st.calls)
	st.lbd = append(st.lbd, s.computeLBD(cl))
	st.act = append(st.act, st.claInc)
	st.learnedBytes += clauseBytes(len(cl))
	return s.enqueue(cl[0], ci)
}

// computeLBD counts distinct decision levels among the clause's
// literals (the "glue" of glucose-style reduction). Clauses are short,
// so the quadratic scan beats maintaining a per-level stamp array.
func (s *Incremental) computeLBD(cl []cnf.Lit) int32 {
	st := &s.st
	var lbd int32
	for i, l := range cl {
		lv := st.level[l.Var()]
		dup := false
		for _, m := range cl[:i] {
			if st.level[m.Var()] == lv {
				dup = true
				break
			}
		}
		if !dup {
			lbd++
		}
	}
	return lbd
}

// bumpClause bumps a learned clause's activity (li indexes the learned
// tail), rescaling all clause activities on overflow.
func (s *Incremental) bumpClause(li int) {
	st := &s.st
	st.act[li] += st.claInc
	if st.act[li] > activityLimit {
		for i := range st.act {
			st.act[i] *= activityRescale
		}
		st.claInc *= activityRescale
	}
}

func (s *Incremental) decayClauseActivity() {
	st := &s.st
	st.claInc /= 0.999
	if st.claInc > activityLimit {
		for i := range st.act {
			st.act[i] *= activityRescale
		}
		st.claInc *= activityRescale
	}
}

// cancelUntil backtracks to decision level lvl, saving phases. The
// priority cursor resets: lex branching restarts from the first
// priority variable after any backtrack.
func (s *Incremental) cancelUntil(lvl int) {
	st := &s.st
	if len(st.trailLim) <= lvl {
		return
	}
	bound := st.trailLim[lvl]
	for i := len(st.trail) - 1; i >= bound; i-- {
		v := st.trail[i].Var()
		st.phase[v] = st.assign[v] == cnf.True
		st.assign[v] = cnf.Unassigned
		st.reason[v] = -1
		if !st.heap.contains(v) {
			st.heap.push(v)
		}
	}
	st.trail = st.trail[:bound]
	st.trailLim = st.trailLim[:lvl]
	st.qhead = bound
	st.prioCursor = 0
}

// pickBranch returns the next decision literal: the first unassigned
// priority variable, always assigned false, else the highest-activity
// unassigned variable with its saved phase. litUndef means every
// variable is assigned (a model).
func (s *Incremental) pickBranch() cnf.Lit {
	st := &s.st
	for st.prioCursor < len(st.priority) {
		v := st.priority[st.prioCursor]
		if st.assign[v] == cnf.Unassigned {
			return cnf.NewLit(v, true)
		}
		st.prioCursor++
	}
	for st.heap.size() > 0 {
		v := st.heap.pop()
		if st.assign[v] == cnf.Unassigned {
			return cnf.NewLit(v, !st.phase[v])
		}
	}
	return litUndef
}

// reduceDB drops learned clauses, worst (high LBD, low activity)
// first, until learned storage fits in half of budget. It requires
// decision level 0: level-0 reasons are cleared (conflict analysis
// never traverses level-0 variables, so they are never dereferenced)
// and every watch list is rebuilt. Deleting learned clauses never
// removes models, so the lex-least determinism contract is unaffected.
func (s *Incremental) reduceDB(budget int64) {
	st := &s.st
	nLearned := len(st.clauses) - st.nProblem
	if nLearned == 0 || len(st.trailLim) != 0 {
		return
	}
	for i := range st.reason {
		st.reason[i] = -1
	}

	// Rank learned clauses best-first with a stable index tiebreak so
	// reduction is deterministic.
	order := make([]int, nLearned)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if st.lbd[ia] != st.lbd[ib] {
			return st.lbd[ia] < st.lbd[ib]
		}
		if st.act[ia] != st.act[ib] {
			return st.act[ia] > st.act[ib]
		}
		return ia < ib
	})
	keep := make([]bool, nLearned)
	var kept int64
	target := budget / 2
	for _, li := range order {
		b := clauseBytes(len(st.clauses[st.nProblem+li]))
		if kept+b > target {
			continue
		}
		keep[li] = true
		kept += b
	}

	// Compact the learned tail in place; problem clause indices are
	// stable, so only learned indices change and those are re-derived
	// by the watch rebuild below.
	w := 0
	for li := 0; li < nLearned; li++ {
		if !keep[li] {
			continue
		}
		st.clauses[st.nProblem+w] = st.clauses[st.nProblem+li]
		st.born[w] = st.born[li]
		st.lbd[w] = st.lbd[li]
		st.act[w] = st.act[li]
		w++
	}
	st.clauses = st.clauses[:st.nProblem+w]
	st.born = st.born[:w]
	st.lbd = st.lbd[:w]
	st.act = st.act[:w]
	st.learnedBytes = kept

	// Rebuild every watch list, watching two non-false literals per
	// clause. After complete level-0 propagation a clause has either
	// two such literals or exactly one, which is then true on the
	// trail (a level-0 implied literal) — watching it with any second
	// literal is sound because the true watch short-circuits
	// propagation.
	for i := range st.watches {
		st.watches[i] = st.watches[i][:0]
	}
	for ci, c := range st.clauses {
		w0, w1 := -1, -1
		for k, l := range c {
			if s.litValue(l) != cnf.False {
				if w0 < 0 {
					w0 = k
				} else {
					w1 = k
					break
				}
			}
		}
		if w0 > 0 {
			c[0], c[w0] = c[w0], c[0]
			if w1 == 0 {
				w1 = w0
			}
		}
		if w1 > 1 {
			c[1], c[w1] = c[w1], c[1]
		}
		st.watches[c[0]] = append(st.watches[c[0]], int32(ci))
		st.watches[c[1]] = append(st.watches[c[1]], int32(ci))
	}
}
