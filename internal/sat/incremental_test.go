package sat

import (
	"math/rand"
	"testing"

	"atpgeasy/internal/cnf"
)

// TestIncrementalAgreesWithBruteForce runs the incremental solver in
// one-shot mode through the shared brute-force property, then re-solves
// every formula on one persistent instance under empty assumptions to
// check call-to-call independence of the verdict.
func TestIncrementalAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewIncremental()
	for i := 0; i < 300; i++ {
		f := randomFormula(rng, 2+rng.Intn(8), 1+rng.Intn(20))
		want := bruteForce(f)
		sol := s.Solve(f) // Load + SolveAssuming(nil) on the reused instance
		if sol.Status != want {
			t.Fatalf("formula %d: incremental says %v, brute force %v\n%s", i, sol.Status, want, f)
		}
		if sol.Status == Sat {
			if err := Verify(f, sol.Model); err != nil {
				t.Fatalf("formula %d: %v", i, err)
			}
		}
		// A second call on the same loaded instance must agree.
		again := s.SolveAssuming(nil, Limits{})
		if again.Status != want {
			t.Fatalf("formula %d: repeat call says %v, want %v", i, again.Status, want)
		}
	}
}

// selectorFormula builds a formula with two "activation" selector
// variables 0 and 1: selector 0 forces x2, selector 1 forces ¬x2, and
// x3 must equal x2. Assuming both selectors is unsatisfiable; assuming
// either alone is satisfiable. This is the shape of the region-grouped
// ATPG encoding (per-fault activation literals on a shared formula).
func selectorFormula() *cnf.Formula {
	f := cnf.NewFormula(4)
	s0 := cnf.NewLit(0, false)
	s1 := cnf.NewLit(1, false)
	x2 := cnf.NewLit(2, false)
	x3 := cnf.NewLit(3, false)
	f.AddClause(s0.Not(), x2)       // s0 -> x2
	f.AddClause(s1.Not(), x2.Not()) // s1 -> ¬x2
	f.AddClause(x2.Not(), x3)       // x2 -> x3
	f.AddClause(x3.Not(), x2)       // x3 -> x2
	return f
}

// TestSolveAssumingNotGlobal is the assumption-core soundness property:
// UNSAT under one assumption set must not poison the instance — a later
// call with compatible assumptions must still find a model, and
// Failed() must stay false throughout. Only a genuine level-0 conflict
// may latch Failed.
func TestSolveAssumingNotGlobal(t *testing.T) {
	s := NewIncremental()
	s.Load(selectorFormula(), nil)

	both := []cnf.Lit{cnf.NewLit(0, false), cnf.NewLit(1, false)}
	if got := s.SolveAssuming(both, Limits{}); got.Status != Unsat {
		t.Fatalf("both selectors: got %v, want UNSAT", got.Status)
	}
	if s.Failed() {
		t.Fatal("UNSAT under assumptions latched Failed(); it must stay per-call")
	}
	only0 := []cnf.Lit{cnf.NewLit(0, false), cnf.NewLit(1, true)}
	sol := s.SolveAssuming(only0, Limits{})
	if sol.Status != Sat {
		t.Fatalf("selector 0 alone: got %v, want SAT", sol.Status)
	}
	if !sol.Model[2] || !sol.Model[3] {
		t.Fatalf("selector 0 alone: model %v, want x2 and x3 true", sol.Model)
	}
	if s.Failed() {
		t.Fatal("SAT call latched Failed()")
	}

	// Genuine global UNSAT does latch: x ∧ ¬x.
	g := cnf.NewFormula(1)
	g.AddClause(cnf.NewLit(0, false))
	g.AddClause(cnf.NewLit(0, true))
	s.Load(g, nil)
	if got := s.SolveAssuming(nil, Limits{}); got.Status != Unsat {
		t.Fatalf("contradiction: got %v, want UNSAT", got.Status)
	}
	if !s.Failed() {
		t.Fatal("level-0 conflict did not latch Failed()")
	}
}

// TestSolveAssumingMatchesBruteForce cross-checks assumption solving
// against brute force with the assumptions added as unit clauses, on a
// persistent instance across many random assumption sets — learned
// clauses from earlier calls must never change a verdict.
func TestSolveAssumingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewIncremental()
	for trial := 0; trial < 60; trial++ {
		nVars := 4 + rng.Intn(6)
		f := randomFormula(rng, nVars, 3+rng.Intn(25))
		s.Load(f, nil)
		if s.Failed() {
			continue
		}
		for call := 0; call < 10; call++ {
			var assumps []cnf.Lit
			used := map[int]bool{}
			for len(assumps) < 1+rng.Intn(3) {
				v := rng.Intn(nVars)
				if used[v] {
					continue
				}
				used[v] = true
				assumps = append(assumps, cnf.NewLit(v, rng.Intn(2) == 1))
			}
			withUnits := f.Clone()
			for _, a := range assumps {
				withUnits.AddClause(a)
			}
			want := bruteForce(withUnits)
			sol := s.SolveAssuming(assumps, Limits{})
			if sol.Status != want {
				t.Fatalf("trial %d call %d: got %v, want %v (assumps %v)\n%s",
					trial, call, sol.Status, want, assumps, f)
			}
			if sol.Status == Sat {
				if err := Verify(withUnits, sol.Model); err != nil {
					t.Fatalf("trial %d call %d: %v", trial, call, err)
				}
			}
		}
	}
}

// TestLexLeastModelInvariant is the determinism contract behind the
// engine's byte-identical-vectors guarantee: with a priority branching
// order, the model's projection onto the priority variables must be the
// lex-least one consistent with the assumptions — and therefore
// identical whether the instance is fresh or carries learned clauses
// from earlier calls.
func TestLexLeastModelInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		nVars := 5 + rng.Intn(6)
		f := randomFormula(rng, nVars, 3+rng.Intn(20))
		prio := rng.Perm(nVars)[:2+rng.Intn(nVars-2)]

		// Warm instance: solve under several assumption sets first so
		// the database holds learned clauses, then the probe call.
		warm := NewIncremental()
		warm.Load(f, prio)
		if warm.Failed() {
			continue
		}
		for k := 0; k < 6; k++ {
			v := rng.Intn(nVars)
			warm.SolveAssuming([]cnf.Lit{cnf.NewLit(v, k%2 == 0)}, Limits{})
		}
		fresh := NewIncremental()
		fresh.Load(f, prio)

		a := warm.SolveAssuming(nil, Limits{})
		b := fresh.SolveAssuming(nil, Limits{})
		if a.Status != b.Status {
			t.Fatalf("trial %d: warm %v fresh %v", trial, a.Status, b.Status)
		}
		if a.Status != Sat {
			continue
		}
		for _, v := range prio {
			if a.Model[v] != b.Model[v] {
				t.Fatalf("trial %d: warm and fresh disagree on priority var %d\nwarm  %v\nfresh %v",
					trial, v, a.Model, b.Model)
			}
		}
		// And the projection really is lex-least over all models.
		best := lexLeastModel(f, prio)
		for i, v := range prio {
			if a.Model[v] != best[i] {
				t.Fatalf("trial %d: model not lex-least at priority slot %d (var %d)", trial, i, v)
			}
		}
	}
}

// lexLeastModel enumerates all models of f and returns the lex-least
// projection onto prio (false < true, earlier prio index more
// significant). Panics if f is UNSAT — callers check first.
func lexLeastModel(f *cnf.Formula, prio []int) []bool {
	var best []bool
	assign := make([]bool, f.NumVars)
	for pat := 0; pat < 1<<uint(f.NumVars); pat++ {
		for i := range assign {
			assign[i] = pat>>uint(i)&1 == 1
		}
		if !f.Eval(assign) {
			continue
		}
		proj := make([]bool, len(prio))
		for i, v := range prio {
			proj[i] = assign[v]
		}
		if best == nil || lexLess(proj, best) {
			best = proj
		}
	}
	if best == nil {
		panic("lexLeastModel: UNSAT formula")
	}
	return best
}

func lexLess(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return !a[i]
		}
	}
	return false
}

// TestLearnedDBBound drives a persistent instance through hard
// instances with a tiny learned budget and checks the database stays
// bounded, that ShrinkLearned halves stickily down to the floor, and
// that reduction never changes verdicts.
func TestLearnedDBBound(t *testing.T) {
	s := NewIncremental()
	s.LearnedLimit = 4 << 10
	f := pigeonhole(7, 6) // UNSAT, conflict-heavy
	s.Load(f, nil)
	sol := s.SolveAssuming(nil, Limits{})
	if sol.Status != Unsat {
		t.Fatalf("pigeonhole: got %v, want UNSAT", sol.Status)
	}
	if got := s.LearnedBytes(); got > s.LearnedLimit {
		t.Fatalf("learned DB %d bytes exceeds limit %d at call end", got, s.LearnedLimit)
	}
	if sol.Stats.ClauseDBBytes != s.LearnedBytes() {
		t.Fatalf("ClauseDBBytes %d != LearnedBytes %d", sol.Stats.ClauseDBBytes, s.LearnedBytes())
	}

	// Sticky halving with floor.
	s.LearnedLimit = 4 * learnedShrinkFloor
	if got := s.ShrinkLearned(); got != 2*learnedShrinkFloor {
		t.Fatalf("first shrink: got %d, want %d", got, 2*learnedShrinkFloor)
	}
	if got := s.ShrinkLearned(); got != learnedShrinkFloor {
		t.Fatalf("second shrink: got %d, want %d", got, learnedShrinkFloor)
	}
	if got := s.ShrinkLearned(); got != learnedShrinkFloor {
		t.Fatalf("shrink below floor: got %d, want floor %d", got, learnedShrinkFloor)
	}
	if s.LearnedBytes() > learnedShrinkFloor {
		t.Fatalf("learned DB %d bytes exceeds shrunk budget %d", s.LearnedBytes(), learnedShrinkFloor)
	}

	// Arena.Shrink reaches the instance's DB too.
	a := NewArena()
	inc := a.Incremental()
	if inc != a.Incremental() {
		t.Fatal("Arena.Incremental not cached")
	}
	inc.Load(pigeonhole(6, 5), nil)
	inc.SolveAssuming(nil, Limits{})
	before := inc.effectiveLearnedLimit()
	a.Shrink()
	if after := inc.LearnedLimit; after >= before {
		t.Fatalf("Arena.Shrink did not halve learned budget: %d -> %d", before, after)
	}
	if a.LearnedCap() != inc.LearnedLimit {
		t.Fatalf("LearnedCap %d != LearnedLimit %d", a.LearnedCap(), inc.LearnedLimit)
	}

	// Verdicts survive aggressive reduction: re-solve a satisfiable
	// series on the floor-budget instance.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		g := randomFormula(rng, 4+rng.Intn(6), 2+rng.Intn(15))
		want := bruteForce(g)
		if got := s.Solve(g); got.Status != want {
			t.Fatalf("post-shrink formula %d: got %v, want %v", i, got.Status, want)
		}
	}
}

// TestLearnedReuseCounters checks the reuse telemetry: on a formula
// hard enough to learn clauses, a second call under different
// assumptions must report kept clauses, and reuse may only come from
// kept clauses.
func TestLearnedReuseCounters(t *testing.T) {
	s := NewIncremental()
	// Pigeonhole gated behind an activation selector, the shape of the
	// region-grouped ATPG encoding: the formula is satisfiable (drop
	// the selector and everything is free), but assuming the selector
	// activates the UNSAT core — so the per-call refutation can never
	// latch Failed, and the learned proof survives for the next call.
	ph := pigeonhole(6, 5)
	f := cnf.NewFormula(ph.NumVars + 1)
	sel := ph.NumVars
	for _, c := range ph.Clauses {
		gated := append(append(cnf.Clause(nil), c...), cnf.NewLit(sel, true))
		f.AddClause(gated...)
	}
	s.Load(f, nil)

	assume := []cnf.Lit{cnf.NewLit(sel, false)}
	first := s.SolveAssuming(assume, Limits{})
	if first.Status != Unsat {
		t.Fatalf("first call: got %v", first.Status)
	}
	if s.Failed() {
		t.Fatal("gated pigeonhole latched Failed(); refutation depends on the assumption")
	}
	if first.Stats.LearnedKept != 0 {
		t.Fatalf("first call reports %d kept clauses on a fresh Load", first.Stats.LearnedKept)
	}
	if first.Stats.Learned == 0 {
		t.Fatal("pigeonhole solved without learning — test premise broken")
	}
	second := s.SolveAssuming(assume, Limits{})
	if second.Status != Unsat {
		t.Fatalf("second call: got %v", second.Status)
	}
	if second.Stats.LearnedKept == 0 {
		t.Fatal("second call kept no learned clauses from the first")
	}
	// Retention must show: either kept clauses participate in the new
	// proof (reuse counter) or they short-circuit it outright (far
	// fewer conflicts than the cold proof).
	if second.Stats.LearnedReused == 0 && second.Stats.Conflicts >= first.Stats.Conflicts {
		t.Fatalf("retention did not help: first %d conflicts, second %d with 0 reuse",
			first.Stats.Conflicts, second.Stats.Conflicts)
	}
	// And the instance is still live for other assumptions.
	free := s.SolveAssuming([]cnf.Lit{cnf.NewLit(sel, true)}, Limits{})
	if free.Status != Sat {
		t.Fatalf("deactivated selector: got %v, want SAT", free.Status)
	}
}

// TestIncrementalMaxConflictsResume checks the Unknown-and-resume
// contract: a call aborted by MaxConflicts leaves the instance valid,
// and re-calling with a bigger budget completes using the learned
// clauses already banked.
func TestIncrementalMaxConflictsResume(t *testing.T) {
	s := NewIncremental()
	s.MaxConflicts = 5
	s.Load(pigeonhole(7, 6), nil)
	sol := s.SolveAssuming(nil, Limits{})
	if sol.Status != Unknown {
		t.Fatalf("tiny budget: got %v, want UNKNOWN", sol.Status)
	}
	s.MaxConflicts = 0
	resumed := s.SolveAssuming(nil, Limits{})
	if resumed.Status != Unsat {
		t.Fatalf("resume: got %v, want UNSAT", resumed.Status)
	}
	if resumed.Stats.LearnedKept == 0 {
		t.Fatal("resume started from zero learned clauses")
	}
}

// TestActivityRescalePreservesOrder is the long-run regression test for
// the shared activity rescale: after the rescale triggers, the relative
// order of variable activities and the activity/varInc ratio must be
// exactly preserved, so decision quality does not decay over long
// incremental runs.
func TestActivityRescalePreservesOrder(t *testing.T) {
	activity := []float64{3e99, 1e100, 5e98, 7e99}
	varInc := 2e99
	ratios := make([]float64, len(activity))
	for i, a := range activity {
		ratios[i] = a / varInc
	}
	// Simulate the overflow bump that triggers the rescale.
	activity[1] += varInc
	rescaleActivities(activity, &varInc)
	for i, a := range activity {
		if a > activityLimit {
			t.Fatalf("activity[%d] = %g still above limit", i, a)
		}
		want := ratios[i]
		if i == 1 {
			want += 1 // the bump that overflowed
		}
		got := a / varInc
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("activity[%d]/varInc = %g, want %g: rescale skewed the ratio", i, got, want)
		}
	}

	// End-to-end: a long run on one instance must keep making
	// activity-ordered decisions (finite and correct) well past the
	// point where activities would overflow without varInc rescaling.
	s := NewIncremental()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		f := randomFormula(rng, 6+rng.Intn(5), 10+rng.Intn(20))
		want := bruteForce(f)
		if got := s.Solve(f); got.Status != want {
			t.Fatalf("long-run formula %d: got %v, want %v", i, got.Status, want)
		}
	}
}
