package sat

import (
	"atpgeasy/internal/cnf"
)

// Simple is simple backtracking with a fixed static variable ordering and
// no caching — the baseline that Algorithm 1 augments. Order is the static
// variable ordering h (nil = variable index order). MaxNodes, when
// positive, aborts the search with Unknown after that many backtracking
// nodes. Limits adds deadline/cancellation aborts.
type Simple struct {
	Order    []int
	MaxNodes int64
	Limits   Limits
}

// Solve decides satisfiability by depth-first search over the ordering.
func (s *Simple) Solve(f *cnf.Formula) Solution {
	order, err := checkOrder(s.Order, f.NumVars)
	if err != nil {
		return Solution{Status: Unknown}
	}
	bt := newBacktracker(f, order, s.MaxNodes, false)
	bt.limits = s.Limits
	return bt.run()
}

// WithLimits returns a copy of the configuration with per-call limits.
func (s *Simple) WithLimits(l Limits) Solver {
	cp := *s
	cp.Limits = l
	return &cp
}

// Caching is Algorithm 1 of the paper: simple backtracking with a fixed
// variable ordering plus a hash table T of unsatisfiable sub-formulas.
// Before a sub-formula is explored it is looked up in T; on a hit the
// branch is pruned. When both branches of a node fail, the node's residual
// sub-formula is inserted into T.
//
// Sub-formulas are cached as sets of clauses: two sub-formulas are
// identical iff they have the same clause set (functional equivalence is
// deliberately not recognized — footnote 2 of the paper).
type Caching struct {
	Order    []int
	MaxNodes int64
	Limits   Limits
}

// Solve runs Algorithm 1.
func (s *Caching) Solve(f *cnf.Formula) Solution {
	order, err := checkOrder(s.Order, f.NumVars)
	if err != nil {
		return Solution{Status: Unknown}
	}
	bt := newBacktracker(f, order, s.MaxNodes, true)
	bt.limits = s.Limits
	return bt.run()
}

// WithLimits returns a copy of the configuration with per-call limits.
func (s *Caching) WithLimits(l Limits) Solver {
	cp := *s
	cp.Limits = l
	return &cp
}

// backtracker is the shared engine behind Simple and Caching. Clause
// bookkeeping is incremental: per-clause counts of satisfied and falsified
// literals give O(occurrences) assignment updates, null-clause detection,
// and all-satisfied detection.
type backtracker struct {
	f        *cnf.Formula
	order    []int
	useCache bool
	maxNodes int64

	assign   []cnf.Value
	occPos   [][]int32 // clauses where var occurs positively
	occNeg   [][]int32 // clauses where var occurs negatively
	satCnt   []int32   // per clause: literals currently true
	falseCnt []int32   // per clause: literals currently false
	numSat   int       // clauses with satCnt > 0
	numNull  int       // clauses with satCnt == 0 && falseCnt == len

	cache   map[string]struct{}
	limits  Limits
	stats   Stats
	aborted bool
}

func newBacktracker(f *cnf.Formula, order []int, maxNodes int64, useCache bool) *backtracker {
	bt := &backtracker{
		f:        f,
		order:    order,
		useCache: useCache,
		maxNodes: maxNodes,
		assign:   make([]cnf.Value, f.NumVars),
		occPos:   make([][]int32, f.NumVars),
		occNeg:   make([][]int32, f.NumVars),
		satCnt:   make([]int32, len(f.Clauses)),
		falseCnt: make([]int32, len(f.Clauses)),
	}
	if useCache {
		bt.cache = make(map[string]struct{})
	}
	for ci, c := range f.Clauses {
		for _, l := range c {
			if l.IsNeg() {
				bt.occNeg[l.Var()] = append(bt.occNeg[l.Var()], int32(ci))
			} else {
				bt.occPos[l.Var()] = append(bt.occPos[l.Var()], int32(ci))
			}
		}
		if len(c) == 0 {
			bt.numNull++ // empty clause in the input: trivially unsat
		}
	}
	return bt
}

func (bt *backtracker) run() Solution {
	if bt.limits.expired() {
		return Solution{Status: Unknown, Stats: bt.stats}
	}
	if bt.numNull > 0 {
		return Solution{Status: Unsat, Stats: bt.stats}
	}
	if bt.numSat == len(bt.f.Clauses) || bt.f.NumVars == 0 {
		// No clauses (or all trivially satisfied): SAT with all-false model.
		return Solution{Status: Sat, Model: make([]bool, bt.f.NumVars), Stats: bt.stats}
	}
	sat := bt.search(0, false) || (!bt.aborted && bt.search(0, true))
	bt.stats.CacheEntries = int64(len(bt.cache))
	if bt.aborted {
		return Solution{Status: Unknown, Stats: bt.stats}
	}
	if !sat {
		return Solution{Status: Unsat, Stats: bt.stats}
	}
	model := make([]bool, bt.f.NumVars)
	for v := range model {
		model[v] = bt.assign[v] == cnf.True
	}
	return Solution{Status: Sat, Model: model, Stats: bt.stats}
}

// assignVar sets variable order[pos] to value b and updates clause counts.
func (bt *backtracker) assignVar(v int, b bool) {
	bt.assign[v] = cnf.ValueOf(b)
	satOcc, falseOcc := bt.occPos[v], bt.occNeg[v]
	if !b {
		satOcc, falseOcc = falseOcc, satOcc
	}
	for _, ci := range satOcc {
		if bt.satCnt[ci] == 0 {
			bt.numSat++
		}
		bt.satCnt[ci]++
	}
	for _, ci := range falseOcc {
		bt.falseCnt[ci]++
		if bt.satCnt[ci] == 0 && int(bt.falseCnt[ci]) == len(bt.f.Clauses[ci]) {
			bt.numNull++
		}
	}
}

func (bt *backtracker) unassignVar(v int) {
	b := bt.assign[v] == cnf.True
	satOcc, falseOcc := bt.occPos[v], bt.occNeg[v]
	if !b {
		satOcc, falseOcc = falseOcc, satOcc
	}
	for _, ci := range satOcc {
		bt.satCnt[ci]--
		if bt.satCnt[ci] == 0 {
			bt.numSat--
		}
	}
	for _, ci := range falseOcc {
		if bt.satCnt[ci] == 0 && int(bt.falseCnt[ci]) == len(bt.f.Clauses[ci]) {
			bt.numNull--
		}
		bt.falseCnt[ci]--
	}
	bt.assign[v] = cnf.Unassigned
}

// search explores the subtree where order[pos] = b; it reports whether a
// satisfying extension exists. It mirrors procedure Cache_Sat of
// Algorithm 1.
func (bt *backtracker) search(pos int, b bool) bool {
	if bt.aborted {
		return false
	}
	bt.stats.Nodes++
	if !b {
		// One decision per branched variable: the b=true branch of the same
		// variable at the same position is the other half of one decision,
		// not a second one.
		bt.stats.Decisions++
	}
	if bt.maxNodes > 0 && bt.stats.Nodes > bt.maxNodes {
		bt.aborted = true
		return false
	}
	if bt.stats.Nodes%limitCheck == 0 && bt.limits.expired() {
		bt.aborted = true
		return false
	}
	if pos+1 > bt.stats.MaxDepth {
		bt.stats.MaxDepth = pos + 1
	}
	v := bt.order[pos]
	bt.assignVar(v, b)
	if bt.numNull > 0 {
		bt.unassignVar(v)
		return false
	}
	if bt.numSat == len(bt.f.Clauses) {
		// Every clause satisfied: SAT regardless of remaining variables.
		return true
	}
	var key string
	if bt.useCache {
		key = bt.residualKey()
		if _, hit := bt.cache[key]; hit {
			bt.stats.CacheHits++
			bt.unassignVar(v)
			return false
		}
	}
	if pos+1 == len(bt.order) {
		// All variables assigned, no null clause, but some clause open is
		// impossible (no unassigned literals remain), so this is SAT; the
		// numSat check above normally catches it.
		return true
	}
	if bt.search(pos+1, false) || bt.search(pos+1, true) {
		return true
	}
	if bt.useCache && !bt.aborted {
		bt.cache[key] = struct{}{}
	}
	bt.unassignVar(v)
	return false
}

// residualKey builds the canonical clause-set key of the current residual
// sub-formula. Only open clauses (satCnt == 0) contribute; within a clause
// only unassigned literals remain. Literals are emitted in clause order —
// canonical because the clause set and assignment fully determine it — and
// clauses are emitted in formula order, which is canonical for a fixed
// input formula.
func (bt *backtracker) residualKey() string {
	buf := make([]byte, 0, 256)
	for ci, c := range bt.f.Clauses {
		if bt.satCnt[ci] > 0 {
			continue
		}
		for _, l := range c {
			if bt.assign[l.Var()] == cnf.Unassigned {
				buf = appendVarint(buf, uint64(l)+1)
			}
		}
		buf = append(buf, 0)
	}
	return string(buf)
}

func appendVarint(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}
