package sat

import (
	"atpgeasy/internal/cnf"
)

// Simple is simple backtracking with a fixed static variable ordering and
// no caching — the baseline that Algorithm 1 augments. Order is the static
// variable ordering h (nil = variable index order). MaxNodes, when
// positive, aborts the search with Unknown after that many backtracking
// nodes. Limits adds deadline/cancellation aborts.
type Simple struct {
	Order    []int
	MaxNodes int64
	Limits   Limits
}

// Solve decides satisfiability by depth-first search over the ordering.
func (s *Simple) Solve(f *cnf.Formula) Solution { return s.SolveArena(f, nil) }

// SolveArena is Solve with reusable scratch; see Arena.
func (s *Simple) SolveArena(f *cnf.Formula, a *Arena) Solution {
	bt, ok := newBacktracker(f, s.Order, a, btConfig{maxNodes: s.MaxNodes, limits: s.Limits})
	if !ok {
		return Solution{Status: Unknown}
	}
	return bt.run()
}

// WithLimits returns a copy of the configuration with per-call limits.
func (s *Simple) WithLimits(l Limits) Solver {
	cp := *s
	cp.Limits = l
	return &cp
}

// Caching is Algorithm 1 of the paper: simple backtracking with a fixed
// variable ordering plus a hash table T of unsatisfiable sub-formulas.
// Before a sub-formula is explored it is looked up in T; on a hit the
// branch is pruned. When both branches of a node fail, the node's residual
// sub-formula is inserted into T.
//
// Sub-formulas are cached as sets of clauses: two sub-formulas are
// identical iff they have the same clause set (functional equivalence is
// deliberately not recognized — footnote 2 of the paper).
//
// The table is keyed on an incrementally maintained 128-bit digest of the
// residual clause set, updated in O(occurrences of v) per assignment
// instead of rescanning the open literals at every node, and bounded by
// CacheLimit with second-chance eviction (see cache.go). Equal residuals
// always digest equally; distinct residuals collide with probability
// ~2^-128 per pair, and VerifyKeys removes even that.
type Caching struct {
	Order    []int
	MaxNodes int64
	Limits   Limits
	// CacheLimit bounds the sub-formula table's memory in bytes; 0 means
	// DefaultCacheLimit. A full table evicts second-chance, losing only
	// pruning opportunities, never soundness.
	CacheLimit int64
	// VerifyKeys additionally stores each entry's exact residual byte key
	// and rejects digest matches whose keys differ (counted in
	// Stats.CacheCollisions). This removes the residual 128-bit collision
	// risk at the cost of rebuilding the byte key at every node — the
	// allocation and time profile of the original string-keyed table.
	// Tests and internal/core's DCSF cross-checks use it; production runs
	// should leave it off.
	VerifyKeys bool

	// weakHash degrades the digest to a constant so tests can force
	// collisions and exercise the VerifyKeys fallback.
	weakHash bool
}

// Solve runs Algorithm 1.
func (s *Caching) Solve(f *cnf.Formula) Solution { return s.SolveArena(f, nil) }

// SolveArena is Solve with reusable scratch and a cache table that
// persists (emptied in O(1)) across the arena's solves; see Arena.
func (s *Caching) SolveArena(f *cnf.Formula, a *Arena) Solution {
	bt, ok := newBacktracker(f, s.Order, a, btConfig{
		maxNodes:   s.MaxNodes,
		limits:     s.Limits,
		useCache:   true,
		cacheLimit: s.CacheLimit,
		verifyKeys: s.VerifyKeys,
		weakHash:   s.weakHash,
	})
	if !ok {
		return Solution{Status: Unknown}
	}
	return bt.run()
}

// WithLimits returns a copy of the configuration with per-call limits.
func (s *Caching) WithLimits(l Limits) Solver {
	cp := *s
	cp.Limits = l
	return &cp
}

// btConfig carries the per-solve configuration into newBacktracker.
type btConfig struct {
	maxNodes   int64
	limits     Limits
	useCache   bool
	cacheLimit int64
	verifyKeys bool
	weakHash   bool
}

// backtracker is the shared engine behind Simple and Caching. Clause
// bookkeeping is incremental: per-clause counts of satisfied and falsified
// literals give O(occurrences) assignment updates, null-clause detection,
// and all-satisfied detection. In cache mode the residual digest is
// maintained with the same incrementality:
//
//	clsSum[ci]     sum of litDig over clause ci's unassigned literals
//	clsContrib[ci] mixClause(clsSum[ci]) as of when ci last became open
//	dig            sum of clsContrib over open (satCnt == 0) clauses
//
// Assigning a variable subtracts its literal hash from the sums of the
// clauses it occurs in and refreshes the contribution of those still
// open; unassigning adds it back. Because assignments unwind LIFO, a
// clause's contribution is recomputed from its (correctly maintained) sum
// whenever the clause reopens, so dig always equals the digest a full
// rescan would produce.
type backtracker struct {
	f        *cnf.Formula
	order    []int
	useCache bool
	verify   bool
	weak     bool
	maxNodes int64

	assign   []cnf.Value
	occOff   []int32 // CSR offsets: literal l occurs in occ[occOff[l]:occOff[l+1]]
	occ      []int32
	satCnt   []int32 // per clause: literals currently true
	falseCnt []int32 // per clause: literals currently false
	numSat   int     // clauses with satCnt > 0
	numNull  int     // clauses with satCnt == 0 && falseCnt == len

	dig        digest
	clsSum     []digest
	clsContrib []digest
	litDig     []digest

	arena   *Arena
	limits  Limits
	stats   Stats
	aborted bool
}

// newBacktracker prepares a search over f in a's buffers (a == nil uses a
// throwaway arena). It reports false when the ordering is invalid.
func newBacktracker(f *cnf.Formula, order []int, a *Arena, cfg btConfig) (*backtracker, bool) {
	if a == nil {
		a = &Arena{}
	}
	ord, ok := checkOrder(order, f.NumVars, a)
	if !ok {
		return nil, false
	}
	bt := &a.bt
	*bt = backtracker{
		f:        f,
		order:    ord,
		useCache: cfg.useCache,
		verify:   cfg.verifyKeys,
		weak:     cfg.weakHash,
		maxNodes: cfg.maxNodes,
		limits:   cfg.limits,
		arena:    a,
	}
	n, m := f.NumVars, len(f.Clauses)
	a.assign = zeroed(a.assign, n)
	a.satCnt = zeroed(a.satCnt, m)
	a.falseCnt = zeroed(a.falseCnt, m)
	bt.assign, bt.satCnt, bt.falseCnt = a.assign, a.satCnt, a.falseCnt

	// Occurrence lists in CSR form: one flat slice plus offsets, built by
	// counting sort. Flat storage reuses cleanly across solves and keeps a
	// literal's occurrences contiguous.
	a.occOff = zeroed(a.occOff, 2*n+1)
	off := a.occOff
	total := 0
	for _, c := range f.Clauses {
		total += len(c)
	}
	a.occ = sized(a.occ, total)
	occ := a.occ
	for _, c := range f.Clauses {
		for _, l := range c {
			off[int(l)+1]++
		}
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	for ci, c := range f.Clauses {
		for _, l := range c {
			occ[off[int(l)]] = int32(ci)
			off[int(l)]++
		}
	}
	// The fill advanced each cursor to its range's end (= the next
	// literal's start); shift right to restore start offsets.
	copy(off[1:], off[:len(off)-1])
	off[0] = 0
	bt.occOff, bt.occ = off, occ

	for _, c := range f.Clauses {
		if len(c) == 0 {
			bt.numNull++ // empty clause in the input: trivially unsat
		}
	}

	if cfg.useCache {
		a.litDig = sized(a.litDig, 2*n)
		for l := range a.litDig {
			a.litDig[l] = litDigest(cnf.Lit(l))
		}
		a.clsSum = sized(a.clsSum, m)
		a.clsContrib = sized(a.clsContrib, m)
		bt.litDig, bt.clsSum, bt.clsContrib = a.litDig, a.clsSum, a.clsContrib
		for ci, c := range f.Clauses {
			var sum digest
			for _, l := range c {
				sum.add(bt.litDig[l])
			}
			bt.clsSum[ci] = sum
			contrib := bt.mixClause(sum)
			bt.clsContrib[ci] = contrib
			bt.dig.add(contrib)
		}
		if a.cacheCap > 0 && (cfg.cacheLimit <= 0 || cfg.cacheLimit > a.cacheCap) {
			cfg.cacheLimit = a.cacheCap
		}
		a.table.reset(cfg.cacheLimit)
	}
	return bt, true
}

// mixClause turns a clause's literal-hash sum into its digest
// contribution. The mix prevents sums of different clauses from
// combining linearly (e.g. {a,b}+{c} vs {a,c}+{b}).
func (bt *backtracker) mixClause(sum digest) digest {
	if bt.weak {
		return digest{1, 1} // test hook: every clause set of equal size collides
	}
	a := mix64(sum[0] ^ 0xa0761d6478bd642f)
	return digest{a, mix64(sum[1] ^ a)}
}

// occOf returns the clauses containing literal l.
func (bt *backtracker) occOf(l cnf.Lit) []int32 {
	return bt.occ[bt.occOff[l]:bt.occOff[int(l)+1]]
}

func (bt *backtracker) run() Solution {
	if bt.limits.expired() {
		return Solution{Status: Unknown, Stats: bt.stats}
	}
	if bt.numNull > 0 {
		return bt.finish(Solution{Status: Unsat})
	}
	if bt.numSat == len(bt.f.Clauses) || bt.f.NumVars == 0 {
		// No clauses (or all trivially satisfied): SAT with all-false model.
		return bt.finish(Solution{Status: Sat, Model: make([]bool, bt.f.NumVars)})
	}
	sat := bt.search(0, false) || (!bt.aborted && bt.search(0, true))
	if bt.aborted {
		return bt.finish(Solution{Status: Unknown})
	}
	if !sat {
		return bt.finish(Solution{Status: Unsat})
	}
	model := make([]bool, bt.f.NumVars)
	for v := range model {
		model[v] = bt.assign[v] == cnf.True
	}
	return bt.finish(Solution{Status: Sat, Model: model})
}

// finish attaches the search and cache statistics to the solution.
func (bt *backtracker) finish(sol Solution) Solution {
	if bt.useCache {
		t := &bt.arena.table
		bt.stats.CacheEntries = t.live
		bt.stats.CacheEvictions = t.evictions
		bt.stats.CacheBytes = t.bytes()
	}
	sol.Stats = bt.stats
	return sol
}

// assignVar sets variable v to value b and updates clause counts — and,
// in cache mode, the residual digest — in O(occurrences of v).
func (bt *backtracker) assignVar(v int, b bool) {
	bt.assign[v] = cnf.ValueOf(b)
	satLit, falseLit := cnf.NewLit(v, false), cnf.NewLit(v, true)
	if !b {
		satLit, falseLit = falseLit, satLit
	}
	if !bt.useCache {
		for _, ci := range bt.occOf(satLit) {
			if bt.satCnt[ci] == 0 {
				bt.numSat++
			}
			bt.satCnt[ci]++
		}
		for _, ci := range bt.occOf(falseLit) {
			bt.falseCnt[ci]++
			if bt.satCnt[ci] == 0 && int(bt.falseCnt[ci]) == len(bt.f.Clauses[ci]) {
				bt.numNull++
			}
		}
		return
	}
	dSat, dFalse := bt.litDig[satLit], bt.litDig[falseLit]
	for _, ci := range bt.occOf(satLit) {
		if bt.satCnt[ci] == 0 {
			bt.numSat++
			bt.dig.sub(bt.clsContrib[ci]) // clause leaves the residual
		}
		bt.satCnt[ci]++
		bt.clsSum[ci].sub(dSat)
	}
	for _, ci := range bt.occOf(falseLit) {
		bt.clsSum[ci].sub(dFalse)
		bt.falseCnt[ci]++
		if bt.satCnt[ci] == 0 {
			// Still open: its residual shrank, refresh its contribution.
			bt.dig.sub(bt.clsContrib[ci])
			contrib := bt.mixClause(bt.clsSum[ci])
			bt.clsContrib[ci] = contrib
			bt.dig.add(contrib)
			if int(bt.falseCnt[ci]) == len(bt.f.Clauses[ci]) {
				bt.numNull++
			}
		}
	}
}

// unassignVar exactly undoes assignVar for the LIFO-most assignment.
func (bt *backtracker) unassignVar(v int) {
	b := bt.assign[v] == cnf.True
	satLit, falseLit := cnf.NewLit(v, false), cnf.NewLit(v, true)
	if !b {
		satLit, falseLit = falseLit, satLit
	}
	if !bt.useCache {
		for _, ci := range bt.occOf(satLit) {
			bt.satCnt[ci]--
			if bt.satCnt[ci] == 0 {
				bt.numSat--
			}
		}
		for _, ci := range bt.occOf(falseLit) {
			if bt.satCnt[ci] == 0 && int(bt.falseCnt[ci]) == len(bt.f.Clauses[ci]) {
				bt.numNull--
			}
			bt.falseCnt[ci]--
		}
		bt.assign[v] = cnf.Unassigned
		return
	}
	dSat, dFalse := bt.litDig[satLit], bt.litDig[falseLit]
	for _, ci := range bt.occOf(satLit) {
		bt.satCnt[ci]--
		bt.clsSum[ci].add(dSat)
		if bt.satCnt[ci] == 0 {
			bt.numSat--
			// Clause reopens: recompute its contribution from the sum (the
			// cached one predates the literals assigned while it was
			// satisfied).
			contrib := bt.mixClause(bt.clsSum[ci])
			bt.clsContrib[ci] = contrib
			bt.dig.add(contrib)
		}
	}
	for _, ci := range bt.occOf(falseLit) {
		if bt.satCnt[ci] == 0 {
			if int(bt.falseCnt[ci]) == len(bt.f.Clauses[ci]) {
				bt.numNull--
			}
			bt.dig.sub(bt.clsContrib[ci])
		}
		bt.falseCnt[ci]--
		bt.clsSum[ci].add(dFalse)
		if bt.satCnt[ci] == 0 {
			contrib := bt.mixClause(bt.clsSum[ci])
			bt.clsContrib[ci] = contrib
			bt.dig.add(contrib)
		}
	}
	bt.assign[v] = cnf.Unassigned
}

// search explores the subtree where order[pos] = b; it reports whether a
// satisfying extension exists. It mirrors procedure Cache_Sat of
// Algorithm 1.
func (bt *backtracker) search(pos int, b bool) bool {
	if bt.aborted {
		return false
	}
	bt.stats.Nodes++
	if !b {
		// One decision per branched variable: the b=true branch of the same
		// variable at the same position is the other half of one decision,
		// not a second one.
		bt.stats.Decisions++
	}
	if bt.maxNodes > 0 && bt.stats.Nodes > bt.maxNodes {
		bt.aborted = true
		return false
	}
	if bt.stats.Nodes%limitCheck == 0 && bt.limits.expired() {
		bt.aborted = true
		return false
	}
	if pos+1 > bt.stats.MaxDepth {
		bt.stats.MaxDepth = pos + 1
	}
	v := bt.order[pos]
	bt.assignVar(v, b)
	if bt.numNull > 0 {
		bt.unassignVar(v)
		return false
	}
	if bt.numSat == len(bt.f.Clauses) {
		// Every clause satisfied: SAT regardless of remaining variables.
		return true
	}
	var dig digest
	var key []byte
	if bt.useCache {
		dig = bt.dig
		if bt.verify {
			key = bt.residualKey()
		}
		hit, collisions := bt.arena.table.lookup(dig, key)
		bt.stats.CacheCollisions += collisions
		if hit {
			bt.stats.CacheHits++
			bt.unassignVar(v)
			return false
		}
		bt.stats.CacheMisses++
	}
	if pos+1 == len(bt.order) {
		// All variables assigned, no null clause, but some clause open is
		// impossible (no unassigned literals remain), so this is SAT; the
		// numSat check above normally catches it.
		return true
	}
	if bt.search(pos+1, false) || bt.search(pos+1, true) {
		return true
	}
	if bt.useCache && !bt.aborted {
		bt.arena.table.insert(dig, key)
	}
	bt.unassignVar(v)
	return false
}

// residualKey builds the exact byte key of the current residual
// sub-formula for VerifyKeys mode: the canonical varint encoding shared
// with cnf.Formula.AppendResidualKey, with satisfied clauses skipped in
// O(1) via satCnt. Allocated fresh per node on purpose — this mode is the
// measured baseline the digest replaces.
func (bt *backtracker) residualKey() []byte {
	buf := make([]byte, 0, 256)
	for ci, c := range bt.f.Clauses {
		if bt.satCnt[ci] > 0 {
			continue
		}
		buf = c.AppendResidualLits(buf, bt.assign)
	}
	return buf
}
