package sat

import (
	"bytes"
	"unsafe"

	"atpgeasy/internal/cnf"
)

// This file implements the production form of Algorithm 1's sub-formula
// table: the residual sub-formula is identified by an incrementally
// maintained 128-bit digest (see backtrack.go for the maintenance) and
// stored in a bounded open-addressing table with second-chance eviction,
// so cache memory stays flat no matter how large the search gets.
//
// Soundness: the digest is a commutative sum of per-clause fingerprints,
// each a strong mix of the clause's unassigned-literal hashes. Equal
// residual clause sets therefore always produce equal digests, and — with
// 128 bits — distinct residuals collide with negligible probability. A
// collision can only cause an incorrect UNSAT pruning; Caching.VerifyKeys
// removes even that risk by storing and comparing the exact byte key.

// DefaultCacheLimit bounds the sub-formula cache at 64 MiB per solver
// when Caching.CacheLimit is zero.
const DefaultCacheLimit = 64 << 20

// cacheProbe is the linear-probe window: a digest lives within this many
// slots of its home slot or not at all. Insertion into a full window
// evicts within the window (second chance), so lookups never scan farther.
const cacheProbe = 8

// digest is a 128-bit residual sub-formula fingerprint. Digests combine
// by component-wise addition mod 2^64 — a commutative group, which is what
// makes O(occurrences) incremental maintenance possible.
type digest [2]uint64

func (d *digest) add(o digest) { d[0] += o[0]; d[1] += o[1] }
func (d *digest) sub(o digest) { d[0] -= o[0]; d[1] -= o[1] }

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler with
// full avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// litDigest is the per-literal hash contribution, precomputed once per
// solve for every literal of the formula.
func litDigest(l cnf.Lit) digest {
	x := uint64(l) + 1
	return digest{mix64(x * 0x9e3779b97f4a7c15), mix64(x ^ 0xd1b54a32d192ed03)}
}

// cacheEntry is one slot of the table. An entry is live iff its epoch
// equals the table's current epoch, which makes clearing the whole table
// between solves O(1) (bump the epoch) instead of O(capacity).
type cacheEntry struct {
	dig   digest
	key   []byte // exact residual key; nil outside verification mode
	epoch uint32
	ref   bool // second-chance reference bit
}

// cacheSlotBytes is the accounted size of one slot.
var cacheSlotBytes = int64(unsafe.Sizeof(cacheEntry{}))

// cacheTable is the bounded open-addressing sub-formula table. It starts
// small and doubles lazily up to the largest power-of-two slot count whose
// slab fits the byte limit; past that, insertions evict second-chance
// within the probe window. In verification mode the stored byte keys are
// accounted too, with a clock hand reclaiming entries when they push the
// total over the limit.
type cacheTable struct {
	slots     []cacheEntry
	mask      uint64
	epoch     uint32
	maxSlots  int
	limit     int64 // byte budget over slab + stored keys
	live      int64
	keyBytes  int64
	evictions int64
	hand      uint64 // clock hand for byte-budget reclamation
}

// cacheMinSlots is the initial (and minimum) slot count.
const cacheMinSlots = 1 << 10

// reset prepares the table for a new solve under the given byte limit
// (0 = DefaultCacheLimit). Previously grown slabs are kept when they fit
// the new limit, so arena reuse stays allocation-free.
func (t *cacheTable) reset(limit int64) {
	if limit <= 0 {
		limit = DefaultCacheLimit
	}
	t.limit = limit
	maxSlots := cacheProbe * 2 // floor so tiny limits still yield a working table
	for int64(maxSlots*2)*cacheSlotBytes <= limit && maxSlots < 1<<30 {
		maxSlots *= 2
	}
	t.maxSlots = maxSlots
	if t.keyBytes > 0 {
		// Drop stored keys from a previous verification-mode solve so the
		// byte accounting restarts from zero.
		for i := range t.slots {
			t.slots[i].key = nil
		}
		t.keyBytes = 0
	}
	if len(t.slots) == 0 || len(t.slots) > maxSlots {
		n := cacheMinSlots
		if n > maxSlots {
			n = maxSlots
		}
		t.slots = make([]cacheEntry, n)
		t.mask = uint64(n - 1)
		t.epoch = 1
	} else {
		t.epoch++
		if t.epoch == 0 {
			// Epoch wrapped: stale stamps from 2^32 solves ago would alias
			// the new epoch. Clear and restart above the zero value.
			clear(t.slots)
			t.epoch = 1
		}
	}
	t.live, t.evictions, t.hand = 0, 0, 0
}

// bytes is the accounted footprint: slot slab plus stored exact keys.
func (t *cacheTable) bytes() int64 {
	return int64(len(t.slots))*cacheSlotBytes + t.keyBytes
}

// lookup reports whether dig is cached. In verification mode (key != nil)
// a digest match must also match the exact residual key; collisions
// counts digest hits rejected by that comparison.
func (t *cacheTable) lookup(dig digest, key []byte) (hit bool, collisions int64) {
	i := dig[0] & t.mask
	for p := uint64(0); p < cacheProbe; p++ {
		s := &t.slots[(i+p)&t.mask]
		if s.epoch != t.epoch {
			return false, collisions // empty slot ends the probe chain
		}
		if s.dig == dig {
			if key != nil && !bytes.Equal(s.key, key) {
				collisions++
				continue
			}
			s.ref = true
			return true, collisions
		}
	}
	return false, collisions
}

// insert stores dig (and, in verification mode, a copy of key). When the
// probe window is full it evicts by second chance: reference bits are
// cleared along the scan and the first entry found unreferenced is
// replaced (the window's last slot if every entry was referenced).
func (t *cacheTable) insert(dig digest, key []byte) {
	i := dig[0] & t.mask
	victim := -1
	for p := uint64(0); p < cacheProbe; p++ {
		j := int((i + p) & t.mask)
		s := &t.slots[j]
		if s.epoch != t.epoch {
			t.place(j, dig, key, false)
			t.maybeGrow()
			return
		}
		if s.dig == dig && (key == nil || bytes.Equal(s.key, key)) {
			s.ref = true
			return // already cached
		}
		if victim < 0 && !s.ref {
			victim = j
		}
		s.ref = false
	}
	if victim < 0 {
		victim = int((i + cacheProbe - 1) & t.mask)
	}
	t.place(victim, dig, key, true)
}

// place writes an entry into slot j, optionally accounting an eviction of
// the slot's previous occupant.
func (t *cacheTable) place(j int, dig digest, key []byte, evict bool) {
	s := &t.slots[j]
	if evict {
		t.evictions++
		t.keyBytes -= int64(len(s.key))
		t.live--
	}
	s.dig = dig
	s.epoch = t.epoch
	s.ref = false
	if key == nil {
		s.key = nil
	} else {
		s.key = append(s.key[:0], key...) // reuse the slot's previous key capacity
		t.keyBytes += int64(len(s.key))
	}
	t.live++
	if key != nil {
		t.reclaim(j)
	}
}

// reclaim clock-evicts live entries (sparing keep, the entry just placed)
// until the stored keys fit the byte budget again. Emptied slots may
// orphan entries further along their probe chains — those become
// unreachable and are reclaimed by the same clock later; the cost is lost
// pruning opportunities, never wrong answers.
func (t *cacheTable) reclaim(keep int) {
	for t.bytes() > t.limit && t.live > 1 && t.keyBytes > 0 {
		j := int(t.hand & t.mask)
		t.hand++
		s := &t.slots[j]
		if j == keep || s.epoch != t.epoch {
			continue
		}
		if s.ref {
			s.ref = false
			continue
		}
		s.epoch = t.epoch - 1 // any non-current epoch marks the slot empty
		t.keyBytes -= int64(len(s.key))
		s.key = nil
		t.live--
		t.evictions++
	}
}

// shrinkTo lowers the table's byte limit and, when the current slab no
// longer fits, replaces it with a smaller one. Cached entries are
// discarded (the table is only ever a pruning accelerator). Must not run
// concurrently with a solve using this table.
func (t *cacheTable) shrinkTo(limit int64) {
	if limit <= 0 {
		return
	}
	if t.limit <= 0 || limit < t.limit {
		t.limit = limit
	}
	maxSlots := cacheProbe * 2
	for int64(maxSlots*2)*cacheSlotBytes <= t.limit && maxSlots < 1<<30 {
		maxSlots *= 2
	}
	t.maxSlots = maxSlots
	if len(t.slots) > maxSlots {
		n := cacheMinSlots
		if n > maxSlots {
			n = maxSlots
		}
		t.slots = make([]cacheEntry, n)
		t.mask = uint64(n - 1)
		t.epoch = 1
		t.live, t.keyBytes, t.hand = 0, 0, 0
	}
}

// maybeGrow doubles the table once load reaches 3/4, up to the byte
// limit's slot budget. Entries that no longer fit their probe window
// after rehashing are dropped (rare at this load factor).
func (t *cacheTable) maybeGrow() {
	if len(t.slots) >= t.maxSlots || t.live*4 < int64(len(t.slots))*3 {
		return
	}
	old := t.slots
	t.slots = make([]cacheEntry, len(old)*2)
	t.mask = uint64(len(t.slots) - 1)
	t.live, t.keyBytes = 0, 0
	for i := range old {
		s := &old[i]
		if s.epoch != t.epoch {
			continue
		}
		home := s.dig[0] & t.mask
		placed := false
		for p := uint64(0); p < cacheProbe; p++ {
			j := (home + p) & t.mask
			if t.slots[j].epoch != t.epoch {
				t.slots[j] = cacheEntry{dig: s.dig, key: s.key, epoch: t.epoch, ref: s.ref}
				t.live++
				t.keyBytes += int64(len(s.key))
				placed = true
				break
			}
		}
		if !placed {
			t.evictions++
		}
	}
}
