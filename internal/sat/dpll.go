package sat

import (
	"atpgeasy/internal/cnf"
)

// DPLL is the production solver used as the TEGUS stand-in: iterative
// search with two-watched-literal unit propagation, first-UIP conflict
// clause learning, activity-driven decisions with phase saving, and
// geometric restarts. MaxConflicts, when positive, aborts with Unknown.
// Limits adds deadline/cancellation aborts.
type DPLL struct {
	MaxConflicts int64
	// DisableLearning turns off conflict clause recording (pure DPLL with
	// non-chronological backtracking disabled); used by ablation benches.
	DisableLearning bool
	Limits          Limits
}

// WithLimits returns a copy of the configuration with per-call limits.
func (d *DPLL) WithLimits(l Limits) Solver {
	cp := *d
	cp.Limits = l
	return &cp
}

// Solve decides satisfiability of f.
func (d *DPLL) Solve(f *cnf.Formula) Solution {
	st := newDPLLState(f, d)
	return st.run()
}

const litUndef = cnf.Lit(-1)

type dpllState struct {
	cfg      *DPLL
	numVars  int
	clauses  [][]cnf.Lit // problem + learned clauses
	nProblem int

	watches  [][]int32 // per literal: clause indices watching that literal
	assign   []cnf.Value
	level    []int32
	reason   []int32 // clause index, or -1 for decisions/assumptions
	trail    []cnf.Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     *varHeap
	phase    []bool
	seen     []bool

	stats  Stats
	failed bool // UNSAT established at level 0
}

func newDPLLState(f *cnf.Formula, cfg *DPLL) *dpllState {
	n := f.NumVars
	st := &dpllState{
		cfg:      cfg,
		numVars:  n,
		watches:  make([][]int32, 2*n),
		assign:   make([]cnf.Value, n),
		level:    make([]int32, n),
		reason:   make([]int32, n),
		activity: make([]float64, n),
		varInc:   1.0,
		phase:    make([]bool, n),
		seen:     make([]bool, n),
	}
	for i := range st.reason {
		st.reason[i] = -1
	}
	st.heap = newVarHeap(st.activity)
	for v := 0; v < n; v++ {
		st.heap.push(v)
	}
	for _, c := range f.Clauses {
		norm, taut := append(cnf.Clause(nil), c...).Normalize()
		if taut {
			continue
		}
		switch len(norm) {
		case 0:
			st.failed = true
		case 1:
			if !st.enqueue(norm[0], -1) {
				st.failed = true
			}
		default:
			st.addClause([]cnf.Lit(norm))
		}
		// Bump initial activity by occurrence so early decisions favor
		// frequently constrained variables.
		for _, l := range norm {
			st.activity[l.Var()] += 0.1
		}
	}
	st.heap.rebuild(st.numVars)
	return st
}

func (st *dpllState) addClause(lits []cnf.Lit) int32 {
	ci := int32(len(st.clauses))
	st.clauses = append(st.clauses, lits)
	st.watches[lits[0]] = append(st.watches[lits[0]], ci)
	st.watches[lits[1]] = append(st.watches[lits[1]], ci)
	return ci
}

func (st *dpllState) litValue(l cnf.Lit) cnf.Value {
	v := st.assign[l.Var()]
	if v == cnf.Unassigned {
		return cnf.Unassigned
	}
	if (v == cnf.True) != l.IsNeg() {
		return cnf.True
	}
	return cnf.False
}

// enqueue asserts literal l with the given reason clause. It reports false
// if l is already false (conflict at the caller's level).
func (st *dpllState) enqueue(l cnf.Lit, reason int32) bool {
	switch st.litValue(l) {
	case cnf.True:
		return true
	case cnf.False:
		return false
	}
	v := l.Var()
	st.assign[v] = cnf.ValueOf(!l.IsNeg())
	st.level[v] = int32(len(st.trailLim))
	st.reason[v] = reason
	st.trail = append(st.trail, l)
	return true
}

// propagate performs unit propagation; it returns the index of a
// conflicting clause or -1.
func (st *dpllState) propagate() int32 {
	for st.qhead < len(st.trail) {
		p := st.trail[st.qhead]
		st.qhead++
		st.stats.Propagations++
		falseLit := p.Not()
		ws := st.watches[falseLit]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			c := st.clauses[ci]
			// Ensure the falsified watch is c[1].
			if c[0] == falseLit {
				c[0], c[1] = c[1], c[0]
			}
			if st.litValue(c[0]) == cnf.True {
				kept = append(kept, ci)
				continue
			}
			moved := false
			for k := 2; k < len(c); k++ {
				if st.litValue(c[k]) != cnf.False {
					c[1], c[k] = c[k], c[1]
					st.watches[c[1]] = append(st.watches[c[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, ci)
			if !st.enqueue(c[0], ci) {
				// Conflict: restore remaining watchers and report.
				kept = append(kept, ws[wi+1:]...)
				st.watches[falseLit] = kept
				return ci
			}
		}
		st.watches[falseLit] = kept
	}
	return -1
}

func (st *dpllState) decisionLevel() int { return len(st.trailLim) }

// Activity rescale parameters shared by the DPLL and Incremental
// solvers: when any activity exceeds activityLimit, all activities and
// the bump increment are scaled down together so their ratios — and
// therefore the decision order — are preserved exactly.
const (
	activityLimit   = 1e100
	activityRescale = 1e-100
)

// rescaleActivities scales every activity and the bump increment by
// activityRescale. Scaling varInc alongside the activities is what
// keeps future bumps proportionate: rescaling only the activity array
// would make the next bumps 1e100 times too strong, collapsing the
// decision order to recency and degrading long incremental runs.
func rescaleActivities(activity []float64, varInc *float64) {
	for i := range activity {
		activity[i] *= activityRescale
	}
	*varInc *= activityRescale
}

func (st *dpllState) bumpVar(v int) {
	st.activity[v] += st.varInc
	if st.activity[v] > activityLimit {
		rescaleActivities(st.activity, &st.varInc)
	}
	st.heap.update(v)
}

// analyze derives a 1-UIP learned clause from the conflict and returns it
// with the backjump level.
func (st *dpllState) analyze(confl int32) ([]cnf.Lit, int) {
	learnt := []cnf.Lit{litUndef}
	counter := 0
	p := litUndef
	index := len(st.trail) - 1
	for {
		c := st.clauses[confl]
		for _, q := range c {
			if q == p {
				continue
			}
			v := q.Var()
			if !st.seen[v] && st.level[v] > 0 {
				st.seen[v] = true
				st.bumpVar(v)
				if int(st.level[v]) == st.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !st.seen[st.trail[index].Var()] {
			index--
		}
		p = st.trail[index]
		index--
		st.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = st.reason[p.Var()]
	}
	learnt[0] = p.Not()
	// Backjump level: highest level among the non-asserting literals.
	back := 0
	for i := 1; i < len(learnt); i++ {
		if int(st.level[learnt[i].Var()]) > back {
			back = int(st.level[learnt[i].Var()])
		}
	}
	for _, l := range learnt[1:] {
		st.seen[l.Var()] = false
	}
	return learnt, back
}

// cancelUntil pops the trail back to the given decision level.
func (st *dpllState) cancelUntil(lvl int) {
	if st.decisionLevel() <= lvl {
		return
	}
	bound := st.trailLim[lvl]
	for i := len(st.trail) - 1; i >= bound; i-- {
		v := st.trail[i].Var()
		st.phase[v] = st.assign[v] == cnf.True
		st.assign[v] = cnf.Unassigned
		st.reason[v] = -1
		if !st.heap.contains(v) {
			st.heap.push(v)
		}
	}
	st.trail = st.trail[:bound]
	st.trailLim = st.trailLim[:lvl]
	st.qhead = bound
}

func (st *dpllState) pickBranchVar() int {
	for st.heap.size() > 0 {
		v := st.heap.pop()
		if st.assign[v] == cnf.Unassigned {
			return v
		}
	}
	return -1
}

func (st *dpllState) run() Solution {
	if st.cfg.Limits.expired() {
		return Solution{Status: Unknown, Stats: st.stats}
	}
	if st.failed {
		return Solution{Status: Unsat, Stats: st.stats}
	}
	if confl := st.propagate(); confl >= 0 {
		return Solution{Status: Unsat, Stats: st.stats}
	}
	restartLimit := int64(100)
	conflictsAtRestart := int64(0)
	var steps int64
	for {
		steps++
		if steps%limitCheck == 0 && st.cfg.Limits.expired() {
			return Solution{Status: Unknown, Stats: st.stats}
		}
		confl := st.propagate()
		if confl >= 0 {
			st.stats.Conflicts++
			conflictsAtRestart++
			if st.decisionLevel() == 0 {
				return Solution{Status: Unsat, Stats: st.stats}
			}
			if st.cfg.MaxConflicts > 0 && st.stats.Conflicts > st.cfg.MaxConflicts {
				return Solution{Status: Unknown, Stats: st.stats}
			}
			if st.cfg.DisableLearning {
				// Chronological backtracking: flip the most recent decision
				// that still has an untried branch. We emulate by learning
				// nothing and backjumping one level, asserting the negation
				// of the last decision.
				lastDecision := st.trail[st.trailLim[st.decisionLevel()-1]]
				st.cancelUntil(st.decisionLevel() - 1)
				if !st.enqueue(lastDecision.Not(), -1) {
					return Solution{Status: Unsat, Stats: st.stats}
				}
				// Note: without learning this can revisit work; the reprise
				// is bounded by MaxConflicts in the ablation benches.
				continue
			}
			learnt, back := st.analyze(confl)
			st.cancelUntil(back)
			if len(learnt) == 1 {
				if !st.enqueue(learnt[0], -1) {
					return Solution{Status: Unsat, Stats: st.stats}
				}
			} else {
				ci := st.addClause(learnt)
				st.stats.Learned++
				if !st.enqueue(learnt[0], ci) {
					return Solution{Status: Unsat, Stats: st.stats}
				}
			}
			st.varInc /= 0.95
			continue
		}
		if conflictsAtRestart >= restartLimit {
			conflictsAtRestart = 0
			restartLimit = restartLimit * 3 / 2
			st.cancelUntil(0)
			continue
		}
		v := st.pickBranchVar()
		if v < 0 {
			model := make([]bool, st.numVars)
			for i := range model {
				model[i] = st.assign[i] == cnf.True
			}
			return Solution{Status: Sat, Model: model, Stats: st.stats}
		}
		st.stats.Decisions++
		if st.decisionLevel()+1 > st.stats.MaxDepth {
			st.stats.MaxDepth = st.decisionLevel() + 1
		}
		st.trailLim = append(st.trailLim, len(st.trail))
		st.enqueue(cnf.NewLit(v, !st.phase[v]), -1)
	}
}

// varHeap is an indexed max-heap over variable activities.
type varHeap struct {
	act  []float64
	heap []int
	pos  []int // var → heap index, -1 if absent
}

func newVarHeap(act []float64) *varHeap {
	h := &varHeap{act: act, pos: make([]int, len(act))}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *varHeap) size() int           { return len(h.heap) }
func (h *varHeap) contains(v int) bool { return h.pos[v] >= 0 }

func (h *varHeap) push(v int) {
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.pos[v])
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if h.pos[v] >= 0 {
		h.up(h.pos[v])
	}
}

// rebuild re-heapifies after bulk activity initialization.
func (h *varHeap) rebuild(n int) {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if h.act[h.heap[parent]] >= h.act[v] {
			break
		}
		h.heap[i] = h.heap[parent]
		h.pos[h.heap[i]] = i
		i = parent
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && h.act[h.heap[r]] > h.act[h.heap[l]] {
			best = r
		}
		if h.act[h.heap[best]] <= h.act[v] {
			break
		}
		h.heap[i] = h.heap[best]
		h.pos[h.heap[i]] = i
		i = best
	}
	h.heap[i] = v
	h.pos[v] = i
}
