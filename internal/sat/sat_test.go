package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"atpgeasy/internal/cnf"
	"atpgeasy/internal/logic"
)

// bruteForce decides satisfiability by enumeration (≤ 20 variables).
func bruteForce(f *cnf.Formula) Status {
	if f.NumVars > 20 {
		panic("bruteForce: too many variables")
	}
	assign := make([]bool, f.NumVars)
	for pat := 0; pat < 1<<uint(f.NumVars); pat++ {
		for i := range assign {
			assign[i] = pat>>uint(i)&1 == 1
		}
		if f.Eval(assign) {
			return Sat
		}
	}
	return Unsat
}

// randomFormula builds a random k-SAT-ish formula.
func randomFormula(rng *rand.Rand, nVars, nClauses int) *cnf.Formula {
	f := cnf.NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(3)
		c := make([]cnf.Lit, k)
		for j := range c {
			c[j] = cnf.NewLit(rng.Intn(nVars), rng.Intn(2) == 1)
		}
		f.AddClause(c...)
	}
	return f
}

func solvers() map[string]Solver {
	return map[string]Solver{
		"simple":        &Simple{},
		"caching":       &Caching{},
		"caching-exact": &Caching{VerifyKeys: true},
		"dpll":          &DPLL{},
		"dpll-nolearn":  &DPLL{DisableLearning: true},
	}
}

// TestSolversAgreeWithBruteForce is the central correctness property: all
// three engines must agree with exhaustive enumeration, and any SAT model
// must verify.
func TestSolversAgreeWithBruteForce(t *testing.T) {
	for name, s := range solvers() {
		s := s
		t.Run(name, func(t *testing.T) {
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				f := randomFormula(rng, 3+rng.Intn(8), 2+rng.Intn(25))
				want := bruteForce(f)
				sol := s.Solve(f)
				if sol.Status != want {
					t.Logf("seed %d: got %v want %v\n%v", seed, sol.Status, want, f)
					return false
				}
				if sol.Status == Sat {
					if err := Verify(f, sol.Model); err != nil {
						t.Logf("seed %d: bad model: %v", seed, err)
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestEmptyAndTrivialFormulas(t *testing.T) {
	for name, s := range solvers() {
		empty := cnf.NewFormula(0)
		if got := s.Solve(empty).Status; got != Sat {
			t.Errorf("%s: empty formula = %v, want SAT", name, got)
		}
		noClauses := cnf.NewFormula(3)
		if got := s.Solve(noClauses).Status; got != Sat {
			t.Errorf("%s: clause-free formula = %v, want SAT", name, got)
		}
		contradiction := cnf.NewFormula(1)
		contradiction.AddClause(cnf.NewLit(0, false))
		contradiction.AddClause(cnf.NewLit(0, true))
		if got := s.Solve(contradiction).Status; got != Unsat {
			t.Errorf("%s: x ∧ ¬x = %v, want UNSAT", name, got)
		}
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(cnf.NewLit(0, false))
	f.Clauses = append(f.Clauses, cnf.Clause{})
	for name, s := range solvers() {
		if got := s.Solve(f).Status; got != Unsat {
			t.Errorf("%s: formula with empty clause = %v, want UNSAT", name, got)
		}
	}
}

// TestFigure5WorkedExample runs Algorithm 1 on Formula 4.1 under the
// paper's ordering A (b,c,f,a,h,d,e,g,i) and checks that (a) the instance
// is SAT — a test for the circuit-SAT problem exists — and (b) the caching
// strategy actually prunes: the example in Section 4.1 shows the residual
// after b=0,c=0,f=0,a=0,h=0 recurring under a=1.
func TestFigure5WorkedExample(t *testing.T) {
	c := logic.Figure4a()
	f, err := cnf.FromCircuit(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	order := logic.Figure4aOrderingA(c)
	sol := (&Caching{Order: order}).Solve(f)
	if sol.Status != Sat {
		t.Fatalf("CIRCUIT-SAT(fig4a) = %v, want SAT", sol.Status)
	}
	if err := Verify(f, sol.Model); err != nil {
		t.Fatal(err)
	}
	// The model must drive output i to 1; check against simulation.
	in := make([]bool, len(c.Inputs))
	for k, id := range c.Inputs {
		in[k] = sol.Model[id]
	}
	if out := c.SimulateOutputs(in); !out[0] {
		t.Error("model does not set the circuit output to 1")
	}
}

func TestCachingPrunesRepeatedSubformulas(t *testing.T) {
	// An UNSAT formula built to repeat sub-formulas: two independent
	// blocks; the second block is UNSAT. Assignments to the first block
	// all produce the same residual, so the cache must hit.
	f := cnf.NewFormula(6)
	f.AddClause(cnf.NewLit(0, false), cnf.NewLit(1, false))
	f.AddClause(cnf.NewLit(2, false), cnf.NewLit(3, false))
	// UNSAT core on vars 4,5.
	f.AddClause(cnf.NewLit(4, false), cnf.NewLit(5, false))
	f.AddClause(cnf.NewLit(4, false), cnf.NewLit(5, true))
	f.AddClause(cnf.NewLit(4, true), cnf.NewLit(5, false))
	f.AddClause(cnf.NewLit(4, true), cnf.NewLit(5, true))

	cSol := (&Caching{}).Solve(f)
	sSol := (&Simple{}).Solve(f)
	if cSol.Status != Unsat || sSol.Status != Unsat {
		t.Fatalf("status: caching=%v simple=%v, want UNSAT", cSol.Status, sSol.Status)
	}
	if cSol.Stats.CacheHits == 0 {
		t.Error("caching solver made no cache hits on a formula with repeated residuals")
	}
	if cSol.Stats.Nodes >= sSol.Stats.Nodes {
		t.Errorf("caching visited %d nodes, simple %d; cache should prune", cSol.Stats.Nodes, sSol.Stats.Nodes)
	}
	if cSol.Stats.CacheEntries == 0 {
		t.Error("no cache entries recorded")
	}
}

func TestBadOrderingRejected(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(cnf.NewLit(0, false))
	for _, ord := range [][]int{{0, 1}, {0, 1, 1}, {0, 1, 5}} {
		if got := (&Caching{Order: ord}).Solve(f).Status; got != Unknown {
			t.Errorf("ordering %v: status %v, want Unknown", ord, got)
		}
		if got := (&Simple{Order: ord}).Solve(f).Status; got != Unknown {
			t.Errorf("ordering %v: status %v, want Unknown", ord, got)
		}
	}
}

func TestNodeLimitAborts(t *testing.T) {
	// Pigeonhole-ish hard instance: 4 pigeons, 3 holes.
	f := pigeonhole(4, 3)
	sol := (&Simple{MaxNodes: 5}).Solve(f)
	if sol.Status != Unknown {
		t.Errorf("status = %v, want Unknown under node limit", sol.Status)
	}
	sol = (&Caching{MaxNodes: 5}).Solve(f)
	if sol.Status != Unknown {
		t.Errorf("caching status = %v, want Unknown under node limit", sol.Status)
	}
}

func TestConflictLimitAborts(t *testing.T) {
	f := pigeonhole(7, 6)
	sol := (&DPLL{MaxConflicts: 3}).Solve(f)
	if sol.Status != Unknown {
		t.Errorf("status = %v, want Unknown under conflict limit", sol.Status)
	}
}

// limitedSolvers returns each engine as a LimitedSolver; all three
// built-ins must implement per-call limits.
func limitedSolvers(t *testing.T) map[string]LimitedSolver {
	t.Helper()
	out := make(map[string]LimitedSolver)
	for name, s := range solvers() {
		ls, ok := s.(LimitedSolver)
		if !ok {
			t.Fatalf("%s does not implement LimitedSolver", name)
		}
		out[name] = ls
	}
	return out
}

// TestDeadlineAborts: an already-expired deadline must abort every solver
// with Unknown, even on a hard instance, without mutating the original
// solver configuration.
func TestDeadlineAborts(t *testing.T) {
	f := pigeonhole(8, 7)
	past := Limits{Deadline: time.Now().Add(-time.Second)}
	for name, ls := range limitedSolvers(t) {
		limited := ls.WithLimits(past)
		if got := limited.Solve(f).Status; got != Unknown {
			t.Errorf("%s: expired deadline = %v, want Unknown", name, got)
		}
		// The original configuration must remain unlimited: the easy
		// PHP(3,3) instance still solves.
		if got := ls.Solve(pigeonhole(3, 3)).Status; got != Sat {
			t.Errorf("%s: WithLimits mutated the original configuration (%v)", name, got)
		}
	}
}

// TestCancelAborts: a closed Cancel channel must abort mid-search.
func TestCancelAborts(t *testing.T) {
	f := pigeonhole(8, 7)
	cancelled := make(chan struct{})
	close(cancelled)
	for name, ls := range limitedSolvers(t) {
		if got := ls.WithLimits(Limits{Cancel: cancelled}).Solve(f).Status; got != Unknown {
			t.Errorf("%s: closed cancel channel = %v, want Unknown", name, got)
		}
	}
}

// TestCachingCancelMidSearch: a cancel channel closed while the Caching
// solver is deep in its search must abort it promptly with Unknown —
// the cancel-channel analogue of the deadline tests (the engine relies on
// this path to drain parallel runs). PHP(12,11) takes the caching solver
// seconds uncancelled, so the 25 ms cancel always lands mid-search.
func TestCachingCancelMidSearch(t *testing.T) {
	f := pigeonhole(12, 11)
	cancel := make(chan struct{})
	go func() {
		time.Sleep(25 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	sol := (&Caching{Limits: Limits{Cancel: cancel}}).Solve(f)
	elapsed := time.Since(start)
	if sol.Status != Unknown {
		t.Fatalf("status = %v, want Unknown (cancelled mid-search)", sol.Status)
	}
	if sol.Stats.Nodes == 0 {
		t.Error("solver aborted before searching at all — cancel did not land mid-search")
	}
	if elapsed > 5*time.Second {
		t.Errorf("abort took %v after a 25ms cancel", elapsed)
	}
}

// TestLimitsHonoredPromptly: a short deadline must abort a search that
// would otherwise run far past it (the check cadence is limitCheck nodes).
func TestLimitsHonoredPromptly(t *testing.T) {
	f := pigeonhole(9, 8) // far beyond the deadline's reach for Simple
	start := time.Now()
	sol := (&Simple{Limits: Limits{Deadline: start.Add(50 * time.Millisecond)}}).Solve(f)
	elapsed := time.Since(start)
	if sol.Status != Unknown {
		t.Fatalf("status = %v, want Unknown", sol.Status)
	}
	if elapsed > 5*time.Second {
		t.Errorf("abort took %v, deadline was 50ms", elapsed)
	}
}

// TestDecisionsCountBranchPoints: after the double-count fix, Decisions
// counts branched variables, not visited branches. On a fully explored
// UNSAT tree every decision contributes exactly two nodes.
func TestDecisionsCountBranchPoints(t *testing.T) {
	f := pigeonhole(3, 2)
	for name, s := range map[string]Solver{"simple": &Simple{}, "caching": &Caching{}} {
		sol := s.Solve(f)
		if sol.Status != Unsat {
			t.Fatalf("%s: PHP(3,2) = %v, want UNSAT", name, sol.Status)
		}
		st := sol.Stats
		if st.Nodes != 2*st.Decisions {
			t.Errorf("%s: Nodes = %d, Decisions = %d; want Nodes == 2×Decisions on a fully explored UNSAT tree",
				name, st.Nodes, st.Decisions)
		}
	}
	// On a SAT instance the counters diverge but stay in the branch-point
	// envelope: Decisions ≤ Nodes ≤ 2·Decisions.
	sol := (&Simple{}).Solve(pigeonhole(4, 4))
	if sol.Status != Sat {
		t.Fatalf("PHP(4,4) = %v, want SAT", sol.Status)
	}
	if d, n := sol.Stats.Decisions, sol.Stats.Nodes; d > n || n > 2*d {
		t.Errorf("Decisions = %d, Nodes = %d outside [Decisions, 2×Decisions]", d, n)
	}
}

// pigeonhole builds the classic PHP(p, h) instance: p pigeons into h
// holes. UNSAT when p > h.
func pigeonhole(p, h int) *cnf.Formula {
	f := cnf.NewFormula(p * h)
	v := func(pi, hi int) int { return pi*h + hi }
	for pi := 0; pi < p; pi++ {
		c := make([]cnf.Lit, h)
		for hi := 0; hi < h; hi++ {
			c[hi] = cnf.NewLit(v(pi, hi), false)
		}
		f.AddClause(c...)
	}
	for hi := 0; hi < h; hi++ {
		for a := 0; a < p; a++ {
			for b := a + 1; b < p; b++ {
				f.AddClause(cnf.NewLit(v(a, hi), true), cnf.NewLit(v(b, hi), true))
			}
		}
	}
	return f
}

func TestPigeonholeUnsat(t *testing.T) {
	f := pigeonhole(5, 4)
	for name, s := range solvers() {
		if got := s.Solve(f).Status; got != Unsat {
			t.Errorf("%s: PHP(5,4) = %v, want UNSAT", name, got)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	f := pigeonhole(4, 4)
	for name, s := range solvers() {
		sol := s.Solve(f)
		if sol.Status != Sat {
			t.Errorf("%s: PHP(4,4) = %v, want SAT", name, sol.Status)
			continue
		}
		if err := Verify(f, sol.Model); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestCircuitSATInstances cross-checks the solvers on CIRCUIT-SAT
// formulas from random circuits against direct circuit enumeration.
func TestCircuitSATInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		c := randomCircuit(rng, 15)
		f, err := cnf.FromCircuit(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Ground truth: does some input pattern set an output to 1?
		want := Unsat
		nin := len(c.Inputs)
		for pat := 0; pat < 1<<uint(nin) && want == Unsat; pat++ {
			in := make([]bool, nin)
			for i := range in {
				in[i] = pat>>uint(i)&1 == 1
			}
			for _, o := range c.SimulateOutputs(in) {
				if o {
					want = Sat
					break
				}
			}
		}
		for name, s := range solvers() {
			sol := s.Solve(f)
			if sol.Status != want {
				t.Errorf("trial %d %s: got %v, want %v", trial, name, sol.Status, want)
			}
			if sol.Status == Sat {
				if err := Verify(f, sol.Model); err != nil {
					t.Errorf("trial %d %s: %v", trial, name, err)
				}
			}
		}
	}
}

func TestVerifyErrors(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(cnf.NewLit(0, false), cnf.NewLit(1, false))
	if err := Verify(f, []bool{false}); err == nil {
		t.Error("short model accepted")
	}
	if err := Verify(f, []bool{false, false}); err == nil {
		t.Error("falsifying model accepted")
	}
	if err := Verify(f, []bool{true, false}); err != nil {
		t.Errorf("good model rejected: %v", err)
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("Status.String wrong")
	}
}

func TestDPLLLearnsClauses(t *testing.T) {
	f := pigeonhole(5, 4)
	sol := (&DPLL{}).Solve(f)
	if sol.Status != Unsat {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Stats.Conflicts == 0 {
		t.Error("no conflicts recorded on PHP(5,4)")
	}
	if sol.Stats.Learned == 0 {
		t.Error("no clauses learned on PHP(5,4)")
	}
}

// randomCircuit mirrors the helper in package cnf's tests.
func randomCircuit(rng *rand.Rand, n int) *logic.Circuit {
	b := logic.NewBuilder("rand")
	nin := 2 + rng.Intn(3)
	for i := 0; i < nin; i++ {
		b.Input("in" + string(rune('a'+i)))
	}
	types := []logic.GateType{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	for i := 0; i < n; i++ {
		gt := types[rng.Intn(len(types))]
		arity := 1
		if gt != logic.Not {
			arity = 1 + rng.Intn(3)
		}
		fanin := make([]int, arity)
		neg := make([]bool, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(b.NumNodes())
			neg[j] = rng.Intn(4) == 0
		}
		b.GateN(gt, "g"+itoa(i), fanin, neg)
	}
	b.MarkOutput(b.NumNodes() - 1)
	return b.MustBuild()
}

func itoa(i int) string {
	digits := "0123456789"
	if i == 0 {
		return "0"
	}
	var out []byte
	for i > 0 {
		out = append([]byte{digits[i%10]}, out...)
		i /= 10
	}
	return string(out)
}

// TestStatsAdd: the snapshot merge must accumulate every counter and take
// the max depth.
func TestStatsAdd(t *testing.T) {
	var s Stats
	s.Add(Stats{Nodes: 1, Decisions: 2, Propagations: 3, Conflicts: 4, Learned: 5, CacheHits: 6, CacheMisses: 7, CacheEntries: 8, CacheEvictions: 9, CacheCollisions: 10, CacheBytes: 500, MaxDepth: 8})
	s.Add(Stats{Nodes: 10, Decisions: 20, Propagations: 30, Conflicts: 40, Learned: 50, CacheHits: 60, CacheMisses: 70, CacheEntries: 80, CacheEvictions: 90, CacheCollisions: 100, CacheBytes: 400, MaxDepth: 3})
	want := Stats{Nodes: 11, Decisions: 22, Propagations: 33, Conflicts: 44, Learned: 55, CacheHits: 66, CacheMisses: 77, CacheEntries: 88, CacheEvictions: 99, CacheCollisions: 110, CacheBytes: 500, MaxDepth: 8}
	if s != want {
		t.Errorf("merged stats = %+v, want %+v", s, want)
	}
}
