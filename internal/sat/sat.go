// Package sat implements the three Boolean-satisfiability solvers used in
// the reproduction of "Why is ATPG Easy?":
//
//   - Simple: simple backtracking with a fixed static variable ordering —
//     the base algorithm of Section 4.1 without the cache.
//   - Caching: the paper's Algorithm 1, caching-based backtracking, which
//     caches unsatisfiable sub-formulas (as clause sets) and prunes any
//     branch whose residual sub-formula has been seen before. Its node
//     count realizes the distinct-consistent-sub-formula (DCSF) bound of
//     Theorem 4.1.
//   - DPLL: a production conflict-driven solver (watched literals, 1-UIP
//     learning, activity-based decisions) playing the role of TEGUS's SAT
//     core in the Figure 1 experiment.
//
// All solvers consume cnf.Formula and return a Solution with a model on
// SAT and search statistics.
//
// # Determinism contract
//
// Every solver in this package is a pure function of (formula, limits):
// re-solving the same formula yields the same verdict, the same model,
// and the same statistics, with no dependence on scheduling or timing.
// Solvers that accept a priority variable list (DPLL, Incremental)
// strengthen this to a lex-least guarantee: each decision assigns the
// first unassigned priority variable to false before any
// activity-ordered decision is considered, so the first model found
// projects onto the priority variables as the lexicographically least
// assignment among all models consistent with the assumptions — whatever
// learned clauses happen to be in the database, and whatever was solved
// on the instance before. Callers lean on this contract wherever results
// must not depend on execution order: the ATPG engine's region-grouped
// incremental solving extracts the same test vector a fresh solve would
// (see Incremental), and the routed portfolio's backends can hand faults
// to each other without perturbing any other fault's pattern. The
// internal/podem package honors the same contract on the structural
// side, resolving every search choice by smallest node ID.
package sat

import (
	"fmt"
	"time"

	"atpgeasy/internal/cnf"
)

// Status is the outcome of a solve call.
type Status int8

// Solver outcomes. Unknown is returned when a resource limit was hit
// before the search completed.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String returns "SAT", "UNSAT" or "UNKNOWN".
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Stats counts search work. Not every field is meaningful for every
// solver: the Cache* fields apply to Caching; Conflicts/Learned to DPLL.
// The JSON tags fix the schema of trace events and -json summaries.
type Stats struct {
	Nodes        int64 `json:"nodes"` // backtracking nodes visited (Simple/Caching)
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Conflicts    int64 `json:"conflicts"`
	Learned      int64 `json:"learned"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int64 `json:"cache_entries"` // live entries at the end of the solve
	// CacheEvictions counts entries displaced by the bounded table
	// (second-chance within the probe window plus byte-budget reclaims).
	CacheEvictions int64 `json:"cache_evictions"`
	// CacheCollisions counts digest matches rejected by exact-key
	// comparison; only Caching.VerifyKeys mode can observe them.
	CacheCollisions int64 `json:"cache_collisions"`
	// CacheBytes is the cache's memory footprint (slot slab + stored keys)
	// at the end of the solve. It is a gauge, not a flow: Add takes the
	// maximum, since summing per-fault snapshots of the same per-worker
	// arena would multiply-count one allocation.
	CacheBytes int64 `json:"cache_bytes"`
	MaxDepth   int   `json:"max_depth"`
	// Incremental-solver counters (zero for the one-shot solvers).
	// LearnedKept counts learned clauses alive at call start that were
	// born in earlier SolveAssuming calls; LearnedReused counts how
	// many learned-clause uses in this call's conflict analyses came
	// from clauses born in earlier calls — the direct measure of
	// cross-fault knowledge reuse. ClauseDBBytes is the learned
	// database footprint at call end: a gauge, so Add takes the
	// maximum like CacheBytes.
	LearnedKept   int64 `json:"learned_kept,omitempty"`
	LearnedReused int64 `json:"learned_reused,omitempty"`
	ClauseDBBytes int64 `json:"clause_db_bytes,omitempty"`
}

// Add accumulates o into s field-wise; MaxDepth and CacheBytes take the
// maximum. It is the snapshot-merge used to aggregate per-fault solver
// work into run-level totals (Summary.SolverTotals, the /metrics
// counters).
func (s *Stats) Add(o Stats) {
	s.Nodes += o.Nodes
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Conflicts += o.Conflicts
	s.Learned += o.Learned
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheEntries += o.CacheEntries
	s.CacheEvictions += o.CacheEvictions
	s.CacheCollisions += o.CacheCollisions
	s.LearnedKept += o.LearnedKept
	s.LearnedReused += o.LearnedReused
	if o.CacheBytes > s.CacheBytes {
		s.CacheBytes = o.CacheBytes
	}
	if o.ClauseDBBytes > s.ClauseDBBytes {
		s.ClauseDBBytes = o.ClauseDBBytes
	}
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
}

// SearchEffort collapses the search counters into one solver-agnostic
// work scalar: the DPLL solver fills decisions/propagations/conflicts,
// the backtrackers fill nodes, and summing all four orders faults by
// search work regardless of which solver decided them. This is the
// effort axis of the per-fault effort log (the y of the source paper's
// Figure 1, in search steps instead of seconds — unlike wall time it is
// deterministic and machine-independent).
func (s Stats) SearchEffort() int64 {
	return s.Nodes + s.Decisions + s.Propagations + s.Conflicts
}

// Solution is the result of a solve call. Model is valid only when Status
// is Sat and then has one value per variable.
type Solution struct {
	Status Status
	Model  []bool
	Stats  Stats
}

// Solver is the common interface of the three engines.
type Solver interface {
	// Solve decides satisfiability of f. Implementations must not retain f.
	Solve(f *cnf.Formula) Solution
}

// Limits carries per-call abort controls. The zero value imposes none.
// Searches observe both mechanisms at a coarse cadence (every limitCheck
// nodes), so aborts cost no measurable overhead on easy instances.
type Limits struct {
	// Deadline, when non-zero, aborts the search with Unknown once passed.
	Deadline time.Time
	// Cancel, when non-nil, aborts the search with Unknown once closed.
	// Typically a context's Done channel.
	Cancel <-chan struct{}
}

// IsZero reports whether the limits impose nothing.
func (l Limits) IsZero() bool { return l.Deadline.IsZero() && l.Cancel == nil }

// expired reports whether the search must stop now.
func (l Limits) expired() bool {
	if l.Cancel != nil {
		select {
		case <-l.Cancel:
			return true
		default:
		}
	}
	return !l.Deadline.IsZero() && !time.Now().Before(l.Deadline)
}

// limitCheck is the node cadence at which search loops consult Limits.
// Coarse enough that time.Now stays off the hot path, fine enough that a
// per-fault budget is honored within microseconds.
const limitCheck = 1024

// LimitedSolver is implemented by solvers that support per-call abort
// limits. WithLimits returns a configured copy so a shared, read-only
// solver configuration can be specialized per call — the ATPG engine uses
// this to give every fault its own deadline without sharing mutable state
// across workers.
type LimitedSolver interface {
	Solver
	WithLimits(Limits) Solver
}

// Verify checks that a claimed model satisfies the formula; it returns an
// error naming the first violated clause. Used in tests and by the ATPG
// engine as a safety net.
func Verify(f *cnf.Formula, model []bool) error {
	if len(model) < f.NumVars {
		return fmt.Errorf("sat: model has %d values for %d variables", len(model), f.NumVars)
	}
	for i, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if l.Sat(model[l.Var()]) {
				sat = true
				break
			}
		}
		if !sat {
			return fmt.Errorf("sat: clause %d %s violated", i, f.PrettyClause(c))
		}
	}
	return nil
}

// checkOrder validates that order is a permutation covering all n
// variables; a nil order means the identity, materialized in the arena's
// reusable buffer.
func checkOrder(order []int, n int, a *Arena) ([]int, bool) {
	if order == nil {
		a.order = sized(a.order, n)
		for i := range a.order {
			a.order[i] = i
		}
		return a.order, true
	}
	if len(order) != n {
		return nil, false
	}
	a.seen = zeroed(a.seen, n)
	for _, v := range order {
		if v < 0 || v >= n || a.seen[v] {
			return nil, false
		}
		a.seen[v] = true
	}
	return order, true
}
