package sat

import (
	"math/rand"
	"testing"

	"atpgeasy/internal/cnf"
	"atpgeasy/internal/gen"
)

// TestHashedCacheAgreesOnCircuits is the satellite property test: on
// randomized generated circuits the hashed-digest cache, the exact-key
// cache, Simple and DPLL must all return the same SAT/UNSAT verdict, and
// every SAT model must verify against the formula.
func TestHashedCacheAgreesOnCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		c := gen.Random(gen.RandomParams{
			Inputs:   3 + rng.Intn(5),
			Gates:    8 + rng.Intn(25),
			Locality: 1.0 + rng.Float64()*2,
			Seed:     int64(1000 + trial),
		})
		// Force a random output to a random value so a healthy share of
		// the instances are UNSAT, not just circuit-consistency SAT.
		out := c.Outputs[rng.Intn(len(c.Outputs))]
		f, err := cnf.FromCircuit(c, map[int]bool{out: rng.Intn(2) == 1})
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}

		want := Unknown
		for name, s := range solvers() {
			sol := s.Solve(f)
			if sol.Status == Unknown {
				t.Fatalf("trial %d: %s returned Unknown", trial, name)
			}
			if want == Unknown {
				want = sol.Status
			} else if sol.Status != want {
				t.Fatalf("trial %d: %s = %v, other solvers = %v", trial, name, sol.Status, want)
			}
			if sol.Status == Sat {
				if err := Verify(f, sol.Model); err != nil {
					t.Fatalf("trial %d: %s model invalid: %v", trial, name, err)
				}
			}
		}
	}
}

// TestWeakHashCollisionFallback injects a degenerate hash (every residual
// digests to the same value) and checks that exact-key verification keeps
// the solver correct while actually exercising the collision path.
func TestWeakHashCollisionFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var collisions, hits int64
	for trial := 0; trial < 40; trial++ {
		f := randomFormula(rng, 3+rng.Intn(6), 4+rng.Intn(12))
		want := bruteForce(f)
		s := &Caching{VerifyKeys: true, weakHash: true}
		sol := s.Solve(f)
		if sol.Status != want {
			t.Fatalf("trial %d: weak-hash solver = %v, brute force = %v", trial, sol.Status, want)
		}
		if sol.Status == Sat {
			if err := Verify(f, sol.Model); err != nil {
				t.Fatalf("trial %d: model invalid: %v", trial, err)
			}
		}
		collisions += sol.Stats.CacheCollisions
		hits += sol.Stats.CacheHits
	}
	// With every digest identical, distinct residuals landing on the same
	// slot must be detected by the byte-key comparison.
	if collisions == 0 {
		t.Fatalf("weak hash produced no detected collisions (hits = %d); fallback path untested", hits)
	}

	// Sanity check in the other direction: without VerifyKeys the same
	// degenerate hash must misbehave on at least one instance, proving the
	// collision scenario is real rather than vacuous.
	rng = rand.New(rand.NewSource(7))
	wrong := false
	for trial := 0; trial < 40 && !wrong; trial++ {
		f := randomFormula(rng, 3+rng.Intn(6), 4+rng.Intn(12))
		want := bruteForce(f)
		sol := (&Caching{weakHash: true}).Solve(f)
		if sol.Status != want {
			wrong = true
		}
	}
	if !wrong {
		t.Log("note: unverified weak hash happened to stay correct on this corpus")
	}
}

// TestCacheLimitBoundsMemory solves a pigeonhole instance under a tight
// byte budget and checks the accounting: the footprint must respect the
// limit, eviction must have occurred, and the verdict must be unchanged.
func TestCacheLimitBoundsMemory(t *testing.T) {
	f := pigeonhole(8, 7)
	const limit = 1 << 16

	unlimited := (&Caching{}).Solve(f)
	if unlimited.Status != Unsat {
		t.Fatalf("unlimited: pigeonhole(8,7) = %v, want Unsat", unlimited.Status)
	}
	limited := (&Caching{CacheLimit: limit}).Solve(f)
	if limited.Status != Unsat {
		t.Fatalf("limited: pigeonhole(8,7) = %v, want Unsat", limited.Status)
	}
	if limited.Stats.CacheBytes > limit {
		t.Errorf("CacheBytes = %d, exceeds limit %d", limited.Stats.CacheBytes, limit)
	}
	if limited.Stats.CacheEvictions == 0 {
		t.Errorf("no evictions under a %d-byte limit (entries = %d)", int64(limit), limited.Stats.CacheEntries)
	}
	// A smaller cache can only lose pruning opportunities, never gain them.
	if limited.Stats.Nodes < unlimited.Stats.Nodes {
		t.Errorf("limited cache visited fewer nodes (%d) than unlimited (%d)",
			limited.Stats.Nodes, unlimited.Stats.Nodes)
	}

	// Same accounting discipline in exact-key mode, where variable-length
	// byte keys join the fixed slot cost.
	exact := (&Caching{VerifyKeys: true, CacheLimit: limit}).Solve(f)
	if exact.Status != Unsat {
		t.Fatalf("exact limited: pigeonhole(8,7) = %v, want Unsat", exact.Status)
	}
	if exact.Stats.CacheBytes > limit {
		t.Errorf("exact-key CacheBytes = %d, exceeds limit %d", exact.Stats.CacheBytes, limit)
	}
}

// TestArenaReuseMatchesFreshSolve runs a mixed bag of formulas twice —
// once with a fresh solver per formula, once through a single shared
// arena — and requires bit-identical outcomes and search statistics.
// This is the correctness half of the engine's cross-fault arena reuse.
func TestArenaReuseMatchesFreshSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	formulas := []*cnf.Formula{pigeonhole(5, 4), pigeonhole(4, 4)}
	for i := 0; i < 12; i++ {
		formulas = append(formulas, randomFormula(rng, 4+rng.Intn(8), 6+rng.Intn(20)))
	}

	for name, mk := range map[string]func() ArenaSolver{
		"simple":        func() ArenaSolver { return &Simple{} },
		"caching":       func() ArenaSolver { return &Caching{} },
		"caching-exact": func() ArenaSolver { return &Caching{VerifyKeys: true} },
	} {
		t.Run(name, func(t *testing.T) {
			arena := NewArena()
			for i, f := range formulas {
				fresh := mk().Solve(f)
				reused := mk().SolveArena(f, arena)
				if fresh.Status != reused.Status {
					t.Fatalf("formula %d: fresh = %v, arena = %v", i, fresh.Status, reused.Status)
				}
				if reused.Status == Sat {
					if err := Verify(f, reused.Model); err != nil {
						t.Fatalf("formula %d: arena model invalid: %v", i, err)
					}
				}
				fs, rs := fresh.Stats, reused.Stats
				if fs.Nodes != rs.Nodes || fs.Decisions != rs.Decisions ||
					fs.Propagations != rs.Propagations || fs.CacheHits != rs.CacheHits {
					t.Fatalf("formula %d: stats diverge: fresh %+v, arena %+v", i, fs, rs)
				}
			}
		})
	}
}

// TestArenaCacheResetBetweenSolves checks that a reused arena never leaks
// cached UNSAT residuals from one formula into the next: a formula solved
// after many unrelated ones must report the same hit/miss profile as on a
// fresh arena.
func TestArenaCacheResetBetweenSolves(t *testing.T) {
	arena := NewArena()
	probe := pigeonhole(6, 5)
	base := (&Caching{}).SolveArena(probe, NewArena())

	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 10; i++ {
		(&Caching{}).SolveArena(randomFormula(rng, 6, 18), arena)
	}
	again := (&Caching{}).SolveArena(probe, arena)
	if again.Status != base.Status || again.Stats.CacheHits != base.Stats.CacheHits ||
		again.Stats.CacheMisses != base.Stats.CacheMisses || again.Stats.Nodes != base.Stats.Nodes {
		t.Fatalf("warm arena changed the search: fresh %+v, warm %+v", base.Stats, again.Stats)
	}
}

// TestArenaShrinkIsStickyAndSound halves a warm arena's cache budget and
// checks (a) the slab actually shrinks, (b) the cap survives later solves
// (reset must not regrow past it), and (c) verdicts are unchanged — a
// smaller cache may only lose pruning opportunities.
func TestArenaShrinkIsStickyAndSound(t *testing.T) {
	f := pigeonhole(8, 7)
	arena := NewArena()
	base := (&Caching{}).SolveArena(f, arena)
	if base.Status != Unsat {
		t.Fatalf("pigeonhole(8,7) = %v, want Unsat", base.Status)
	}
	before := arena.CacheBytes()
	if before <= cacheShrinkFloor {
		t.Fatalf("warm cache too small to exercise Shrink: %d bytes", before)
	}

	capBytes := arena.Shrink()
	if capBytes <= 0 || capBytes >= DefaultCacheLimit {
		t.Fatalf("Shrink cap = %d", capBytes)
	}
	if arena.CacheCap() != capBytes {
		t.Fatalf("CacheCap = %d, want %d", arena.CacheCap(), capBytes)
	}
	if got := arena.CacheBytes(); got > before {
		t.Fatalf("slab grew across Shrink: %d -> %d", before, got)
	}

	// Shrink repeatedly: the cap must bottom out at the floor, not zero.
	for i := 0; i < 40; i++ {
		capBytes = arena.Shrink()
	}
	if capBytes != cacheShrinkFloor {
		t.Fatalf("Shrink floor = %d, want %d", capBytes, cacheShrinkFloor)
	}

	// Later solves must respect the sticky cap and still be correct.
	again := (&Caching{}).SolveArena(f, arena)
	if again.Status != Unsat {
		t.Fatalf("post-shrink verdict = %v, want Unsat", again.Status)
	}
	if again.Stats.CacheBytes > capBytes {
		t.Fatalf("reset regrew past sticky cap: %d > %d", again.Stats.CacheBytes, capBytes)
	}
	if again.Stats.Nodes < base.Stats.Nodes {
		t.Fatalf("shrunk cache visited fewer nodes (%d) than full cache (%d)",
			again.Stats.Nodes, base.Stats.Nodes)
	}
}
