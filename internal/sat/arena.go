package sat

import "atpgeasy/internal/cnf"

// Arena holds the reusable scratch of the backtracking solvers: the
// assignment, clause counters, occurrence lists, digest state and the
// bounded sub-formula cache. The ATPG engine gives each worker one Arena
// and passes it to SolveArena for every fault the worker processes;
// buffers grow to the largest instance seen and are then reused
// allocation-free. An Arena must not be used by concurrent solves.
type Arena struct {
	bt backtracker

	assign   []cnf.Value
	satCnt   []int32
	falseCnt []int32
	occOff   []int32
	occ      []int32
	order    []int
	seen     []bool

	clsSum     []digest
	clsContrib []digest
	litDig     []digest

	table cacheTable
	// cacheCap, when non-zero, is a sticky byte cap imposed by Shrink:
	// every subsequent solve clamps its configured cache limit to it, so a
	// table halved under memory pressure stays halved instead of being
	// regrown by the next solve's reset.
	cacheCap int64

	// inc is the worker's incremental CDCL instance, created lazily by
	// Incremental(). Holding it here extends the arena's buffer-reuse
	// contract to the solver's own state: consecutive region groups
	// reuse its trail/watch/clause buffers, and Shrink reaches its
	// learned-clause database under memory pressure.
	inc *Incremental
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// cacheShrinkFloor is the smallest cap Shrink will impose — enough for a
// minimum-size table, so shrinking degrades pruning rather than
// disabling the solver.
var cacheShrinkFloor = int64(cacheMinSlots) * cacheSlotBytes

// Shrink halves the arena's sub-formula cache budget and releases the
// excess table slab immediately. The new budget is sticky (see cacheCap)
// and bottoms out at a minimum-size table. Cached entries are dropped —
// costing only lost pruning opportunities, never wrong answers. Shrink
// must be called from the goroutine that owns the arena, between solves;
// it returns the new byte cap.
func (a *Arena) Shrink() int64 {
	cur := a.cacheCap
	if cur <= 0 {
		cur = a.table.limit
	}
	if cur <= 0 {
		cur = DefaultCacheLimit
	}
	c := cur / 2
	if c < cacheShrinkFloor {
		c = cacheShrinkFloor
	}
	a.cacheCap = c
	a.table.shrinkTo(c)
	if a.inc != nil {
		a.inc.ShrinkLearned()
	}
	return c
}

// CacheCap reports the sticky cache byte cap (0 = uncapped).
func (a *Arena) CacheCap() int64 { return a.cacheCap }

// Incremental returns the arena's incremental CDCL instance, creating
// it on first use. Like every other arena buffer it must only be used
// by the goroutine that owns the arena.
func (a *Arena) Incremental() *Incremental {
	if a.inc == nil {
		a.inc = NewIncremental()
	}
	return a.inc
}

// LearnedCap reports the incremental instance's sticky learned-clause
// budget (0 if no instance exists or it is unshrunk). The resilience
// layer uses it to carry shrink state onto a replacement arena after a
// worker panic.
func (a *Arena) LearnedCap() int64 {
	if a.inc == nil {
		return 0
	}
	return a.inc.LearnedLimit
}

// CacheBytes reports the cache table's current accounted footprint.
func (a *Arena) CacheBytes() int64 { return a.table.bytes() }

// ArenaSolver is implemented by solvers whose per-solve scratch can be
// reused across consecutive solves via an Arena.
type ArenaSolver interface {
	Solver
	// SolveArena is Solve using (and growing) a's buffers; passing nil is
	// equivalent to Solve. The arena must not be shared across concurrent
	// calls.
	SolveArena(f *cnf.Formula, a *Arena) Solution
}

// sized returns buf with length n, reusing its backing array when large
// enough; contents are unspecified.
func sized[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}

// zeroed returns buf with length n and all elements zeroed.
func zeroed[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		buf = buf[:n]
		clear(buf)
		return buf
	}
	return make([]T, n)
}
