package sat

import "atpgeasy/internal/cnf"

// Arena holds the reusable scratch of the backtracking solvers: the
// assignment, clause counters, occurrence lists, digest state and the
// bounded sub-formula cache. The ATPG engine gives each worker one Arena
// and passes it to SolveArena for every fault the worker processes;
// buffers grow to the largest instance seen and are then reused
// allocation-free. An Arena must not be used by concurrent solves.
type Arena struct {
	bt backtracker

	assign   []cnf.Value
	satCnt   []int32
	falseCnt []int32
	occOff   []int32
	occ      []int32
	order    []int
	seen     []bool

	clsSum     []digest
	clsContrib []digest
	litDig     []digest

	table cacheTable
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// ArenaSolver is implemented by solvers whose per-solve scratch can be
// reused across consecutive solves via an Arena.
type ArenaSolver interface {
	Solver
	// SolveArena is Solve using (and growing) a's buffers; passing nil is
	// equivalent to Solve. The arena must not be shared across concurrent
	// calls.
	SolveArena(f *cnf.Formula, a *Arena) Solution
}

// sized returns buf with length n, reusing its backing array when large
// enough; contents are unspecified.
func sized[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}

// zeroed returns buf with length n and all elements zeroed.
func zeroed[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		buf = buf[:n]
		clear(buf)
		return buf
	}
	return make([]T, n)
}
