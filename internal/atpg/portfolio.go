package atpg

// The routed worker: the execution side of the cut-width-guided router
// (router.go). A routed run's dispatch order is hard-class region groups
// first, then the single-fault tail (structural → low-width → trivial);
// this file drains both phases and aims each single fault at its class
// backend — the PODEM structural engine, the Algorithm-1 caching
// backtracker, or a CDCL solve — behind the same per-fault panic
// barrier, speculative publish and deterministic commit frontier as the
// unrouted engine. Backends differ only in how a verdict is found, never
// in what it means: every path yields the same Detected / Untestable /
// Aborted statuses and a verified vector, so routed runs stay
// byte-identical at any worker count.

import (
	"context"
	"fmt"
	"time"

	"atpgeasy/internal/podem"
	"atpgeasy/internal/sat"
)

// Backend names as they appear in Result.Backend, effort records, the
// routed summary and the atpg_routed_total metric; backendFaultSim
// (telemetry.go) completes the set.
const (
	backendPodem   = "podem"
	backendCaching = "caching"
	backendCDCL    = "cdcl"
)

// runRoutedWorker is runWorker for the routed portfolio path. Phase one
// drains the hard-class prefix as region groups on the incremental CDCL
// backend (one atomic add per group, budget scaled by RouteHardScale);
// phase two claims the single-fault tail in chunks and solves each fault
// on its class backend. Both phases publish speculatively and commit
// through the shared deterministic frontier.
func (e *Engine) runRoutedWorker(ctx context.Context, st *runState, worker int, ws *workerScratch) error {
	tel := st.opt.Telemetry
	var shrinkSeen int64

	hardBudget := st.routedHardBudget()
	emit := func(i int, res Result) error {
		res.Backend = backendCDCL
		if res.Status == Errored {
			st.dumpRingOnce("fault panic recovered", true)
		}
		if st.droppedF.get(i) {
			// Dropped between the solve and the publish: the official
			// verdict is "dropped", so the solve is discarded.
			st.countWasted(1)
			if st.effort != nil && st.recordedF.set(i) {
				st.recordEffort(ws, i, &res, "dropped", res.Status, 0, worker, true)
			}
			return nil
		}
		st.published[i].Store(&specResult{res: res, worker: int32(worker)})
		return st.kickCommit(ws, worker)
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		st.maybeShrink(ws, worker, &shrinkSeen)
		gi := int(st.groupCursor.Add(1) - 1)
		if gi >= len(st.groups) {
			break
		}
		if err := e.solveGroup(ctx, st, st.order, &st.groups[gi], ws, worker, &shrinkSeen, st.sweepSpan, hardBudget, emit); err != nil {
			return err
		}
	}

	// Single-fault tail. Positions are relative to the hard prefix; the
	// shared cursor spans only the tail, so group claims and single
	// claims never collide.
	base := st.route.hardEnd
	cl := chunkClaimer{cursor: &st.cursor, n: len(st.order) - base, workers: st.workers}
	cl.onChunk = func(lo, hi int) {
		st.ring.Record("chunk", worker, int64(base+lo), int64(hi-lo), 0)
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		st.maybeShrink(ws, worker, &shrinkSeen)
		p := cl.next()
		if p < 0 {
			return nil
		}
		i := int(st.order[base+p])
		if st.droppedF.get(i) {
			continue // dropped by a committed vector since reservation
		}
		fspan := tel.startSpan("fault", st.sweepSpan)
		if fspan.Active() {
			fspan.Worker = worker
			fspan.Detail = st.faults[i].Name(st.c)
		}
		res, err := e.solveRouted(ctx, st, i, st.route.class[i], ws, st.opt.PerFaultBudget)
		fspan.Items = res.SolverStats.SearchEffort()
		fspan.End()
		st.ring.Record("solve", worker, int64(i), int64(res.Status), res.Elapsed.Nanoseconds())
		if err != nil {
			return err
		}
		if res.Status == Errored {
			st.dumpRingOnce("fault panic recovered", true)
		}
		if ctx.Err() != nil {
			// The abort is a draining artifact, not a verdict on the fault.
			return nil
		}
		if st.droppedF.get(i) {
			st.countWasted(1)
			if st.effort != nil && st.recordedF.set(i) {
				st.recordEffort(ws, i, &res, "dropped", res.Status, 0, worker, true)
			}
			continue
		}
		st.published[i].Store(&specResult{res: res, worker: int32(worker)})
		if err := st.kickCommit(ws, worker); err != nil {
			return err
		}
	}
}

// routedHardBudget is PerFaultBudget scaled by RouteHardScale for the
// hard class (0 stays 0: no budget means no deadline on any backend).
func (st *runState) routedHardBudget() time.Duration {
	b := st.opt.PerFaultBudget
	if b <= 0 {
		return 0
	}
	scale := st.opt.RouteHardScale
	if scale == 0 {
		scale = DefaultRouteHardScale
	}
	if scale < 1 {
		scale = 1
	}
	return time.Duration(float64(b) * scale)
}

// solveRouted decides one single-dispatched fault on its class backend,
// behind the engine's per-fault panic barrier. budget, when positive,
// bounds the whole attempt — for the structural class that includes both
// the PODEM search and its CDCL fallback, which inherits whatever of the
// deadline PODEM left unspent.
func (e *Engine) solveRouted(ctx context.Context, st *runState, i int, cls EffortClass, ws *workerScratch, budget time.Duration) (Result, error) {
	f := st.faults[i]
	return e.safeSolve(f, ws, func() (Result, error) {
		lim := sat.Limits{Cancel: ctx.Done()}
		if budget > 0 {
			lim.Deadline = time.Now().Add(budget)
		}
		switch cls {
		case ClassLowWidth:
			return e.solveCachingBackend(st, f, ws, lim)
		case ClassHard:
			// Hard faults normally solve in the grouped prefix; a single
			// hard solve only happens when retry escalation bumps a fault
			// here — a fresh CDCL solve, no region group to join.
			res, err := e.testFault(st.c, f, lim, ws, st.opt.CacheLimit)
			res.Backend = backendCDCL
			return res, err
		default: // ClassTrivial, ClassStructural: survivors go through PODEM
			return e.solvePodemBackend(st, f, ws, lim)
		}
	})
}

// solveCachingBackend is the low-width class's backend: the Algorithm-1
// caching backtracker, polynomial on the bounded-cut-width sub-circuits
// the router sends it (the paper's own solver).
func (e *Engine) solveCachingBackend(st *runState, f Fault, ws *workerScratch, lim sat.Limits) (Result, error) {
	cs := &sat.Caching{CacheLimit: st.opt.CacheLimit}
	var solver sat.Solver = cs
	if !lim.IsZero() {
		solver = cs.WithLimits(lim)
	}
	res, err := e.testFaultOn(st.c, f, ws, solver)
	res.Backend = backendCaching
	return res, err
}

// solvePodemBackend is the structural (and trivial-survivor) backend:
// a PODEM search over the fault cone, SCOAP-guided, with a deterministic
// backtrack cap. A cap abort is a pure function of the circuit and the
// cap, so the CDCL fallback it triggers fires identically at any worker
// count; a deadline or cancellation abort is a budget artifact and stays
// Aborted like every other backend's.
func (e *Engine) solvePodemBackend(st *runState, f Fault, ws *workerScratch, lim sat.Limits) (Result, error) {
	maxBT := st.opt.PodemMaxBacktracks
	if maxBT == 0 {
		maxBT = DefaultPodemMaxBacktracks
	} else if maxBT < 0 {
		maxBT = 0 // explicit "unbounded" (no CDCL fallback either)
	}
	popt := podem.Options{
		MaxBacktracks: maxBT,
		Deadline:      lim.Deadline,
		Cancel:        lim.Cancel,
	}
	if sc := st.route.scoap; sc != nil {
		popt.CC0, popt.CC1 = sc.CC0, sc.CC1
	}
	start := time.Now()
	pr := podem.Run(st.c, f.Net, f.StuckAt, popt)
	res := Result{
		Fault:   f,
		Elapsed: time.Since(start),
		Backend: backendPodem,
		// PODEM's counters map onto the solver-stats vocabulary the effort
		// log and summary totals already speak: backtracks are search
		// nodes, implications are propagations. Conflicts stay 0 — routed
		// conflict totals measure CDCL work alone.
		SolverStats: sat.Stats{
			Nodes:        pr.Backtracks,
			Decisions:    pr.Decisions,
			Propagations: pr.Implications,
		},
	}
	switch pr.Status {
	case podem.Detected:
		res.Status = Detected
		res.Vector = pr.Vector(false)
		if e.VerifyTests && !VerifyTest(st.c, f, res.Vector) {
			return res, fmt.Errorf("atpg: generated vector fails to detect %s (pipeline bug)", f.Name(st.c))
		}
		return res, nil
	case podem.Untestable:
		res.Status = Untestable
		return res, nil
	}
	if maxBT > 0 && pr.Backtracks >= maxBT {
		// Deterministic cap abort → CDCL fallback on the remaining budget.
		// The failed structural attempt is real work, so its wall time and
		// counters stay on the fault's record.
		fb, err := e.testFault(st.c, f, lim, ws, st.opt.CacheLimit)
		fb.Backend = backendCDCL
		fb.Elapsed += res.Elapsed
		fb.SolverStats.Nodes += pr.Backtracks
		fb.SolverStats.Decisions += pr.Decisions
		fb.SolverStats.Propagations += pr.Implications
		return fb, err
	}
	res.Status = Aborted
	return res, nil
}
