package atpg

// The per-fault effort log: one append-only JSONL stream joining each
// fault's cheap structural features (features.go) with the effort its
// decision actually took — which phase decided it, solver search
// counters, wall time, retry tier, wasted-solve flag. The stream is the
// dataset the source paper's Figure 1 plots, and the training data the
// ROADMAP's cut-width-guided fault router needs. Schema-versioned like
// the checkpoint journal; cmd/atpgreport consumes it.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"atpgeasy/internal/logic"
)

// EffortSchema versions the effort-log format. Bump on any incompatible
// record change; readers reject unknown schemas instead of guessing.
const EffortSchema = "atpgeasy/effort/v1"

// EffortHeader is the first record of an effort log.
type EffortHeader struct {
	Kind    string `json:"kind"` // "header"
	Schema  string `json:"schema"`
	Circuit string `json:"circuit"`
	Faults  int    `json:"faults"`
	Workers int    `json:"workers"`
	// Width records whether cut-width extraction (RunOptions.EffortWidth)
	// was on — readers treat cut_width −1 as absent either way.
	Width bool `json:"width"`
}

// EffortRecord is one fault's features-joined-with-outcome line. Exactly
// one is emitted per fault that receives a verdict (RPT-detected,
// solver-decided, retried or resumed). On unrouted runs, faults dropped
// by fault simulation get a record only if a speculative solve was
// wasted on them (Phase "dropped", Wasted true) — a clean drop costs no
// solver work and therefore has no effort to report. On routed runs
// every decided fault gets exactly one record, clean drops included
// (Phase "dropped", Wasted false, Backend "faultsim"): the router
// predicted a class for the fault, and the accuracy join needs the
// outcome even when no solver ran.
type EffortRecord struct {
	Kind string `json:"kind"` // "fault"
	// Index is the fault-list index — the join key against spans, the
	// checkpoint journal and Summary.Results.
	Index int    `json:"i"`
	Fault string `json:"fault"`
	Net   int    `json:"net"`
	SA    int    `json:"sa"` // stuck-at value, 0 or 1

	FaultFeatures

	// Phase names the pipeline stage that produced this verdict: "rpt",
	// "sweep", "retry", "resume" or "dropped" (wasted speculative solve).
	Phase  string `json:"phase"`
	Status string `json:"status"` // detected|untestable|aborted|error|dropped
	// Tier is the retry tier that decided the fault (0 = main sweep).
	Tier   int  `json:"tier,omitempty"`
	Worker int  `json:"worker"` // solving worker; −1 when no solver ran
	Wasted bool `json:"wasted,omitempty"`

	Vars    int   `json:"vars,omitempty"`
	Clauses int   `json:"clauses,omitempty"`
	BuildNS int64 `json:"build_ns,omitempty"`
	SolveNS int64 `json:"solve_ns,omitempty"`

	Nodes        int64 `json:"nodes,omitempty"`
	Decisions    int64 `json:"decisions,omitempty"`
	Propagations int64 `json:"propagations,omitempty"`
	Conflicts    int64 `json:"conflicts,omitempty"`
	CacheHits    int64 `json:"cache_hits,omitempty"`
	// Effort is sat.Stats.SearchEffort — the log's canonical solver-work
	// scalar, present (possibly 0) on every record.
	Effort int64 `json:"effort"`

	// Incremental region-grouped solving (additive, absent on the fresh
	// path): Group is the 1-based canonical region-group id, GroupSize
	// its member count, and LearnedReused the retained learned clauses
	// this fault's solve used in conflict analysis.
	Group         int   `json:"group,omitempty"`
	GroupSize     int   `json:"group_size,omitempty"`
	LearnedReused int64 `json:"learned_reused,omitempty"`

	// Routed portfolio dispatch (additive, absent on unrouted runs):
	// PredictedClass is the router's effort class for this fault
	// ("trivial", "low-width", "structural", "hard") and Backend the
	// engine that actually decided it ("podem", "caching", "cdcl",
	// "faultsim"). The pair is the router-accuracy dataset.
	PredictedClass string `json:"predicted_class,omitempty"`
	Backend        string `json:"backend,omitempty"`
}

// EffortLog is the append-only JSONL sink for effort records. Emits from
// concurrent workers are serialized; encoding happens outside the lock
// in per-worker scratch buffers, so the critical section is one buffered
// write. A nil *EffortLog discards records.
type EffortLog struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	closer io.Closer
	err    error
	n      atomic.Int64
}

// NewEffortLog wraps w in a buffered effort-record sink. If w is an
// io.Closer, Close closes it after flushing.
func NewEffortLog(w io.Writer) *EffortLog {
	l := &EffortLog{bw: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		l.closer = c
	}
	return l
}

// CreateEffortLog opens (truncating) an effort log file at path.
func CreateEffortLog(path string) (*EffortLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewEffortLog(f), nil
}

// Records returns the number of records written so far (header included).
func (l *EffortLog) Records() int64 {
	if l == nil {
		return 0
	}
	return l.n.Load()
}

// write appends one pre-encoded line (ending in '\n'). The first error
// is retained and returned by every later call and by Close.
func (l *EffortLog) write(line []byte) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if _, err := l.bw.Write(line); err != nil {
		l.err = err
		return err
	}
	l.n.Add(1)
	return nil
}

// Close flushes the buffer and closes the underlying writer if it is a
// Closer. It reports the first error seen over the log's lifetime.
func (l *EffortLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.bw.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	if l.closer != nil {
		if err := l.closer.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.closer = nil
	}
	return l.err
}

// effortEncoder is one worker's reusable record-encoding scratch: the
// JSON bytes are built here, outside the log's lock.
type effortEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

func (e *effortEncoder) encode(rec *EffortRecord) ([]byte, error) {
	if e.enc == nil {
		e.enc = json.NewEncoder(&e.buf)
	}
	e.buf.Reset()
	if err := e.enc.Encode(rec); err != nil {
		return nil, err
	}
	return e.buf.Bytes(), nil
}

// effortState is the engine side of an enabled effort log: the log, the
// precomputed feature table, and a fallback encoder for call sites with
// no worker scratch. Nil when RunOptions.EffortLog is nil, so the
// disabled cost is one pointer check per fault.
type effortState struct {
	log   *EffortLog
	feats []FaultFeatures

	mu   sync.Mutex // guards fallback, used by scratch-less call sites
	fall effortEncoder
}

// newEffortState precomputes every fault's features and writes the log
// header. Runs before resume replay and the RPT pre-phase so all of
// their records carry features too.
func newEffortState(c *logic.Circuit, faults []Fault, opt RunOptions, workers int) (*effortState, error) {
	es := &effortState{
		log:   opt.EffortLog,
		feats: computeFeatures(c, faults, opt.EffortWidth, workers),
	}
	hdr, err := json.Marshal(EffortHeader{
		Kind: "header", Schema: EffortSchema, Circuit: c.Name,
		Faults: len(faults), Workers: workers, Width: opt.EffortWidth,
	})
	if err != nil {
		return nil, err
	}
	return es, es.log.write(append(hdr, '\n'))
}

// record emits one fault's effort record. ws supplies the per-worker
// encoder scratch; call sites without one (resume replay, the RPT
// coordinator with scratch reuse disabled) fall back to a shared locked
// encoder. res may be nil for verdicts that never ran a solver
// (RPT detections); any encoding or write error is sticky in the log and
// surfaced at Close, never failing the run.
func (st *runState) recordEffort(ws *workerScratch, i int, res *Result, phase string, status Status, tier, worker int, wasted bool) {
	es := st.effort
	f := st.faults[i]
	rec := EffortRecord{
		Kind: "fault", Index: i, Fault: f.Name(st.c), Net: f.Net,
		FaultFeatures: es.feats[i],
		Phase:         phase, Status: status.String(),
		Tier: tier, Worker: worker, Wasted: wasted,
	}
	if f.StuckAt {
		rec.SA = 1
	}
	if phase == "dropped" {
		rec.Status = "dropped"
	}
	if st.route != nil {
		rec.PredictedClass = st.route.class[i].String()
		if res != nil && res.Backend != "" {
			rec.Backend = res.Backend
		} else if phase == "dropped" && res == nil {
			rec.Backend = backendFaultSim
		}
	}
	if res != nil {
		rec.Vars, rec.Clauses = res.Vars, res.Clauses
		rec.BuildNS = res.BuildElapsed.Nanoseconds()
		rec.SolveNS = res.Elapsed.Nanoseconds()
		ss := res.SolverStats
		rec.Nodes, rec.Decisions, rec.Propagations = ss.Nodes, ss.Decisions, ss.Propagations
		rec.Conflicts, rec.CacheHits = ss.Conflicts, ss.CacheHits
		rec.Effort = ss.SearchEffort()
		rec.Group, rec.GroupSize = res.Group, res.GroupSize
		rec.LearnedReused = ss.LearnedReused
	}
	var line []byte
	var err error
	if ws != nil {
		line, err = ws.eff.encode(&rec)
		if err == nil {
			err = es.log.write(line)
		}
	} else {
		es.mu.Lock()
		line, err = es.fall.encode(&rec)
		if err == nil {
			err = es.log.write(line)
		}
		es.mu.Unlock()
	}
	if err != nil {
		// Sticky in the log; the run itself never fails on telemetry.
		_ = err
	}
}

// DecodeEffortLog parses an effort log stream into its header and
// records, tolerating a truncated final line (a crashed run's log is
// still analyzable). Returns an error for a missing or wrong-schema
// header. Used by cmd/atpgreport and the round-trip tests.
func DecodeEffortLog(r io.Reader) (EffortHeader, []EffortRecord, error) {
	var hdr EffortHeader
	var recs []EffortRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			if err := json.Unmarshal(line, &hdr); err != nil || hdr.Kind != "header" {
				return hdr, nil, errBadEffortHeader
			}
			if hdr.Schema != EffortSchema {
				return hdr, nil, errBadEffortSchema(hdr.Schema)
			}
			continue
		}
		var rec EffortRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // truncated tail: keep what parsed
		}
		if rec.Kind == "fault" {
			recs = append(recs, rec)
		}
	}
	if first {
		return hdr, nil, errBadEffortHeader
	}
	return hdr, recs, sc.Err()
}

type effortDecodeError string

func (e effortDecodeError) Error() string { return string(e) }

const errBadEffortHeader = effortDecodeError("atpg: effort log has no valid header record")

func errBadEffortSchema(got string) error {
	return effortDecodeError("atpg: effort log schema " + got + " is not " + EffortSchema)
}
