package atpg

// Region-grouped incremental solving: collapsed faults whose miters
// share a transitive-fanout region are encoded into one formula with
// per-fault activation (selector) literals and solved on one
// incremental CDCL instance under assumptions, so clauses learned for
// one fault prune the search for its region neighbors (InF-ATPG's
// fanout-region organization, PAPERS.md). This file holds the grouping
// — region heads, the canonical group order — and the GroupMiter, the
// multi-fault generalization of Miter.

import (
	"fmt"
	"sort"

	"atpgeasy/internal/cnf"
	"atpgeasy/internal/logic"
)

// DefaultGroupMax is the group-size cap when RunOptions.GroupMax is
// zero: big enough that a fanout-free region's faults share one solver
// instance, small enough that one group never monopolizes a worker.
const DefaultGroupMax = 64

// regionHeads computes, for every net, the head of its fanout region:
// the first dominator at which its transitive fanout joins general
// fanout. A net with exactly one distinct reader inherits that
// reader's head (its fanout cone is {net} ∪ cone(reader), so its miter
// support C_ψ^sub is identical); a fanout stem or sink is its own
// head. Faults with equal heads have (near-)identical miter support
// and are grouped onto one solver instance. Node IDs are topologically
// ordered, so one reverse sweep suffices.
func regionHeads(c *logic.Circuit) []int32 {
	head := make([]int32, len(c.Nodes))
	for id := len(c.Nodes) - 1; id >= 0; id-- {
		reader := -1
		multi := false
		// Fanout has one entry per reading pin; a gate reading the net
		// twice is still a single reader.
		for _, fo := range c.Nodes[id].Fanout {
			if reader == -1 {
				reader = fo
			} else if fo != reader {
				multi = true
				break
			}
		}
		if reader >= 0 && !multi {
			head[id] = head[reader]
		} else {
			head[id] = int32(id)
		}
	}
	return head
}

// faultGroup is one unit of incremental dispatch: a consecutive span
// of the dispatch order whose faults share a fanout region and are
// solved on one incremental instance. id is the canonical group index
// (stable across worker counts and group-size caps of the faults it
// happens to contain; used by telemetry and effort records).
type faultGroup struct {
	id         int
	region     int32 // head net of the shared fanout region
	start, end int32 // span [start, end) of positions in the dispatch order
}

// buildGroups computes the incremental dispatch order and its group
// spans. The order is canonical and independent of groupMax: regions
// are sorted by (largest member cone first, smallest member index
// among equals), members within a region by (cone, index) — the same
// comparator as effortOrder — and groups are consecutive chunks of at
// most groupMax members that never span regions. Because the flattened
// fault order is identical for every groupMax, the engine's commit
// frontier, flush points and drop decisions are too: group size is
// purely a knowledge-reuse knob, with groupMax 1 degenerating to
// fresh-per-fault solving.
func buildGroups(c *logic.Circuit, faults []Fault, skip []bool, groupMax int) ([]int32, []faultGroup) {
	if groupMax <= 0 {
		groupMax = DefaultGroupMax
	}
	head := regionHeads(c)
	sizer := newConeSizer(c)

	type regionAgg struct {
		maxCone int32
		minIdx  int32
		members []int32
	}
	cone := make([]int32, len(faults))
	regs := make(map[int32]*regionAgg)
	var regOrder []int32
	for i, f := range faults {
		if skip != nil && skip[i] {
			continue
		}
		cone[i] = sizer.coneOf(f.Net)
		r := head[f.Net]
		agg := regs[r]
		if agg == nil {
			agg = &regionAgg{maxCone: cone[i], minIdx: int32(i)}
			regs[r] = agg
			regOrder = append(regOrder, r)
		}
		if cone[i] > agg.maxCone {
			agg.maxCone = cone[i]
		}
		agg.members = append(agg.members, int32(i))
	}
	sort.Slice(regOrder, func(a, b int) bool {
		ra, rb := regs[regOrder[a]], regs[regOrder[b]]
		if ra.maxCone != rb.maxCone {
			return ra.maxCone > rb.maxCone
		}
		return ra.minIdx < rb.minIdx
	})

	order := make([]int32, 0, len(faults))
	var groups []faultGroup
	for _, r := range regOrder {
		m := regs[r].members
		sort.Slice(m, func(a, b int) bool {
			if cone[m[a]] != cone[m[b]] {
				return cone[m[a]] > cone[m[b]]
			}
			return m[a] < m[b]
		})
		for lo := 0; lo < len(m); lo += groupMax {
			hi := lo + groupMax
			if hi > len(m) {
				hi = len(m)
			}
			groups = append(groups, faultGroup{
				id:     len(groups),
				region: r,
				start:  int32(len(order) + lo),
				end:    int32(len(order) + hi),
			})
		}
		order = append(order, m...)
	}
	return order, groups
}

// GroupMiter is the multi-fault generalization of Miter: one good copy
// of the union of the members' C_ψ^sub supports, plus a faulty fanout
// cone and per-output XORs for each member, with the member's fault
// activation and observability clauses gated behind a selector
// variable. Solving under assumptions that enable exactly one selector
// is equivalent to solving that member's own miter — and every clause
// the solver learns is implied by the shared formula alone, so it
// stays valid for every member.
type GroupMiter struct {
	// Circuit is the shared region circuit. It has no marked outputs:
	// the per-member observability clauses replace the global
	// "some output differs" clause of the single-fault encoding.
	Circuit *logic.Circuit
	// Faults lists the member faults, in group order.
	Faults []Fault
	// GoodOf maps a parent node ID to its good-copy node, or -1.
	GoodOf []int
	// GoodFault[k] is the good copy of member k's fault net (-1 when
	// the member is unobservable).
	GoodFault []int
	// Unobservable[k] reports that member k has no output in its
	// fanout: trivially untestable, excluded from the encoding.
	Unobservable []bool
	// Priority lists the good-copy variables of the parent primary
	// inputs present in the region, in parent input order. Handed to
	// the incremental solver as the lex branching order, it makes the
	// first model's input projection lex-least — the determinism
	// anchor for byte-identical vectors at any group size.
	Priority []int
	// selVar[k] is member k's selector variable (-1 if unobservable),
	// assigned by EncodeWith after the region circuit's variables.
	selVar []int
	// xorsOf[k] lists member k's XOR difference nets, in output order.
	xorsOf [][]int
}

// NewGroupMiter builds the shared region miter for the given member
// faults of circuit c. Members with no observable output get
// Unobservable and take no part in the encoding; if every member is
// unobservable the GroupMiter is still returned (with no formula
// worth encoding) and the caller synthesizes untestable results.
func NewGroupMiter(c *logic.Circuit, members []Fault) (*GroupMiter, error) {
	g := &GroupMiter{
		Faults:       members,
		GoodOf:       make([]int, c.NumNodes()),
		GoodFault:    make([]int, len(members)),
		Unobservable: make([]bool, len(members)),
		selVar:       make([]int, len(members)),
	}
	for i := range g.GoodOf {
		g.GoodOf[i] = -1
	}
	for k := range members {
		g.GoodFault[k] = -1
		g.selVar[k] = -1
	}

	outSet := make(map[int]bool)
	for _, o := range c.Outputs {
		outSet[o] = true
	}
	foLists := make([][]int, len(members))
	observable := make([][]int, len(members))
	var allFO []int
	for k, f := range members {
		if f.Net < 0 || f.Net >= c.NumNodes() {
			return nil, fmt.Errorf("atpg: fault net %d out of range", f.Net)
		}
		foLists[k] = c.TransitiveFanout(f.Net)
		for _, id := range foLists[k] {
			if outSet[id] {
				observable[k] = append(observable[k], id)
			}
		}
		if len(observable[k]) == 0 {
			g.Unobservable[k] = true
			continue
		}
		allFO = append(allFO, foLists[k]...)
	}
	if len(allFO) == 0 {
		return g, nil // every member trivially untestable
	}
	subIDs := c.TransitiveFanin(allFO...)

	b := logic.NewBuilder(fmt.Sprintf("%s_region_%d", c.Name, members[0].Net))
	for _, id := range subIDs {
		n := &c.Nodes[id]
		switch n.Type {
		case logic.Input:
			g.GoodOf[id] = b.Input(n.Name)
		case logic.Const0:
			g.GoodOf[id] = b.Const(n.Name, false)
		case logic.Const1:
			g.GoodOf[id] = b.Const(n.Name, true)
		default:
			fanin := make([]int, len(n.Fanin))
			for i, fi := range n.Fanin {
				fanin[i] = g.GoodOf[fi]
			}
			g.GoodOf[id] = b.GateN(n.Type, n.Name, fanin, n.Neg)
		}
	}

	// Per-member faulty cones and XOR difference nets, exactly as in
	// NewMiter but with a member-unique name suffix and without
	// marking outputs: activation and observability are per-member
	// clauses added by EncodeWith, gated behind the member's selector.
	g.xorsOf = make([][]int, len(members))
	faultyOf := make([]int, c.NumNodes())
	for k, f := range members {
		if g.Unobservable[k] {
			continue
		}
		inFO := make([]bool, c.NumNodes())
		for _, id := range foLists[k] {
			inFO[id] = true
			faultyOf[id] = -1
		}
		suffix := fmt.Sprintf("~f%d", k)
		for _, id := range foLists[k] {
			n := &c.Nodes[id]
			if id == f.Net {
				faultyOf[id] = b.Const(n.Name+suffix, f.StuckAt)
				continue
			}
			fanin := make([]int, len(n.Fanin))
			for i, fi := range n.Fanin {
				if inFO[fi] {
					fanin[i] = faultyOf[fi]
				} else {
					fanin[i] = g.GoodOf[fi]
				}
			}
			faultyOf[id] = b.GateN(n.Type, n.Name+suffix, fanin, n.Neg)
		}
		g.GoodFault[k] = g.GoodOf[f.Net]
		for _, o := range observable[k] {
			x := b.Gate(logic.Xor, c.Nodes[o].Name+suffix+"~xor", g.GoodOf[o], faultyOf[o])
			g.xorsOf[k] = append(g.xorsOf[k], x)
		}
	}
	mc, err := b.Build()
	if err != nil {
		return nil, err
	}
	g.Circuit = mc
	for _, in := range c.Inputs {
		if mid := g.GoodOf[in]; mid >= 0 {
			g.Priority = append(g.Priority, mid)
		}
	}
	return g, nil
}

// EncodeWith encodes the region circuit through a reusable encoder and
// appends the gated per-member clauses: for each observable member k
// with selector s_k,
//
//	¬s_k ∨ activation_k   (good fault net carries the complement of the stuck value)
//	¬s_k ∨ xor_k,1 ∨ …    (some observable output pair differs)
//
// Assuming s_k (and ¬s_j for the other members) therefore reduces the
// formula to member k's single-fault ATPG instance. The result aliases
// encoder buffers and is valid only until the encoder's next Encode —
// the incremental solver's Load copies it.
func (g *GroupMiter) EncodeWith(enc *cnf.Encoder) (*cnf.Formula, error) {
	f, err := enc.Encode(g.Circuit, nil)
	if err != nil {
		return nil, err
	}
	next := f.NumVars
	for k := range g.Faults {
		if g.Unobservable[k] {
			continue
		}
		g.selVar[k] = next
		next++
		sel := cnf.NewLit(g.selVar[k], true) // ¬s_k
		f.AddClause(sel, cnf.NewLit(g.GoodFault[k], g.Faults[k].StuckAt))
		obs := make([]cnf.Lit, 0, len(g.xorsOf[k])+1)
		obs = append(obs, sel)
		for _, x := range g.xorsOf[k] {
			obs = append(obs, cnf.NewLit(x, false))
		}
		f.AddClause(obs...)
	}
	return f, nil
}

// Assumptions appends member k's assumption literals to buf: its own
// selector asserted, every other member's selector negated — the
// negations keep the solver from wandering into other members'
// activation clauses, and make UNSAT mean exactly "member k is
// untestable".
func (g *GroupMiter) Assumptions(k int, buf []cnf.Lit) []cnf.Lit {
	buf = buf[:0]
	buf = append(buf, cnf.NewLit(g.selVar[k], false))
	for j := range g.Faults {
		if j != k && g.selVar[j] >= 0 {
			buf = append(buf, cnf.NewLit(g.selVar[j], true))
		}
	}
	return buf
}

// ExtractTest converts a satisfying model under member k's assumptions
// into a test vector over the parent circuit's primary inputs. Inputs
// outside the region are don't-cares returned as false — and because
// the solver branches lex-first over Priority, inputs inside the
// region but irrelevant to member k come out false too, making the
// vector identical to the one a fresh single-fault solve extracts.
func (g *GroupMiter) ExtractTest(c *logic.Circuit, model []bool) []bool {
	vec := make([]bool, len(c.Inputs))
	for i, in := range c.Inputs {
		if mid := g.GoodOf[in]; mid >= 0 {
			vec[i] = model[mid]
		}
	}
	return vec
}
