package atpg

// This file is the engine's resilience layer: per-fault panic isolation,
// the checkpoint/resume plumbing (the journal itself lives in
// internal/checkpoint), the escalating-budget retry tiers for faults
// that exhaust PerFaultBudget, and the soft-memory watchdog that shrinks
// solver caches instead of letting the process grow toward an OOM kill.

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"atpgeasy/internal/logic"
	"atpgeasy/internal/sat"
)

// Default retry escalation: three tiers, each with four times the
// previous budget, so a fault gets up to 1+4+16+64 = 85x the base budget
// before it is finally reported aborted.
const (
	DefaultRetryTiers   = 3
	DefaultRetryBackoff = 4.0
)

// memWatchdogEvery is the production sampling period of the soft-memory
// watchdog.
const memWatchdogEvery = 250 * time.Millisecond

// JournalSink receives a run's durable progress: the random-pattern
// pre-phase outcome once, then every fault's final verdict as it is
// decided. *checkpoint.Journal implements it; the indirection keeps the
// engine free of a persistence dependency.
type JournalSink interface {
	RecordRPT(detected []int, vectors [][]bool, batches int)
	RecordFault(i int, status string, vector []bool, errMsg string)
}

// ResumeRPT is a journaled random-pattern pre-phase to restore instead
// of re-running: the fault-list indices it detected, the kept vectors in
// batch-then-pattern order, and the batch count.
type ResumeRPT struct {
	Detected []int
	Vectors  [][]bool
	Batches  int
}

// ResumeState is a previous run's journaled progress, replayed into a
// new run via RunOptions.Resume. Fault indices refer to the current
// fault list — callers must verify the list matches the journaled run
// (CheckpointFingerprint) before resuming.
type ResumeState struct {
	RPT *ResumeRPT
	// Faults maps fault-list index to its final verdict; only Status,
	// Vector and Err are meaningful on the Results.
	Faults map[int]Result
}

// RetryTier summarizes one escalation tier of the retry phase.
type RetryTier struct {
	Tier      int           `json:"tier"`
	Budget    time.Duration `json:"budget_ns"`
	Attempted int           `json:"attempted"`
	Recovered int           `json:"recovered"`
}

// CheckpointFingerprint hashes everything that determines a run's
// verdict/vector identity — circuit, exact fault list, seed and the
// deterministic run options — so a journal from a different run is
// rejected instead of silently mis-applied. Worker count and budgets are
// deliberately excluded: verdicts are worker-independent, and budgets
// only move faults between decided and aborted.
func CheckpointFingerprint(c *logic.Circuit, faults []Fault, opt RunOptions) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d|%t|", c.Name, len(c.Inputs),
		opt.Seed, opt.RPTBatches, opt.RPTIdleStop, opt.DropDetected)
	if opt.Incremental {
		// The incremental path's lex-first branching yields different (but
		// equally deterministic) vectors than the fresh path, so journals
		// don't transfer across the mode boundary. GroupMax is excluded:
		// vectors and verdicts are identical for every group-size cap.
		fmt.Fprint(h, "inc|")
	}
	if opt.Route {
		// Routed runs dispatch per-fault backends whose patterns differ
		// from both unrouted modes (PODEM X-fill, the caching
		// backtracker's variable-index order), so journals don't transfer
		// either. The routing knobs that change which backend (and hence
		// which deterministic vector) a fault gets are hashed too:
		// RouteWidthMax moves faults between classes and
		// PodemMaxBacktracks decides where the deterministic CDCL
		// fallback kicks in. RouteHardScale is excluded — budgets only
		// move faults between decided and aborted.
		fmt.Fprintf(h, "route:%d:%d|", opt.RouteWidthMax, opt.PodemMaxBacktracks)
	}
	for _, f := range faults {
		fmt.Fprintf(h, "%d:%t;", f.Net, f.StuckAt)
	}
	return h.Sum64()
}

// safeSolve runs one fault's solve behind the per-fault recover barrier:
// a panic anywhere in the pipeline (miter build, CNF encode, search,
// vector extraction — any backend) becomes an Errored result carrying
// the panic message and stack, and the run continues with the next
// fault.
func (e *Engine) safeSolve(f Fault, ws *workerScratch, solve func() (Result, error)) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{
				Fault:  f,
				Status: Errored,
				Err:    fmt.Sprintf("panic: %v", r),
				Stack:  string(debug.Stack()),
			}
			err = nil
			if ws != nil {
				// The panic may have left the scratch arena mid-solve; a
				// fresh one costs a few allocations on a path taken at most
				// once per faulty cone, and guarantees the next fault starts
				// from clean state. A sticky watchdog cap carries over.
				prevCap := ws.arena.CacheCap()
				ws.arena = sat.NewArena()
				if prevCap > 0 {
					for ws.arena.Shrink() > prevCap {
					}
				}
			}
		}
	}()
	if e.testHookPanic != nil {
		e.testHookPanic(f)
	}
	return solve()
}

// safeTestFault is testFault behind the recover barrier — the unrouted
// engine's per-fault entry point.
func (e *Engine) safeTestFault(c *logic.Circuit, f Fault, lim sat.Limits, ws *workerScratch, cacheLimit int64) (Result, error) {
	return e.safeSolve(f, ws, func() (Result, error) {
		return e.testFault(c, f, lim, ws, cacheLimit)
	})
}

// applyResume pre-fills the run state with a previous run's journaled
// progress: decided faults are marked pre-decided (they get no dispatch
// slot) with their verdicts installed verbatim, and a completed pre-phase
// is restored so it is not re-run.
func (st *runState) applyResume(rs *ResumeState) {
	if rs == nil {
		return
	}
	if rs.RPT != nil {
		for _, i := range rs.RPT.Detected {
			if i >= 0 && i < len(st.preDecided) {
				st.preDecided[i] = true
			}
		}
		st.rptDetectedIdx = append([]int(nil), rs.RPT.Detected...)
		st.rptDetected = len(rs.RPT.Detected)
		st.rptBatches = rs.RPT.Batches
		st.rptVectors = rs.RPT.Vectors
		st.rptRestored = true
	}
	for i, r := range rs.Faults {
		if i < 0 || i >= len(st.results) {
			continue
		}
		rc := r
		st.results[i] = &rc
		st.preDecided[i] = true
		st.resumed[i] = true
		st.doneN.Add(1)
		switch r.Status {
		case Detected:
			st.detN.Add(1)
		case Untestable:
			st.untN.Add(1)
		case Aborted:
			st.abtN.Add(1)
		case Errored:
			st.errsN.Add(1)
		}
	}
}

// maybeShrink halves the worker's solver cache when the watchdog
// generation advanced since the worker last looked. Runs between faults
// on the worker's own goroutine, so the arena is quiescent.
func (st *runState) maybeShrink(ws *workerScratch, worker int, seen *int64) {
	if ws == nil {
		return
	}
	gen := st.shrinkGen.Load()
	if gen == *seen {
		return
	}
	*seen = gen
	newCap := ws.arena.Shrink()
	st.ring.Record("shrink", worker, newCap, 0, 0)
	st.opt.Telemetry.observeShrink(worker, newCap, time.Since(st.start))
	// A shrink means memory pressure — worth a flight-recorder dump on
	// the trace sink (not stderr: shrinking is degradation, not failure).
	st.dumpRingOnce("memory watchdog shrink", false)
}

// startMemWatchdog arms the soft-memory watchdog when the run has a
// MemSoftLimit: a sampler reads the Go heap size on a period and, while
// it exceeds the limit, bumps the shrink generation — at most one cache
// halving per worker per sample. The returned stop function blocks until
// the sampler exits.
func (e *Engine) startMemWatchdog(ctx context.Context, st *runState) func() {
	if st.opt.MemSoftLimit <= 0 {
		return func() {}
	}
	every := e.memCheckEvery
	if every <= 0 {
		every = memWatchdogEvery
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if int64(ms.HeapAlloc) > st.opt.MemSoftLimit {
				st.shrinkGen.Add(1)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// runRetryTiers is the escalation phase: after the main sweep, faults
// that hit PerFaultBudget are re-run on the worker pool for up to
// RetryTiers rounds with geometrically increasing budgets, reusing the
// per-worker scratch arenas. A fault leaves the queue as soon as a tier
// decides it; survivors of the final tier stay Aborted and only then
// reach the journal. Returns one summary entry per tier that ran.
func (e *Engine) runRetryTiers(ctx context.Context, st *runState, scratches []*workerScratch) []RetryTier {
	opt := st.opt
	if opt.RetryTiers <= 0 || opt.PerFaultBudget <= 0 {
		return nil
	}
	// The main sweep's pool has exited and its frontier is drained, so the
	// results array is quiescent here.
	var queue []int
	for i, r := range st.results {
		if r != nil && r.Status == Aborted && !st.resumed[i] {
			queue = append(queue, i)
		}
	}
	st.mu.Lock()
	failed := st.err != nil
	st.mu.Unlock()
	if failed {
		return nil
	}

	backoff := opt.RetryBackoff
	if backoff <= 1 {
		backoff = DefaultRetryBackoff
	}
	tel := opt.Telemetry
	budget := opt.PerFaultBudget
	var tiers []RetryTier
	for tier := 1; tier <= opt.RetryTiers && len(queue) > 0 && ctx.Err() == nil; tier++ {
		budget = time.Duration(float64(budget) * backoff)
		entry := RetryTier{Tier: tier, Budget: budget, Attempted: len(queue)}
		tierSpan := tel.startSpan("retry-tier", st.runSpan)
		if tierSpan.Active() {
			tierSpan.Detail = fmt.Sprintf("tier-%d", tier)
			tierSpan.Items = int64(len(queue))
		}
		tierCtx := tierSpan.Context()
		st.ring.Record("tier", -1, int64(tier), int64(len(queue)), 0)
		// Each fault's slot is written by the one worker that claimed it
		// (or its group), so the writes are disjoint.
		decidedF := make([]bool, len(st.results))
		// adoptRetry is the tier's verdict bookkeeping, shared by the
		// fresh per-fault loop and the incremental group emit.
		adoptRetry := func(ws *workerScratch, w, i int, res Result) {
			st.results[i] = &res
			if res.Status != Aborted {
				decidedF[i] = true
				st.abtN.Add(-1)
				st.retryPending.Add(-1)
				switch res.Status {
				case Detected:
					st.detN.Add(1)
				case Untestable:
					st.untN.Add(1)
				case Errored:
					st.errsN.Add(1)
				}
			}
			if tel != nil {
				tel.observeRetry(w, st.faults[i].Name(st.c), &res, tier, time.Since(st.start))
			}
			if opt.Journal != nil && res.Status != Aborted {
				opt.Journal.RecordFault(i, res.Status.String(), res.Vector, res.Err)
			}
			if st.effort != nil && res.Status != Aborted {
				st.recordEffort(ws, i, &res, "retry", res.Status, tier, w, false)
			}
		}
		// In incremental mode the tier re-groups its queue by fanout
		// region, so a retried fault resumes on a shared region instance
		// and reuses clauses learned by its neighbors in the same tier
		// instead of cold-starting. In routed mode each fault's class is
		// first escalated one step toward hard per tier: hard-escalated
		// faults re-group for the incremental CDCL backend, the rest
		// re-solve on their escalated class's backend.
		var retryOrder []int32
		var retryGroups []faultGroup
		var singleQ []int
		var singleCls []EffortClass
		if st.route != nil {
			hardQ := make([]bool, len(st.faults))
			anyHard := false
			for _, i := range queue {
				ecls := st.route.class[i].escalate(tier)
				if ecls == ClassHard {
					hardQ[i] = true
					anyHard = true
				} else {
					singleQ = append(singleQ, i)
					singleCls = append(singleCls, ecls)
				}
			}
			if anyHard {
				skip := make([]bool, len(st.faults))
				for i := range skip {
					skip[i] = !hardQ[i]
				}
				retryOrder, retryGroups = buildGroups(st.c, st.faults, skip, opt.GroupMax)
			}
		} else if st.incremental {
			inQueue := make([]bool, len(st.faults))
			for _, i := range queue {
				inQueue[i] = true
			}
			skip := make([]bool, len(st.faults))
			for i := range skip {
				skip[i] = !inQueue[i]
			}
			retryOrder, retryGroups = buildGroups(st.c, st.faults, skip, opt.GroupMax)
		}
		var cursor, gcursor atomic.Int64
		var wg sync.WaitGroup
		for w := range scratches {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := scratches[w]
				var shrinkSeen int64
				if st.incremental || st.route != nil {
					for {
						if ctx.Err() != nil {
							return
						}
						st.maybeShrink(ws, w, &shrinkSeen)
						gi := int(gcursor.Add(1) - 1)
						if gi >= len(retryGroups) {
							break
						}
						err := e.solveGroup(ctx, st, retryOrder, &retryGroups[gi], ws, w, &shrinkSeen, tierCtx, budget, func(i int, res Result) error {
							if st.route != nil {
								res.Backend = backendCDCL
							}
							if res.Status == Errored {
								st.dumpRingOnce("fault panic recovered", true)
							}
							adoptRetry(ws, w, i, res)
							return nil
						})
						if err != nil {
							st.setErr(err)
							return
						}
					}
					if st.route == nil {
						return // incremental groups cover the whole queue
					}
				}
				// The tier reuses the main sweep's chunked claim protocol
				// over its own queue — in routed mode, over the non-hard
				// remainder (hard-escalated faults went through the groups).
				tail := queue
				if st.route != nil {
					tail = singleQ
				}
				cl := chunkClaimer{cursor: &cursor, n: len(tail), workers: len(scratches)}
				for {
					k := cl.next()
					if k < 0 || ctx.Err() != nil {
						return
					}
					st.maybeShrink(ws, w, &shrinkSeen)
					i := tail[k]
					fspan := tel.startSpan("fault", tierCtx)
					if fspan.Active() {
						fspan.Worker = w
						fspan.Detail = st.faults[i].Name(st.c)
					}
					var res Result
					var err error
					if st.route != nil {
						res, err = e.solveRouted(ctx, st, i, singleCls[k], ws, budget)
					} else {
						lim := sat.Limits{Cancel: ctx.Done(), Deadline: time.Now().Add(budget)}
						res, err = e.safeTestFault(st.c, st.faults[i], lim, ws, opt.CacheLimit)
					}
					fspan.Items = res.SolverStats.SearchEffort()
					fspan.End()
					st.ring.Record("solve", w, int64(i), int64(res.Status), res.Elapsed.Nanoseconds())
					if err != nil {
						st.setErr(err)
						return
					}
					if res.Status == Errored {
						st.dumpRingOnce("fault panic recovered", true)
					}
					if ctx.Err() != nil {
						return
					}
					adoptRetry(ws, w, i, res)
				}
			}()
		}
		wg.Wait()
		tierSpan.End()
		var still []int
		for _, i := range queue {
			if !decidedF[i] {
				still = append(still, i)
			}
		}
		entry.Recovered = entry.Attempted - len(still)
		tiers = append(tiers, entry)
		queue = still
		st.mu.Lock()
		failed = st.err != nil
		st.mu.Unlock()
		if failed {
			return tiers
		}
	}
	// Whatever is still queued is finally Aborted — journal it now, unless
	// the run is draining (a later resume should get another shot). The
	// effort log gets the same finality: one "retry" record per survivor,
	// carrying the last tier's solver stats.
	if ctx.Err() == nil {
		for _, i := range queue {
			if opt.Journal != nil {
				opt.Journal.RecordFault(i, Aborted.String(), nil, "")
			}
			if st.effort != nil {
				st.recordEffort(nil, i, st.results[i], "retry", Aborted, len(tiers), -1, false)
			}
		}
		st.retryPending.Store(0)
	}
	return tiers
}
