package atpg

// Cut-width-guided fault routing: the portfolio dispatcher of the
// engine. The source paper's thesis is that cheap structural measures —
// cut-width above all — predict per-fault solver effort; the router
// turns that prediction into a dispatch decision. Each fault is scored
// from its FaultFeatures (cone size/depth, sub-circuit gate count,
// SCOAP controllability/observability) plus a bounded-cost cut-width
// estimate of its sub-circuit, classified into an effort class, and
// routed to the cheapest backend likely to decide it:
//
//	trivial    → fault-sim first: scheduled last so vectors committed by
//	             the other backends drop it for free; survivors go
//	             through PODEM.
//	low-width  → the Algorithm-1 caching backtracker (poly-time on
//	             bounded cut-width — the paper's own solver).
//	structural → the PODEM structural backend (internal/podem), with a
//	             deterministic backtrack cap and a CDCL fallback.
//	hard       → incremental region-grouped CDCL with a budget scaled
//	             up by RouteHardScale.
//
// Routing is deterministic: classes derive only from circuit structure,
// and routed dispatch commits through the same serial frontier as the
// unrouted engine, so routed runs are byte-identical at any worker
// count.

import (
	"sort"
	"sync"

	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/mla"
)

// EffortClass is the router's per-fault effort prediction, ordered from
// cheapest to hardest.
type EffortClass int8

// Effort classes. The order matters: retry-tier escalation bumps a
// fault's class one step toward ClassHard per tier.
const (
	ClassTrivial EffortClass = iota
	ClassLowWidth
	ClassStructural
	ClassHard
)

// String returns the class name as it appears in effort records and the
// JSON run summary.
func (c EffortClass) String() string {
	switch c {
	case ClassTrivial:
		return "trivial"
	case ClassLowWidth:
		return "low-width"
	case ClassStructural:
		return "structural"
	default:
		return "hard"
	}
}

// Routing thresholds. Tuned on mult16/rand200: generous enough that the
// caching backtracker only sees sub-circuits in its poly-time regime and
// PODEM only sees cones where structural search tends to beat CNF
// translation.
const (
	// routeTrivialGates: sub-circuits at or below this gate count are
	// almost always decided by the random-pattern pre-phase or dropped
	// by fault simulation of other backends' vectors.
	routeTrivialGates = 16
	// routeLowWidth: the paper's bounded-cut-width regime where
	// Algorithm 1 (sat.Caching) is polynomial.
	routeLowWidth = 8
	// routeHardWidth / routeHardGates: an oversized sub-circuit — or a
	// wide one past the structural sweet spot — goes to the grouped
	// incremental CDCL backend with a scaled budget.
	routeHardWidth = 24
	routeHardGates = 2048
	// routeStructuralGates: up to this sub-circuit size PODEM's
	// event-driven search beats CNF translation even on wide cones
	// (measured on mult16, whose ~1.4k-gate sub-circuits it decides in
	// ~0.8ms against the incremental backend's ~1.4ms) — and the
	// deterministic backtrack cap bounds the cost of any misprediction.
	// Past it, width decides: narrow cones stay structural, wide ones
	// escalate to the grouped CDCL backend.
	routeStructuralGates = 1536
)

// DefaultRouteWidthMax is the sub-circuit node count above which the
// router never refines its cut-width estimate with the MLA layout
// heuristic and keeps the topological-order upper bound instead —
// O(pins) — bounding the routing cost per fault.
const DefaultRouteWidthMax = 128

// DefaultRouteHardScale scales PerFaultBudget for ClassHard faults.
const DefaultRouteHardScale = 4.0

// DefaultPodemMaxBacktracks caps the PODEM search; a cap abort is
// deterministic, so the CDCL fallback it triggers is deterministic too.
// Deliberately tight: most structural detections land in a handful of
// backtracks (the paper's easiness, seen from the circuit side), and a
// fault that thrashes past the cap is decided faster by handing the
// remainder to CDCL than by letting PODEM exhaust the cone.
const DefaultPodemMaxBacktracks = 128

// widthEstimator computes a fault's cut-width estimate with reused
// mark/stack buffers, one instance per routing shard. The base estimate
// is the cut-width of the sub-circuit's topological arrangement — an
// upper bound computed directly on the parent circuit in one pass over
// the sub-circuit's pins, with no induced-circuit or hypergraph
// allocation (parent node IDs are topological, so sorting the
// sub-circuit's IDs is that arrangement). Only when the cheap bound
// lands in the ambiguous band between the low-width and hard thresholds
// — the one place a tighter number changes the class — and the
// sub-circuit is small enough (≤ widthMax nodes) is it refined with the
// MLA layout heuristic used elsewhere in the repo. Everything outside
// the band is classified from the cheap bound alone, keeping routing
// cost O(cone) per fault.
type widthEstimator struct {
	c     *logic.Circuit
	mark  []int
	stamp int
	stack []int
	sub   []int   // the fault's sub-circuit node IDs, ascending
	pos   []int32 // parent ID -> position in sub (valid when marked)
	diff  []int32 // cut-profile difference array over positions
}

func newWidthEstimator(c *logic.Circuit) *widthEstimator {
	return &widthEstimator{
		c:    c,
		mark: make([]int, len(c.Nodes)),
		pos:  make([]int32, len(c.Nodes)),
	}
}

// estimate returns the fault's cut-width estimate, or -1 when it cannot
// be computed. The estimate is the same quantity routeWidth's old
// SubCircuit path measured: the identity(topological)-order cut-width of
// the fanin of the fault's fanout cone.
func (x *widthEstimator) estimate(f Fault, widthMax int) int32 {
	c := x.c
	// Fanout cone, then the fanin closure over it — the sub-circuit the
	// miter is built from (same walk as featureExtractor.extract).
	x.stamp++
	x.sub = append(x.sub[:0], f.Net)
	x.mark[f.Net] = x.stamp
	x.stack = append(x.stack[:0], f.Net)
	for len(x.stack) > 0 {
		n := x.stack[len(x.stack)-1]
		x.stack = x.stack[:len(x.stack)-1]
		for _, o := range c.Nodes[n].Fanout {
			if x.mark[o] != x.stamp {
				x.mark[o] = x.stamp
				x.sub = append(x.sub, o)
				x.stack = append(x.stack, o)
			}
		}
	}
	for _, n := range x.sub {
		x.stack = append(x.stack, c.Nodes[n].Fanin...)
	}
	for len(x.stack) > 0 {
		n := x.stack[len(x.stack)-1]
		x.stack = x.stack[:len(x.stack)-1]
		if x.mark[n] == x.stamp {
			continue
		}
		x.mark[n] = x.stamp
		x.sub = append(x.sub, n)
		x.stack = append(x.stack, c.Nodes[n].Fanin...)
	}
	sort.Ints(x.sub)
	for p, id := range x.sub {
		x.pos[id] = int32(p)
	}

	// Cut profile of the topological arrangement: each driver net spans
	// from its own position to its furthest in-sub consumer (consumers
	// have higher IDs, so the driver is the span's left end). The cut
	// between positions k-1 and k counts the spans with start < k ≤ end.
	n := len(x.sub)
	if cap(x.diff) < n+1 {
		x.diff = make([]int32, n+1)
	}
	x.diff = x.diff[:n+1]
	for i := range x.diff {
		x.diff[i] = 0
	}
	for p, id := range x.sub {
		maxSink := int32(-1)
		for _, o := range c.Nodes[id].Fanout {
			if x.mark[o] == x.stamp && x.pos[o] > maxSink {
				maxSink = x.pos[o]
			}
		}
		if maxSink > int32(p) {
			x.diff[p+1]++
			x.diff[maxSink+1]--
		}
	}
	w := int32(0)
	cur := int32(0)
	for k := 1; k < n; k++ {
		cur += x.diff[k]
		if cur > w {
			w = cur
		}
	}

	if w > routeLowWidth && w < routeHardWidth && n <= widthMax {
		// Ambiguous band: the cheap upper bound may be hiding a genuinely
		// low-width sub-circuit — worth one bounded MLA layout search.
		if sub, err := SubCircuit(c, f); err == nil {
			g := hypergraph.FromCircuit(sub.Circuit)
			if mw, _ := mla.EstimateCutWidth(g, mla.Options{}); int32(mw) < w {
				w = int32(mw)
			}
		}
	}
	return w
}

// widthNeeded reports whether classification actually depends on the
// width estimate: gate count alone decides the trivial and oversized
// classes, so their faults skip the sub-circuit walk entirely.
func widthNeeded(ft FaultFeatures) bool {
	return ft.Gates > routeTrivialGates && ft.Gates < routeHardGates
}

// classifyFault maps one fault's features and width estimate to a class.
// Pure function of structure — scheduling never feeds back into it.
func classifyFault(ft FaultFeatures, width int32) EffortClass {
	if ft.Gates <= routeTrivialGates {
		return ClassTrivial
	}
	if ft.Gates >= routeHardGates {
		return ClassHard
	}
	if width >= 0 && width <= routeLowWidth {
		return ClassLowWidth
	}
	if ft.Gates <= routeStructuralGates {
		return ClassStructural
	}
	if width >= routeHardWidth {
		return ClassHard
	}
	return ClassStructural
}

// routePlan is the routed dispatch schedule: a class and width per
// fault, and a single dispatch order walked by the commit frontier —
// hard faults first (grouped for the incremental backend), then
// structural, then low-width, then trivial last, so that vectors
// committed by the expensive backends drop the cheap tail via fault
// simulation before it is ever claimed.
type routePlan struct {
	class []EffortClass // per fault index; meaningless where skip[i]
	width []int32       // router's width estimate per fault index
	order []int32       // full dispatch order (all live faults)
	// groups cover order[:hardEnd] (the ClassHard prefix) for the
	// incremental backend; singles start at order[hardEnd].
	groups  []faultGroup
	hardEnd int
	// counts[class] is the number of live faults per class.
	counts [4]int
	// scoap is the circuit's testability measure table, shared by every
	// PODEM solve for backtrace guidance.
	scoap *Scoap
}

// buildRoute scores and classifies every live fault (sharded over
// workers goroutines) and assembles the routed dispatch order.
func buildRoute(c *logic.Circuit, faults []Fault, skip []bool, feats []FaultFeatures, widthMax, groupMax, workers int) *routePlan {
	if widthMax <= 0 {
		widthMax = DefaultRouteWidthMax
	}
	rp := &routePlan{
		class: make([]EffortClass, len(faults)),
		width: make([]int32, len(faults)),
		scoap: ComputeScoap(c),
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	var wg sync.WaitGroup
	chunk := (len(faults) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(faults) {
			break
		}
		hi := min(lo+chunk, len(faults))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			x := newWidthEstimator(c)
			// The two faults of a net (sa0/sa1) share a sub-circuit, and
			// fault lists keep them adjacent, so a per-shard memo halves
			// the width work.
			netWidth := make(map[int]int32)
			for i := lo; i < hi; i++ {
				if skip != nil && skip[i] {
					rp.width[i] = -1
					continue
				}
				w := int32(-1)
				if widthNeeded(feats[i]) {
					var ok bool
					if w, ok = netWidth[faults[i].Net]; !ok {
						w = x.estimate(faults[i], widthMax)
						netWidth[faults[i].Net] = w
					}
				}
				rp.width[i] = w
				rp.class[i] = classifyFault(feats[i], w)
			}
		}(lo, hi)
	}
	wg.Wait()

	// Hard prefix: reuse the region grouper so the incremental backend
	// keeps its locality; skip everything that is not live ClassHard.
	hardSkip := make([]bool, len(faults))
	for i := range faults {
		hardSkip[i] = (skip != nil && skip[i]) || rp.class[i] != ClassHard
	}
	hardOrder, groups := buildGroups(c, faults, hardSkip, groupMax)
	rp.order = hardOrder
	rp.groups = groups
	rp.hardEnd = len(hardOrder)

	// Single-fault tail: structural, then low-width, then trivial, each
	// sub-list in the engine's usual largest-cone-first order.
	for _, cls := range []EffortClass{ClassStructural, ClassLowWidth, ClassTrivial} {
		classSkip := make([]bool, len(faults))
		for i := range faults {
			classSkip[i] = (skip != nil && skip[i]) || rp.class[i] != cls
		}
		rp.order = append(rp.order, effortOrder(c, faults, classSkip)...)
	}
	for i := range faults {
		if skip != nil && skip[i] {
			continue
		}
		rp.counts[rp.class[i]]++
	}
	return rp
}

// RouteSummary reports the routed run's class and backend tallies in the
// JSON run summary (map keys sort on encoding, so output is stable).
type RouteSummary struct {
	// Classes counts live faults per predicted effort class.
	Classes map[string]int `json:"classes"`
	// Backends counts decided faults per backend that decided them:
	// podem, caching, cdcl, or faultsim (dropped without solving).
	Backends map[string]int `json:"backends"`
}

func (rp *routePlan) summary() *RouteSummary {
	rs := &RouteSummary{Classes: make(map[string]int), Backends: make(map[string]int)}
	for cls, n := range rp.counts {
		if n > 0 {
			rs.Classes[EffortClass(cls).String()] = n
		}
	}
	return rs
}

// escalate bumps a class up tier steps for retry-tier re-routing.
func (c EffortClass) escalate(tiers int) EffortClass {
	e := int(c) + tiers
	if e > int(ClassHard) {
		e = int(ClassHard)
	}
	return EffortClass(e)
}
