// Package atpg implements SAT-based automatic test pattern generation in
// the Larrabee/TEGUS formulation analyzed by "Why is ATPG Easy?": the
// problem ATPG(C, ψ(X, B)) is cast as CIRCUIT-SAT on the circuit C_ψ^ATPG
// (Figure 3 of the paper) — the pairwise XOR of the outputs of C_ψ^sub
// (the transitive fanin of the transitive fanout of the fault point) and
// C_ψ^fo (the faulty copy of the transitive fanout).
//
// The package provides fault enumeration and structural collapsing, the
// subcircuit and miter constructions, CNF encoding, a per-fault engine
// with test extraction and verification, and a full-circuit run with
// fault-simulation-based test-set compaction.
package atpg

import (
	"fmt"

	"atpgeasy/internal/logic"
)

// Fault is a single stuck-at fault ψ = ψ(X, B): net X permanently stuck
// at logic value B.
type Fault struct {
	Net     int  // node ID of the fault net X in the circuit
	StuckAt bool // the stuck value B
}

// String renders the fault in conventional notation, e.g. "f/0".
func (f Fault) String() string {
	v := 0
	if f.StuckAt {
		v = 1
	}
	return fmt.Sprintf("net%d/%d", f.Net, v)
}

// Name renders the fault with the net's name in the circuit, e.g. "f/1".
func (f Fault) Name(c *logic.Circuit) string {
	v := 0
	if f.StuckAt {
		v = 1
	}
	return fmt.Sprintf("%s/%d", c.Nodes[f.Net].Name, v)
}

// AllFaults enumerates both stuck-at faults on every net of the circuit
// (2·|nets| faults). Constant-driver nets are skipped: a stuck-at fault
// equal to the constant is undetectable by construction and the opposite
// one is equivalent to a fault on the reader.
func AllFaults(c *logic.Circuit) []Fault {
	var out []Fault
	for id := range c.Nodes {
		switch c.Nodes[id].Type {
		case logic.Const0, logic.Const1:
			continue
		}
		out = append(out, Fault{Net: id, StuckAt: false}, Fault{Net: id, StuckAt: true})
	}
	return out
}

// Collapse performs structural fault collapsing by gate-local equivalence:
// when net X's only reader is a gate g, certain faults on X are equivalent
// to faults on g's output net and are dropped in favor of the output
// fault:
//
//	BUF:  X/v ≡ g/v        NOT: X/v ≡ g/¬v
//	AND:  X/0 ≡ g/0        OR:  X/1 ≡ g/1
//	NAND: X/0 ≡ g/1        NOR: X/1 ≡ g/0
//
// An inversion bubble on g's input consuming X flips the X-side value.
// XOR/XNOR gates admit no such equivalence. The result preserves fault
// coverage: every dropped fault has exactly the same test set as a kept
// fault.
func Collapse(c *logic.Circuit, faults []Fault) []Fault {
	outSet := make(map[int]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		outSet[o] = true
	}
	drop := make(map[Fault]bool)
	for id := range c.Nodes {
		n := &c.Nodes[id]
		if len(n.Fanout) != 1 {
			continue
		}
		// A net that is itself a primary output is directly observable;
		// its faults are not equivalent to faults on the reader.
		if outSet[id] {
			continue
		}
		gID := n.Fanout[0]
		g := &c.Nodes[gID]
		// Find the pin(s) of g fed by X; with a single reader there can
		// still be multiple pins (e.g. AND(x,x)) — require exactly one.
		pin := -1
		count := 0
		for i, f := range g.Fanin {
			if f == id {
				pin = i
				count++
			}
		}
		if count != 1 {
			continue
		}
		inv := g.Negated(pin)
		switch g.Type {
		case logic.Buf, logic.Not:
			// Both faults on X collapse onto g.
			drop[Fault{Net: id, StuckAt: false}] = true
			drop[Fault{Net: id, StuckAt: true}] = true
		case logic.And, logic.Nand:
			// The controlling value of AND is 0 at the pin; on the net it
			// is 0 XOR inv.
			drop[Fault{Net: id, StuckAt: inv}] = true
		case logic.Or, logic.Nor:
			drop[Fault{Net: id, StuckAt: !inv}] = true
		}
	}
	out := make([]Fault, 0, len(faults))
	for _, f := range faults {
		if !drop[f] {
			out = append(out, f)
		}
	}
	return out
}

// DominancePair records one dominance-collapsing decision: Dropped is a
// gate-output fault removed from the list, Justifier the input-side fault
// that dominates it — every test detecting Justifier also detects Dropped.
type DominancePair struct {
	Dropped   Fault
	Justifier Fault
}

// DominancePairs finds the dominance relations CollapseDominance acts on.
// For a gate g with an input net X read only by g (one pin, not a primary
// output), a test for the X-side fault at g's non-controlled pin value
// must drive every other pin non-controlling and propagate through g —
// so it also detects the corresponding output fault:
//
//	AND:  X@1 dominates g/1    NAND: X@1 dominates g/0
//	OR:   X@0 dominates g/0    NOR:  X@0 dominates g/1
//
// (X@s is the pin-side value; the net-side fault is X/(s XOR inv) when
// the pin carries an inversion bubble.) The single-reader condition makes
// g the only propagation path for the justifier, and X not being an
// output keeps it unobservable except through g; under those conditions
// the faulty circuits for Justifier and Dropped agree on every net
// downstream of g, so detection coincides. XOR/XNOR gates have no
// controlling value and admit no dominance. Both faults must be present
// in the incoming list; chains (a justifier that is itself dropped at its
// own gate) are safe because justifiers always lie strictly earlier in
// topological order, terminating at a kept fault.
func DominancePairs(c *logic.Circuit, faults []Fault) []DominancePair {
	have := make(map[Fault]bool, len(faults))
	for _, f := range faults {
		have[f] = true
	}
	outSet := make(map[int]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		outSet[o] = true
	}
	var pairs []DominancePair
	for id := range c.Nodes {
		g := &c.Nodes[id]
		var s, d bool // justifier pin value, dropped output stuck value
		switch g.Type {
		case logic.And:
			s, d = true, true
		case logic.Nand:
			s, d = true, false
		case logic.Or:
			s, d = false, false
		case logic.Nor:
			s, d = false, true
		default:
			continue
		}
		dropped := Fault{Net: id, StuckAt: d}
		if !have[dropped] {
			continue
		}
		for pin, x := range g.Fanin {
			// Fanout lists one entry per reading pin, so length 1 means g
			// reads X on exactly this pin and nothing else reads it.
			if len(c.Nodes[x].Fanout) != 1 || outSet[x] {
				continue
			}
			j := Fault{Net: x, StuckAt: s != g.Negated(pin)}
			if !have[j] {
				continue
			}
			pairs = append(pairs, DominancePair{Dropped: dropped, Justifier: j})
			break // one justifier suffices to drop the output fault
		}
	}
	return pairs
}

// CollapseDominance performs dominance-based fault collapsing on top of
// equivalence collapsing: each dominated gate-output fault found by
// DominancePairs is dropped in favor of its justifier. Unlike
// equivalence, dominance shrinks the fault list without changing which
// tests the kept faults require — any complete test set for the collapsed
// list still detects every dropped fault whose justifier is testable.
func CollapseDominance(c *logic.Circuit, faults []Fault) []Fault {
	pairs := DominancePairs(c, faults)
	if len(pairs) == 0 {
		return faults
	}
	drop := make(map[Fault]bool, len(pairs))
	for _, p := range pairs {
		drop[p.Dropped] = true
	}
	out := make([]Fault, 0, len(faults)-len(pairs))
	for _, f := range faults {
		if !drop[f] {
			out = append(out, f)
		}
	}
	return out
}
