package atpg

// This file is the engine side of incremental region-grouped solving:
// the gate deciding when the mode applies, the group worker that claims
// whole region groups off an atomic cursor, and solveGroup, which
// encodes one group formula and decides every member on a persistent
// per-worker CDCL instance under assumptions. The retry tiers reuse
// solveGroup over their own re-grouped queues (resilience.go), so a
// retried fault also benefits from clauses learned by its region
// neighbors in the same tier.

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"atpgeasy/internal/cnf"
	"atpgeasy/internal/obs"
	"atpgeasy/internal/sat"
)

// incrementalEnabled reports whether the run uses the incremental
// region-grouped path. It requires the DPLL solver family: the
// incremental core is the DPLL engine plus assumptions and clause
// retention, so any other configured solver (Simple, Caching, a custom
// implementation) falls back to fresh-per-fault solving rather than
// silently changing solvers. Learning-disabled ablation configurations
// fall back too — retention without learning is a no-op.
func (e *Engine) incrementalEnabled(opt RunOptions) bool {
	if !opt.Incremental {
		return false
	}
	switch s := e.Solver.(type) {
	case nil:
		return true
	case *sat.DPLL:
		return !s.DisableLearning
	default:
		return false
	}
}

// routeEnabled reports whether the run uses cut-width-guided portfolio
// routing. Like incrementalEnabled it requires the DPLL solver family:
// the hard class solves on the incremental CDCL core and the fallback
// path behind PODEM is a CDCL solve, so any other configured solver
// falls back to the unrouted engine rather than silently changing
// solvers.
func (e *Engine) routeEnabled(opt RunOptions) bool {
	if !opt.Route {
		return false
	}
	switch s := e.Solver.(type) {
	case nil:
		return true
	case *sat.DPLL:
		return !s.DisableLearning
	default:
		return false
	}
}

// incrementalFor returns the worker's persistent incremental instance —
// the arena-held one when scratch reuse is on (so consecutive groups
// reuse its buffers and Shrink reaches its learned DB), a fresh one per
// group otherwise — configured with the engine solver's conflict bound.
func (e *Engine) incrementalFor(ws *workerScratch) *sat.Incremental {
	var inc *sat.Incremental
	if ws != nil {
		inc = ws.arena.Incremental()
	} else {
		inc = sat.NewIncremental()
	}
	if d, ok := e.Solver.(*sat.DPLL); ok {
		inc.MaxConflicts = d.MaxConflicts
	}
	return inc
}

// groupEmit receives one member's decided result. The main sweep
// publishes it to the speculative slot and offers to advance the commit
// frontier; the retry tiers adopt it directly into the results array.
// solveGroup calls it in group (dispatch) order, skipping members whose
// drop bit was set before their solve.
type groupEmit func(i int, res Result) error

// runGroupWorker is runWorker for the incremental path: workers claim
// whole region groups (one atomic add each — a group is already a
// chunk) and solve every member on the worker's persistent instance.
func (e *Engine) runGroupWorker(ctx context.Context, st *runState, worker int, ws *workerScratch) error {
	var shrinkSeen int64
	for {
		if ctx.Err() != nil {
			return nil
		}
		st.maybeShrink(ws, worker, &shrinkSeen)
		gi := int(st.groupCursor.Add(1) - 1)
		if gi >= len(st.groups) {
			return nil
		}
		g := &st.groups[gi]
		err := e.solveGroup(ctx, st, st.order, g, ws, worker, &shrinkSeen, st.sweepSpan, st.opt.PerFaultBudget, func(i int, res Result) error {
			if res.Status == Errored {
				st.dumpRingOnce("fault panic recovered", true)
			}
			if st.droppedF.get(i) {
				// Dropped between the solve and the publish: the official
				// verdict is "dropped", so the solve is discarded.
				st.countWasted(1)
				if st.effort != nil {
					st.recordEffort(ws, i, &res, "dropped", res.Status, 0, worker, true)
				}
				return nil
			}
			st.published[i].Store(&specResult{res: res, worker: int32(worker)})
			return st.kickCommit(ws, worker)
		})
		if err != nil {
			return err
		}
	}
}

// solveGroup decides every undropped member of one region group on the
// worker's incremental instance: one GroupMiter build, one formula
// Load, then one SolveAssuming per member under its activation
// assumptions. Members dropped before the build are excluded from the
// encoding; members dropped after it are skipped without a solve —
// both mirror the fresh path's claim-time drop check. A panic anywhere
// in the group becomes Errored results for the members not yet emitted,
// and the worker's arena is replaced (sticky shrink caps carried over)
// so the next group starts clean.
//
// order is the dispatch array g's span indexes into; budget, when
// positive, bounds each member's solve separately (the group shares
// learned clauses, never a deadline). Verdicts and vectors are
// independent of group size and timing: the solver's lex-first
// branching over the region's input variables makes each member's first
// model project to the lex-least input assignment, whatever clauses
// retention has added — see sat.Incremental's determinism contract.
func (e *Engine) solveGroup(ctx context.Context, st *runState, order []int32, g *faultGroup, ws *workerScratch, worker int, shrinkSeen *int64, parent obs.SpanContext, budget time.Duration, emit groupEmit) (err error) {
	tel := st.opt.Telemetry
	members := order[g.start:g.end]
	emitted := make([]bool, len(members))
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ws != nil {
			// The panic may have left the arena (and its incremental
			// instance) mid-solve; replace it, carrying the watchdog's
			// sticky caps so shrink state survives the swap.
			prevCache, prevLearned := ws.arena.CacheCap(), ws.arena.LearnedCap()
			ws.arena = sat.NewArena()
			if prevCache > 0 {
				for ws.arena.Shrink() > prevCache {
				}
			}
			if prevLearned > 0 {
				ws.arena.Incremental().LearnedLimit = prevLearned
			}
		}
		msg := fmt.Sprintf("panic: %v", r)
		stack := string(debug.Stack())
		for k, idx := range members {
			i := int(idx)
			if emitted[k] || st.droppedF.get(i) {
				continue
			}
			res := Result{
				Fault: st.faults[i], Status: Errored, Err: msg, Stack: stack,
				Group: g.id + 1, GroupSize: len(members),
			}
			if eerr := emit(i, res); eerr != nil && err == nil {
				err = eerr
			}
		}
	}()

	gspan := tel.startSpan("group", parent)
	if gspan.Active() {
		gspan.Worker = worker
		gspan.Detail = fmt.Sprintf("region-%d", g.region)
		gspan.Items = int64(len(members))
	}
	defer gspan.End()
	st.ring.Record("group", worker, int64(g.id), int64(len(members)), 0)

	// Build the shared region formula over the members still live. The
	// live set depends on flush timing, but neither verdicts nor vectors
	// do: a member's deactivated clauses are satisfied by its negated
	// selector, and absent inputs extract as false — exactly the value
	// lex-first branching gives them when present.
	buildStart := time.Now()
	live := make([]Fault, 0, len(members))
	liveAt := make([]int, len(members)) // member k -> index into live, or -1
	for k, idx := range members {
		i := int(idx)
		if st.droppedF.get(i) {
			liveAt[k] = -1
			continue
		}
		liveAt[k] = len(live)
		live = append(live, st.faults[i])
	}
	if len(live) == 0 {
		return nil
	}
	var (
		gm            *GroupMiter
		vars, clauses int
		inc           *sat.Incremental
	)
	gm, err = NewGroupMiter(st.c, live)
	if err != nil {
		return err
	}
	if gm.Circuit != nil {
		enc := ws.encoder()
		var formula *cnf.Formula
		formula, err = gm.EncodeWith(enc)
		if err != nil {
			return err
		}
		vars, clauses = formula.NumVars, formula.NumClauses()
		inc = e.incrementalFor(ws)
		inc.Load(formula, gm.Priority)
	}
	buildElapsed := time.Since(buildStart)

	var assumps []cnf.Lit
	for k, idx := range members {
		i := int(idx)
		mk := liveAt[k]
		if mk < 0 || st.droppedF.get(i) {
			// Dropped before (or since) the build: skipped without a
			// solve, like a fresh-path fault dropped before its claim.
			continue
		}
		if ctx.Err() != nil {
			return nil
		}
		// Between members the instance is fully backtracked, so a
		// watchdog-driven shrink can reduce the learned DB here — a
		// 64-member group must not outrun the memory watchdog.
		st.maybeShrink(ws, worker, shrinkSeen)
		if e.testHookPanic != nil {
			e.testHookPanic(st.faults[i])
		}
		res := Result{Fault: st.faults[i], Group: g.id + 1, GroupSize: len(members)}
		if buildElapsed > 0 {
			// The group build is attributed to its first emitted member,
			// so summed phase times still account for it exactly once.
			res.BuildElapsed = buildElapsed
			buildElapsed = 0
		}
		if gm.Unobservable[mk] {
			res.Status = Untestable
			emitted[k] = true
			if err = emit(i, res); err != nil {
				return err
			}
			continue
		}
		lim := sat.Limits{Cancel: ctx.Done()}
		if budget > 0 {
			lim.Deadline = time.Now().Add(budget)
		}
		fspan := tel.startSpan("fault", gspan.Context())
		if fspan.Active() {
			fspan.Worker = worker
			fspan.Detail = st.faults[i].Name(st.c)
		}
		res.Vars, res.Clauses = vars, clauses
		start := time.Now()
		assumps = gm.Assumptions(mk, assumps)
		sol := inc.SolveAssuming(assumps, lim)
		res.Elapsed = time.Since(start)
		res.SolverStats = sol.Stats
		fspan.Items = sol.Stats.SearchEffort()
		fspan.End()
		switch sol.Status {
		case sat.Sat:
			res.Status = Detected
			res.Vector = gm.ExtractTest(st.c, sol.Model)
			if e.VerifyTests && !VerifyTest(st.c, st.faults[i], res.Vector) {
				return fmt.Errorf("atpg: generated vector fails to detect %s (pipeline bug)", st.faults[i].Name(st.c))
			}
		case sat.Unsat:
			res.Status = Untestable
		default:
			res.Status = Aborted
		}
		st.ring.Record("solve", worker, int64(i), int64(res.Status), res.Elapsed.Nanoseconds())
		if ctx.Err() != nil {
			// The abort is a draining artifact, not a verdict.
			return nil
		}
		emitted[k] = true
		if err = emit(i, res); err != nil {
			return err
		}
	}
	return nil
}

// encoder returns the scratch's reusable CNF encoder, or a fresh one
// when scratch reuse is disabled.
func (ws *workerScratch) encoder() *cnf.Encoder {
	if ws != nil {
		return ws.enc
	}
	return new(cnf.Encoder)
}
