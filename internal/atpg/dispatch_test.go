package atpg

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
)

// TestBitsetSetGet covers the drop bitset's single-owner transition
// semantics: set reports the flip exactly once per bit, get observes it,
// and concurrent setters of the same bit elect exactly one winner.
func TestBitsetSetGet(t *testing.T) {
	b := newBitset(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.get(i) {
			t.Fatalf("bit %d set in a fresh bitset", i)
		}
		if !b.set(i) {
			t.Fatalf("first set(%d) did not win the flip", i)
		}
		if b.set(i) {
			t.Fatalf("second set(%d) also won the flip", i)
		}
		if !b.get(i) {
			t.Fatalf("bit %d not visible after set", i)
		}
	}
	// 64 goroutines race to set the same 64 bits; each bit must have
	// exactly one winner.
	b = newBitset(64)
	var wins atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				if b.set(i) {
					wins.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 64 {
		t.Fatalf("%d flip wins for 64 bits", wins.Load())
	}
}

// TestEffortOrder: the dispatch order must cover every undecided fault
// exactly once, skip decided ones, and be sorted by fanout-cone size
// (descending) with the fault index breaking ties — the schedule that
// keeps one hard fault from serializing the tail.
func TestEffortOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(rng, 80)
	faults := Collapse(c, AllFaults(c))
	skip := make([]bool, len(faults))
	for i := range skip {
		skip[i] = i%3 == 0
	}
	order := effortOrder(c, faults, skip)
	seen := make(map[int32]bool, len(order))
	for _, i := range order {
		if skip[i] {
			t.Fatalf("order contains skipped fault %d", i)
		}
		if seen[i] {
			t.Fatalf("fault %d dispatched twice", i)
		}
		seen[i] = true
	}
	want := 0
	for i := range faults {
		if !skip[i] {
			want++
		}
	}
	if len(order) != want {
		t.Fatalf("order covers %d of %d undecided faults", len(order), want)
	}
	cone := func(net int) int {
		seen := make(map[int]bool)
		stack := []int{net}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, c.Nodes[n].Fanout...)
		}
		return len(seen)
	}
	for k := 1; k < len(order); k++ {
		ca, cb := cone(faults[order[k-1]].Net), cone(faults[order[k]].Net)
		if ca < cb || (ca == cb && order[k-1] >= order[k]) {
			t.Fatalf("order[%d]=%d (cone %d) before order[%d]=%d (cone %d)",
				k-1, order[k-1], ca, k, order[k], cb)
		}
	}
}

// TestParallelByteIdenticalWithDrop is the headline guarantee of the
// deterministic commit frontier: with fault dropping enabled, an
// 8-worker run reproduces the serial run byte for byte — same vector
// set, same per-fault verdicts and vectors, same detected/dropped split.
// (The old engine only preserved aggregate counts: its drop list raced on
// worker timing.) Built with -race in CI, this doubles as the concurrent
// core's race test. Timing fields and WastedSolves — the price of
// speculation, not part of the official outcome — are the only summary
// fields allowed to differ.
func TestParallelByteIdenticalWithDrop(t *testing.T) {
	circuits := parallelTestCircuits()
	circuits["rand-big"] = gen.Random(gen.RandomParams{Inputs: 20, Gates: 200, Seed: 3})
	for name, c := range circuits {
		faults := Collapse(c, AllFaults(c))
		opt := RunOptions{DropDetected: true, RPTBatches: 8, Seed: 42}
		serial, err := (&Engine{VerifyTests: true, Workers: 1}).RunFaults(context.Background(), c, faults, opt)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		par, err := (&Engine{VerifyTests: true, Workers: 8}).RunFaults(context.Background(), c, faults, opt)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if serial.WastedSolves != 0 {
			t.Errorf("%s: serial run wasted %d solves, want 0", name, serial.WastedSolves)
		}
		if !reflect.DeepEqual(serial.Vectors, par.Vectors) {
			t.Errorf("%s: vector sets differ between 1 and 8 workers", name)
		}
		if serial.Detected != par.Detected || serial.Untestable != par.Untestable ||
			serial.Aborted != par.Aborted || serial.Errors != par.Errors ||
			serial.DroppedByFaultSim != par.DroppedByFaultSim ||
			serial.DetectedByRPT != par.DetectedByRPT ||
			serial.RPTBatches != par.RPTBatches || serial.RPTVectors != par.RPTVectors {
			t.Errorf("%s: summaries differ:\n serial D%d U%d A%d E%d drop%d rpt%d/%d/%d\n par    D%d U%d A%d E%d drop%d rpt%d/%d/%d",
				name,
				serial.Detected, serial.Untestable, serial.Aborted, serial.Errors,
				serial.DroppedByFaultSim, serial.DetectedByRPT, serial.RPTBatches, serial.RPTVectors,
				par.Detected, par.Untestable, par.Aborted, par.Errors,
				par.DroppedByFaultSim, par.DetectedByRPT, par.RPTBatches, par.RPTVectors)
		}
		if len(serial.Results) != len(par.Results) {
			t.Fatalf("%s: %d results vs %d", name, len(serial.Results), len(par.Results))
		}
		for i := range serial.Results {
			sr, pr := serial.Results[i], par.Results[i]
			if sr.Fault != pr.Fault || sr.Status != pr.Status ||
				sr.Vars != pr.Vars || sr.Clauses != pr.Clauses ||
				!reflect.DeepEqual(sr.Vector, pr.Vector) {
				t.Errorf("%s: result %d differs: %v/%v vs %v/%v", name, i,
					sr.Fault, sr.Status, pr.Fault, pr.Status)
			}
		}
	}
}

// TestNoRedundantSolveAfterDrop is the redundant-solve counter test: the
// solve-attempt hook must account for every solver call as either an
// official result or a counted wasted solve — no fault is ever solved
// after its drop bit was set at claim time, a serial run wastes nothing,
// and no officially dropped fault appears in Results.
func TestNoRedundantSolveAfterDrop(t *testing.T) {
	c := gen.Random(gen.RandomParams{Inputs: 20, Gates: 200, Seed: 3})
	faults := Collapse(c, AllFaults(c))
	for _, workers := range []int{1, 8} {
		var attempts atomic.Int64
		eng := &Engine{Workers: workers}
		eng.testHookPanic = func(Fault) { attempts.Add(1) }
		sum, err := eng.RunFaults(context.Background(), c, faults, RunOptions{DropDetected: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := int(attempts.Load()), len(sum.Results)+sum.WastedSolves; got != want {
			t.Errorf("workers=%d: %d solver calls for %d results + %d wasted (unaccounted redundant solves)",
				workers, got, len(sum.Results), sum.WastedSolves)
		}
		if workers == 1 && sum.WastedSolves != 0 {
			t.Errorf("serial run wasted %d solves, want 0", sum.WastedSolves)
		}
		if len(sum.Results)+sum.DroppedByFaultSim != sum.Total {
			t.Errorf("workers=%d: %d results + %d dropped do not partition %d faults (a dropped fault kept its result)",
				workers, len(sum.Results), sum.DroppedByFaultSim, sum.Total)
		}
		seen := make(map[Fault]bool, len(sum.Results))
		for _, r := range sum.Results {
			if seen[r.Fault] {
				t.Errorf("workers=%d: fault %s has two results", workers, r.Fault.Name(c))
			}
			seen[r.Fault] = true
		}
	}
}

// TestTailFlushDropsFinalBatch is the regression test for the lost final
// drop-batch: Figure4a yields 10 detectable faults, fewer than dropBatch,
// so the old engine's pending vectors were never flushed and no fault was
// ever dropped. The tail-flush window must fault-simulate them anyway.
func TestTailFlushDropsFinalBatch(t *testing.T) {
	c := logic.Figure4a()
	faults := Collapse(c, AllFaults(c))
	eng := &Engine{VerifyTests: true, Workers: 1}
	sum, err := eng.RunFaults(context.Background(), c, faults, RunOptions{DropDetected: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Detected >= dropBatch {
		t.Fatalf("workload detects %d ≥ dropBatch vectors; it no longer pins the tail-flush path", sum.Detected)
	}
	if sum.DroppedByFaultSim == 0 {
		t.Fatal("no faults dropped: the final sub-dropBatch vector batch was never flushed")
	}
	if sum.Detected+sum.DroppedByFaultSim+sum.Untestable != sum.Total {
		t.Fatalf("verdicts %d+%d+%d do not partition %d faults",
			sum.Detected, sum.DroppedByFaultSim, sum.Untestable, sum.Total)
	}
}

// flushState builds a runState ready for direct flushLocked calls: a
// dispatch order over the whole fault list and a set of committed
// vectors pending simulation.
func flushState(tb testing.TB, c *logic.Circuit, nVecs int) (*runState, *workerScratch, [][]bool) {
	tb.Helper()
	faults := Collapse(c, AllFaults(c))
	st := &runState{
		c:        c,
		opt:      RunOptions{DropDetected: true},
		start:    time.Now(),
		faults:   faults,
		workers:  1,
		results:  make([]*Result, len(faults)),
		droppedF: newBitset(len(faults)),
	}
	st.order = effortOrder(c, faults, nil)
	rng := rand.New(rand.NewSource(7))
	vecs := make([][]bool, nVecs)
	for p := range vecs {
		vecs[p] = make([]bool, len(c.Inputs))
		for i := range vecs[p] {
			vecs[p][i] = rng.Intn(2) == 1
		}
	}
	return st, (&Engine{}).newScratch(), vecs
}

// flushOnce reloads the pending batch and runs one flush, resetting the
// drop bits in place so every iteration scans the full tail.
func flushOnce(tb testing.TB, st *runState, ws *workerScratch, vecs [][]bool) {
	for i := range st.droppedF {
		st.droppedF[i].Store(0)
	}
	st.pendingVecs = append(st.pendingVecs[:0], vecs...)
	if err := st.flushLocked(ws, 0); err != nil {
		tb.Fatal(err)
	}
}

// TestFlushZeroAlloc asserts the satellite fix directly: a flush on the
// scratch path performs zero allocations — no O(faults) drop-list
// snapshot, no per-flush buffers. Skipped under -race, whose
// instrumentation allocates.
func TestFlushZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	st, ws, vecs := flushState(t, gen.CarryLookaheadAdder(8), dropBatch)
	flushOnce(t, st, ws, vecs) // warm up the pack buffer and simulator
	allocs := testing.AllocsPerRun(20, func() { flushOnce(t, st, ws, vecs) })
	if allocs != 0 {
		t.Fatalf("flush allocates %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkFlushDropList measures one drop-list flush (pack + simulate +
// bitset marking) against the cla32 tail and enforces the zero-allocation
// contract in the timed path.
func BenchmarkFlushDropList(b *testing.B) {
	st, ws, vecs := flushState(b, gen.CarryLookaheadAdder(32), dropBatch)
	flushOnce(b, st, ws, vecs)
	allocs := testing.AllocsPerRun(10, func() { flushOnce(b, st, ws, vecs) })
	if !raceEnabled && allocs != 0 {
		b.Fatalf("flush allocates %.1f objects per call, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flushOnce(b, st, ws, vecs)
	}
}
