package atpg

// This file is the engine's contention-free dispatch layer: the atomic
// drop bitset shared by claims and flushes, the effort-ordered dispatch
// array (largest fanout cone first), and the chunked claim protocol the
// worker pool and the retry tiers pull faults through. None of these
// paths take a lock: claims advance an atomic cursor and read drop bits,
// flushes set drop bits, and the deterministic commit frontier in
// engine.go is the only serialized section.

import (
	"sort"
	"sync/atomic"

	"atpgeasy/internal/logic"
)

// bitset is a fixed-size concurrent bitset. Readers and writers
// synchronize through the word atomics alone, so claim-path reads never
// contend with flush-path writes (the old design copied an O(faults)
// []bool snapshot under the run mutex on every flush).
type bitset []atomic.Uint64

func newBitset(n int) bitset {
	return make(bitset, (n+63)/64)
}

// get reports whether bit i is set.
func (b bitset) get(i int) bool {
	return b[i>>6].Load()&(1<<(uint(i)&63)) != 0
}

// set sets bit i and reports whether this call flipped it from clear to
// set — the caller that wins the flip owns the transition (used to count
// each dropped fault exactly once).
func (b bitset) set(i int) bool {
	w := &b[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := w.Load()
		if old&mask != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|mask) {
			return true
		}
	}
}

// effortOrder builds the dispatch order of the undecided faults: indices
// into faults, largest fanout cone first, fault-list order among equals.
// The fanout-cone size is a cheap structural proxy for solver effort (the
// miter is built from the fanin of the fanout cone, so a bigger cone
// means a bigger ATPG-SAT instance): scheduling the expensive faults
// first keeps one hard fault from serializing the tail of a parallel
// run. skip marks faults already decided (RPT pre-phase or a resumed
// journal); they get no dispatch slot at all.
func effortOrder(c *logic.Circuit, faults []Fault, skip []bool) []int32 {
	sizer := newConeSizer(c)
	effort := make([]int32, len(faults))
	order := make([]int32, 0, len(faults))
	for i, f := range faults {
		if skip != nil && skip[i] {
			continue
		}
		effort[i] = sizer.coneOf(f.Net)
		order = append(order, int32(i))
	}
	// Full tie-break on the fault index makes the order deterministic
	// without a stable sort.
	sort.Slice(order, func(a, b int) bool {
		if ea, eb := effort[order[a]], effort[order[b]]; ea != eb {
			return ea > eb
		}
		return order[a] < order[b]
	})
	return order
}

// coneSizer memoizes fanout-cone node counts, the structural effort
// proxy shared by the effort-ordered dispatch and the region grouping
// (region.go): the miter is built from the fanin of the fanout cone,
// so a bigger cone means a bigger ATPG-SAT instance.
type coneSizer struct {
	c     *logic.Circuit
	cone  map[int]int32 // net -> fanout-cone node count
	mark  []int
	stamp int
	stack []int
}

func newConeSizer(c *logic.Circuit) *coneSizer {
	return &coneSizer{c: c, cone: make(map[int]int32), mark: make([]int, len(c.Nodes))}
}

func (s *coneSizer) coneOf(net int) int32 {
	if sz, ok := s.cone[net]; ok {
		return sz
	}
	s.stamp++
	s.stack = append(s.stack[:0], net)
	s.mark[net] = s.stamp
	size := int32(0)
	for len(s.stack) > 0 {
		n := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		size++
		for _, f := range s.c.Nodes[n].Fanout {
			if s.mark[f] != s.stamp {
				s.mark[f] = s.stamp
				s.stack = append(s.stack, f)
			}
		}
	}
	s.cone[net] = size
	return size
}

// Claim chunking: a worker reserves a small run of dispatch slots with
// one atomic add instead of one per fault, guided-self-scheduling style —
// chunks shrink as the list drains so the tail still balances across
// workers.
const (
	maxClaimChunk = 8
	claimChunkDiv = 4 // chunk ≈ remaining / (claimChunkDiv · workers)
)

// chunkClaimer hands out the positions [0, n) of a shared work list,
// reserving them in chunks off an atomic cursor. One instance per worker,
// all pointing at the same cursor; the main sweep wraps it in claimer and
// the retry tiers drive it directly over their per-tier queues.
type chunkClaimer struct {
	cursor  *atomic.Int64
	n       int
	workers int
	lo, hi  int // reserved, not yet popped
	// onChunk, when set, observes each successful chunk reservation
	// (positions [lo, hi)) — the observability hook feeding the flight
	// recorder and dispatch-chunk spans. Called on the claiming worker's
	// goroutine, outside any lock.
	onChunk func(lo, hi int)
}

// next returns the next reserved position, or -1 at exhaustion. Lock-free:
// one CAS per chunk.
func (cl *chunkClaimer) next() int {
	for cl.lo >= cl.hi {
		cur := cl.cursor.Load()
		remaining := cl.n - int(cur)
		if remaining <= 0 {
			return -1
		}
		chunk := remaining / (claimChunkDiv * cl.workers)
		if chunk < 1 {
			chunk = 1
		}
		if chunk > maxClaimChunk {
			chunk = maxClaimChunk
		}
		if cl.workers == 1 {
			// A single worker commits after every solve; claiming one slot
			// at a time lets each flush drop faults before they are
			// claimed, so a serial run never solves a fault redundantly.
			chunk = 1
		}
		if cl.cursor.CompareAndSwap(cur, cur+int64(chunk)) {
			cl.lo, cl.hi = int(cur), int(cur)+chunk
			if cl.onChunk != nil {
				cl.onChunk(cl.lo, cl.hi)
			}
		}
	}
	p := cl.lo
	cl.lo++
	return p
}

// claimer is one worker's view of the main-sweep dispatch order.
type claimer struct {
	ck chunkClaimer
}

func (st *runState) newClaimer() claimer {
	return claimer{ck: chunkClaimer{cursor: &st.cursor, n: len(st.order), workers: st.workers}}
}

// claim returns the next fault index for this worker to solve, or -1 when
// the dispatch order is exhausted. Faults whose drop bit was set after
// they were reserved are skipped without a solve — the redundant-solve
// guard the regression tests pin down.
func (st *runState) claim(cl *claimer) int {
	for {
		p := cl.ck.next()
		if p < 0 {
			return -1
		}
		i := int(st.order[p])
		if st.droppedF.get(i) {
			continue // dropped by a committed vector since reservation
		}
		return i
	}
}
