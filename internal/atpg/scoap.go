package atpg

// SCOAP-style testability measures (Goldstein 1979), the classic cheap
// predictors of per-fault ATPG difficulty: CC0/CC1 estimate how many
// line assignments it takes to set a net to 0/1, CO how many it takes to
// propagate the net's value to a primary output. The effort log pairs
// them with the observed solver effort so the report (and eventually a
// fault router) can measure how much of the paper's "ATPG is easy"
// structure these O(circuit) features already explain.

import "atpgeasy/internal/logic"

// scoapInf saturates the additive SCOAP recurrences: a net that cannot
// be controlled/observed (constant nets, dead cones) pins at this value
// instead of overflowing when summed across wide gates.
const scoapInf int32 = 1 << 28

func satAdd(a, b int32) int32 {
	s := a + b
	if s >= scoapInf || s < 0 {
		return scoapInf
	}
	return s
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Scoap holds the per-net testability measures of one circuit, indexed
// by node ID.
type Scoap struct {
	CC0 []int32 // combinational 0-controllability
	CC1 []int32 // combinational 1-controllability
	CO  []int32 // combinational observability
}

// ComputeScoap runs the two classic passes: controllabilities forward in
// topological order, observabilities backward. Inversion bubbles on gate
// inputs swap the controllability seen through that pin. XOR/XNOR gates
// are n-ary parity here (matching logic.Eval), handled by the standard
// even/odd dynamic program over the fanins.
func ComputeScoap(c *logic.Circuit) *Scoap {
	n := len(c.Nodes)
	s := &Scoap{CC0: make([]int32, n), CC1: make([]int32, n), CO: make([]int32, n)}

	// pinCC is the cost of driving gate input i of g to value v, seen from
	// inside the gate (a bubble swaps which driver controllability pays).
	pinCC := func(g *logic.Node, i int, v bool) int32 {
		d := g.Fanin[i]
		if g.Negated(i) {
			v = !v
		}
		if v {
			return s.CC1[d]
		}
		return s.CC0[d]
	}

	for _, id := range c.TopoOrder() {
		g := &c.Nodes[id]
		switch g.Type {
		case logic.Input:
			s.CC0[id], s.CC1[id] = 1, 1
		case logic.Const0:
			s.CC0[id], s.CC1[id] = 0, scoapInf
		case logic.Const1:
			s.CC0[id], s.CC1[id] = scoapInf, 0
		case logic.Buf, logic.Not:
			cc0 := satAdd(pinCC(g, 0, false), 1)
			cc1 := satAdd(pinCC(g, 0, true), 1)
			if g.Type == logic.Not {
				cc0, cc1 = satAdd(pinCC(g, 0, true), 1), satAdd(pinCC(g, 0, false), 1)
			}
			s.CC0[id], s.CC1[id] = cc0, cc1
		case logic.And, logic.Nand, logic.Or, logic.Nor:
			// ctrl is the gate's controlling input value (0 for AND-family,
			// 1 for OR-family): one controlling pin forces the output, all
			// non-controlling pins are needed for the other value.
			ctrl := false
			if g.Type == logic.Or || g.Type == logic.Nor {
				ctrl = true
			}
			one := scoapInf // cheapest single controlling pin
			all := int32(0) // every pin at the non-controlling value
			for i := range g.Fanin {
				one = minI32(one, pinCC(g, i, ctrl))
				all = satAdd(all, pinCC(g, i, !ctrl))
			}
			forced, unforced := satAdd(one, 1), satAdd(all, 1)
			// AND: forced output is 0; OR: forced output is 1.
			cc0, cc1 := forced, unforced
			if ctrl {
				cc0, cc1 = unforced, forced
			}
			if g.Type == logic.Nand || g.Type == logic.Nor {
				cc0, cc1 = cc1, cc0
			}
			s.CC0[id], s.CC1[id] = cc0, cc1
		case logic.Xor, logic.Xnor:
			// Parity DP: even/odd is the cheapest cost of making the parity
			// of the pins seen so far even/odd.
			even, odd := int32(0), scoapInf
			for i := range g.Fanin {
				p0, p1 := pinCC(g, i, false), pinCC(g, i, true)
				even, odd = minI32(satAdd(even, p0), satAdd(odd, p1)),
					minI32(satAdd(even, p1), satAdd(odd, p0))
			}
			cc0, cc1 := satAdd(even, 1), satAdd(odd, 1)
			if g.Type == logic.Xnor {
				cc0, cc1 = cc1, cc0
			}
			s.CC0[id], s.CC1[id] = cc0, cc1
		}
	}

	for i := range s.CO {
		s.CO[i] = scoapInf
	}
	for _, o := range c.Outputs {
		s.CO[o] = 0
	}
	topo := c.TopoOrder()
	// Readers come after their drivers in topo order, so one reverse walk
	// sees every reader's CO before relaxing its fanin nets.
	for k := len(topo) - 1; k >= 0; k-- {
		id := topo[k]
		g := &c.Nodes[id]
		if len(g.Fanin) == 0 || s.CO[id] >= scoapInf {
			continue
		}
		for i, d := range g.Fanin {
			var side int32 // cost of sensitizing the path through the other pins
			switch g.Type {
			case logic.Buf, logic.Not:
				side = 0
			case logic.And, logic.Nand:
				for j := range g.Fanin {
					if j != i {
						side = satAdd(side, pinCC(g, j, true))
					}
				}
			case logic.Or, logic.Nor:
				for j := range g.Fanin {
					if j != i {
						side = satAdd(side, pinCC(g, j, false))
					}
				}
			case logic.Xor, logic.Xnor:
				for j := range g.Fanin {
					if j != i {
						side = satAdd(side, minI32(pinCC(g, j, false), pinCC(g, j, true)))
					}
				}
			}
			co := satAdd(s.CO[id], satAdd(side, 1))
			s.CO[d] = minI32(s.CO[d], co)
		}
	}
	return s
}
