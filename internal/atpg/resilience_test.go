package atpg

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"atpgeasy/internal/cnf"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/obs"
	"atpgeasy/internal/sat"
)

// recordingSink is a JournalSink capturing records in memory, with an
// optional context cancel fired once `cancelAfter` fault verdicts have
// landed — simulating a run killed mid-flight.
type recordingSink struct {
	mu          sync.Mutex
	cancel      context.CancelFunc
	cancelAfter int
	rpt         *ResumeRPT
	faults      map[int]Result
}

func newRecordingSink() *recordingSink {
	return &recordingSink{faults: make(map[int]Result)}
}

func (s *recordingSink) RecordRPT(detected []int, vectors [][]bool, batches int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rpt := &ResumeRPT{Detected: append([]int(nil), detected...), Batches: batches}
	for _, v := range vectors {
		rpt.Vectors = append(rpt.Vectors, append([]bool(nil), v...))
	}
	s.rpt = rpt
}

func (s *recordingSink) RecordFault(i int, status string, vector []bool, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := ParseStatus(status)
	if !ok {
		panic("journal sink got unknown status " + status)
	}
	s.faults[i] = Result{Status: st, Vector: append([]bool(nil), vector...), Err: errMsg}
	if s.cancel != nil && len(s.faults) >= s.cancelAfter {
		s.cancel()
	}
}

func (s *recordingSink) state() *ResumeState {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs := make(map[int]Result, len(s.faults))
	for i, r := range s.faults {
		fs[i] = r
	}
	return &ResumeState{RPT: s.rpt, Faults: fs}
}

// TestPanicIsolation injects a panic into one fault's processing and
// requires the run to survive it: every other fault gets its verdict,
// the panicked fault reports status "error", Summary.Errors counts it,
// and the trace carries the panic message plus a captured stack.
func TestPanicIsolation(t *testing.T) {
	c := gen.CarryLookaheadAdder(4)
	faults := Collapse(c, AllFaults(c))
	victim := faults[len(faults)/2]

	var buf bytes.Buffer
	trace := obs.NewTrace(&buf)
	reg := obs.NewRegistry()
	met := NewMetrics(reg, 2)
	eng := &Engine{Workers: 2}
	eng.testHookPanic = func(f Fault) {
		if f == victim {
			panic("injected cone explosion")
		}
	}
	sum, err := eng.RunFaults(context.Background(), c, faults, RunOptions{
		Telemetry: &Telemetry{Metrics: met, Trace: trace},
	})
	if err != nil {
		t.Fatalf("RunFaults: %v", err)
	}
	if sum.Errors != 1 {
		t.Fatalf("Summary.Errors = %d, want 1", sum.Errors)
	}
	if got := sum.Detected + sum.Untestable + sum.Aborted + sum.Errors; got != sum.Total {
		t.Fatalf("faults lost to the panic: %d accounted of %d", got, sum.Total)
	}
	if met.FaultPanics.Value() != 1 {
		t.Fatalf("atpg_fault_panics_total = %d, want 1", met.FaultPanics.Value())
	}
	var errored *Result
	for i := range sum.Results {
		if sum.Results[i].Status == Errored {
			errored = &sum.Results[i]
		}
	}
	if errored == nil {
		t.Fatal("no Errored result in the summary")
	}
	if !strings.Contains(errored.Err, "injected cone explosion") {
		t.Fatalf("Result.Err = %q", errored.Err)
	}
	if !strings.Contains(errored.Stack, "goroutine") {
		t.Fatalf("Result.Stack missing a goroutine stack: %.80q", errored.Stack)
	}
	if err := trace.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	var found bool
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if ev.Status == "error" {
			found = true
			if !strings.Contains(ev.Error, "injected cone explosion") || !strings.Contains(ev.Stack, "goroutine") {
				t.Fatalf("error trace event lacks panic context: %+v", ev)
			}
		}
	}
	if !found {
		t.Fatal("no status:error event in the trace")
	}
}

// budgetSolver aborts with Unknown whenever its per-call deadline allows
// less than `need` of solving time, and otherwise delegates to a real
// solver — making "this fault needs a bigger budget" deterministic
// instead of wall-clock-dependent.
type budgetSolver struct {
	inner sat.Solver
	need  time.Duration
	lim   sat.Limits
}

func (s *budgetSolver) Solve(f *cnf.Formula) sat.Solution {
	if !s.lim.Deadline.IsZero() && time.Until(s.lim.Deadline) < s.need {
		return sat.Solution{Status: sat.Unknown}
	}
	return s.inner.Solve(f)
}

func (s *budgetSolver) WithLimits(lim sat.Limits) sat.Solver {
	cp := *s
	cp.lim = lim
	return &cp
}

// TestRetryTiersRecoverAbortedFaults runs with a budget every fault
// "exceeds" until the second escalation tier, and requires the retry
// phase to decide all of them — with the per-tier story in
// Summary.Retries and the labeled metrics.
func TestRetryTiersRecoverAbortedFaults(t *testing.T) {
	c := gen.CarryLookaheadAdder(4)
	faults := Collapse(c, AllFaults(c))
	reg := obs.NewRegistry()
	met := NewMetrics(reg, 2)
	eng := &Engine{
		Workers: 2,
		Solver:  &budgetSolver{inner: &sat.DPLL{}, need: 100 * time.Millisecond},
	}
	sink := newRecordingSink()
	sum, err := eng.RunFaults(context.Background(), c, faults, RunOptions{
		PerFaultBudget: 10 * time.Millisecond, // tiers: 40ms, 160ms, 640ms
		RetryTiers:     3,
		RetryBackoff:   4,
		Telemetry:      &Telemetry{Metrics: met},
		Journal:        sink,
	})
	if err != nil {
		t.Fatalf("RunFaults: %v", err)
	}
	if sum.Aborted != 0 {
		t.Fatalf("Aborted = %d after retries, want 0", sum.Aborted)
	}
	if len(sum.Retries) < 2 {
		t.Fatalf("Retries = %+v, want at least 2 tiers", sum.Retries)
	}
	// Faults decided without a solver call (structurally unobservable)
	// never abort, so the tiers see the solver-bound population.
	t1, t2 := sum.Retries[0], sum.Retries[1]
	if t1.Tier != 1 || t1.Attempted == 0 || t1.Recovered != 0 {
		t.Fatalf("tier 1 = %+v, want attempts and no recoveries", t1)
	}
	if t2.Tier != 2 || t2.Attempted != t1.Attempted || t2.Recovered != t2.Attempted {
		t.Fatalf("tier 2 = %+v, want all %d recovered", t2, t1.Attempted)
	}
	if got := met.RetryRecovered.Values(); got["2"] != int64(t2.Recovered) || got["1"] != 0 {
		t.Fatalf("atpg_retry_recovered_total = %v", got)
	}
	if got := met.RetryAttempts.Values(); got["1"] != int64(t1.Attempted) || got["2"] != int64(t2.Attempted) {
		t.Fatalf("atpg_retry_attempts_total = %v", got)
	}
	// Only final verdicts reach the journal, each exactly once.
	if len(sink.faults) != sum.Total {
		t.Fatalf("journal has %d verdicts for %d faults", len(sink.faults), sum.Total)
	}
	for i, r := range sink.faults {
		if r.Status == Aborted {
			t.Fatalf("fault %d journaled as aborted despite recovery", i)
		}
	}
	// The budget gate is deterministic, so the recovered run must decide
	// exactly what an unbudgeted run decides.
	plain, err := (&Engine{Workers: 2, Solver: &sat.DPLL{}}).RunFaults(context.Background(), c, faults, RunOptions{})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if sum.Detected != plain.Detected || sum.Untestable != plain.Untestable {
		t.Fatalf("retried verdicts diverge: got %d/%d, want %d/%d",
			sum.Detected, sum.Untestable, plain.Detected, plain.Untestable)
	}
	if !reflect.DeepEqual(sum.Vectors, plain.Vectors) {
		t.Fatal("retried vector set differs from the unbudgeted run")
	}
}

// TestCrashResumeEquivalence cancels a run mid-sweep (the in-process
// stand-in for kill -9: only journaled verdicts survive), resumes from
// the journal, and requires byte-identical vectors and coverage versus
// an uninterrupted run — at 1 and 8 workers.
func TestCrashResumeEquivalence(t *testing.T) {
	// A random circuit rather than the multiplier: RPT detects every
	// multiplier fault, leaving nothing for the SAT phase to journal. This
	// one leaves ~185 solver verdicts (redundant + hard faults), so the
	// cancel lands mid-sweep.
	c := gen.Random(gen.RandomParams{Inputs: 20, Gates: 200, Seed: 3})
	faults := CollapseDominance(c, Collapse(c, AllFaults(c)))
	opt := RunOptions{RPTBatches: DefaultRPTBatches, Seed: 42}

	for _, workers := range []int{1, 8} {
		baseline, err := (&Engine{Workers: workers}).RunFaults(context.Background(), c, faults, opt)
		if err != nil {
			t.Fatalf("workers=%d baseline: %v", workers, err)
		}

		// Interrupted run: cancel after a handful of journaled verdicts.
		ctx, cancel := context.WithCancel(context.Background())
		sink := newRecordingSink()
		sink.cancel, sink.cancelAfter = cancel, 5
		iopt := opt
		iopt.Journal = sink
		_, err = (&Engine{Workers: workers}).RunFaults(ctx, c, faults, iopt)
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: interrupted run finished before the cancel", workers)
		}
		prior := sink.state()
		if prior.RPT == nil {
			t.Fatalf("workers=%d: pre-phase missing from the journal", workers)
		}
		if len(prior.Faults) >= len(baseline.Results) {
			t.Fatalf("workers=%d: nothing left to resume (%d of %d already decided)",
				workers, len(prior.Faults), len(baseline.Results))
		}

		ropt := opt
		ropt.Resume = prior
		resumed, err := (&Engine{Workers: workers}).RunFaults(context.Background(), c, faults, ropt)
		if err != nil {
			t.Fatalf("workers=%d resume: %v", workers, err)
		}
		if !reflect.DeepEqual(resumed.Vectors, baseline.Vectors) {
			t.Fatalf("workers=%d: resumed vector set differs from uninterrupted run", workers)
		}
		if resumed.Coverage() != baseline.Coverage() {
			t.Fatalf("workers=%d: coverage %v after resume, want %v",
				workers, resumed.Coverage(), baseline.Coverage())
		}
		if resumed.Detected != baseline.Detected || resumed.Untestable != baseline.Untestable ||
			resumed.DetectedByRPT != baseline.DetectedByRPT {
			t.Fatalf("workers=%d: resumed tallies %d/%d/%d, want %d/%d/%d", workers,
				resumed.Detected, resumed.Untestable, resumed.DetectedByRPT,
				baseline.Detected, baseline.Untestable, baseline.DetectedByRPT)
		}
	}
}

// TestMemWatchdogShrinksCaches arms the watchdog with an impossible
// 1-byte soft limit and a 1ms sampling period: workers must halve their
// solver caches as they go, visible in atpg_cache_shrinks_total.
func TestMemWatchdogShrinksCaches(t *testing.T) {
	c := gen.Random(gen.RandomParams{Inputs: 10, Gates: 60, Seed: 7})
	faults := AllFaults(c)
	reg := obs.NewRegistry()
	met := NewMetrics(reg, 2)
	eng := &Engine{Workers: 2, Solver: &sat.Caching{}, memCheckEvery: time.Millisecond}
	sum, err := eng.RunFaults(context.Background(), c, faults, RunOptions{
		MemSoftLimit: 1,
		Telemetry:    &Telemetry{Metrics: met},
	})
	if err != nil {
		t.Fatalf("RunFaults: %v", err)
	}
	if sum.Detected == 0 {
		t.Fatal("run decided nothing")
	}
	if met.CacheShrinks.Value() == 0 {
		t.Fatal("watchdog never shrank a cache (atpg_cache_shrinks_total = 0)")
	}
}

// TestResumeSkipsDecidedFaults checks the dispatch plumbing directly: a
// resumed verdict must keep its journaled vector verbatim and never be
// re-solved.
func TestResumeSkipsDecidedFaults(t *testing.T) {
	c := gen.CarryLookaheadAdder(4)
	faults := Collapse(c, AllFaults(c))
	base, err := (&Engine{Workers: 2}).RunFaults(context.Background(), c, faults, RunOptions{})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	// Resume with fault 0 pre-decided to a sentinel (wrong) vector: if the
	// engine re-solved it, the sentinel would be overwritten.
	sentinel := make([]bool, len(c.Inputs))
	for i := range sentinel {
		sentinel[i] = true
	}
	rs := &ResumeState{Faults: map[int]Result{0: {Status: Detected, Vector: sentinel}}}
	resumed, err := (&Engine{Workers: 2}).RunFaults(context.Background(), c, faults, RunOptions{Resume: rs})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed.Total != base.Total || resumed.Detected != base.Detected {
		t.Fatalf("resumed run shape changed: %d/%d vs %d/%d",
			resumed.Detected, resumed.Total, base.Detected, base.Total)
	}
	if !reflect.DeepEqual(resumed.Results[0].Vector, sentinel) {
		t.Fatal("resumed verdict was re-solved instead of replayed")
	}
}
