package atpg

import (
	"context"
	"strings"
	"testing"
	"time"

	"atpgeasy/internal/cnf"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/obs"
	"atpgeasy/internal/sat"
)

func regionTestCircuits() map[string]*logic.Circuit {
	return map[string]*logic.Circuit{
		"rand": gen.Random(gen.RandomParams{Inputs: 10, Gates: 60, Seed: 7}),
		"cla":  gen.CarryLookaheadAdder(4),
		"mult": gen.ArrayMultiplier(3),
	}
}

// TestRegionHeads pins the region-head invariants: a net whose fanout
// is read by exactly one distinct gate shares that gate's head, every
// other net is its own head, and head assignment is idempotent (the
// head of a head is itself).
func TestRegionHeads(t *testing.T) {
	for name, c := range regionTestCircuits() {
		head := regionHeads(c)
		for id := range c.Nodes {
			reader := -1
			multi := false
			for _, fo := range c.Nodes[id].Fanout {
				if reader == -1 {
					reader = fo
				} else if fo != reader {
					multi = true
					break
				}
			}
			if reader >= 0 && !multi {
				if head[id] != head[reader] {
					t.Fatalf("%s: net %d has single reader %d but head %d != %d",
						name, id, reader, head[id], head[reader])
				}
			} else if head[id] != int32(id) {
				t.Fatalf("%s: fanout stem/sink %d has head %d, want itself", name, id, head[id])
			}
			if h := head[id]; head[h] != h {
				t.Fatalf("%s: head %d of net %d is not its own head", name, h, id)
			}
		}
	}
}

// TestBuildGroupsCanonicalOrder requires the flattened dispatch order to
// be identical for every group-size cap — the property that makes the
// commit frontier, flush points and drop set independent of GroupMax —
// and the group spans to partition it without crossing regions or the
// cap.
func TestBuildGroupsCanonicalOrder(t *testing.T) {
	for name, c := range regionTestCircuits() {
		faults := Collapse(c, AllFaults(c))
		head := regionHeads(c)
		refOrder, _ := buildGroups(c, faults, nil, 1)
		for _, max := range []int{2, 3, 7, DefaultGroupMax} {
			order, groups := buildGroups(c, faults, nil, max)
			if len(order) != len(refOrder) {
				t.Fatalf("%s max=%d: order length %d vs %d", name, max, len(order), len(refOrder))
			}
			for i := range order {
				if order[i] != refOrder[i] {
					t.Fatalf("%s max=%d: order[%d] = %d, reference %d", name, max, i, order[i], refOrder[i])
				}
			}
			next := int32(0)
			for _, g := range groups {
				if g.start != next {
					t.Fatalf("%s max=%d: group %d starts at %d, want %d", name, max, g.id, g.start, next)
				}
				if n := g.end - g.start; n < 1 || int(n) > max {
					t.Fatalf("%s max=%d: group %d has %d members", name, max, g.id, n)
				}
				for _, idx := range order[g.start:g.end] {
					if h := head[faults[idx].Net]; h != g.region {
						t.Fatalf("%s max=%d: fault net %d (head %d) in region-%d group",
							name, max, faults[idx].Net, h, g.region)
					}
				}
				next = g.end
			}
			if next != int32(len(order)) {
				t.Fatalf("%s max=%d: groups cover %d of %d slots", name, max, next, len(order))
			}
		}
	}
}

// TestGroupMiterMatchesMiter solves every fault of every region group
// through the group encoding under assumptions on one incremental
// instance, and requires member-by-member agreement with the fresh
// single-fault miter: same verdict, and a group-extracted vector that
// detects the fault and is byte-identical to the fresh one.
func TestGroupMiterMatchesMiter(t *testing.T) {
	for name, c := range regionTestCircuits() {
		faults := Collapse(c, AllFaults(c))
		order, groups := buildGroups(c, faults, nil, DefaultGroupMax)
		eng := &Engine{}
		fresh := make(map[int]Result, len(faults))
		for _, idx := range order {
			res, err := eng.TestFault(c, faults[idx])
			if err != nil {
				t.Fatalf("%s: fresh %s: %v", name, faults[idx].Name(c), err)
			}
			fresh[int(idx)] = res
		}
		// The fresh baseline for vectors must come from the same lex-first
		// branching; re-solve each fault alone on the incremental path.
		freshVec := make(map[int][]bool, len(faults))
		for _, idx := range order {
			gm, err := NewGroupMiter(c, []Fault{faults[idx]})
			if err != nil {
				t.Fatalf("%s: solo GroupMiter: %v", name, err)
			}
			if gm.Unobservable[0] {
				continue
			}
			f, err := gm.EncodeWith(new(cnf.Encoder))
			if err != nil {
				t.Fatalf("%s: solo encode: %v", name, err)
			}
			inc := sat.NewIncremental()
			inc.Load(f, gm.Priority)
			sol := inc.SolveAssuming(gm.Assumptions(0, nil), sat.Limits{})
			if sol.Status == sat.Sat {
				freshVec[int(idx)] = gm.ExtractTest(c, sol.Model)
			}
		}
		for _, g := range groups {
			members := make([]Fault, 0, g.end-g.start)
			for _, idx := range order[g.start:g.end] {
				members = append(members, faults[idx])
			}
			gm, err := NewGroupMiter(c, members)
			if err != nil {
				t.Fatalf("%s: NewGroupMiter: %v", name, err)
			}
			var inc *sat.Incremental
			if gm.Circuit != nil {
				f, err := gm.EncodeWith(new(cnf.Encoder))
				if err != nil {
					t.Fatalf("%s: EncodeWith: %v", name, err)
				}
				inc = sat.NewIncremental()
				inc.Load(f, gm.Priority)
			}
			for k := range members {
				i := int(order[int(g.start)+k])
				want := fresh[i]
				if gm.Unobservable[k] {
					if want.Status != Untestable {
						t.Fatalf("%s: %s unobservable in group but %v fresh",
							name, members[k].Name(c), want.Status)
					}
					continue
				}
				sol := inc.SolveAssuming(gm.Assumptions(k, nil), sat.Limits{})
				switch sol.Status {
				case sat.Sat:
					if want.Status != Detected {
						t.Fatalf("%s: %s SAT in group, %v fresh", name, members[k].Name(c), want.Status)
					}
					vec := gm.ExtractTest(c, sol.Model)
					if !VerifyTest(c, members[k], vec) {
						t.Fatalf("%s: group vector for %s does not detect it", name, members[k].Name(c))
					}
					solo := freshVec[i]
					for b := range vec {
						if vec[b] != solo[b] {
							t.Fatalf("%s: %s group vector %v differs from solo %v",
								name, members[k].Name(c), vec, solo)
						}
					}
				case sat.Unsat:
					if want.Status != Untestable {
						t.Fatalf("%s: %s UNSAT in group, %v fresh", name, members[k].Name(c), want.Status)
					}
					if inc.Failed() {
						t.Fatalf("%s: per-member UNSAT latched global Failed", name)
					}
				default:
					t.Fatalf("%s: group solve of %s returned %v", name, members[k].Name(c), sol.Status)
				}
			}
		}
	}
}

// runIncremental is the equivalence harness: one incremental run with
// the given group cap and worker count, full TEGUS options.
func runIncremental(t *testing.T, c *logic.Circuit, groupMax, workers int) *Summary {
	t.Helper()
	eng := &Engine{VerifyTests: true, Workers: workers}
	sum, err := eng.Run(context.Background(), c, RunOptions{
		Collapse: true, DropDetected: true,
		RPTBatches: DefaultRPTBatches, Seed: 42,
		Incremental: true, GroupMax: groupMax,
	})
	if err != nil {
		t.Fatalf("incremental run (groupMax=%d, workers=%d): %v", groupMax, workers, err)
	}
	return sum
}

// sameVectors requires byte-identical vector sets in order.
func sameVectors(t *testing.T, name string, a, b [][]bool) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d vectors", name, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s: vector %d length %d vs %d", name, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("%s: vector %d bit %d differs", name, i, j)
			}
		}
	}
}

// sameSummaries requires the deterministic parts of two summaries to be
// byte-identical: vectors, per-fault statuses in order, tallies and
// coverage. Solver statistics, instance sizes and timings are exempt —
// they legitimately vary with grouping and learned-clause retention.
func sameSummaries(t *testing.T, name string, a, b *Summary) {
	t.Helper()
	sameVectors(t, name, a.Vectors, b.Vectors)
	if a.Detected != b.Detected || a.Untestable != b.Untestable ||
		a.Aborted != b.Aborted || a.Errors != b.Errors ||
		a.DroppedByFaultSim != b.DroppedByFaultSim ||
		a.DetectedByRPT != b.DetectedByRPT {
		t.Fatalf("%s: tallies differ: (D%d U%d A%d E%d drop%d rpt%d) vs (D%d U%d A%d E%d drop%d rpt%d)",
			name,
			a.Detected, a.Untestable, a.Aborted, a.Errors, a.DroppedByFaultSim, a.DetectedByRPT,
			b.Detected, b.Untestable, b.Aborted, b.Errors, b.DroppedByFaultSim, b.DetectedByRPT)
	}
	if a.Coverage() != b.Coverage() {
		t.Fatalf("%s: coverage %v vs %v", name, a.Coverage(), b.Coverage())
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("%s: %d vs %d results", name, len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i].Fault != b.Results[i].Fault || a.Results[i].Status != b.Results[i].Status {
			t.Fatalf("%s: result %d: %v/%v vs %v/%v", name, i,
				a.Results[i].Fault, a.Results[i].Status, b.Results[i].Fault, b.Results[i].Status)
		}
	}
}

// TestIncrementalEquivalence is the PR's acceptance property: region-
// grouped incremental solving must produce byte-identical vectors and
// summaries to fresh-per-fault solving (GroupMax 1 — a cold instance
// per fault on the same lex-first path) at any worker count, under the
// full TEGUS flow (collapse, RPT pre-phase, fault dropping).
func TestIncrementalEquivalence(t *testing.T) {
	for name, c := range regionTestCircuits() {
		ref := runIncremental(t, c, 1, 1)
		for _, cfg := range []struct {
			groupMax, workers int
		}{
			{1, 4},
			{DefaultGroupMax, 1},
			{DefaultGroupMax, 4},
			{3, 2},
		} {
			got := runIncremental(t, c, cfg.groupMax, cfg.workers)
			label := name + "/" +
				"max" + itoa(cfg.groupMax) + "w" + itoa(cfg.workers)
			sameSummaries(t, label, ref, got)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestIncrementalUntestableIsolated builds a circuit with a redundant
// gate (g = a∧b feeding out = a∨g, so g stuck-at-0 is untestable) and
// requires the group instance to keep serving its neighbors after
// proving the redundancy: the UNSAT-under-assumptions verdict must not
// poison the instance or be recorded as global.
func TestIncrementalUntestableIsolated(t *testing.T) {
	b := logic.NewBuilder("redundant")
	a := b.Input("a")
	bb := b.Input("b")
	g := b.Gate(logic.And, "g", a, bb)
	out := b.Gate(logic.Or, "out", a, g)
	b.MarkOutput(out)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	faults := AllFaults(c)
	eng := &Engine{VerifyTests: true, Workers: 1}
	sum, err := eng.RunFaults(context.Background(), c, faults, RunOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Untestable == 0 {
		t.Fatalf("redundant fault not reported untestable: %+v", sum)
	}
	if sum.Detected == 0 {
		t.Fatalf("no detections after the untestable member: %+v", sum)
	}
	if sum.Detected+sum.Untestable != sum.Total {
		t.Fatalf("faults unaccounted: D%d U%d of %d", sum.Detected, sum.Untestable, sum.Total)
	}
	fresh, err := eng.RunFaults(context.Background(), c, faults, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Detected != sum.Detected || fresh.Untestable != sum.Untestable {
		t.Fatalf("incremental (D%d U%d) vs fresh (D%d U%d)",
			sum.Detected, sum.Untestable, fresh.Detected, fresh.Untestable)
	}
}

// TestIncrementalMemWatchdogShrinksLearnedDB runs incremental mode
// under a 1-byte soft limit so every watchdog sample forces a shrink,
// and requires the learned-clause budget to bottom out without
// changing any verdict or vector.
func TestIncrementalMemWatchdogShrinksLearnedDB(t *testing.T) {
	// Uncollapsed multiplier faults, no pre-phase or dropping: every
	// fault reaches the solver, so the run outlives many 1ms samples
	// even on a single CPU (the watchdog goroutine needs the scheduler
	// to preempt a busy worker before it can sample the heap).
	c := gen.ArrayMultiplier(7)
	refEng := &Engine{VerifyTests: true, Workers: 2}
	ref, err := refEng.Run(context.Background(), c, RunOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	met := NewMetrics(reg, 2)
	eng := &Engine{VerifyTests: true, Workers: 2, memCheckEvery: time.Millisecond}
	sum, err := eng.Run(context.Background(), c, RunOptions{
		Incremental:  true,
		MemSoftLimit: 1,
		Telemetry:    &Telemetry{Metrics: met},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameSummaries(t, "shrunk-vs-ref", ref, sum)
	if met.CacheShrinks.Value() == 0 {
		t.Fatal("watchdog never fired under a 1-byte soft limit")
	}
	if db := met.ClauseDBBytes.Value(); db > sat.DefaultLearnedLimit {
		t.Fatalf("clause DB gauge %d exceeds the default budget", db)
	}
}

// TestIncrementalPanicIsolation injects a panic into one member's
// processing: the run must survive, the victim (and any unemitted
// group neighbors) report Errored with the panic message, and every
// fault stays accounted for.
func TestIncrementalPanicIsolation(t *testing.T) {
	c := gen.CarryLookaheadAdder(4)
	faults := Collapse(c, AllFaults(c))
	victim := faults[len(faults)/2]
	eng := &Engine{Workers: 2}
	eng.testHookPanic = func(f Fault) {
		if f == victim {
			panic("injected region explosion")
		}
	}
	sum, err := eng.RunFaults(context.Background(), c, faults, RunOptions{Incremental: true})
	if err != nil {
		t.Fatalf("RunFaults: %v", err)
	}
	if sum.Errors == 0 {
		t.Fatal("no Errored results after an injected panic")
	}
	if got := sum.Detected + sum.Untestable + sum.Aborted + sum.Errors; got != sum.Total {
		t.Fatalf("faults lost to the panic: %d accounted of %d", got, sum.Total)
	}
	var found bool
	for i := range sum.Results {
		if sum.Results[i].Status == Errored {
			if !strings.Contains(sum.Results[i].Err, "injected region explosion") {
				t.Fatalf("Result.Err = %q", sum.Results[i].Err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no Errored result in the summary")
	}
}

// TestIncrementalRetryTiers forces aborts with a tiny budget and
// requires the incremental retry path (re-grouped by region) to
// recover them, matching the unlimited incremental run's verdicts.
func TestIncrementalRetryTiers(t *testing.T) {
	c := gen.ArrayMultiplier(3)
	ref := runIncremental(t, c, DefaultGroupMax, 2)
	eng := &Engine{VerifyTests: true, Workers: 2}
	sum, err := eng.Run(context.Background(), c, RunOptions{
		Collapse: true, DropDetected: true,
		RPTBatches: DefaultRPTBatches, Seed: 42,
		Incremental:    true,
		PerFaultBudget: 50 * time.Microsecond,
		RetryTiers:     8,
		RetryBackoff:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Aborted > 0 {
		t.Skipf("budget too tight even after retries on this machine (%d aborted)", sum.Aborted)
	}
	if sum.Detected+sum.DroppedByFaultSim != ref.Detected+ref.DroppedByFaultSim ||
		sum.Untestable != ref.Untestable {
		t.Fatalf("retried run (D%d+drop%d U%d) vs reference (D%d+drop%d U%d)",
			sum.Detected, sum.DroppedByFaultSim, sum.Untestable,
			ref.Detected, ref.DroppedByFaultSim, ref.Untestable)
	}
}

// TestIncrementalTelemetryCounters checks the new counters flow: a
// grouped run on a multi-fault region must report clauses kept across
// calls and a positive clause-DB high-water mark.
func TestIncrementalTelemetryCounters(t *testing.T) {
	c := gen.ArrayMultiplier(3)
	reg := obs.NewRegistry()
	met := NewMetrics(reg, 1)
	eng := &Engine{Workers: 1}
	sum, err := eng.Run(context.Background(), c, RunOptions{
		Collapse: true, Incremental: true,
		Telemetry: &Telemetry{Metrics: met},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.SolverTotals.LearnedKept == 0 {
		t.Fatal("no learned clauses survived across calls on a multiplier")
	}
	if met.LearnedKept.Value() != sum.SolverTotals.LearnedKept {
		t.Fatalf("atpg_learned_kept_total = %d, summary %d",
			met.LearnedKept.Value(), sum.SolverTotals.LearnedKept)
	}
	if met.LearnedReused.Value() != sum.SolverTotals.LearnedReused {
		t.Fatalf("atpg_learned_reused_total = %d, summary %d",
			met.LearnedReused.Value(), sum.SolverTotals.LearnedReused)
	}
	if met.ClauseDBBytes.Value() <= 0 {
		t.Fatal("atpg_clause_db_bytes gauge never set")
	}
	var grouped bool
	for _, r := range sum.Results {
		if r.Group > 0 && r.GroupSize > 1 {
			grouped = true
		}
	}
	if !grouped {
		t.Fatal("no multi-member group in the results")
	}
}
