package atpg

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/obs"
	"atpgeasy/internal/sat"
)

// decodeTrace parses a JSONL buffer into events.
func decodeTrace(t *testing.T, buf *bytes.Buffer) []TraceEvent {
	t.Helper()
	var evs []TraceEvent
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestTelemetryEndToEnd: a fully instrumented run must agree with its own
// summary — metrics counters, trace events and the final progress
// snapshot all describe the same run.
func TestTelemetryEndToEnd(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	reg := obs.NewRegistry()
	m := NewMetrics(reg, 4)
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf)
	var mu sync.Mutex
	var progresses []Progress
	tel := &Telemetry{
		Metrics:       m,
		Trace:         tr,
		ProgressEvery: time.Millisecond,
		OnProgress: func(p Progress) {
			mu.Lock()
			progresses = append(progresses, p)
			mu.Unlock()
		},
	}
	eng := &Engine{VerifyTests: true, Workers: 4}
	sum, err := eng.Run(context.Background(), c, RunOptions{
		Collapse: true, DropDetected: true, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Metrics must match the summary exactly.
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"faults_done", m.FaultsDone.Value(), int64(sum.Total)},
		{"detected", m.FaultsDetected.Value(), int64(sum.Detected)},
		{"untestable", m.FaultsUntestable.Value(), int64(sum.Untestable)},
		{"aborted", m.FaultsAborted.Value(), int64(sum.Aborted)},
		{"dropped", m.FaultsDropped.Value(), int64(sum.DroppedByFaultSim)},
		{"vectors", m.Vectors.Value(), int64(len(sum.Vectors))},
		{"solver_nodes", m.SolverNodes.Value(), sum.SolverTotals.Nodes},
		{"solver_decisions", m.SolverDecisions.Value(), sum.SolverTotals.Decisions},
		{"solver_propagations", m.SolverPropagations.Value(), sum.SolverTotals.Propagations},
		{"solver_conflicts", m.SolverConflicts.Value(), sum.SolverTotals.Conflicts},
		{"phase_solve_ns", m.PhaseSolveNS.Value(), sum.Phases.Solve.Nanoseconds()},
		{"phase_build_ns", m.PhaseBuildNS.Value(), sum.Phases.Build.Nanoseconds()},
		{"phase_faultsim_ns", m.PhaseFaultSimNS.Value(), sum.Phases.FaultSim.Nanoseconds()},
		{"hist_solve_count", m.HistSolveNS.Count(), int64(len(sum.Results))},
		{"faults_gauge", m.FaultsTotal.Value(), int64(sum.Total)},
		{"workers_gauge", m.Workers.Value(), 4},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("metric %s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}

	// The trace must carry exactly one "fault" event per fault: solved
	// faults from their worker, dropped faults from the flush that killed
	// them.
	evs := decodeTrace(t, &buf)
	faultEvents := map[string]int{}
	flushes := 0
	for _, ev := range evs {
		switch ev.Kind {
		case "fault":
			faultEvents[ev.Fault]++
			if ev.Status == "" {
				t.Errorf("fault event without status: %+v", ev)
			}
			if ev.Status != "dropped" && ev.Solver == nil {
				t.Errorf("solved fault event without solver stats: %+v", ev)
			}
		case "faultsim":
			flushes++
			if ev.Batch <= 0 {
				t.Errorf("flush with batch %d", ev.Batch)
			}
		default:
			t.Errorf("unknown event kind %q", ev.Kind)
		}
	}
	if len(faultEvents) != sum.Total {
		t.Errorf("%d distinct fault events, want %d", len(faultEvents), sum.Total)
	}
	for name, n := range faultEvents {
		if n != 1 {
			t.Errorf("fault %s traced %d times", name, n)
		}
	}
	if sum.DroppedByFaultSim > 0 && flushes == 0 {
		t.Error("faults were dropped but no faultsim event was traced")
	}

	// The final progress snapshot is always emitted and must agree with
	// the summary.
	mu.Lock()
	defer mu.Unlock()
	if len(progresses) == 0 {
		t.Fatal("no progress snapshots")
	}
	last := progresses[len(progresses)-1]
	if last.Done != sum.Total || last.Total != sum.Total {
		t.Errorf("final progress %d/%d, want %d/%d", last.Done, last.Total, sum.Total, sum.Total)
	}
	if last.Coverage() != sum.Coverage() {
		t.Errorf("final progress coverage %v, summary %v", last.Coverage(), sum.Coverage())
	}
	if !strings.Contains(last.String(), "coverage") {
		t.Errorf("progress line %q", last.String())
	}
}

// TestSummaryPhases: the per-phase breakdown must be self-consistent —
// Solve equals the summed SAT time, Build is positive, and with fault
// dropping disabled FaultSim is zero.
func TestSummaryPhases(t *testing.T) {
	c := gen.CarryLookaheadAdder(4)
	eng := &Engine{Workers: 2}
	sum, err := eng.Run(context.Background(), c, RunOptions{Collapse: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Phases.Solve != sum.Elapsed {
		t.Errorf("Phases.Solve %v != Elapsed %v", sum.Phases.Solve, sum.Elapsed)
	}
	if sum.Phases.Build <= 0 {
		t.Errorf("Phases.Build = %v, want > 0", sum.Phases.Build)
	}
	if sum.Phases.FaultSim != 0 {
		t.Errorf("Phases.FaultSim = %v without DropDetected", sum.Phases.FaultSim)
	}
	var build time.Duration
	for _, r := range sum.Results {
		build += r.BuildElapsed
	}
	if build != sum.Phases.Build {
		t.Errorf("summed BuildElapsed %v != Phases.Build %v", build, sum.Phases.Build)
	}
}

// TestWallElapsedMonotonic: WallElapsed must be positive and bound every
// per-fault solve interval under both serial and parallel runs; under -j 1
// the summed SAT time can never exceed the wall clock.
func TestWallElapsedMonotonic(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	for _, workers := range []int{1, 4} {
		eng := &Engine{Workers: workers}
		sum, err := eng.Run(context.Background(), c, RunOptions{Collapse: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sum.WallElapsed <= 0 {
			t.Fatalf("workers=%d: WallElapsed = %v", workers, sum.WallElapsed)
		}
		for _, r := range sum.Results {
			if r.Elapsed > sum.WallElapsed {
				t.Errorf("workers=%d: fault %s solve %v exceeds wall %v",
					workers, r.Fault.Name(c), r.Elapsed, sum.WallElapsed)
			}
		}
		if workers == 1 && sum.Elapsed > sum.WallElapsed {
			t.Errorf("serial run: summed SAT time %v exceeds wall time %v",
				sum.Elapsed, sum.WallElapsed)
		}
	}
}

// TestCachingSolverCancelMidRun: cancelling the run context must reach
// the Caching solver's Limits.Cancel check mid-search and drain promptly
// (PR 1 covered the deadline path; this is the cancel-channel path
// threaded through the engine).
func TestCachingSolverCancelMidRun(t *testing.T) {
	c := gen.ArrayMultiplier(5)
	eng := &Engine{Solver: &sat.Caching{}, Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := eng.Run(ctx, c, RunOptions{Collapse: true})
		done <- err
	}()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled Caching run did not drain")
	}
	if e := time.Since(start); e > 20*time.Second {
		t.Errorf("drain took %v", e)
	}
}

// TestTelemetryProgressOnly: a telemetry config with only a progress
// callback (no metrics, no trace) must work and fire the final snapshot.
func TestTelemetryProgressOnly(t *testing.T) {
	c := gen.CarryLookaheadAdder(4)
	var mu sync.Mutex
	calls := 0
	tel := &Telemetry{OnProgress: func(Progress) { mu.Lock(); calls++; mu.Unlock() }}
	eng := &Engine{Workers: 2}
	if _, err := eng.Run(context.Background(), c, RunOptions{Collapse: true, Telemetry: tel}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Error("OnProgress never called")
	}
}
