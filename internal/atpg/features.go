package atpg

// Per-fault structural features for the effort log: everything here is
// computable without solving — fanout-cone shape, the size of the
// sub-circuit the miter is built from, SCOAP testability, and (behind
// RunOptions.EffortWidth, since it runs the MLA heuristic per fault) the
// estimated cut-width of the fault's sub-circuit, the source paper's
// headline predictor. The effort report correlates each column against
// the observed solver effort.

import (
	"sync"

	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/mla"
)

// FaultFeatures is the structural feature vector of one fault, embedded
// flat into its EffortRecord.
type FaultFeatures struct {
	// ConeSize is the node count of the fault net's transitive fanout —
	// the effort-ordered dispatcher's priority key.
	ConeSize int32 `json:"cone_size"`
	// ConeDepth is the number of logic levels the fanout cone spans, from
	// the fault net to its deepest reachable node.
	ConeDepth int32 `json:"cone_depth"`
	// Gates is the gate count (non-input, non-constant nodes) of the
	// fault's sub-circuit — fanin of the fanout cone, the structure the
	// miter is actually built from, so it tracks instance size (Figure 1's
	// x-axis) without encoding anything.
	Gates int32 `json:"gates"`
	// CC0/CC1/CO are the fault net's SCOAP measures (see ComputeScoap).
	CC0 int32 `json:"cc0"`
	CC1 int32 `json:"cc1"`
	CO  int32 `json:"co"`
	// CutWidth is the MLA-estimated cut-width of the fault's sub-circuit
	// — the paper's Figure 8 quantity. −1 when RunOptions.EffortWidth is
	// off (it costs a layout heuristic per fault).
	CutWidth int32 `json:"cut_width"`
}

// featureExtractor computes FaultFeatures with reused mark/stack buffers
// so the per-fault cost is two DFS walks. One extractor per goroutine;
// the Scoap table is shared read-only.
type featureExtractor struct {
	c     *logic.Circuit
	scoap *Scoap
	width bool

	mark  []int
	stamp int
	stack []int
	cone  []int // fanout cone of the current fault, reused
}

func newFeatureExtractor(c *logic.Circuit, scoap *Scoap, width bool) *featureExtractor {
	return &featureExtractor{c: c, scoap: scoap, width: width, mark: make([]int, len(c.Nodes))}
}

func (x *featureExtractor) extract(f Fault) FaultFeatures {
	c := x.c
	ft := FaultFeatures{
		CC0:      x.scoap.CC0[f.Net],
		CC1:      x.scoap.CC1[f.Net],
		CO:       x.scoap.CO[f.Net],
		CutWidth: -1,
	}

	// Fanout cone DFS: size and deepest level reached.
	x.stamp++
	x.cone = append(x.cone[:0], f.Net)
	x.mark[f.Net] = x.stamp
	maxLevel := c.Level(f.Net)
	x.stack = append(x.stack[:0], f.Net)
	for len(x.stack) > 0 {
		n := x.stack[len(x.stack)-1]
		x.stack = x.stack[:len(x.stack)-1]
		if lv := c.Level(n); lv > maxLevel {
			maxLevel = lv
		}
		for _, o := range c.Nodes[n].Fanout {
			if x.mark[o] != x.stamp {
				x.mark[o] = x.stamp
				x.cone = append(x.cone, o)
				x.stack = append(x.stack, o)
			}
		}
	}
	ft.ConeSize = int32(len(x.cone))
	ft.ConeDepth = int32(maxLevel-c.Level(f.Net)) + 1

	// Fanin DFS from the whole cone (same stamp: cone nodes are already
	// marked, so the walk only adds the side inputs' support) counts the
	// gates of the sub-circuit the miter is built from.
	gates := int32(0)
	for _, n := range x.cone {
		if c.Nodes[n].Type >= logic.Buf {
			gates++
		}
		x.stack = append(x.stack, c.Nodes[n].Fanin...)
	}
	for len(x.stack) > 0 {
		n := x.stack[len(x.stack)-1]
		x.stack = x.stack[:len(x.stack)-1]
		if x.mark[n] == x.stamp {
			continue
		}
		x.mark[n] = x.stamp
		if c.Nodes[n].Type >= logic.Buf {
			gates++
		}
		x.stack = append(x.stack, c.Nodes[n].Fanin...)
	}
	ft.Gates = gates

	if x.width {
		if sub, err := SubCircuit(c, f); err == nil {
			w, _ := mla.EstimateCutWidth(hypergraph.FromCircuit(sub.Circuit), mla.Options{})
			ft.CutWidth = int32(w)
		}
	}
	return ft
}

// computeFeatures extracts every fault's features, sharded across
// workers goroutines (each with its own extractor over the shared SCOAP
// table). Runs before the pre-phase so RPT-decided faults get feature
// vectors too.
func computeFeatures(c *logic.Circuit, faults []Fault, width bool, workers int) []FaultFeatures {
	feats := make([]FaultFeatures, len(faults))
	scoap := ComputeScoap(c)
	if workers < 1 {
		workers = 1
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	var wg sync.WaitGroup
	chunk := (len(faults) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(faults) {
			break
		}
		hi := min(lo+chunk, len(faults))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			x := newFeatureExtractor(c, scoap, width)
			for i := lo; i < hi; i++ {
				feats[i] = x.extract(faults[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return feats
}
