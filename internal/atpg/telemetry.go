package atpg

import (
	"fmt"
	"time"

	"atpgeasy/internal/obs"
	"atpgeasy/internal/sat"
)

// Telemetry bundles the observability sinks of one engine run. Every
// field is optional; a nil *Telemetry (the default) disables all
// instrumentation, leaving only a nil check on the per-fault path.
type Telemetry struct {
	// Metrics receives atomic counter/gauge/histogram updates; build one
	// over an obs.Registry with NewMetrics.
	Metrics *Metrics
	// Trace receives one structured TraceEvent per fault (solved or
	// dropped) plus one per fault-simulation flush.
	Trace *obs.Trace
	// Spans, when non-nil, mints hierarchical spans over the engine's
	// control flow (run → phase → dispatch-chunk/RPT-batch/retry-tier →
	// fault) and emits them to the tracer's sink as "kind":"span"
	// records. Build one over the Trace sink with obs.NewTracer.
	Spans *obs.Tracer
	// Ring, when non-nil, replaces the engine's built-in flight recorder
	// so the caller can dump it on its own signals (the CLI dumps on
	// SIGINT). The engine always keeps a recorder — a nil Ring just makes
	// it invisible outside panic/watchdog dumps.
	Ring *obs.Ring
	// ProgressEvery, when positive together with OnProgress, invokes
	// OnProgress with a run snapshot on that period. Regardless of the
	// period, OnProgress (if set) is called once more when the run ends.
	ProgressEvery time.Duration
	OnProgress    func(Progress)
}

// hasSpans reports whether span instrumentation is live — call sites use
// it to skip work (fault-name formatting) that only feeds span records.
func (t *Telemetry) hasSpans() bool { return t != nil && t.Spans != nil }

// startSpan begins a span when span tracing is enabled; otherwise it
// returns the inert zero Span.
func (t *Telemetry) startSpan(name string, parent obs.SpanContext) obs.Span {
	if t == nil || t.Spans == nil {
		return obs.Span{}
	}
	return t.Spans.Start(name, parent)
}

// Progress is a point-in-time snapshot of a running RunFaults call.
type Progress struct {
	Circuit string
	// Done counts faults with a verdict: solved (detected, untestable or
	// aborted), dropped-by-simulation, or detected by the random-pattern
	// pre-phase.
	Done, Total                            int
	Detected, Untestable, Aborted, Dropped int
	// Errors counts faults whose processing panicked (recovered, run
	// continued).
	Errors int
	// RPTDetected counts faults detected by the random-pattern pre-phase.
	RPTDetected int
	// RetryPending counts aborted faults still owed a retry tier: they
	// are in Done (the sweep reported them aborted) but the run is not
	// over until the escalation phase has re-solved them, so ETA counts
	// them as remaining work.
	RetryPending int
	Vectors      int
	Elapsed      time.Duration
}

// Coverage returns the running fault coverage over testable faults,
// counting dropped and RPT-detected faults as covered.
func (p Progress) Coverage() float64 {
	testable := p.Total - p.Untestable
	if testable == 0 {
		return 1
	}
	return float64(p.Detected+p.Dropped+p.RPTDetected) / float64(testable)
}

// ETA linearly extrapolates the remaining wall time from the rate so
// far; zero until at least one fault is done. Retry-pending faults count
// as remaining work: the old Total−Done formula hit zero at the end of
// the main sweep and then sat silent through the whole retry phase.
func (p Progress) ETA() time.Duration {
	remaining := p.Total - p.Done + p.RetryPending
	if p.Done == 0 || remaining <= 0 {
		return 0
	}
	per := float64(p.Elapsed) / float64(p.Done)
	return time.Duration(per * float64(remaining)).Round(time.Millisecond)
}

// String renders the standard one-line progress report.
func (p Progress) String() string {
	s := fmt.Sprintf("%d/%d faults (%.1f%%)  detected %d  rpt %d  dropped %d  untestable %d  aborted %d  coverage %.1f%%  elapsed %v  eta %v",
		p.Done, p.Total, 100*float64(p.Done)/float64(max(p.Total, 1)),
		p.Detected, p.RPTDetected, p.Dropped, p.Untestable, p.Aborted,
		100*p.Coverage(), p.Elapsed.Round(time.Millisecond), p.ETA())
	if p.RetryPending > 0 {
		s += fmt.Sprintf("  retrying %d", p.RetryPending)
	}
	return s
}

// Metrics is the engine's metric set over an obs.Registry. Counters are
// updated once per fault verdict (never inside the solver's search loop),
// with the solver work counters sharded per worker so parallel runs never
// contend on a cache line.
type Metrics struct {
	FaultsTotal *obs.Gauge // faults in the current run
	Workers     *obs.Gauge

	FaultsDone       *obs.Counter
	FaultsDetected   *obs.Counter
	FaultsUntestable *obs.Counter
	FaultsAborted    *obs.Counter
	FaultsErrored    *obs.Counter
	FaultsDropped    *obs.Counter
	RPTDetected      *obs.Counter
	RPTBatches       *obs.Counter
	Vectors          *obs.Counter
	// SolvesWasted counts speculative solves discarded at commit because
	// an earlier vector dropped the fault (see Summary.WastedSolves).
	SolvesWasted *obs.Counter

	// FrontierStallNS accumulates commit-frontier stall time: wall time
	// the deterministic commit order spent blocked on one in-flight solve
	// while later results sat published behind it (PR 6 left this dark).
	// HistFrontierStall is the per-adoption stall distribution.
	FrontierStallNS   *obs.Counter
	HistFrontierStall *obs.Histogram

	// Resilience counters: recovered per-fault panics, watchdog-driven
	// cache halvings, and the retry escalation broken down by tier.
	FaultPanics    *obs.Counter
	CacheShrinks   *obs.Counter
	RetryAttempts  *obs.LabeledCounter
	RetryRecovered *obs.LabeledCounter

	// Routed portfolio dispatch: faults decided per backend ("podem",
	// "caching", "cdcl", "faultsim") and the per-backend solve wall,
	// both counted at commit adoption so they are worker-count-stable.
	RoutedTotal    *obs.LabeledCounter
	BackendSolveNS *obs.LabeledCounter

	PhaseRPTNS      *obs.Counter
	PhaseBuildNS    *obs.Counter
	PhaseSolveNS    *obs.Counter
	PhaseFaultSimNS *obs.Counter

	SolverNodes          *obs.ShardedCounter
	SolverDecisions      *obs.ShardedCounter
	SolverPropagations   *obs.ShardedCounter
	SolverConflicts      *obs.ShardedCounter
	SolverCacheHits      *obs.ShardedCounter
	SolverCacheMisses    *obs.ShardedCounter
	SolverCacheEvictions *obs.ShardedCounter

	// SolverCacheBytes tracks the largest per-worker sub-formula cache
	// footprint seen so far (a high-water mark, not a sum).
	SolverCacheBytes *obs.Gauge

	// Incremental region-grouped solving: clauses alive at call start,
	// retained clauses used on conflict-analysis chains, and the largest
	// per-worker learned-clause database (a high-water mark).
	LearnedKept   *obs.ShardedCounter
	LearnedReused *obs.ShardedCounter
	ClauseDBBytes *obs.Gauge
	HistGroupSize *obs.Histogram

	HistSolveNS         *obs.Histogram
	HistSolverNodes     *obs.Histogram
	HistCacheHitPermill *obs.Histogram

	CoveragePermille *obs.Gauge
}

// NewMetrics registers the engine metric set (prefix atpg_) on reg and
// returns it. shards is the expected worker count for the sharded solver
// counters (0 = 1).
func NewMetrics(reg *obs.Registry, shards int) *Metrics {
	if shards < 1 {
		shards = 1
	}
	return &Metrics{
		FaultsTotal: reg.Gauge("atpg_faults", "faults in the current run"),
		Workers:     reg.Gauge("atpg_workers", "parallel fault workers"),

		FaultsDone:       reg.Counter("atpg_faults_done_total", "faults with a verdict (solved or dropped)"),
		FaultsDetected:   reg.Counter("atpg_faults_detected_total", "faults with a generated test vector"),
		FaultsUntestable: reg.Counter("atpg_faults_untestable_total", "faults proved untestable"),
		FaultsAborted:    reg.Counter("atpg_faults_aborted_total", "faults aborted on a resource limit"),
		FaultsErrored:    reg.Counter("atpg_faults_errored_total", "faults whose processing panicked (recovered)"),
		FaultsDropped:    reg.Counter("atpg_faults_dropped_total", "faults dropped by fault simulation"),
		RPTDetected:      reg.Counter("atpg_rpt_detected_total", "faults detected by the random-pattern pre-phase"),
		RPTBatches:       reg.Counter("atpg_rpt_batches_total", "random-pattern batches simulated"),
		Vectors:          reg.Counter("atpg_vectors_total", "test vectors generated"),
		SolvesWasted:     reg.Counter("atpg_solves_wasted_total", "speculative solves discarded because the fault was dropped first"),

		FrontierStallNS:   reg.Counter("atpg_frontier_stall_ns_total", "commit-frontier time blocked on an in-flight solve"),
		HistFrontierStall: reg.Histogram("atpg_frontier_stall_ns", "per-adoption commit-frontier stall (log2 ns buckets)"),

		FaultPanics:    reg.Counter("atpg_fault_panics_total", "per-fault panics recovered by the worker barrier"),
		CacheShrinks:   reg.Counter("atpg_cache_shrinks_total", "solver cache halvings forced by the memory watchdog"),
		RetryAttempts:  reg.LabeledCounter("atpg_retry_attempts_total", "aborted faults re-run by the retry phase", "tier"),
		RetryRecovered: reg.LabeledCounter("atpg_retry_recovered_total", "faults decided by a retry tier", "tier"),

		RoutedTotal:    reg.LabeledCounter("atpg_routed_total", "faults decided per portfolio backend (routed runs)", "backend"),
		BackendSolveNS: reg.LabeledCounter("atpg_backend_solve_ns_total", "solve wall time per portfolio backend (routed runs)", "backend"),

		PhaseRPTNS:      reg.Counter("atpg_phase_rpt_ns_total", "random-pattern pre-phase time"),
		PhaseBuildNS:    reg.Counter("atpg_phase_build_ns_total", "miter construction + CNF encoding time"),
		PhaseSolveNS:    reg.Counter("atpg_phase_solve_ns_total", "SAT solving time"),
		PhaseFaultSimNS: reg.Counter("atpg_phase_faultsim_ns_total", "fault-simulation flush time"),

		SolverNodes:          reg.ShardedCounter("atpg_solver_nodes_total", "backtracking nodes visited", shards),
		SolverDecisions:      reg.ShardedCounter("atpg_solver_decisions_total", "solver decisions", shards),
		SolverPropagations:   reg.ShardedCounter("atpg_solver_propagations_total", "unit propagations", shards),
		SolverConflicts:      reg.ShardedCounter("atpg_solver_conflicts_total", "solver conflicts", shards),
		SolverCacheHits:      reg.ShardedCounter("atpg_solver_cache_hits_total", "sub-formula cache hits", shards),
		SolverCacheMisses:    reg.ShardedCounter("atpg_solver_cache_misses_total", "sub-formula cache misses", shards),
		SolverCacheEvictions: reg.ShardedCounter("atpg_solver_cache_evictions_total", "sub-formula cache evictions", shards),

		SolverCacheBytes: reg.Gauge("atpg_solver_cache_bytes", "largest per-worker sub-formula cache footprint, bytes"),

		LearnedKept:   reg.ShardedCounter("atpg_learned_kept_total", "learned clauses alive at solver call start (incremental mode)", shards),
		LearnedReused: reg.ShardedCounter("atpg_learned_reused_total", "retained learned clauses used by later conflict analyses", shards),
		ClauseDBBytes: reg.Gauge("atpg_clause_db_bytes", "largest per-worker learned-clause database, bytes"),
		HistGroupSize: reg.Histogram("atpg_group_size", "region-group member count (log2 buckets)"),

		HistSolveNS:         reg.Histogram("atpg_fault_solve_ns", "per-fault SAT solve time (log2 ns buckets)"),
		HistSolverNodes:     reg.Histogram("atpg_fault_solver_nodes", "per-fault solver nodes (log2 buckets)"),
		HistCacheHitPermill: reg.Histogram("atpg_fault_cache_hit_permille", "per-fault cache hits per 1000 nodes"),

		CoveragePermille: reg.Gauge("atpg_coverage_permille", "running fault coverage over testable faults, ‰"),
	}
}

// TraceEvent is one line of the per-fault JSONL trace. Kind is "fault"
// for a per-fault verdict (solved, dropped or rpt-detected), "faultsim"
// for one fault-simulation flush, and "rpt" for one random-pattern batch.
type TraceEvent struct {
	Kind   string `json:"kind"`
	TimeNS int64  `json:"t_ns"` // wall time since the run started
	Worker int    `json:"worker"`

	// Fault verdict fields (Kind == "fault").
	Fault   string     `json:"fault,omitempty"`
	Status  string     `json:"status,omitempty"` // detected|untestable|aborted|dropped
	Vars    int        `json:"vars,omitempty"`
	Clauses int        `json:"clauses,omitempty"`
	BuildNS int64      `json:"build_ns,omitempty"`
	SolveNS int64      `json:"solve_ns,omitempty"`
	Solver  *sat.Stats `json:"solver,omitempty"`

	// Flush fields (Kind == "faultsim"); "rpt" batch events reuse Batch
	// (patterns simulated), Dropped (faults newly detected) and SimNS.
	Batch   int   `json:"batch,omitempty"`   // vectors simulated
	Dropped int   `json:"dropped,omitempty"` // faults newly dropped
	SimNS   int64 `json:"sim_ns,omitempty"`

	// Kept is the number of patterns of an "rpt" batch that detected a
	// new fault and were kept as test vectors.
	Kept int `json:"kept,omitempty"`

	// Error and Stack carry a recovered per-fault panic (Status "error"):
	// the panic message and the captured goroutine stack.
	Error string `json:"error,omitempty"`
	Stack string `json:"stack,omitempty"`
	// Tier labels a "fault" event re-solved by the retry phase with its
	// escalation tier (0 = main sweep).
	Tier int `json:"tier,omitempty"`
	// CacheCap is the new per-worker cache byte cap of a "shrink" event.
	CacheCap int64 `json:"cache_cap,omitempty"`
}

// begin records the run shape at start time.
func (t *Telemetry) begin(total, workers int) {
	if t == nil || t.Metrics == nil {
		return
	}
	t.Metrics.FaultsTotal.Set(int64(total))
	t.Metrics.Workers.Set(int64(workers))
}

// observeFault records one solved fault's verdict, phase timings and
// solver statistics into the metric set and the trace.
func (t *Telemetry) observeFault(worker int, name string, res *Result, sinceStart time.Duration) {
	if t == nil {
		return
	}
	if m := t.Metrics; m != nil {
		m.FaultsDone.Inc()
		switch res.Status {
		case Detected:
			m.FaultsDetected.Inc()
			m.Vectors.Inc()
		case Untestable:
			m.FaultsUntestable.Inc()
		case Aborted:
			m.FaultsAborted.Inc()
		case Errored:
			m.FaultsErrored.Inc()
			m.FaultPanics.Inc()
		}
		t.observeSolverWork(worker, res)
		m.HistSolveNS.Observe(res.Elapsed.Nanoseconds())
		m.HistSolverNodes.Observe(res.SolverStats.Nodes)
		if res.SolverStats.Nodes > 0 {
			m.HistCacheHitPermill.Observe(1000 * res.SolverStats.CacheHits / res.SolverStats.Nodes)
		}
	}
	if t.Trace != nil {
		st := res.SolverStats
		_ = t.Trace.Emit(TraceEvent{
			Kind: "fault", TimeNS: sinceStart.Nanoseconds(), Worker: worker,
			Fault: name, Status: res.Status.String(),
			Vars: res.Vars, Clauses: res.Clauses,
			BuildNS: res.BuildElapsed.Nanoseconds(), SolveNS: res.Elapsed.Nanoseconds(),
			Solver: &st,
			Error:  res.Err, Stack: res.Stack,
		})
	}
}

// observeSolverWork records a result's phase timings and solver search
// counters (shared by the main sweep and the retry phase).
func (t *Telemetry) observeSolverWork(worker int, res *Result) {
	m := t.Metrics
	m.PhaseBuildNS.Add(res.BuildElapsed.Nanoseconds())
	m.PhaseSolveNS.Add(res.Elapsed.Nanoseconds())
	st := res.SolverStats
	m.SolverNodes.Add(worker, st.Nodes)
	m.SolverDecisions.Add(worker, st.Decisions)
	m.SolverPropagations.Add(worker, st.Propagations)
	m.SolverConflicts.Add(worker, st.Conflicts)
	m.SolverCacheHits.Add(worker, st.CacheHits)
	m.SolverCacheMisses.Add(worker, st.CacheMisses)
	m.SolverCacheEvictions.Add(worker, st.CacheEvictions)
	if st.CacheBytes > 0 {
		m.SolverCacheBytes.SetMax(st.CacheBytes)
	}
	m.LearnedKept.Add(worker, st.LearnedKept)
	m.LearnedReused.Add(worker, st.LearnedReused)
	if st.ClauseDBBytes > 0 {
		m.ClauseDBBytes.SetMax(st.ClauseDBBytes)
	}
}

// backendFaultSim labels faults a routed run decided without any solver
// — dropped by fault simulation of earlier committed vectors.
const backendFaultSim = "faultsim"

// observeRouted counts one routed verdict against its deciding backend
// and accumulates that backend's solve wall time.
func (t *Telemetry) observeRouted(backend string, solveNS int64) {
	if t == nil || t.Metrics == nil {
		return
	}
	t.Metrics.RoutedTotal.With(backend).Inc()
	if solveNS > 0 {
		t.Metrics.BackendSolveNS.With(backend).Add(solveNS)
	}
}

// observeGroups records the region-group size distribution of an
// incremental dispatch order.
func (t *Telemetry) observeGroups(groups []faultGroup) {
	if t == nil || t.Metrics == nil {
		return
	}
	for i := range groups {
		t.Metrics.HistGroupSize.Observe(int64(groups[i].end - groups[i].start))
	}
}

// observeRetry records one retry-tier re-solve. Verdict counters from
// the main sweep are left alone (the fault was already counted done and
// aborted there); the per-tier counters carry the escalation story, and
// a recovered detection still counts its new vector.
func (t *Telemetry) observeRetry(worker int, name string, res *Result, tier int, sinceStart time.Duration) {
	if t == nil {
		return
	}
	if m := t.Metrics; m != nil {
		label := fmt.Sprintf("%d", tier)
		m.RetryAttempts.With(label).Inc()
		if res.Status != Aborted {
			m.RetryRecovered.With(label).Inc()
		}
		if res.Status == Detected {
			m.Vectors.Inc()
		}
		if res.Status == Errored {
			m.FaultsErrored.Inc()
			m.FaultPanics.Inc()
		}
		t.observeSolverWork(worker, res)
	}
	if t.Trace != nil {
		st := res.SolverStats
		_ = t.Trace.Emit(TraceEvent{
			Kind: "fault", TimeNS: sinceStart.Nanoseconds(), Worker: worker,
			Fault: name, Status: res.Status.String(), Tier: tier,
			Vars: res.Vars, Clauses: res.Clauses,
			BuildNS: res.BuildElapsed.Nanoseconds(), SolveNS: res.Elapsed.Nanoseconds(),
			Solver: &st,
			Error:  res.Err, Stack: res.Stack,
		})
	}
}

// observeStall records one resolved commit-frontier stall.
func (t *Telemetry) observeStall(d time.Duration) {
	if t == nil || t.Metrics == nil {
		return
	}
	t.Metrics.FrontierStallNS.Add(d.Nanoseconds())
	t.Metrics.HistFrontierStall.Observe(d.Nanoseconds())
}

// ringDump is the JSONL form of a flight-recorder dump on the trace
// sink: the trigger and the surviving events in one record.
type ringDump struct {
	Kind   string          `json:"kind"` // "ring-dump"
	Reason string          `json:"reason"`
	Events []obs.RingEvent `json:"events"`
}

// observeRingDump writes the flight recorder's surviving events to the
// trace sink, tagged with what triggered the dump.
func (t *Telemetry) observeRingDump(reason string, r *obs.Ring) {
	if t == nil || t.Trace == nil || r == nil {
		return
	}
	_ = t.Trace.Emit(ringDump{Kind: "ring-dump", Reason: reason, Events: r.Snapshot()})
}

// observeShrink records one watchdog-forced cache halving.
func (t *Telemetry) observeShrink(worker int, newCap int64, sinceStart time.Duration) {
	if t == nil {
		return
	}
	if t.Metrics != nil {
		t.Metrics.CacheShrinks.Inc()
	}
	if t.Trace != nil {
		_ = t.Trace.Emit(TraceEvent{
			Kind: "shrink", TimeNS: sinceStart.Nanoseconds(), Worker: worker,
			CacheCap: newCap,
		})
	}
}

// observeFlush records one fault-simulation flush and the faults it
// dropped. droppedNames is populated only when tracing (the flush path
// stays allocation-free otherwise), so the metric counters take the
// dropped count separately.
func (t *Telemetry) observeFlush(worker, batch, dropped int, droppedNames []string, simTime, sinceStart time.Duration) {
	if t == nil {
		return
	}
	if m := t.Metrics; m != nil {
		m.FaultsDone.Add(int64(dropped))
		m.FaultsDropped.Add(int64(dropped))
		m.PhaseFaultSimNS.Add(simTime.Nanoseconds())
	}
	if t.Trace != nil {
		_ = t.Trace.Emit(TraceEvent{
			Kind: "faultsim", TimeNS: sinceStart.Nanoseconds(), Worker: worker,
			Batch: batch, Dropped: dropped, SimNS: simTime.Nanoseconds(),
		})
		for _, name := range droppedNames {
			_ = t.Trace.Emit(TraceEvent{
				Kind: "fault", TimeNS: sinceStart.Nanoseconds(), Worker: worker,
				Fault: name, Status: "dropped",
			})
		}
	}
}

// observeRPTBatch records one random-pattern batch: the faults it
// detected, the patterns kept as vectors, and the batch simulation time.
func (t *Telemetry) observeRPTBatch(detected, kept int, detectedNames []string, simTime, sinceStart time.Duration) {
	if t == nil {
		return
	}
	if m := t.Metrics; m != nil {
		m.FaultsDone.Add(int64(detected))
		m.RPTDetected.Add(int64(detected))
		m.RPTBatches.Inc()
		m.Vectors.Add(int64(kept))
		m.PhaseRPTNS.Add(simTime.Nanoseconds())
	}
	if t.Trace != nil {
		_ = t.Trace.Emit(TraceEvent{
			Kind: "rpt", TimeNS: sinceStart.Nanoseconds(),
			Batch: 64, Dropped: detected, Kept: kept, SimNS: simTime.Nanoseconds(),
		})
		for _, name := range detectedNames {
			_ = t.Trace.Emit(TraceEvent{
				Kind: "fault", TimeNS: sinceStart.Nanoseconds(),
				Fault: name, Status: "rpt",
			})
		}
	}
}

// observeProgress pushes a snapshot to the progress callback and the
// coverage gauge.
func (t *Telemetry) observeProgress(p Progress) {
	if t == nil {
		return
	}
	if t.Metrics != nil {
		t.Metrics.CoveragePermille.Set(int64(1000 * p.Coverage()))
	}
	if t.OnProgress != nil {
		t.OnProgress(p)
	}
}
