package atpg

import (
	"fmt"
	"time"

	"atpgeasy/internal/faultsim"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/sat"
)

// Status classifies the outcome of test generation for one fault.
type Status int8

// Per-fault outcomes.
const (
	Detected   Status = iota // a test vector was found and verified
	Untestable               // the ATPG-SAT instance is unsatisfiable
	Aborted                  // resource limit hit before a decision
)

// String returns "detected", "untestable" or "aborted".
func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	default:
		return "aborted"
	}
}

// Result is the outcome of test generation for one fault.
type Result struct {
	Fault  Fault
	Status Status
	// Vector is the test over the parent circuit's primary inputs (valid
	// when Status is Detected).
	Vector []bool
	// Vars and Clauses are the ATPG-SAT instance size — the x-axis of
	// Figure 1 of the paper.
	Vars    int
	Clauses int
	// Elapsed is the SAT-solving wall time, Figure 1's y-axis.
	Elapsed time.Duration
	// SolverStats carries the solver's search counters.
	SolverStats sat.Stats
}

// Engine generates tests fault by fault. The zero value uses the DPLL
// solver without limits.
type Engine struct {
	// Solver decides the ATPG-SAT instances; nil means a fresh DPLL per
	// engine.
	Solver sat.Solver
	// VerifyTests re-simulates every generated vector against the fault
	// and reports an internal error if it fails (a cross-check of the
	// whole encode/solve/extract pipeline).
	VerifyTests bool
}

func (e *Engine) solver() sat.Solver {
	if e.Solver != nil {
		return e.Solver
	}
	return &sat.DPLL{}
}

// TestFault runs SAT-based test generation for one fault.
func (e *Engine) TestFault(c *logic.Circuit, f Fault) (Result, error) {
	res := Result{Fault: f}
	m, err := NewMiter(c, f)
	if err == ErrUnobservable {
		res.Status = Untestable
		return res, nil
	}
	if err != nil {
		return res, err
	}
	formula, err := m.Encode()
	if err != nil {
		return res, err
	}
	res.Vars = formula.NumVars
	res.Clauses = formula.NumClauses()
	start := time.Now()
	sol := e.solver().Solve(formula)
	res.Elapsed = time.Since(start)
	res.SolverStats = sol.Stats
	switch sol.Status {
	case sat.Sat:
		res.Status = Detected
		res.Vector = m.ExtractTest(c, sol.Model)
		if e.VerifyTests && !VerifyTest(c, f, res.Vector) {
			return res, fmt.Errorf("atpg: generated vector fails to detect %s (pipeline bug)", f.Name(c))
		}
	case sat.Unsat:
		res.Status = Untestable
	default:
		res.Status = Aborted
	}
	return res, nil
}

// Summary aggregates a full-circuit ATPG run.
type Summary struct {
	Circuit    string
	Total      int
	Detected   int
	Untestable int
	Aborted    int
	// DroppedByFaultSim counts faults covered by earlier vectors and
	// skipped without invoking the solver.
	DroppedByFaultSim int
	// Vectors is the generated (compacted) test set.
	Vectors [][]bool
	// Results holds the per-fault SAT outcomes for the faults that reached
	// the solver, in processing order — the data series of Figure 1.
	Results []Result
	// Elapsed is total SAT time.
	Elapsed time.Duration
}

// Coverage returns detected/(total-untestable): fault coverage over
// testable faults.
func (s Summary) Coverage() float64 {
	testable := s.Total - s.Untestable
	if testable == 0 {
		return 1
	}
	return float64(s.Detected+s.DroppedByFaultSim) / float64(testable)
}

// RunOptions control a full-circuit run.
type RunOptions struct {
	// Collapse applies structural fault collapsing before generation.
	Collapse bool
	// DropDetected fault-simulates each new vector against the remaining
	// faults and skips the covered ones (classic TEGUS flow).
	DropDetected bool
}

// Run generates tests for every stuck-at fault of the circuit.
func (e *Engine) Run(c *logic.Circuit, opt RunOptions) (*Summary, error) {
	faults := AllFaults(c)
	if opt.Collapse {
		faults = Collapse(c, faults)
	}
	return e.RunFaults(c, faults, opt)
}

// RunFaults generates tests for the given fault list.
func (e *Engine) RunFaults(c *logic.Circuit, faults []Fault, opt RunOptions) (*Summary, error) {
	sum := &Summary{Circuit: c.Name, Total: len(faults)}
	dropped := make([]bool, len(faults))
	// pending vectors not yet batch-simulated against the remaining list.
	var pending [][]bool
	flushPending := func(from int) error {
		if !opt.DropDetected || len(pending) == 0 {
			return nil
		}
		words, err := faultsim.PackPatterns(c, pending)
		if err != nil {
			return err
		}
		sim, err := faultsim.NewSimulator(c, words, len(pending))
		if err != nil {
			return err
		}
		for j := from; j < len(faults); j++ {
			if dropped[j] {
				continue
			}
			if sim.Detects(faults[j].Net, faults[j].StuckAt) != 0 {
				dropped[j] = true
				sum.DroppedByFaultSim++
			}
		}
		pending = pending[:0]
		return nil
	}
	for i, f := range faults {
		if dropped[i] {
			continue
		}
		res, err := e.TestFault(c, f)
		if err != nil {
			return nil, err
		}
		sum.Results = append(sum.Results, res)
		sum.Elapsed += res.Elapsed
		switch res.Status {
		case Detected:
			sum.Detected++
			sum.Vectors = append(sum.Vectors, res.Vector)
			if opt.DropDetected {
				pending = append(pending, res.Vector)
				// Flush well below the 64-pattern word width: dropping
				// early saves solver calls on the remaining fault list.
				if len(pending) == 16 {
					if err := flushPending(i + 1); err != nil {
						return nil, err
					}
				}
			}
		case Untestable:
			sum.Untestable++
		case Aborted:
			sum.Aborted++
		}
	}
	if err := flushPending(len(faults)); err != nil {
		return nil, err
	}
	return sum, nil
}
