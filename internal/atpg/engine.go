package atpg

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"atpgeasy/internal/cnf"
	"atpgeasy/internal/faultsim"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/obs"
	"atpgeasy/internal/sat"
)

// Status classifies the outcome of test generation for one fault.
type Status int8

// Per-fault outcomes.
const (
	Detected   Status = iota // a test vector was found and verified
	Untestable               // the ATPG-SAT instance is unsatisfiable
	Aborted                  // resource limit hit before a decision
	Errored                  // the fault's processing panicked; run continued
)

// String returns "detected", "untestable", "aborted" or "error".
func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	case Errored:
		return "error"
	default:
		return "aborted"
	}
}

// ParseStatus inverts Status.String, for replaying journaled verdicts.
func ParseStatus(s string) (Status, bool) {
	switch s {
	case "detected":
		return Detected, true
	case "untestable":
		return Untestable, true
	case "aborted":
		return Aborted, true
	case "error":
		return Errored, true
	}
	return 0, false
}

// Result is the outcome of test generation for one fault.
type Result struct {
	Fault  Fault
	Status Status
	// Vector is the test over the parent circuit's primary inputs (valid
	// when Status is Detected).
	Vector []bool
	// Vars and Clauses are the ATPG-SAT instance size — the x-axis of
	// Figure 1 of the paper.
	Vars    int
	Clauses int
	// Elapsed is the SAT-solving wall time, Figure 1's y-axis.
	Elapsed time.Duration
	// BuildElapsed is the instance-construction wall time (miter + CNF
	// encoding) preceding the solve.
	BuildElapsed time.Duration
	// SolverStats carries the solver's search counters.
	SolverStats sat.Stats
	// Err and Stack describe the recovered panic of an Errored fault: the
	// panic value and the goroutine stack captured at recovery.
	Err   string
	Stack string
}

// Engine generates tests fault by fault. The zero value uses the DPLL
// solver without limits on a pool of GOMAXPROCS workers.
type Engine struct {
	// Solver decides the ATPG-SAT instances; nil means a fresh DPLL per
	// engine. The configuration is treated as read-only: workers derive
	// per-call instances via sat.LimitedSolver when limits apply, so one
	// Engine is safe for concurrent runs.
	Solver sat.Solver
	// VerifyTests re-simulates every generated vector against the fault
	// and reports an internal error if it fails (a cross-check of the
	// whole encode/solve/extract pipeline).
	VerifyTests bool
	// Workers is the number of concurrent fault workers used by Run and
	// RunFaults; 0 means runtime.GOMAXPROCS(0), 1 forces the serial path.
	Workers int
	// DisableScratchReuse turns off the per-worker arenas: solver scratch,
	// CNF encode buffers and fault-simulation buffers are then allocated
	// fresh per fault, as in the pre-arena engine. Verdicts and test
	// vectors are identical either way — the sub-formula cache only prunes
	// UNSAT subtrees, so it can never change which model a search finds
	// first — but node counts may shift slightly because a reused cache
	// table keeps its grown capacity across faults and therefore evicts
	// less. The switch exists for A/B benchmarking and bisection.
	DisableScratchReuse bool

	// testHookPanic, when set by a test, is invoked with each fault just
	// before it is processed and may panic — exercising the per-fault
	// panic-isolation path without planting bugs in production code.
	testHookPanic func(Fault)
	// memCheckEvery overrides the memory watchdog's sampling period in
	// tests (0 = the production 250ms).
	memCheckEvery time.Duration
}

// workerScratch is one worker's allocation arena. A worker processes
// thousands of faults serially, so the solver's search buffers, the CNF
// encoder's clause slab and the fault-simulation pack/simulate buffers
// are reused across them instead of being reallocated per fault.
type workerScratch struct {
	arena *sat.Arena
	enc   *cnf.Encoder
	pack  []uint64
	sim   *faultsim.Simulator
}

// newScratch returns a fresh per-worker scratch, or nil when reuse is
// disabled (nil scratch selects the allocate-per-fault paths everywhere).
func (e *Engine) newScratch() *workerScratch {
	if e.DisableScratchReuse {
		return nil
	}
	return &workerScratch{arena: sat.NewArena(), enc: new(cnf.Encoder)}
}

func (e *Engine) solver() sat.Solver {
	if e.Solver != nil {
		return e.Solver
	}
	return &sat.DPLL{}
}

// solverFor specializes the engine's solver configuration with per-call
// limits and an optional sub-formula cache budget. Solvers that don't
// implement sat.LimitedSolver run unlimited; cacheLimit only applies to
// *sat.Caching.
func (e *Engine) solverFor(lim sat.Limits, cacheLimit int64) sat.Solver {
	s := e.solver()
	if cacheLimit > 0 {
		if cs, ok := s.(*sat.Caching); ok {
			cp := *cs
			cp.CacheLimit = cacheLimit
			s = &cp
		}
	}
	if lim.IsZero() {
		return s
	}
	if ls, ok := s.(sat.LimitedSolver); ok {
		return ls.WithLimits(lim)
	}
	return s
}

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// TestFault runs SAT-based test generation for one fault.
func (e *Engine) TestFault(c *logic.Circuit, f Fault) (Result, error) {
	return e.testFault(c, f, sat.Limits{}, nil, 0)
}

// testFault is TestFault under per-call solver limits (a deadline or
// cancellation surfaces as Status Aborted), optional per-worker scratch
// reuse, and an optional sub-formula cache budget.
func (e *Engine) testFault(c *logic.Circuit, f Fault, lim sat.Limits, ws *workerScratch, cacheLimit int64) (Result, error) {
	res := Result{Fault: f}
	buildStart := time.Now()
	m, err := NewMiter(c, f)
	if err == ErrUnobservable {
		res.Status = Untestable
		res.BuildElapsed = time.Since(buildStart)
		return res, nil
	}
	if err != nil {
		return res, err
	}
	var formula *cnf.Formula
	if ws != nil {
		formula, err = m.EncodeWith(ws.enc)
	} else {
		formula, err = m.Encode()
	}
	if err != nil {
		return res, err
	}
	res.Vars = formula.NumVars
	res.Clauses = formula.NumClauses()
	res.BuildElapsed = time.Since(buildStart)
	start := time.Now()
	solver := e.solverFor(lim, cacheLimit)
	var sol sat.Solution
	if as, ok := solver.(sat.ArenaSolver); ok && ws != nil {
		sol = as.SolveArena(formula, ws.arena)
	} else {
		sol = solver.Solve(formula)
	}
	res.Elapsed = time.Since(start)
	res.SolverStats = sol.Stats
	switch sol.Status {
	case sat.Sat:
		res.Status = Detected
		res.Vector = m.ExtractTest(c, sol.Model)
		if e.VerifyTests && !VerifyTest(c, f, res.Vector) {
			return res, fmt.Errorf("atpg: generated vector fails to detect %s (pipeline bug)", f.Name(c))
		}
	case sat.Unsat:
		res.Status = Untestable
	default:
		res.Status = Aborted
	}
	return res, nil
}

// Summary aggregates a full-circuit ATPG run.
type Summary struct {
	Circuit    string
	Total      int
	Detected   int
	Untestable int
	Aborted    int
	// Errors counts faults whose processing panicked; the panic was
	// recovered, the fault reported with status "error", and the run
	// continued.
	Errors int
	// DroppedByFaultSim counts faults covered by earlier vectors and
	// skipped without invoking the solver.
	DroppedByFaultSim int
	// DetectedByRPT counts faults detected by the random-pattern pre-phase
	// and never handed to the solver.
	DetectedByRPT int
	// RPTBatches is the number of 64-pattern random batches simulated;
	// RPTVectors the number of random patterns that detected a new fault
	// and were kept (they lead Vectors, in batch then pattern order).
	RPTBatches int
	RPTVectors int
	// Vectors is the generated (compacted) test set, in fault-list order
	// of the detecting fault.
	Vectors [][]bool
	// Results holds the per-fault SAT outcomes for the faults that reached
	// the solver — the data series of Figure 1. Results come back in
	// fault-list order regardless of which worker finished first, so
	// parallel runs are deterministic modulo fault dropping.
	Results []Result
	// Elapsed is total SAT time summed over faults. Under a parallel run
	// it exceeds wall time; compare WallElapsed.
	Elapsed time.Duration
	// WallElapsed is the wall-clock duration of the whole run.
	WallElapsed time.Duration
	// Phases breaks the run's work down by pipeline phase (summed over
	// faults and workers, so each phase can exceed wall time in parallel).
	Phases PhaseTimes
	// SolverTotals merges the per-fault solver statistics of every fault
	// that reached the solver.
	SolverTotals sat.Stats
	// Retries describes the escalating-budget retry phase, one entry per
	// tier that ran (nil when retries were disabled or nothing aborted).
	Retries []RetryTier
}

// PhaseTimes is the per-phase work breakdown of a run. The phases
// partition the measured work: each duration is accumulated on a disjoint
// code path (RPT batch simulation, miter+CNF construction, SAT search,
// drop-list flush simulation), so on a single worker their sum is at most
// WallElapsed; in parallel runs Build/Solve/FaultSim sum over workers and
// can exceed it.
type PhaseTimes struct {
	// RPT is the random-pattern pre-phase wall time (it runs before the
	// worker pool starts, so it never overlaps the other phases).
	RPT time.Duration `json:"rpt_ns"`
	// Build is miter construction + CNF encoding time.
	Build time.Duration `json:"build_ns"`
	// Solve is SAT search time (equals Summary.Elapsed).
	Solve time.Duration `json:"solve_ns"`
	// FaultSim is the time spent batch-simulating vectors to drop faults.
	FaultSim time.Duration `json:"faultsim_ns"`
}

// Coverage returns detected/(total-untestable): fault coverage over
// testable faults, counting faults dropped by fault simulation and
// detected by the random-pattern pre-phase as covered.
func (s Summary) Coverage() float64 {
	testable := s.Total - s.Untestable
	if testable == 0 {
		return 1
	}
	return float64(s.Detected+s.DroppedByFaultSim+s.DetectedByRPT) / float64(testable)
}

// Default random-pattern pre-phase parameters, used by the facade and the
// CLI. 32 batches of 64 patterns saturate the easy faults of every
// generated benchmark circuit; 4 idle batches is enough slack that the
// phase does not give up on a cold streak while the fault list is still
// shrinking fast.
const (
	DefaultRPTBatches  = 32
	DefaultRPTIdleStop = 4
)

// RunOptions control a full-circuit run.
type RunOptions struct {
	// Collapse applies structural fault collapsing (gate-local
	// equivalence) before generation.
	Collapse bool
	// Dominance additionally applies dominance-based collapsing
	// (CollapseDominance) on top of equivalence, further shrinking the
	// fault list while keeping every dropped fault covered by its
	// justifier's tests.
	Dominance bool
	// RPTBatches enables the random-pattern pre-phase: up to RPTBatches
	// batches of 64 seeded random patterns are fault-simulated against the
	// whole undetected fault list before any SAT solving; patterns that
	// detect a new fault are kept as test vectors. 0 disables the phase
	// (use DefaultRPTBatches for the standard flow).
	RPTBatches int
	// RPTIdleStop stops the pre-phase early after this many consecutive
	// batches that detect no new fault (0 = DefaultRPTIdleStop).
	RPTIdleStop int
	// Seed drives the random pattern generator. Runs with the same seed
	// and options produce identical vectors and summaries, regardless of
	// worker count.
	Seed int64
	// DropDetected fault-simulates each new vector against the remaining
	// faults and skips the covered ones (classic TEGUS flow).
	DropDetected bool
	// PerFaultBudget, when positive, bounds the SAT time spent on each
	// fault; a fault whose solve exceeds it is reported Aborted instead of
	// stalling the run. Requires a solver implementing sat.LimitedSolver
	// (all three built-ins do).
	PerFaultBudget time.Duration
	// Telemetry, when non-nil, streams metrics, per-fault trace events and
	// periodic progress snapshots out of the run. Nil disables all
	// instrumentation at the cost of one pointer check per fault.
	Telemetry *Telemetry
	// CacheLimit bounds the Caching solver's sub-formula cache in bytes
	// per worker (0 = sat.DefaultCacheLimit). Ignored by solvers without a
	// cache (Simple, DPLL).
	CacheLimit int64
	// RetryTiers, when positive together with PerFaultBudget, re-runs
	// faults that exhausted their budget after the main sweep, up to this
	// many escalation tiers with geometrically increasing budgets. A fault
	// is reported Aborted only after the final tier also fails.
	RetryTiers int
	// RetryBackoff is the budget multiplier between tiers (values <= 1
	// select DefaultRetryBackoff).
	RetryBackoff float64
	// MemSoftLimit, when positive, arms a watchdog that samples the Go
	// heap and — while it exceeds this many bytes — has each worker halve
	// its solver cache table (sat.Arena.Shrink) between faults, degrading
	// pruning instead of letting the process grow toward an OOM kill.
	MemSoftLimit int64
	// Journal, when non-nil, receives every final fault verdict and the
	// random-pattern pre-phase outcome as they are decided — the engine
	// side of the crash-recovery checkpoint (see internal/checkpoint).
	// Faults headed for the retry queue are journaled only once final.
	Journal JournalSink
	// Resume pre-applies verdicts replayed from a previous run's journal:
	// decided faults are skipped (their verdicts and vectors enter the
	// summary unchanged) and a journaled random-pattern pre-phase is
	// restored instead of re-run, preserving the deterministic vector set.
	Resume *ResumeState
}

// dropBatch is the pending-vector count that triggers a fault-simulation
// flush. Well below the 64-pattern word width: dropping early saves
// solver calls on the remaining fault list.
const dropBatch = 16

// Run generates tests for every stuck-at fault of the circuit.
func (e *Engine) Run(ctx context.Context, c *logic.Circuit, opt RunOptions) (*Summary, error) {
	faults := AllFaults(c)
	if opt.Collapse {
		faults = Collapse(c, faults)
	}
	if opt.Dominance {
		faults = CollapseDominance(c, faults)
	}
	return e.RunFaults(ctx, c, faults, opt)
}

// RunFaults generates tests for the given fault list on a pool of
// e.Workers workers. Faults are sharded dynamically: each worker claims
// the next live fault, solves it under the per-fault budget, and — with
// opt.DropDetected — publishes found vectors to a shared drop list that is
// batch fault-simulated (one faultsim.Simulator per flushing worker; the
// simulator itself is single-threaded by design) to skip covered faults.
//
// Cancelling ctx drains the run: in-flight solves abort at the next limit
// check, no new faults are claimed, and the partial summary is returned
// together with ctx.Err(). Faults interrupted by cancellation are not
// recorded as Aborted — that status is reserved for per-fault resource
// exhaustion.
func (e *Engine) RunFaults(ctx context.Context, c *logic.Circuit, faults []Fault, opt RunOptions) (*Summary, error) {
	start := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	st := &runState{
		c:       c,
		opt:     opt,
		start:   start,
		faults:  faults,
		results: make([]*Result, len(faults)),
		dropped: make([]bool, len(faults)),
		resumed: make([]bool, len(faults)),
	}
	st.applyResume(opt.Resume)
	workers := e.workers()
	tel := opt.Telemetry
	tel.begin(len(faults), workers)
	// Per-worker scratch arenas are created up front so the RPT pre-phase
	// and the SAT workers share the same fault simulators and buffers.
	scratches := make([]*workerScratch, workers)
	for w := range scratches {
		scratches[w] = e.newScratch()
	}
	stopWatchdog := e.startMemWatchdog(runCtx, st)
	defer stopWatchdog()
	rep := obs.StartReporter(telProgressEvery(tel), func() {
		tel.observeProgress(st.progress())
	})
	if !st.rptRestored {
		if err := e.runRPT(runCtx, st, scratches); err != nil {
			rep.Stop()
			return nil, err
		}
		if opt.Journal != nil && runCtx.Err() == nil {
			opt.Journal.RecordRPT(st.rptDetectedIdx, st.rptVectors, st.rptBatches)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.runWorker(runCtx, st, w, scratches[w]); err != nil {
				st.setErr(err)
				cancel()
			}
		}()
	}
	wg.Wait()
	retries := e.runRetryTiers(runCtx, st, scratches)
	rep.Stop()
	if st.err != nil {
		return nil, st.err
	}
	if tel != nil {
		tel.observeProgress(st.progress()) // final snapshot: the 100% line
	}

	// Assemble deterministically: RPT vectors first (batch then pattern
	// order), then SAT results in fault-list order.
	sum := &Summary{
		Circuit: c.Name, Total: len(faults),
		DroppedByFaultSim: st.droppedCount,
		DetectedByRPT:     st.rptDetected,
		RPTBatches:        st.rptBatches,
		RPTVectors:        len(st.rptVectors),
	}
	sum.Vectors = append(sum.Vectors, st.rptVectors...)
	for _, r := range st.results {
		if r == nil {
			continue // detected by RPT, dropped by fault simulation, or never reached before cancellation
		}
		sum.Results = append(sum.Results, *r)
		sum.Elapsed += r.Elapsed
		sum.Phases.Build += r.BuildElapsed
		sum.Phases.Solve += r.Elapsed
		sum.SolverTotals.Add(r.SolverStats)
		switch r.Status {
		case Detected:
			sum.Detected++
			sum.Vectors = append(sum.Vectors, r.Vector)
		case Untestable:
			sum.Untestable++
		case Aborted:
			sum.Aborted++
		case Errored:
			sum.Errors++
		}
	}
	sum.Retries = retries
	sum.Phases.RPT = time.Duration(st.rptNS)
	sum.Phases.FaultSim = time.Duration(st.simNS.Load())
	sum.WallElapsed = time.Since(start)
	return sum, ctx.Err()
}

// telProgressEvery returns the progress period of a (possibly nil)
// telemetry configuration; 0 disables the reporter.
func telProgressEvery(t *Telemetry) time.Duration {
	if t == nil || t.OnProgress == nil {
		return 0
	}
	return t.ProgressEvery
}

// runState is the state shared by the fault workers of one RunFaults call.
type runState struct {
	c      *logic.Circuit
	opt    RunOptions
	start  time.Time
	faults []Fault

	mu           sync.Mutex
	next         int       // dispatch cursor; slots below it are claimed or dropped
	dropped      []bool    // marked by the RPT pre-phase, flushes and resume replay
	droppedCount int       // flush drops only; RPT detections count separately
	results      []*Result // one slot per fault, filled on completion
	resumed      []bool    // verdicts replayed from a journal: final, never retried
	pending      [][]bool  // vectors not yet batch-simulated
	err          error
	// Running verdict tallies for progress snapshots (kept under mu; the
	// authoritative counts are recomputed from results at assembly time).
	done, det, unt, abt, errs int

	// Random-pattern pre-phase outcome. Written by the (serial) RPT
	// coordinator before the worker pool starts; the per-batch counters
	// are updated under mu so progress snapshots see them live.
	rptDetected    int
	rptBatches     int
	rptVectors     [][]bool
	rptDetectedIdx []int // fault-list indices detected by the pre-phase
	rptNS          int64
	// rptRestored marks the pre-phase as replayed from a journal; runRPT
	// is then skipped so the kept vector set stays exactly the journaled one.
	rptRestored bool

	// shrinkGen is bumped by the memory watchdog while the heap exceeds
	// the soft limit; workers compare it to a local counter between faults
	// and halve their arena's cache table when it advanced.
	shrinkGen atomic.Int64

	// simNS accumulates fault-simulation flush time (atomic: flushes run
	// outside the lock).
	simNS atomic.Int64
}

// progress snapshots the run under the lock.
func (st *runState) progress() Progress {
	st.mu.Lock()
	defer st.mu.Unlock()
	return Progress{
		Circuit:     st.c.Name,
		Done:        st.done + st.droppedCount + st.rptDetected,
		Total:       len(st.faults),
		Detected:    st.det,
		Untestable:  st.unt,
		Aborted:     st.abt,
		Errors:      st.errs,
		Dropped:     st.droppedCount,
		RPTDetected: st.rptDetected,
		Vectors:     st.det + len(st.rptVectors),
		Elapsed:     time.Since(st.start),
	}
}

func (st *runState) setErr(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
}

// runRPT is the random-pattern pre-phase: seeded 64-pattern batches are
// fault-simulated against the whole undetected fault list, sharded across
// the worker scratches' simulators; patterns that detect a new fault are
// kept as test vectors and the detected faults never reach the solver.
// The phase stops after opt.RPTBatches batches, after RPTIdleStop
// consecutive batches detecting nothing new, or when the list is empty.
//
// Pattern generation and the greedy pattern keep run on the coordinator
// with a seeded serial RNG, and each fault's detection mask is
// independent of how the list is sharded — so the kept vector set and
// the surviving fault list are identical for any worker count.
func (e *Engine) runRPT(ctx context.Context, st *runState, scratches []*workerScratch) error {
	opt := st.opt
	if opt.RPTBatches <= 0 || len(st.faults) == 0 {
		return nil
	}
	idleStop := opt.RPTIdleStop
	if idleStop <= 0 {
		idleStop = DefaultRPTIdleStop
	}
	phaseStart := time.Now()
	rng := rand.New(rand.NewSource(opt.Seed))
	c := st.c
	tel := opt.Telemetry

	// Live view of the fault list, compacted after every batch so later
	// batches only simulate survivors.
	live := make([]int, 0, len(st.faults)) // indices into st.faults
	nets := make([]int, 0, len(st.faults))
	sas := make([]bool, 0, len(st.faults))
	for i, f := range st.faults {
		if st.dropped[i] {
			continue // already decided by a resumed journal
		}
		live = append(live, i)
		nets = append(nets, f.Net)
		sas = append(sas, f.StuckAt)
	}
	masks := make([]uint64, len(live))
	words := make([]uint64, len(c.Inputs))
	workers := len(scratches)
	sims := make([]*faultsim.Simulator, workers)
	simErrs := make([]error, workers)

	idle := 0
	for b := 0; b < opt.RPTBatches && len(live) > 0 && idle < idleStop; b++ {
		if ctx.Err() != nil {
			break
		}
		batchStart := time.Now()
		for i := range words {
			words[i] = rng.Uint64()
		}
		// Shard the live list across the worker simulators. Each shard
		// writes its slice of masks; full masks (not early-exit) because
		// the greedy keep below needs every detecting pattern.
		chunk := (len(live) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(live) {
				break
			}
			hi := min(lo+chunk, len(live))
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				sim := sims[w]
				if sim == nil && scratches[w] != nil {
					sim = scratches[w].sim
				}
				var err error
				if sim == nil {
					sim, err = faultsim.NewSimulator(c, words, 64)
				} else {
					err = sim.Reset(words, 64)
				}
				if err != nil {
					simErrs[w] = err
					return
				}
				sims[w] = sim
				if scratches[w] != nil {
					scratches[w].sim = sim
				}
				sim.DetectAll(nets[lo:hi], sas[lo:hi], masks[lo:hi], false)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range simErrs {
			if err != nil {
				return err
			}
		}
		// Greedy pattern keep, in fault-list order: a fault whose mask
		// misses every kept pattern contributes its lowest detecting
		// pattern, so every detected fault is covered by a kept pattern.
		var kept uint64
		detected := 0
		for k := range live {
			m := masks[k]
			if m == 0 {
				continue
			}
			if m&kept == 0 {
				kept |= 1 << uint(bits.TrailingZeros64(m))
			}
			detected++
		}
		var newVecs [][]bool
		for p := 0; p < 64; p++ {
			if kept&(1<<uint(p)) == 0 {
				continue
			}
			vec := make([]bool, len(c.Inputs))
			for i := range vec {
				vec[i] = words[i]&(1<<uint(p)) != 0
			}
			newVecs = append(newVecs, vec)
		}
		var detectedNames []string
		if tel != nil && tel.Trace != nil {
			for k := range live {
				if masks[k] != 0 {
					detectedNames = append(detectedNames, st.faults[live[k]].Name(c))
				}
			}
		}
		st.mu.Lock()
		for k := range live {
			if masks[k] != 0 {
				st.dropped[live[k]] = true
				st.rptDetectedIdx = append(st.rptDetectedIdx, live[k])
			}
		}
		st.rptDetected += detected
		st.rptBatches++
		st.rptVectors = append(st.rptVectors, newVecs...)
		st.mu.Unlock()
		tel.observeRPTBatch(detected, len(newVecs), detectedNames, time.Since(batchStart), time.Since(st.start))
		// Compact the live list down to the survivors.
		if detected == 0 {
			idle++
			continue
		}
		idle = 0
		nw := 0
		for k := range live {
			if masks[k] != 0 {
				continue
			}
			live[nw], nets[nw], sas[nw] = live[k], nets[k], sas[k]
			nw++
		}
		live, nets, sas, masks = live[:nw], nets[:nw], sas[:nw], masks[:nw]
	}
	st.mu.Lock()
	st.rptNS = time.Since(phaseStart).Nanoseconds()
	st.mu.Unlock()
	return nil
}

// runWorker claims and solves faults until the list is exhausted or the
// context is cancelled. worker is the pool index, used to shard telemetry
// counters and label trace events; ws is the worker's scratch arena
// (shared with the RPT pre-phase), nil when reuse is disabled.
func (e *Engine) runWorker(ctx context.Context, st *runState, worker int, ws *workerScratch) error {
	tel := st.opt.Telemetry
	retryable := st.opt.RetryTiers > 0 && st.opt.PerFaultBudget > 0
	var shrinkSeen int64
	for {
		if ctx.Err() != nil {
			return nil
		}
		st.maybeShrink(ws, worker, &shrinkSeen)
		st.mu.Lock()
		for st.next < len(st.faults) && st.dropped[st.next] {
			st.next++
		}
		if st.next >= len(st.faults) {
			st.mu.Unlock()
			return nil
		}
		i := st.next
		st.next++
		st.mu.Unlock()

		lim := sat.Limits{Cancel: ctx.Done()}
		if st.opt.PerFaultBudget > 0 {
			lim.Deadline = time.Now().Add(st.opt.PerFaultBudget)
		}
		res, err := e.safeTestFault(st.c, st.faults[i], lim, ws, st.opt.CacheLimit)
		if err != nil {
			return err
		}
		if ctx.Err() != nil {
			// The abort is a draining artifact, not a verdict on the fault.
			return nil
		}
		var batch [][]bool
		st.mu.Lock()
		st.results[i] = &res
		st.done++
		switch res.Status {
		case Detected:
			st.det++
		case Untestable:
			st.unt++
		case Aborted:
			st.abt++
		case Errored:
			st.errs++
		}
		if res.Status == Detected && st.opt.DropDetected {
			st.pending = append(st.pending, res.Vector)
			if len(st.pending) >= dropBatch {
				batch, st.pending = st.pending, nil
			}
		}
		st.mu.Unlock()
		if tel != nil {
			tel.observeFault(worker, st.faults[i].Name(st.c), &res, time.Since(st.start))
		}
		// An aborted fault headed for the retry queue is not final yet;
		// journaling it now would make a resume skip a fault the retry
		// tiers might still decide.
		if st.opt.Journal != nil && (res.Status != Aborted || !retryable) {
			st.opt.Journal.RecordFault(i, res.Status.String(), res.Vector, res.Err)
		}
		if batch != nil {
			if err := st.flush(batch, worker, ws); err != nil {
				return err
			}
		}
	}
}

// flush batch-simulates a vector batch against the not-yet-claimed faults
// and marks the detected ones dropped. Simulation runs outside the lock on
// a simulator owned by the flushing worker (reused across flushes via the
// worker's scratch); only the final marking needs the lock, re-checking
// that each hit is still unclaimed so a fault being solved concurrently is
// never double-counted.
func (st *runState) flush(batch [][]bool, worker int, ws *workerScratch) error {
	simStart := time.Now()
	var words []uint64
	var err error
	if ws != nil {
		ws.pack, err = faultsim.PackPatternsInto(ws.pack, st.c, batch)
		words = ws.pack
	} else {
		words, err = faultsim.PackPatterns(st.c, batch)
	}
	if err != nil {
		return err
	}
	var sim *faultsim.Simulator
	if ws != nil && ws.sim != nil {
		if err := ws.sim.Reset(words, len(batch)); err != nil {
			return err
		}
		sim = ws.sim
	} else {
		sim, err = faultsim.NewSimulator(st.c, words, len(batch))
		if err != nil {
			return err
		}
		if ws != nil {
			ws.sim = sim
		}
	}
	st.mu.Lock()
	from := st.next
	snap := append([]bool(nil), st.dropped...)
	st.mu.Unlock()
	var hits []int
	for j := from; j < len(st.faults); j++ {
		if snap[j] {
			continue
		}
		if sim.DetectsAny(st.faults[j].Net, st.faults[j].StuckAt) != 0 {
			hits = append(hits, j)
		}
	}
	tel := st.opt.Telemetry
	var droppedNames []string
	st.mu.Lock()
	for _, j := range hits {
		if j >= st.next && !st.dropped[j] {
			st.dropped[j] = true
			st.droppedCount++
			if tel != nil {
				droppedNames = append(droppedNames, st.faults[j].Name(st.c))
			}
		}
	}
	st.mu.Unlock()
	simTime := time.Since(simStart)
	st.simNS.Add(simTime.Nanoseconds())
	if tel != nil {
		tel.observeFlush(worker, len(batch), droppedNames, simTime, time.Since(st.start))
	}
	return nil
}
