package atpg

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"atpgeasy/internal/cnf"
	"atpgeasy/internal/faultsim"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/obs"
	"atpgeasy/internal/sat"
)

// Status classifies the outcome of test generation for one fault.
type Status int8

// Per-fault outcomes.
const (
	Detected   Status = iota // a test vector was found and verified
	Untestable               // the ATPG-SAT instance is unsatisfiable
	Aborted                  // resource limit hit before a decision
	Errored                  // the fault's processing panicked; run continued
)

// String returns "detected", "untestable", "aborted" or "error".
func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	case Errored:
		return "error"
	default:
		return "aborted"
	}
}

// ParseStatus inverts Status.String, for replaying journaled verdicts.
func ParseStatus(s string) (Status, bool) {
	switch s {
	case "detected":
		return Detected, true
	case "untestable":
		return Untestable, true
	case "aborted":
		return Aborted, true
	case "error":
		return Errored, true
	}
	return 0, false
}

// Result is the outcome of test generation for one fault.
type Result struct {
	Fault  Fault
	Status Status
	// Vector is the test over the parent circuit's primary inputs (valid
	// when Status is Detected).
	Vector []bool
	// Vars and Clauses are the ATPG-SAT instance size — the x-axis of
	// Figure 1 of the paper.
	Vars    int
	Clauses int
	// Elapsed is the SAT-solving wall time, Figure 1's y-axis.
	Elapsed time.Duration
	// BuildElapsed is the instance-construction wall time (miter + CNF
	// encoding) preceding the solve.
	BuildElapsed time.Duration
	// SolverStats carries the solver's search counters.
	SolverStats sat.Stats
	// Group and GroupSize identify the incremental region group the fault
	// was solved in: Group is the 1-based canonical group id (stable
	// across worker counts; 0 means the fault was solved fresh) and
	// GroupSize the group's member count. In grouped mode Vars/Clauses
	// report the shared group formula, counted once per member.
	Group     int
	GroupSize int
	// Err and Stack describe the recovered panic of an Errored fault: the
	// panic value and the goroutine stack captured at recovery.
	Err   string
	Stack string
	// Backend names the portfolio backend that produced this verdict on a
	// routed run: "podem", "caching" or "cdcl". Empty on unrouted runs.
	Backend string
}

// Engine generates tests fault by fault. The zero value uses the DPLL
// solver without limits on a pool of GOMAXPROCS workers.
type Engine struct {
	// Solver decides the ATPG-SAT instances; nil means a fresh DPLL per
	// engine. The configuration is treated as read-only: workers derive
	// per-call instances via sat.LimitedSolver when limits apply, so one
	// Engine is safe for concurrent runs.
	Solver sat.Solver
	// VerifyTests re-simulates every generated vector against the fault
	// and reports an internal error if it fails (a cross-check of the
	// whole encode/solve/extract pipeline).
	VerifyTests bool
	// Workers is the number of concurrent fault workers used by Run and
	// RunFaults; 0 means runtime.GOMAXPROCS(0), 1 forces the serial path.
	Workers int
	// DisableScratchReuse turns off the per-worker arenas: solver scratch,
	// CNF encode buffers and fault-simulation buffers are then allocated
	// fresh per fault, as in the pre-arena engine. Verdicts and test
	// vectors are identical either way — the sub-formula cache only prunes
	// UNSAT subtrees, so it can never change which model a search finds
	// first — but node counts may shift slightly because a reused cache
	// table keeps its grown capacity across faults and therefore evicts
	// less. The switch exists for A/B benchmarking and bisection.
	DisableScratchReuse bool

	// testHookPanic, when set by a test, is invoked with each fault just
	// before it is processed and may panic — exercising the per-fault
	// panic-isolation path without planting bugs in production code.
	testHookPanic func(Fault)
	// memCheckEvery overrides the memory watchdog's sampling period in
	// tests (0 = the production 250ms).
	memCheckEvery time.Duration
}

// workerScratch is one worker's allocation arena. A worker processes
// thousands of faults serially, so the solver's search buffers, the CNF
// encoder's clause slab and the fault-simulation pack/simulate buffers
// are reused across them instead of being reallocated per fault.
type workerScratch struct {
	arena *sat.Arena
	enc   *cnf.Encoder
	pack  []uint64
	sim   *faultsim.Simulator
	// eff is the worker's effort-record encoding buffer, reused across
	// faults so an enabled effort log adds no per-fault allocations.
	eff effortEncoder
}

// newScratch returns a fresh per-worker scratch, or nil when reuse is
// disabled (nil scratch selects the allocate-per-fault paths everywhere).
func (e *Engine) newScratch() *workerScratch {
	if e.DisableScratchReuse {
		return nil
	}
	return &workerScratch{arena: sat.NewArena(), enc: new(cnf.Encoder)}
}

func (e *Engine) solver() sat.Solver {
	if e.Solver != nil {
		return e.Solver
	}
	return &sat.DPLL{}
}

// solverFor specializes the engine's solver configuration with per-call
// limits and an optional sub-formula cache budget. Solvers that don't
// implement sat.LimitedSolver run unlimited; cacheLimit only applies to
// *sat.Caching.
func (e *Engine) solverFor(lim sat.Limits, cacheLimit int64) sat.Solver {
	s := e.solver()
	if cacheLimit > 0 {
		if cs, ok := s.(*sat.Caching); ok {
			cp := *cs
			cp.CacheLimit = cacheLimit
			s = &cp
		}
	}
	if lim.IsZero() {
		return s
	}
	if ls, ok := s.(sat.LimitedSolver); ok {
		return ls.WithLimits(lim)
	}
	return s
}

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// TestFault runs SAT-based test generation for one fault.
func (e *Engine) TestFault(c *logic.Circuit, f Fault) (Result, error) {
	return e.testFault(c, f, sat.Limits{}, nil, 0)
}

// testFault is TestFault under per-call solver limits (a deadline or
// cancellation surfaces as Status Aborted), optional per-worker scratch
// reuse, and an optional sub-formula cache budget.
func (e *Engine) testFault(c *logic.Circuit, f Fault, lim sat.Limits, ws *workerScratch, cacheLimit int64) (Result, error) {
	return e.testFaultOn(c, f, ws, e.solverFor(lim, cacheLimit))
}

// testFaultOn is testFault on an explicit, already-limited solver — the
// routed engine uses it to aim one fault at a specific backend.
func (e *Engine) testFaultOn(c *logic.Circuit, f Fault, ws *workerScratch, solver sat.Solver) (Result, error) {
	res := Result{Fault: f}
	buildStart := time.Now()
	m, err := NewMiter(c, f)
	if err == ErrUnobservable {
		res.Status = Untestable
		res.BuildElapsed = time.Since(buildStart)
		return res, nil
	}
	if err != nil {
		return res, err
	}
	var formula *cnf.Formula
	if ws != nil {
		formula, err = m.EncodeWith(ws.enc)
	} else {
		formula, err = m.Encode()
	}
	if err != nil {
		return res, err
	}
	res.Vars = formula.NumVars
	res.Clauses = formula.NumClauses()
	res.BuildElapsed = time.Since(buildStart)
	start := time.Now()
	var sol sat.Solution
	if as, ok := solver.(sat.ArenaSolver); ok && ws != nil {
		sol = as.SolveArena(formula, ws.arena)
	} else {
		sol = solver.Solve(formula)
	}
	res.Elapsed = time.Since(start)
	res.SolverStats = sol.Stats
	switch sol.Status {
	case sat.Sat:
		res.Status = Detected
		res.Vector = m.ExtractTest(c, sol.Model)
		if e.VerifyTests && !VerifyTest(c, f, res.Vector) {
			return res, fmt.Errorf("atpg: generated vector fails to detect %s (pipeline bug)", f.Name(c))
		}
	case sat.Unsat:
		res.Status = Untestable
	default:
		res.Status = Aborted
	}
	return res, nil
}

// Summary aggregates a full-circuit ATPG run.
type Summary struct {
	Circuit    string
	Total      int
	Detected   int
	Untestable int
	Aborted    int
	// Errors counts faults whose processing panicked; the panic was
	// recovered, the fault reported with status "error", and the run
	// continued.
	Errors int
	// DroppedByFaultSim counts faults covered by earlier vectors and
	// skipped without invoking the solver.
	DroppedByFaultSim int
	// WastedSolves counts speculative solves discarded at commit: faults a
	// worker solved in flight that an earlier (dispatch-order) vector then
	// dropped. The deterministic commit discards such results, so they
	// appear nowhere in Results; the count is the price of running workers
	// ahead of the commit frontier. Always 0 on a single worker.
	WastedSolves int
	// DetectedByRPT counts faults detected by the random-pattern pre-phase
	// and never handed to the solver.
	DetectedByRPT int
	// RPTBatches is the number of 64-pattern random batches simulated;
	// RPTVectors the number of random patterns that detected a new fault
	// and were kept (they lead Vectors, in batch then pattern order).
	RPTBatches int
	RPTVectors int
	// Vectors is the generated (compacted) test set, in fault-list order
	// of the detecting fault.
	Vectors [][]bool
	// Results holds the per-fault SAT outcomes for the faults that reached
	// the solver — the data series of Figure 1. Results come back in
	// fault-list order regardless of which worker finished first, so
	// parallel runs are deterministic modulo fault dropping.
	Results []Result
	// Elapsed is total SAT time summed over faults. Under a parallel run
	// it exceeds wall time; compare WallElapsed.
	Elapsed time.Duration
	// WallElapsed is the wall-clock duration of the whole run.
	WallElapsed time.Duration
	// Phases breaks the run's work down by pipeline phase (summed over
	// faults and workers, so each phase can exceed wall time in parallel).
	Phases PhaseTimes
	// SolverTotals merges the per-fault solver statistics of every fault
	// that reached the solver.
	SolverTotals sat.Stats
	// Retries describes the escalating-budget retry phase, one entry per
	// tier that ran (nil when retries were disabled or nothing aborted).
	Retries []RetryTier
	// Routed summarizes a routed run: live faults per predicted effort
	// class and decided faults per backend. Nil on unrouted runs.
	Routed *RouteSummary
}

// PhaseTimes is the per-phase work breakdown of a run. The phases
// partition the measured work: each duration is accumulated on a disjoint
// code path (RPT batch simulation, miter+CNF construction, SAT search,
// drop-list flush simulation), so on a single worker their sum is at most
// WallElapsed; in parallel runs Build/Solve/FaultSim sum over workers and
// can exceed it.
type PhaseTimes struct {
	// RPT is the random-pattern pre-phase wall time (it runs before the
	// worker pool starts, so it never overlaps the other phases).
	RPT time.Duration `json:"rpt_ns"`
	// Build is miter construction + CNF encoding time.
	Build time.Duration `json:"build_ns"`
	// Solve is SAT search time (equals Summary.Elapsed).
	Solve time.Duration `json:"solve_ns"`
	// FaultSim is the time spent batch-simulating vectors to drop faults.
	FaultSim time.Duration `json:"faultsim_ns"`
	// FrontierStall is commit-frontier stall time: how long the
	// deterministic commit order sat blocked on one in-flight solve while
	// later results waited published behind it. Unlike the phases above
	// it is idle time, not work — it overlaps Solve rather than
	// partitioning the run, and is 0 on a single worker (the frontier
	// then only ever advances behind the worker's own publishes).
	FrontierStall time.Duration `json:"frontier_stall_ns"`
}

// Coverage returns detected/(total-untestable): fault coverage over
// testable faults, counting faults dropped by fault simulation and
// detected by the random-pattern pre-phase as covered.
func (s Summary) Coverage() float64 {
	testable := s.Total - s.Untestable
	if testable == 0 {
		return 1
	}
	return float64(s.Detected+s.DroppedByFaultSim+s.DetectedByRPT) / float64(testable)
}

// Default random-pattern pre-phase parameters, used by the facade and the
// CLI. 32 batches of 64 patterns saturate the easy faults of every
// generated benchmark circuit; 4 idle batches is enough slack that the
// phase does not give up on a cold streak while the fault list is still
// shrinking fast.
const (
	DefaultRPTBatches  = 32
	DefaultRPTIdleStop = 4
)

// RunOptions control a full-circuit run.
type RunOptions struct {
	// Collapse applies structural fault collapsing (gate-local
	// equivalence) before generation.
	Collapse bool
	// Dominance additionally applies dominance-based collapsing
	// (CollapseDominance) on top of equivalence, further shrinking the
	// fault list while keeping every dropped fault covered by its
	// justifier's tests.
	Dominance bool
	// RPTBatches enables the random-pattern pre-phase: up to RPTBatches
	// batches of 64 seeded random patterns are fault-simulated against the
	// whole undetected fault list before any SAT solving; patterns that
	// detect a new fault are kept as test vectors. 0 disables the phase
	// (use DefaultRPTBatches for the standard flow).
	RPTBatches int
	// RPTIdleStop stops the pre-phase early after this many consecutive
	// batches that detect no new fault (0 = DefaultRPTIdleStop).
	RPTIdleStop int
	// Seed drives the random pattern generator. Runs with the same seed
	// and options produce identical vectors and summaries, regardless of
	// worker count.
	Seed int64
	// DropDetected fault-simulates each new vector against the remaining
	// faults and skips the covered ones (classic TEGUS flow).
	DropDetected bool
	// PerFaultBudget, when positive, bounds the SAT time spent on each
	// fault; a fault whose solve exceeds it is reported Aborted instead of
	// stalling the run. Requires a solver implementing sat.LimitedSolver
	// (all three built-ins do).
	PerFaultBudget time.Duration
	// Telemetry, when non-nil, streams metrics, per-fault trace events and
	// periodic progress snapshots out of the run. Nil disables all
	// instrumentation at the cost of one pointer check per fault.
	Telemetry *Telemetry
	// CacheLimit bounds the Caching solver's sub-formula cache in bytes
	// per worker (0 = sat.DefaultCacheLimit). Ignored by solvers without a
	// cache (Simple, DPLL).
	CacheLimit int64
	// RetryTiers, when positive together with PerFaultBudget, re-runs
	// faults that exhausted their budget after the main sweep, up to this
	// many escalation tiers with geometrically increasing budgets. A fault
	// is reported Aborted only after the final tier also fails.
	RetryTiers int
	// RetryBackoff is the budget multiplier between tiers (values <= 1
	// select DefaultRetryBackoff).
	RetryBackoff float64
	// MemSoftLimit, when positive, arms a watchdog that samples the Go
	// heap and — while it exceeds this many bytes — has each worker halve
	// its solver cache table (sat.Arena.Shrink) between faults, degrading
	// pruning instead of letting the process grow toward an OOM kill.
	MemSoftLimit int64
	// Journal, when non-nil, receives every final fault verdict and the
	// random-pattern pre-phase outcome as they are decided — the engine
	// side of the crash-recovery checkpoint (see internal/checkpoint).
	// Faults headed for the retry queue are journaled only once final.
	Journal JournalSink
	// Resume pre-applies verdicts replayed from a previous run's journal:
	// decided faults are skipped (their verdicts and vectors enter the
	// summary unchanged) and a journaled random-pattern pre-phase is
	// restored instead of re-run, preserving the deterministic vector set.
	Resume *ResumeState
	// EffortLog, when non-nil, streams one structured effort record per
	// decided fault — structural features joined with the solver work the
	// verdict took (schema EffortSchema; see EffortRecord for the exact
	// per-phase emission rule). Nil disables the log at the cost of one
	// pointer check per fault.
	EffortLog *EffortLog
	// Incremental solves the faults of each fanout region as one group on
	// a persistent per-worker CDCL instance under assumptions
	// (sat.Incremental), so clauses learned for one fault prune the
	// search for its region neighbors. Requires the DPLL solver family
	// (a nil Engine.Solver or *sat.DPLL with learning enabled); other
	// configurations silently fall back to fresh-per-fault solving.
	// Verdicts and vectors are byte-identical to fresh-per-fault solving
	// on the incremental path (GroupMax 1) at any worker count, but
	// differ from the non-incremental path, whose solver does not use
	// lex-first input branching — so a journal written by one mode is
	// rejected by the other (see CheckpointFingerprint).
	Incremental bool
	// GroupMax caps the members per region group (0 = DefaultGroupMax,
	// 1 = fresh-per-fault). Purely a knowledge-reuse knob: the dispatch
	// order, drop set, verdicts and vectors are identical for every
	// value.
	GroupMax int
	// EffortWidth additionally computes each fault's sub-circuit
	// cut-width (internal/hypergraph + internal/mla) as an effort-log
	// feature — the source paper's Figure 8 predictor. Off by default:
	// it runs a layout heuristic per fault, which dwarfs the other
	// (two-DFS) features on large circuits.
	EffortWidth bool
	// Route enables cut-width-guided fault routing: each fault is scored
	// from its structural features plus a bounded cut-width estimate,
	// classified (trivial / low-width / structural / hard), and
	// dispatched to the cheapest backend likely to decide it — fault-sim
	// scheduling, the caching backtracker, the PODEM structural engine,
	// or incremental region-grouped CDCL (see router.go). Requires the
	// DPLL solver family like Incremental; other solver configurations
	// fall back to the unrouted path. Routed runs are byte-identical to
	// themselves at any worker count but produce different (equally
	// valid) vectors than unrouted runs, so journals don't transfer
	// across the mode boundary. Routed dispatch supersedes Incremental's
	// ordering; hard-class faults still solve incrementally.
	Route bool
	// RouteWidthMax bounds the sub-circuit node count the router may hand
	// to the MLA layout heuristic when refining an ambiguous cut-width
	// estimate; larger cones keep the O(pins) topological-order upper
	// bound (0 = DefaultRouteWidthMax).
	RouteWidthMax int
	// RouteHardScale multiplies PerFaultBudget for hard-class faults
	// (0 = DefaultRouteHardScale; values < 1 clamp to 1).
	RouteHardScale float64
	// PodemMaxBacktracks caps the PODEM backend's search per fault; a
	// cap abort is deterministic and falls back to a CDCL solve
	// (0 = DefaultPodemMaxBacktracks, negative = unbounded).
	PodemMaxBacktracks int64
}

// dropBatch is the committed-vector count that triggers a fault-simulation
// flush. Well below the 64-pattern word width: dropping early saves
// solver calls on the remaining fault list.
const dropBatch = 16

// tailFlushWindow is the flush policy's end-game: once fewer than this
// many dispatch slots remain uncommitted, every committed vector is
// flushed immediately instead of waiting for a full dropBatch. Without
// it the final sub-batch of vectors was never fault-simulated, so tail
// faults lost their chance to be dropped and were solved redundantly.
// The window depends only on the commit frontier, so the drop set stays
// identical at any worker count.
const tailFlushWindow = 64

// Run generates tests for every stuck-at fault of the circuit.
func (e *Engine) Run(ctx context.Context, c *logic.Circuit, opt RunOptions) (*Summary, error) {
	faults := AllFaults(c)
	if opt.Collapse {
		faults = Collapse(c, faults)
	}
	if opt.Dominance {
		faults = CollapseDominance(c, faults)
	}
	return e.RunFaults(ctx, c, faults, opt)
}

// RunFaults generates tests for the given fault list on a pool of
// e.Workers workers. Dispatch is contention-free: faults are ordered
// largest-fanout-cone-first and claimed in small chunks off an atomic
// cursor, solved speculatively, and committed by a deterministic frontier
// that walks the dispatch order. With opt.DropDetected, committed vectors
// are batch fault-simulated against the uncommitted tail (drop marks live
// in an atomic bitset read lock-free by claims) — so the detected/dropped
// split, the vector set and the whole summary are identical at any worker
// count, unlike a racy first-come drop list.
//
// Cancelling ctx drains the run: in-flight solves abort at the next limit
// check, no new faults are claimed, and the partial summary is returned
// together with ctx.Err(). Faults interrupted by cancellation are not
// recorded as Aborted — that status is reserved for per-fault resource
// exhaustion.
func (e *Engine) RunFaults(ctx context.Context, c *logic.Circuit, faults []Fault, opt RunOptions) (*Summary, error) {
	start := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.workers()
	st := &runState{
		c:          c,
		opt:        opt,
		start:      start,
		faults:     faults,
		workers:    workers,
		results:    make([]*Result, len(faults)),
		published:  make([]atomic.Pointer[specResult], len(faults)),
		droppedF:   newBitset(len(faults)),
		preDecided: make([]bool, len(faults)),
		resumed:    make([]bool, len(faults)),
	}
	st.applyResume(opt.Resume)
	tel := opt.Telemetry
	tel.begin(len(faults), workers)
	st.ring = obs.NewRing(obs.DefaultRingSize)
	if tel != nil && tel.Ring != nil {
		st.ring = tel.Ring
	}
	if opt.EffortLog != nil {
		es, err := newEffortState(c, faults, opt, workers)
		if err != nil {
			return nil, err
		}
		st.effort = es
		// Verdicts replayed from a journal get their records now — they
		// were decided by the resumed run, features and all, but this log
		// must still join one record to every decided fault.
		for i, r := range st.results {
			if r != nil && st.resumed[i] {
				st.recordEffort(nil, i, r, "resume", r.Status, 0, -1, false)
			}
		}
		if st.rptRestored {
			for _, i := range st.rptDetectedIdx {
				st.recordEffort(nil, i, nil, "resume", Detected, 0, -1, false)
			}
		}
	}
	runSpan := tel.startSpan("run", obs.SpanContext{})
	if runSpan.Active() {
		runSpan.Detail = c.Name
		runSpan.Items = int64(len(faults))
	}
	st.runSpan = runSpan.Context()
	defer runSpan.End()
	// Per-worker scratch arenas are created up front so the RPT pre-phase
	// and the SAT workers share the same fault simulators and buffers.
	scratches := make([]*workerScratch, workers)
	for w := range scratches {
		scratches[w] = e.newScratch()
	}
	stopWatchdog := e.startMemWatchdog(runCtx, st)
	defer stopWatchdog()
	rep := obs.StartReporter(telProgressEvery(tel), func() {
		tel.observeProgress(st.progress())
	})
	if !st.rptRestored {
		rptSpan := tel.startSpan("rpt", st.runSpan)
		st.rptSpan = rptSpan.Context()
		err := e.runRPT(runCtx, st, scratches)
		rptSpan.Items = int64(st.rptDetected)
		rptSpan.End()
		if err != nil {
			rep.Stop()
			return nil, err
		}
		if opt.Journal != nil && runCtx.Err() == nil {
			opt.Journal.RecordRPT(st.rptDetectedIdx, st.rptVectors, st.rptBatches)
		}
	}
	// The dispatch order covers exactly the faults still undecided after
	// resume replay and the pre-phase. The incremental path groups the
	// order by fanout region; its flattened order is canonical across
	// group-size caps, so the commit frontier and drop set are too.
	st.incremental = e.incrementalEnabled(opt)
	if e.routeEnabled(opt) {
		// Routed portfolio dispatch: classify every live fault and order
		// hard (grouped) → structural → low-width → trivial, so the cheap
		// tail is mostly dropped by earlier backends' vectors before it is
		// claimed. The router reuses the effort log's feature table when
		// one was computed.
		var feats []FaultFeatures
		if st.effort != nil {
			feats = st.effort.feats
		} else {
			feats = computeFeatures(c, faults, false, workers)
		}
		st.route = buildRoute(c, faults, st.preDecided, feats, opt.RouteWidthMax, opt.GroupMax, workers)
		st.order = st.route.order
		st.groups = st.route.groups
		st.recordedF = newBitset(len(faults))
		tel.observeGroups(st.groups)
	} else if st.incremental {
		st.order, st.groups = buildGroups(c, faults, st.preDecided, opt.GroupMax)
		tel.observeGroups(st.groups)
	} else {
		st.order = effortOrder(c, faults, st.preDecided)
	}
	sweepSpan := tel.startSpan("sweep", st.runSpan)
	if sweepSpan.Active() {
		sweepSpan.Items = int64(len(st.order))
	}
	st.sweepSpan = sweepSpan.Context()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := e.runWorker
			if st.route != nil {
				run = e.runRoutedWorker
			} else if st.incremental {
				run = e.runGroupWorker
			}
			if err := run(runCtx, st, w, scratches[w]); err != nil {
				st.setErr(err)
				cancel()
			}
		}()
	}
	wg.Wait()
	// Drain the commit frontier: on a clean run every result is already
	// committed, but a cancelled run may leave published results behind the
	// first unsolved slot — commit the reachable prefix so the partial
	// summary is a deterministic function of how far the run got.
	if err := st.kickCommit(scratches[0], 0); err != nil {
		st.setErr(err)
	}
	sweepSpan.End()
	retries := e.runRetryTiers(runCtx, st, scratches)
	rep.Stop()
	if st.err != nil {
		return nil, st.err
	}
	if tel != nil {
		tel.observeProgress(st.progress()) // final snapshot: the 100% line
	}

	// Assemble deterministically: RPT vectors first (batch then pattern
	// order), then SAT results in fault-list order.
	sum := &Summary{
		Circuit: c.Name, Total: len(faults),
		DroppedByFaultSim: int(st.droppedN.Load()),
		WastedSolves:      int(st.wastedN.Load()),
		DetectedByRPT:     st.rptDetected,
		RPTBatches:        st.rptBatches,
		RPTVectors:        len(st.rptVectors),
	}
	sum.Vectors = append(sum.Vectors, st.rptVectors...)
	for _, r := range st.results {
		if r == nil {
			continue // detected by RPT, dropped by fault simulation, or never reached before cancellation
		}
		sum.Results = append(sum.Results, *r)
		sum.Elapsed += r.Elapsed
		sum.Phases.Build += r.BuildElapsed
		sum.Phases.Solve += r.Elapsed
		sum.SolverTotals.Add(r.SolverStats)
		switch r.Status {
		case Detected:
			sum.Detected++
			sum.Vectors = append(sum.Vectors, r.Vector)
		case Untestable:
			sum.Untestable++
		case Aborted:
			sum.Aborted++
		case Errored:
			sum.Errors++
		}
	}
	sum.Retries = retries
	if st.route != nil {
		rs := st.route.summary()
		for _, r := range st.results {
			if r != nil && r.Backend != "" {
				rs.Backends[r.Backend]++
			}
		}
		if n := int(st.droppedN.Load()); n > 0 {
			rs.Backends["faultsim"] = n
		}
		sum.Routed = rs
	}
	sum.Phases.RPT = time.Duration(st.rptNS)
	sum.Phases.FaultSim = time.Duration(st.simNS.Load())
	sum.Phases.FrontierStall = time.Duration(st.stallNS.Load())
	sum.WallElapsed = time.Since(start)
	return sum, ctx.Err()
}

// telProgressEvery returns the progress period of a (possibly nil)
// telemetry configuration; 0 disables the reporter.
func telProgressEvery(t *Telemetry) time.Duration {
	if t == nil || t.OnProgress == nil {
		return 0
	}
	return t.ProgressEvery
}

// specResult is one worker's speculative solve, published lock-free and
// adopted (or discarded) by the deterministic commit frontier.
type specResult struct {
	res    Result
	worker int32 // solving worker, for telemetry labels
}

// runState is the state shared by the fault workers of one RunFaults call.
//
// Concurrency layout: the per-fault hot path is lock-free — workers claim
// dispatch slots off the atomic cursor, read drop bits from the atomic
// bitset, and publish results through atomic pointers. commitMu guards
// the only serialized section, the commit frontier (verdict adoption,
// vector keeping, flush simulation, journaling); workers never block on
// it (kickCommit uses TryLock — whoever holds the lock picks up newly
// published results). mu is left guarding only the cold state: the RPT
// pre-phase tallies and the first worker error.
type runState struct {
	c      *logic.Circuit
	opt    RunOptions
	start  time.Time
	faults []Fault

	workers int
	order   []int32 // dispatch order: undecided fault indices, biggest cone first
	cursor  atomic.Int64
	// Incremental region-grouped dispatch (nil/false on the fresh path):
	// groups spans order, workers claim whole groups off groupCursor.
	incremental bool
	groups      []faultGroup
	groupCursor atomic.Int64
	// Routed portfolio dispatch (nil on the unrouted paths): the plan
	// carries per-fault classes and the class-ordered dispatch order;
	// groups then covers only the hard-class prefix of order.
	route *routePlan
	// recordedF dedups effort records for routed drops: a fault whose
	// speculative solve is discarded by the worker must not also get the
	// commit frontier's clean-drop record. Nil on unrouted runs.
	recordedF  bitset
	droppedF   bitset                       // officially dropped by a committed vector flush
	preDecided []bool                       // decided before dispatch: RPT detection or resume replay
	published  []atomic.Pointer[specResult] // speculative solves, one slot per fault

	// Commit frontier state, all under commitMu.
	commitMu    sync.Mutex
	commitDirty atomic.Bool
	frontier    int       // next position in order to commit
	results     []*Result // official verdicts, one slot per fault
	resumed     []bool    // verdicts replayed from a journal: final, never retried
	pendingVecs [][]bool  // committed vectors not yet batch-simulated

	// Committed tallies, written under commitMu (or by the retry tiers),
	// read lock-free by progress snapshots.
	doneN, detN, untN, abtN, errsN atomic.Int64
	droppedN                       atomic.Int64 // flush drops only; RPT detections count separately
	wastedN                        atomic.Int64 // speculative solves discarded at commit

	mu  sync.Mutex
	err error

	// Random-pattern pre-phase outcome. Written by the (serial) RPT
	// coordinator before the worker pool starts; the per-batch counters
	// are updated under mu so progress snapshots see them live.
	rptDetected    int
	rptBatches     int
	rptVectors     [][]bool
	rptDetectedIdx []int // fault-list indices detected by the pre-phase
	rptNS          int64
	// rptRestored marks the pre-phase as replayed from a journal; runRPT
	// is then skipped so the kept vector set stays exactly the journaled one.
	rptRestored bool

	// shrinkGen is bumped by the memory watchdog while the heap exceeds
	// the soft limit; workers compare it to a local counter between faults
	// and halve their arena's cache table when it advanced.
	shrinkGen atomic.Int64

	// simNS accumulates fault-simulation flush time.
	simNS atomic.Int64

	// ring is the always-on flight recorder (Telemetry.Ring when set,
	// otherwise a run-private DefaultRingSize ring); dumped once per run
	// on the first fault panic or watchdog shrink.
	ring       *obs.Ring
	ringDumped atomic.Bool

	// effort is the enabled effort log's run state (features + sink);
	// nil when RunOptions.EffortLog is nil.
	effort *effortState

	// Span contexts of the run's phase spans, for attaching children.
	// Zero (inert) unless Telemetry.Spans is set.
	runSpan, rptSpan, sweepSpan obs.SpanContext

	// Commit-frontier stall accounting, under commitMu: stallSince is
	// when the frontier was first observed blocked at order position
	// stallSlot (zero when not blocked); stallNS accumulates resolved
	// stalls for Summary.Phases.FrontierStall.
	stallSlot  int
	stallSince time.Time
	stallNS    atomic.Int64

	// retryPending counts aborted faults still owed a retry tier (fed
	// into Progress.RetryPending so the ETA covers the escalation phase).
	retryPending atomic.Int64
}

// dumpRingOnce writes the flight recorder to the trace sink — and, for
// hard failures (fault panics), to stderr — at most once per run: the
// first trigger wins, so a burst of panics costs one dump. SIGINT dumps
// are the CLI's own, from the ring it passes via Telemetry.Ring.
func (st *runState) dumpRingOnce(reason string, toStderr bool) {
	if st.ringDumped.Swap(true) {
		return
	}
	if toStderr {
		fmt.Fprintf(os.Stderr, "atpg: %s — dumping flight recorder\n", reason)
		st.ring.Dump(os.Stderr, 64)
	}
	st.opt.Telemetry.observeRingDump(reason, st.ring)
}

// progress snapshots the run: worker-phase tallies from the commit
// atomics, pre-phase tallies under the cold mutex.
func (st *runState) progress() Progress {
	st.mu.Lock()
	rptDetected, rptVectors := st.rptDetected, len(st.rptVectors)
	st.mu.Unlock()
	det := int(st.detN.Load())
	return Progress{
		Circuit:      st.c.Name,
		Done:         int(st.doneN.Load()+st.droppedN.Load()) + rptDetected,
		Total:        len(st.faults),
		Detected:     det,
		Untestable:   int(st.untN.Load()),
		Aborted:      int(st.abtN.Load()),
		Errors:       int(st.errsN.Load()),
		Dropped:      int(st.droppedN.Load()),
		RPTDetected:  rptDetected,
		RetryPending: int(st.retryPending.Load()),
		Vectors:      det + rptVectors,
		Elapsed:      time.Since(st.start),
	}
}

func (st *runState) setErr(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
}

// runRPT is the random-pattern pre-phase: seeded 64-pattern batches are
// fault-simulated against the whole undetected fault list, sharded across
// per-batch simulator sets; patterns that detect a new fault are kept as
// test vectors and the detected faults never reach the solver. The phase
// stops after opt.RPTBatches batches, after RPTIdleStop consecutive
// batches detecting nothing new, or when the list is empty.
//
// The phase is pipelined: while the coordinator runs the greedy
// pattern-keep loop of batch b, batch b+1 is already simulating on a
// second simulator set (the old coordinator-serial keep/compact loop left
// every worker idle between batches, capping default-mode runs at ~1
// worker). Speculation never changes the outcome: a fault's detection
// mask depends only on the circuit and the pattern words, so masks
// computed against a stale live list are still valid — entries detected
// by an earlier batch are skipped by flag, and the arrays are compacted
// lazily (taking a one-batch pipeline bubble) once a quarter of them is
// dead. Pattern generation stays on the coordinator with a seeded serial
// RNG, and every issue/stop/compact decision is a function of
// deterministically consumed batch outcomes alone — so the kept vector
// set and the surviving fault list are identical for any worker count,
// and a speculative batch discarded at the stopping point is never
// counted.
func (e *Engine) runRPT(ctx context.Context, st *runState, scratches []*workerScratch) error {
	opt := st.opt
	if opt.RPTBatches <= 0 || len(st.faults) == 0 {
		return nil
	}
	idleStop := opt.RPTIdleStop
	if idleStop <= 0 {
		idleStop = DefaultRPTIdleStop
	}
	phaseStart := time.Now()
	rng := rand.New(rand.NewSource(opt.Seed))
	c := st.c
	tel := opt.Telemetry
	workers := len(scratches)

	// Live view of the fault list. det flags entries detected by an
	// already-consumed batch (skipped until the next compaction);
	// liveCount tracks the true survivor count.
	live := make([]int, 0, len(st.faults)) // indices into st.faults
	nets := make([]int, 0, len(st.faults))
	sas := make([]bool, 0, len(st.faults))
	for i, f := range st.faults {
		if st.preDecided[i] {
			continue // already decided by a resumed journal
		}
		live = append(live, i)
		nets = append(nets, f.Net)
		sas = append(sas, f.StuckAt)
	}
	det := make([]bool, len(live))
	liveCount := len(live)
	detSince := 0 // detections since the last compaction

	// batchRun is one 64-pattern batch in flight: its pattern words, the
	// per-fault detection masks its shards fill in, and its own simulator
	// set (two batches overlap, so they cannot share simulators).
	type batchRun struct {
		words   []uint64
		masks   []uint64
		n       int // live-array length at issue time; masks[:n] are valid
		started time.Time
		span    obs.Span // open from issue to consume (pipeline overlap shows as overlapping spans)
		wg      sync.WaitGroup
		errs    []error
		sims    []*faultsim.Simulator
	}
	newRun := func() *batchRun {
		return &batchRun{
			words: make([]uint64, len(c.Inputs)),
			masks: make([]uint64, len(live)),
			errs:  make([]error, workers),
			sims:  make([]*faultsim.Simulator, workers),
		}
	}
	bufs := [2]*batchRun{newRun(), newRun()}
	// Slot 0 borrows the worker-scratch simulators (shared with the SAT
	// phase's flush path) and returns them when the phase ends.
	for w, ws := range scratches {
		if ws != nil {
			bufs[0].sims[w] = ws.sim
		}
	}
	defer func() {
		for w, ws := range scratches {
			if ws != nil && bufs[0].sims[w] != nil {
				ws.sim = bufs[0].sims[w]
			}
		}
	}()

	issue := func(br *batchRun) {
		br.started = time.Now()
		br.span = tel.startSpan("rpt-batch", st.rptSpan)
		for i := range br.words {
			br.words[i] = rng.Uint64()
		}
		br.n = len(live)
		masks := br.masks[:br.n]
		// Shard the live list across the batch's simulators. Each shard
		// writes its slice of masks; full masks (not early-exit) because
		// the greedy keep below needs every detecting pattern.
		chunk := (br.n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= br.n {
				break
			}
			hi := min(lo+chunk, br.n)
			br.wg.Add(1)
			go func(w, lo, hi int) {
				defer br.wg.Done()
				sim := br.sims[w]
				var err error
				if sim == nil {
					sim, err = faultsim.NewSimulator(c, br.words, 64)
				} else {
					err = sim.Reset(br.words, 64)
				}
				if err != nil {
					br.errs[w] = err
					return
				}
				br.sims[w] = sim
				sim.DetectAll(nets[lo:hi], sas[lo:hi], masks[lo:hi], false)
			}(w, lo, hi)
		}
	}

	issued, consumed, idle := 0, 0, 0
	compactPending := false
	// canIssue gates the first issue and every speculation alike; all of
	// its inputs are deterministic functions of the consumed batches.
	canIssue := func() bool {
		return issued < opt.RPTBatches && liveCount > 0 && idle < idleStop &&
			!compactPending && ctx.Err() == nil
	}
	// Any batch still in flight when the loop decides to stop is
	// discarded: waited on (the shards reference the live arrays) but
	// never counted or consumed.
	drain := func() {
		for consumed < issued {
			br := bufs[consumed%2]
			br.wg.Wait()
			if br.span.Active() {
				br.span.Detail = "discarded"
				br.span.End()
			}
			consumed++
		}
	}
	defer drain()

	for {
		if consumed == issued {
			if compactPending {
				// Pipeline bubble: nothing in flight references the live
				// arrays, so compact them down to the survivors.
				cspan := tel.startSpan("rpt-compact", st.rptSpan)
				cspan.Items = int64(detSince)
				nw := 0
				for k := range live {
					if det[k] {
						continue
					}
					live[nw], nets[nw], sas[nw] = live[k], nets[k], sas[k]
					det[nw] = false
					nw++
				}
				live, nets, sas, det = live[:nw], nets[:nw], sas[:nw], det[:nw]
				detSince = 0
				compactPending = false
				cspan.End()
				st.ring.Record("rpt", -1, int64(nw), 0, 0)
			}
			if !canIssue() {
				break
			}
			issue(bufs[issued%2])
			issued++
		}
		// Speculate: start the next batch before consuming the current one.
		if consumed+1 == issued && canIssue() {
			issue(bufs[issued%2])
			issued++
		}
		br := bufs[consumed%2]
		br.wg.Wait()
		for _, err := range br.errs {
			if err != nil {
				return err
			}
		}
		if ctx.Err() != nil {
			consumed++ // discard uncounted; drain handles any speculative batch
			break
		}
		// Greedy pattern keep, in fault-list order: a fault whose mask
		// misses every kept pattern contributes its lowest detecting
		// pattern, so every detected fault is covered by a kept pattern.
		masks := br.masks[:br.n]
		var kept uint64
		detected := 0
		for k := 0; k < br.n; k++ {
			if det[k] || masks[k] == 0 {
				continue
			}
			if masks[k]&kept == 0 {
				kept |= 1 << uint(bits.TrailingZeros64(masks[k]))
			}
			detected++
		}
		var newVecs [][]bool
		for p := 0; p < 64; p++ {
			if kept&(1<<uint(p)) == 0 {
				continue
			}
			vec := make([]bool, len(c.Inputs))
			for i := range vec {
				vec[i] = br.words[i]&(1<<uint(p)) != 0
			}
			newVecs = append(newVecs, vec)
		}
		var detectedNames []string
		if tel != nil && tel.Trace != nil {
			for k := 0; k < br.n; k++ {
				if !det[k] && masks[k] != 0 {
					detectedNames = append(detectedNames, st.faults[live[k]].Name(c))
				}
			}
		}
		preDet := len(st.rptDetectedIdx)
		st.mu.Lock()
		for k := 0; k < br.n; k++ {
			if !det[k] && masks[k] != 0 {
				st.preDecided[live[k]] = true
				st.rptDetectedIdx = append(st.rptDetectedIdx, live[k])
			}
		}
		st.rptDetected += detected
		st.rptBatches++
		st.rptVectors = append(st.rptVectors, newVecs...)
		st.mu.Unlock()
		if st.effort != nil {
			// The coordinator is the only rptDetectedIdx writer, so the
			// slice tail past preDet is exactly this batch's detections.
			for _, i := range st.rptDetectedIdx[preDet:] {
				st.recordEffort(scratches[0], i, nil, "rpt", Detected, 0, -1, false)
			}
		}
		for k := 0; k < br.n; k++ {
			if masks[k] != 0 {
				det[k] = true
			}
		}
		consumed++
		st.ring.Record("rpt", -1, int64(detected), int64(len(newVecs)), time.Since(br.started).Nanoseconds())
		br.span.Items = int64(detected)
		br.span.End()
		tel.observeRPTBatch(detected, len(newVecs), detectedNames, time.Since(br.started), time.Since(st.start))
		if detected == 0 {
			idle++
			continue
		}
		idle = 0
		liveCount -= detected
		detSince += detected
		if detSince*4 >= len(live) {
			compactPending = true
		}
	}
	st.mu.Lock()
	st.rptNS = time.Since(phaseStart).Nanoseconds()
	st.mu.Unlock()
	return nil
}

// runWorker claims and solves faults until the dispatch order is
// exhausted or the context is cancelled. Claims are lock-free (see
// claim); each solve is published speculatively and the worker then
// offers to advance the shared commit frontier. worker is the pool
// index, used to shard telemetry counters and label trace events; ws is
// the worker's scratch arena (shared with the RPT pre-phase), nil when
// reuse is disabled.
func (e *Engine) runWorker(ctx context.Context, st *runState, worker int, ws *workerScratch) error {
	cl := st.newClaimer()
	tel := st.opt.Telemetry
	// Each chunk reservation is one flight-recorder event and (under span
	// tracing) rotates the worker's current dispatch-chunk span — the
	// claim path itself stays lock-free either way.
	var chunkSpan obs.Span
	cl.ck.onChunk = func(lo, hi int) {
		st.ring.Record("chunk", worker, int64(lo), int64(hi-lo), 0)
		if tel.hasSpans() {
			chunkSpan.End()
			chunkSpan = tel.startSpan("dispatch-chunk", st.sweepSpan)
			chunkSpan.Worker = worker
			chunkSpan.Items = int64(hi - lo)
		}
	}
	defer func() { chunkSpan.End() }()
	var shrinkSeen int64
	for {
		if ctx.Err() != nil {
			return nil
		}
		st.maybeShrink(ws, worker, &shrinkSeen)
		i := st.claim(&cl)
		if i < 0 {
			return nil
		}
		lim := sat.Limits{Cancel: ctx.Done()}
		if st.opt.PerFaultBudget > 0 {
			lim.Deadline = time.Now().Add(st.opt.PerFaultBudget)
		}
		fspan := tel.startSpan("fault", chunkSpan.Context())
		if fspan.Active() {
			fspan.Worker = worker
			fspan.Detail = st.faults[i].Name(st.c)
		}
		res, err := e.safeTestFault(st.c, st.faults[i], lim, ws, st.opt.CacheLimit)
		fspan.Items = res.SolverStats.SearchEffort()
		fspan.End()
		st.ring.Record("solve", worker, int64(i), int64(res.Status), res.Elapsed.Nanoseconds())
		if err != nil {
			return err
		}
		if res.Status == Errored {
			st.dumpRingOnce("fault panic recovered", true)
		}
		if ctx.Err() != nil {
			// The abort is a draining artifact, not a verdict on the fault.
			return nil
		}
		if st.droppedF.get(i) {
			// A flush dropped the fault while its solve was in flight; the
			// official verdict is "dropped", so the solve is discarded.
			st.countWasted(1)
			if st.effort != nil {
				st.recordEffort(ws, i, &res, "dropped", res.Status, 0, worker, true)
			}
			continue
		}
		st.published[i].Store(&specResult{res: res, worker: int32(worker)})
		if err := st.kickCommit(ws, worker); err != nil {
			return err
		}
	}
}

// countWasted tallies speculative solves discarded because a committed
// vector dropped the fault first.
func (st *runState) countWasted(n int) {
	st.wastedN.Add(int64(n))
	if tel := st.opt.Telemetry; tel != nil && tel.Metrics != nil {
		tel.Metrics.SolvesWasted.Add(int64(n))
	}
}

// kickCommit offers to advance the deterministic commit frontier. Every
// publisher calls it after storing a result; the dirty-flag/TryLock
// pairing makes the section effectively single-threaded without ever
// blocking a worker. No publish can be missed: a caller that loses the
// TryLock has already set the flag, the holder clears it before each
// scan, and re-checks it after unlocking — so either the holder's scan
// observes the publish, or the flag survives and someone re-enters.
func (st *runState) kickCommit(ws *workerScratch, worker int) error {
	st.commitDirty.Store(true)
	for st.commitDirty.Load() {
		if !st.commitMu.TryLock() {
			return nil // the current holder will observe the flag
		}
		st.commitDirty.Store(false)
		err := st.commitLocked(ws, worker)
		st.commitMu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// commitLocked walks the dispatch order from the frontier, adopting each
// slot's published result as the official verdict, in order: tallies,
// telemetry, journaling and vector flushing all happen here — so their
// order, and with DropDetected the entire drop set, is a deterministic
// function of the dispatch order alone, independent of worker count and
// solve timing. A slot whose solve is still in flight blocks the
// frontier; a dropped slot is skipped, discarding any speculative result
// as wasted. Called with commitMu held.
func (st *runState) commitLocked(ws *workerScratch, worker int) error {
	tel := st.opt.Telemetry
	retryable := st.opt.RetryTiers > 0 && st.opt.PerFaultBudget > 0
	for st.frontier < len(st.order) {
		i := int(st.order[st.frontier])
		if st.droppedF.get(i) {
			if sr := st.published[i].Load(); sr != nil {
				st.countWasted(1)
				if st.effort != nil && (st.route == nil || st.recordedF.set(i)) {
					st.recordEffort(ws, i, &sr.res, "dropped", sr.res.Status, 0, int(sr.worker), true)
				}
			} else if st.route != nil && st.effort != nil && st.recordedF.set(i) {
				// Routed runs record clean drops too: the router predicted a
				// class for this fault and fault simulation decided it, so the
				// accuracy join still gets exactly one record (backend
				// "faultsim", no solver work, not wasted).
				st.recordEffort(ws, i, nil, "dropped", Detected, 0, -1, false)
			}
			if st.route != nil {
				tel.observeRouted(backendFaultSim, 0)
			}
			st.frontier++
			continue
		}
		sr := st.published[i].Load()
		if sr == nil {
			// Frontier blocked on an in-flight solve: start the stall clock
			// on the first blocked observation of this slot.
			if st.stallSlot != st.frontier || st.stallSince.IsZero() {
				st.stallSlot, st.stallSince = st.frontier, time.Now()
			}
			return nil
		}
		if st.stallSlot == st.frontier && !st.stallSince.IsZero() {
			stall := time.Since(st.stallSince)
			st.stallSince = time.Time{}
			st.stallNS.Add(stall.Nanoseconds())
			st.ring.Record("stall", worker, int64(i), 0, stall.Nanoseconds())
			tel.observeStall(stall)
			if tel.hasSpans() {
				tel.Spans.Observed("frontier-stall", st.sweepSpan, stall, worker)
			}
		}
		st.frontier++
		res := sr.res
		st.results[i] = &res
		st.doneN.Add(1)
		switch res.Status {
		case Detected:
			st.detN.Add(1)
		case Untestable:
			st.untN.Add(1)
		case Aborted:
			st.abtN.Add(1)
		case Errored:
			st.errsN.Add(1)
		}
		if tel != nil {
			tel.observeFault(int(sr.worker), st.faults[i].Name(st.c), &res, time.Since(st.start))
		}
		if st.route != nil && res.Backend != "" {
			tel.observeRouted(res.Backend, res.Elapsed.Nanoseconds())
		}
		// An aborted fault headed for the retry queue is not final yet;
		// journaling it now would make a resume skip a fault the retry
		// tiers might still decide — and the effort log follows the same
		// rule so each fault's single record carries its final verdict.
		if res.Status == Aborted && retryable {
			st.retryPending.Add(1)
		} else {
			if st.opt.Journal != nil {
				st.opt.Journal.RecordFault(i, res.Status.String(), res.Vector, res.Err)
			}
			if st.effort != nil {
				st.recordEffort(ws, i, &res, "sweep", res.Status, 0, int(sr.worker), false)
			}
		}
		if res.Status == Detected && st.opt.DropDetected {
			st.pendingVecs = append(st.pendingVecs, res.Vector)
			if len(st.pendingVecs) >= dropBatch || len(st.order)-st.frontier <= tailFlushWindow {
				if err := st.flushLocked(ws, worker); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// flushLocked batch fault-simulates the pending committed vectors against
// the uncommitted tail of the dispatch order and sets the drop bits of
// the detected faults. Called with commitMu held. The atomic bitset is
// the only state shared with the claim path, so flushes never make
// claims wait — and with a scratch the flush allocates nothing: the pack
// buffer, the simulator and the vector batch itself are all reused (the
// old implementation copied an O(faults) dropped-snapshot under the run
// mutex on every flush).
func (st *runState) flushLocked(ws *workerScratch, worker int) error {
	batch := st.pendingVecs
	if len(batch) == 0 {
		return nil
	}
	simStart := time.Now()
	var words []uint64
	var err error
	if ws != nil {
		ws.pack, err = faultsim.PackPatternsInto(ws.pack, st.c, batch)
		words = ws.pack
	} else {
		words, err = faultsim.PackPatterns(st.c, batch)
	}
	if err != nil {
		return err
	}
	var sim *faultsim.Simulator
	if ws != nil && ws.sim != nil {
		if err := ws.sim.Reset(words, len(batch)); err != nil {
			return err
		}
		sim = ws.sim
	} else {
		sim, err = faultsim.NewSimulator(st.c, words, len(batch))
		if err != nil {
			return err
		}
		if ws != nil {
			ws.sim = sim
		}
	}
	tel := st.opt.Telemetry
	var droppedNames []string
	dropped := 0
	for p := st.frontier; p < len(st.order); p++ {
		j := int(st.order[p])
		if st.droppedF.get(j) {
			continue
		}
		if sim.DetectsAny(st.faults[j].Net, st.faults[j].StuckAt) != 0 && st.droppedF.set(j) {
			dropped++
			if tel != nil && tel.Trace != nil {
				droppedNames = append(droppedNames, st.faults[j].Name(st.c))
			}
		}
	}
	st.droppedN.Add(int64(dropped))
	st.pendingVecs = st.pendingVecs[:0]
	simTime := time.Since(simStart)
	st.simNS.Add(simTime.Nanoseconds())
	st.ring.Record("flush", worker, int64(len(batch)), int64(dropped), simTime.Nanoseconds())
	if tel.hasSpans() {
		tel.Spans.Observed("flush", st.sweepSpan, simTime, worker)
	}
	if tel != nil {
		tel.observeFlush(worker, len(batch), dropped, droppedNames, simTime, time.Since(st.start))
	}
	return nil
}
