package atpg

import (
	"fmt"

	"atpgeasy/internal/cnf"
	"atpgeasy/internal/logic"
)

// SubCircuit extracts C_ψ^sub: the subcircuit of C containing all gates,
// inputs and outputs in the transitive fanin of the transitive fanout of
// the fault point X (Section 2). Its size approximates the variable count
// of the ATPG-SAT instance, and its cut-width is the quantity plotted in
// Figure 8 of the paper.
func SubCircuit(c *logic.Circuit, f Fault) (*logic.Subcircuit, error) {
	if f.Net < 0 || f.Net >= c.NumNodes() {
		return nil, fmt.Errorf("atpg: fault net %d out of range", f.Net)
	}
	fo := c.TransitiveFanout(f.Net)
	ids := c.TransitiveFanin(fo...)
	name := fmt.Sprintf("%s_sub_%s", c.Name, f.Name(c))
	// The observation points of the subcircuit are the primary outputs of
	// C reachable from X.
	outSet := make(map[int]bool)
	for _, o := range c.Outputs {
		outSet[o] = true
	}
	var extraOuts []int
	for _, id := range fo {
		if outSet[id] {
			extraOuts = append(extraOuts, id)
		}
	}
	return c.Induced(name, ids, extraOuts...)
}

// Miter is the circuit C_ψ^ATPG of Figure 3 together with the
// correspondence between its nets and the parent circuit's.
type Miter struct {
	// Circuit is C_ψ^ATPG: the good subcircuit C_ψ^sub, the faulty fanout
	// cone C_ψ^fo (with the fault net replaced by a constant driver), one
	// XOR per observable output pair, and the XORs as primary outputs.
	Circuit *logic.Circuit
	// Fault is the fault the miter was built for.
	Fault Fault
	// GoodOf maps a parent node ID to the miter node ID of its good copy,
	// or -1 when the parent node is outside C_ψ^sub.
	GoodOf []int
	// FaultyOf maps a parent node ID to the miter node ID of its faulty
	// copy, or -1 when the parent node is outside the fault's transitive
	// fanout.
	FaultyOf []int
	// GoodFault is the miter node ID of the good copy of the fault net;
	// a test must set it to the complement of the stuck value (fault
	// activation).
	GoodFault int
	// Observable lists the parent primary outputs reachable from the
	// fault, in XOR order.
	Observable []int
}

// NewMiter constructs C_ψ^ATPG. The fault is untestable iff the resulting
// CIRCUIT-SAT instance (see Encode) is unsatisfiable. It returns an error
// when the fault has no observable output (trivially untestable); callers
// treat that as UNSAT without building a formula.
var ErrUnobservable = fmt.Errorf("atpg: fault has no observable output")

// NewMiter builds the ATPG miter for fault f on circuit c.
func NewMiter(c *logic.Circuit, f Fault) (*Miter, error) {
	if f.Net < 0 || f.Net >= c.NumNodes() {
		return nil, fmt.Errorf("atpg: fault net %d out of range", f.Net)
	}
	foList := c.TransitiveFanout(f.Net)
	inFO := make([]bool, c.NumNodes())
	for _, id := range foList {
		inFO[id] = true
	}
	outSet := make(map[int]bool)
	for _, o := range c.Outputs {
		outSet[o] = true
	}
	var observable []int
	for _, id := range foList {
		if outSet[id] {
			observable = append(observable, id)
		}
	}
	if len(observable) == 0 {
		return nil, ErrUnobservable
	}
	subIDs := c.TransitiveFanin(foList...)

	b := logic.NewBuilder(fmt.Sprintf("%s_atpg_%s", c.Name, f.Name(c)))
	goodOf := make([]int, c.NumNodes())
	faultyOf := make([]int, c.NumNodes())
	for i := range goodOf {
		goodOf[i], faultyOf[i] = -1, -1
	}
	// Good copies of every node in C_ψ^sub (IDs are topologically sorted).
	for _, id := range subIDs {
		n := &c.Nodes[id]
		switch n.Type {
		case logic.Input:
			goodOf[id] = b.Input(n.Name)
		case logic.Const0:
			goodOf[id] = b.Const(n.Name, false)
		case logic.Const1:
			goodOf[id] = b.Const(n.Name, true)
		default:
			fanin := make([]int, len(n.Fanin))
			for i, fi := range n.Fanin {
				fanin[i] = goodOf[fi]
			}
			goodOf[id] = b.GateN(n.Type, n.Name, fanin, n.Neg)
		}
	}
	// Faulty copies of the transitive fanout: the fault net becomes a
	// constant driver; the rest read faulty copies where available and
	// good copies elsewhere (C_ψ^fo derives its inputs from signal points
	// in C_ψ^sub — Figure 3).
	for _, id := range foList {
		n := &c.Nodes[id]
		if id == f.Net {
			faultyOf[id] = b.Const(n.Name+"~flt", f.StuckAt)
			continue
		}
		fanin := make([]int, len(n.Fanin))
		for i, fi := range n.Fanin {
			if inFO[fi] {
				fanin[i] = faultyOf[fi]
			} else {
				fanin[i] = goodOf[fi]
			}
		}
		faultyOf[id] = b.GateN(n.Type, n.Name+"~flt", fanin, n.Neg)
	}
	// Pairwise XOR of the observable outputs; each XOR is a primary output
	// of the miter, so the CIRCUIT-SAT "some output is 1" clause states
	// that at least one output pair differs.
	for _, o := range observable {
		x := b.Gate(logic.Xor, c.Nodes[o].Name+"~xor", goodOf[o], faultyOf[o])
		b.MarkOutput(x)
	}
	mc, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Miter{
		Circuit:    mc,
		Fault:      f,
		GoodOf:     goodOf,
		FaultyOf:   faultyOf,
		GoodFault:  goodOf[f.Net],
		Observable: observable,
	}, nil
}

// Encode builds the ATPG-SAT formula: the CIRCUIT-SAT formula of the
// miter plus the fault-activation unit clause asserting the good fault
// net carries the complement of the stuck value. (The activation clause is
// implied by the XOR outputs but stating it explicitly matches the
// problem definition and speeds up every solver.)
func (m *Miter) Encode() (*cnf.Formula, error) {
	return m.EncodeWith(new(cnf.Encoder))
}

// EncodeWith is Encode through a reusable encoder, amortizing the
// formula's allocations across faults; the result is valid only until
// the encoder's next Encode call.
func (m *Miter) EncodeWith(enc *cnf.Encoder) (*cnf.Formula, error) {
	f, err := enc.Encode(m.Circuit, nil)
	if err != nil {
		return nil, err
	}
	f.AddClause(cnf.NewLit(m.GoodFault, m.Fault.StuckAt))
	return f, nil
}

// ExtractTest converts a satisfying model of the encoded miter into a test
// vector over the parent circuit's primary inputs. Inputs outside
// C_ψ^sub are don't-cares and returned as false.
func (m *Miter) ExtractTest(c *logic.Circuit, model []bool) []bool {
	vec := make([]bool, len(c.Inputs))
	for i, in := range c.Inputs {
		if mid := m.GoodOf[in]; mid >= 0 {
			vec[i] = model[mid]
		}
	}
	return vec
}

// VerifyTest checks by simulation that the vector detects the fault on
// the parent circuit: some primary output differs between C and C_ψ.
func VerifyTest(c *logic.Circuit, f Fault, vec []bool) bool {
	good := c.Simulate(vec)
	faulty := c.SimulateWith(vec, map[int]bool{f.Net: f.StuckAt})
	for _, o := range c.Outputs {
		if good[o] != faulty[o] {
			return true
		}
	}
	return false
}
