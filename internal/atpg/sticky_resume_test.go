package atpg_test

import (
	"context"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/checkpoint"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/serve"
)

// quotaSink forwards verdicts to a real on-disk journal until its quota
// is exhausted, then drops everything — the observable shape of a
// journal whose writes started failing stickily mid-run (the checkpoint
// layer degrades to a no-op after the first write error). Once dry it
// cancels the run, modeling the operator killing a run whose
// checkpointing has gone dark.
type quotaSink struct {
	mu     sync.Mutex
	j      *checkpoint.Journal
	quota  int
	cancel context.CancelFunc
}

func (q *quotaSink) RecordRPT(detected []int, vectors [][]bool, batches int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.j.RecordRPT(detected, vectors, batches)
}

func (q *quotaSink) RecordFault(i int, status string, vector []bool, errMsg string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.quota <= 0 {
		q.cancel()
		return
	}
	q.quota--
	q.j.RecordFault(i, status, vector, errMsg)
}

// TestStickyJournalLossThenResume drives the full durability stack —
// engine, checkpoint file, serve's resume conversion — through a
// journal that stops persisting mid-run: the verdicts that did land on
// disk must replay, the lost tail must be re-solved, and the finished
// run must match an uninterrupted one byte for byte. This is the
// engine-level half of the daemon's crash contract, with the journal
// (not the process) as the failing component.
func TestStickyJournalLossThenResume(t *testing.T) {
	c := gen.Random(gen.RandomParams{Inputs: 20, Gates: 200, Seed: 3})
	faults := atpg.CollapseDominance(c, atpg.Collapse(c, atpg.AllFaults(c)))
	opt := atpg.RunOptions{RPTBatches: atpg.DefaultRPTBatches, Seed: 42}

	baseline, err := (&atpg.Engine{Workers: 4}).RunFaults(context.Background(), c, faults, opt)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	// Degraded run: the on-disk journal accepts only the first few fault
	// verdicts, then goes dark and the run is cancelled.
	path := filepath.Join(t.TempDir(), "ckpt")
	journal, rs, err := serve.OpenJournal(path, false, c, faults, opt, checkpoint.Options{})
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if rs != nil {
		t.Fatal("fresh journal produced a resume state")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &quotaSink{j: journal, quota: 5, cancel: cancel}
	iopt := opt
	iopt.Journal = sink
	if _, err := (&atpg.Engine{Workers: 4}).RunFaults(ctx, c, faults, iopt); err == nil {
		t.Fatal("degraded run finished before its journal went dark")
	}
	if err := journal.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	// Resume from what actually reached disk. The journal must replay
	// the pre-phase plus exactly the quota of fault verdicts; the run
	// must re-solve the rest and land on the baseline's vectors.
	journal2, rs, err := serve.OpenJournal(path, true, c, faults, opt, checkpoint.Options{})
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	if rs == nil || rs.RPT == nil {
		t.Fatal("resume state missing the journaled pre-phase")
	}
	if len(rs.Faults) != 5 {
		t.Fatalf("journal replayed %d fault verdicts, want the 5 that landed", len(rs.Faults))
	}
	ropt := opt
	ropt.Resume = rs
	ropt.Journal = journal2
	resumed, err := (&atpg.Engine{Workers: 4}).RunFaults(context.Background(), c, faults, ropt)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := journal2.Close(); err != nil {
		t.Fatalf("close resumed journal: %v", err)
	}

	if !reflect.DeepEqual(resumed.Vectors, baseline.Vectors) {
		t.Fatalf("resumed vectors diverge: %d vs baseline %d", len(resumed.Vectors), len(baseline.Vectors))
	}
	if resumed.Detected != baseline.Detected || resumed.Untestable != baseline.Untestable {
		t.Fatalf("resumed counts detected=%d untestable=%d, baseline detected=%d untestable=%d",
			resumed.Detected, resumed.Untestable, baseline.Detected, baseline.Untestable)
	}

	// The completed journal now holds every verdict: a further resume
	// replays the whole run without touching a solver.
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("load completed journal: %v", err)
	}
	full, err := serve.ResumeStateFrom(st, c, faults)
	if err != nil {
		t.Fatalf("convert completed journal: %v", err)
	}
	if len(full.Faults) != len(baseline.Results) {
		t.Fatalf("completed journal has %d fault verdicts, run had %d solver results",
			len(full.Faults), len(baseline.Results))
	}
	if len(full.Faults)+len(full.RPT.Detected) != len(faults) {
		t.Fatalf("journal covers %d+%d faults, list has %d",
			len(full.Faults), len(full.RPT.Detected), len(faults))
	}
}
