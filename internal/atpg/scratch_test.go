package atpg

import (
	"context"
	"testing"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/sat"
)

// TestScratchReuseMatchesFresh is the correctness gate for the per-worker
// arenas: the same run with scratch reuse on and off must produce
// identical per-fault verdicts, vectors and solver search statistics.
func TestScratchReuseMatchesFresh(t *testing.T) {
	for cname, c := range parallelTestCircuits() {
		for sname, solver := range map[string]sat.Solver{
			"caching": &sat.Caching{},
			"dpll":    &sat.DPLL{},
		} {
			reuse := &Engine{Solver: solver, VerifyTests: true, Workers: 1}
			fresh := &Engine{Solver: solver, VerifyTests: true, Workers: 1, DisableScratchReuse: true}
			opt := RunOptions{Collapse: true}
			rs, err := reuse.Run(context.Background(), c, opt)
			if err != nil {
				t.Fatalf("%s/%s reuse: %v", cname, sname, err)
			}
			fs, err := fresh.Run(context.Background(), c, opt)
			if err != nil {
				t.Fatalf("%s/%s fresh: %v", cname, sname, err)
			}
			if rs.Detected != fs.Detected || rs.Untestable != fs.Untestable || rs.Aborted != fs.Aborted {
				t.Errorf("%s/%s: reuse (D%d U%d A%d) vs fresh (D%d U%d A%d)", cname, sname,
					rs.Detected, rs.Untestable, rs.Aborted, fs.Detected, fs.Untestable, fs.Aborted)
			}
			if len(rs.Results) != len(fs.Results) {
				t.Fatalf("%s/%s: %d vs %d results", cname, sname, len(rs.Results), len(fs.Results))
			}
			// For cache-free solvers the search itself must be bit-identical:
			// the arenas only change where memory comes from. For Caching,
			// node counts may shift slightly — a reused table keeps its grown
			// capacity across faults and so evicts less — but verdicts and
			// vectors (checked below) never depend on cache behavior, because
			// cache hits only prune UNSAT subtrees.
			_, hasCache := solver.(*sat.Caching)
			for i := range rs.Results {
				r, f := rs.Results[i], fs.Results[i]
				if r.Fault != f.Fault || r.Status != f.Status {
					t.Fatalf("%s/%s: result %d: %v/%v vs %v/%v", cname, sname, i,
						r.Fault, r.Status, f.Fault, f.Status)
				}
				if !hasCache && (r.SolverStats.Nodes != f.SolverStats.Nodes ||
					r.SolverStats.Decisions != f.SolverStats.Decisions) {
					t.Errorf("%s/%s: fault %s stats diverge: reuse %+v vs fresh %+v", cname, sname,
						r.Fault.Name(c), r.SolverStats, f.SolverStats)
				}
			}
			if len(rs.Vectors) != len(fs.Vectors) {
				t.Fatalf("%s/%s: %d vs %d vectors", cname, sname, len(rs.Vectors), len(fs.Vectors))
			}
			for i := range rs.Vectors {
				if len(rs.Vectors[i]) != len(fs.Vectors[i]) {
					t.Fatalf("%s/%s: vector %d length differs", cname, sname, i)
				}
				for j := range rs.Vectors[i] {
					if rs.Vectors[i][j] != fs.Vectors[i][j] {
						t.Fatalf("%s/%s: vector %d bit %d differs", cname, sname, i, j)
					}
				}
			}
		}
	}
}

// TestScratchReuseWithDropAndCacheLimit exercises the arena path together
// with fault dropping (shared simulator scratch) and a per-worker cache
// budget, in parallel, under the race detector in CI.
func TestScratchReuseWithDropAndCacheLimit(t *testing.T) {
	c := gen.Random(gen.RandomParams{Inputs: 10, Gates: 60, Seed: 7})
	e := &Engine{Solver: &sat.Caching{}, VerifyTests: true, Workers: 4}
	sum, err := e.Run(context.Background(), c, RunOptions{
		Collapse:     true,
		DropDetected: true,
		CacheLimit:   1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Aborted != 0 {
		t.Errorf("aborted = %d, want 0", sum.Aborted)
	}
	if cov := sum.Coverage(); cov < 0.99 {
		t.Errorf("coverage = %v, want ~1", cov)
	}
	for _, r := range sum.Results {
		if r.SolverStats.CacheBytes > 1<<16 {
			t.Fatalf("fault %s: CacheBytes %d exceeds the %d-byte limit",
				r.Fault.Name(c), r.SolverStats.CacheBytes, 1<<16)
		}
	}
}
