package atpg

import (
	"context"
	"reflect"
	"testing"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/podem"
	"atpgeasy/internal/sat"
)

func TestClassifyFault(t *testing.T) {
	cases := []struct {
		name  string
		gates int32
		width int32
		want  EffortClass
	}{
		{"tiny cone", routeTrivialGates, 3, ClassTrivial},
		{"tiny cone ignores width", routeTrivialGates - 1, 100, ClassTrivial},
		{"narrow", routeTrivialGates + 1, routeLowWidth, ClassLowWidth},
		{"narrow mid-size", routeStructuralGates, routeLowWidth, ClassLowWidth},
		{"moderate width", 100, routeLowWidth + 1, ClassStructural},
		{"wide but structural-size", routeStructuralGates, 256, ClassStructural},
		{"wide past structural size", routeStructuralGates + 1, routeHardWidth, ClassHard},
		{"narrowish past structural size", routeStructuralGates + 1, routeHardWidth - 1, ClassStructural},
		{"oversized", routeHardGates, 3, ClassHard},
		{"no width estimate", 100, -1, ClassStructural},
		{"no width estimate oversized", routeHardGates + 7, -1, ClassHard},
	}
	for _, tc := range cases {
		ft := FaultFeatures{Gates: tc.gates}
		if got := classifyFault(ft, tc.width); got != tc.want {
			t.Errorf("%s (gates=%d width=%d): class %v, want %v", tc.name, tc.gates, tc.width, got, tc.want)
		}
	}
}

// TestWidthEstimatorMatchesHypergraph: the estimator's cheap bound must
// equal the cut-width of the sub-circuit's topological (identity)
// arrangement as the hypergraph layer measures it — same quantity, no
// induced circuit built.
func TestWidthEstimatorMatchesHypergraph(t *testing.T) {
	for name, c := range map[string]*logic.Circuit{
		"rand": gen.Random(gen.RandomParams{Inputs: 10, Gates: 60, Seed: 7}),
		"cla":  gen.CarryLookaheadAdder(4),
		"mult": gen.ArrayMultiplier(3),
	} {
		faults := Collapse(c, AllFaults(c))
		x := newWidthEstimator(c)
		for _, f := range faults {
			got := x.estimate(f, 0) // widthMax 0: never refine via MLA
			sub, err := SubCircuit(c, f)
			if err != nil {
				t.Fatalf("%s %s: %v", name, f.Name(c), err)
			}
			g := hypergraph.FromCircuit(sub.Circuit)
			order := make([]int, g.NumNodes)
			for i := range order {
				order[i] = i
			}
			want, err := g.CutWidth(order)
			if err != nil {
				t.Fatalf("%s %s: %v", name, f.Name(c), err)
			}
			if int(got) != want {
				t.Errorf("%s %s: estimator width %d, hypergraph says %d", name, f.Name(c), got, want)
			}
		}
	}
}

// routedRun is a helper running the routed portfolio engine.
func routedRun(t *testing.T, c *logic.Circuit, workers int, opt RunOptions) *Summary {
	t.Helper()
	e := &Engine{VerifyTests: true, Workers: workers}
	sum, err := e.Run(context.Background(), c, opt)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestRoutedByteIdenticalAcrossWorkers: a routed run must be
// byte-identical to itself at any worker count — same statuses, same
// vectors, same class and backend tallies. Same property for the
// unrouted run on the same circuit (the pre-existing engine guarantee,
// re-checked here side by side).
func TestRoutedByteIdenticalAcrossWorkers(t *testing.T) {
	c := gen.Random(gen.RandomParams{Inputs: 12, Gates: 120, Seed: 3})
	for _, route := range []bool{true, false} {
		opt := RunOptions{Collapse: true, Incremental: true, Route: route}
		one := routedRun(t, c, 1, opt)
		four := routedRun(t, c, 4, opt)
		if len(one.Results) != len(four.Results) {
			t.Fatalf("route=%v: %d vs %d results", route, len(one.Results), len(four.Results))
		}
		for i := range one.Results {
			a, b := one.Results[i], four.Results[i]
			if a.Fault != b.Fault || a.Status != b.Status {
				t.Errorf("route=%v: fault %d: (%v,%v) vs (%v,%v)", route, i, a.Fault, a.Status, b.Fault, b.Status)
			}
			if !reflect.DeepEqual(a.Vector, b.Vector) {
				t.Errorf("route=%v: fault %s: vectors differ across worker counts:\n  1: %v\n  4: %v",
					route, a.Fault.Name(c), a.Vector, b.Vector)
			}
			if route && a.Backend != b.Backend {
				t.Errorf("route=%v: fault %s: backend %q vs %q", route, a.Fault.Name(c), a.Backend, b.Backend)
			}
		}
		if route {
			if one.Routed == nil || four.Routed == nil {
				t.Fatalf("routed run missing route summary: %v / %v", one.Routed, four.Routed)
			}
			if !reflect.DeepEqual(one.Routed, four.Routed) {
				t.Errorf("route summaries differ across worker counts:\n  1: %+v\n  4: %+v", one.Routed, four.Routed)
			}
		} else if one.Routed != nil || four.Routed != nil {
			t.Errorf("unrouted run reported a route summary")
		}
	}
}

// TestRoutedMatchesUnroutedVerdicts: routing changes who decides a
// fault, never what is decided — per-fault statuses and coverage match
// the unrouted engine exactly (vectors may legitimately differ between
// backends; VerifyTests checks each one independently).
func TestRoutedMatchesUnroutedVerdicts(t *testing.T) {
	for name, c := range map[string]*logic.Circuit{
		"rand": gen.Random(gen.RandomParams{Inputs: 12, Gates: 120, Seed: 5}),
		"cla":  gen.CarryLookaheadAdder(4),
		"mult": gen.ArrayMultiplier(4),
	} {
		unrouted := routedRun(t, c, 1, RunOptions{Collapse: true, Incremental: true})
		routed := routedRun(t, c, 1, RunOptions{Collapse: true, Incremental: true, Route: true})
		if len(unrouted.Results) != len(routed.Results) {
			t.Fatalf("%s: %d vs %d results", name, len(unrouted.Results), len(routed.Results))
		}
		for i := range unrouted.Results {
			a, b := unrouted.Results[i], routed.Results[i]
			if a.Fault != b.Fault || a.Status != b.Status {
				t.Errorf("%s: fault %s: status %v unrouted, %v routed (backend %s)",
					name, a.Fault.Name(c), a.Status, b.Status, b.Backend)
			}
		}
		if unrouted.Coverage() != routed.Coverage() {
			t.Errorf("%s: coverage %v unrouted, %v routed", name, unrouted.Coverage(), routed.Coverage())
		}
		// The routed tallies must cover every live fault.
		total := 0
		for _, n := range routed.Routed.Backends {
			total += n
		}
		if total != routed.Total {
			t.Errorf("%s: backend tallies sum to %d, want %d", name, total, routed.Total)
		}
	}
}

// TestRouteRequiresDPLL: routing silently turns off (falling back to
// the unrouted engine rather than silently changing solvers) when the
// configured solver is not the DPLL family.
func TestRouteRequiresDPLL(t *testing.T) {
	c := gen.CarryLookaheadAdder(2)
	e := &Engine{Solver: &sat.Simple{}, Workers: 1}
	sum, err := e.Run(context.Background(), c, RunOptions{Collapse: true, Route: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Routed != nil {
		t.Errorf("route summary reported with a non-DPLL solver")
	}
	if sum.Coverage() != 1 {
		t.Errorf("coverage %v", sum.Coverage())
	}
}

// TestRoutedWithDropsAndRPT exercises the routed engine in the CLI's
// usual configuration — RPT pre-phase plus fault dropping — where the
// trivial class is deliberately scheduled last so committed vectors
// drop it for free, and clean drops are tallied under the faultsim
// backend.
func TestRoutedWithDropsAndRPT(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	sum := routedRun(t, c, 2, RunOptions{
		Collapse: true, Incremental: true, Route: true,
		DropDetected: true, RPTBatches: DefaultRPTBatches,
	})
	if sum.Coverage() != 1 {
		t.Fatalf("coverage %v", sum.Coverage())
	}
	if sum.Routed == nil {
		t.Fatal("no route summary")
	}
	total := 0
	for _, n := range sum.Routed.Backends {
		total += n
	}
	// RPT-detected faults never reach the backends; everything else must
	// be tallied exactly once (solved or cleanly dropped).
	if want := sum.Total - sum.DetectedByRPT; total != want {
		t.Errorf("backend tallies sum to %d, want %d (total %d − rpt %d)",
			total, want, sum.Total, sum.DetectedByRPT)
	}
	if sum.DroppedByFaultSim > 0 && sum.Routed.Backends[backendFaultSim] != sum.DroppedByFaultSim {
		t.Errorf("faultsim tally %d, dropped %d", sum.Routed.Backends[backendFaultSim], sum.DroppedByFaultSim)
	}
}

// TestPodemAgreesWithCDCL: the structural backend and the CDCL backend
// must return the same verdict for every fault, and every PODEM pattern
// must detect its fault under any X fill — the X-compatibility half of
// the portfolio's interchangeability contract.
func TestPodemAgreesWithCDCL(t *testing.T) {
	for name, c := range map[string]*logic.Circuit{
		"rand": gen.Random(gen.RandomParams{Inputs: 10, Gates: 60, Seed: 7}),
		"cla":  gen.CarryLookaheadAdder(4),
		"mult": gen.ArrayMultiplier(3),
	} {
		cdcl := routedRun(t, c, 1, RunOptions{Collapse: true})
		sc := ComputeScoap(c)
		for _, res := range cdcl.Results {
			f := res.Fault
			pr := podem.Run(c, f.Net, f.StuckAt, podem.Options{CC0: sc.CC0, CC1: sc.CC1})
			var want podem.Status
			switch res.Status {
			case Detected:
				want = podem.Detected
			case Untestable:
				want = podem.Untestable
			default:
				continue
			}
			if pr.Status != want {
				t.Errorf("%s %s: podem says %v, cdcl says %v", name, f.Name(c), pr.Status, res.Status)
				continue
			}
			if pr.Status != podem.Detected {
				continue
			}
			for _, fill := range []bool{false, true} {
				if !VerifyTest(c, f, pr.Vector(fill)) {
					t.Errorf("%s %s: podem pattern with fill=%v misses the fault", name, f.Name(c), fill)
				}
			}
		}
	}
}
