package atpg

import (
	"context"
	"testing"
	"time"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/sat"
)

func parallelTestCircuits() map[string]*logic.Circuit {
	return map[string]*logic.Circuit{
		"rand": gen.Random(gen.RandomParams{Inputs: 10, Gates: 60, Seed: 7}),
		"cla":  gen.CarryLookaheadAdder(4),
		"mult": gen.ArrayMultiplier(3),
	}
}

// TestParallelMatchesSerialNoDrop: without fault dropping every fault is
// solved independently, so a parallel run must reproduce the serial run
// exactly — same per-fault statuses in the same (fault-list) order.
func TestParallelMatchesSerialNoDrop(t *testing.T) {
	for name, c := range parallelTestCircuits() {
		serial := &Engine{VerifyTests: true, Workers: 1}
		par := &Engine{VerifyTests: true, Workers: 4}
		opt := RunOptions{Collapse: true}
		ss, err := serial.Run(context.Background(), c, opt)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		ps, err := par.Run(context.Background(), c, opt)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if ss.Detected != ps.Detected || ss.Untestable != ps.Untestable || ss.Aborted != ps.Aborted {
			t.Errorf("%s: serial (D%d U%d A%d) vs parallel (D%d U%d A%d)", name,
				ss.Detected, ss.Untestable, ss.Aborted, ps.Detected, ps.Untestable, ps.Aborted)
		}
		if ss.Coverage() != ps.Coverage() {
			t.Errorf("%s: coverage %v vs %v", name, ss.Coverage(), ps.Coverage())
		}
		if len(ss.Results) != len(ps.Results) {
			t.Fatalf("%s: %d vs %d results", name, len(ss.Results), len(ps.Results))
		}
		for i := range ss.Results {
			if ss.Results[i].Fault != ps.Results[i].Fault {
				t.Fatalf("%s: result %d fault order differs: %v vs %v", name, i,
					ss.Results[i].Fault, ps.Results[i].Fault)
			}
			if ss.Results[i].Status != ps.Results[i].Status {
				t.Errorf("%s: fault %s status %v vs %v", name,
					ss.Results[i].Fault.Name(c), ss.Results[i].Status, ps.Results[i].Status)
			}
		}
	}
}

// TestParallelMatchesSerialWithDrop: with DropDetected the detected/
// dropped split depends on worker timing, but the aggregate verdicts do
// not: every testable fault ends up detected or dropped, so
// Detected+Dropped, Untestable and Coverage must agree with the serial
// run.
func TestParallelMatchesSerialWithDrop(t *testing.T) {
	for name, c := range parallelTestCircuits() {
		serial := &Engine{VerifyTests: true, Workers: 1}
		par := &Engine{VerifyTests: true, Workers: 4}
		opt := RunOptions{Collapse: true, DropDetected: true}
		ss, err := serial.Run(context.Background(), c, opt)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		ps, err := par.Run(context.Background(), c, opt)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if ss.Untestable != ps.Untestable || ss.Aborted != ps.Aborted {
			t.Errorf("%s: untestable/aborted differ: (%d,%d) vs (%d,%d)", name,
				ss.Untestable, ss.Aborted, ps.Untestable, ps.Aborted)
		}
		if sc, pc := ss.Detected+ss.DroppedByFaultSim, ps.Detected+ps.DroppedByFaultSim; sc != pc {
			t.Errorf("%s: detected+dropped %d vs %d", name, sc, pc)
		}
		if ss.Coverage() != ps.Coverage() {
			t.Errorf("%s: coverage %v vs %v", name, ss.Coverage(), ps.Coverage())
		}
	}
}

// TestParallelResultsInFaultOrder: Results and Vectors must come back in
// fault-list order regardless of worker completion order.
func TestParallelResultsInFaultOrder(t *testing.T) {
	c := gen.CarryLookaheadAdder(4)
	faults := Collapse(c, AllFaults(c))
	pos := make(map[Fault]int, len(faults))
	for i, f := range faults {
		pos[f] = i
	}
	eng := &Engine{VerifyTests: true, Workers: 4}
	sum, err := eng.RunFaults(context.Background(), c, faults, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	last := -1
	vecs := 0
	for _, r := range sum.Results {
		i, ok := pos[r.Fault]
		if !ok {
			t.Fatalf("result for unknown fault %v", r.Fault)
		}
		if i <= last {
			t.Fatalf("results out of fault-list order: index %d after %d", i, last)
		}
		last = i
		if r.Status == Detected {
			if vecs >= len(sum.Vectors) {
				t.Fatal("fewer vectors than detected results")
			}
			vecs++
		}
	}
	if vecs != len(sum.Vectors) {
		t.Errorf("%d vectors for %d detected results", len(sum.Vectors), vecs)
	}
}

// TestPerFaultBudgetAborts: an expired per-fault budget must turn every
// solver call into a prompt Aborted, not a hang — even for the unlimited
// Simple solver on multiplier miters it could never finish.
func TestPerFaultBudgetAborts(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	eng := &Engine{Solver: &sat.Simple{}, Workers: 2}
	done := make(chan *Summary, 1)
	errc := make(chan error, 1)
	go func() {
		sum, err := eng.Run(context.Background(), c, RunOptions{Collapse: true, PerFaultBudget: time.Nanosecond})
		if err != nil {
			errc <- err
			return
		}
		done <- sum
	}()
	select {
	case err := <-errc:
		t.Fatal(err)
	case sum := <-done:
		if sum.Aborted == 0 {
			t.Fatalf("no aborts under a 1ns budget: %+v", sum)
		}
		if sum.Detected != 0 {
			t.Errorf("detected %d faults under a 1ns budget", sum.Detected)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not terminate under a tiny per-fault budget")
	}
}

// TestRunFaultsCancelledContext: a cancelled context drains the run
// immediately with ctx.Err() and a partial (possibly empty) summary, and
// cancellation is not misreported as per-fault aborts.
func TestRunFaultsCancelledContext(t *testing.T) {
	c := gen.CarryLookaheadAdder(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := &Engine{Workers: 4}
	sum, err := eng.Run(ctx, c, RunOptions{Collapse: true, DropDetected: true})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sum == nil {
		t.Fatal("no partial summary returned")
	}
	if len(sum.Results) != 0 || sum.Aborted != 0 {
		t.Errorf("pre-cancelled run recorded %d results, %d aborts", len(sum.Results), sum.Aborted)
	}
}

// TestParallelVerifiesVectors: every vector from a racy parallel run must
// still detect its fault (the extract pipeline is worker-local).
func TestParallelVerifiesVectors(t *testing.T) {
	c := gen.Random(gen.RandomParams{Inputs: 9, Gates: 50, Seed: 11})
	eng := &Engine{Workers: 4}
	sum, err := eng.Run(context.Background(), c, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sum.Results {
		if r.Status == Detected && !VerifyTest(c, r.Fault, r.Vector) {
			t.Errorf("vector for %s does not verify", r.Fault.Name(c))
		}
	}
}
