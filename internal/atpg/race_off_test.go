//go:build !race

package atpg

// raceEnabled reports whether the test binary was built with -race;
// allocation-count assertions are skipped there because the race
// runtime's instrumentation allocates.
const raceEnabled = false
