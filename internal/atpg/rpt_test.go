package atpg

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"atpgeasy/internal/faultsim"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
)

// detectsByVectors fault-simulates a vector set (chunked into 64-pattern
// batches) and reports, per fault, whether any vector detects it.
func detectsByVectors(t *testing.T, c *logic.Circuit, faults []Fault, vecs [][]bool) []bool {
	t.Helper()
	hit := make([]bool, len(faults))
	for lo := 0; lo < len(vecs); lo += 64 {
		hi := min(lo+64, len(vecs))
		words, err := faultsim.PackPatterns(c, vecs[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		sim, err := faultsim.NewSimulator(c, words, hi-lo)
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range faults {
			if !hit[i] && sim.DetectsAny(f.Net, f.StuckAt) != 0 {
				hit[i] = true
			}
		}
	}
	return hit
}

// TestRPTDeterminism: the same seed yields identical vector sets and
// summaries at any worker count — the RPT coordinator generates patterns
// serially and each fault's detection mask is shard-independent.
func TestRPTDeterminism(t *testing.T) {
	for name, c := range parallelTestCircuits() {
		opt := RunOptions{
			Collapse: true, Dominance: true,
			RPTBatches: DefaultRPTBatches, Seed: 42,
		}
		var base *Summary
		for _, workers := range []int{1, 2, 4} {
			eng := &Engine{VerifyTests: true, Workers: workers}
			sum, err := eng.Run(context.Background(), c, opt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if sum.DetectedByRPT == 0 {
				t.Errorf("%s workers=%d: RPT detected nothing", name, workers)
			}
			if base == nil {
				base = sum
				continue
			}
			if !reflect.DeepEqual(base.Vectors, sum.Vectors) {
				t.Errorf("%s workers=%d: vector set differs from workers=1", name, workers)
			}
			if base.DetectedByRPT != sum.DetectedByRPT || base.RPTBatches != sum.RPTBatches ||
				base.RPTVectors != sum.RPTVectors {
				t.Errorf("%s workers=%d: RPT stats (%d,%d,%d) vs (%d,%d,%d)", name, workers,
					sum.DetectedByRPT, sum.RPTBatches, sum.RPTVectors,
					base.DetectedByRPT, base.RPTBatches, base.RPTVectors)
			}
			if base.Detected != sum.Detected || base.Untestable != sum.Untestable || base.Aborted != sum.Aborted {
				t.Errorf("%s workers=%d: verdicts (D%d U%d A%d) vs (D%d U%d A%d)", name, workers,
					sum.Detected, sum.Untestable, sum.Aborted,
					base.Detected, base.Untestable, base.Aborted)
			}
			if len(base.Results) != len(sum.Results) {
				t.Fatalf("%s workers=%d: %d results vs %d", name, workers, len(sum.Results), len(base.Results))
			}
			for i := range base.Results {
				if base.Results[i].Fault != sum.Results[i].Fault || base.Results[i].Status != sum.Results[i].Status {
					t.Errorf("%s workers=%d: result %d differs: %v/%v vs %v/%v", name, workers, i,
						sum.Results[i].Fault, sum.Results[i].Status, base.Results[i].Fault, base.Results[i].Status)
				}
			}
		}
		// A different seed still converges to the same coverage.
		eng := &Engine{Workers: 2}
		opt.Seed = 1
		sum2, err := eng.Run(context.Background(), c, opt)
		if err != nil {
			t.Fatal(err)
		}
		if sum2.Coverage() != base.Coverage() {
			t.Errorf("%s: coverage %v under seed 1 vs %v under seed 42", name, sum2.Coverage(), base.Coverage())
		}
	}
}

// TestPhasesPartition: the per-phase durations are measured on disjoint
// code paths, so on a single worker they must sum to at most the wall
// time, and Build/Solve must equal the per-result sums exactly.
func TestPhasesPartition(t *testing.T) {
	c := gen.CarryLookaheadAdder(6)
	eng := &Engine{Workers: 1}
	sum, err := eng.Run(context.Background(), c, RunOptions{
		Collapse: true, Dominance: true, DropDetected: true,
		RPTBatches: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var build, solve int64
	for _, r := range sum.Results {
		build += r.BuildElapsed.Nanoseconds()
		solve += r.Elapsed.Nanoseconds()
	}
	if sum.Phases.Build.Nanoseconds() != build {
		t.Errorf("Phases.Build %d != sum of per-result build %d", sum.Phases.Build.Nanoseconds(), build)
	}
	if sum.Phases.Solve.Nanoseconds() != solve {
		t.Errorf("Phases.Solve %d != sum of per-result solve %d", sum.Phases.Solve.Nanoseconds(), solve)
	}
	if sum.Phases.Solve != sum.Elapsed {
		t.Errorf("Phases.Solve %v != Summary.Elapsed %v", sum.Phases.Solve, sum.Elapsed)
	}
	if sum.Phases.RPT <= 0 {
		t.Error("Phases.RPT not measured")
	}
	total := sum.Phases.RPT + sum.Phases.Build + sum.Phases.Solve + sum.Phases.FaultSim
	if total > sum.WallElapsed {
		t.Errorf("serial phase sum %v exceeds wall time %v (phases double-count)", total, sum.WallElapsed)
	}
}

// TestRPTReducesSolverCalls: the pre-phase must keep coverage identical
// while cutting SAT solver invocations by well over half — the acceptance
// criterion of the TEGUS-style flow.
func TestRPTReducesSolverCalls(t *testing.T) {
	c := gen.CarryLookaheadAdder(8)
	base := RunOptions{Collapse: true, Dominance: true, Seed: 7}
	eng := &Engine{Workers: 2}
	off, err := eng.Run(context.Background(), c, base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.RPTBatches = DefaultRPTBatches
	sum, err := eng.Run(context.Background(), c, on)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Coverage() != off.Coverage() {
		t.Errorf("coverage with RPT %v, without %v", sum.Coverage(), off.Coverage())
	}
	if sum.Total != off.Total {
		t.Errorf("fault lists differ: %d vs %d", sum.Total, off.Total)
	}
	callsOn, callsOff := len(sum.Results), len(off.Results)
	if callsOn*2 > callsOff {
		t.Errorf("RPT left %d of %d solver calls (> 50%%)", callsOn, callsOff)
	}
	if callsOn+sum.DetectedByRPT != callsOff {
		t.Errorf("solver calls %d + RPT detections %d != %d faults", callsOn, sum.DetectedByRPT, callsOff)
	}
}

// TestRPTVectorSetCoversClaimedFaults: every fault the summary counts as
// covered (SAT-detected, RPT-detected, or drop-list) must actually be
// detected by the final vector set.
func TestRPTVectorSetCoversClaimedFaults(t *testing.T) {
	for name, c := range parallelTestCircuits() {
		faults := CollapseDominance(c, Collapse(c, AllFaults(c)))
		eng := &Engine{VerifyTests: true, Workers: 4}
		sum, err := eng.RunFaults(context.Background(), c, faults, RunOptions{
			DropDetected: true, RPTBatches: DefaultRPTBatches, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		unresolved := make(map[Fault]bool)
		for _, r := range sum.Results {
			if r.Status != Detected {
				unresolved[r.Fault] = true
			}
		}
		hit := detectsByVectors(t, c, faults, sum.Vectors)
		for i, f := range faults {
			if unresolved[f] {
				continue
			}
			if !hit[i] {
				t.Errorf("%s: covered fault %s not detected by the final vector set", name, f.Name(c))
			}
		}
		if want := sum.Detected + sum.DetectedByRPT + sum.DroppedByFaultSim + sum.Untestable + sum.Aborted; want != sum.Total {
			t.Errorf("%s: verdicts %d do not partition %d faults", name, want, sum.Total)
		}
	}
}

// TestDominanceProperty exhaustively verifies the dominance relation on
// every pair CollapseDominance acts on: any input vector detecting the
// justifier must detect the dropped fault.
func TestDominanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	circuits := []*logic.Circuit{
		gen.CarryLookaheadAdder(3),
		logic.Figure4a(),
	}
	for i := 0; i < 6; i++ {
		circuits = append(circuits, randomCircuit(rng, 30+5*i))
	}
	for _, c := range circuits {
		if len(c.Inputs) > 14 {
			t.Fatalf("%s: too many inputs (%d) for exhaustive check", c.Name, len(c.Inputs))
		}
		faults := Collapse(c, AllFaults(c))
		pairs := DominancePairs(c, faults)
		collapsed := CollapseDominance(c, faults)
		dropSet := make(map[Fault]bool)
		for _, p := range pairs {
			dropSet[p.Dropped] = true
		}
		if len(faults)-len(collapsed) != len(dropSet) {
			t.Errorf("%s: collapsed %d faults but %d distinct drops", c.Name, len(faults)-len(collapsed), len(dropSet))
		}
		for _, f := range collapsed {
			if dropSet[f] {
				t.Errorf("%s: dropped fault %s survived collapsing", c.Name, f.Name(c))
			}
		}
		nin := len(c.Inputs)
		for _, p := range pairs {
			for pat := 0; pat < 1<<uint(nin); pat++ {
				in := make([]bool, nin)
				for i := range in {
					in[i] = pat>>uint(i)&1 == 1
				}
				if VerifyTest(c, p.Justifier, in) && !VerifyTest(c, p.Dropped, in) {
					t.Fatalf("%s: vector %v detects justifier %s but not dominated %s",
						c.Name, in, p.Justifier.Name(c), p.Dropped.Name(c))
				}
			}
		}
	}
}

// TestDominanceEndToEnd: after a dominance-collapsed run, every dropped
// fault whose justifier was detected is itself detected by the final
// vector set — dominance never silently loses those faults.
func TestDominanceEndToEnd(t *testing.T) {
	c := gen.CarryLookaheadAdder(4)
	equiv := Collapse(c, AllFaults(c))
	pairs := DominancePairs(c, equiv)
	if len(pairs) == 0 {
		t.Fatal("no dominance pairs on cla4")
	}
	eng := &Engine{VerifyTests: true, Workers: 2}
	sum, err := eng.Run(context.Background(), c, RunOptions{
		Collapse: true, Dominance: true, DropDetected: true,
		RPTBatches: DefaultRPTBatches, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var justifiers, droppedFaults []Fault
	for _, p := range pairs {
		justifiers = append(justifiers, p.Justifier)
		droppedFaults = append(droppedFaults, p.Dropped)
	}
	jHit := detectsByVectors(t, c, justifiers, sum.Vectors)
	dHit := detectsByVectors(t, c, droppedFaults, sum.Vectors)
	for i, p := range pairs {
		if jHit[i] && !dHit[i] {
			t.Errorf("justifier %s detected but dominated %s missed by the test set",
				p.Justifier.Name(c), p.Dropped.Name(c))
		}
	}
}
