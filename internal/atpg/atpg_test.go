package atpg

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"atpgeasy/internal/logic"
	"atpgeasy/internal/sat"
)

func TestFaultString(t *testing.T) {
	c := logic.Figure4a()
	f := Fault{Net: c.MustLookup("f"), StuckAt: true}
	if got := f.Name(c); got != "f/1" {
		t.Errorf("Name = %q", got)
	}
	if !strings.Contains(f.String(), "/1") {
		t.Errorf("String = %q", f.String())
	}
}

func TestAllFaults(t *testing.T) {
	c := logic.Figure4a()
	faults := AllFaults(c)
	if len(faults) != 18 {
		t.Errorf("fault count = %d, want 2×9 = 18", len(faults))
	}
	b := logic.NewBuilder("k")
	x := b.Input("x")
	one := b.Const("one", true)
	g := b.Gate(logic.And, "g", x, one)
	b.MarkOutput(g)
	c2 := b.MustBuild()
	faults2 := AllFaults(c2)
	if len(faults2) != 4 {
		t.Errorf("const net faults not skipped: %d faults", len(faults2))
	}
}

func TestCollapse(t *testing.T) {
	c := logic.Figure4a()
	all := AllFaults(c)
	col := Collapse(c, all)
	if len(col) >= len(all) {
		t.Fatalf("collapse did not reduce: %d → %d", len(all), len(col))
	}
	// Net b feeds only f = AND(b, ¬c) un-inverted → b/0 ≡ f/0 dropped,
	// b/1 kept.
	b := c.MustLookup("b")
	for _, f := range col {
		if f.Net == b && !f.StuckAt {
			t.Error("b/0 should have been collapsed onto f/0")
		}
	}
	kept := false
	for _, f := range col {
		if f.Net == b && f.StuckAt {
			kept = true
		}
	}
	if !kept {
		t.Error("b/1 must be kept")
	}
	// Net c feeds f inverted → c/1 collapses (controlling 0 at pin = net 1).
	cc := c.MustLookup("c")
	for _, f := range col {
		if f.Net == cc && f.StuckAt {
			t.Error("c/1 should have been collapsed (inverted AND input)")
		}
	}
}

// TestCollapseEquivalence verifies the collapsing claim by brute force:
// each dropped fault has exactly the same test set as some kept fault on
// the reader's output net.
func TestCollapseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(rng, 12)
		all := AllFaults(c)
		col := Collapse(c, all)
		kept := make(map[Fault]bool, len(col))
		for _, f := range col {
			kept[f] = true
		}
		for _, f := range all {
			if kept[f] {
				continue
			}
			// Dropped: find the equivalent output fault and compare test
			// sets over all input patterns.
			g := c.Nodes[f.Net].Fanout[0]
			matched := false
			for _, sa := range []bool{false, true} {
				if !sameTestSet(c, f, Fault{Net: g, StuckAt: sa}) {
					continue
				}
				matched = true
				break
			}
			if !matched {
				t.Errorf("trial %d: dropped fault %s has no equivalent on gate %s",
					trial, f.Name(c), c.Nodes[g].Name)
			}
		}
	}
}

func sameTestSet(c *logic.Circuit, a, b Fault) bool {
	nin := len(c.Inputs)
	for pat := 0; pat < 1<<uint(nin); pat++ {
		in := make([]bool, nin)
		for i := range in {
			in[i] = pat>>uint(i)&1 == 1
		}
		if VerifyTest(c, a, in) != VerifyTest(c, b, in) {
			return false
		}
	}
	return true
}

func TestSubCircuit(t *testing.T) {
	c := logic.Figure4a()
	f := Fault{Net: c.MustLookup("g"), StuckAt: false}
	sub, err := SubCircuit(c, f)
	if err != nil {
		t.Fatal(err)
	}
	// Fanout of g is {g, i}; the transitive fanin of {g, i} includes h and
	// its whole cone, so C_ψ^sub is the entire 9-node circuit here.
	if sub.NumNodes() != 9 {
		t.Errorf("C_ψ^sub nodes = %d, want 9 (%v)", sub.NumNodes(), sub.Names(sub.TopoOrder()))
	}
	// A genuinely partial case: fault on d in a circuit where d's fanout
	// cone is shallow — use fault on input a: fanout {a,h,i}, fanin of
	// that is everything except nothing... for fig4a any output-reaching
	// fault pulls in the whole circuit, so instead check cut inputs stay
	// inputs.
	if hID, ok := sub.Lookup("h"); !ok || sub.Nodes[hID].Type != logic.And {
		t.Error("h must appear as a gate inside C_ψ^sub")
	}
	if len(sub.Outputs) != 1 || sub.Nodes[sub.Outputs[0]].Name != "i" {
		t.Errorf("sub outputs = %v", sub.Names(sub.Outputs))
	}
	if _, err := SubCircuit(c, Fault{Net: 99}); err == nil {
		t.Error("out-of-range fault accepted")
	}
}

func TestMiterStructure(t *testing.T) {
	c := logic.Figure4a()
	fID := c.MustLookup("f")
	m, err := NewMiter(c, Fault{Net: fID, StuckAt: true})
	if err != nil {
		t.Fatal(err)
	}
	// Good copies: whole circuit (9). Faulty copies: fanout of f = {f,h,i}
	// (3). XORs: 1. Total 13 nodes.
	if m.Circuit.NumNodes() != 13 {
		t.Errorf("miter nodes = %d, want 13", m.Circuit.NumNodes())
	}
	if m.GoodFault != m.GoodOf[fID] {
		t.Error("GoodFault mapping wrong")
	}
	if m.FaultyOf[fID] < 0 || m.Circuit.Nodes[m.FaultyOf[fID]].Type != logic.Const1 {
		t.Error("faulty fault-net must be a Const1 driver for s-a-1")
	}
	if len(m.Observable) != 1 || m.Observable[0] != c.MustLookup("i") {
		t.Errorf("observable = %v", m.Observable)
	}
	if err := m.Circuit.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMiterUnobservable(t *testing.T) {
	// A net with no path to any primary output.
	b := logic.NewBuilder("dead")
	x := b.Input("x")
	y := b.Input("y")
	b.Gate(logic.And, "dead", x, y) // not an output, no readers
	o := b.Gate(logic.Or, "o", x, y)
	b.MarkOutput(o)
	c := b.MustBuild()
	_, err := NewMiter(c, Fault{Net: c.MustLookup("dead"), StuckAt: false})
	if err != ErrUnobservable {
		t.Errorf("err = %v, want ErrUnobservable", err)
	}
}

// TestATPGFigure4a generates tests for all faults of the worked example
// and cross-checks every outcome against exhaustive simulation.
func TestATPGFigure4a(t *testing.T) {
	c := logic.Figure4a()
	eng := &Engine{VerifyTests: true}
	for _, f := range AllFaults(c) {
		res, err := eng.TestFault(c, f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(c), err)
		}
		want := exhaustivelyTestable(c, f)
		switch res.Status {
		case Detected:
			if !want {
				t.Errorf("%s: detected but exhaustively untestable", f.Name(c))
			}
			if !VerifyTest(c, f, res.Vector) {
				t.Errorf("%s: vector fails verification", f.Name(c))
			}
		case Untestable:
			if want {
				t.Errorf("%s: declared untestable but a test exists", f.Name(c))
			}
		default:
			t.Errorf("%s: aborted", f.Name(c))
		}
		if res.Vars <= 0 || res.Clauses <= 0 {
			t.Errorf("%s: instance size not recorded (%d vars %d clauses)", f.Name(c), res.Vars, res.Clauses)
		}
	}
}

func exhaustivelyTestable(c *logic.Circuit, f Fault) bool {
	nin := len(c.Inputs)
	for pat := 0; pat < 1<<uint(nin); pat++ {
		in := make([]bool, nin)
		for i := range in {
			in[i] = pat>>uint(i)&1 == 1
		}
		if VerifyTest(c, f, in) {
			return true
		}
	}
	return false
}

// TestATPGAgainstExhaustive: property test over random circuits and all
// three solvers.
func TestATPGAgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	engines := map[string]*Engine{
		"dpll":    {Solver: &sat.DPLL{}, VerifyTests: true},
		"simple":  {Solver: &sat.Simple{}, VerifyTests: true},
		"caching": {Solver: &sat.Caching{}, VerifyTests: true},
	}
	for trial := 0; trial < 8; trial++ {
		c := randomCircuit(rng, 10)
		faults := AllFaults(c)
		for name, eng := range engines {
			for _, f := range faults {
				res, err := eng.TestFault(c, f)
				if err != nil {
					t.Fatalf("trial %d %s %s: %v", trial, name, f.Name(c), err)
				}
				want := exhaustivelyTestable(c, f)
				if (res.Status == Detected) != want {
					t.Errorf("trial %d %s %s: status %v, testable=%v",
						trial, name, f.Name(c), res.Status, want)
				}
			}
		}
	}
}

// TestUntestableFaultDetected builds a circuit with redundancy: the fault
// on the redundant net must be proved untestable.
func TestUntestableFault(t *testing.T) {
	// o = OR(x, AND(x, y)): the AND is redundant (absorption); AND/0 is
	// untestable.
	b := logic.NewBuilder("redundant")
	x := b.Input("x")
	y := b.Input("y")
	a := b.Gate(logic.And, "a", x, y)
	o := b.Gate(logic.Or, "o", x, a)
	b.MarkOutput(o)
	c := b.MustBuild()
	eng := &Engine{}
	res, err := eng.TestFault(c, Fault{Net: a, StuckAt: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Untestable {
		t.Errorf("a/0 status = %v, want untestable (absorbed by x)", res.Status)
	}
	// a/1 is testable: x=0, y arbitrary... o_good = 0 requires x=0, a=0;
	// faulty a=1 → o=1. Detected with x=0.
	res, err = eng.TestFault(c, Fault{Net: a, StuckAt: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Detected {
		t.Errorf("a/1 status = %v, want detected", res.Status)
	}
}

func TestRunFullCircuit(t *testing.T) {
	c := logic.Figure4a()
	eng := &Engine{VerifyTests: true}
	sum, err := eng.Run(context.Background(), c, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 18 {
		t.Errorf("total = %d", sum.Total)
	}
	if sum.Detected+sum.Untestable != sum.Total || sum.Aborted != 0 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Coverage() != 1 {
		t.Errorf("coverage = %v, want 1 (every testable fault detected)", sum.Coverage())
	}
	if len(sum.Vectors) != sum.Detected {
		t.Errorf("vectors = %d, detected = %d", len(sum.Vectors), sum.Detected)
	}
}

func TestRunWithCollapseAndDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	c := randomCircuit(rng, 30)
	eng := &Engine{VerifyTests: true}
	plain, err := eng.Run(context.Background(), c, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := eng.Run(context.Background(), c, RunOptions{Collapse: true, DropDetected: true})
	if err != nil {
		t.Fatal(err)
	}
	if dropped.Total >= plain.Total {
		t.Errorf("collapsing did not reduce fault count: %d vs %d", dropped.Total, plain.Total)
	}
	// Both runs must achieve full coverage of testable faults.
	if plain.Coverage() != 1 || dropped.Coverage() != 1 {
		t.Errorf("coverage: plain %v dropped %v", plain.Coverage(), dropped.Coverage())
	}
	// The compacted run must invoke the solver less often.
	if dropped.DroppedByFaultSim == 0 {
		t.Log("note: fault simulation dropped nothing on this circuit")
	}
	if len(dropped.Results) > dropped.Total {
		t.Error("more solver calls than faults")
	}
}

// TestCompactedTestSetCoversCollapsedFaults: the vectors from a
// DropDetected run must detect every fault the run reported as detected
// or dropped.
func TestCompactedTestSetCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	c := randomCircuit(rng, 25)
	eng := &Engine{}
	sum, err := eng.Run(context.Background(), c, RunOptions{Collapse: true, DropDetected: true})
	if err != nil {
		t.Fatal(err)
	}
	faults := Collapse(c, AllFaults(c))
	for _, f := range faults {
		if !exhaustivelyTestable(c, f) {
			continue
		}
		covered := false
		for _, v := range sum.Vectors {
			if VerifyTest(c, f, v) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("testable fault %s not covered by the compacted set", f.Name(c))
		}
	}
}

func randomCircuit(rng *rand.Rand, n int) *logic.Circuit {
	b := logic.NewBuilder("rand")
	nin := 3 + rng.Intn(3)
	for i := 0; i < nin; i++ {
		b.Input("in" + string(rune('a'+i)))
	}
	types := []logic.GateType{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	for i := 0; i < n; i++ {
		gt := types[rng.Intn(len(types))]
		arity := 1
		if gt != logic.Not {
			arity = 1 + rng.Intn(3)
		}
		fanin := make([]int, arity)
		neg := make([]bool, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(b.NumNodes())
			neg[j] = rng.Intn(4) == 0
		}
		b.GateN(gt, "g"+string(rune('A'+i%26))+string(rune('0'+i/26)), fanin, neg)
	}
	b.MarkOutput(b.NumNodes() - 1)
	if b.NumNodes() >= 2 {
		b.MarkOutput(b.NumNodes() - 2)
	}
	return b.MustBuild()
}

// TestCollapseKeepsPrimaryOutputFaults: a net that is both a primary
// output and the single input of a downstream gate is directly
// observable, so its faults must survive collapsing. (o1 = NOT x is a PO
// and also feeds o2; x/0 at o1 is detectable even when masked at o2.)
func TestCollapseKeepsPrimaryOutputFaults(t *testing.T) {
	b := logic.NewBuilder("pofault")
	x := b.Input("x")
	y := b.Input("y")
	o1 := b.Gate(logic.Not, "o1", x)
	o2 := b.Gate(logic.Or, "o2", o1, y) // masks o1 when y = 1
	b.MarkOutput(o1)
	b.MarkOutput(o2)
	c := b.MustBuild()
	col := Collapse(c, AllFaults(c))
	for _, want := range []Fault{{Net: o1, StuckAt: false}, {Net: o1, StuckAt: true}} {
		found := false
		for _, f := range col {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("fault %s on a primary output dropped by collapsing", want.Name(c))
		}
	}
	// The demonstration vector: x=0 makes good o1 = 1 (faulty 0), and
	// y=1 masks the effect at o2 — only the direct o1 observation detects,
	// which is exactly what naive collapsing onto o2 would have lost.
	if !VerifyTest(c, Fault{Net: o1, StuckAt: false}, []bool{false, true}) {
		t.Error("x=0,y=1 should detect o1/0 at the o1 output")
	}
}
