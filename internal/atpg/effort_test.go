package atpg

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/obs"
)

// TestScoapGates pins the classic SCOAP recurrences on hand-checkable
// gates (Goldstein's worked examples).
func TestScoapGates(t *testing.T) {
	b := logic.NewBuilder("scoap")
	a := b.Input("a")
	bb := b.Input("b")
	and := b.Gate(logic.And, "and", a, bb)
	b.MarkOutput(and)
	c := b.MustBuild()
	s := ComputeScoap(c)

	if s.CC0[a] != 1 || s.CC1[a] != 1 {
		t.Errorf("input CC = (%d,%d), want (1,1)", s.CC0[a], s.CC1[a])
	}
	// AND: CC0 = min(CC0 inputs)+1 = 2, CC1 = sum(CC1 inputs)+1 = 3.
	if s.CC0[and] != 2 || s.CC1[and] != 3 {
		t.Errorf("AND CC = (%d,%d), want (2,3)", s.CC0[and], s.CC1[and])
	}
	// Output observes itself for free; observing a costs CC1(b)+1.
	if s.CO[and] != 0 {
		t.Errorf("output CO = %d, want 0", s.CO[and])
	}
	if s.CO[a] != 2 {
		t.Errorf("CO(a) through AND = %d, want 2", s.CO[a])
	}
}

func TestScoapXorAndInversion(t *testing.T) {
	b := logic.NewBuilder("scoap2")
	a := b.Input("a")
	bb := b.Input("b")
	x := b.Gate(logic.Xor, "x", a, bb)
	// g = AND(a, ¬b): the bubble swaps which controllability pin b pays.
	g := b.GateN(logic.And, "g", []int{a, bb}, []bool{false, true})
	n := b.Gate(logic.Not, "n", a)
	b.MarkOutput(x)
	b.MarkOutput(g)
	b.MarkOutput(n)
	c := b.MustBuild()
	s := ComputeScoap(c)

	// XOR parity DP over unit inputs: CC0 = CC1 = 3.
	if s.CC0[x] != 3 || s.CC1[x] != 3 {
		t.Errorf("XOR CC = (%d,%d), want (3,3)", s.CC0[x], s.CC1[x])
	}
	// AND with inverted b: CC1 = CC1(a)+CC0(b)+1 = 3, CC0 = min(CC0(a), CC1(b))+1 = 2.
	if s.CC0[g] != 2 || s.CC1[g] != 3 {
		t.Errorf("AND(a,¬b) CC = (%d,%d), want (2,3)", s.CC0[g], s.CC1[g])
	}
	// NOT swaps controllabilities and adds 1.
	if s.CC0[n] != 2 || s.CC1[n] != 2 {
		t.Errorf("NOT CC = (%d,%d), want (2,2)", s.CC0[n], s.CC1[n])
	}
	// a is observed cheapest through the NOT output (CO(n)=0, no side
	// pins): CO(a) = 1; the XOR and AND paths cost 2 and lose the min.
	if s.CO[a] != 1 {
		t.Errorf("CO(a) = %d, want 1", s.CO[a])
	}
	// b's only paths are XOR (side cost min(CC0(a),CC1(a))=1) and the
	// inverted AND pin (side cost CC1(a)=1): CO(b) = 2 either way.
	if s.CO[bb] != 2 {
		t.Errorf("CO(b) = %d, want 2", s.CO[bb])
	}
}

func TestScoapConstSaturates(t *testing.T) {
	b := logic.NewBuilder("scoap3")
	x := b.Input("x")
	one := b.Const("one", true)
	g := b.Gate(logic.And, "g", x, one)
	b.MarkOutput(g)
	c := b.MustBuild()
	s := ComputeScoap(c)
	if s.CC1[one] != 0 || s.CC0[one] != scoapInf {
		t.Errorf("const-1 CC = (%d,%d), want (inf,0)", s.CC0[one], s.CC1[one])
	}
	// Sums through the uncontrollable pin must saturate, never overflow.
	if s.CC0[g] < 0 || s.CC1[g] < 0 || s.CC0[g] > scoapInf || s.CC1[g] > scoapInf {
		t.Errorf("saturation broken: CC(g) = (%d,%d)", s.CC0[g], s.CC1[g])
	}
}

// TestFaultFeatures pins the structural features on a 3-node chain
// a → NOT b → NOT out.
func TestFaultFeatures(t *testing.T) {
	bld := logic.NewBuilder("chain")
	a := bld.Input("a")
	nb := bld.Gate(logic.Not, "b", a)
	out := bld.Gate(logic.Not, "out", nb)
	bld.MarkOutput(out)
	c := bld.MustBuild()

	faults := []Fault{{Net: a, StuckAt: false}, {Net: out, StuckAt: true}}
	feats := computeFeatures(c, faults, false, 2)

	fa := feats[0]
	if fa.ConeSize != 3 || fa.ConeDepth != 3 {
		t.Errorf("a: cone (size %d, depth %d), want (3, 3)", fa.ConeSize, fa.ConeDepth)
	}
	if fa.Gates != 2 {
		t.Errorf("a: gates = %d, want 2", fa.Gates)
	}
	if fa.CutWidth != -1 {
		t.Errorf("a: cut width = %d, want -1 when extraction is off", fa.CutWidth)
	}
	fo := feats[1]
	if fo.ConeSize != 1 || fo.ConeDepth != 1 {
		t.Errorf("out: cone (size %d, depth %d), want (1, 1)", fo.ConeSize, fo.ConeDepth)
	}
	// out's sub-circuit is its own fanin support: both NOT gates.
	if fo.Gates != 2 {
		t.Errorf("out: gates = %d, want 2", fo.Gates)
	}

	wide := computeFeatures(c, faults, true, 1)
	if wide[0].CutWidth < 1 {
		t.Errorf("cut width = %d, want >= 1 with extraction on", wide[0].CutWidth)
	}
}

// TestEffortLogRoundTrip is the log's core invariant: exactly one
// non-wasted record per fault that received a verdict, statuses joining
// Summary.Results losslessly, under both serial and parallel runs.
func TestEffortLogRoundTrip(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		log := NewEffortLog(&buf)
		eng := &Engine{Workers: workers}
		sum, err := eng.Run(context.Background(), c, RunOptions{
			Collapse: true, DropDetected: true,
			RPTBatches: DefaultRPTBatches,
			EffortLog:  log,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := log.Close(); err != nil {
			t.Fatalf("workers=%d: close: %v", workers, err)
		}

		hdr, recs, err := DecodeEffortLog(&buf)
		if err != nil {
			t.Fatalf("workers=%d: decode: %v", workers, err)
		}
		if hdr.Schema != EffortSchema || hdr.Circuit != c.Name || hdr.Faults != sum.Total || hdr.Workers != workers {
			t.Fatalf("workers=%d: header %+v", workers, hdr)
		}

		// Every fault with a verdict gets exactly one non-wasted record;
		// cleanly dropped faults get none.
		byIdx := map[int]EffortRecord{}
		wasted := 0
		for _, r := range recs {
			if r.Phase == "dropped" {
				wasted++
				if !r.Wasted || r.Status != "dropped" {
					t.Errorf("workers=%d: dropped record not marked wasted: %+v", workers, r)
				}
				continue
			}
			if prev, dup := byIdx[r.Index]; dup {
				t.Errorf("workers=%d: fault %d recorded twice: %+v / %+v", workers, r.Index, prev, r)
			}
			byIdx[r.Index] = r
		}
		want := sum.Total - sum.DroppedByFaultSim
		if len(byIdx) != want {
			t.Errorf("workers=%d: %d verdict records, want %d (total %d − dropped %d)",
				workers, len(byIdx), want, sum.Total, sum.DroppedByFaultSim)
		}
		if wasted != sum.WastedSolves {
			t.Errorf("workers=%d: %d wasted records, want %d", workers, wasted, sum.WastedSolves)
		}
		if sum.DetectedByRPT > 0 {
			rpt := 0
			for _, r := range byIdx {
				if r.Phase == "rpt" {
					rpt++
				}
			}
			if rpt != sum.DetectedByRPT {
				t.Errorf("workers=%d: %d rpt records, want %d", workers, rpt, sum.DetectedByRPT)
			}
		}

		// Statuses and solver counters must join Summary.Results exactly.
		byName := map[string]Result{}
		for _, r := range sum.Results {
			byName[r.Fault.Name(c)] = r
		}
		for _, r := range byIdx {
			if r.ConeSize < 1 || r.Gates < 1 {
				t.Errorf("workers=%d: empty features on %+v", workers, r)
			}
			if r.CutWidth != -1 {
				t.Errorf("workers=%d: cut width %d recorded with extraction off", workers, r.CutWidth)
			}
			res, ok := byName[r.Fault]
			if !ok {
				if r.Phase != "rpt" {
					t.Errorf("workers=%d: record %q (phase %s) has no summary result", workers, r.Fault, r.Phase)
				}
				continue
			}
			if r.Status != res.Status.String() {
				t.Errorf("workers=%d: %q status %q, summary says %q", workers, r.Fault, r.Status, res.Status)
			}
			if r.Effort != res.SolverStats.SearchEffort() {
				t.Errorf("workers=%d: %q effort %d, summary says %d", workers, r.Fault, r.Effort, res.SolverStats.SearchEffort())
			}
		}
	}
}

// TestEffortLogSchemaRejected: wrong-schema and headerless streams must
// be rejected, truncated tails tolerated.
func TestEffortLogSchemaRejected(t *testing.T) {
	if _, _, err := DecodeEffortLog(strings.NewReader(`{"kind":"fault"}`)); err == nil {
		t.Error("headerless log accepted")
	}
	if _, _, err := DecodeEffortLog(strings.NewReader(`{"kind":"header","schema":"atpgeasy/effort/v0"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, _, err := DecodeEffortLog(strings.NewReader("")); err == nil {
		t.Error("empty log accepted")
	}
	good := `{"kind":"header","schema":"atpgeasy/effort/v1","circuit":"x","faults":2}` + "\n" +
		`{"kind":"fault","i":0,"fault":"a/0","phase":"sweep","status":"detected"}` + "\n" +
		`{"kind":"fault","i":1,"fau` // torn mid-crash
	hdr, recs, err := DecodeEffortLog(strings.NewReader(good))
	if err != nil {
		t.Fatalf("truncated log rejected: %v", err)
	}
	if hdr.Circuit != "x" || len(recs) != 1 || recs[0].Fault != "a/0" {
		t.Errorf("truncated log parsed as %+v / %+v", hdr, recs)
	}
}

// TestSpanTree: a traced run must emit a well-formed span forest — one
// root "run" span, every other span's parent resolving to an emitted
// span, and fault spans joining the effort log by fault name.
func TestSpanTree(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	var trace bytes.Buffer
	tr := obs.NewTrace(&trace)
	var effort bytes.Buffer
	log := NewEffortLog(&effort)
	eng := &Engine{Workers: 4}
	sum, err := eng.Run(context.Background(), c, RunOptions{
		Collapse: true, DropDetected: true,
		RPTBatches: DefaultRPTBatches,
		EffortLog:  log,
		Telemetry:  &Telemetry{Trace: tr, Spans: obs.NewTracer(tr)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	var spans []obs.SpanRecord
	for _, line := range bytes.Split(trace.Bytes(), []byte("\n")) {
		if !bytes.Contains(line, []byte(`"kind":"span"`)) {
			continue
		}
		var sp obs.SpanRecord
		if err := json.Unmarshal(line, &sp); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		spans = append(spans, sp)
	}
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}

	ids := map[uint64]obs.SpanRecord{}
	var roots, faultsSpanned int
	for _, sp := range spans {
		if _, dup := ids[sp.ID]; dup {
			t.Fatalf("span ID %d emitted twice", sp.ID)
		}
		ids[sp.ID] = sp
		if sp.Parent == 0 {
			roots++
			if sp.Name != "run" {
				t.Errorf("root span %q, want run", sp.Name)
			}
		}
		if sp.DurNS < 0 || sp.StartNS < 0 {
			t.Errorf("span %s has negative time: %+v", sp.Name, sp)
		}
	}
	if roots != 1 {
		t.Fatalf("%d root spans, want 1", roots)
	}
	names := map[string]int{}
	for _, sp := range spans {
		names[sp.Name]++
		if sp.Parent != 0 {
			if _, ok := ids[sp.Parent]; !ok {
				t.Errorf("span %s parent %d never emitted", sp.Name, sp.Parent)
			}
		}
		if sp.Name == "fault" {
			faultsSpanned++
			if sp.Detail == "" {
				t.Errorf("fault span without a fault name: %+v", sp)
			}
		}
	}
	for _, want := range []string{"run", "sweep"} {
		if names[want] == 0 {
			t.Errorf("no %q span emitted (have %v)", want, names)
		}
	}
	if sum.RPTBatches > 0 && names["rpt"] == 0 {
		t.Errorf("RPT ran but no rpt span (have %v)", names)
	}
	if len(sum.Results) > 0 && names["dispatch-chunk"] == 0 {
		t.Errorf("workers solved faults but no dispatch-chunk span (have %v)", names)
	}

	// Fault spans join the effort log by fault name: every solved fault's
	// record has a span.
	_, recs, err := DecodeEffortLog(&effort)
	if err != nil {
		t.Fatal(err)
	}
	spanned := map[string]bool{}
	for _, sp := range spans {
		if sp.Name == "fault" {
			spanned[sp.Detail] = true
		}
	}
	for _, r := range recs {
		if r.Phase == "sweep" && !spanned[r.Fault] {
			t.Errorf("solved fault %q has an effort record but no span", r.Fault)
		}
	}
	if faultsSpanned < len(sum.Results) {
		t.Errorf("%d fault spans for %d solved faults", faultsSpanned, len(sum.Results))
	}
}

// TestRetryPendingETA: a progress snapshot taken after the main sweep but
// before the retry tiers finish must still report remaining work.
func TestRetryPendingETA(t *testing.T) {
	p := Progress{Done: 10, Total: 10, RetryPending: 2, Elapsed: 10 * time.Second}
	if eta := p.ETA(); eta <= 0 {
		t.Errorf("ETA = %v with %d retries pending, want > 0", eta, p.RetryPending)
	}
	if !strings.Contains(p.String(), "retrying 2") {
		t.Errorf("progress line %q does not mention pending retries", p.String())
	}
	done := Progress{Done: 10, Total: 10, Elapsed: 10 * time.Second}
	if eta := done.ETA(); eta != 0 {
		t.Errorf("ETA = %v on a finished run, want 0", eta)
	}
}

// TestEffortLogRoutedInvariant: on a routed run every live fault emits
// exactly one non-wasted effort record carrying the router's predicted
// class — even faults no solver ever touched. Cleanly dropped faults
// get a backend "faultsim" record (Phase "dropped", not wasted); solved
// faults a record naming the backend that decided them; wasted
// speculative solves stay extra records marked Wasted.
func TestEffortLogRoutedInvariant(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		log := NewEffortLog(&buf)
		eng := &Engine{Workers: workers}
		sum, err := eng.Run(context.Background(), c, RunOptions{
			Collapse: true, Incremental: true, Route: true,
			DropDetected: true, EffortLog: log,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := log.Close(); err != nil {
			t.Fatalf("workers=%d: close: %v", workers, err)
		}
		_, recs, err := DecodeEffortLog(&buf)
		if err != nil {
			t.Fatalf("workers=%d: decode: %v", workers, err)
		}

		byIdx := map[int]EffortRecord{}
		wasted := 0
		for _, r := range recs {
			if r.Wasted {
				wasted++
				if r.Phase != "dropped" {
					t.Errorf("workers=%d: wasted record in phase %q: %+v", workers, r.Phase, r)
				}
				continue
			}
			if prev, dup := byIdx[r.Index]; dup {
				t.Errorf("workers=%d: fault %d recorded twice: %+v / %+v", workers, r.Index, prev, r)
			}
			byIdx[r.Index] = r
		}
		// Exactly one non-wasted record per live fault: solved or dropped.
		if len(byIdx) != sum.Total {
			t.Errorf("workers=%d: %d verdict records, want %d", workers, len(byIdx), sum.Total)
		}
		if wasted != sum.WastedSolves {
			t.Errorf("workers=%d: %d wasted records, want %d", workers, wasted, sum.WastedSolves)
		}
		drops := 0
		for _, r := range byIdx {
			if r.PredictedClass == "" {
				t.Errorf("workers=%d: record without predicted class: %+v", workers, r)
			}
			if r.Backend == "" {
				t.Errorf("workers=%d: record without backend: %+v", workers, r)
			}
			if r.Phase == "dropped" {
				drops++
				if r.Backend != "faultsim" {
					t.Errorf("workers=%d: clean drop on backend %q: %+v", workers, r.Backend, r)
				}
				if r.SolveNS != 0 || r.Effort != 0 {
					t.Errorf("workers=%d: clean drop with solver work: %+v", workers, r)
				}
			}
		}
		if drops != sum.DroppedByFaultSim {
			t.Errorf("workers=%d: %d clean-drop records, want %d", workers, drops, sum.DroppedByFaultSim)
		}
	}
}
