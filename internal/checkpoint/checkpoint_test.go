package checkpoint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testHeader() Header {
	return Header{Schema: Schema, Circuit: "c17", Faults: 22, FaultHash: 0xdeadbeef, Seed: 42}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := New(path, testHeader(), nil, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.RecordRPT([]int{0, 3}, [][]bool{{true, false, true}, {false, false, true}}, 7)
	j.RecordFault(1, "detected", []bool{true, true, false}, "")
	j.RecordFault(2, "untestable", nil, "")
	j.RecordFault(4, "error", nil, "solver panic: boom")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if st.Header != testHeader() {
		t.Fatalf("header mismatch: %+v", st.Header)
	}
	if st.RPT == nil || st.RPT.Batches != 7 {
		t.Fatalf("rpt not replayed: %+v", st.RPT)
	}
	if !reflect.DeepEqual(st.RPT.Detected, []int{0, 3}) {
		t.Fatalf("rpt detected = %v", st.RPT.Detected)
	}
	if !reflect.DeepEqual(st.RPT.Vectors, []string{"101", "001"}) {
		t.Fatalf("rpt vectors = %v", st.RPT.Vectors)
	}
	want := map[int]FaultVerdict{
		1: {Status: "detected", Vector: "110"},
		2: {Status: "untestable"},
		4: {Status: "error", Err: "solver panic: boom"},
	}
	if !reflect.DeepEqual(st.Faults, want) {
		t.Fatalf("faults = %+v, want %+v", st.Faults, want)
	}
}

func TestLoadToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := New(path, testHeader(), nil, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.RecordFault(0, "detected", []bool{true}, "")
	j.RecordFault(1, "untestable", nil, "")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a kill -9 mid-append: chop bytes off the final line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Load(path)
	if err != nil {
		t.Fatalf("Load after truncation: %v", err)
	}
	if len(st.Faults) != 1 {
		t.Fatalf("want 1 intact fault record, got %d", len(st.Faults))
	}
	if _, ok := st.Faults[0]; !ok {
		t.Fatalf("fault 0 lost: %+v", st.Faults)
	}
}

func TestResumeCompactsAndContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := New(path, testHeader(), nil, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.RecordFault(0, "detected", []bool{true, false}, "")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	prior, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	j2, err := New(path, testHeader(), prior, Options{})
	if err != nil {
		t.Fatalf("New with prior: %v", err)
	}
	if j2.Len() != 1 {
		t.Fatalf("resumed journal lost records: len=%d", j2.Len())
	}
	j2.RecordFault(1, "aborted", nil, "")
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st, err := Load(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if len(st.Faults) != 2 {
		t.Fatalf("want both faults after resume, got %+v", st.Faults)
	}
}

func TestResumeRejectsMismatchedHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := New(path, testHeader(), nil, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.Close()
	prior, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	other := testHeader()
	other.FaultHash++
	if _, err := New(path, other, prior, Options{}); err == nil {
		t.Fatal("New accepted a journal from a different run")
	} else if !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRotationCompactsSupersededRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	// Tiny rotation threshold: every few appends trigger a compaction.
	j, err := New(path, testHeader(), nil, Options{RotateBytes: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for rewrite := 0; rewrite < 20; rewrite++ {
		j.RecordFault(0, "aborted", nil, "")
	}
	j.RecordFault(0, "detected", []bool{true}, "")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 21 appends at ~50 bytes each would exceed 1KiB without compaction.
	if info.Size() > 512 {
		t.Fatalf("journal did not compact: %d bytes", info.Size())
	}
	st, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := st.Faults[0].Status; got != "detected" {
		t.Fatalf("last-writer-wins violated: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp segment left behind: %v", err)
	}
}

func TestLoadRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("{\"kind\":\"fault\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a file with no header")
	}
}

func TestVectorCodec(t *testing.T) {
	v := []bool{true, false, false, true, true}
	s := EncodeVector(v)
	if s != "10011" {
		t.Fatalf("EncodeVector = %q", s)
	}
	back, err := DecodeVector(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, v) {
		t.Fatalf("DecodeVector = %v", back)
	}
	if _, err := DecodeVector("10x"); err == nil {
		t.Fatal("DecodeVector accepted a bad character")
	}
}

func TestSyncAfterCloseReportsStickyError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := New(path, testHeader(), nil, Options{Sync: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.RecordFault(0, "detected", []bool{true}, "")
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Records after close are dropped but must not panic.
	j.RecordFault(1, "detected", nil, "")
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync after close: %v", err)
	}
}
