package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func testHeader() Header {
	return Header{Schema: Schema, Circuit: "c17", Faults: 22, FaultHash: 0xdeadbeef, Seed: 42}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := New(path, testHeader(), nil, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.RecordRPT([]int{0, 3}, [][]bool{{true, false, true}, {false, false, true}}, 7)
	j.RecordFault(1, "detected", []bool{true, true, false}, "")
	j.RecordFault(2, "untestable", nil, "")
	j.RecordFault(4, "error", nil, "solver panic: boom")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if st.Header != testHeader() {
		t.Fatalf("header mismatch: %+v", st.Header)
	}
	if st.RPT == nil || st.RPT.Batches != 7 {
		t.Fatalf("rpt not replayed: %+v", st.RPT)
	}
	if !reflect.DeepEqual(st.RPT.Detected, []int{0, 3}) {
		t.Fatalf("rpt detected = %v", st.RPT.Detected)
	}
	if !reflect.DeepEqual(st.RPT.Vectors, []string{"101", "001"}) {
		t.Fatalf("rpt vectors = %v", st.RPT.Vectors)
	}
	want := map[int]FaultVerdict{
		1: {Status: "detected", Vector: "110"},
		2: {Status: "untestable"},
		4: {Status: "error", Err: "solver panic: boom"},
	}
	if !reflect.DeepEqual(st.Faults, want) {
		t.Fatalf("faults = %+v, want %+v", st.Faults, want)
	}
}

func TestLoadToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := New(path, testHeader(), nil, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.RecordFault(0, "detected", []bool{true}, "")
	j.RecordFault(1, "untestable", nil, "")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a kill -9 mid-append: chop bytes off the final line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Load(path)
	if err != nil {
		t.Fatalf("Load after truncation: %v", err)
	}
	if len(st.Faults) != 1 {
		t.Fatalf("want 1 intact fault record, got %d", len(st.Faults))
	}
	if _, ok := st.Faults[0]; !ok {
		t.Fatalf("fault 0 lost: %+v", st.Faults)
	}
}

func TestResumeCompactsAndContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := New(path, testHeader(), nil, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.RecordFault(0, "detected", []bool{true, false}, "")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	prior, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	j2, err := New(path, testHeader(), prior, Options{})
	if err != nil {
		t.Fatalf("New with prior: %v", err)
	}
	if j2.Len() != 1 {
		t.Fatalf("resumed journal lost records: len=%d", j2.Len())
	}
	j2.RecordFault(1, "aborted", nil, "")
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st, err := Load(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if len(st.Faults) != 2 {
		t.Fatalf("want both faults after resume, got %+v", st.Faults)
	}
}

func TestResumeRejectsMismatchedHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := New(path, testHeader(), nil, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.Close()
	prior, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	other := testHeader()
	other.FaultHash++
	if _, err := New(path, other, prior, Options{}); err == nil {
		t.Fatal("New accepted a journal from a different run")
	} else if !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRotationCompactsSupersededRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	// Tiny rotation threshold: every few appends trigger a compaction.
	j, err := New(path, testHeader(), nil, Options{RotateBytes: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for rewrite := 0; rewrite < 20; rewrite++ {
		j.RecordFault(0, "aborted", nil, "")
	}
	j.RecordFault(0, "detected", []bool{true}, "")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 21 appends at ~50 bytes each would exceed 1KiB without compaction.
	if info.Size() > 512 {
		t.Fatalf("journal did not compact: %d bytes", info.Size())
	}
	st, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := st.Faults[0].Status; got != "detected" {
		t.Fatalf("last-writer-wins violated: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp segment left behind: %v", err)
	}
}

// TestConcurrentRecordFaultRacesRotation hammers RecordFault from many
// goroutines with a rotation threshold small enough that compactions
// constantly interleave with appends — the exact write pattern of a
// parallel engine run with worker-count > 1. Run under -race; the
// correctness claim is that no verdict is lost across any rotation.
func TestConcurrentRecordFaultRacesRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hdr := testHeader()
	const workers, perWorker = 8, 50
	hdr.Faults = workers * perWorker
	// ~60-byte records against a 512-byte segment: a rotation roughly
	// every 8 appends, hundreds over the test.
	j, err := New(path, hdr, nil, Options{RotateBytes: 512})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				i := w*perWorker + k
				switch i % 3 {
				case 0:
					j.RecordFault(i, "detected", []bool{i%2 == 0, true}, "")
				case 1:
					j.RecordFault(i, "untestable", nil, "")
				default:
					j.RecordFault(i, "aborted", nil, "")
				}
				if k%16 == 0 {
					j.Sync()
					j.Len()
				}
			}
		}()
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(st.Faults) != workers*perWorker {
		t.Fatalf("lost verdicts across rotations: %d/%d", len(st.Faults), workers*perWorker)
	}
	for i := 0; i < workers*perWorker; i++ {
		fv, ok := st.Faults[i]
		if !ok {
			t.Fatalf("fault %d missing", i)
		}
		want := [...]string{"detected", "untestable", "aborted"}[i%3]
		if fv.Status != want {
			t.Fatalf("fault %d: status %q, want %q", i, fv.Status, want)
		}
		if want == "detected" {
			if fv.Vector != EncodeVector([]bool{i%2 == 0, true}) {
				t.Fatalf("fault %d: vector %q", i, fv.Vector)
			}
		}
	}
}

// TestStickyWriteErrorDegrades: once a write fails, the journal must go
// inert — Record calls keep working (no panic, no partial writes), Err
// and Close report the first failure, and everything appended before
// the failure is still loadable. This is the full-disk contract: the
// run degrades to uncheckpointed instead of dying.
func TestStickyWriteErrorDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := New(path, testHeader(), nil, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.RecordFault(0, "detected", []bool{true}, "")
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Inject the sticky failure exactly as a failed write would set it.
	boom := fmt.Errorf("disk full")
	j.mu.Lock()
	j.err = boom
	j.mu.Unlock()
	j.RecordFault(1, "detected", []bool{false}, "")
	j.RecordRPT([]int{1}, nil, 2)
	if got := j.Err(); !errors.Is(got, boom) {
		t.Fatalf("Err = %v, want the injected failure", got)
	}
	if got := j.Sync(); !errors.Is(got, boom) {
		t.Fatalf("Sync = %v, want the injected failure", got)
	}
	if got := j.Close(); !errors.Is(got, boom) {
		t.Fatalf("Close = %v, want the injected failure", got)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatalf("Load after sticky error: %v", err)
	}
	if _, ok := st.Faults[0]; !ok {
		t.Fatalf("pre-error record lost: %+v", st.Faults)
	}
	if _, ok := st.Faults[1]; ok {
		t.Fatal("post-error record reached disk despite sticky failure")
	}
}

func TestLoadRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("{\"kind\":\"fault\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a file with no header")
	}
}

func TestVectorCodec(t *testing.T) {
	v := []bool{true, false, false, true, true}
	s := EncodeVector(v)
	if s != "10011" {
		t.Fatalf("EncodeVector = %q", s)
	}
	back, err := DecodeVector(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, v) {
		t.Fatalf("DecodeVector = %v", back)
	}
	if _, err := DecodeVector("10x"); err == nil {
		t.Fatal("DecodeVector accepted a bad character")
	}
}

func TestSyncAfterCloseReportsStickyError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := New(path, testHeader(), nil, Options{Sync: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.RecordFault(0, "detected", []bool{true}, "")
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Records after close are dropped but must not panic.
	j.RecordFault(1, "detected", nil, "")
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync after close: %v", err)
	}
}
