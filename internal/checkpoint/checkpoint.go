// Package checkpoint persists the progress of a long ATPG run as an
// append-only JSONL journal, so a run killed mid-flight (crash, OOM kill,
// kill -9) can be resumed without re-deciding the faults it already
// settled.
//
// The journal is a sequence of JSON lines: a header identifying the run
// (circuit, fault list hash, seed), at most one random-pattern-pre-phase
// record, and one record per finally-decided fault. Records are appended
// and flushed to the OS as they happen, so a hard kill loses at most the
// trailing partial line — which Load tolerates and discards. When the
// segment grows past Options.RotateBytes the journal compacts itself:
// the full state is rewritten to <path>.tmp, fsynced, and atomically
// renamed over the journal, so readers (and crashes) only ever observe a
// complete old segment or a complete new one.
//
// Durability policy: every record is flushed to the operating system
// immediately (surviving process death); fsync — surviving power loss —
// happens on rotation and Close always, on every record when
// Options.Sync is set, and whenever the caller invokes Sync (the CLI
// does so periodically and on SIGINT/SIGTERM).
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Schema is the journal format version, stored in the header record.
const Schema = "atpgeasy/checkpoint/v1"

// DefaultRotateBytes is the segment size that triggers compaction when
// Options.RotateBytes is zero.
const DefaultRotateBytes = 8 << 20

// Header identifies the run a journal belongs to. Resume refuses to
// apply a journal whose header does not match the current run, so stale
// checkpoints can never silently corrupt verdicts.
type Header struct {
	Schema  string `json:"schema"`
	Circuit string `json:"circuit"`
	// Faults is the length of the (collapsed) fault list; FaultHash
	// fingerprints its exact content plus the determinism-relevant run
	// options (seed, RPT shape).
	Faults    int    `json:"faults"`
	FaultHash uint64 `json:"fault_hash"`
	Seed      int64  `json:"seed"`
}

// RPTState is the journaled outcome of the random-pattern pre-phase:
// the indices (into the fault list) it detected, the kept pattern
// vectors in order, and the number of batches simulated.
type RPTState struct {
	Detected []int    `json:"detected"`
	Vectors  []string `json:"vectors"` // "0101…" over the circuit inputs
	Batches  int      `json:"batches"`
}

// FaultVerdict is one finally-decided fault. Status uses the engine's
// strings: detected, untestable, aborted, error, dropped.
type FaultVerdict struct {
	Status string `json:"status"`
	Vector string `json:"vector,omitempty"` // bit string, detected faults only
	Err    string `json:"err,omitempty"`    // panic/internal-error message
}

// State is the replayed content of a journal.
type State struct {
	Header Header
	RPT    *RPTState
	// Faults maps fault-list index to its final verdict.
	Faults map[int]FaultVerdict
}

// record is one JSONL line. Kind discriminates: "header", "rpt",
// "fault". Index uses a pointer so index 0 survives omitempty-style
// encodings symmetric with decoding.
type record struct {
	Kind   string        `json:"kind"`
	Header *Header       `json:"header,omitempty"`
	RPT    *RPTState     `json:"rpt,omitempty"`
	Index  *int          `json:"i,omitempty"`
	Fault  *FaultVerdict `json:"fault,omitempty"`
}

// Options configure journal durability.
type Options struct {
	// Sync fsyncs after every appended record. Off (the default), records
	// still reach the OS immediately — surviving kill -9 — and are fsynced
	// on rotation, Close and explicit Sync calls.
	Sync bool
	// RotateBytes compacts the journal once a segment exceeds this size
	// (0 = DefaultRotateBytes).
	RotateBytes int64
}

// Journal is an open checkpoint journal. All methods are safe for
// concurrent use; write errors are sticky and reported by Err and Close
// while the Record methods stay callable, so a full disk degrades a run
// to uncheckpointed rather than killing it.
type Journal struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	bw    *bufio.Writer
	opt   Options
	state State // mirror of everything appended, for compaction
	seg   int64 // bytes appended since the last rotation
	err   error
}

// EncodeVector renders a test vector as the journal's bit-string form.
func EncodeVector(v []bool) string {
	b := make([]byte, len(v))
	for i, x := range v {
		b[i] = '0'
		if x {
			b[i] = '1'
		}
	}
	return string(b)
}

// DecodeVector parses a journal bit string back into a vector.
func DecodeVector(s string) ([]bool, error) {
	v := make([]bool, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			v[i] = true
		default:
			return nil, fmt.Errorf("checkpoint: bad vector character %q at column %d", s[i], i+1)
		}
	}
	return v, nil
}

// Load replays the journal at path. A truncated final line — the
// signature of a hard kill mid-append — is discarded; any other malformed
// content is an error. The returned state carries every record that made
// it to disk.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st := &State{Faults: make(map[int]FaultVerdict)}
	sawHeader := false
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// No terminating newline: the append was cut mid-line. Everything
			// before it is intact; drop the partial tail.
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			if len(data) == 0 {
				break // corrupt final line: same treatment as a missing newline
			}
			return nil, fmt.Errorf("checkpoint: %s: malformed record: %v", path, err)
		}
		switch r.Kind {
		case "header":
			if r.Header == nil {
				return nil, fmt.Errorf("checkpoint: %s: header record without header", path)
			}
			if r.Header.Schema != Schema {
				return nil, fmt.Errorf("checkpoint: %s: schema %q, want %q", path, r.Header.Schema, Schema)
			}
			st.Header = *r.Header
			sawHeader = true
		case "rpt":
			st.RPT = r.RPT
		case "fault":
			if r.Index == nil || r.Fault == nil {
				return nil, fmt.Errorf("checkpoint: %s: incomplete fault record", path)
			}
			st.Faults[*r.Index] = *r.Fault
		default:
			return nil, fmt.Errorf("checkpoint: %s: unknown record kind %q", path, r.Kind)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("checkpoint: %s: no header record (empty or foreign file)", path)
	}
	return st, nil
}

// New creates (or, with prior, continues) a journal at path. hdr
// identifies the current run; when prior — a Load result — is given, its
// header must match hdr exactly or New refuses, and the journal is
// immediately compacted so the on-disk file is a clean snapshot of the
// resumed state. Without prior, any existing file at path is replaced
// atomically.
func New(path string, hdr Header, prior *State, opt Options) (*Journal, error) {
	hdr.Schema = Schema
	if prior != nil && prior.Header != hdr {
		return nil, fmt.Errorf("checkpoint: %s does not match this run: journal %+v, run %+v",
			path, prior.Header, hdr)
	}
	j := &Journal{path: path, opt: opt}
	if j.opt.RotateBytes <= 0 {
		j.opt.RotateBytes = DefaultRotateBytes
	}
	j.state = State{Header: hdr, Faults: make(map[int]FaultVerdict)}
	if prior != nil {
		j.state.RPT = prior.RPT
		for i, v := range prior.Faults {
			j.state.Faults[i] = v
		}
	}
	if err := j.rotateLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// Err returns the first write error seen over the journal's lifetime.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of finally-decided faults recorded so far.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.state.Faults)
}

// RecordRPT journals the random-pattern pre-phase outcome.
func (j *Journal) RecordRPT(detected []int, vectors [][]bool, batches int) {
	rpt := &RPTState{
		Detected: append([]int(nil), detected...),
		Vectors:  make([]string, len(vectors)),
		Batches:  batches,
	}
	for i, v := range vectors {
		rpt.Vectors[i] = EncodeVector(v)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state.RPT = rpt
	j.appendLocked(record{Kind: "rpt", RPT: rpt})
}

// RecordFault journals one fault's final verdict. vector may be nil for
// non-detected statuses; errMsg carries a panic or internal-error
// message for status "error".
func (j *Journal) RecordFault(i int, status string, vector []bool, errMsg string) {
	fv := FaultVerdict{Status: status, Err: errMsg}
	if vector != nil {
		fv.Vector = EncodeVector(vector)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state.Faults[i] = fv
	idx := i
	j.appendLocked(record{Kind: "fault", Index: &idx, Fault: &fv})
}

// appendLocked encodes one record, flushes it to the OS, applies the
// fsync policy, and rotates when the segment outgrows the limit. Called
// with j.mu held.
func (j *Journal) appendLocked(r record) {
	if j.err != nil || j.bw == nil {
		return
	}
	line, err := json.Marshal(r)
	if err != nil {
		j.err = err
		return
	}
	line = append(line, '\n')
	if _, err := j.bw.Write(line); err != nil {
		j.err = err
		return
	}
	if err := j.bw.Flush(); err != nil {
		j.err = err
		return
	}
	if j.opt.Sync {
		if err := j.f.Sync(); err != nil {
			j.err = err
			return
		}
	}
	j.seg += int64(len(line))
	if j.seg > j.opt.RotateBytes {
		j.err = j.rotateLocked()
	}
}

// rotateLocked writes the compacted state to <path>.tmp, fsyncs it, and
// renames it over the journal — the atomic segment rotation. The journal
// then continues appending to the new segment.
func (j *Journal) rotateLocked() error {
	if j.f != nil {
		j.bw.Flush()
		j.f.Close()
		j.f, j.bw = nil, nil
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	enc := json.NewEncoder(bw)
	hdr := j.state.Header
	werr := enc.Encode(record{Kind: "header", Header: &hdr})
	if j.state.RPT != nil && werr == nil {
		werr = enc.Encode(record{Kind: "rpt", RPT: j.state.RPT})
	}
	if werr == nil {
		// Deterministic segment content: fault records in index order.
		idxs := make([]int, 0, len(j.state.Faults))
		for i := range j.state.Faults {
			idxs = append(idxs, i)
		}
		sortInts(idxs)
		for _, i := range idxs {
			fv := j.state.Faults[i]
			idx := i
			if werr = enc.Encode(record{Kind: "fault", Index: &idx, Fault: &fv}); werr != nil {
				break
			}
		}
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return err
	}
	nf, err := os.OpenFile(j.path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	j.f = nf
	j.bw = bufio.NewWriterSize(nf, 1<<16)
	j.seg = 0
	return nil
}

// Sync flushes buffered records and fsyncs the journal file. The CLI
// calls it periodically and when draining on SIGINT/SIGTERM.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.f == nil {
		return nil
	}
	if err := j.bw.Flush(); err != nil {
		j.err = err
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
		return err
	}
	return nil
}

// Close flushes, fsyncs and closes the journal, reporting the first
// error seen over its lifetime.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.err
	}
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	if err := j.f.Sync(); err != nil && j.err == nil {
		j.err = err
	}
	if err := j.f.Close(); err != nil && j.err == nil {
		j.err = err
	}
	j.f, j.bw = nil, nil
	return j.err
}

// sortInts is sort.Ints without pulling the sort package's interface
// machinery into the hot path (rotation is rare; this keeps imports
// minimal).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for k := i; k > 0 && a[k] < a[k-1]; k-- {
			a[k], a[k-1] = a[k-1], a[k]
		}
	}
}
