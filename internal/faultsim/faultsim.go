// Package faultsim implements parallel-pattern single-fault simulation:
// 64 input patterns are evaluated per machine word, the faulty circuit is
// obtained by forcing the fault net, and a fault is detected by a pattern
// when any primary output differs from the good response.
//
// Queries are event-driven: only nodes whose value actually diverges from
// the good simulation are re-evaluated, in topological order via a small
// binary heap of pending node IDs, so a query costs O(|diverged region|)
// instead of O(|fanout cone|) — and nothing is copied per query. The ATPG
// engine uses the simulator for the random-pattern pre-phase (DetectAll
// over the whole undetected fault list), to verify generated tests, and to
// drop faults covered by already generated vectors (test-set compaction,
// DetectsAny early exit).
package faultsim

import (
	"fmt"

	"atpgeasy/internal/logic"
)

// PackPatterns packs up to 64 test vectors (each over the circuit's
// primary inputs) into one word per input: bit p of word i is the value of
// input i in pattern p.
func PackPatterns(c *logic.Circuit, vecs [][]bool) ([]uint64, error) {
	return PackPatternsInto(nil, c, vecs)
}

// PackPatternsInto is PackPatterns reusing dst's backing array when it is
// large enough; the ATPG engine calls it with per-worker scratch so flush
// batches pack allocation-free.
func PackPatternsInto(dst []uint64, c *logic.Circuit, vecs [][]bool) ([]uint64, error) {
	if len(vecs) > 64 {
		return nil, fmt.Errorf("faultsim: %d patterns exceed word width 64", len(vecs))
	}
	words := dst
	if cap(words) >= len(c.Inputs) {
		words = words[:len(c.Inputs)]
		clear(words)
	} else {
		words = make([]uint64, len(c.Inputs))
	}
	for p, v := range vecs {
		if len(v) != len(c.Inputs) {
			return nil, fmt.Errorf("faultsim: pattern %d has %d values for %d inputs", p, len(v), len(c.Inputs))
		}
		for i, bit := range v {
			if bit {
				words[i] |= 1 << uint(p)
			}
		}
	}
	return words, nil
}

// Simulator amortizes the good-circuit simulation across many fault
// queries against the same pattern batch.
type Simulator struct {
	c        *logic.Circuit
	inputs   []uint64
	nPat     int
	goodVals []uint64
	goodOut  []uint64 // per output, good responses
	outIdx   []int32  // per node, index into c.Outputs, or -1

	// Event-driven query state. A node's faulty value lives in vals only
	// while divergedAt stamps it with the current epoch; all other nodes
	// implicitly hold their good value, so queries never copy goodVals.
	vals       []uint64
	divergedAt []uint32 // epoch-stamped "faulty value differs from good"
	queuedAt   []uint32 // epoch-stamped membership in the event heap
	queue      []int32  // binary min-heap of pending node IDs
	epoch      uint32
}

// NewSimulator prepares a simulator for the given pattern batch (≤ 64
// patterns, pre-packed with PackPatterns).
func NewSimulator(c *logic.Circuit, inputs []uint64, nPatterns int) (*Simulator, error) {
	s := &Simulator{c: c}
	s.outIdx = make([]int32, c.NumNodes())
	for i := range s.outIdx {
		s.outIdx[i] = -1
	}
	for i, o := range c.Outputs {
		s.outIdx[o] = int32(i)
	}
	if err := s.Reset(inputs, nPatterns); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset re-targets the simulator at a new pattern batch over the same
// circuit, reusing its buffers. The ATPG engine calls it once per
// fault-simulation flush (and once per random-pattern batch) instead of
// allocating a fresh simulator.
func (s *Simulator) Reset(inputs []uint64, nPatterns int) error {
	c := s.c
	if nPatterns < 0 || nPatterns > 64 {
		return fmt.Errorf("faultsim: nPatterns %d out of range", nPatterns)
	}
	if len(inputs) != len(c.Inputs) {
		return fmt.Errorf("faultsim: %d input words for %d inputs", len(inputs), len(c.Inputs))
	}
	s.inputs, s.nPat = inputs, nPatterns
	s.goodVals = c.Simulate64Into(s.goodVals, inputs)
	if cap(s.goodOut) >= len(c.Outputs) {
		s.goodOut = s.goodOut[:len(c.Outputs)]
	} else {
		s.goodOut = make([]uint64, len(c.Outputs))
	}
	for i, o := range c.Outputs {
		s.goodOut[i] = s.goodVals[o]
	}
	if cap(s.vals) < c.NumNodes() {
		s.vals = make([]uint64, c.NumNodes())
	}
	s.vals = s.vals[:c.NumNodes()]
	if cap(s.divergedAt) < c.NumNodes() {
		// Fresh (zeroed) stamps; the epoch counter continues, staying above
		// every stamp in the new slices.
		s.divergedAt = make([]uint32, c.NumNodes())
		s.queuedAt = make([]uint32, c.NumNodes())
	}
	s.divergedAt = s.divergedAt[:c.NumNodes()]
	s.queuedAt = s.queuedAt[:c.NumNodes()]
	return nil
}

// mask returns the valid-pattern mask.
func (s *Simulator) mask() uint64 {
	if s.nPat == 64 {
		return ^uint64(0)
	}
	return 1<<uint(s.nPat) - 1
}

// push schedules node id for evaluation in the current epoch, once.
func (s *Simulator) push(id int32) {
	if s.queuedAt[id] == s.epoch {
		return
	}
	s.queuedAt[id] = s.epoch
	q := append(s.queue, id)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p] <= q[i] {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
	s.queue = q
}

// pop removes and returns the smallest pending node ID.
func (s *Simulator) pop() int32 {
	q := s.queue
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(q) && q[l] < q[m] {
			m = l
		}
		if r < len(q) && q[r] < q[m] {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	s.queue = q
	return top
}

// detect is the event-driven query core. Node IDs are topologically
// ordered (Builder.add only references existing nodes), so popping the
// min-heap yields nodes in topological order and each node is evaluated
// at most once per query: every fanin that will diverge has a smaller ID
// and is therefore popped first. Nodes whose recomputed value matches the
// good simulation stop the event wave.
//
// With early set, the query returns as soon as any valid pattern reaches
// a primary output, leaving the mask partial — callers that only need
// detected-or-not (test-set compaction) use it to skip the rest of the
// divergence wave.
func (s *Simulator) detect(net int, stuckAt bool, early bool) uint64 {
	c := s.c
	forced := uint64(0)
	if stuckAt {
		forced = ^uint64(0)
	}
	if forced == s.goodVals[net] {
		return 0 // no pattern activates the fault
	}
	s.epoch++
	if s.epoch == 0 {
		// Epoch wrapped: stale stamps from 2^32 queries ago would alias the
		// new epoch and fake divergence or queue membership. Clear all
		// stamps and restart above zero (the cleared value).
		clear(s.divergedAt)
		clear(s.queuedAt)
		s.epoch = 1
	}
	s.vals[net] = forced
	s.divergedAt[net] = s.epoch
	mask := s.mask()
	var det uint64
	if oi := s.outIdx[net]; oi >= 0 {
		det = forced ^ s.goodOut[oi]
		if early && det&mask != 0 {
			return det & mask
		}
	}
	s.queue = s.queue[:0]
	for _, fo := range c.Nodes[net].Fanout {
		s.push(int32(fo))
	}
	var buf [8]uint64
	for len(s.queue) > 0 {
		id := int(s.pop())
		n := &c.Nodes[id]
		ins := buf[:0]
		if len(n.Fanin) > len(buf) {
			ins = make([]uint64, 0, len(n.Fanin))
		}
		for i, fi := range n.Fanin {
			var v uint64
			if s.divergedAt[fi] == s.epoch {
				v = s.vals[fi]
			} else {
				v = s.goodVals[fi]
			}
			if n.Negated(i) {
				v = ^v
			}
			ins = append(ins, v)
		}
		nv := logic.Eval64(n.Type, ins)
		if nv == s.goodVals[id] {
			continue
		}
		s.vals[id] = nv
		s.divergedAt[id] = s.epoch
		if oi := s.outIdx[id]; oi >= 0 {
			det |= nv ^ s.goodOut[oi]
			if early && det&mask != 0 {
				return det & mask
			}
		}
		for _, fo := range n.Fanout {
			s.push(int32(fo))
		}
	}
	return det & mask
}

// Detects returns the bitmask of patterns that detect the stuck-at fault
// (net, stuckAt): patterns where at least one primary output of the faulty
// circuit differs from the good response.
func (s *Simulator) Detects(net int, stuckAt bool) uint64 {
	return s.detect(net, stuckAt, false)
}

// DetectsAny is Detects with early exit: it returns a non-zero (possibly
// partial) mask as soon as the first output divergence is found. Use it
// when only detected-or-not matters.
func (s *Simulator) DetectsAny(net int, stuckAt bool) uint64 {
	return s.detect(net, stuckAt, true)
}

// DetectAll fault-simulates a whole fault list against the pattern batch,
// writing each fault's detecting-pattern mask into out (reused when its
// capacity suffices, allocated otherwise). With early set, masks may be
// partial (see DetectsAny). The ATPG engine shards a fault list across
// workers by slicing nets/stuckAts/out identically.
func (s *Simulator) DetectAll(nets []int, stuckAts []bool, out []uint64, early bool) []uint64 {
	if cap(out) >= len(nets) {
		out = out[:len(nets)]
	} else {
		out = make([]uint64, len(nets))
	}
	for i := range nets {
		out[i] = s.detect(nets[i], stuckAts[i], early)
	}
	return out
}

// Coverage fault-simulates a whole fault list against the pattern batch
// and returns, for each fault, the full detecting-pattern mask.
func (s *Simulator) Coverage(nets []int, stuckAts []bool) []uint64 {
	return s.DetectAll(nets, stuckAts, nil, false)
}

// ReferenceDetects computes Detects by brute force: a full 64-way
// re-simulation of the faulty circuit (every node, not just the diverged
// region). It exists as the oracle for property tests and as the baseline
// the event-driven benchmark compares against.
func ReferenceDetects(c *logic.Circuit, inputs []uint64, nPatterns int, net int, stuckAt bool) uint64 {
	good := c.Simulate64(inputs)
	forced := uint64(0)
	if stuckAt {
		forced = ^uint64(0)
	}
	vals := make([]uint64, c.NumNodes())
	for i, in := range c.Inputs {
		vals[in] = inputs[i]
	}
	var buf []uint64
	for _, id := range c.TopoOrder() {
		if id == net {
			vals[id] = forced
			continue
		}
		n := &c.Nodes[id]
		switch n.Type {
		case logic.Input:
		case logic.Const0:
			vals[id] = 0
		case logic.Const1:
			vals[id] = ^uint64(0)
		default:
			buf = buf[:0]
			for i, f := range n.Fanin {
				v := vals[f]
				if n.Negated(i) {
					v = ^v
				}
				buf = append(buf, v)
			}
			vals[id] = logic.Eval64(n.Type, buf)
		}
	}
	var det uint64
	for _, o := range c.Outputs {
		det |= good[o] ^ vals[o]
	}
	if nPatterns >= 64 {
		return det
	}
	return det & (1<<uint(nPatterns) - 1)
}
