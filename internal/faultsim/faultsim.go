// Package faultsim implements parallel-pattern single-fault simulation:
// 64 input patterns are evaluated per machine word, the faulty circuit is
// obtained by forcing the fault net, and a fault is detected by a pattern
// when any primary output differs from the good response. The ATPG engine
// uses it to verify generated tests and to drop faults covered by already
// generated vectors (test-set compaction).
package faultsim

import (
	"fmt"

	"atpgeasy/internal/logic"
)

// PackPatterns packs up to 64 test vectors (each over the circuit's
// primary inputs) into one word per input: bit p of word i is the value of
// input i in pattern p.
func PackPatterns(c *logic.Circuit, vecs [][]bool) ([]uint64, error) {
	return PackPatternsInto(nil, c, vecs)
}

// PackPatternsInto is PackPatterns reusing dst's backing array when it is
// large enough; the ATPG engine calls it with per-worker scratch so flush
// batches pack allocation-free.
func PackPatternsInto(dst []uint64, c *logic.Circuit, vecs [][]bool) ([]uint64, error) {
	if len(vecs) > 64 {
		return nil, fmt.Errorf("faultsim: %d patterns exceed word width 64", len(vecs))
	}
	words := dst
	if cap(words) >= len(c.Inputs) {
		words = words[:len(c.Inputs)]
		clear(words)
	} else {
		words = make([]uint64, len(c.Inputs))
	}
	for p, v := range vecs {
		if len(v) != len(c.Inputs) {
			return nil, fmt.Errorf("faultsim: pattern %d has %d values for %d inputs", p, len(v), len(c.Inputs))
		}
		for i, bit := range v {
			if bit {
				words[i] |= 1 << uint(p)
			}
		}
	}
	return words, nil
}

// Simulator amortizes the good-circuit simulation across many fault
// queries against the same pattern batch.
type Simulator struct {
	c        *logic.Circuit
	inputs   []uint64
	nPat     int
	goodVals []uint64
	goodOut  []uint64 // per output, good responses
	scratch  []uint64
	coneMark []uint32 // epoch-stamped membership in the fault's cone
	epoch    uint32
}

// NewSimulator prepares a simulator for the given pattern batch (≤ 64
// patterns, pre-packed with PackPatterns).
func NewSimulator(c *logic.Circuit, inputs []uint64, nPatterns int) (*Simulator, error) {
	s := &Simulator{c: c}
	if err := s.Reset(inputs, nPatterns); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset re-targets the simulator at a new pattern batch over the same
// circuit, reusing its buffers. The ATPG engine calls it once per
// fault-simulation flush instead of allocating a fresh simulator.
func (s *Simulator) Reset(inputs []uint64, nPatterns int) error {
	c := s.c
	if nPatterns < 0 || nPatterns > 64 {
		return fmt.Errorf("faultsim: nPatterns %d out of range", nPatterns)
	}
	if len(inputs) != len(c.Inputs) {
		return fmt.Errorf("faultsim: %d input words for %d inputs", len(inputs), len(c.Inputs))
	}
	s.inputs, s.nPat = inputs, nPatterns
	s.goodVals = c.Simulate64Into(s.goodVals, inputs)
	if cap(s.goodOut) >= len(c.Outputs) {
		s.goodOut = s.goodOut[:len(c.Outputs)]
	} else {
		s.goodOut = make([]uint64, len(c.Outputs))
	}
	for i, o := range c.Outputs {
		s.goodOut[i] = s.goodVals[o]
	}
	if cap(s.scratch) < c.NumNodes() {
		s.scratch = make([]uint64, c.NumNodes())
	}
	s.scratch = s.scratch[:c.NumNodes()]
	if cap(s.coneMark) < c.NumNodes() {
		// Fresh (zeroed) stamps; the epoch counter continues, staying above
		// every stamp in the new slice.
		s.coneMark = make([]uint32, c.NumNodes())
	}
	s.coneMark = s.coneMark[:c.NumNodes()]
	return nil
}

// mask returns the valid-pattern mask.
func (s *Simulator) mask() uint64 {
	if s.nPat == 64 {
		return ^uint64(0)
	}
	return 1<<uint(s.nPat) - 1
}

// Detects returns the bitmask of patterns that detect the stuck-at fault
// (net, stuckAt): patterns where at least one primary output of the faulty
// circuit differs from the good response.
//
// The faulty evaluation is restricted to the fault's transitive fanout;
// all other nets reuse the good values, making a query O(|fanout cone|).
func (s *Simulator) Detects(net int, stuckAt bool) uint64 {
	c := s.c
	vals := s.scratch
	copy(vals, s.goodVals)
	if stuckAt {
		vals[net] = ^uint64(0)
	} else {
		vals[net] = 0
	}
	if vals[net] == s.goodVals[net] {
		return 0 // no pattern activates the fault... only if nPat==0
	}
	// Re-evaluate only the transitive fanout, in topological (ID) order.
	s.epoch++
	if s.epoch == 0 {
		// Epoch wrapped: stale stamps from 2^32 queries ago would alias the
		// new epoch and fake cone membership. Clear all stamps and restart
		// above zero (the cleared value).
		clear(s.coneMark)
		s.epoch = 1
	}
	s.coneMark[net] = s.epoch
	var buf [8]uint64
	for id := net + 1; id < c.NumNodes(); id++ {
		n := &c.Nodes[id]
		touched := false
		for _, fi := range n.Fanin {
			if s.coneMark[fi] == s.epoch {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		ins := buf[:0]
		if len(n.Fanin) > len(buf) {
			ins = make([]uint64, 0, len(n.Fanin))
		}
		for i, fi := range n.Fanin {
			v := vals[fi]
			if n.Negated(i) {
				v = ^v
			}
			ins = append(ins, v)
		}
		vals[id] = logic.Eval64(n.Type, ins)
		if vals[id] != s.goodVals[id] {
			s.coneMark[id] = s.epoch
		}
	}
	var det uint64
	for i, o := range c.Outputs {
		det |= vals[o] ^ s.goodOut[i]
	}
	return det & s.mask()
}

// Coverage fault-simulates a whole fault list against the pattern batch
// and returns, for each fault, the detecting-pattern mask.
func (s *Simulator) Coverage(nets []int, stuckAts []bool) []uint64 {
	out := make([]uint64, len(nets))
	for i := range nets {
		out[i] = s.Detects(nets[i], stuckAts[i])
	}
	return out
}
