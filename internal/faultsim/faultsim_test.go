package faultsim

import (
	"math/rand"
	"testing"

	"atpgeasy/internal/logic"
)

func TestPackPatterns(t *testing.T) {
	c := logic.Figure4a()
	vecs := [][]bool{
		{true, false, false, false, false},
		{false, true, false, false, false},
	}
	words, err := PackPatterns(c, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != 0b01 {
		t.Errorf("input a word = %b", words[0])
	}
	if words[1] != 0b10 {
		t.Errorf("input b word = %b", words[1])
	}
}

func TestPackPatternsErrors(t *testing.T) {
	c := logic.Figure4a()
	if _, err := PackPatterns(c, make([][]bool, 65)); err == nil {
		t.Error("65 patterns accepted")
	}
	if _, err := PackPatterns(c, [][]bool{{true}}); err == nil {
		t.Error("short pattern accepted")
	}
}

func TestNewSimulatorErrors(t *testing.T) {
	c := logic.Figure4a()
	if _, err := NewSimulator(c, make([]uint64, 2), 1); err == nil {
		t.Error("wrong input-word count accepted")
	}
	if _, err := NewSimulator(c, make([]uint64, 5), 65); err == nil {
		t.Error("nPatterns 65 accepted")
	}
}

// TestDetectsMatchesScalar cross-checks the event-driven parallel fault
// simulator against scalar simulation of the forced circuit.
func TestDetectsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCircuit(rng, 40)
	nPat := 17
	vecs := make([][]bool, nPat)
	for p := range vecs {
		vecs[p] = make([]bool, len(c.Inputs))
		for i := range vecs[p] {
			vecs[p][i] = rng.Intn(2) == 1
		}
	}
	words, err := PackPatterns(c, vecs)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c, words, nPat)
	if err != nil {
		t.Fatal(err)
	}
	for net := 0; net < c.NumNodes(); net++ {
		for _, sa := range []bool{false, true} {
			got := sim.Detects(net, sa)
			var want uint64
			for p := 0; p < nPat; p++ {
				good := c.Simulate(vecs[p])
				faulty := c.SimulateWith(vecs[p], map[int]bool{net: sa})
				for _, o := range c.Outputs {
					if good[o] != faulty[o] {
						want |= 1 << uint(p)
						break
					}
				}
			}
			if got != want {
				t.Fatalf("net %d sa%v: got %b, want %b", net, sa, got, want)
			}
		}
	}
}

func TestDetectsFigure4a(t *testing.T) {
	c := logic.Figure4a()
	// a=1,b=1,c=0,d=0,e=0 → f=1,h=1,g=1,i=1; f/0 flips i. f/1 does not
	// (already 1).
	vec := [][]bool{{true, true, false, false, false}}
	words, _ := PackPatterns(c, vec)
	sim, err := NewSimulator(c, words, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := c.MustLookup("f")
	if sim.Detects(f, false) != 1 {
		t.Error("f/0 should be detected by the activating vector")
	}
	if sim.Detects(f, true) != 0 {
		t.Error("f/1 must not be detected when f is already 1")
	}
}

func TestCoverage(t *testing.T) {
	c := logic.Figure4a()
	vec := [][]bool{{true, true, false, false, false}}
	words, _ := PackPatterns(c, vec)
	sim, _ := NewSimulator(c, words, 1)
	f, i := c.MustLookup("f"), c.MustLookup("i")
	masks := sim.Coverage([]int{f, i}, []bool{false, false})
	if masks[0] != 1 || masks[1] != 1 {
		t.Errorf("coverage masks = %v", masks)
	}
}

// TestEpochWraparound forces the uint32 epoch to overflow (as it would
// after 2^32 Detects queries) and checks that stale coneMark stamps are
// cleared instead of aliasing the restarted epoch: every query across the
// wrap must match a fresh simulator, and the stamp array must hold no
// leftovers from before the wrap.
func TestEpochWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(rng, 30)
	nPat := 13
	vecs := make([][]bool, nPat)
	for p := range vecs {
		vecs[p] = make([]bool, len(c.Inputs))
		for i := range vecs[p] {
			vecs[p][i] = rng.Intn(2) == 1
		}
	}
	words, err := PackPatterns(c, vecs)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c, words, nPat)
	if err != nil {
		t.Fatal(err)
	}
	// Populate coneMark with genuine stamps, then jump to the last epoch
	// before overflow. The next query wraps: without the reset, stamps
	// equal to the restarted epoch (and the zero default) would fake cone
	// membership.
	for net := 0; net < c.NumNodes(); net++ {
		sim.Detects(net, true)
	}
	sim.epoch = ^uint32(0)
	// Plant a stamp that aliases the post-wrap epoch value 1 exactly.
	sim.coneMark[c.NumNodes()-1] = 1
	fresh, err := NewSimulator(c, words, nPat)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ { // queries straddling the wrap
		for net := 0; net < c.NumNodes(); net++ {
			for _, sa := range []bool{false, true} {
				if got, want := sim.Detects(net, sa), fresh.Detects(net, sa); got != want {
					t.Fatalf("query %d net %d sa%v across wrap: got %b, want %b", q, net, sa, got, want)
				}
			}
		}
	}
	if sim.epoch == 0 || sim.epoch > uint32(6*c.NumNodes()) {
		t.Errorf("epoch = %d after wrap, want a small restarted value", sim.epoch)
	}
	for id, m := range sim.coneMark {
		if m > sim.epoch {
			t.Errorf("node %d holds stale stamp %d > epoch %d after wrap", id, m, sim.epoch)
		}
	}
}

func TestZeroPatterns(t *testing.T) {
	c := logic.Figure4a()
	words, _ := PackPatterns(c, nil)
	sim, err := NewSimulator(c, words, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Detects(c.MustLookup("f"), false); got != 0 {
		t.Errorf("no patterns but Detects = %b", got)
	}
}

func randomCircuit(rng *rand.Rand, n int) *logic.Circuit {
	b := logic.NewBuilder("rand")
	nin := 3 + rng.Intn(4)
	for i := 0; i < nin; i++ {
		b.Input("in" + string(rune('a'+i)))
	}
	types := []logic.GateType{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	for i := 0; i < n; i++ {
		gt := types[rng.Intn(len(types))]
		arity := 1
		if gt != logic.Not {
			arity = 1 + rng.Intn(3)
		}
		fanin := make([]int, arity)
		neg := make([]bool, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(b.NumNodes())
			neg[j] = rng.Intn(4) == 0
		}
		b.GateN(gt, "g"+string(rune('A'+i%26))+string(rune('0'+i/26)), fanin, neg)
	}
	// Mark a couple of outputs for observability.
	b.MarkOutput(b.NumNodes() - 1)
	if b.NumNodes() >= 2 {
		b.MarkOutput(b.NumNodes() - 2)
	}
	return b.MustBuild()
}
