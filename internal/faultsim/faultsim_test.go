package faultsim

import (
	"math/rand"
	"testing"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
)

func TestPackPatterns(t *testing.T) {
	c := logic.Figure4a()
	vecs := [][]bool{
		{true, false, false, false, false},
		{false, true, false, false, false},
	}
	words, err := PackPatterns(c, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != 0b01 {
		t.Errorf("input a word = %b", words[0])
	}
	if words[1] != 0b10 {
		t.Errorf("input b word = %b", words[1])
	}
}

func TestPackPatternsErrors(t *testing.T) {
	c := logic.Figure4a()
	if _, err := PackPatterns(c, make([][]bool, 65)); err == nil {
		t.Error("65 patterns accepted")
	}
	if _, err := PackPatterns(c, [][]bool{{true}}); err == nil {
		t.Error("short pattern accepted")
	}
}

func TestNewSimulatorErrors(t *testing.T) {
	c := logic.Figure4a()
	if _, err := NewSimulator(c, make([]uint64, 2), 1); err == nil {
		t.Error("wrong input-word count accepted")
	}
	if _, err := NewSimulator(c, make([]uint64, 5), 65); err == nil {
		t.Error("nPatterns 65 accepted")
	}
}

// TestDetectsMatchesScalar cross-checks the event-driven parallel fault
// simulator against scalar simulation of the forced circuit.
func TestDetectsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCircuit(rng, 40)
	nPat := 17
	vecs := make([][]bool, nPat)
	for p := range vecs {
		vecs[p] = make([]bool, len(c.Inputs))
		for i := range vecs[p] {
			vecs[p][i] = rng.Intn(2) == 1
		}
	}
	words, err := PackPatterns(c, vecs)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c, words, nPat)
	if err != nil {
		t.Fatal(err)
	}
	for net := 0; net < c.NumNodes(); net++ {
		for _, sa := range []bool{false, true} {
			got := sim.Detects(net, sa)
			var want uint64
			for p := 0; p < nPat; p++ {
				good := c.Simulate(vecs[p])
				faulty := c.SimulateWith(vecs[p], map[int]bool{net: sa})
				for _, o := range c.Outputs {
					if good[o] != faulty[o] {
						want |= 1 << uint(p)
						break
					}
				}
			}
			if got != want {
				t.Fatalf("net %d sa%v: got %b, want %b", net, sa, got, want)
			}
		}
	}
}

func TestDetectsFigure4a(t *testing.T) {
	c := logic.Figure4a()
	// a=1,b=1,c=0,d=0,e=0 → f=1,h=1,g=1,i=1; f/0 flips i. f/1 does not
	// (already 1).
	vec := [][]bool{{true, true, false, false, false}}
	words, _ := PackPatterns(c, vec)
	sim, err := NewSimulator(c, words, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := c.MustLookup("f")
	if sim.Detects(f, false) != 1 {
		t.Error("f/0 should be detected by the activating vector")
	}
	if sim.Detects(f, true) != 0 {
		t.Error("f/1 must not be detected when f is already 1")
	}
}

func TestCoverage(t *testing.T) {
	c := logic.Figure4a()
	vec := [][]bool{{true, true, false, false, false}}
	words, _ := PackPatterns(c, vec)
	sim, _ := NewSimulator(c, words, 1)
	f, i := c.MustLookup("f"), c.MustLookup("i")
	masks := sim.Coverage([]int{f, i}, []bool{false, false})
	if masks[0] != 1 || masks[1] != 1 {
		t.Errorf("coverage masks = %v", masks)
	}
}

// TestEpochWraparound forces the uint32 epoch to overflow (as it would
// after 2^32 Detects queries) and checks that stale coneMark stamps are
// cleared instead of aliasing the restarted epoch: every query across the
// wrap must match a fresh simulator, and the stamp array must hold no
// leftovers from before the wrap.
func TestEpochWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(rng, 30)
	nPat := 13
	vecs := make([][]bool, nPat)
	for p := range vecs {
		vecs[p] = make([]bool, len(c.Inputs))
		for i := range vecs[p] {
			vecs[p][i] = rng.Intn(2) == 1
		}
	}
	words, err := PackPatterns(c, vecs)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c, words, nPat)
	if err != nil {
		t.Fatal(err)
	}
	// Populate the stamp arrays with genuine stamps, then jump to the last
	// epoch before overflow. The next query wraps: without the reset,
	// stamps equal to the restarted epoch (and the zero default) would
	// fake divergence or queue membership.
	for net := 0; net < c.NumNodes(); net++ {
		sim.Detects(net, true)
	}
	sim.epoch = ^uint32(0)
	// Plant stamps that alias the post-wrap epoch value 1 exactly.
	sim.divergedAt[c.NumNodes()-1] = 1
	sim.queuedAt[c.NumNodes()-1] = 1
	fresh, err := NewSimulator(c, words, nPat)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ { // queries straddling the wrap
		for net := 0; net < c.NumNodes(); net++ {
			for _, sa := range []bool{false, true} {
				if got, want := sim.Detects(net, sa), fresh.Detects(net, sa); got != want {
					t.Fatalf("query %d net %d sa%v across wrap: got %b, want %b", q, net, sa, got, want)
				}
			}
		}
	}
	if sim.epoch == 0 || sim.epoch > uint32(6*c.NumNodes()) {
		t.Errorf("epoch = %d after wrap, want a small restarted value", sim.epoch)
	}
	for id, m := range sim.divergedAt {
		if m > sim.epoch {
			t.Errorf("node %d holds stale divergence stamp %d > epoch %d after wrap", id, m, sim.epoch)
		}
	}
	for id, m := range sim.queuedAt {
		if m > sim.epoch {
			t.Errorf("node %d holds stale queue stamp %d > epoch %d after wrap", id, m, sim.epoch)
		}
	}
}

func TestZeroPatterns(t *testing.T) {
	c := logic.Figure4a()
	words, _ := PackPatterns(c, nil)
	sim, err := NewSimulator(c, words, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Detects(c.MustLookup("f"), false); got != 0 {
		t.Errorf("no patterns but Detects = %b", got)
	}
}

// scalarDetects is the per-pattern oracle: one scalar simulation of the
// good and faulty circuit per pattern.
func scalarDetects(c *logic.Circuit, vecs [][]bool, net int, sa bool) uint64 {
	var want uint64
	for p := range vecs {
		good := c.Simulate(vecs[p])
		faulty := c.SimulateWith(vecs[p], map[int]bool{net: sa})
		for _, o := range c.Outputs {
			if good[o] != faulty[o] {
				want |= 1 << uint(p)
				break
			}
		}
	}
	return want
}

func randomVecs(rng *rand.Rand, c *logic.Circuit, nPat int) [][]bool {
	vecs := make([][]bool, nPat)
	for p := range vecs {
		vecs[p] = make([]bool, len(c.Inputs))
		for i := range vecs[p] {
			vecs[p][i] = rng.Intn(2) == 1
		}
	}
	return vecs
}

// allFaultsAgree checks Detects, DetectsAny, and ReferenceDetects against
// the scalar oracle for every fault in the circuit.
func allFaultsAgree(t *testing.T, c *logic.Circuit, vecs [][]bool) {
	t.Helper()
	words, err := PackPatterns(c, vecs)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c, words, len(vecs))
	if err != nil {
		t.Fatal(err)
	}
	for net := 0; net < c.NumNodes(); net++ {
		for _, sa := range []bool{false, true} {
			want := scalarDetects(c, vecs, net, sa)
			if got := sim.Detects(net, sa); got != want {
				t.Fatalf("%s: net %d (%s) sa%v: Detects %b, want %b",
					c.Name, net, c.Nodes[net].Name, sa, got, want)
			}
			if got := ReferenceDetects(c, words, len(vecs), net, sa); got != want {
				t.Fatalf("%s: net %d sa%v: ReferenceDetects %b, want %b", c.Name, net, sa, got, want)
			}
			any := sim.DetectsAny(net, sa)
			if (any != 0) != (want != 0) {
				t.Fatalf("%s: net %d sa%v: DetectsAny %b, Detects %b", c.Name, net, sa, any, want)
			}
			if any&^want != 0 {
				t.Fatalf("%s: net %d sa%v: DetectsAny %b not a subset of %b", c.Name, net, sa, any, want)
			}
		}
	}
}

// TestXorXnorGates exercises the event-driven wave through XOR/XNOR
// gates, whose output flips on any single-input divergence — the gate
// family where a "diverged value equals good value" stop is rarest.
func TestXorXnorGates(t *testing.T) {
	b := logic.NewBuilder("xorchain")
	a := b.Input("a")
	c0 := b.Input("b")
	d := b.Input("c")
	x1 := b.Gate(logic.Xor, "x1", a, c0)
	x2 := b.Gate(logic.Xnor, "x2", x1, d)
	x3 := b.GateN(logic.Xor, "x3", []int{x2, a, c0}, []bool{true, false, false})
	x4 := b.Gate(logic.Xnor, "x4", x3, x1)
	b.MarkOutput(x4)
	b.MarkOutput(x2)
	c := b.MustBuild()
	rng := rand.New(rand.NewSource(7))
	allFaultsAgree(t, c, randomVecs(rng, c, 8)) // all 8 input patterns
}

// TestConstantDrivers covers circuits with Const0/Const1 nodes: faults on
// the constant nets themselves (only the opposite-polarity fault is ever
// activatable) and on gates fed by constants.
func TestConstantDrivers(t *testing.T) {
	b := logic.NewBuilder("consts")
	a := b.Input("a")
	one := b.Const("one", true)
	zero := b.Const("zero", false)
	g1 := b.Gate(logic.And, "g1", a, one)
	g2 := b.Gate(logic.Or, "g2", g1, zero)
	g3 := b.GateN(logic.Nand, "g3", []int{g2, one}, []bool{false, true})
	b.MarkOutput(g2)
	b.MarkOutput(g3)
	c := b.MustBuild()
	vecs := [][]bool{{false}, {true}}
	allFaultsAgree(t, c, vecs)
	// Spot-check the polarity logic: forcing a constant net to its own
	// value is never activated; the opposite value propagates.
	words, _ := PackPatterns(c, vecs)
	sim, _ := NewSimulator(c, words, len(vecs))
	if got := sim.Detects(one, true); got != 0 {
		t.Errorf("one/1 detected (%b) but the fault never activates", got)
	}
	if got := sim.Detects(one, false); got != 0b10 {
		t.Errorf("one/0 mask = %b, want 0b10 (a=1 propagates through g1,g2)", got)
	}
}

// TestFaultNetIsOutput covers fault nets that are themselves primary
// outputs — both a PO with no fanout (divergence detected before any
// event is queued) and a PO that also feeds further logic, plus a primary
// input marked directly as an output.
func TestFaultNetIsOutput(t *testing.T) {
	b := logic.NewBuilder("pofaults")
	a := b.Input("a")
	x := b.Input("b")
	g1 := b.Gate(logic.And, "g1", a, x) // PO with fanout
	g2 := b.Gate(logic.Not, "g2", g1)   // PO, no fanout
	b.MarkOutput(a)                     // input as output
	b.MarkOutput(g1)
	b.MarkOutput(g2)
	c := b.MustBuild()
	vecs := [][]bool{{false, false}, {false, true}, {true, false}, {true, true}}
	allFaultsAgree(t, c, vecs)
	// DetectsAny on an output fault net must exit before touching fanout.
	words, _ := PackPatterns(c, vecs)
	sim, _ := NewSimulator(c, words, len(vecs))
	if got := sim.DetectsAny(g1, true); got == 0 {
		t.Error("g1/1 on an output net not detected by DetectsAny")
	}
}

// TestEventDrivenMatchesReference property-tests the event-driven
// simulator against full-circuit forced re-simulation on generated
// random circuits, over every fault and several seeds.
func TestEventDrivenMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		c := gen.Random(gen.RandomParams{Inputs: 12, Gates: 150, Seed: seed})
		rng := rand.New(rand.NewSource(seed * 100))
		nPat := 1 + rng.Intn(64)
		vecs := randomVecs(rng, c, nPat)
		words, err := PackPatterns(c, vecs)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulator(c, words, nPat)
		if err != nil {
			t.Fatal(err)
		}
		for net := 0; net < c.NumNodes(); net++ {
			for _, sa := range []bool{false, true} {
				got := sim.Detects(net, sa)
				want := ReferenceDetects(c, words, nPat, net, sa)
				if got != want {
					t.Fatalf("seed %d net %d sa%v: event-driven %b, reference %b", seed, net, sa, got, want)
				}
			}
		}
	}
}

// TestDetectAll checks the batch API against per-fault queries and its
// buffer-reuse contract.
func TestDetectAll(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomCircuit(rng, 50)
	vecs := randomVecs(rng, c, 32)
	words, err := PackPatterns(c, vecs)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(c, words, 32)
	if err != nil {
		t.Fatal(err)
	}
	var nets []int
	var sas []bool
	for net := 0; net < c.NumNodes(); net++ {
		nets = append(nets, net, net)
		sas = append(sas, false, true)
	}
	buf := make([]uint64, len(nets))
	got := sim.DetectAll(nets, sas, buf, false)
	if &got[0] != &buf[0] {
		t.Error("DetectAll did not reuse the provided buffer")
	}
	for i := range nets {
		if want := sim.Detects(nets[i], sas[i]); got[i] != want {
			t.Fatalf("fault %d (net %d sa%v): DetectAll %b, Detects %b", i, nets[i], sas[i], got[i], want)
		}
	}
	// Early mode: nonzero agreement per fault.
	early := sim.DetectAll(nets, sas, nil, true)
	for i := range nets {
		if (early[i] != 0) != (got[i] != 0) {
			t.Fatalf("fault %d: early mask %b vs full %b", i, early[i], got[i])
		}
		if early[i]&^got[i] != 0 {
			t.Fatalf("fault %d: early mask %b not a subset of %b", i, early[i], got[i])
		}
	}
}

func randomCircuit(rng *rand.Rand, n int) *logic.Circuit {
	b := logic.NewBuilder("rand")
	nin := 3 + rng.Intn(4)
	for i := 0; i < nin; i++ {
		b.Input("in" + string(rune('a'+i)))
	}
	types := []logic.GateType{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	for i := 0; i < n; i++ {
		gt := types[rng.Intn(len(types))]
		arity := 1
		if gt != logic.Not {
			arity = 1 + rng.Intn(3)
		}
		fanin := make([]int, arity)
		neg := make([]bool, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(b.NumNodes())
			neg[j] = rng.Intn(4) == 0
		}
		b.GateN(gt, "g"+string(rune('A'+i%26))+string(rune('0'+i/26)), fanin, neg)
	}
	// Mark a couple of outputs for observability.
	b.MarkOutput(b.NumNodes() - 1)
	if b.NumNodes() >= 2 {
		b.MarkOutput(b.NumNodes() - 2)
	}
	return b.MustBuild()
}
