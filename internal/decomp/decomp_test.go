package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
)

// equivalent checks functional equivalence of two circuits with identical
// input/output interfaces, on random vectors.
func equivalent(t *testing.T, a, b *logic.Circuit, trials int, seed int64) {
	t.Helper()
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("interface mismatch: %d/%d in, %d/%d out",
			len(a.Inputs), len(b.Inputs), len(a.Outputs), len(b.Outputs))
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		in := make([]bool, len(a.Inputs))
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		ao := a.SimulateOutputs(in)
		bo := b.SimulateOutputs(in)
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("trial %d output %d: %v vs %v", trial, i, ao[i], bo[i])
			}
		}
	}
}

// checkMapped verifies the decomposition contract: only AND/OR/BUF gates,
// fanin ≤ k.
func checkMapped(t *testing.T, c *logic.Circuit, k int) {
	t.Helper()
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Type {
		case logic.Input, logic.Const0, logic.Const1, logic.And, logic.Or, logic.Buf:
		default:
			t.Fatalf("gate %q has unmapped type %s", n.Name, n.Type)
		}
		if len(n.Fanin) > k {
			t.Fatalf("gate %q has fanin %d > %d", n.Name, len(n.Fanin), k)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeFigure4a(t *testing.T) {
	c := logic.Figure4a()
	m, err := Decompose(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkMapped(t, m, 3)
	equivalent(t, c, m, 32, 1)
	// fig4a is already 2-input AND/OR: the mapped circuit keeps one gate
	// per original gate.
	if m.NumGates() != c.NumGates() {
		t.Errorf("gate count changed: %d → %d", c.NumGates(), m.NumGates())
	}
}

func TestDecomposeWideGates(t *testing.T) {
	b := logic.NewBuilder("wide")
	var ins []int
	for i := 0; i < 10; i++ {
		ins = append(ins, b.Input("x"+string(rune('a'+i))))
	}
	and := b.Gate(logic.And, "A", ins...)
	nand := b.Gate(logic.Nand, "N", ins...)
	or := b.Gate(logic.Or, "O", ins[:7]...)
	nor := b.Gate(logic.Nor, "R", ins[:5]...)
	b.MarkOutput(and)
	b.MarkOutput(nand)
	b.MarkOutput(or)
	b.MarkOutput(nor)
	c := b.MustBuild()
	for _, k := range []int{2, 3, 4} {
		m, err := Decompose(c, k)
		if err != nil {
			t.Fatal(err)
		}
		checkMapped(t, m, k)
		equivalent(t, c, m, 200, int64(k))
	}
}

func TestDecomposeXorXnor(t *testing.T) {
	b := logic.NewBuilder("parity")
	var ins []int
	for i := 0; i < 5; i++ {
		ins = append(ins, b.Input("x"+string(rune('a'+i))))
	}
	x := b.Gate(logic.Xor, "X", ins...)
	xn := b.Gate(logic.Xnor, "XN", ins[:3]...)
	x1 := b.Gate(logic.Xor, "X1", ins[0]) // degenerate 1-input parity
	b.MarkOutput(x)
	b.MarkOutput(xn)
	b.MarkOutput(x1)
	c := b.MustBuild()
	m, err := Decompose(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkMapped(t, m, 3)
	equivalent(t, c, m, 64, 3)
}

func TestDecomposeNotBufConst(t *testing.T) {
	b := logic.NewBuilder("nb")
	x := b.Input("x")
	one := b.Const("one", true)
	n := b.Gate(logic.Not, "n", x)
	bf := b.GateN(logic.Buf, "bf", []int{n}, []bool{true}) // ¬¬x = x
	a := b.Gate(logic.And, "a", bf, one)
	b.MarkOutput(a)
	b.MarkOutput(n)
	c := b.MustBuild()
	m, err := Decompose(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkMapped(t, m, 3)
	equivalent(t, c, m, 8, 5)
}

func TestDecomposeErrors(t *testing.T) {
	c := logic.Figure4a()
	if _, err := Decompose(c, 1); err == nil {
		t.Error("k=1 accepted")
	}
}

// TestDecomposeRandomProperty: decomposition preserves function for random
// circuits with every gate type and random inversions.
func TestDecomposeRandomProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 25)
		m, err := Decompose(c, 3)
		if err != nil {
			return false
		}
		for i := range m.Nodes {
			switch m.Nodes[i].Type {
			case logic.Input, logic.Const0, logic.Const1, logic.And, logic.Or, logic.Buf:
			default:
				return false
			}
			if len(m.Nodes[i].Fanin) > 3 {
				return false
			}
		}
		// Exhaustive equivalence (few inputs).
		nin := len(c.Inputs)
		for pat := 0; pat < 1<<uint(nin); pat++ {
			in := make([]bool, nin)
			for i := range in {
				in[i] = pat>>uint(i)&1 == 1
			}
			ao := c.SimulateOutputs(in)
			bo := m.SimulateOutputs(in)
			for i := range ao {
				if ao[i] != bo[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeSuiteCircuits(t *testing.T) {
	for _, nc := range []struct {
		name string
		c    *logic.Circuit
	}{
		{"ripple8", gen.RippleAdder(8)},
		{"mult4", gen.ArrayMultiplier(4)},
		{"dec4", gen.Decoder(4)},
		{"parity16", gen.ParityTree(16)},
	} {
		m, err := Decompose(nc.c, 3)
		if err != nil {
			t.Fatalf("%s: %v", nc.name, err)
		}
		checkMapped(t, m, 3)
		equivalent(t, nc.c, m, 100, 9)
	}
}

func randomCircuit(rng *rand.Rand, n int) *logic.Circuit {
	b := logic.NewBuilder("rand")
	nin := 3 + rng.Intn(3)
	for i := 0; i < nin; i++ {
		b.Input("in" + string(rune('a'+i)))
	}
	types := []logic.GateType{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor, logic.Not, logic.Buf}
	for i := 0; i < n; i++ {
		gt := types[rng.Intn(len(types))]
		arity := 1
		if gt != logic.Not && gt != logic.Buf {
			arity = 1 + rng.Intn(5)
		}
		fanin := make([]int, arity)
		neg := make([]bool, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(b.NumNodes())
			neg[j] = rng.Intn(3) == 0
		}
		b.GateN(gt, "g"+string(rune('A'+i%26))+string(rune('0'+i/26)), fanin, neg)
	}
	b.MarkOutput(b.NumNodes() - 1)
	b.MarkOutput(b.NumNodes() - 2)
	return b.MustBuild()
}
