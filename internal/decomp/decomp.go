// Package decomp implements technology decomposition: mapping a Boolean
// network onto AND and OR gates with at most k inputs, allowing input
// inversions — the contract of SIS's tech_decomp procedure, which the
// paper applies (with k = 3) to every benchmark before measuring cut-width
// or running ATPG (Section 5.2.2). NAND/NOR are rewritten by De Morgan's
// laws; XOR/XNOR expand into their two-level AND/OR form over a balanced
// 2-input XOR tree.
package decomp

import (
	"fmt"

	"atpgeasy/internal/logic"
)

// lit is an internal signal with an optional inversion.
type lit struct {
	id  int
	neg bool
}

// decomposer carries the output builder and naming state.
type decomposer struct {
	b    *logic.Builder
	k    int
	next int
}

func (d *decomposer) fresh(base string) string {
	d.next++
	return fmt.Sprintf("%s$%d", base, d.next)
}

// Decompose maps the circuit onto ≤k-input AND/OR gates (plus BUF for
// fanin-1 cases), allowing inversions, preserving the circuit function,
// the primary input order and the primary output order. k must be ≥ 2.
func Decompose(c *logic.Circuit, k int) (*logic.Circuit, error) {
	if k < 2 {
		return nil, fmt.Errorf("decomp: k must be ≥ 2, got %d", k)
	}
	d := &decomposer{b: logic.NewBuilder(c.Name + "_map"), k: k}
	// mapped[id] is the literal in the new circuit equal to net id.
	mapped := make([]lit, c.NumNodes())
	for _, id := range c.TopoOrder() {
		n := &c.Nodes[id]
		ins := make([]lit, len(n.Fanin))
		for i, f := range n.Fanin {
			ins[i] = mapped[f]
			if n.Negated(i) {
				ins[i].neg = !ins[i].neg
			}
		}
		switch n.Type {
		case logic.Input:
			mapped[id] = lit{d.b.Input(n.Name), false}
		case logic.Const0:
			mapped[id] = lit{d.b.Const(n.Name, false), false}
		case logic.Const1:
			mapped[id] = lit{d.b.Const(n.Name, true), false}
		case logic.Buf:
			mapped[id] = d.emitBuf(n.Name, ins[0])
		case logic.Not:
			mapped[id] = d.emitBuf(n.Name, lit{ins[0].id, !ins[0].neg})
		case logic.And:
			mapped[id] = d.emitTree(logic.And, n.Name, ins, false)
		case logic.Nand:
			// ¬AND(x…) = OR(¬x…).
			mapped[id] = d.emitTree(logic.Or, n.Name, negAll(ins), false)
		case logic.Or:
			mapped[id] = d.emitTree(logic.Or, n.Name, ins, false)
		case logic.Nor:
			mapped[id] = d.emitTree(logic.And, n.Name, negAll(ins), false)
		case logic.Xor:
			mapped[id] = d.emitXorTree(n.Name, ins, false)
		case logic.Xnor:
			mapped[id] = d.emitXorTree(n.Name, ins, true)
		default:
			return nil, fmt.Errorf("decomp: unsupported gate type %s", n.Type)
		}
	}
	for _, o := range c.Outputs {
		m := mapped[o]
		if m.neg {
			// Outputs must be plain nets: materialize the inversion.
			m = lit{d.b.GateN(logic.Buf, d.fresh(c.Nodes[o].Name+"_inv"), []int{m.id}, []bool{true}), false}
		}
		d.b.MarkOutput(m.id)
	}
	out, err := d.b.Build()
	if err != nil {
		return nil, err
	}
	return out, nil
}

func negAll(ins []lit) []lit {
	out := make([]lit, len(ins))
	for i, l := range ins {
		out[i] = lit{l.id, !l.neg}
	}
	return out
}

// emitBuf creates a named buffer for the literal (keeping the original net
// name alive in the mapped circuit).
func (d *decomposer) emitBuf(name string, in lit) lit {
	return lit{d.b.GateN(logic.Buf, d.uniqueName(name), []int{in.id}, []bool{in.neg}), false}
}

// uniqueName keeps the original name when free, otherwise suffixes it.
func (d *decomposer) uniqueName(name string) string {
	if _, taken := d.b.Lookup(name); !taken {
		return name
	}
	return d.fresh(name)
}

// emitTree builds a balanced tree of ≤k-input gates of type t over the
// literals; the root carries the original net name. outNeg requests the
// complement of the tree function (folded into a final buffer when needed).
func (d *decomposer) emitTree(t logic.GateType, name string, ins []lit, outNeg bool) lit {
	cur := append([]lit(nil), ins...)
	for len(cur) > d.k {
		var next []lit
		for i := 0; i < len(cur); i += d.k {
			hi := i + d.k
			if hi > len(cur) {
				hi = len(cur)
			}
			if hi-i == 1 {
				next = append(next, cur[i])
				continue
			}
			next = append(next, d.gate(t, d.fresh(name), cur[i:hi]))
		}
		cur = next
	}
	var root lit
	if len(cur) == 1 {
		root = d.emitBuf(name, cur[0])
	} else {
		root = d.gate(t, d.uniqueName(name), cur)
	}
	root.neg = root.neg != outNeg
	return root
}

func (d *decomposer) gate(t logic.GateType, name string, ins []lit) lit {
	ids := make([]int, len(ins))
	negs := make([]bool, len(ins))
	for i, l := range ins {
		ids[i] = l.id
		negs[i] = l.neg
	}
	return lit{d.b.GateN(t, name, ids, negs), false}
}

// emitXorTree reduces a multi-input XOR/XNOR to a balanced tree of 2-input
// parity cells, each expanded to AND/OR form: x⊕y = (x∧¬y) ∨ (¬x∧y).
// XNOR is realized as a final output inversion folded into the root name.
func (d *decomposer) emitXorTree(name string, ins []lit, xnor bool) lit {
	cur := append([]lit(nil), ins...)
	for len(cur) > 1 {
		var next []lit
		for i := 0; i+1 < len(cur); i += 2 {
			last := len(cur) <= 2
			cellName := d.fresh(name)
			if last {
				cellName = d.uniqueName(name)
			}
			next = append(next, d.xorCell(cellName, cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	root := cur[0]
	if len(ins) == 1 {
		// Degenerate 1-input parity: the literal itself (named buffer).
		root = d.emitBuf(d.uniqueName(name), root)
	}
	root.neg = root.neg != xnor
	if root.neg {
		root = lit{d.b.GateN(logic.Buf, d.fresh(name+"_n"), []int{root.id}, []bool{true}), false}
	}
	return root
}

// xorCell builds x⊕y = (x∧¬y)∨(¬x∧y) with the OR carrying the name.
func (d *decomposer) xorCell(name string, x, y lit) lit {
	a := d.gate(logic.And, d.fresh(name), []lit{x, {y.id, !y.neg}})
	b := d.gate(logic.And, d.fresh(name), []lit{{x.id, !x.neg}, y})
	return d.gate(logic.Or, name, []lit{a, b})
}
