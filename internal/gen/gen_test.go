package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atpgeasy/internal/logic"
)

// toBits converts v to n bools, LSB first.
func toBits(v uint64, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = v>>uint(i)&1 == 1
	}
	return out
}

func fromBits(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestRippleAdderAdds(t *testing.T) {
	c := RippleAdder(8)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	check := func(a, b uint8, cin bool) bool {
		in := append(append(toBits(uint64(a), 8), toBits(uint64(b), 8)...), cin)
		out := c.SimulateOutputs(in)
		got := fromBits(out) // s0..s7, cout as bit 8
		want := uint64(a) + uint64(b)
		if cin {
			want++
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCarryLookaheadAdderAdds(t *testing.T) {
	c := CarryLookaheadAdder(10)
	check := func(a, b uint16, cin bool) bool {
		a &= 1<<10 - 1
		b &= 1<<10 - 1
		in := append(append(toBits(uint64(a), 10), toBits(uint64(b), 10)...), cin)
		out := c.SimulateOutputs(in)
		want := uint64(a) + uint64(b)
		if cin {
			want++
		}
		return fromBits(out) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArrayMultiplierMultiplies(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		c := ArrayMultiplier(n)
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if len(c.Outputs) != 2*n {
			t.Fatalf("mult%d has %d outputs, want %d", n, len(c.Outputs), 2*n)
		}
		for a := uint64(0); a < 1<<uint(n); a++ {
			for b := uint64(0); b < 1<<uint(n); b++ {
				in := append(toBits(a, n), toBits(b, n)...)
				got := fromBits(c.SimulateOutputs(in))
				if got != a*b {
					t.Fatalf("mult%d: %d×%d = %d, want %d", n, a, b, got, a*b)
				}
			}
		}
	}
}

func TestComparatorCompares(t *testing.T) {
	c := Comparator(6)
	check := func(a, b uint8) bool {
		a &= 63
		b &= 63
		in := append(toBits(uint64(a), 6), toBits(uint64(b), 6)...)
		out := c.SimulateOutputs(in) // lt, eq, gt
		return out[0] == (a < b) && out[1] == (a == b) && out[2] == (a > b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestALUFunctions(t *testing.T) {
	n := 6
	c := ALU(n)
	mask := uint64(1<<uint(n) - 1)
	check := func(a, b uint8, s0, s1, cin bool) bool {
		av, bv := uint64(a)&mask, uint64(b)&mask
		in := []bool{s0, s1}
		in = append(in, toBits(av, n)...)
		in = append(in, toBits(bv, n)...)
		in = append(in, cin)
		out := c.SimulateOutputs(in)
		y := fromBits(out[:n])
		var want uint64
		switch {
		case !s1 && !s0:
			want = av + bv
			if cin {
				want++
			}
			want &= mask
		case !s1 && s0:
			want = av & bv
		case s1 && !s0:
			want = av | bv
		default:
			want = av ^ bv
		}
		return y == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKaryTree(t *testing.T) {
	c := KaryTree(3, 3)
	if len(c.Inputs) != 27 {
		t.Errorf("inputs = %d, want 27", len(c.Inputs))
	}
	if len(c.Outputs) != 1 {
		t.Errorf("outputs = %d", len(c.Outputs))
	}
	if got := c.MaxFanout(); got > 1 {
		t.Errorf("tree has fanout %d", got)
	}
	// Root is AND of three OR gates of three ANDs of three leaves:
	// all-ones input must give 1, all-zeros 0.
	ones := make([]bool, 27)
	for i := range ones {
		ones[i] = true
	}
	if !c.SimulateOutputs(ones)[0] {
		t.Error("all-ones should satisfy AND/OR tree")
	}
	if c.SimulateOutputs(make([]bool, 27))[0] {
		t.Error("all-zeros should not")
	}
	defer func() {
		if recover() == nil {
			t.Error("k=1 should panic")
		}
	}()
	KaryTree(1, 2)
}

func TestParityTree(t *testing.T) {
	c := ParityTree(13)
	check := func(v uint16) bool {
		in := toBits(uint64(v)&(1<<13-1), 13)
		want := false
		for _, b := range in {
			want = want != b
		}
		return c.SimulateOutputs(in)[0] == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecoder(t *testing.T) {
	c := Decoder(4)
	if len(c.Outputs) != 16 {
		t.Fatalf("outputs = %d", len(c.Outputs))
	}
	for addr := 0; addr < 16; addr++ {
		out := c.SimulateOutputs(toBits(uint64(addr), 4))
		for row, v := range out {
			if v != (row == addr) {
				t.Fatalf("addr %d: output %d = %v", addr, row, v)
			}
		}
	}
}

func TestMuxTree(t *testing.T) {
	c := MuxTree(3)
	check := func(sel uint8, data uint8) bool {
		s := int(sel) & 7
		in := toBits(uint64(s), 3)
		in = append(in, toBits(uint64(data), 8)...)
		return c.SimulateOutputs(in)[0] == (data>>uint(s)&1 == 1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCellularArrays(t *testing.T) {
	c1 := CellularArray1D(10)
	if err := c1.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(c1.Outputs) != 11 {
		t.Errorf("1d outputs = %d", len(c1.Outputs))
	}
	c2 := CellularArray2D(4, 5)
	if err := c2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(c2.Outputs) != 9 {
		t.Errorf("2d outputs = %d, want rows+cols = 9", len(c2.Outputs))
	}
	if got := c2.MaxFanin(); got > 2 {
		t.Errorf("2d max fanin = %d", got)
	}
}

func TestRandomDeterministic(t *testing.T) {
	p := RandomParams{Inputs: 10, Gates: 50, Seed: 42}
	a := Random(p)
	b := Random(p)
	if a.NumNodes() != b.NumNodes() {
		t.Fatal("node counts differ")
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		in := make([]bool, len(a.Inputs))
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		ao := a.SimulateOutputs(in)
		bo := b.SimulateOutputs(in)
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatal("same seed, different function")
			}
		}
	}
}

func TestRandomWellFormed(t *testing.T) {
	check := func(seed int64) bool {
		c := Random(RandomParams{Inputs: 5, Gates: 40, Seed: seed})
		if err := c.CheckInvariants(); err != nil {
			return false
		}
		if c.MaxFanin() > 3 {
			return false
		}
		// Every non-input node must reach an output (no dead logic).
		reach := c.TransitiveFanin(c.Outputs...)
		marked := make(map[int]bool, len(reach))
		for _, id := range reach {
			marked[id] = true
		}
		for id := range c.Nodes {
			if c.Nodes[id].Type != logic.Input && !marked[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRandomLocalityAffectsStructure(t *testing.T) {
	tight := Random(RandomParams{Inputs: 20, Gates: 400, Locality: 1.0, Seed: 5, Name: "tight"})
	loose := Random(RandomParams{Inputs: 20, Gates: 400, Locality: 20.0, Seed: 5, Name: "loose"})
	// Loose locality makes longer fanin spans on average.
	span := func(c *logic.Circuit) float64 {
		total, cnt := 0, 0
		for id := range c.Nodes {
			for _, f := range c.Nodes[id].Fanin {
				total += id - f
				cnt++
			}
		}
		return float64(total) / float64(cnt)
	}
	if span(loose) <= span(tight) {
		t.Errorf("locality knob inert: tight span %.1f, loose span %.1f", span(tight), span(loose))
	}
}

func TestSuites(t *testing.T) {
	iscas := ISCAS85Like()
	if len(iscas) != 9 {
		t.Errorf("ISCAS85-like suite has %d circuits, want 9 (as run in the paper)", len(iscas))
	}
	mcnc := MCNC91Like()
	if len(mcnc) != 48 {
		t.Errorf("MCNC91-like suite has %d circuits, want 48 (as run in the paper)", len(mcnc))
	}
	for _, nc := range append(iscas, mcnc...) {
		if err := nc.C.CheckInvariants(); err != nil {
			t.Errorf("%s (%s): %v", nc.Role, nc.C.Name, err)
		}
		if len(nc.C.Outputs) == 0 {
			t.Errorf("%s: no outputs", nc.Role)
		}
	}
}

func TestXorBlocksParity(t *testing.T) {
	c := xorBlocks(4, 2)
	// Block k output = XOR over inputs (i+k)%8 and (i+k+4)%8 for i=0..3 —
	// i.e. parity of all 8 inputs regardless of k.
	check := func(v uint8) bool {
		in := toBits(uint64(v), 8)
		want := false
		for _, b := range in {
			want = want != b
		}
		out := c.SimulateOutputs(in)
		return out[0] == want && out[1] == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
