package gen

import (
	"fmt"

	"atpgeasy/internal/logic"
)

// KaryTree builds a complete k-ary tree circuit of the given depth:
// leaves are primary inputs, internal nodes alternate AND/OR levels, and
// the root is the single primary output. These are the circuits of
// Lemma 5.2 (a k-ary tree has an ordering of width ≤ (k-1)·log n).
func KaryTree(k, depth int) *logic.Circuit {
	if k < 2 {
		panic("gen: KaryTree needs k ≥ 2")
	}
	b := logic.NewBuilder(fmt.Sprintf("tree_k%d_d%d", k, depth))
	var build func(level, index int) int
	build = func(level, index int) int {
		if level == depth {
			return b.Input(fmt.Sprintf("x%d_%d", level, index))
		}
		fanin := make([]int, k)
		for i := range fanin {
			fanin[i] = build(level+1, index*k+i)
		}
		t := logic.And
		if level%2 == 1 {
			t = logic.Or
		}
		return b.Gate(t, fmt.Sprintf("n%d_%d", level, index), fanin...)
	}
	root := build(0, 0)
	b.MarkOutput(root)
	return b.MustBuild()
}

// ParityTree builds a balanced XOR tree over n inputs with a single
// parity output — the ECC/parity class (the c499/c1355 role).
func ParityTree(n int) *logic.Circuit {
	if n < 2 {
		panic("gen: ParityTree needs n ≥ 2")
	}
	b := logic.NewBuilder(fmt.Sprintf("parity%d", n))
	layer := make([]int, n)
	for i := 0; i < n; i++ {
		layer[i] = b.Input(fmt.Sprintf("x%d", i))
	}
	lvl := 0
	for len(layer) > 1 {
		var next []int
		for i := 0; i < len(layer); i += 2 {
			if i+1 == len(layer) {
				next = append(next, layer[i])
				continue
			}
			next = append(next, b.Gate(logic.Xor, fmt.Sprintf("p%d_%d", lvl, i/2), layer[i], layer[i+1]))
		}
		layer = next
		lvl++
	}
	b.MarkOutput(layer[0])
	return b.MustBuild()
}

// Decoder builds an n-to-2^n line decoder: each output is the AND of the
// n address literals. Fujiwara's k-bounded examples include decoders.
func Decoder(n int) *logic.Circuit {
	if n < 1 || n > 16 {
		panic("gen: Decoder needs 1 ≤ n ≤ 16")
	}
	b := logic.NewBuilder(fmt.Sprintf("dec%d", n))
	addr := make([]int, n)
	for i := range addr {
		addr[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for row := 0; row < 1<<uint(n); row++ {
		neg := make([]bool, n)
		for i := 0; i < n; i++ {
			neg[i] = row>>uint(i)&1 == 0
		}
		// Build as a balanced tree of ≤3-input ANDs over the literals.
		cur := make([]int, n)
		curNeg := make([]bool, n)
		copy(cur, addr)
		copy(curNeg, neg)
		lvl := 0
		for len(cur) > 1 {
			var next []int
			var nextNeg []bool
			for i := 0; i < len(cur); i += 3 {
				hi := i + 3
				if hi > len(cur) {
					hi = len(cur)
				}
				if hi-i == 1 {
					next = append(next, cur[i])
					nextNeg = append(nextNeg, curNeg[i])
					continue
				}
				g := b.GateN(logic.And, fmt.Sprintf("o%d_l%d_%d", row, lvl, i/3), cur[i:hi], curNeg[i:hi])
				next = append(next, g)
				nextNeg = append(nextNeg, false)
			}
			cur, curNeg = next, nextNeg
			lvl++
		}
		out := cur[0]
		if curNeg[0] {
			out = b.GateN(logic.Buf, fmt.Sprintf("o%d_buf", row), []int{cur[0]}, []bool{true})
		}
		b.MarkOutput(out)
	}
	return b.MustBuild()
}

// MuxTree builds a 2^nSel-to-1 multiplexer from 2:1 mux cells.
func MuxTree(nSel int) *logic.Circuit {
	if nSel < 1 || nSel > 12 {
		panic("gen: MuxTree needs 1 ≤ nSel ≤ 12")
	}
	b := logic.NewBuilder(fmt.Sprintf("mux%d", 1<<uint(nSel)))
	sels := make([]int, nSel)
	for i := range sels {
		sels[i] = b.Input(fmt.Sprintf("s%d", i))
	}
	layer := make([]int, 1<<uint(nSel))
	for i := range layer {
		layer[i] = b.Input(fmt.Sprintf("d%d", i))
	}
	for lvl := 0; lvl < nSel; lvl++ {
		next := make([]int, len(layer)/2)
		for i := range next {
			next[i] = mux2(b, fmt.Sprintf("m%d_%d", lvl, i), sels[lvl], layer[2*i], layer[2*i+1])
		}
		layer = next
	}
	b.MarkOutput(layer[0])
	return b.MustBuild()
}

// CellularArray1D builds a one-dimensional cellular array of n identical
// cells (Fujiwara's k-bounded example): each cell combines a state input
// from the previous cell with two fresh primary inputs and exposes an
// observable output.
func CellularArray1D(n int) *logic.Circuit {
	b := logic.NewBuilder(fmt.Sprintf("cell1d_%d", n))
	state := b.Input("seed")
	for i := 0; i < n; i++ {
		x := b.Input(fmt.Sprintf("x%d", i))
		y := b.Input(fmt.Sprintf("y%d", i))
		t := b.Gate(logic.And, fmt.Sprintf("t%d", i), x, state)
		obs := b.Gate(logic.Xor, fmt.Sprintf("obs%d", i), t, y)
		state = b.Gate(logic.Or, fmt.Sprintf("st%d", i), t, y)
		b.MarkOutput(obs)
	}
	b.MarkOutput(state)
	return b.MustBuild()
}

// CellularArray2D builds an r×c two-dimensional cellular array: each cell
// combines signals from its west and north neighbors with a fresh primary
// input; east/south edges are observable.
func CellularArray2D(rows, cols int) *logic.Circuit {
	b := logic.NewBuilder(fmt.Sprintf("cell2d_%dx%d", rows, cols))
	north := make([]int, cols)
	for j := range north {
		north[j] = b.Input(fmt.Sprintf("n%d", j))
	}
	for i := 0; i < rows; i++ {
		west := b.Input(fmt.Sprintf("w%d", i))
		for j := 0; j < cols; j++ {
			x := b.Input(fmt.Sprintf("x%d_%d", i, j))
			t := b.Gate(logic.And, fmt.Sprintf("t%d_%d", i, j), west, north[j])
			s := b.Gate(logic.Xor, fmt.Sprintf("s%d_%d", i, j), t, x)
			east := b.Gate(logic.Or, fmt.Sprintf("e%d_%d", i, j), s, x)
			north[j] = s // flows south
			west = east
		}
		b.MarkOutput(west)
	}
	for j := 0; j < cols; j++ {
		b.MarkOutput(north[j])
	}
	return b.MustBuild()
}
