// Package gen generates the circuit families used throughout the
// reproduction of "Why is ATPG Easy?":
//
//   - the k-bounded examples of Fujiwara cited in Section 3.2 (ripple-carry
//     adders, decoders, one- and two-dimensional cellular arrays);
//   - k-ary tree circuits (Lemma 5.2);
//   - arithmetic and control blocks standing in for the ISCAS85 suite
//     (parity/ECC for c499/c1355, ALU for c880, array multiplier for
//     c6288, …);
//   - parameterized random circuits in the spirit of Hutton et al.'s
//     circ/gen (Section 5.2.3), with controlled size, fanin, and
//     reconvergence locality;
//   - the MCNC91-like and ISCAS85-like benchmark suites used by the
//     Figure 1 and Figure 8 experiments (see DESIGN.md for the
//     substitution rationale).
//
// All generators produce well-formed logic.Circuit values; gates use at
// most 3 inputs except XOR trees, which package decomp reduces.
package gen

import (
	"fmt"

	"atpgeasy/internal/logic"
)

// fullAdder appends a full adder to the builder and returns (sum, carry).
// It uses 2-input gates only: s = a⊕b⊕cin, cout = ab + cin(a⊕b).
func fullAdder(b *logic.Builder, prefix string, a, x, cin int) (sum, cout int) {
	axb := b.Gate(logic.Xor, prefix+"_axb", a, x)
	sum = b.Gate(logic.Xor, prefix+"_s", axb, cin)
	t1 := b.Gate(logic.And, prefix+"_t1", a, x)
	t2 := b.Gate(logic.And, prefix+"_t2", axb, cin)
	cout = b.Gate(logic.Or, prefix+"_c", t1, t2)
	return sum, cout
}

// RippleAdder builds an n-bit ripple-carry adder: inputs a0..a(n-1),
// b0..b(n-1), cin; outputs s0..s(n-1), cout. It is the canonical
// k-bounded circuit (blocks = full adders, k = 3).
func RippleAdder(n int) *logic.Circuit {
	b := logic.NewBuilder(fmt.Sprintf("ripple%d", n))
	as := make([]int, n)
	bs := make([]int, n)
	for i := 0; i < n; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	carry := b.Input("cin")
	for i := 0; i < n; i++ {
		var s int
		s, carry = fullAdder(b, fmt.Sprintf("fa%d", i), as[i], bs[i], carry)
		b.MarkOutput(s)
	}
	b.MarkOutput(carry)
	return b.MustBuild()
}

// CarryLookaheadAdder builds an n-bit adder with 4-bit lookahead groups
// chained at the group level — deeper reconvergence than the ripple adder,
// still locally bounded.
func CarryLookaheadAdder(n int) *logic.Circuit {
	b := logic.NewBuilder(fmt.Sprintf("cla%d", n))
	as := make([]int, n)
	bs := make([]int, n)
	for i := 0; i < n; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	carry := b.Input("cin")
	for g := 0; g*4 < n; g++ {
		lo := g * 4
		hi := lo + 4
		if hi > n {
			hi = n
		}
		// Per-bit propagate/generate.
		var ps, gs []int
		for i := lo; i < hi; i++ {
			ps = append(ps, b.Gate(logic.Xor, fmt.Sprintf("p%d", i), as[i], bs[i]))
			gs = append(gs, b.Gate(logic.And, fmt.Sprintf("g%d", i), as[i], bs[i]))
		}
		// Carries within the group: c_{i+1} = g_i + p_i·c_i, expanded.
		cins := []int{carry}
		for j := range ps {
			term := b.Gate(logic.And, fmt.Sprintf("pc%d", lo+j), ps[j], cins[j])
			cins = append(cins, b.Gate(logic.Or, fmt.Sprintf("c%d", lo+j+1), gs[j], term))
		}
		for j := range ps {
			b.MarkOutput(b.Gate(logic.Xor, fmt.Sprintf("s%d", lo+j), ps[j], cins[j]))
		}
		carry = cins[len(cins)-1]
	}
	b.MarkOutput(carry)
	return b.MustBuild()
}

// ArrayMultiplier builds an n×n combinational array multiplier (the role
// of ISCAS85's C6288). Inputs a0..a(n-1), b0..b(n-1); outputs p0..p(2n-1).
// Its deep, global reconvergence makes it the stress case for cut-width.
func ArrayMultiplier(n int) *logic.Circuit {
	b := logic.NewBuilder(fmt.Sprintf("mult%dx%d", n, n))
	as := make([]int, n)
	bs := make([]int, n)
	for i := 0; i < n; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	// Partial products.
	pp := make([][]int, n)
	for i := range pp {
		pp[i] = make([]int, n)
		for j := range pp[i] {
			pp[i][j] = b.Gate(logic.And, fmt.Sprintf("pp%d_%d", i, j), as[j], bs[i])
		}
	}
	// Shift-and-add: acc[j] holds the running product bit at position j.
	acc := append([]int(nil), pp[0]...)
	for i := 1; i < n; i++ {
		carry := -1
		for j := 0; j < n; j++ {
			pos := i + j
			existing := -1
			if pos < len(acc) {
				existing = acc[pos]
			}
			prefix := fmt.Sprintf("r%d_%d", i, j)
			bits := make([]int, 0, 3)
			for _, v := range []int{pp[i][j], existing, carry} {
				if v >= 0 {
					bits = append(bits, v)
				}
			}
			var sum, cout int
			switch len(bits) {
			case 1:
				sum, cout = bits[0], -1
			case 2:
				sum = b.Gate(logic.Xor, prefix+"_s", bits[0], bits[1])
				cout = b.Gate(logic.And, prefix+"_c", bits[0], bits[1])
			default:
				sum, cout = fullAdder(b, prefix, bits[0], bits[1], bits[2])
			}
			if pos < len(acc) {
				acc[pos] = sum
			} else {
				acc = append(acc, sum)
			}
			carry = cout
		}
		if carry >= 0 {
			acc = append(acc, carry)
		}
	}
	for _, bit := range acc {
		b.MarkOutput(bit)
	}
	return b.MustBuild()
}

// Comparator builds an n-bit magnitude comparator with outputs lt, eq, gt.
func Comparator(n int) *logic.Circuit {
	b := logic.NewBuilder(fmt.Sprintf("cmp%d", n))
	as := make([]int, n)
	bs := make([]int, n)
	for i := 0; i < n; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	// From MSB down: eq chain and gt/lt accumulation.
	eq := -1
	gt := -1
	lt := -1
	for i := n - 1; i >= 0; i-- {
		bitEq := b.Gate(logic.Xnor, fmt.Sprintf("eq%d", i), as[i], bs[i])
		// a_i AND NOT b_i
		bitGt := b.GateN(logic.And, fmt.Sprintf("gtb%d", i), []int{as[i], bs[i]}, []bool{false, true})
		bitLt := b.GateN(logic.And, fmt.Sprintf("ltb%d", i), []int{as[i], bs[i]}, []bool{true, false})
		if eq < 0 {
			eq, gt, lt = bitEq, bitGt, bitLt
			continue
		}
		gt = b.Gate(logic.Or, fmt.Sprintf("gt%d", i), gt, b.Gate(logic.And, fmt.Sprintf("gta%d", i), eq, bitGt))
		lt = b.Gate(logic.Or, fmt.Sprintf("lt%d", i), lt, b.Gate(logic.And, fmt.Sprintf("lta%d", i), eq, bitLt))
		eq = b.Gate(logic.And, fmt.Sprintf("eqa%d", i), eq, bitEq)
	}
	b.MarkOutput(lt)
	b.MarkOutput(eq)
	b.MarkOutput(gt)
	return b.MustBuild()
}

// ALU builds an n-bit, 2-function-select ALU slice chain (add/and/or/xor),
// standing in for ISCAS85's c880 ALU-and-control class.
func ALU(n int) *logic.Circuit {
	b := logic.NewBuilder(fmt.Sprintf("alu%d", n))
	s0 := b.Input("s0")
	s1 := b.Input("s1")
	as := make([]int, n)
	bs := make([]int, n)
	for i := 0; i < n; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	carry := b.Input("cin")
	for i := 0; i < n; i++ {
		andG := b.Gate(logic.And, fmt.Sprintf("and%d", i), as[i], bs[i])
		orG := b.Gate(logic.Or, fmt.Sprintf("or%d", i), as[i], bs[i])
		xorG := b.Gate(logic.Xor, fmt.Sprintf("xor%d", i), as[i], bs[i])
		var sum int
		sum, carry = fullAdder(b, fmt.Sprintf("fa%d", i), as[i], bs[i], carry)
		// 4:1 select via 2-level mux with s1,s0: 00=add 01=and 10=or 11=xor.
		m0 := mux2(b, fmt.Sprintf("m0_%d", i), s0, sum, andG)
		m1 := mux2(b, fmt.Sprintf("m1_%d", i), s0, orG, xorG)
		out := mux2(b, fmt.Sprintf("y%d", i), s1, m0, m1)
		b.MarkOutput(out)
	}
	b.MarkOutput(carry)
	return b.MustBuild()
}

// mux2 builds y = sel ? hi : lo with 2-input gates.
func mux2(b *logic.Builder, prefix string, sel, lo, hi int) int {
	nlo := b.GateN(logic.And, prefix+"_l", []int{sel, lo}, []bool{true, false})
	nhi := b.Gate(logic.And, prefix+"_h", sel, hi)
	return b.Gate(logic.Or, prefix+"_o", nlo, nhi)
}
