package gen

import (
	"fmt"
	"math"
	"math/rand"

	"atpgeasy/internal/logic"
)

// RandomParams parameterize the random circuit generator, in the spirit of
// the circ/gen tool of Hutton et al. cited in Section 5.2.3: circuits are
// generated to topologically resemble benchmark circuits, with size,
// fanin, output count, and reconvergence locality as knobs.
type RandomParams struct {
	// Name labels the circuit; empty derives one from the parameters.
	Name string
	// Inputs and Gates are the primary input and gate counts.
	Inputs int
	Gates  int
	// Outputs is the primary output count; 0 derives ~√Gates.
	Outputs int
	// MaxFanin bounds gate fanin; 0 means 3 (the paper's mapping target).
	MaxFanin int
	// Locality controls reconvergence: each gate draws its fanins from a
	// window of the most recently created ~Locality·log2(size) nets.
	// Small values give tree-like circuits with logarithmic cut-width;
	// large values approach unstructured random graphs. 0 means 2.0.
	Locality float64
	// InvProb is the probability that a gate input carries an inversion
	// bubble; 0 means 0.25.
	InvProb float64
	// Seed drives the generator; generation is deterministic per seed.
	Seed int64
}

func (p RandomParams) withDefaults() RandomParams {
	if p.Inputs < 1 {
		p.Inputs = 1
	}
	if p.Gates < 1 {
		p.Gates = 1
	}
	if p.Outputs == 0 {
		p.Outputs = int(math.Sqrt(float64(p.Gates)))
		if p.Outputs < 1 {
			p.Outputs = 1
		}
	}
	if p.MaxFanin == 0 {
		p.MaxFanin = 3
	}
	if p.MaxFanin < 2 {
		p.MaxFanin = 2
	}
	if p.Locality == 0 {
		p.Locality = 2.0
	}
	if p.InvProb == 0 {
		p.InvProb = 0.25
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("rand_i%d_g%d_s%d", p.Inputs, p.Gates, p.Seed)
	}
	return p
}

// Random generates a parameterized random combinational circuit. Primary
// inputs are interleaved among the gates, spread over the first 60% of
// the creation order — real netlists feed inputs into logic throughout,
// and a block of inputs wired to a block of gates would fabricate a wide
// band of crossing nets that distorts cut-width measurements. Every input
// is guaranteed to be consumed and every net reaches at least one primary
// output (dangling gates are promoted to outputs), so all faults are
// potentially observable.
func Random(p RandomParams) *logic.Circuit {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	b := logic.NewBuilder(p.Name)
	total := p.Inputs + p.Gates
	window := int(p.Locality * math.Log2(float64(total)))
	if window < p.MaxFanin+1 {
		window = p.MaxFanin + 1
	}
	// Creation-order positions holding primary inputs: position 0 is
	// always an input (gates need drivers); the rest spread evenly.
	isPI := make([]bool, total)
	span := total * 6 / 10
	if span < p.Inputs {
		span = total
	}
	placed := 0
	for k := 0; k < p.Inputs; k++ {
		pos := k * span / p.Inputs
		for pos < total && isPI[pos] {
			pos++
		}
		if pos < total {
			isPI[pos] = true
			placed++
		}
	}
	for pos := 0; placed < p.Inputs && pos < total; pos++ {
		if !isPI[pos] {
			isPI[pos] = true
			placed++
		}
	}
	types := []logic.GateType{logic.And, logic.Or, logic.And, logic.Or, logic.Xor}
	piRead := make([]bool, total) // indexed by node ID
	var pendingPI []int           // unread primary inputs, oldest first
	nPI, nGate := 0, 0
	for pos := 0; pos < total; pos++ {
		if isPI[pos] {
			pendingPI = append(pendingPI, b.Input(fmt.Sprintf("pi%d", nPI)))
			nPI++
			continue
		}
		gt := types[rng.Intn(len(types))]
		arity := 2
		if p.MaxFanin > 2 && gt != logic.Xor && rng.Intn(2) == 0 {
			arity = 2 + rng.Intn(p.MaxFanin-1)
		}
		cur := b.NumNodes()
		lo := cur - window
		if lo < 0 {
			lo = 0
		}
		fanin := make([]int, 0, arity)
		neg := make([]bool, 0, arity)
		seen := map[int]bool{}
		// Consume the oldest still-unread primary input so none floats;
		// inputs are interleaved, so this edge is short in expectation.
		if len(pendingPI) > 0 {
			id := pendingPI[0]
			pendingPI = pendingPI[1:]
			piRead[id] = true
			seen[id] = true
			fanin = append(fanin, id)
			neg = append(neg, rng.Float64() < p.InvProb)
		}
		for len(fanin) < arity {
			var pick int
			if rng.Float64() < 0.15 {
				// Occasional long-range connection with Pareto distance,
				// P(d ≥ s) = 1/s (density ∝ 1/d² — Rent-style locality).
				// Heavier tails would make the expected number of nets
				// crossing a cut grow polynomially instead of
				// logarithmically, which real netlists do not exhibit.
				u := rng.Float64()
				d := cur
				if u > 1.0/float64(cur) {
					d = int(1.0 / u)
					if d < 1 {
						d = 1
					}
				}
				pick = cur - d
			} else {
				pick = lo + rng.Intn(cur-lo)
			}
			if seen[pick] {
				if len(seen) >= cur {
					break
				}
				continue
			}
			seen[pick] = true
			fanin = append(fanin, pick)
			neg = append(neg, rng.Float64() < p.InvProb)
		}
		if len(fanin) == 1 {
			b.GateN(logic.Buf, fmt.Sprintf("g%d", nGate), fanin, neg)
		} else {
			b.GateN(gt, fmt.Sprintf("g%d", nGate), fanin, neg)
		}
		nGate++
	}
	// Inputs placed after the last gate (only when inputs ≫ gates) get a
	// dedicated buffer tap so they are observable.
	for _, id := range pendingPI {
		b.GateN(logic.Buf, fmt.Sprintf("tap%d", id), []int{id}, nil)
	}
	c0 := b // alias for clarity below
	// Choose outputs among sink nets first (fanout 0), then random nets.
	// Build the circuit once to learn fanouts, then re-mark outputs.
	tmp, err := c0.Build()
	if err != nil {
		panic(err)
	}
	var sinks, others []int
	for id := range tmp.Nodes {
		if tmp.Nodes[id].Type == logic.Input {
			continue
		}
		if len(tmp.Nodes[id].Fanout) == 0 {
			sinks = append(sinks, id)
		} else {
			others = append(others, id)
		}
	}
	// All sinks must be outputs (otherwise their logic is dead); add
	// random others until the requested output count is met.
	outs := append([]int(nil), sinks...)
	rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	for _, id := range others {
		if len(outs) >= p.Outputs {
			break
		}
		outs = append(outs, id)
	}
	if len(outs) == 0 {
		outs = append(outs, tmp.NumNodes()-1)
	}
	b2 := logic.NewBuilder(p.Name)
	for i := range tmp.Nodes {
		n := &tmp.Nodes[i]
		switch n.Type {
		case logic.Input:
			b2.Input(n.Name)
		default:
			b2.GateN(n.Type, n.Name, n.Fanin, n.Neg)
		}
	}
	for _, o := range outs {
		b2.MarkOutput(o)
	}
	return b2.MustBuild()
}

// NamedCircuit pairs a circuit with the benchmark-suite slot it stands in
// for.
type NamedCircuit struct {
	Role string // the benchmark circuit this one substitutes, e.g. "c432"
	C    *logic.Circuit
}

// ISCAS85Like builds the 9-circuit stand-in for the ISCAS85 suite used in
// Figure 8(b). The paper ran 9 of the 11 ISCAS85 circuits (C3540 and
// C6288 excluded); sizes and structural character mirror the originals:
// ECC/parity for c499/c1355, ALU for c880, adder-heavy c7552, random
// control logic elsewhere. See DESIGN.md §3 for the substitution argument.
func ISCAS85Like() []NamedCircuit {
	return []NamedCircuit{
		{"c432", Random(RandomParams{Name: "c432like", Inputs: 36, Gates: 200, Outputs: 7, Locality: 2.5, Seed: 432})},
		{"c499", ParityTree(41)},
		{"c880", ALU(16)},
		{"c1355", xorBlocks(8, 5)},
		{"c1908", Random(RandomParams{Name: "c1908like", Inputs: 33, Gates: 900, Outputs: 25, Locality: 2.5, Seed: 1908})},
		{"c2670", Random(RandomParams{Name: "c2670like", Inputs: 157, Gates: 1300, Outputs: 64, Locality: 2.2, Seed: 2670})},
		{"c5315", Random(RandomParams{Name: "c5315like", Inputs: 178, Gates: 2300, Outputs: 123, Locality: 2.2, Seed: 5315})},
		{"c7552", CarryLookaheadAdder(34)},
		{"c6288-lite", ArrayMultiplier(6)},
	}
}

// xorBlocks builds k parallel parity trees sharing inputs — an ECC-style
// multi-output circuit (the c1355 role).
func xorBlocks(width, blocks int) *logic.Circuit {
	b := logic.NewBuilder(fmt.Sprintf("ecc_%dx%d", width, blocks))
	in := make([]int, width*2)
	for i := range in {
		in[i] = b.Input(fmt.Sprintf("x%d", i))
	}
	for k := 0; k < blocks; k++ {
		layer := make([]int, 0, width)
		for i := 0; i < width; i++ {
			layer = append(layer, b.Gate(logic.Xor, fmt.Sprintf("b%d_l0_%d", k, i), in[(i+k)%len(in)], in[(i+k+width)%len(in)]))
		}
		lvl := 1
		for len(layer) > 1 {
			var next []int
			for i := 0; i+1 < len(layer); i += 2 {
				next = append(next, b.Gate(logic.Xor, fmt.Sprintf("b%d_l%d_%d", k, lvl, i/2), layer[i], layer[i+1]))
			}
			if len(layer)%2 == 1 {
				next = append(next, layer[len(layer)-1])
			}
			layer = next
			lvl++
		}
		b.MarkOutput(layer[0])
	}
	return b.MustBuild()
}

// MCNC91Like builds the 48-circuit stand-in for the MCNC91 "logic" suite
// used in Figure 8(a): a mix of small-to-medium arithmetic, decoders,
// multiplexers, comparators, cellular arrays and random control logic,
// spanning roughly 20–3000 gates (t481's degenerate shape is deliberately
// not reproduced, matching the paper's exclusion).
func MCNC91Like() []NamedCircuit {
	var out []NamedCircuit
	add := func(role string, c *logic.Circuit) {
		out = append(out, NamedCircuit{Role: role, C: c})
	}
	// Arithmetic family.
	for _, n := range []int{4, 8, 16, 32, 64} {
		add(fmt.Sprintf("ripple%d", n), RippleAdder(n))
	}
	for _, n := range []int{8, 16} {
		add(fmt.Sprintf("cla%d", n), CarryLookaheadAdder(n))
	}
	for _, n := range []int{4, 5} {
		add(fmt.Sprintf("mult%d", n), ArrayMultiplier(n))
	}
	for _, n := range []int{8, 16, 32} {
		add(fmt.Sprintf("cmp%d", n), Comparator(n))
	}
	add("alu4", ALU(4))
	add("alu8", ALU(8))
	// Structured family.
	for _, n := range []int{3, 4, 5, 6} {
		add(fmt.Sprintf("dec%d", n), Decoder(n))
	}
	for _, n := range []int{3, 4, 5, 6} {
		add(fmt.Sprintf("mux%d", 1<<uint(n)), MuxTree(n))
	}
	for _, n := range []int{16, 32, 64, 128} {
		add(fmt.Sprintf("parity%d", n), ParityTree(n))
	}
	add("tree2", KaryTree(2, 6))
	add("tree3", KaryTree(3, 4))
	for _, n := range []int{16, 48} {
		add(fmt.Sprintf("cell1d_%d", n), CellularArray1D(n))
	}
	add("cell2d6", CellularArray2D(6, 6))
	add("cell2d8", CellularArray2D(8, 8))
	// Random control-logic family (the bulk of MCNC's "logic" circuits).
	sizes := []int{30, 60, 90, 120, 180, 240, 320, 400, 520, 650, 800, 1000, 1300, 1600, 2000, 2600}
	for i, g := range sizes {
		ins := 8 + g/20
		add(fmt.Sprintf("logic%d", g), Random(RandomParams{
			Name: fmt.Sprintf("logic%d", g), Inputs: ins, Gates: g,
			Locality: 2.0 + 0.1*float64(i%4), Seed: int64(1000 + i),
		}))
	}
	return out
}
