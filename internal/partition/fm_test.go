package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/logic"
)

// bruteMinCut finds the optimal balanced cut by enumeration (n ≤ 16).
func bruteMinCut(g *hypergraph.Graph, minSide int) int {
	n := g.NumNodes
	best := -1
	inS := make([]bool, n)
	for mask := 1; mask < 1<<uint(n)-1; mask++ {
		cnt := 0
		for v := 0; v < n; v++ {
			inS[v] = mask>>uint(v)&1 == 1
			if inS[v] {
				cnt++
			}
		}
		if cnt < minSide || n-cnt < minSide {
			continue
		}
		cut := g.CutSize(inS)
		if best < 0 || cut < best {
			best = cut
		}
	}
	return best
}

func randomGraph(rng *rand.Rand, n, m int) *hypergraph.Graph {
	g := hypergraph.New(n)
	for e := 0; e < m; e++ {
		k := 2 + rng.Intn(3)
		vs := make([]int, k)
		for i := range vs {
			vs[i] = rng.Intn(n)
		}
		g.AddEdge(vs...)
	}
	return g
}

func TestBipartitionTrivial(t *testing.T) {
	for n := 0; n < 2; n++ {
		r := Bipartition(hypergraph.New(n), Options{})
		if r.Cut != 0 || len(r.Side) != n {
			t.Errorf("n=%d: %+v", n, r)
		}
	}
}

func TestBipartitionTwoCliques(t *testing.T) {
	// Two 4-cliques joined by one edge: optimal balanced cut = 1.
	g := hypergraph.New(8)
	for _, base := range []int{0, 4} {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	g.AddEdge(0, 4)
	r := Bipartition(g, Options{Seed: 1})
	if r.Cut != 1 {
		t.Errorf("cut = %d, want 1", r.Cut)
	}
	// Each clique must land on one side.
	for i := 1; i < 4; i++ {
		if r.Side[i] != r.Side[0] || r.Side[4+i] != r.Side[4] {
			t.Fatalf("cliques split: %v", r.Side)
		}
	}
}

func TestBipartitionBalance(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g := randomGraph(rng, n, n*2)
		opt := Options{Seed: seed, Epsilon: 0.10}
		r := Bipartition(g, opt)
		cnt := 0
		for _, b := range r.Side {
			if b {
				cnt++
			}
		}
		minSide := int(float64(n) * 0.4)
		if minSide < 1 {
			minSide = 1
		}
		if cnt < minSide || n-cnt < minSide {
			t.Logf("seed %d: unbalanced %d/%d", seed, cnt, n-cnt)
			return false
		}
		// Reported cut must match recomputation.
		return r.Cut == g.CutSize(r.Side)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBipartitionNearOptimal: with restarts, FM should find the optimal
// balanced cut on small random graphs most of the time; require it to be
// within 1 of optimal on every instance (FM with 8 restarts on ≤ 12
// vertices is reliably near-exact).
func TestBipartitionNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	worst := 0
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(6)
		g := randomGraph(rng, n, n+rng.Intn(n))
		opt := Options{Seed: int64(trial), Restarts: 8, Epsilon: 0.10}
		r := Bipartition(g, opt)
		minSide := int(float64(n) * 0.4)
		if minSide < 1 {
			minSide = 1
		}
		best := bruteMinCut(g, minSide)
		if r.Cut < best {
			t.Fatalf("trial %d: FM cut %d below optimum %d — cut accounting bug", trial, r.Cut, best)
		}
		if r.Cut-best > worst {
			worst = r.Cut - best
		}
		if r.Cut-best > 1 {
			t.Errorf("trial %d (n=%d): FM cut %d, optimum %d", trial, n, r.Cut, best)
		}
	}
	t.Logf("worst FM gap over 25 instances: %d", worst)
}

func TestBipartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 30, 60)
	a := Bipartition(g, Options{Seed: 7})
	b := Bipartition(g, Options{Seed: 7})
	if a.Cut != b.Cut {
		t.Fatalf("cuts differ: %d vs %d", a.Cut, b.Cut)
	}
	for i := range a.Side {
		if a.Side[i] != b.Side[i] {
			t.Fatal("sides differ for identical seeds")
		}
	}
}

func TestBipartitionCircuit(t *testing.T) {
	c := logic.Figure4a()
	g := hypergraph.FromCircuit(c)
	r := Bipartition(g, Options{Seed: 3, Restarts: 8})
	// fig4a is a tree of 9 nodes; a balanced cut of 1..2 exists. The
	// {b,c,f} vs rest split cuts only net f... that's 3|6 which meets the
	// 40% floor at n=9 (min 3). Accept cut ≤ 2.
	if r.Cut > 2 {
		t.Errorf("fig4a balanced cut = %d, want ≤ 2", r.Cut)
	}
}

func TestRestartsImproveOrEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 40, 90)
	one := Bipartition(g, Options{Seed: 9, Restarts: 1})
	many := Bipartition(g, Options{Seed: 9, Restarts: 12})
	if many.Cut > one.Cut {
		t.Errorf("12 restarts cut %d worse than 1 restart cut %d", many.Cut, one.Cut)
	}
}

func TestMultilevelMatchesFlatOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 40, 80)
	ml := Multilevel(g, nil, Options{Seed: 5})
	flat := Bipartition(g, Options{Seed: 5})
	// Small graphs bypass coarsening entirely.
	if ml.Cut != flat.Cut {
		t.Errorf("small-graph multilevel cut %d != flat cut %d", ml.Cut, flat.Cut)
	}
}

func TestMultilevelLargeQuality(t *testing.T) {
	// Two 300-vertex communities joined by 3 edges: multilevel must find
	// the community cut.
	g := hypergraph.New(600)
	rng := rand.New(rand.NewSource(9))
	for side := 0; side < 2; side++ {
		base := side * 300
		for e := 0; e < 900; e++ {
			g.AddEdge(base+rng.Intn(300), base+rng.Intn(300))
		}
	}
	for e := 0; e < 3; e++ {
		g.AddEdge(rng.Intn(300), 300+rng.Intn(300))
	}
	ml := Multilevel(g, nil, Options{Seed: 2, Restarts: 2})
	if ml.Cut > 10 {
		t.Errorf("multilevel cut %d on a 3-edge community split", ml.Cut)
	}
	if got := g.CutSize(ml.Side); got != ml.Cut {
		t.Errorf("reported cut %d != recomputed %d", ml.Cut, got)
	}
	// Balance.
	n := 0
	for _, b := range ml.Side {
		if b {
			n++
		}
	}
	if n < 180 || n > 420 {
		t.Errorf("unbalanced multilevel split: %d/%d", n, 600-n)
	}
}

func TestMultilevelRespectsFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomGraph(rng, 500, 1200)
	fixed := make([]Fixture, 500)
	fixed[0] = FixedA
	fixed[499] = FixedB
	r := Multilevel(g, fixed, Options{Seed: 3})
	if r.Side[0] != false || r.Side[499] != true {
		t.Errorf("fixtures violated: v0=%v v499=%v", r.Side[0], r.Side[499])
	}
}

func TestBipartitionFixedRespectsPins(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 30, 60)
	fixed := make([]Fixture, 30)
	fixed[3] = FixedB
	fixed[7] = FixedA
	r := BipartitionFixed(g, fixed, Options{Seed: 11, Restarts: 4})
	if !r.Side[3] || r.Side[7] {
		t.Errorf("pins violated: v3=%v v7=%v", r.Side[3], r.Side[7])
	}
	if r.Cut != g.CutSize(r.Side) {
		t.Error("cut accounting wrong with pins")
	}
}
