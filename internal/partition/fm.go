// Package partition implements Fiduccia–Mattheyses min-cut hypergraph
// bipartitioning with gain buckets, a balance constraint, multiple passes
// and random restarts. It plays the role of the hMETIS package in the
// paper's experimental setup (Section 5.2.1): the bipartitioner inside
// recursive min-cut linear arrangement.
package partition

import (
	"math/rand"

	"atpgeasy/internal/hypergraph"
)

// Options control the partitioner. The zero value is usable: 10% balance
// slack, 4 restarts, passes until no improvement.
type Options struct {
	// Epsilon is the balance slack: each side must keep at least
	// floor(n*(0.5-Epsilon)) vertices (but at least 1). Zero means 0.10.
	Epsilon float64
	// Restarts is the number of random initial partitions tried; the best
	// result wins. Zero means 4.
	Restarts int
	// MaxPasses bounds FM passes per restart. Zero means 16.
	MaxPasses int
	// Seed seeds the random initial partitions; the partitioner is fully
	// deterministic for a fixed seed.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 0.10
	}
	if o.Restarts == 0 {
		o.Restarts = 4
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 16
	}
	return o
}

// Result is a bipartition: Side[v] is true when v is on side B, and Cut is
// the number of hyperedges with vertices on both sides.
type Result struct {
	Side []bool
	Cut  int
}

// Fixture pins a vertex to one side for the whole run; used for terminal
// propagation in recursive placement (a pinned terminal represents the
// already-placed or yet-to-be-placed exterior of the current block).
type Fixture int8

// Fixture values.
const (
	Free   Fixture = iota
	FixedA         // pinned to side A (Side[v] = false)
	FixedB         // pinned to side B (Side[v] = true)
)

// Bipartition splits the vertices of g into two balanced halves minimizing
// the hyperedge cut. Graphs with fewer than two vertices return a trivial
// partition with cut 0.
func Bipartition(g *hypergraph.Graph, opt Options) Result {
	return BipartitionFixed(g, nil, opt)
}

// BipartitionFixed is Bipartition with pinned vertices: fixed[v] (when the
// slice is non-nil) pins vertex v to a side. Pinned vertices count toward
// the balance bound but never move.
func BipartitionFixed(g *hypergraph.Graph, fixed []Fixture, opt Options) Result {
	opt = opt.withDefaults()
	n := g.NumNodes
	if n < 2 {
		side := make([]bool, n)
		for v := range side {
			side[v] = fixedSide(fixed, v) == FixedB
		}
		return Result{Side: side}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	best := Result{Cut: -1}
	// One deterministic "sequential split" start (second half of the
	// vertex numbering on side B) plus the random restarts. Circuit
	// hypergraphs number vertices topologically, so the sequential split
	// is usually an excellent seed that plain FM cannot reach from a
	// random start — it substitutes for hMETIS's multilevel coarsening.
	seq := make([]bool, n)
	for v := n / 2; v < n; v++ {
		seq[v] = true
	}
	applyFixed(seq, fixed)
	starts := [][]bool{seq}
	for r := 0; r < opt.Restarts; r++ {
		side := randomBalanced(n, rng)
		applyFixed(side, fixed)
		starts = append(starts, side)
	}
	for _, side := range starts {
		cut := runFM(g, side, fixed, opt, rng)
		if best.Cut < 0 || cut < best.Cut {
			best = Result{Side: append([]bool(nil), side...), Cut: cut}
		}
	}
	return best
}

func fixedSide(fixed []Fixture, v int) Fixture {
	if fixed == nil {
		return Free
	}
	return fixed[v]
}

func applyFixed(side []bool, fixed []Fixture) {
	for v := range side {
		switch fixedSide(fixed, v) {
		case FixedA:
			side[v] = false
		case FixedB:
			side[v] = true
		}
	}
}

// randomBalanced assigns exactly floor(n/2) vertices to side B.
func randomBalanced(n int, rng *rand.Rand) []bool {
	side := make([]bool, n)
	perm := rng.Perm(n)
	for i := 0; i < n/2; i++ {
		side[perm[i]] = true
	}
	return side
}

// fmState holds the per-pass working set.
type fmState struct {
	g        *hypergraph.Graph
	side     []bool
	incident [][]int32 // vertex → incident edge indices (edges with ≥2 distinct vertices)
	cntA     []int32   // per edge: vertices on side A (false)
	cntB     []int32   // per edge: vertices on side B (true)
	gain     []int
	locked   []bool
	fixed    []Fixture
	maxDeg   int

	// Gain buckets: doubly linked lists threaded through next/prev, one
	// list head per gain value offset by maxDeg.
	bucket []int32 // gain+maxDeg → first vertex, -1 if empty
	next   []int32
	prev   []int32
	maxPtr int // highest non-empty bucket index hint
}

func newFMState(g *hypergraph.Graph, side []bool) *fmState {
	n := g.NumNodes
	s := &fmState{
		g:        g,
		side:     side,
		incident: make([][]int32, n),
		cntA:     make([]int32, len(g.Edges)),
		cntB:     make([]int32, len(g.Edges)),
		gain:     make([]int, n),
		locked:   make([]bool, n),
		next:     make([]int32, n),
		prev:     make([]int32, n),
	}
	for ei, e := range g.Edges {
		if len(e) < 2 {
			continue
		}
		for _, v := range e {
			s.incident[v] = append(s.incident[v], int32(ei))
		}
	}
	for v := 0; v < n; v++ {
		if len(s.incident[v]) > s.maxDeg {
			s.maxDeg = len(s.incident[v])
		}
	}
	s.bucket = make([]int32, 2*s.maxDeg+1)
	return s
}

// resetPass recomputes edge side-counts and all gains, unlocks every
// vertex, and rebuilds the gain buckets.
func (s *fmState) resetPass() {
	for i := range s.cntA {
		s.cntA[i], s.cntB[i] = 0, 0
	}
	for ei, e := range s.g.Edges {
		if len(e) < 2 {
			continue
		}
		for _, v := range e {
			if s.side[v] {
				s.cntB[ei]++
			} else {
				s.cntA[ei]++
			}
		}
	}
	for i := range s.bucket {
		s.bucket[i] = -1
	}
	for v := range s.gain {
		if fixedSide(s.fixed, v) != Free {
			s.locked[v] = true
			continue
		}
		s.locked[v] = false
		g := 0
		for _, ei := range s.incident[v] {
			from, to := s.cntA[ei], s.cntB[ei]
			if s.side[v] {
				from, to = to, from
			}
			if from == 1 && to > 0 {
				g++ // moving v uncuts this edge
			}
			if to == 0 {
				g-- // moving v cuts this edge
			}
		}
		s.gain[v] = g
		s.bucketInsert(v)
	}
	s.maxPtr = len(s.bucket) - 1
}

func (s *fmState) bucketInsert(v int) {
	idx := s.gain[v] + s.maxDeg
	s.next[v] = s.bucket[idx]
	s.prev[v] = -1
	if s.bucket[idx] >= 0 {
		s.prev[s.bucket[idx]] = int32(v)
	}
	s.bucket[idx] = int32(v)
	if idx > s.maxPtr {
		s.maxPtr = idx
	}
}

func (s *fmState) bucketRemove(v int) {
	idx := s.gain[v] + s.maxDeg
	if s.prev[v] >= 0 {
		s.next[s.prev[v]] = s.next[v]
	} else {
		s.bucket[idx] = s.next[v]
	}
	if s.next[v] >= 0 {
		s.prev[s.next[v]] = s.prev[v]
	}
}

func (s *fmState) adjustGain(v, delta int) {
	if s.locked[v] || delta == 0 {
		return
	}
	s.bucketRemove(v)
	s.gain[v] += delta
	s.bucketInsert(v)
}

// pickMove returns the unlocked vertex with the highest gain whose move
// keeps both sides at or above minSide, or -1.
func (s *fmState) pickMove(sizeA, sizeB, minSide int) int {
	for idx := s.maxPtr; idx >= 0; idx-- {
		for v := s.bucket[idx]; v >= 0; v = s.next[v] {
			fromSize := sizeA
			if s.side[v] {
				fromSize = sizeB
			}
			if fromSize-1 >= minSide {
				s.maxPtr = idx
				return int(v)
			}
		}
	}
	return -1
}

// applyMove moves v to the other side, locking it and updating neighbor
// gains with the standard FM incremental rules.
func (s *fmState) applyMove(v int) {
	s.bucketRemove(v)
	s.locked[v] = true
	fromB := s.side[v]
	for _, ei := range s.incident[v] {
		e := s.g.Edges[ei]
		cf, ct := &s.cntA[ei], &s.cntB[ei]
		if fromB {
			cf, ct = ct, cf
		}
		// Before the move.
		if *ct == 0 {
			for _, u := range e {
				s.adjustGain(u, +1)
			}
		} else if *ct == 1 {
			for _, u := range e {
				if u != v && s.side[u] != fromB {
					s.adjustGain(u, -1)
				}
			}
		}
		*cf--
		*ct++
		// After the move.
		if *cf == 0 {
			for _, u := range e {
				s.adjustGain(u, -1)
			}
		} else if *cf == 1 {
			for _, u := range e {
				if u != v && s.side[u] == fromB {
					s.adjustGain(u, +1)
				}
			}
		}
	}
	s.side[v] = !s.side[v]
}

// runFM improves side in place and returns the final cut.
func runFM(g *hypergraph.Graph, side []bool, fixed []Fixture, opt Options, rng *rand.Rand) int {
	n := g.NumNodes
	minSide := int(float64(n) * (0.5 - opt.Epsilon))
	if minSide < 1 {
		minSide = 1
	}
	s := newFMState(g, side)
	s.fixed = fixed
	for pass := 0; pass < opt.MaxPasses; pass++ {
		s.resetPass()
		sizeA, sizeB := 0, 0
		for _, b := range side {
			if b {
				sizeB++
			} else {
				sizeA++
			}
		}
		type move struct{ v, gain int }
		var moves []move
		bestPrefix, bestGain, runGain := -1, 0, 0
		for {
			v := s.pickMove(sizeA, sizeB, minSide)
			if v < 0 {
				break
			}
			runGain += s.gain[v]
			moves = append(moves, move{v, s.gain[v]})
			if s.side[v] {
				sizeB--
				sizeA++
			} else {
				sizeA--
				sizeB++
			}
			s.applyMove(v)
			if runGain > bestGain {
				bestGain = runGain
				bestPrefix = len(moves) - 1
			}
		}
		// Revert moves past the best prefix.
		for i := len(moves) - 1; i > bestPrefix; i-- {
			v := moves[i].v
			side[v] = !side[v]
		}
		if bestGain <= 0 {
			break
		}
	}
	return g.CutSize(side)
}
