package partition

import (
	"math/rand"
	"sort"

	"atpgeasy/internal/hypergraph"
)

// coarseningThreshold is the vertex count below which coarsening stops
// and the flat partitioner runs directly.
const coarseningThreshold = 120

// Multilevel bipartitions g with a V-cycle in the style of multilevel
// hypergraph partitioners (the actual algorithmic core of hMETIS):
//
//  1. coarsen: repeatedly contract heavy-edge matchings until the graph
//     is small;
//  2. initial partition: run the flat FM partitioner (with restarts and
//     the sequential seed) on the coarsest graph;
//  3. uncoarsen: project the partition up one level at a time, refining
//     with an FM pass at every level.
//
// Vertex weights (contracted cluster sizes) are respected by the balance
// constraint. Fixed vertices survive coarsening: a fixed vertex never
// matches, so pins are preserved exactly.
func Multilevel(g *hypergraph.Graph, fixed []Fixture, opt Options) Result {
	opt = opt.withDefaults()
	if g.NumNodes <= coarseningThreshold {
		return BipartitionFixed(g, fixed, opt)
	}
	level := &mlGraph{g: g, weight: unitWeights(g.NumNodes), fixed: fixed}
	var stack []*mlGraph
	rng := rand.New(rand.NewSource(opt.Seed))
	for level.g.NumNodes > coarseningThreshold {
		next := level.coarsen(rng)
		if next == nil || next.g.NumNodes >= level.g.NumNodes*9/10 {
			break // diminishing returns; stop coarsening
		}
		stack = append(stack, level)
		level = next
	}
	// Initial partition on the coarsest graph, weight-aware.
	side := initialWeighted(level, opt)
	refineWeighted(level, side, opt)
	// Uncoarsen and refine.
	for i := len(stack) - 1; i >= 0; i-- {
		finer := stack[i]
		fSide := make([]bool, finer.g.NumNodes)
		for v := range fSide {
			fSide[v] = side[finer.coarseOf[v]]
		}
		side = fSide
		refineWeighted(finer, side, opt)
	}
	return Result{Side: side, Cut: g.CutSize(side)}
}

// mlGraph is one level of the multilevel hierarchy.
type mlGraph struct {
	g      *hypergraph.Graph
	weight []int // cluster weight per vertex
	fixed  []Fixture
	// coarseOf maps this level's vertices to the next-coarser level's
	// (set by coarsen on the finer level).
	coarseOf []int
}

func unitWeights(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// coarsen contracts a heavy-edge matching: vertices sharing many small
// hyperedges are merged pairwise. Fixed vertices never match.
func (m *mlGraph) coarsen(rng *rand.Rand) *mlGraph {
	n := m.g.NumNodes
	// Score pairs by shared-edge connectivity 1/(|e|-1), the standard
	// heavy-edge rating for hypergraphs.
	incident := make([][]int32, n)
	for ei, e := range m.g.Edges {
		if len(e) < 2 || len(e) > 8 {
			continue // very wide nets contribute little and cost much
		}
		for _, v := range e {
			incident[v] = append(incident[v], int32(ei))
		}
	}
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	score := make(map[int]float64, 16)
	for _, v := range order {
		if match[v] >= 0 || fixedSide(m.fixed, v) != Free {
			continue
		}
		for k := range score {
			delete(score, k)
		}
		for _, ei := range incident[v] {
			e := m.g.Edges[ei]
			w := 1.0 / float64(len(e)-1)
			for _, u := range e {
				if u != v && match[u] < 0 && fixedSide(m.fixed, u) == Free {
					score[u] += w
				}
			}
		}
		bestU, bestS := -1, 0.0
		// Deterministic tie-breaking: iterate candidates in sorted order.
		cands := make([]int, 0, len(score))
		for u := range score {
			cands = append(cands, u)
		}
		sort.Ints(cands)
		for _, u := range cands {
			// Prefer light partners to keep weights balanced.
			s := score[u] / float64(m.weight[u]+m.weight[v])
			if s > bestS {
				bestS, bestU = s, u
			}
		}
		if bestU >= 0 {
			match[v] = bestU
			match[bestU] = v
		}
	}
	// Build the coarser graph.
	coarseOf := make([]int, n)
	for i := range coarseOf {
		coarseOf[i] = -1
	}
	nc := 0
	for v := 0; v < n; v++ {
		if coarseOf[v] >= 0 {
			continue
		}
		coarseOf[v] = nc
		if match[v] >= 0 {
			coarseOf[match[v]] = nc
		}
		nc++
	}
	if nc == n {
		return nil
	}
	cg := hypergraph.New(nc)
	cw := make([]int, nc)
	var cf []Fixture
	if m.fixed != nil {
		cf = make([]Fixture, nc)
	}
	for v := 0; v < n; v++ {
		cw[coarseOf[v]] += m.weight[v]
		if m.fixed != nil && m.fixed[v] != Free {
			cf[coarseOf[v]] = m.fixed[v]
		}
	}
	for _, e := range m.g.Edges {
		if len(e) < 2 {
			continue
		}
		mapped := make([]int, 0, len(e))
		for _, v := range e {
			mapped = append(mapped, coarseOf[v])
		}
		sort.Ints(mapped)
		out := mapped[:0]
		for i, v := range mapped {
			if i > 0 && v == mapped[i-1] {
				continue
			}
			out = append(out, v)
		}
		if len(out) < 2 {
			continue
		}
		// Parallel coarse edges are kept: each represents a distinct net
		// whose cut contribution must survive coarsening.
		cg.AddEdge(out...)
	}
	m.coarseOf = coarseOf
	return &mlGraph{g: cg, weight: cw, fixed: cf}
}

// initialWeighted produces a weight-balanced starting partition of the
// coarsest level via the flat partitioner's best-of-restarts, followed by
// a weighted rebalance.
func initialWeighted(m *mlGraph, opt Options) []bool {
	res := BipartitionFixed(m.g, m.fixed, opt)
	side := res.Side
	rebalanceWeighted(m, side)
	return side
}

// refineWeighted runs FM passes at one level, then restores the weighted
// balance if refinement drifted (FM balances by vertex count; cluster
// weights can skew at coarse levels).
func refineWeighted(m *mlGraph, side []bool, opt Options) {
	ropt := opt
	ropt.Restarts = 1
	runFM(m.g, side, m.fixed, ropt, nil)
	rebalanceWeighted(m, side)
}

// rebalanceWeighted moves lightest boundary-preferring vertices until the
// weighted halves are within the epsilon bound.
func rebalanceWeighted(m *mlGraph, side []bool) {
	total := 0
	wB := 0
	for v, w := range m.weight {
		total += w
		if side[v] {
			wB += w
		}
	}
	lo := int(float64(total) * 0.35)
	hi := total - lo
	type vw struct{ v, w int }
	moveFrom := func(fromB bool) {
		var cands []vw
		for v, w := range m.weight {
			if side[v] == fromB && fixedSide(m.fixed, v) == Free {
				cands = append(cands, vw{v, w})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].w < cands[j].w })
		for _, c := range cands {
			if wB >= lo && wB <= hi {
				return
			}
			side[c.v] = !fromB
			if fromB {
				wB -= c.w
			} else {
				wB += c.w
			}
		}
	}
	if wB > hi {
		moveFrom(true)
	} else if wB < lo {
		moveFrom(false)
	}
}
