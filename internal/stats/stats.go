// Package stats provides the small statistical and rendering utilities
// behind the experiment reports: percentiles, histograms, binned medians
// and ASCII scatter plots for terminal output of the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It panics on an empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean; zero for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// FractionBelow returns the fraction of values strictly below the
// threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Bin is one bucket of a BinnedSeries.
type Bin struct {
	XLo, XHi float64
	Count    int
	MeanY    float64
	MaxY     float64
}

// BinnedMeans groups the points into nBins equal-width x bins and reports
// each bin's count, mean y and max y — the summary used to print the
// Figure 8 scatter trends as a table. It panics if xs and ys differ in
// length (consistent with Percentile's empty-input panic): a mismatched
// series is a caller bug that would otherwise silently skew every bin.
func BinnedMeans(xs, ys []float64, nBins int) []Bin {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: BinnedMeans: %d xs vs %d ys", len(xs), len(ys)))
	}
	if len(xs) == 0 || nBins < 1 {
		return nil
	}
	xmin, xmax := xs[0], xs[0]
	for _, x := range xs {
		if x < xmin {
			xmin = x
		}
		if x > xmax {
			xmax = x
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	bins := make([]Bin, nBins)
	sums := make([]float64, nBins)
	w := (xmax - xmin) / float64(nBins)
	for i := range bins {
		bins[i].XLo = xmin + float64(i)*w
		bins[i].XHi = xmin + float64(i+1)*w
	}
	for i := range xs {
		b := int((xs[i] - xmin) / w)
		if b >= nBins {
			b = nBins - 1
		}
		bins[b].Count++
		sums[b] += ys[i]
		if ys[i] > bins[b].MaxY {
			bins[b].MaxY = ys[i]
		}
	}
	for i := range bins {
		if bins[i].Count > 0 {
			bins[i].MeanY = sums[i] / float64(bins[i].Count)
		}
	}
	return bins
}

// Scatter renders an ASCII scatter plot (width×height characters) of the
// points, with simple linear axes. Density is shown as . : * #. It panics
// if xs and ys differ in length (consistent with Percentile's empty-input
// panic); previously a longer xs read past the end of ys.
func Scatter(xs, ys []float64, width, height int, title string) string {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Scatter: %d xs vs %d ys", len(xs), len(ys)))
	}
	if len(xs) == 0 || width < 8 || height < 3 {
		return title + " (no data)\n"
	}
	xmin, xmax := xs[0], xs[0]
	ymin, ymax := ys[0], ys[0]
	for i := range xs {
		xmin, xmax = math.Min(xmin, xs[i]), math.Max(xmax, xs[i])
		ymin, ymax = math.Min(ymin, ys[i]), math.Max(ymax, ys[i])
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]int, height)
	for r := range grid {
		grid[r] = make([]int, width)
	}
	for i := range xs {
		cx := int((xs[i] - xmin) / (xmax - xmin) * float64(width-1))
		cy := int((ys[i] - ymin) / (ymax - ymin) * float64(height-1))
		grid[height-1-cy][cx]++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "y: %.3g .. %.3g\n", ymin, ymax)
	for _, row := range grid {
		sb.WriteByte('|')
		for _, d := range row {
			switch {
			case d == 0:
				sb.WriteByte(' ')
			case d == 1:
				sb.WriteByte('.')
			case d <= 4:
				sb.WriteByte(':')
			case d <= 16:
				sb.WriteByte('*')
			default:
				sb.WriteByte('#')
			}
		}
		sb.WriteString("\n")
	}
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "x: %.3g .. %.3g  (%d points)\n", xmin, xmax, len(xs))
	return sb.String()
}

// Ranks returns the 1-based ranks of xs, assigning tied values their
// average rank (the convention Spearman correlation requires: log2
// solver-effort data is full of ties, and midranks keep the coefficient
// unbiased where dense ranking would skew it).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1 // average of 1-based ranks i+1..j+1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation coefficient of the two
// series: the Pearson correlation of their midrank transforms, robust to
// the heavy-tailed, non-linear feature↔effort relationships the effort
// report ranks features by. Returns 0 when either series is constant or
// shorter than 2. It panics if xs and ys differ in length (consistent
// with BinnedMeans).
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Spearman: %d xs vs %d ys", len(xs), len(ys)))
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	rx, ry := Ranks(xs), Ranks(ys)
	mx, my := Mean(rx), Mean(ry)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := rx[i]-mx, ry[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
