package stats

import (
	"strings"
	"testing"
)

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("P%.0f = %g, want %g", tc.p, got, tc.want)
		}
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("interpolated median = %g", got)
	}
}

func TestPercentilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMeanAndFraction(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := FractionBelow([]float64{1, 2, 3, 4}, 2.5); got != 0.5 {
		t.Errorf("FractionBelow = %g", got)
	}
	if FractionBelow(nil, 1) != 0 {
		t.Error("FractionBelow(nil)")
	}
}

func TestBinnedMeans(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 10, 11}
	ys := []float64{1, 1, 2, 2, 8, 10}
	bins := BinnedMeans(xs, ys, 2)
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Count != 4 || bins[0].MeanY != 1.5 || bins[0].MaxY != 2 {
		t.Errorf("bin0 = %+v", bins[0])
	}
	if bins[1].Count != 2 || bins[1].MeanY != 9 || bins[1].MaxY != 10 {
		t.Errorf("bin1 = %+v", bins[1])
	}
	if BinnedMeans(nil, nil, 3) != nil {
		t.Error("empty input should give nil")
	}
	// Degenerate: all x equal.
	b := BinnedMeans([]float64{5, 5}, []float64{1, 3}, 2)
	total := 0
	for _, bb := range b {
		total += bb.Count
	}
	if total != 2 {
		t.Errorf("degenerate binning lost points: %+v", b)
	}
}

func TestScatter(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25}
	s := Scatter(xs, ys, 40, 10, "squares")
	if !strings.Contains(s, "squares") || !strings.Contains(s, "5 points") {
		t.Errorf("scatter output:\n%s", s)
	}
	if !strings.Contains(s, ".") {
		t.Error("no points rendered")
	}
	if got := Scatter(nil, nil, 40, 10, "empty"); !strings.Contains(got, "no data") {
		t.Errorf("empty scatter = %q", got)
	}
	// Dense data exercises the density glyphs.
	var dx, dy []float64
	for i := 0; i < 2000; i++ {
		dx = append(dx, float64(i%5))
		dy = append(dy, float64(i%3))
	}
	dense := Scatter(dx, dy, 10, 5, "dense")
	if !strings.Contains(dense, "#") {
		t.Error("density glyph missing")
	}
}

// mustPanic asserts fn panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("no panic (want one containing %q)", want)
			return
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Errorf("panic = %v, want message containing %q", r, want)
		}
	}()
	fn()
}

// TestMismatchedLengthsPanic: BinnedMeans and Scatter previously walked
// xs while indexing ys — a longer xs read out of bounds and a longer ys
// was silently ignored. Both now panic consistently, like Percentile does
// on empty input.
func TestMismatchedLengthsPanic(t *testing.T) {
	xs3 := []float64{1, 2, 3}
	ys2 := []float64{1, 2}
	mustPanic(t, "BinnedMeans", func() { BinnedMeans(xs3, ys2, 2) })
	mustPanic(t, "BinnedMeans", func() { BinnedMeans(ys2, xs3, 2) })
	mustPanic(t, "Scatter", func() { Scatter(xs3, ys2, 40, 10, "t") })
	mustPanic(t, "Scatter", func() { Scatter(ys2, xs3, 40, 10, "t") })
	// Equal lengths (including both empty) must not panic.
	if BinnedMeans(nil, nil, 2) != nil {
		t.Error("BinnedMeans(nil, nil)")
	}
	if got := Scatter(nil, nil, 40, 10, "t"); !strings.Contains(got, "no data") {
		t.Errorf("Scatter(nil, nil) = %q", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	up := []float64{2, 8, 9, 100, 1000} // monotone increasing, non-linear
	if got := Spearman(xs, up); got != 1 {
		t.Errorf("Spearman(monotone up) = %g, want 1", got)
	}
	down := []float64{9, 7, 5, 3, 1}
	if got := Spearman(xs, down); got != -1 {
		t.Errorf("Spearman(monotone down) = %g, want -1", got)
	}
	if got := Spearman(xs, []float64{4, 4, 4, 4, 4}); got != 0 {
		t.Errorf("Spearman(constant) = %g, want 0", got)
	}
	if got := Spearman(nil, nil); got != 0 {
		t.Errorf("Spearman(empty) = %g, want 0", got)
	}
	// Ties in both series still land in [-1, 1] and stay positive for a
	// broadly increasing relationship.
	ty := []float64{1, 1, 2, 2, 3}
	if got := Spearman(xs, ty); got <= 0.8 || got > 1 {
		t.Errorf("Spearman(ties) = %g, want in (0.8, 1]", got)
	}
}

func TestSpearmanMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Spearman([]float64{1, 2}, []float64{1})
}
