package bench

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atpgeasy/internal/ioguard"
)

// TestMalformedBenchErrors pins the parser's no-panic contract on the
// inputs that used to reach the circuit builder's panics.
func TestMalformedBenchErrors(t *testing.T) {
	cases := map[string]string{
		"not-arity":     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n",
		"buf-arity":     "INPUT(a)\nOUTPUT(y)\ny = BUFF(a, a)\n",
		"zero-fanin":    "INPUT(a)\nOUTPUT(y)\ny = AND()\n",
		"empty-out":     "INPUT(a)\n = AND(a)\n",
		"no-assignment": "INPUT(a)\njunk line\n",
		"double-driven": "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n",
		"cycle":         "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = AND(a, y)\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src), name); err == nil {
			t.Errorf("%s: Read accepted malformed input", name)
		}
	}
}

// TestReadCapped pins the pre-parse admission bounds: oversized input
// and over-long lines are rejected with the ioguard sentinels before
// the parser buffers them, and the same input passes with caps off.
func TestReadCapped(t *testing.T) {
	good := "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
	if _, err := ReadCapped(strings.NewReader(good), "t", 1<<10, 1<<10); err != nil {
		t.Fatalf("capped read of valid netlist: %v", err)
	}
	// Exactly at the byte cap is accepted; one byte over is not.
	if _, err := ReadCapped(strings.NewReader(good), "t", int64(len(good)), 0); err != nil {
		t.Fatalf("read at exact byte cap: %v", err)
	}
	_, err := ReadCapped(strings.NewReader(good), "t", int64(len(good))-1, 0)
	if !errors.Is(err, ioguard.ErrTooLarge) {
		t.Fatalf("over byte cap: got %v, want ErrTooLarge", err)
	}
	long := "# " + strings.Repeat("x", 4096) + "\n" + good
	_, err = ReadCapped(strings.NewReader(long), "t", 0, 256)
	if !errors.Is(err, ioguard.ErrLineTooLong) {
		t.Fatalf("over line cap: got %v, want ErrLineTooLong", err)
	}
	if _, err := ReadCapped(strings.NewReader(long), "t", 0, 0); err != nil {
		t.Fatalf("uncapped read of long-comment netlist: %v", err)
	}
}

// FuzzParseBench hunts for panics and round-trip breaks: any netlist the
// parser accepts must re-emit and re-parse with the same interface.
func FuzzParseBench(f *testing.F) {
	seeds, err := filepath.Glob("../../examples/netlists/*.bench")
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed corpus: %v", err)
	}
	for _, p := range seeds {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	f.Add("y = AND()\n")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n")
	// Pathological shapes the ingestion caps exist for: one enormous
	// line, an oversized body of comments, a gate with a huge fan-in
	// list, and a net name that is itself most of the input.
	f.Add("y = AND(" + strings.Repeat("a,", 1<<12) + "a)\n")
	f.Add("# " + strings.Repeat("x", 1<<13) + "\nINPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
	f.Add("INPUT(" + strings.Repeat("n", 1<<13) + ")\n")
	f.Add(strings.Repeat("INPUT(a)\n", 1<<10))
	f.Fuzz(func(t *testing.T, src string) {
		// The capped entry point is the one servers use; generous caps
		// keep real seeds parsing while pathological ones must reject
		// cleanly, never panic or OOM.
		c, err := ReadCapped(strings.NewReader(src), "fuzz", 1<<20, 1<<16)
		if err != nil {
			return // rejected cleanly — exactly what malformed input should get
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return // e.g. constant drivers, honestly unrepresentable
		}
		c2, err := Read(&buf, "fuzz")
		if err != nil {
			t.Fatalf("accepted netlist fails to re-parse after Write: %v\n%s", err, buf.String())
		}
		if !SameInterface(c, c2) {
			t.Fatalf("interface changed across a write/read round trip\n%s", buf.String())
		}
	})
}
