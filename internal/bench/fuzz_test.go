package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedBenchErrors pins the parser's no-panic contract on the
// inputs that used to reach the circuit builder's panics.
func TestMalformedBenchErrors(t *testing.T) {
	cases := map[string]string{
		"not-arity":     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n",
		"buf-arity":     "INPUT(a)\nOUTPUT(y)\ny = BUFF(a, a)\n",
		"zero-fanin":    "INPUT(a)\nOUTPUT(y)\ny = AND()\n",
		"empty-out":     "INPUT(a)\n = AND(a)\n",
		"no-assignment": "INPUT(a)\njunk line\n",
		"double-driven": "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n",
		"cycle":         "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = AND(a, y)\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src), name); err == nil {
			t.Errorf("%s: Read accepted malformed input", name)
		}
	}
}

// FuzzParseBench hunts for panics and round-trip breaks: any netlist the
// parser accepts must re-emit and re-parse with the same interface.
func FuzzParseBench(f *testing.F) {
	seeds, err := filepath.Glob("../../examples/netlists/*.bench")
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed corpus: %v", err)
	}
	for _, p := range seeds {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	f.Add("y = AND()\n")
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Read(strings.NewReader(src), "fuzz")
		if err != nil {
			return // rejected cleanly — exactly what malformed input should get
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return // e.g. constant drivers, honestly unrepresentable
		}
		c2, err := Read(&buf, "fuzz")
		if err != nil {
			t.Fatalf("accepted netlist fails to re-parse after Write: %v\n%s", err, buf.String())
		}
		if !SameInterface(c, c2) {
			t.Fatalf("interface changed across a write/read round trip\n%s", buf.String())
		}
	})
}
