// Package bench reads and writes the ISCAS .bench netlist format — the
// distribution format of the ISCAS85 combinational benchmark suite used in
// the paper's experiments. Only combinational primitives are supported
// (INPUT, OUTPUT, AND, OR, NAND, NOR, XOR, XNOR, NOT, BUF/BUFF); DFF and
// other sequential elements are rejected.
//
// The .bench format has no input-inversion bubbles, so the writer
// materializes any inversion flags as explicit NOT gates.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"atpgeasy/internal/ioguard"
	"atpgeasy/internal/logic"
)

var gateByName = map[string]logic.GateType{
	"AND":  logic.And,
	"OR":   logic.Or,
	"NAND": logic.Nand,
	"NOR":  logic.Nor,
	"XOR":  logic.Xor,
	"XNOR": logic.Xnor,
	"NOT":  logic.Not,
	"BUF":  logic.Buf,
	"BUFF": logic.Buf,
}

var nameByGate = map[logic.GateType]string{
	logic.And:  "AND",
	logic.Or:   "OR",
	logic.Nand: "NAND",
	logic.Nor:  "NOR",
	logic.Xor:  "XOR",
	logic.Xnor: "XNOR",
	logic.Not:  "NOT",
	logic.Buf:  "BUFF",
}

// recoverParse converts a panic escaping a parser — e.g. a circuit
// builder invariant violated by pathological input the explicit checks
// missed — into an ordinary parse error. Malformed files must never take
// down the caller.
func recoverParse(prefix string, err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%s: malformed netlist: %v", prefix, r)
	}
}

// Read parses a .bench netlist. Malformed input yields an error with the
// offending line; it never panics.
func Read(r io.Reader, name string) (c *logic.Circuit, err error) {
	defer recoverParse("bench", &err)
	return read(r, name, 0)
}

// ReadCapped is Read with explicit pre-parse input caps for untrusted
// sources: input over maxBytes bytes is rejected with
// ioguard.ErrTooLarge before the parser sees it, and any single line
// over maxLine with ioguard.ErrLineTooLong (non-positive caps select
// the Read defaults: no byte cap, ioguard.DefaultMaxLine). The caps
// bound the parser's memory on pathological uploads — a multi-gigabyte
// file or a single unbounded line — which a recover barrier alone
// cannot.
func ReadCapped(r io.Reader, name string, maxBytes int64, maxLine int) (c *logic.Circuit, err error) {
	defer recoverParse("bench", &err)
	return read(ioguard.CapBytes(r, maxBytes), name, maxLine)
}

func read(r io.Reader, name string, maxLine int) (*logic.Circuit, error) {
	type gateLine struct {
		out, fn string
		ins     []string
		lineNo  int
	}
	var gates []gateLine
	var inputs, outputs []string
	sc := ioguard.Scanner(r, maxLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT(") || strings.HasPrefix(strings.ToUpper(line), "INPUT ("):
			arg, err := parens(line)
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", lineNo, err)
			}
			inputs = append(inputs, arg)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT(") || strings.HasPrefix(strings.ToUpper(line), "OUTPUT ("):
			arg, err := parens(line)
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", lineNo, err)
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench: line %d: expected assignment, got %q", lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			if out == "" {
				return nil, fmt.Errorf("bench: line %d: assignment with empty net name", lineNo)
			}
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close_ := strings.LastIndex(rhs, ")")
			if open < 0 || close_ < open {
				return nil, fmt.Errorf("bench: line %d: malformed gate %q", lineNo, rhs)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var ins []string
			for _, tok := range strings.Split(rhs[open+1:close_], ",") {
				tok = strings.TrimSpace(tok)
				if tok != "" {
					ins = append(ins, tok)
				}
			}
			gates = append(gates, gateLine{out, fn, ins, lineNo})
		}
	}
	if err := ioguard.ScanErr("bench", sc.Err(), maxLine); err != nil {
		return nil, err
	}
	b := logic.NewBuilder(name)
	ids := map[string]int{}
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("bench: duplicate input %q", in)
		}
		ids[in] = b.Input(in)
	}
	// Gates may be declared in any order: topologically sort by
	// repeatedly emitting ready gates.
	pending := append([]gateLine(nil), gates...)
	for len(pending) > 0 {
		progressed := false
		var next []gateLine
		for _, g := range pending {
			ready := true
			for _, in := range g.ins {
				if _, ok := ids[in]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, g)
				continue
			}
			gt, ok := gateByName[g.fn]
			if !ok {
				return nil, fmt.Errorf("bench: line %d: unsupported gate type %q (sequential netlists are not supported)", g.lineNo, g.fn)
			}
			// Arity validation before construction: the circuit builder
			// treats wrong arity as a programmer error and panics, but here
			// it is just a malformed file.
			switch gt {
			case logic.Not, logic.Buf:
				if len(g.ins) != 1 {
					return nil, fmt.Errorf("bench: line %d: %s takes exactly one input, got %d", g.lineNo, g.fn, len(g.ins))
				}
			default:
				if len(g.ins) == 0 {
					return nil, fmt.Errorf("bench: line %d: %s with no inputs", g.lineNo, g.fn)
				}
			}
			if _, dup := ids[g.out]; dup {
				return nil, fmt.Errorf("bench: line %d: net %q driven twice", g.lineNo, g.out)
			}
			fanin := make([]int, len(g.ins))
			for i, in := range g.ins {
				fanin[i] = ids[in]
			}
			ids[g.out] = b.Gate(gt, g.out, fanin...)
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("bench: undriven nets or combinational cycle involving %q", next[0].out)
		}
		pending = next
	}
	for _, out := range outputs {
		id, ok := ids[out]
		if !ok {
			return nil, fmt.Errorf("bench: output %q is not driven", out)
		}
		b.MarkOutput(id)
	}
	return b.Build()
}

func parens(line string) (string, error) {
	open := strings.Index(line, "(")
	close_ := strings.LastIndex(line, ")")
	if open < 0 || close_ < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close_])
	if arg == "" {
		return "", fmt.Errorf("empty declaration %q", line)
	}
	return arg, nil
}

// Write emits the circuit as a .bench netlist. Inversion bubbles are
// materialized as NOT gates named <net>#not (deduplicated); constant
// drivers become self-feeding... constants are not representable in
// .bench, so they are rejected.
func Write(w io.Writer, c *logic.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s — %d gates, %d inputs, %d outputs\n", c.Name, c.NumGates(), len(c.Inputs), len(c.Outputs))
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Nodes[in].Name)
	}
	for _, out := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Nodes[out].Name)
	}
	notEmitted := map[int]string{}
	notName := func(id int) string {
		if n, ok := notEmitted[id]; ok {
			return n
		}
		n := c.Nodes[id].Name + "#not"
		notEmitted[id] = n
		fmt.Fprintf(bw, "%s = NOT(%s)\n", n, c.Nodes[id].Name)
		return n
	}
	// Emit in topological order so inverters appear before use — the
	// reader resorts anyway, but this keeps the file human-readable.
	for _, id := range c.TopoOrder() {
		n := &c.Nodes[id]
		switch n.Type {
		case logic.Input:
			continue
		case logic.Const0, logic.Const1:
			return fmt.Errorf("bench: constant driver %q not representable in .bench", n.Name)
		}
		args := make([]string, len(n.Fanin))
		for i, f := range n.Fanin {
			if n.Negated(i) {
				args[i] = notName(f)
			} else {
				args[i] = c.Nodes[f].Name
			}
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", n.Name, nameByGate[n.Type], strings.Join(args, ", "))
	}
	return bw.Flush()
}

// sortedNames is a test helper-ish utility: the sorted node names of a
// circuit, useful for comparing interfaces after round trips.
func sortedNames(c *logic.Circuit, ids []int) []string {
	out := c.Names(ids)
	sort.Strings(out)
	return out
}

// SameInterface reports whether two circuits have the same input and
// output name sets (order-insensitive).
func SameInterface(a, b *logic.Circuit) bool {
	ai, bi := sortedNames(a, a.Inputs), sortedNames(b, b.Inputs)
	ao, bo := sortedNames(a, a.Outputs), sortedNames(b, b.Outputs)
	if len(ai) != len(bi) || len(ao) != len(bo) {
		return false
	}
	for i := range ai {
		if ai[i] != bi[i] {
			return false
		}
	}
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
	}
	return true
}
