package bench

import (
	"math/rand"
	"strings"
	"testing"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
)

const sample = `
# simple netlist
INPUT(a)
INPUT(b)
OUTPUT(o)
# out-of-order declaration is legal
o = NAND(x, y)
x = AND(a, b)
y = OR(a, b)
`

func TestReadSample(t *testing.T) {
	c, err := Read(strings.NewReader(sample), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 2 || len(c.Outputs) != 1 {
		t.Fatalf("interface: %d/%d", len(c.Inputs), len(c.Outputs))
	}
	// o = NAND(AND(a,b), OR(a,b)) = ¬(ab ∧ (a∨b)) = ¬(ab).
	for pat := 0; pat < 4; pat++ {
		a, b := pat&1 == 1, pat&2 == 2
		got := c.SimulateOutputs([]bool{a, b})[0]
		if got != !(a && b) {
			t.Errorf("a=%v b=%v: got %v", a, b, got)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"dff":             "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n",
		"cycle":           "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = AND(a, x)\n",
		"undriven output": "INPUT(a)\nOUTPUT(z)\n",
		"double driven":   "INPUT(a)\nOUTPUT(x)\nx = NOT(a)\nx = BUFF(a)\n",
		"dup input":       "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n",
		"no assignment":   "INPUT(a)\nfoo bar\n",
		"bad parens":      "INPUT(a)\nOUTPUT(x)\nx = NOT a\n",
		"empty decl":      "INPUT()\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src), name); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	circuits := []*logic.Circuit{
		gen.RippleAdder(4),
		gen.Comparator(4),
		gen.ParityTree(8),
		logic.Figure4a(), // has inversion bubbles → writer adds NOTs
	}
	for _, orig := range circuits {
		var sb strings.Builder
		if err := Write(&sb, orig); err != nil {
			t.Fatalf("%s: Write: %v", orig.Name, err)
		}
		back, err := Read(strings.NewReader(sb.String()), orig.Name)
		if err != nil {
			t.Fatalf("%s: Read: %v\n%s", orig.Name, err, sb.String())
		}
		if !SameInterface(orig, back) {
			t.Fatalf("%s: interface changed", orig.Name)
		}
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 50; trial++ {
			in := make([]bool, len(orig.Inputs))
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			// Input order is preserved by Write/Read.
			a := orig.SimulateOutputs(in)
			b := back.SimulateOutputs(in)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s trial %d: output %d differs", orig.Name, trial, i)
				}
			}
		}
	}
}

func TestWriteRejectsConstants(t *testing.T) {
	b := logic.NewBuilder("k")
	x := b.Input("x")
	one := b.Const("one", true)
	b.MarkOutput(b.Gate(logic.And, "g", x, one))
	c := b.MustBuild()
	var sb strings.Builder
	if err := Write(&sb, c); err == nil {
		t.Error("constant driver accepted")
	}
}

func TestNotDeduplication(t *testing.T) {
	// Two gates consuming ¬a must share one emitted NOT.
	b := logic.NewBuilder("dedup")
	a := b.Input("a")
	x := b.Input("x")
	g1 := b.GateN(logic.And, "g1", []int{a, x}, []bool{true, false})
	g2 := b.GateN(logic.Or, "g2", []int{a, x}, []bool{true, false})
	b.MarkOutput(g1)
	b.MarkOutput(g2)
	c := b.MustBuild()
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "= NOT("); got != 1 {
		t.Errorf("emitted %d NOT gates, want 1:\n%s", got, sb.String())
	}
}
