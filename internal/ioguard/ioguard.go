// Package ioguard bounds the raw input a netlist parser will accept
// before parsing begins. The bench/BLIF parsers already survive
// malformed content via recover barriers, but a recover barrier cannot
// bound memory: a multi-gigabyte upload or a single unbounded line is
// well-formed enough to be buffered in full before anything fails.
// These caps reject such input up front with distinguishable sentinel
// errors, so a server can map them to protocol-level rejections (HTTP
// 413) instead of opaque parse failures.
package ioguard

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// DefaultMaxLine is the longest netlist line the parsers accept when no
// tighter cap is given — matching the scanner buffer bound the parsers
// have always used.
const DefaultMaxLine = 1 << 24

// ErrTooLarge reports input rejected by a byte cap before parsing;
// errors.Is-match it to turn the rejection into a protocol error.
var ErrTooLarge = errors.New("input exceeds the byte cap")

// ErrLineTooLong reports a single line over the line-length cap.
var ErrLineTooLong = errors.New("line exceeds the length cap")

// cappedReader errors with ErrTooLarge once more than max bytes have
// been read — a hard admission bound, unlike io.LimitedReader, which
// silently truncates (turning an oversized file into a confusing parse
// error deep in the netlist).
type cappedReader struct {
	r         io.Reader
	remaining int64 // max+1 at start: only input strictly over max trips the cap
}

// CapBytes wraps r so that reading more than max bytes fails with
// ErrTooLarge. Non-positive max returns r unchanged (no cap).
func CapBytes(r io.Reader, max int64) io.Reader {
	if max <= 0 {
		return r
	}
	return &cappedReader{r: r, remaining: max + 1}
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, ErrTooLarge
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.r.Read(p)
	c.remaining -= int64(n)
	return n, err
}

// Scanner builds a line scanner over r with maxLine as the hard buffer
// bound (non-positive selects DefaultMaxLine). Pair with ScanErr to map
// the scanner's failure onto the cap sentinels.
func Scanner(r io.Reader, maxLine int) *bufio.Scanner {
	if maxLine <= 0 {
		maxLine = DefaultMaxLine
	}
	sc := bufio.NewScanner(r)
	initial := 1 << 20
	if maxLine < initial {
		initial = maxLine
	}
	sc.Buffer(make([]byte, initial), maxLine)
	return sc
}

// ScanErr maps a scanner failure onto the cap sentinels: bufio's
// too-long error becomes ErrLineTooLong and the capped reader's error
// keeps its identity, both prefixed for context; anything else passes
// through unchanged.
func ScanErr(prefix string, err error, maxLine int) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, bufio.ErrTooLong) {
		if maxLine <= 0 {
			maxLine = DefaultMaxLine
		}
		return fmt.Errorf("%s: %w (cap %d bytes)", prefix, ErrLineTooLong, maxLine)
	}
	if errors.Is(err, ErrTooLarge) {
		return fmt.Errorf("%s: %w", prefix, ErrTooLarge)
	}
	return err
}
