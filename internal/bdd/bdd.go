// Package bdd implements reduced ordered binary decision diagrams and the
// circuit-width BDD size bounds discussed in Section 6 of "Why is ATPG
// Easy?". The paper contrasts its cut-width result — single-exponential in
// an undirected width — with the Berman/McMillan bound n·2^(w_f·2^(w_r)),
// exponential in the forward width and double-exponential in the reverse
// width of a directed linear arrangement. This package provides a small
// ROBDD engine (unique table, apply cache), circuit-to-BDD construction
// under a given input order, and the forward/reverse width measurement.
package bdd

import (
	"fmt"
	"math"

	"atpgeasy/internal/logic"
)

// Ref is a BDD node reference. Constants are False (0) and True (1).
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable level; terminals use a sentinel max level
	lo, hi Ref
}

const termLevel = int32(1 << 30)

// Manager owns BDD nodes for a fixed variable count. Variable levels are
// their index order: level 0 is tested first.
type Manager struct {
	nodes  []node
	unique map[node]Ref
	cache  map[[3]int32]Ref
	nVars  int
}

// New returns a manager for n variables.
func New(n int) *Manager {
	m := &Manager{
		unique: make(map[node]Ref),
		cache:  make(map[[3]int32]Ref),
		nVars:  n,
	}
	m.nodes = append(m.nodes, node{termLevel, False, False}, node{termLevel, True, True})
	return m
}

// NumNodes returns the total nodes allocated (including the two
// terminals).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// mk returns the canonical node (level, lo, hi).
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := node{level, lo, hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r
}

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.nVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.nVars))
	}
	return m.mk(int32(i), False, True)
}

// Op codes for apply.
type op int32

const (
	opAnd op = iota
	opOr
	opXor
)

func (o op) eval(a, b bool) bool {
	switch o {
	case opAnd:
		return a && b
	case opOr:
		return a || b
	default:
		return a != b
	}
}

func (m *Manager) apply(o op, a, b Ref) Ref {
	if a <= True && b <= True {
		if o.eval(a == True, b == True) {
			return True
		}
		return False
	}
	// Cheap identities.
	switch o {
	case opAnd:
		if a == False || b == False {
			return False
		}
		if a == True {
			return b
		}
		if b == True {
			return a
		}
		if a == b {
			return a
		}
	case opOr:
		if a == True || b == True {
			return True
		}
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == b {
			return a
		}
	case opXor:
		if a == False {
			return b
		}
		if b == False {
			return a
		}
		if a == b {
			return False
		}
	}
	if o != opAnd && o != opOr && o != opXor {
		panic("bdd: unknown op")
	}
	// Normalize operand order for the commutative cache.
	if a > b {
		a, b = b, a
	}
	key := [3]int32{int32(o), int32(a), int32(b)}
	if r, ok := m.cache[key]; ok {
		return r
	}
	na, nb := m.nodes[a], m.nodes[b]
	level := na.level
	if nb.level < level {
		level = nb.level
	}
	alo, ahi := a, a
	if na.level == level {
		alo, ahi = na.lo, na.hi
	}
	blo, bhi := b, b
	if nb.level == level {
		blo, bhi = nb.lo, nb.hi
	}
	r := m.mk(level, m.apply(o, alo, blo), m.apply(o, ahi, bhi))
	m.cache[key] = r
	return r
}

// And returns a ∧ b.
func (m *Manager) And(a, b Ref) Ref { return m.apply(opAnd, a, b) }

// Or returns a ∨ b.
func (m *Manager) Or(a, b Ref) Ref { return m.apply(opOr, a, b) }

// Xor returns a ⊕ b.
func (m *Manager) Xor(a, b Ref) Ref { return m.apply(opXor, a, b) }

// Not returns ¬a.
func (m *Manager) Not(a Ref) Ref { return m.apply(opXor, a, True) }

// Eval evaluates the function at a complete input assignment.
func (m *Manager) Eval(r Ref, assign []bool) bool {
	for r > True {
		n := m.nodes[r]
		if assign[n.level] {
			r = n.hi
		} else {
			r = n.lo
		}
	}
	return r == True
}

// Size returns the number of distinct nodes reachable from the given
// roots, excluding terminals — the BDD size measure of the bounds.
func (m *Manager) Size(roots ...Ref) int {
	seen := make(map[Ref]bool)
	var visit func(r Ref)
	visit = func(r Ref) {
		if r <= True || seen[r] {
			return
		}
		seen[r] = true
		visit(m.nodes[r].lo)
		visit(m.nodes[r].hi)
	}
	for _, r := range roots {
		visit(r)
	}
	return len(seen)
}

// SatCount returns the number of satisfying assignments of r over the
// manager's variables.
func (m *Manager) SatCount(r Ref) float64 {
	level := func(r Ref) int32 {
		if r <= True {
			return int32(m.nVars)
		}
		return m.nodes[r].level
	}
	memo := make(map[Ref]float64)
	// count(r) = satisfying assignments over variables level(r)..nVars-1.
	var count func(r Ref) float64
	count = func(r Ref) float64 {
		if r == False {
			return 0
		}
		if r == True {
			return 1
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		v := count(n.lo)*math.Pow(2, float64(level(n.lo)-n.level-1)) +
			count(n.hi)*math.Pow(2, float64(level(n.hi)-n.level-1))
		memo[r] = v
		return v
	}
	return count(r) * math.Pow(2, float64(level(r)))
}

// FromCircuit builds BDDs for every primary output of the circuit, with
// BDD variable i corresponding to c.Inputs[i] (i.e. the circuit's input
// declaration order is the BDD variable order). inputOrder optionally
// permutes that correspondence: inputOrder[i] is the index into c.Inputs
// placed at BDD level i; nil means identity.
func FromCircuit(m *Manager, c *logic.Circuit, inputOrder []int) ([]Ref, error) {
	if m.nVars < len(c.Inputs) {
		return nil, fmt.Errorf("bdd: manager has %d variables for %d inputs", m.nVars, len(c.Inputs))
	}
	levelOf := make(map[int]int, len(c.Inputs)) // input node ID → BDD level
	if inputOrder == nil {
		for i, in := range c.Inputs {
			levelOf[in] = i
		}
	} else {
		if len(inputOrder) != len(c.Inputs) {
			return nil, fmt.Errorf("bdd: input order covers %d of %d inputs", len(inputOrder), len(c.Inputs))
		}
		for lvl, idx := range inputOrder {
			if idx < 0 || idx >= len(c.Inputs) {
				return nil, fmt.Errorf("bdd: input order entry %d out of range", idx)
			}
			levelOf[c.Inputs[idx]] = lvl
		}
		if len(levelOf) != len(c.Inputs) {
			return nil, fmt.Errorf("bdd: input order is not a permutation")
		}
	}
	val := make([]Ref, c.NumNodes())
	for _, id := range c.TopoOrder() {
		n := &c.Nodes[id]
		switch n.Type {
		case logic.Input:
			val[id] = m.Var(levelOf[id])
		case logic.Const0:
			val[id] = False
		case logic.Const1:
			val[id] = True
		default:
			ins := make([]Ref, len(n.Fanin))
			for i, f := range n.Fanin {
				ins[i] = val[f]
				if n.Negated(i) {
					ins[i] = m.Not(ins[i])
				}
			}
			r, err := m.gate(n.Type, ins)
			if err != nil {
				return nil, fmt.Errorf("gate %q: %w", n.Name, err)
			}
			val[id] = r
		}
	}
	outs := make([]Ref, len(c.Outputs))
	for i, o := range c.Outputs {
		outs[i] = val[o]
	}
	return outs, nil
}

func (m *Manager) gate(t logic.GateType, ins []Ref) (Ref, error) {
	switch t {
	case logic.Buf:
		return ins[0], nil
	case logic.Not:
		return m.Not(ins[0]), nil
	case logic.And, logic.Nand:
		r := True
		for _, in := range ins {
			r = m.And(r, in)
		}
		if t == logic.Nand {
			r = m.Not(r)
		}
		return r, nil
	case logic.Or, logic.Nor:
		r := False
		for _, in := range ins {
			r = m.Or(r, in)
		}
		if t == logic.Nor {
			r = m.Not(r)
		}
		return r, nil
	case logic.Xor, logic.Xnor:
		r := False
		for _, in := range ins {
			r = m.Xor(r, in)
		}
		if t == logic.Xnor {
			r = m.Not(r)
		}
		return r, nil
	default:
		return False, fmt.Errorf("bdd: unsupported gate type %s", t)
	}
}

// ForwardReverseWidth measures the directed widths of a linear arrangement
// of the circuit elements, as used by the Berman/McMillan BDD bounds: at
// each cut of the ordering, a net runs forward when its driver is placed
// and some reader is not, and reverse when some reader is placed but the
// driver is not. The returned values are the maxima over all cuts.
func ForwardReverseWidth(c *logic.Circuit, order []int) (wf, wr int, err error) {
	n := c.NumNodes()
	if len(order) != n {
		return 0, 0, fmt.Errorf("bdd: ordering covers %d of %d nodes", len(order), n)
	}
	pos := make([]int, n)
	seen := make([]bool, n)
	for i, v := range order {
		if v < 0 || v >= n || seen[v] {
			return 0, 0, fmt.Errorf("bdd: ordering is not a permutation")
		}
		seen[v] = true
		pos[v] = i
	}
	fDiff := make([]int, n+1)
	rDiff := make([]int, n+1)
	for id := range c.Nodes {
		if len(c.Nodes[id].Fanout) == 0 {
			continue
		}
		dp := pos[id]
		minR, maxR := n, -1
		for _, rd := range c.Nodes[id].Fanout {
			if pos[rd] < minR {
				minR = pos[rd]
			}
			if pos[rd] > maxR {
				maxR = pos[rd]
			}
		}
		// Forward span: cuts with driver placed, last reader not yet.
		if dp < maxR {
			fDiff[dp+1]++
			fDiff[maxR+1]--
		}
		// Reverse span: cuts with first reader placed, driver not yet.
		if minR < dp {
			rDiff[minR+1]++
			rDiff[dp+1]--
		}
	}
	cf, cr := 0, 0
	for i := 1; i < n; i++ {
		cf += fDiff[i]
		cr += rDiff[i]
		if cf > wf {
			wf = cf
		}
		if cr > wr {
			wr = cr
		}
	}
	return wf, wr, nil
}

// McMillanBound is the BDD size bound n·2^(w_f·2^(w_r)) for a
// single-output circuit with n inputs under a linear arrangement with
// forward width wf and reverse width wr. It saturates at +Inf for large
// widths.
func McMillanBound(nInputs, wf, wr int) float64 {
	return float64(nInputs) * math.Pow(2, float64(wf)*math.Pow(2, float64(wr)))
}
