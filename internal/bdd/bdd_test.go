package bdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
)

func TestBasicOps(t *testing.T) {
	m := New(2)
	x, y := m.Var(0), m.Var(1)
	and := m.And(x, y)
	or := m.Or(x, y)
	xor := m.Xor(x, y)
	nx := m.Not(x)
	for pat := 0; pat < 4; pat++ {
		a := []bool{pat&1 == 1, pat&2 == 2}
		if m.Eval(and, a) != (a[0] && a[1]) {
			t.Errorf("and %v", a)
		}
		if m.Eval(or, a) != (a[0] || a[1]) {
			t.Errorf("or %v", a)
		}
		if m.Eval(xor, a) != (a[0] != a[1]) {
			t.Errorf("xor %v", a)
		}
		if m.Eval(nx, a) != !a[0] {
			t.Errorf("not %v", a)
		}
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3)
	x, y, z := m.Var(0), m.Var(1), m.Var(2)
	// (x∧y)∨z built two ways must be the identical Ref.
	a := m.Or(m.And(x, y), z)
	b := m.Or(z, m.And(y, x))
	if a != b {
		t.Error("equivalent functions got different refs")
	}
	// Tautology collapses to True.
	if m.Or(x, m.Not(x)) != True {
		t.Error("x ∨ ¬x != True")
	}
	if m.And(x, m.Not(x)) != False {
		t.Error("x ∧ ¬x != False")
	}
	if m.Xor(x, x) != False {
		t.Error("x ⊕ x != False")
	}
}

func TestVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2).Var(5)
}

func TestSize(t *testing.T) {
	m := New(3)
	x := m.Var(0)
	if m.Size(x) != 1 {
		t.Errorf("Size(var) = %d", m.Size(x))
	}
	if m.Size(True) != 0 || m.Size(False) != 0 {
		t.Error("terminal sizes nonzero")
	}
	// Parity of 3 variables: 2 nodes per level = 5 nodes (1 at top).
	p := m.Xor(m.Xor(m.Var(0), m.Var(1)), m.Var(2))
	if got := m.Size(p); got != 5 {
		t.Errorf("parity3 size = %d, want 5", got)
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	x, y := m.Var(0), m.Var(1)
	if got := m.SatCount(m.And(x, y)); got != 2 { // z free
		t.Errorf("SatCount(x∧y) = %g, want 2", got)
	}
	if got := m.SatCount(True); got != 8 {
		t.Errorf("SatCount(True) = %g", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Errorf("SatCount(False) = %g", got)
	}
	if got := m.SatCount(m.Var(2)); got != 4 {
		t.Errorf("SatCount(z) = %g", got)
	}
}

// TestFromCircuitMatchesSimulation: BDD evaluation equals circuit
// simulation for random circuits, and SatCount equals the enumerated
// on-set size.
func TestFromCircuitMatchesSimulation(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 20)
		m := New(len(c.Inputs))
		outs, err := FromCircuit(m, c, nil)
		if err != nil {
			return false
		}
		nin := len(c.Inputs)
		onSet := 0
		for pat := 0; pat < 1<<uint(nin); pat++ {
			in := make([]bool, nin)
			for i := range in {
				in[i] = pat>>uint(i)&1 == 1
			}
			sim := c.SimulateOutputs(in)
			for i := range outs {
				if m.Eval(outs[i], in) != sim[i] {
					return false
				}
			}
			if sim[0] {
				onSet++
			}
		}
		return math.Abs(m.SatCount(outs[0])-float64(onSet)) < 0.5
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFromCircuitInputOrder(t *testing.T) {
	// A 2-level mux has order-sensitive BDD size; both orders must still
	// compute the right function.
	c := gen.MuxTree(2)
	m1 := New(len(c.Inputs))
	outs1, err := FromCircuit(m1, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{5, 4, 3, 2, 1, 0}
	m2 := New(len(c.Inputs))
	outs2, err := FromCircuit(m2, c, perm)
	if err != nil {
		t.Fatal(err)
	}
	for pat := 0; pat < 64; pat++ {
		in := make([]bool, 6)
		for i := range in {
			in[i] = pat>>uint(i)&1 == 1
		}
		want := c.SimulateOutputs(in)[0]
		if m1.Eval(outs1[0], in) != want {
			t.Fatalf("pattern %06b wrong under identity order", pat)
		}
		// Eval assignments are indexed by BDD level: level ℓ carries
		// circuit input perm[ℓ].
		permuted := make([]bool, len(in))
		for lvl, idx := range perm {
			permuted[lvl] = in[idx]
		}
		if m2.Eval(outs2[0], permuted) != want {
			t.Fatalf("pattern %06b wrong under permuted order", pat)
		}
	}
}

func TestFromCircuitOrderErrors(t *testing.T) {
	c := gen.MuxTree(2)
	m := New(len(c.Inputs))
	if _, err := FromCircuit(m, c, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := FromCircuit(m, c, []int{0, 1, 2, 3, 4, 9}); err == nil {
		t.Error("out-of-range order accepted")
	}
	if _, err := FromCircuit(m, c, []int{0, 0, 1, 2, 3, 4}); err == nil {
		t.Error("non-permutation accepted")
	}
	small := New(2)
	if _, err := FromCircuit(small, c, nil); err == nil {
		t.Error("undersized manager accepted")
	}
}

// TestParityBDDLinear: parity has a linear-size BDD under any order.
func TestParityBDDLinear(t *testing.T) {
	c := gen.ParityTree(16)
	m := New(16)
	outs, err := FromCircuit(m, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	size := m.Size(outs[0])
	if size != 2*16-1 {
		t.Errorf("parity16 BDD size = %d, want 31", size)
	}
}

func TestForwardReverseWidth(t *testing.T) {
	c := logic.Figure4a()
	// Topological order: all wires forward, none reverse.
	topo := append([]int(nil), c.TopoOrder()...)
	wf, wr, err := ForwardReverseWidth(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if wr != 0 {
		t.Errorf("topological order has reverse width %d", wr)
	}
	if wf < 1 {
		t.Errorf("forward width = %d", wf)
	}
	// Reversed order: all wires reverse.
	rev := make([]int, len(topo))
	for i, v := range topo {
		rev[len(topo)-1-i] = v
	}
	wf2, wr2, err := ForwardReverseWidth(c, rev)
	if err != nil {
		t.Fatal(err)
	}
	if wf2 != 0 {
		t.Errorf("reversed order has forward width %d", wf2)
	}
	if wr2 < 1 {
		t.Errorf("reverse width = %d", wr2)
	}
}

func TestForwardReverseWidthErrors(t *testing.T) {
	c := logic.Figure4a()
	if _, _, err := ForwardReverseWidth(c, []int{0}); err == nil {
		t.Error("short order accepted")
	}
	bad := append([]int(nil), c.TopoOrder()...)
	bad[0] = bad[1]
	if _, _, err := ForwardReverseWidth(c, bad); err == nil {
		t.Error("non-permutation accepted")
	}
}

// TestMcMillanBoundHolds: the bound must dominate the actual BDD size for
// single-output circuits under the corresponding input order.
func TestMcMillanBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(rng, 15)
		// Use a topological order (wr = 0) so the bound is n·2^wf.
		topo := append([]int(nil), c.TopoOrder()...)
		wf, wr, err := ForwardReverseWidth(c, topo)
		if err != nil {
			t.Fatal(err)
		}
		m := New(len(c.Inputs))
		outs, err := FromCircuit(m, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		bound := McMillanBound(len(c.Inputs), wf, wr)
		if size := float64(m.Size(outs[0])); size > bound {
			t.Errorf("trial %d: BDD size %g exceeds McMillan bound %g (wf=%d wr=%d)",
				trial, size, bound, wf, wr)
		}
	}
}

func TestMcMillanBoundFormula(t *testing.T) {
	if got := McMillanBound(4, 2, 1); got != 4*16 {
		t.Errorf("McMillanBound(4,2,1) = %g, want 64", got)
	}
	if got := McMillanBound(2, 1, 0); got != 4 {
		t.Errorf("McMillanBound(2,1,0) = %g", got)
	}
}

func randomCircuit(rng *rand.Rand, n int) *logic.Circuit {
	b := logic.NewBuilder("rand")
	nin := 3 + rng.Intn(4)
	for i := 0; i < nin; i++ {
		b.Input("in" + string(rune('a'+i)))
	}
	types := []logic.GateType{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	for i := 0; i < n; i++ {
		gt := types[rng.Intn(len(types))]
		arity := 1
		if gt != logic.Not {
			arity = 1 + rng.Intn(3)
		}
		fanin := make([]int, arity)
		neg := make([]bool, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(b.NumNodes())
			neg[j] = rng.Intn(4) == 0
		}
		b.GateN(gt, "g"+string(rune('A'+i%26))+string(rune('0'+i/26)), fanin, neg)
	}
	b.MarkOutput(b.NumNodes() - 1)
	return b.MustBuild()
}
