package seq

import (
	"math/rand"
	"testing"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/mla"
)

// counterCore builds the combinational core of a 2-bit counter with
// enable: inputs (en, s0, s1); outputs (parity, n0, n1) where
// n0 = s0 ⊕ en, n1 = s1 ⊕ (s0∧en), parity = s0 ⊕ s1. One primary input,
// one primary output, two flip-flops.
func counterCore(t *testing.T) *Circuit {
	t.Helper()
	b := logic.NewBuilder("counter2")
	en := b.Input("en")
	s0 := b.Input("s0")
	s1 := b.Input("s1")
	parity := b.Gate(logic.Xor, "parity", s0, s1)
	n0 := b.Gate(logic.Xor, "n0", s0, en)
	carry := b.Gate(logic.And, "carry", s0, en)
	n1 := b.Gate(logic.Xor, "n1", s1, carry)
	b.MarkOutput(parity)
	b.MarkOutput(n0)
	b.MarkOutput(n1)
	s, err := New(b.MustBuild(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	b := logic.NewBuilder("bad")
	x := b.Input("x")
	b.MarkOutput(b.Gate(logic.Not, "n", x))
	c := b.MustBuild()
	if _, err := New(c, 1, 1); err == nil {
		t.Error("no-state core accepted")
	}
	if _, err := New(c, 0, 1); err == nil {
		t.Error("mismatched FF counts accepted")
	}
	// 0 PIs / 0 POs with one FF is a legal autonomous machine shape.
	if _, err := New(c, 0, 0); err != nil {
		t.Errorf("autonomous machine rejected: %v", err)
	}
}

func TestSimulateCounter(t *testing.T) {
	s := counterCore(t)
	// From state 00, three enabled cycles: parity outputs are the parity
	// of the state at the START of each cycle: 0 (00), 1 (01), 1 (10).
	out, err := s.Simulate([]bool{false, false},
		[][]bool{{true}, {true}, {true}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true}
	for cyc, w := range want {
		if out[cyc][0] != w {
			t.Errorf("cycle %d: parity %v, want %v", cyc, out[cyc][0], w)
		}
	}
	// Disabled: state holds, parity constant.
	out, err = s.Simulate([]bool{true, false}, [][]bool{{false}, {false}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != true || out[1][0] != true {
		t.Errorf("hold: %v", out)
	}
	if _, err := s.Simulate([]bool{false}, nil, nil); err == nil {
		t.Error("short state accepted")
	}
	if _, err := s.Simulate([]bool{false, false}, [][]bool{{true, true}}, nil); err == nil {
		t.Error("wide input accepted")
	}
}

func TestUnrollMatchesSimulation(t *testing.T) {
	s := counterCore(t)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		frames := 1 + rng.Intn(4)
		init := []bool{rng.Intn(2) == 1, rng.Intn(2) == 1}
		u, err := s.Unroll(frames, init)
		if err != nil {
			t.Fatal(err)
		}
		if len(u.C.Outputs) != frames*s.NumPO {
			t.Fatalf("unrolled outputs = %d", len(u.C.Outputs))
		}
		seqIn := make([][]bool, frames)
		var flatIn []bool
		for f := range seqIn {
			seqIn[f] = []bool{rng.Intn(2) == 1}
			flatIn = append(flatIn, seqIn[f]...)
		}
		want, err := s.Simulate(init, seqIn, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := u.C.SimulateOutputs(flatIn)
		for f := 0; f < frames; f++ {
			if got[f] != want[f][0] {
				t.Fatalf("trial %d frame %d: unrolled %v, sequential %v", trial, f, got[f], want[f][0])
			}
		}
	}
}

func TestUnrollFreeState(t *testing.T) {
	s := counterCore(t)
	u, err := s.Unroll(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.StateInputs) != 2 {
		t.Fatalf("free state inputs = %d", len(u.StateInputs))
	}
	// Total inputs: 2 state + 2 per-frame en.
	if len(u.C.Inputs) != 4 {
		t.Errorf("inputs = %d", len(u.C.Inputs))
	}
	if _, err := s.Unroll(0, nil); err == nil {
		t.Error("0 frames accepted")
	}
	if _, err := s.Unroll(1, []bool{true}); err == nil {
		t.Error("short init state accepted")
	}
}

// TestSeqATPGSingleFrame: with a free initial state, a fault on the
// parity cone is detected in one frame.
func TestSeqATPGSingleFrame(t *testing.T) {
	s := counterCore(t)
	f := atpg.Fault{Net: s.Comb.MustLookup("parity"), StuckAt: false}
	res, err := TestFault(s, f, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != atpg.Detected {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Frames != 1 {
		t.Errorf("frames = %d, want 1 with free state", res.Frames)
	}
	if res.InitState == nil {
		t.Error("free-state search must report the required initial state")
	}
}

// TestSeqATPGNeedsMultipleFrames: from reset state 00, the fault
// "carry stuck-at-0" needs state s0=1 to activate, which takes one
// enabled cycle to reach, and its effect lands in next-state n1 —
// observable at the parity output only a cycle later: 3 frames.
func TestSeqATPGNeedsMultipleFrames(t *testing.T) {
	s := counterCore(t)
	f := atpg.Fault{Net: s.Comb.MustLookup("carry"), StuckAt: false}
	reset := []bool{false, false}
	res, err := TestFault(s, f, 5, reset, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != atpg.Detected {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Frames < 3 {
		t.Errorf("frames = %d, want ≥ 3 from reset", res.Frames)
	}
	if res.InitState != nil {
		t.Error("reset-state search must not invent an initial state")
	}
	// The sequence must genuinely detect the fault (TestFault verifies
	// internally, but double-check here).
	good, _ := s.Simulate(reset, res.Inputs, nil)
	bad, _ := s.Simulate(reset, res.Inputs, &f)
	diff := false
	for cyc := range good {
		if good[cyc][0] != bad[cyc][0] {
			diff = true
		}
	}
	if !diff {
		t.Error("sequence does not detect the fault")
	}
}

// TestSeqATPGAborts: a fault that cannot be detected within the frame
// budget returns Aborted. The "parity stuck-at-0 with outputs forced
// equal" trick: use a fault on a net that is sequentially untestable from
// reset — stuck-at-0 on a net that is constant 0 from reset regardless of
// inputs. Here: carry stuck-at-0 with enable tied... instead test budget
// exhaustion with maxFrames = 1 for the 3-frame fault above.
func TestSeqATPGAborts(t *testing.T) {
	s := counterCore(t)
	f := atpg.Fault{Net: s.Comb.MustLookup("carry"), StuckAt: false}
	res, err := TestFault(s, f, 1, []bool{false, false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != atpg.Aborted {
		t.Errorf("status = %v, want aborted within 1 frame", res.Status)
	}
	if _, err := TestFault(s, atpg.Fault{Net: 999}, 1, nil, nil); err == nil {
		t.Error("out-of-range fault accepted")
	}
}

// TestSeqATPGAllCoreFaults: every fault on the counter core is either
// detected (and verified) or aborted within the budget; detection from a
// free initial state must be at least as easy as from reset.
func TestSeqATPGAllCoreFaults(t *testing.T) {
	s := counterCore(t)
	for _, f := range atpg.AllFaults(s.Comb) {
		free, err := TestFault(s, f, 4, nil, nil)
		if err != nil {
			t.Fatalf("%s free: %v", f.Name(s.Comb), err)
		}
		reset, err := TestFault(s, f, 4, []bool{false, false}, nil)
		if err != nil {
			t.Fatalf("%s reset: %v", f.Name(s.Comb), err)
		}
		if reset.Status == atpg.Detected && free.Status != atpg.Detected {
			t.Errorf("%s: detected from reset but not with free state", f.Name(s.Comb))
		}
		if free.Status == atpg.Detected && reset.Status == atpg.Detected &&
			free.Frames > reset.Frames {
			t.Errorf("%s: free state needed %d frames, reset only %d", f.Name(s.Comb), free.Frames, reset.Frames)
		}
	}
}

// TestUnrolledWidthBounded validates the package-comment claim that
// unrolling preserves the cut-width story: the unrolled circuit's
// estimated width stays bounded as frames grow (state registers are the
// cut between frames), rather than growing with the unrolled size.
func TestUnrolledWidthBounded(t *testing.T) {
	s := counterCore(t)
	prev := 0
	for _, frames := range []int{1, 3, 6, 10} {
		u, err := s.Unroll(frames, []bool{false, false})
		if err != nil {
			t.Fatal(err)
		}
		g := hypergraph.FromCircuit(u.C)
		w, _ := mla.EstimateCutWidth(g, mla.Options{})
		if frames > 1 && w > prev+s.NumFF+2 {
			t.Errorf("frames %d: width %d jumped from %d (> +FF+2)", frames, w, prev)
		}
		prev = w
	}
}
