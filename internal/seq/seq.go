// Package seq extends the reproduction toward the paper's stated future
// work ("we need to gain greater insight into the particular properties
// of the objects, such as sequential circuit netlists"): a sequential
// circuit model — a combinational core plus D flip-flops — with
// time-frame expansion, sequential fault simulation, and test-sequence
// generation for single stuck-at faults by SAT over the unrolled circuit.
//
// The unrolled instances are exactly the CIRCUIT-SAT class the paper
// analyzes, so the cut-width story transfers: unrolling k frames of a
// circuit with cut-width W yields a combinational circuit whose natural
// frame-by-frame ordering has width O(W + |FF|) — state registers act as
// the cut between frames.
package seq

import (
	"fmt"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/cnf"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/sat"
)

// Circuit is a synchronous sequential circuit in the standard
// pseudo-combinational form: the combinational core's inputs are the
// primary inputs followed by the flip-flop outputs (present state), and
// its outputs are the primary outputs followed by the flip-flop inputs
// (next state).
type Circuit struct {
	Comb  *logic.Circuit
	NumPI int
	NumPO int
	NumFF int
}

// New validates the pseudo-combinational shape and returns the sequential
// circuit: comb must have numPI+k inputs and numPO+k outputs for the same
// k ≥ 1 (the flip-flop count).
func New(comb *logic.Circuit, numPI, numPO int) (*Circuit, error) {
	ff := len(comb.Inputs) - numPI
	if ff < 1 {
		return nil, fmt.Errorf("seq: %d inputs for %d primary inputs leaves no state", len(comb.Inputs), numPI)
	}
	if got := len(comb.Outputs) - numPO; got != ff {
		return nil, fmt.Errorf("seq: %d next-state outputs for %d flip-flops", got, ff)
	}
	return &Circuit{Comb: comb, NumPI: numPI, NumPO: numPO, NumFF: ff}, nil
}

// Simulate runs the sequential circuit for len(inputs) clock cycles from
// the given initial state, with an optional stuck-at fault forced on one
// core net in every frame (fault == nil means fault-free). It returns the
// primary-output stream, one slice per cycle.
func (s *Circuit) Simulate(initState []bool, inputs [][]bool, fault *atpg.Fault) ([][]bool, error) {
	if len(initState) != s.NumFF {
		return nil, fmt.Errorf("seq: initial state has %d bits for %d flip-flops", len(initState), s.NumFF)
	}
	state := append([]bool(nil), initState...)
	var forced map[int]bool
	if fault != nil {
		forced = map[int]bool{fault.Net: fault.StuckAt}
	}
	out := make([][]bool, 0, len(inputs))
	for cyc, in := range inputs {
		if len(in) != s.NumPI {
			return nil, fmt.Errorf("seq: cycle %d has %d inputs for %d primary inputs", cyc, len(in), s.NumPI)
		}
		vals := s.Comb.SimulateWith(append(append([]bool(nil), in...), state...), forced)
		po := make([]bool, s.NumPO)
		for i := 0; i < s.NumPO; i++ {
			po[i] = vals[s.Comb.Outputs[i]]
		}
		for i := 0; i < s.NumFF; i++ {
			state[i] = vals[s.Comb.Outputs[s.NumPO+i]]
		}
		out = append(out, po)
	}
	return out, nil
}

// Unrolled is a time-frame expansion of a sequential circuit.
type Unrolled struct {
	// C is the combinational unrolling: frame f's primary inputs are named
	// <name>@f; every frame's primary outputs are marked outputs of C.
	C *logic.Circuit
	// Frames is the frame count.
	Frames int
	// NodeOf maps (frame, core node ID) to the unrolled node ID.
	NodeOf [][]int
	// StateInputs lists the frame-0 state nets when the initial state is
	// free (nil when an initial state was supplied).
	StateInputs []int
}

// Unroll expands the circuit over the given number of frames. When
// initState is nil the frame-0 state lines become free primary inputs
// (full sequential controllability assumption); otherwise they are tied
// to the given constants (reset-state assumption).
func (s *Circuit) Unroll(frames int, initState []bool) (*Unrolled, error) {
	if frames < 1 {
		return nil, fmt.Errorf("seq: frames must be ≥ 1, got %d", frames)
	}
	if initState != nil && len(initState) != s.NumFF {
		return nil, fmt.Errorf("seq: initial state has %d bits for %d flip-flops", len(initState), s.NumFF)
	}
	b := logic.NewBuilder(fmt.Sprintf("%s_x%d", s.Comb.Name, frames))
	u := &Unrolled{Frames: frames, NodeOf: make([][]int, frames)}
	// Frame-0 state sources.
	state := make([]int, s.NumFF)
	for i := 0; i < s.NumFF; i++ {
		name := s.Comb.Nodes[s.Comb.Inputs[s.NumPI+i]].Name + "@init"
		if initState == nil {
			state[i] = b.Input(name)
			u.StateInputs = append(u.StateInputs, state[i])
		} else {
			state[i] = b.Const(name, initState[i])
		}
	}
	for f := 0; f < frames; f++ {
		m := make([]int, s.Comb.NumNodes())
		// Wire core inputs: PIs become fresh inputs, state reads the
		// previous frame's next-state nets.
		for i, in := range s.Comb.Inputs {
			if i < s.NumPI {
				m[in] = b.Input(fmt.Sprintf("%s@%d", s.Comb.Nodes[in].Name, f))
			} else {
				m[in] = state[i-s.NumPI]
			}
		}
		for _, id := range s.Comb.TopoOrder() {
			n := &s.Comb.Nodes[id]
			switch n.Type {
			case logic.Input:
				// wired above
			case logic.Const0:
				m[id] = b.Const(fmt.Sprintf("%s@%d", n.Name, f), false)
			case logic.Const1:
				m[id] = b.Const(fmt.Sprintf("%s@%d", n.Name, f), true)
			default:
				fanin := make([]int, len(n.Fanin))
				for i, fi := range n.Fanin {
					fanin[i] = m[fi]
				}
				m[id] = b.GateN(n.Type, fmt.Sprintf("%s@%d", n.Name, f), fanin, n.Neg)
			}
		}
		for i := 0; i < s.NumPO; i++ {
			b.MarkOutput(m[s.Comb.Outputs[i]])
		}
		for i := 0; i < s.NumFF; i++ {
			state[i] = m[s.Comb.Outputs[s.NumPO+i]]
		}
		u.NodeOf[f] = m
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	u.C = c
	return u, nil
}

// Result is the outcome of sequential test generation.
type Result struct {
	Status atpg.Status
	// Frames is the sequence length of the found test.
	Frames int
	// Inputs is the per-cycle primary input sequence (valid when
	// Status == Detected).
	Inputs [][]bool
	// InitState is the required initial state when the search ran with a
	// free initial state; nil when the caller supplied one.
	InitState []bool
}

// TestFault generates a test sequence for a single stuck-at fault on a
// core net by iterative time-frame expansion: for k = 1..maxFrames,
// unroll k frames, inject the fault in every frame (the physical defect
// is present in all cycles), build the good-vs-faulty miter over the
// whole output stream, and decide it with SAT. initState nil means a
// free (fully controllable) initial state; otherwise the search starts
// from the given reset state. solver nil means DPLL.
//
// Aborted is returned when no test exists within maxFrames — the fault
// may still be sequentially testable with a longer sequence (sequential
// untestability is not decided here).
func TestFault(s *Circuit, f atpg.Fault, maxFrames int, initState []bool, solver sat.Solver) (*Result, error) {
	if f.Net < 0 || f.Net >= s.Comb.NumNodes() {
		return nil, fmt.Errorf("seq: fault net %d out of range", f.Net)
	}
	if solver == nil {
		solver = &sat.DPLL{}
	}
	for k := 1; k <= maxFrames; k++ {
		u, err := s.Unroll(k, initState)
		if err != nil {
			return nil, err
		}
		faultSites := make([]int, 0, k)
		for fr := 0; fr < k; fr++ {
			faultSites = append(faultSites, u.NodeOf[fr][f.Net])
		}
		formula, goodOf, err := miterMulti(u.C, faultSites, f.StuckAt)
		if err != nil {
			return nil, err
		}
		sol := solver.Solve(formula)
		if sol.Status != sat.Sat {
			continue
		}
		res := &Result{Status: atpg.Detected, Frames: k}
		for fr := 0; fr < k; fr++ {
			in := make([]bool, s.NumPI)
			for i := 0; i < s.NumPI; i++ {
				in[i] = sol.Model[goodOf[u.NodeOf[fr][s.Comb.Inputs[i]]]]
			}
			res.Inputs = append(res.Inputs, in)
		}
		if initState == nil {
			res.InitState = make([]bool, s.NumFF)
			for i, id := range u.StateInputs {
				res.InitState[i] = sol.Model[goodOf[id]]
			}
		}
		// Cross-check by sequential simulation.
		start := initState
		if start == nil {
			start = res.InitState
		}
		good, err := s.Simulate(start, res.Inputs, nil)
		if err != nil {
			return nil, err
		}
		bad, err := s.Simulate(start, res.Inputs, &f)
		if err != nil {
			return nil, err
		}
		detects := false
		for cyc := range good {
			for i := range good[cyc] {
				if good[cyc][i] != bad[cyc][i] {
					detects = true
				}
			}
		}
		if !detects {
			return nil, fmt.Errorf("seq: generated sequence fails sequential verification (pipeline bug)")
		}
		return res, nil
	}
	return &Result{Status: atpg.Aborted, Frames: maxFrames}, nil
}

// miterMulti builds the CNF of a good-vs-faulty miter of circuit c where
// the faulty copy has every net in faultSites forced to stuckAt. It
// returns the formula and the good copy's node map.
func miterMulti(c *logic.Circuit, faultSites []int, stuckAt bool) (*cnf.Formula, []int, error) {
	inSite := make(map[int]bool, len(faultSites))
	for _, s := range faultSites {
		inSite[s] = true
	}
	b := logic.NewBuilder(c.Name + "_miter")
	goodOf := make([]int, c.NumNodes())
	faultyOf := make([]int, c.NumNodes())
	copyInto := func(m []int, prefix string, faulty bool) {
		for _, id := range c.TopoOrder() {
			n := &c.Nodes[id]
			if faulty && inSite[id] {
				m[id] = b.Const(prefix+n.Name+"~flt", stuckAt)
				continue
			}
			switch n.Type {
			case logic.Input:
				if faulty {
					m[id] = goodOf[id] // shared primary inputs
				} else {
					m[id] = b.Input(n.Name)
				}
			case logic.Const0:
				m[id] = b.Const(prefix+n.Name, false)
			case logic.Const1:
				m[id] = b.Const(prefix+n.Name, true)
			default:
				fanin := make([]int, len(n.Fanin))
				for i, fi := range n.Fanin {
					fanin[i] = m[fi]
				}
				m[id] = b.GateN(n.Type, prefix+n.Name, fanin, n.Neg)
			}
		}
	}
	copyInto(goodOf, "", false)
	copyInto(faultyOf, "F~", true)
	for i, o := range c.Outputs {
		b.MarkOutput(b.Gate(logic.Xor, fmt.Sprintf("diff%d", i), goodOf[o], faultyOf[o]))
	}
	mc, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	formula, err := cnf.FromCircuit(mc, nil)
	if err != nil {
		return nil, nil, err
	}
	// Activation hint: the good copy must differ from the stuck value in
	// at least one frame (implied by the XORs, but it guides the solver).
	act := make([]cnf.Lit, 0, len(faultSites))
	for _, s := range faultSites {
		act = append(act, cnf.NewLit(goodOf[s], stuckAt))
	}
	formula.AddClause(act...)
	return formula, goodOf, nil
}
