package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"atpgeasy/internal/atpg"
)

// progressEvent is one SSE "progress" payload — a JSON rendering of the
// engine's Progress snapshot plus the job's lifecycle state.
type progressEvent struct {
	ID       string  `json:"id"`
	State    string  `json:"state"`
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	Detected int     `json:"detected"`
	Dropped  int     `json:"dropped,omitempty"`
	Aborted  int     `json:"aborted,omitempty"`
	Errors   int     `json:"errors,omitempty"`
	Vectors  int     `json:"vectors"`
	Coverage float64 `json:"coverage"`
	Error    string  `json:"error,omitempty"`
}

func buildEvent(meta JobMeta, p atpg.Progress, hasProgress bool) progressEvent {
	ev := progressEvent{ID: meta.ID, State: meta.State, Error: meta.Error}
	if hasProgress {
		ev.Done, ev.Total = p.Done, p.Total
		ev.Detected, ev.Dropped = p.Detected+p.RPTDetected, p.Dropped
		ev.Aborted, ev.Errors = p.Aborted, p.Errors
		ev.Vectors = p.Vectors
		ev.Coverage = p.Coverage()
	}
	return ev
}

// serveEvents streams a job's progress as server-sent events: one
// "progress" event per engine snapshot or state change, heartbeat
// comments in between, a final "end" event at the terminal state. The
// stream also ends when the client disconnects (their loss only — the
// job keeps running) or when the server drains. Slow readers are
// bounded by a per-write deadline, so one stalled consumer can never
// pin a connection through a drain.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeTimeout := s.cfg.SSEWriteTimeout
	if writeTimeout <= 0 {
		writeTimeout = 10 * time.Second
	}
	send := func(event string, payload any) bool {
		data, err := json.Marshal(payload)
		if err != nil {
			return false
		}
		_ = rc.SetWriteDeadline(time.Now().Add(writeTimeout))
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	heartbeat := s.cfg.SSEHeartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()

	for {
		// Grab the change channel BEFORE snapshotting, so an update landing
		// between snapshot and wait wakes us instead of being lost.
		ch := j.changeCh()
		meta, p, hasP := j.snapshot()
		if !send("progress", buildEvent(meta, p, hasP)) {
			return
		}
		if terminal(meta.State) {
			send("end", buildEvent(meta, p, hasP))
			return
		}
		select {
		case <-ch:
		case <-ticker.C:
			_ = rc.SetWriteDeadline(time.Now().Add(writeTimeout))
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			// Server draining: finish the stream cleanly so the HTTP
			// shutdown sees an idle connection.
			meta, p, hasP = j.snapshot()
			send("end", buildEvent(meta, p, hasP))
			return
		}
	}
}
