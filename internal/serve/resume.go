// Package serve is the ATPG-as-a-service layer: a crash-safe,
// multi-tenant HTTP/JSON daemon over the engine. Netlists are submitted
// over HTTP, validated behind the parsers' recover barriers and the
// ioguard admission caps, queued on a bounded priority queue (full
// queue = 429 + Retry-After, never unbounded buffering), and run
// through Engine.RunFaults with every final verdict journaled via
// internal/checkpoint — so a kill -9 of the daemon loses nothing:
// queued jobs re-enqueue on restart and running jobs resume
// byte-identically from their journal. cmd/atpgd is the thin binary
// around this package.
package serve

import (
	"errors"
	"fmt"
	"os"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/checkpoint"
	"atpgeasy/internal/logic"
)

// OpenJournal opens (or, with resume, continues) the checkpoint journal
// at path and converts any replayed state into the engine's resume
// form. The header binds the journal to this exact run — circuit,
// collapsed fault list, seed and the deterministic run options — so a
// stale or foreign journal is rejected instead of silently corrupting
// verdicts. With resume set and no journal on disk the run simply
// starts fresh (nil ResumeState). Shared by cmd/atpg and the daemon's
// job runner.
func OpenJournal(path string, resume bool, c *logic.Circuit, faults []atpg.Fault, opt atpg.RunOptions, copt checkpoint.Options) (*checkpoint.Journal, *atpg.ResumeState, error) {
	hdr := checkpoint.Header{
		Circuit:   c.Name,
		Faults:    len(faults),
		FaultHash: atpg.CheckpointFingerprint(c, faults, opt),
		Seed:      opt.Seed,
	}
	var prior *checkpoint.State
	var rs *atpg.ResumeState
	if resume {
		st, err := checkpoint.Load(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// No journal yet: a fresh run, not an error.
		case err != nil:
			return nil, nil, err
		default:
			if rs, err = ResumeStateFrom(st, c, faults); err != nil {
				return nil, nil, err
			}
			prior = st
		}
	}
	j, err := checkpoint.New(path, hdr, prior, copt)
	if err != nil {
		return nil, nil, err
	}
	return j, rs, nil
}

// ResumeStateFrom converts a loaded journal into the engine's resume
// form, validating every index and vector against the current circuit
// and fault list (the header hash makes a mismatch unlikely, but
// journal content is still external input).
func ResumeStateFrom(st *checkpoint.State, c *logic.Circuit, faults []atpg.Fault) (*atpg.ResumeState, error) {
	decode := func(s string, what string) ([]bool, error) {
		v, err := checkpoint.DecodeVector(s)
		if err != nil {
			return nil, err
		}
		if len(v) != len(c.Inputs) {
			return nil, fmt.Errorf("checkpoint: %s vector has %d bits for %d inputs", what, len(v), len(c.Inputs))
		}
		return v, nil
	}
	rs := &atpg.ResumeState{Faults: make(map[int]atpg.Result, len(st.Faults))}
	if st.RPT != nil {
		rpt := &atpg.ResumeRPT{
			Detected: append([]int(nil), st.RPT.Detected...),
			Vectors:  make([][]bool, len(st.RPT.Vectors)),
			Batches:  st.RPT.Batches,
		}
		for _, i := range rpt.Detected {
			if i < 0 || i >= len(faults) {
				return nil, fmt.Errorf("checkpoint: rpt-detected fault index %d out of range", i)
			}
		}
		for i, s := range st.RPT.Vectors {
			v, err := decode(s, "rpt")
			if err != nil {
				return nil, err
			}
			rpt.Vectors[i] = v
		}
		rs.RPT = rpt
	}
	for i, fv := range st.Faults {
		if i < 0 || i >= len(faults) {
			return nil, fmt.Errorf("checkpoint: fault index %d out of range", i)
		}
		status, ok := atpg.ParseStatus(fv.Status)
		if !ok {
			return nil, fmt.Errorf("checkpoint: fault %d has unknown status %q", i, fv.Status)
		}
		res := atpg.Result{Fault: faults[i], Status: status, Err: fv.Err}
		if fv.Vector != "" {
			v, err := decode(fv.Vector, "fault")
			if err != nil {
				return nil, err
			}
			res.Vector = v
		}
		rs.Faults[i] = res
	}
	return rs, nil
}
