package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/bench"
	"atpgeasy/internal/blif"
	"atpgeasy/internal/ioguard"
	"atpgeasy/internal/obs"
)

// Config shapes one daemon instance. Zero values select production
// defaults.
type Config struct {
	// Addr is the listen address (host:port; port 0 picks a free port).
	Addr string
	// DataDir is the daemon's durable root: every job lives in
	// DataDir/jobs/<id>/ (meta.json, netlist, ckpt, result.json).
	DataDir string
	// QueueCap bounds the admission queue across all priorities
	// (default 64). A full queue rejects submissions with 429.
	QueueCap int
	// RunningSlots is the number of jobs running concurrently
	// (default 1 — jobs parallelize internally via EngineWorkers).
	RunningSlots int
	// EngineWorkers is the engine worker count per job (0 = GOMAXPROCS).
	EngineWorkers int
	// MaxNetlistBytes / MaxNetlistLine cap submissions before parsing
	// (defaults 8 MiB / 1 MiB). Oversized input gets 413.
	MaxNetlistBytes int64
	MaxNetlistLine  int
	// ProgressEvery is the engine progress snapshot period feeding SSE
	// and the per-job gauge (default 100ms).
	ProgressEvery time.Duration
	// SSEHeartbeat is the comment-ping period keeping idle event streams
	// alive (default 15s); SSEWriteTimeout bounds each stream write so a
	// stalled reader is disconnected instead of pinning the connection
	// (default 10s).
	SSEHeartbeat    time.Duration
	SSEWriteTimeout time.Duration
	// RetryAfter is the hint returned with 429 rejections (default 5s).
	RetryAfter time.Duration
	// Logf receives operational log lines (default: log.Printf).
	Logf func(format string, args ...any)
	// ChaosHook, when set, runs at the start of every job attempt with
	// the job's name. The chaos/load harness injects panics here; the
	// per-job panic barrier must turn each one into exactly one failed
	// job. Never set in production.
	ChaosHook func(jobName string)
}

func (c *Config) fillDefaults() {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.RunningSlots <= 0 {
		c.RunningSlots = 1
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxNetlistBytes <= 0 {
		c.MaxNetlistBytes = 8 << 20
	}
	if c.MaxNetlistLine <= 0 {
		c.MaxNetlistLine = 1 << 20
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 100 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Server is one daemon instance: HTTP front end, bounded priority
// queue, runner pool, and the per-job durable state under DataDir.
type Server struct {
	cfg     Config
	ln      net.Listener
	httpSrv *http.Server
	reg     *obs.Registry
	met     *atpg.Metrics

	queue     *jobQueue
	jobCtx    context.Context
	jobCancel context.CancelFunc
	drainCh   chan struct{}
	drainOnce sync.Once
	draining  atomic.Bool
	wg        sync.WaitGroup // runner goroutines

	mu   sync.Mutex
	jobs map[string]*job
	seq  int64

	jobsSubmitted *obs.Counter
	jobsRejected  *obs.LabeledCounter
	jobsCompleted *obs.LabeledCounter
	queueDepth    *obs.Gauge
	jobsRunning   *obs.Gauge
	jobProgress   *obs.LabeledGauge

	// testHookRun runs at the start of every job attempt — the chaos
	// harness injects panics and stalls here.
	testHookRun func(*job)
}

// Start builds a Server from cfg, replays the durable job state under
// DataDir (queued and interrupted-running jobs re-enqueue, in
// submission order), binds the listener and begins serving. The caller
// owns shutdown via Shutdown (graceful) or Close (hard).
func Start(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("serve: Config.DataDir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		met:     atpg.NewMetrics(reg, cfg.EngineWorkers),
		queue:   newJobQueue(cfg.QueueCap),
		drainCh: make(chan struct{}),
		jobs:    make(map[string]*job),

		jobsSubmitted: reg.Counter("atpgd_jobs_submitted_total", "jobs admitted to the queue"),
		jobsRejected:  reg.LabeledCounter("atpgd_jobs_rejected_total", "submissions rejected before admission", "reason"),
		jobsCompleted: reg.LabeledCounter("atpgd_jobs_completed_total", "jobs reaching a terminal state", "state"),
		queueDepth:    reg.Gauge("atpgd_queue_depth", "jobs waiting in the admission queue"),
		jobsRunning:   reg.Gauge("atpgd_jobs_running", "jobs currently executing"),
		jobProgress:   reg.LabeledGauge("atpgd_job_coverage_permille", "per-job running fault coverage, in permille", "job"),
	}
	s.jobCtx, s.jobCancel = context.WithCancel(context.Background())
	if cfg.ChaosHook != nil {
		s.testHookRun = func(j *job) { cfg.ChaosHook(j.meta.Name) }
	}
	if err := s.replayDataDir(); err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.buildMux(), ReadHeaderTimeout: 10 * time.Second}
	for i := 0; i < cfg.RunningSlots; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return s, nil
}

// Addr is the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }

// replayDataDir restores the durable job state after a restart: every
// job directory is loaded; queued jobs and jobs that were running when
// the process died re-enter the queue (running ones will resume from
// their checkpoint journal), in original submission order. Terminal
// jobs are kept for listing. This is the "kill -9 loses nothing" half
// of the crash-safety contract.
func (s *Server) replayDataDir() error {
	root := filepath.Join(s.cfg.DataDir, "jobs")
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	var requeue []*job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		meta, err := readMeta(dir)
		if err != nil {
			// A directory without a readable meta.json is a submission that
			// crashed before its first persist — nothing to recover.
			s.logf("serve: skipping job dir %s: %v", dir, err)
			continue
		}
		j := newJob(dir, meta)
		if terminal(meta.State) {
			close(j.done)
		}
		s.jobs[meta.ID] = j
		if meta.State == StateQueued || meta.State == StateRunning {
			if meta.State == StateRunning {
				// Truthful state until a runner picks it back up; the ckpt
				// journal on disk is what makes the re-run a resume.
				if err := j.setState(StateQueued, ""); err != nil {
					return err
				}
			}
			requeue = append(requeue, j)
		}
		if n := seqOf(meta.ID); n > s.seq {
			s.seq = n
		}
	}
	sort.Slice(requeue, func(a, b int) bool {
		if !requeue[a].meta.SubmittedAt.Equal(requeue[b].meta.SubmittedAt) {
			return requeue[a].meta.SubmittedAt.Before(requeue[b].meta.SubmittedAt)
		}
		return requeue[a].meta.ID < requeue[b].meta.ID
	})
	for _, j := range requeue {
		if err := s.queue.push(j); err != nil {
			// More persisted work than queue capacity: the overflow stays
			// queued on disk for the next restart rather than being lost.
			s.logf("serve: job %s stays on disk: %v", j.meta.ID, err)
		}
	}
	s.queueDepth.Set(int64(s.queue.depth()))
	return nil
}

// seqOf extracts the numeric prefix of a job ID ("17-c0ffee" → 17).
func seqOf(id string) int64 {
	var n int64
	for i := 0; i < len(id) && id[i] >= '0' && id[i] <= '9'; i++ {
		n = n*10 + int64(id[i]-'0')
	}
	return n
}

// runner is one job-execution loop: pop, run, repeat — until the queue
// closes (drain). runJob's panic barrier means a poisoned job never
// takes the runner down with it.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		j, err := s.queue.pop()
		if err != nil {
			return
		}
		s.queueDepth.Set(int64(s.queue.depth()))
		s.jobsRunning.Add(1)
		s.runJob(s.jobCtx, j)
		s.jobsRunning.Add(-1)
	}
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/vectors", s.handleVectors)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorDoc struct {
	Error string `json:"error"`
}

// handleSubmit is the admission path: reject early (draining, body too
// large, malformed netlist, bad parameters), persist the job durably,
// then admit it to the bounded queue — a full queue rolls the persisted
// directory back and answers 429 + Retry-After.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.jobsRejected.With("draining").Inc()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	format := q.Get("format")
	if format == "" {
		format = "bench"
	}
	if format != "bench" && format != "blif" {
		s.jobsRejected.With("bad_request").Inc()
		writeJSON(w, http.StatusBadRequest, errorDoc{fmt.Sprintf("unknown format %q (want bench or blif)", format)})
		return
	}
	prio, err := ParsePriority(q.Get("priority"))
	if err != nil {
		s.jobsRejected.With("bad_request").Inc()
		writeJSON(w, http.StatusBadRequest, errorDoc{err.Error()})
		return
	}
	var budget, deadline time.Duration
	if v := q.Get("budget"); v != "" {
		if budget, err = time.ParseDuration(v); err != nil || budget < 0 {
			s.jobsRejected.With("bad_request").Inc()
			writeJSON(w, http.StatusBadRequest, errorDoc{fmt.Sprintf("bad budget %q", v)})
			return
		}
	}
	if v := q.Get("deadline"); v != "" {
		if deadline, err = time.ParseDuration(v); err != nil || deadline < 0 {
			s.jobsRejected.With("bad_request").Inc()
			writeJSON(w, http.StatusBadRequest, errorDoc{fmt.Sprintf("bad deadline %q", v)})
			return
		}
	}
	name := q.Get("name")
	if name == "" {
		name = "job"
	}

	// Read the netlist under the byte cap, then validate it with the
	// capped parser before anything is persisted or queued: a malformed
	// or oversized submission must cost the server one bounded parse,
	// nothing more.
	body, err := readBody(r, s.cfg.MaxNetlistBytes)
	if err != nil {
		s.jobsRejected.With("too_large").Inc()
		writeJSON(w, http.StatusRequestEntityTooLarge, errorDoc{err.Error()})
		return
	}
	if err := s.validateNetlist(body, format, name); err != nil {
		if errors.Is(err, ioguard.ErrTooLarge) || errors.Is(err, ioguard.ErrLineTooLong) {
			s.jobsRejected.With("too_large").Inc()
			writeJSON(w, http.StatusRequestEntityTooLarge, errorDoc{err.Error()})
			return
		}
		s.jobsRejected.With("parse").Inc()
		writeJSON(w, http.StatusBadRequest, errorDoc{err.Error()})
		return
	}

	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("%d-%x", s.seq, time.Now().UnixNano()&0xffffff)
	s.mu.Unlock()
	dir := filepath.Join(s.cfg.DataDir, "jobs", id)
	meta := JobMeta{
		ID: id, Name: name, Format: format, Priority: prio,
		State:       StateQueued,
		BudgetNS:    budget.Nanoseconds(),
		DeadlineNS:  deadline.Nanoseconds(),
		SubmittedAt: time.Now().UTC(),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorDoc{err.Error()})
		return
	}
	j := newJob(dir, meta)
	if err := os.WriteFile(j.netlistPath(), body, 0o644); err == nil {
		err = writeMeta(dir, meta)
	}
	if err != nil {
		os.RemoveAll(dir)
		writeJSON(w, http.StatusInternalServerError, errorDoc{err.Error()})
		return
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	if err := s.queue.push(j); err != nil {
		// Admission control: undo the persist so the rejected job does not
		// haunt the next restart, and tell the client when to retry.
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		os.RemoveAll(dir)
		if errors.Is(err, ErrQueueFull) {
			s.jobsRejected.With("queue_full").Inc()
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds())))
			writeJSON(w, http.StatusTooManyRequests, errorDoc{"job queue full"})
			return
		}
		s.jobsRejected.With("draining").Inc()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.queueDepth.Set(int64(s.queue.depth()))
	s.jobsSubmitted.Inc()
	writeJSON(w, http.StatusCreated, meta)
}

// readBody drains the request body under the byte cap, mapping the
// over-cap failure to ioguard.ErrTooLarge.
func readBody(r *http.Request, max int64) ([]byte, error) {
	data, err := io.ReadAll(ioguard.CapBytes(r.Body, max))
	if errors.Is(err, ioguard.ErrTooLarge) {
		return nil, fmt.Errorf("netlist body over the %d-byte cap: %w", max, ioguard.ErrTooLarge)
	}
	return data, err
}

// validateNetlist runs the capped parser over the submitted bytes —
// the recover barriers plus admission caps mean a hostile submission is
// one bounded, failed parse, never a crashed or bloated daemon.
func (s *Server) validateNetlist(body []byte, format, name string) error {
	var err error
	switch format {
	case "blif":
		_, err = blif.ReadCapped(bytes.NewReader(body), s.cfg.MaxNetlistBytes, s.cfg.MaxNetlistLine)
	default:
		_, err = bench.ReadCapped(bytes.NewReader(body), name, s.cfg.MaxNetlistBytes, s.cfg.MaxNetlistLine)
	}
	return err
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	metas := make([]JobMeta, 0, len(s.jobs))
	for _, j := range s.jobs {
		m, _, _ := j.snapshot()
		metas = append(metas, m)
	}
	s.mu.Unlock()
	sort.Slice(metas, func(a, b int) bool {
		if !metas[a].SubmittedAt.Equal(metas[b].SubmittedAt) {
			return metas[a].SubmittedAt.Before(metas[b].SubmittedAt)
		}
		return metas[a].ID < metas[b].ID
	})
	writeJSON(w, http.StatusOK, metas)
}

// jobDoc is the GET /jobs/{id} response: the meta, the latest progress
// (while running) and the result (once done).
type jobDoc struct {
	JobMeta
	Progress *progressEvent `json:"progress,omitempty"`
	Result   *JobResult     `json:"result,omitempty"`
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{"no such job"})
		return
	}
	meta, p, hasP := j.snapshot()
	doc := jobDoc{JobMeta: meta}
	if hasP {
		ev := buildEvent(meta, p, true)
		doc.Progress = &ev
	}
	if meta.State == StateDone {
		if res, err := j.loadResult(); err == nil {
			doc.Result = res
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{"no such job"})
		return
	}
	s.serveEvents(w, r, j)
}

func (s *Server) handleVectors(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{"no such job"})
		return
	}
	meta, _, _ := j.snapshot()
	if meta.State != StateDone {
		writeJSON(w, http.StatusConflict, errorDoc{fmt.Sprintf("job is %s, vectors exist once done", meta.State)})
		return
	}
	res, err := j.loadResult()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorDoc{err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, v := range res.Vectors {
		fmt.Fprintln(w, v)
	}
}

// handleDelete cancels a queued or running job, or removes a terminal
// job's durable state.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.jobByID(id)
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorDoc{"no such job"})
		return
	}
	meta, _, _ := j.snapshot()
	switch {
	case meta.State == StateQueued && s.queue.remove(id):
		s.queueDepth.Set(int64(s.queue.depth()))
		_ = j.setState(StateCanceled, "")
		s.jobsCompleted.With(StateCanceled).Inc()
		meta, _, _ = j.snapshot()
		writeJSON(w, http.StatusOK, meta)
	case !terminal(meta.State):
		// Running (or queued-but-just-claimed): flag the user cancel and
		// fire the context; the runner persists the terminal state.
		j.mu.Lock()
		j.userCancel = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		meta, _, _ = j.snapshot()
		writeJSON(w, http.StatusAccepted, meta)
	default:
		// Terminal: remove the durable state entirely.
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		s.jobProgress.Forget(id)
		if err := os.RemoveAll(j.dir); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorDoc{err.Error()})
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// Shutdown drains the daemon gracefully: admissions stop immediately
// (submissions get 503, /readyz flips), queued jobs stay durably queued
// for the next start, and running jobs get until ctx's deadline to
// finish — past it they are cancelled, which checkpoints them (journal
// synced, state persisted as running) for a byte-identical resume.
// In-flight SSE streams and scrapes complete before the HTTP server
// closes. Returns nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.close()

	runnersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(runnersDone)
	}()
	var drainErr error
	select {
	case <-runnersDone:
	case <-ctx.Done():
		// Out of patience: checkpoint the running jobs via cancellation.
		// Engine cancellation is prompt (next limit check), so this wait
		// is short and bounded by the solvers' cancel granularity.
		drainErr = ctx.Err()
		s.jobCancel()
		<-runnersDone
	}
	s.drainOnce.Do(func() { close(s.drainCh) })
	httpCtx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		httpCtx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
	}
	if err := s.httpSrv.Shutdown(httpCtx); err != nil {
		s.httpSrv.Close()
		if drainErr == nil {
			drainErr = err
		}
	}
	s.jobCancel()
	return drainErr
}

// Close is the hard stop: running jobs are cancelled (their journals
// are flushed per record, so nothing decided is lost), connections are
// dropped, and the listener closes. The in-process stand-in for
// kill -9 in the chaos tests — except kill -9 does not even get this.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.queue.close()
	s.jobCancel()
	s.drainOnce.Do(func() { close(s.drainCh) })
	err := s.httpSrv.Close()
	s.wg.Wait()
	return err
}
