package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

const c17Bench = `# ISCAS85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

const mux2BLIF = `.model mux2
.inputs sel a b
.outputs y
.names sel a t0
01 1
.names sel b t1
11 1
.names t0 t1 y
1- 1
-1 1
.end
`

// startTestServer boots a daemon on a loopback port with fast progress
// and heartbeat periods. mut tweaks the config before start.
func startTestServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Addr:          "127.0.0.1:0",
		DataDir:       t.TempDir(),
		EngineWorkers: 2,
		ProgressEvery: 2 * time.Millisecond,
		SSEHeartbeat:  50 * time.Millisecond,
		Logf:          func(string, ...any) {},
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := Start(cfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func submitJob(t *testing.T, s *Server, params, body string) (JobMeta, *http.Response) {
	t.Helper()
	resp, err := http.Post("http://"+s.Addr()+"/jobs"+params, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var meta JobMeta
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return meta, resp
}

func getJob(t *testing.T, s *Server, id string) jobDoc {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: status %d", id, resp.StatusCode)
	}
	var doc jobDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode job doc: %v", err)
	}
	return doc
}

// waitJobState polls until the job reaches want (or any terminal state,
// reported as a failure if it is not want).
func waitJobState(t *testing.T, s *Server, id, want string) jobDoc {
	t.Helper()
	deadline := time.Now().Add(180 * time.Second)
	for time.Now().Before(deadline) {
		doc := getJob(t, s, id)
		if doc.State == want {
			return doc
		}
		if terminal(doc.State) {
			t.Fatalf("job %s reached %q (error %q), want %q", id, doc.State, doc.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %q in time", id, want)
	return jobDoc{}
}

func scrapeMetrics(t *testing.T, s *Server) string {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(data)
}

func TestSubmitAndComplete(t *testing.T) {
	s := startTestServer(t, nil)

	meta, resp := submitJob(t, s, "?name=c17", c17Bench)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status %d, want 201", resp.StatusCode)
	}
	if meta.State != StateQueued || meta.ID == "" {
		t.Fatalf("submit meta %+v, want queued with an ID", meta)
	}
	doc := waitJobState(t, s, meta.ID, StateDone)
	if doc.Result == nil {
		t.Fatal("done job has no result")
	}
	if doc.Result.Coverage != 1.0 {
		t.Fatalf("c17 coverage %v, want 1.0", doc.Result.Coverage)
	}
	if len(doc.Result.Vectors) == 0 {
		t.Fatal("done job has no vectors")
	}
	for _, v := range doc.Result.Vectors {
		if len(v) != 5 {
			t.Fatalf("vector %q has %d bits, c17 has 5 inputs", v, len(v))
		}
	}

	// The vectors endpoint serves the same set as plain text.
	vresp, err := http.Get("http://" + s.Addr() + "/jobs/" + meta.ID + "/vectors")
	if err != nil {
		t.Fatalf("GET vectors: %v", err)
	}
	body, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()
	lines := strings.Fields(string(body))
	if len(lines) != len(doc.Result.Vectors) {
		t.Fatalf("vectors endpoint has %d lines, result has %d", len(lines), len(doc.Result.Vectors))
	}

	// A BLIF submission works through the same pipeline.
	bmeta, bresp := submitJob(t, s, "?name=mux2&format=blif", mux2BLIF)
	if bresp.StatusCode != http.StatusCreated {
		t.Fatalf("blif submit status %d", bresp.StatusCode)
	}
	waitJobState(t, s, bmeta.ID, StateDone)

	metrics := scrapeMetrics(t, s)
	for _, want := range []string{
		`atpgd_jobs_completed_total{state="done"} 2`,
		"atpgd_jobs_submitted_total 2",
		"atpg_faults_done_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		r, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, r.StatusCode, want)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	s := startTestServer(t, func(c *Config) {
		c.MaxNetlistBytes = 512
		c.MaxNetlistLine = 128
	})
	cases := []struct {
		name   string
		params string
		body   string
		status int
	}{
		{"bad format", "?format=verilog", c17Bench, http.StatusBadRequest},
		{"bad priority", "?priority=urgent", c17Bench, http.StatusBadRequest},
		{"bad budget", "?budget=fast", c17Bench, http.StatusBadRequest},
		{"bad deadline", "?deadline=-3s", c17Bench, http.StatusBadRequest},
		{"malformed netlist", "", "10 = FROB(1, 2)\n", http.StatusBadRequest},
		{"blif as bench", "", mux2BLIF, http.StatusBadRequest},
		{"over byte cap", "", c17Bench + strings.Repeat("# pad\n", 200), http.StatusRequestEntityTooLarge},
		{"over line cap", "", c17Bench + "# " + strings.Repeat("x", 300) + "\n", http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		_, resp := submitJob(t, s, tc.params, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	// Nothing was admitted, and rejected submissions left no job dirs.
	if n := s.queue.depth(); n != 0 {
		t.Errorf("queue depth %d after rejected submissions", n)
	}
	entries, _ := os.ReadDir(filepath.Join(s.cfg.DataDir, "jobs"))
	if len(entries) != 0 {
		t.Errorf("%d job dirs persisted for rejected submissions", len(entries))
	}
}

// gateHook blocks the first job it sees until the gate closes (escaping
// via the server's drain context so shutdown tests cannot deadlock) and
// records every job's name in arrival order.
type gateHook struct {
	mu    sync.Mutex
	gate  chan struct{}
	first bool
	order []string
}

func newGateHook() *gateHook {
	return &gateHook{gate: make(chan struct{}), first: true}
}

func (g *gateHook) install(s *Server) {
	s.testHookRun = func(j *job) {
		g.mu.Lock()
		block := g.first
		g.first = false
		g.order = append(g.order, j.meta.Name)
		g.mu.Unlock()
		if block {
			select {
			case <-g.gate:
			case <-s.jobCtx.Done():
			}
		}
	}
}

func (g *gateHook) names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.order...)
}

func TestAdmissionControl(t *testing.T) {
	s := startTestServer(t, func(c *Config) {
		c.QueueCap = 1
		c.RunningSlots = 1
		c.RetryAfter = 7 * time.Second
	})
	hook := newGateHook()
	hook.install(s)

	// First job occupies the single runner (blocked in the hook).
	blocker, _ := submitJob(t, s, "?name=blocker", c17Bench)
	waitJobState(t, s, blocker.ID, StateRunning)

	// Second fills the one queue slot; third must be shed with 429.
	queued, resp := submitJob(t, s, "?name=queued", c17Bench)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second submit status %d", resp.StatusCode)
	}
	shed, resp := submitJob(t, s, "?name=shed", c17Bench)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After %q, want %q", got, "7")
	}
	if shed.ID != "" {
		t.Errorf("shed submission got an ID: %+v", shed)
	}
	// The shed job left nothing behind on disk.
	entries, _ := os.ReadDir(filepath.Join(s.cfg.DataDir, "jobs"))
	if len(entries) != 2 {
		t.Errorf("%d job dirs on disk, want 2", len(entries))
	}

	close(hook.gate)
	waitJobState(t, s, blocker.ID, StateDone)
	waitJobState(t, s, queued.ID, StateDone)

	metrics := scrapeMetrics(t, s)
	if !strings.Contains(metrics, `atpgd_jobs_rejected_total{reason="queue_full"} 1`) {
		t.Error("metrics missing the queue_full rejection")
	}
}

func TestPriorityOrdering(t *testing.T) {
	s := startTestServer(t, func(c *Config) { c.RunningSlots = 1 })
	hook := newGateHook()
	hook.install(s)

	blocker, _ := submitJob(t, s, "?name=blocker", c17Bench)
	waitJobState(t, s, blocker.ID, StateRunning)

	// Submitted worst-first while the runner is pinned; execution must
	// come back priority-then-FIFO.
	low, _ := submitJob(t, s, "?name=low&priority=low", c17Bench)
	norm1, _ := submitJob(t, s, "?name=norm1", c17Bench)
	high, _ := submitJob(t, s, "?name=high&priority=high", c17Bench)
	norm2, _ := submitJob(t, s, "?name=norm2&priority=normal", c17Bench)

	close(hook.gate)
	for _, id := range []string{blocker.ID, low.ID, norm1.ID, high.ID, norm2.ID} {
		waitJobState(t, s, id, StateDone)
	}
	want := []string{"blocker", "high", "norm1", "norm2", "low"}
	got := hook.names()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v", got, want)
	}
}

func TestSSEStream(t *testing.T) {
	s := startTestServer(t, nil)
	meta, _ := submitJob(t, s, "?name=c17", c17Bench)

	resp, err := http.Get("http://" + s.Addr() + "/jobs/" + meta.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	var events []string
	var last progressEvent
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			events = append(events, event)
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
				t.Fatalf("bad event payload %q: %v", line, err)
			}
		}
		if event == "end" && strings.HasPrefix(line, "data: ") {
			goto ended
		}
	}
	t.Fatalf("stream ended without an end event (events: %v, err %v)", events, sc.Err())
ended:
	if events[0] != "progress" {
		t.Fatalf("first event %q, want progress", events[0])
	}
	if last.State != StateDone {
		t.Fatalf("final event state %q, want done", last.State)
	}
	if last.Coverage != 1.0 {
		t.Fatalf("final event coverage %v, want 1.0", last.Coverage)
	}
}

func TestCancelQueuedRunningAndDeleteTerminal(t *testing.T) {
	s := startTestServer(t, func(c *Config) { c.RunningSlots = 1 })
	hook := newGateHook()
	hook.install(s)

	running, _ := submitJob(t, s, "?name=running", c17Bench)
	waitJobState(t, s, running.ID, StateRunning)
	queued, _ := submitJob(t, s, "?name=queued", c17Bench)

	del := func(id string) *http.Response {
		req, _ := http.NewRequest(http.MethodDelete, "http://"+s.Addr()+"/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE %s: %v", id, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// Cancel while queued: immediate terminal state, never runs.
	if resp := del(queued.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE queued: status %d", resp.StatusCode)
	}
	if doc := getJob(t, s, queued.ID); doc.State != StateCanceled {
		t.Fatalf("queued job state %q after cancel", doc.State)
	}

	// Cancel while running: accepted, terminal once the runner notices.
	if resp := del(running.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running: status %d", resp.StatusCode)
	}
	close(hook.gate)
	waitJobState(t, s, running.ID, StateCanceled)

	// Delete terminal: durable state removed, job gone.
	if resp := del(running.ID); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE terminal: status %d", resp.StatusCode)
	}
	resp, _ := http.Get("http://" + s.Addr() + "/jobs/" + running.ID)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET deleted job: status %d, want 404", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(s.cfg.DataDir, "jobs", running.ID)); !os.IsNotExist(err) {
		t.Fatalf("deleted job dir still on disk (err %v)", err)
	}
}

func TestRestartRequeuesPersistedJobs(t *testing.T) {
	dataDir := t.TempDir()
	s1, err := Start(Config{
		Addr: "127.0.0.1:0", DataDir: dataDir, RunningSlots: 1,
		EngineWorkers: 2, ProgressEvery: 2 * time.Millisecond,
		Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	hook := newGateHook()
	hook.install(s1)

	running, _ := submitJob(t, s1, "?name=interrupted", c17Bench)
	waitJobState(t, s1, running.ID, StateRunning)
	queued, _ := submitJob(t, s1, "?name=waiting", c17Bench)

	// Hard stop with one job running and one queued — the moral
	// equivalent of kill -9 for everything persisted.
	s1.Close()

	s2, err := Start(Config{
		Addr: "127.0.0.1:0", DataDir: dataDir, RunningSlots: 1,
		EngineWorkers: 2, ProgressEvery: 2 * time.Millisecond,
		Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Close()
	waitJobState(t, s2, running.ID, StateDone)
	waitJobState(t, s2, queued.ID, StateDone)

	// Both jobs are listed with their original identity.
	resp, err := http.Get("http://" + s2.Addr() + "/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	var metas []JobMeta
	if err := json.NewDecoder(resp.Body).Decode(&metas); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	resp.Body.Close()
	if len(metas) != 2 {
		t.Fatalf("listed %d jobs after restart, want 2", len(metas))
	}
}
