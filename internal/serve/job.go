package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/bench"
	"atpgeasy/internal/blif"
	"atpgeasy/internal/checkpoint"
	"atpgeasy/internal/decomp"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/sat"
)

// Job states. A job is admitted as StateQueued, picked up by a runner
// as StateRunning, and ends in exactly one of the terminal states. A
// daemon killed hard leaves jobs persisted as queued or running; the
// restart scan re-enqueues both — running jobs resume from their
// checkpoint journal, byte-identical to an uninterrupted run.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// dpllMaxConflicts mirrors the CLI's conflict cap so no job's fault can
// search forever even without a wall-clock budget.
const dpllMaxConflicts = 10_000_000

// JobMeta is a job's durable identity and lifecycle record —
// meta.json in the job directory, rewritten atomically on every state
// transition so a crash observes only complete states.
type JobMeta struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	Format   string   `json:"format"` // "bench" or "blif"
	Priority Priority `json:"priority"`
	State    string   `json:"state"`
	// BudgetNS is the optional per-fault SAT budget. It never changes
	// which vectors a detected fault gets (budgets only move faults
	// between decided and aborted), but an aborted-under-budget fault may
	// decide differently on a resumed run with different machine load —
	// submit without a budget when byte-identical crash recovery matters.
	BudgetNS int64 `json:"budget_ns,omitempty"`
	// DeadlineNS bounds one run attempt wall-clock; past it the job fails
	// with a deadline error (its journal survives for inspection).
	DeadlineNS  int64     `json:"deadline_ns,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	Error       string    `json:"error,omitempty"`
}

// JobResult is result.json: the durable outcome of a completed job,
// including the full vector set so clients (and the chaos harness) can
// compare runs bit-for-bit.
type JobResult struct {
	Schema        string   `json:"schema"`
	Circuit       string   `json:"circuit"`
	Faults        int      `json:"faults"`
	Detected      int      `json:"detected"`
	DetectedByRPT int      `json:"detected_by_rpt"`
	Untestable    int      `json:"untestable"`
	Aborted       int      `json:"aborted"`
	Errors        int      `json:"errors"`
	Coverage      float64  `json:"coverage"`
	Vectors       []string `json:"vectors"` // "0101…" over the circuit inputs
	SATTimeNS     int64    `json:"sat_time_ns"`
	WallNS        int64    `json:"wall_ns"`
	Resumed       int      `json:"resumed,omitempty"` // verdicts replayed from the journal
}

// jobResultSchema versions result.json.
const jobResultSchema = "atpgeasy/job-result/v1"

// job is the in-memory side of one submission. meta and progress are
// guarded by mu; the changed channel is closed and replaced on every
// update (a broadcast any number of SSE subscribers can select on).
type job struct {
	dir string

	mu          sync.Mutex
	meta        JobMeta
	progress    atpg.Progress
	hasProgress bool
	result      *JobResult
	changed     chan struct{}
	// userCancel marks a DELETE-initiated cancellation, distinguishing it
	// from a drain (which must leave the job resumable, not canceled).
	userCancel bool
	cancel     context.CancelFunc
	done       chan struct{} // closed when the job reaches a terminal state
}

func newJob(dir string, meta JobMeta) *job {
	return &job{dir: dir, meta: meta, changed: make(chan struct{}), done: make(chan struct{})}
}

// snapshot returns a consistent copy of the job's meta and latest
// progress.
func (j *job) snapshot() (JobMeta, atpg.Progress, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.meta, j.progress, j.hasProgress
}

// changeCh returns the current broadcast channel; it is closed at the
// next update.
func (j *job) changeCh() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.changed
}

// notifyLocked wakes every subscriber. Called with j.mu held.
func (j *job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *job) storeProgress(p atpg.Progress) {
	j.mu.Lock()
	j.progress = p
	j.hasProgress = true
	j.notifyLocked()
	j.mu.Unlock()
}

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// setState transitions the job and persists the new meta atomically.
// Terminal transitions close done exactly once.
func (j *job) setState(state, errMsg string) error {
	j.mu.Lock()
	wasTerminal := terminal(j.meta.State)
	j.meta.State = state
	if errMsg != "" {
		j.meta.Error = errMsg
	}
	switch state {
	case StateRunning:
		j.meta.StartedAt = time.Now().UTC()
	case StateDone, StateFailed, StateCanceled:
		j.meta.FinishedAt = time.Now().UTC()
	}
	meta := j.meta
	j.notifyLocked()
	if terminal(state) && !wasTerminal {
		close(j.done)
	}
	j.mu.Unlock()
	return writeMeta(j.dir, meta)
}

// writeMeta persists meta.json via the tmp+rename idiom, so a crash
// mid-write leaves the previous state readable rather than a torn file.
func writeMeta(dir string, meta JobMeta) error {
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "meta.json.tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "meta.json"))
}

func readMeta(dir string) (JobMeta, error) {
	var meta JobMeta
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return meta, err
	}
	err = json.Unmarshal(data, &meta)
	return meta, err
}

func (j *job) netlistPath() string { return filepath.Join(j.dir, "netlist") }
func (j *job) ckptPath() string    { return filepath.Join(j.dir, "ckpt") }
func (j *job) resultPath() string  { return filepath.Join(j.dir, "result.json") }

// loadResult reads result.json back, caching it on the job.
func (j *job) loadResult() (*JobResult, error) {
	j.mu.Lock()
	if j.result != nil {
		r := j.result
		j.mu.Unlock()
		return r, nil
	}
	j.mu.Unlock()
	data, err := os.ReadFile(j.resultPath())
	if err != nil {
		return nil, err
	}
	var r JobResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	j.mu.Lock()
	j.result = &r
	j.mu.Unlock()
	return &r, nil
}

// jobRunOptions is the fixed deterministic option set every job runs
// with: equivalence + dominance collapsing, the standard random-pattern
// pre-phase, a fixed seed, fault dropping OFF (dropped faults are never
// journaled, so crash resume is byte-identical only without dropping),
// and the region-grouped incremental CDCL core. Only the per-fault
// budget varies per job; it is excluded from the checkpoint fingerprint
// because budgets never change a decided fault's vector.
func jobRunOptions(tel *atpg.Telemetry, budget time.Duration, resume *atpg.ResumeState, journal atpg.JournalSink) atpg.RunOptions {
	return atpg.RunOptions{
		RPTBatches:     atpg.DefaultRPTBatches,
		RPTIdleStop:    atpg.DefaultRPTIdleStop,
		Seed:           1,
		DropDetected:   false,
		Incremental:    true,
		GroupMax:       atpg.DefaultGroupMax,
		PerFaultBudget: budget,
		RetryTiers:     atpg.DefaultRetryTiers,
		RetryBackoff:   atpg.DefaultRetryBackoff,
		Telemetry:      tel,
		Resume:         resume,
		Journal:        journal,
	}
}

// loadJobCircuit parses the job's persisted netlist (behind the same
// caps the submission path used) and prepares the collapsed fault list.
// Deterministic: the same bytes always yield the same circuit and fault
// list, which is what binds a resumed run to its journal.
func (s *Server) loadJobCircuit(j *job) (*logic.Circuit, []atpg.Fault, error) {
	f, err := os.Open(j.netlistPath())
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var c *logic.Circuit
	switch j.meta.Format {
	case "blif":
		c, err = blif.ReadCapped(f, s.cfg.MaxNetlistBytes, s.cfg.MaxNetlistLine)
	default:
		c, err = bench.ReadCapped(f, j.meta.Name, s.cfg.MaxNetlistBytes, s.cfg.MaxNetlistLine)
	}
	if err != nil {
		return nil, nil, err
	}
	if c, err = decomp.Decompose(c, 3); err != nil {
		return nil, nil, err
	}
	faults := atpg.CollapseDominance(c, atpg.Collapse(c, atpg.AllFaults(c)))
	return c, faults, nil
}

// runJob executes one job end to end behind a panic barrier: parse,
// open/resume the journal, run the engine, persist the outcome. A panic
// anywhere — a poisoned netlist that slips past the parser's own
// recover, a bug in the result plumbing — marks only this job failed;
// the runner that called us keeps serving other tenants.
func (s *Server) runJob(parent context.Context, j *job) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("job %s: panic: %v\n%s", j.meta.ID, r, debug.Stack())
			_ = j.setState(StateFailed, fmt.Sprintf("internal panic: %v", r))
			s.jobsCompleted.With(StateFailed).Inc()
		}
	}()
	if err := j.setState(StateRunning, ""); err != nil {
		s.logf("job %s: persist running state: %v", j.meta.ID, err)
	}

	ctx, cancel := context.WithCancel(parent)
	if j.meta.DeadlineNS > 0 {
		ctx, cancel = context.WithTimeout(parent, time.Duration(j.meta.DeadlineNS))
	}
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	if s.testHookRun != nil {
		s.testHookRun(j)
	}

	c, faults, err := s.loadJobCircuit(j)
	if err != nil {
		_ = j.setState(StateFailed, err.Error())
		s.jobsCompleted.With(StateFailed).Inc()
		return
	}

	tel := &atpg.Telemetry{
		Metrics:       s.met,
		ProgressEvery: s.cfg.ProgressEvery,
		OnProgress: func(p atpg.Progress) {
			j.storeProgress(p)
			s.jobProgress.With(j.meta.ID).Set(int64(1000 * p.Coverage()))
		},
	}
	opt := jobRunOptions(tel, time.Duration(j.meta.BudgetNS), nil, nil)
	journal, resume, err := OpenJournal(j.ckptPath(), true, c, faults, opt, checkpoint.Options{})
	if err != nil {
		_ = j.setState(StateFailed, fmt.Sprintf("checkpoint: %v", err))
		s.jobsCompleted.With(StateFailed).Inc()
		return
	}
	opt.Resume = resume
	opt.Journal = journal
	resumed := 0
	if resume != nil {
		resumed = len(resume.Faults)
		if resume.RPT != nil {
			resumed += len(resume.RPT.Detected)
		}
	}

	eng := &atpg.Engine{
		VerifyTests: true,
		Workers:     s.cfg.EngineWorkers,
		Solver:      &sat.DPLL{MaxConflicts: dpllMaxConflicts},
	}
	sum, runErr := eng.RunFaults(ctx, c, faults, opt)

	// The journal must be durable before the job reports any outcome —
	// on every path, including cancellation and engine errors.
	if cerr := journal.Close(); cerr != nil {
		// A sticky journal error degraded the run to uncheckpointed; the
		// in-memory results are still valid, so the job itself proceeds.
		s.logf("job %s: checkpoint journal: %v", j.meta.ID, cerr)
	}

	switch {
	case runErr == nil:
		res := buildResult(sum, resumed)
		if err := writeResult(j, res); err != nil {
			_ = j.setState(StateFailed, fmt.Sprintf("persist result: %v", err))
			s.jobsCompleted.With(StateFailed).Inc()
			return
		}
		_ = j.setState(StateDone, "")
		s.jobsCompleted.With(StateDone).Inc()
	case errors.Is(runErr, context.DeadlineExceeded):
		_ = j.setState(StateFailed, fmt.Sprintf("job deadline (%s) exceeded", time.Duration(j.meta.DeadlineNS)))
		s.jobsCompleted.With(StateFailed).Inc()
	case errors.Is(runErr, context.Canceled):
		j.mu.Lock()
		byUser := j.userCancel
		j.mu.Unlock()
		if byUser {
			_ = j.setState(StateCanceled, "")
			s.jobsCompleted.With(StateCanceled).Inc()
		}
		// Otherwise this is a drain: the job stays persisted as
		// StateRunning with its journal synced, exactly the shape the
		// restart scan resumes from. No terminal transition.
	default:
		_ = j.setState(StateFailed, runErr.Error())
		s.jobsCompleted.With(StateFailed).Inc()
	}
}

// buildResult converts an engine summary into the durable result form.
func buildResult(sum *atpg.Summary, resumed int) *JobResult {
	res := &JobResult{
		Schema:        jobResultSchema,
		Circuit:       sum.Circuit,
		Faults:        sum.Total,
		Detected:      sum.Detected,
		DetectedByRPT: sum.DetectedByRPT,
		Untestable:    sum.Untestable,
		Aborted:       sum.Aborted,
		Errors:        sum.Errors,
		Coverage:      sum.Coverage(),
		Vectors:       make([]string, len(sum.Vectors)),
		SATTimeNS:     sum.Elapsed.Nanoseconds(),
		WallNS:        sum.WallElapsed.Nanoseconds(),
		Resumed:       resumed,
	}
	for i, v := range sum.Vectors {
		res.Vectors[i] = checkpoint.EncodeVector(v)
	}
	return res
}

// writeResult persists result.json (tmp+rename) and caches it.
func writeResult(j *job, res *JobResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	tmp := j.resultPath() + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, j.resultPath()); err != nil {
		return err
	}
	j.mu.Lock()
	j.result = res
	j.mu.Unlock()
	return nil
}
