package serve

import (
	"errors"
	"fmt"
	"sync"
)

// Priority orders jobs in the admission queue. Within a priority the
// queue is FIFO, so equal-priority tenants are served in arrival order.
type Priority int

const (
	PriorityHigh Priority = iota
	PriorityNormal
	PriorityLow
	numPriorities
)

// ParsePriority maps the wire form ("high", "normal", "low"; empty =
// normal) to a Priority.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "high":
		return PriorityHigh, nil
	case "", "normal":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want high, normal or low)", s)
}

func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityLow:
		return "low"
	}
	return "normal"
}

// ErrQueueFull is the admission-control rejection: the queue is at
// capacity and the server sheds the submission (HTTP 429 + Retry-After)
// instead of buffering it unboundedly.
var ErrQueueFull = errors.New("job queue full")

// errQueueClosed wakes blocked poppers during drain.
var errQueueClosed = errors.New("job queue closed")

// jobQueue is the bounded multi-tenant admission queue: one FIFO lane
// per priority under a single capacity shared across lanes, so a flood
// of low-priority work cannot starve the queue of space any more than a
// flood of high-priority work can — the cap is global, the ordering is
// priority-then-FIFO.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lanes  [numPriorities][]*job
	size   int
	cap    int
	closed bool
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits j or rejects it with ErrQueueFull / errQueueClosed.
func (q *jobQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if q.size >= q.cap {
		return ErrQueueFull
	}
	q.lanes[j.meta.Priority] = append(q.lanes[j.meta.Priority], j)
	q.size++
	q.cond.Signal()
	return nil
}

// pop blocks for the next job in priority-then-FIFO order. A closed
// queue stops dispensing immediately — jobs still in the lanes stay
// there (and stay persisted on disk) so a draining daemon never starts
// new work it would only have to interrupt.
func (q *jobQueue) pop() (*job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, errQueueClosed
		}
		for p := range q.lanes {
			if len(q.lanes[p]) > 0 {
				j := q.lanes[p][0]
				q.lanes[p] = q.lanes[p][1:]
				q.size--
				return j, nil
			}
		}
		q.cond.Wait()
	}
}

// remove withdraws a queued job (cancellation before it ran). Reports
// whether the job was found in the queue.
func (q *jobQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for p := range q.lanes {
		for i, j := range q.lanes[p] {
			if j.meta.ID == id {
				q.lanes[p] = append(q.lanes[p][:i:i], q.lanes[p][i+1:]...)
				q.size--
				return true
			}
		}
	}
	return false
}

// depth is the number of queued jobs across all priorities.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// close stops admissions and wakes every blocked pop. Queued jobs stay
// queued (their on-disk state survives for the next start).
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
