package serve

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"atpgeasy/internal/bench"
	"atpgeasy/internal/gen"
)

// genBenchNetlist serializes a random circuit as .bench text — a job
// big enough to be interrupted mid-run but bounded on one core.
func genBenchNetlist(t *testing.T, inputs, gates int, seed int64) string {
	t.Helper()
	c := gen.Random(gen.RandomParams{Inputs: inputs, Gates: gates, Seed: seed})
	var buf bytes.Buffer
	if err := bench.Write(&buf, c); err != nil {
		t.Fatalf("bench.Write: %v", err)
	}
	return buf.String()
}

// pollUntilMidRun waits for the job to have at least minDone SAT-phase
// verdicts (the ones journaled one record at a time) while still
// running — the window where an interruption actually interrupts a
// partially-journaled run.
func pollUntilMidRun(t *testing.T, s *Server, id string, minDone int) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		j := s.jobByID(id)
		if j == nil {
			t.Fatalf("job %s unknown", id)
		}
		meta, p, hasP := j.snapshot()
		if terminal(meta.State) {
			t.Fatalf("job %s finished (%s) before %d verdicts — enlarge the chaos circuit", id, meta.State, minDone)
		}
		if hasP && p.Detected+p.Untestable+p.Aborted >= minDone {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %d verdicts", id, minDone)
}

// TestChaosHardStopMidJobResumesByteIdentical is the core crash-safety
// invariant: a daemon hard-stopped mid-job and restarted on the same
// data dir finishes the job with exactly the vectors an uninterrupted
// run produces — zero lost verdicts, zero divergence.
func TestChaosHardStopMidJobResumesByteIdentical(t *testing.T) {
	netlist := genBenchNetlist(t, 24, 700, 11)

	// Baseline: the uninterrupted run.
	s0 := startTestServer(t, nil)
	m0, _ := submitJob(t, s0, "?name=chaos", netlist)
	base := waitJobState(t, s0, m0.ID, StateDone).Result
	if base == nil || len(base.Vectors) == 0 {
		t.Fatal("baseline run produced no vectors")
	}
	s0.Close()

	// Interrupted: hard-stop the daemon mid-run.
	dataDir := t.TempDir()
	s1 := startTestServer(t, func(c *Config) { c.DataDir = dataDir; c.ProgressEvery = time.Millisecond })
	m1, _ := submitJob(t, s1, "?name=chaos", netlist)
	pollUntilMidRun(t, s1, m1.ID, 3)
	s1.Close()

	// The interrupted job is persisted as running — resumable, not lost.
	meta, err := readMeta(filepath.Join(dataDir, "jobs", m1.ID))
	if err != nil {
		t.Fatalf("read interrupted meta: %v", err)
	}
	if meta.State != StateRunning {
		t.Fatalf("interrupted job persisted as %q, want running", meta.State)
	}

	// Restart on the same data dir: the job resumes and completes.
	s2 := startTestServer(t, func(c *Config) { c.DataDir = dataDir })
	doc := waitJobState(t, s2, m1.ID, StateDone)
	if doc.Result.Resumed == 0 {
		t.Error("resumed run replayed no journaled verdicts")
	}
	if !reflect.DeepEqual(doc.Result.Vectors, base.Vectors) {
		t.Fatalf("resumed vectors diverge from baseline:\n resumed: %d vectors\n baseline: %d vectors",
			len(doc.Result.Vectors), len(base.Vectors))
	}
	for _, cmp := range []struct {
		name      string
		got, want int
	}{
		{"detected", doc.Result.Detected, base.Detected},
		{"untestable", doc.Result.Untestable, base.Untestable},
		{"aborted", doc.Result.Aborted, base.Aborted},
		{"errors", doc.Result.Errors, base.Errors},
	} {
		if cmp.got != cmp.want {
			t.Errorf("resumed %s = %d, baseline %d", cmp.name, cmp.got, cmp.want)
		}
	}
}

// TestChaosPanicIsolation: one poisoned job fails alone; concurrent and
// subsequent jobs on the same runners complete untouched.
func TestChaosPanicIsolation(t *testing.T) {
	s := startTestServer(t, func(c *Config) { c.RunningSlots = 2 })
	s.testHookRun = func(j *job) {
		if strings.Contains(j.meta.Name, "poison") {
			panic("chaos monkey says hello")
		}
	}

	poison, _ := submitJob(t, s, "?name=poison", c17Bench)
	good, _ := submitJob(t, s, "?name=good", c17Bench)
	doc := waitJobState(t, s, poison.ID, StateFailed)
	if !strings.Contains(doc.Error, "internal panic") {
		t.Errorf("poisoned job error %q, want an internal panic", doc.Error)
	}
	waitJobState(t, s, good.ID, StateDone)

	// The runner that absorbed the panic keeps serving.
	later, _ := submitJob(t, s, "?name=later", c17Bench)
	waitJobState(t, s, later.ID, StateDone)

	metrics := scrapeMetrics(t, s)
	if !strings.Contains(metrics, `atpgd_jobs_completed_total{state="failed"} 1`) {
		t.Error("metrics missing the failed job")
	}
	if !strings.Contains(metrics, `atpgd_jobs_completed_total{state="done"} 2`) {
		t.Error("metrics missing the completed jobs")
	}
}

// TestChaosGracefulDrain: SIGTERM semantics. Admissions stop at once,
// a slow SSE reader cannot pin the shutdown, a running job past the
// drain deadline is checkpointed (persisted running, resumable), a
// queued job stays durably queued — and a restart finishes both.
func TestChaosGracefulDrain(t *testing.T) {
	netlist := genBenchNetlist(t, 25, 850, 11)
	dataDir := t.TempDir()
	goroutines0 := runtime.NumGoroutine()

	s := startTestServer(t, func(c *Config) {
		c.DataDir = dataDir
		c.RunningSlots = 1
		c.ProgressEvery = time.Millisecond
		c.SSEHeartbeat = 10 * time.Millisecond
		c.SSEWriteTimeout = 100 * time.Millisecond
	})
	running, _ := submitJob(t, s, "?name=big", netlist)
	pollUntilMidRun(t, s, running.ID, 2)
	queued, _ := submitJob(t, s, "?name=waiting", c17Bench)

	// A slow reader: subscribes to the event stream, then never reads.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	fmt.Fprintf(conn, "GET /jobs/%s/events HTTP/1.1\r\nHost: atpgd\r\n\r\n", running.ID)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// While draining (the runner is still mid-job): readiness flips and
	// submissions are refused — but in-flight work is untouched.
	refuseDeadline := time.Now().Add(time.Second)
	refused := false
	for time.Now().Before(refuseDeadline) && !refused {
		resp, err := http.Get("http://" + s.Addr() + "/readyz")
		if err != nil {
			break // listener already closed: also a refusal
		}
		refused = resp.StatusCode == http.StatusServiceUnavailable
		resp.Body.Close()
		if !refused {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !refused {
		t.Error("/readyz never flipped to 503 during drain")
	}
	if _, resp := submitJob(t, s, "?name=late", c17Bench); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission during drain: status %d, want 503", resp.StatusCode)
	}

	select {
	case err := <-shutdownErr:
		// The big job cannot finish inside the 1s drain window, so the
		// deadline must have forced the checkpoint — and Shutdown still
		// completed promptly instead of hanging on the runner or the
		// stalled SSE reader.
		if err == nil {
			t.Fatal("drain reported clean, but the running job should have outlived the deadline — enlarge the chaos circuit")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Shutdown hung: slow reader or runner pinned the drain")
	}
	conn.Close()

	// Post-drain durable state: the interrupted job is resumable, the
	// queued job still queued.
	if meta, err := readMeta(filepath.Join(dataDir, "jobs", running.ID)); err != nil || meta.State != StateRunning {
		t.Fatalf("interrupted job state %q (err %v), want running", meta.State, err)
	}
	if meta, err := readMeta(filepath.Join(dataDir, "jobs", queued.ID)); err != nil || meta.State != StateQueued {
		t.Fatalf("queued job state %q (err %v), want queued", meta.State, err)
	}

	// No goroutine leaks: everything the daemon spawned has wound down.
	http.DefaultClient.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutines0+3 && time.Now().Before(leakDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutines0+3 {
		t.Errorf("goroutines after drain: %d, started with %d", n, goroutines0)
	}

	// A restart picks up exactly where the drain left off.
	s2 := startTestServer(t, func(c *Config) { c.DataDir = dataDir })
	doc := waitJobState(t, s2, running.ID, StateDone)
	if doc.Result.Resumed == 0 {
		t.Error("drained job did not resume from its checkpoint")
	}
	waitJobState(t, s2, queued.ID, StateDone)
}

// TestChaosDrainCompletesFastJobs: a drain with room to spare lets the
// running job finish normally — done, result persisted, nil error.
func TestChaosDrainCompletesFastJobs(t *testing.T) {
	s := startTestServer(t, nil)
	meta, _ := submitJob(t, s, "?name=c17", c17Bench)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	dmeta, err := readMeta(filepath.Join(s.cfg.DataDir, "jobs", meta.ID))
	if err != nil || dmeta.State != StateDone {
		t.Fatalf("job state %q (err %v) after clean drain, want done", dmeta.State, err)
	}
}
