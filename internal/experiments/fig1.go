package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/fit"
	"atpgeasy/internal/obs"
	"atpgeasy/internal/sat"
	"atpgeasy/internal/stats"
)

// Figure1Point is one SAT instance of the Figure 1 scatter: ATPG-SAT
// instance size (variables) against solve time.
type Figure1Point struct {
	Circuit string
	Fault   string
	Vars    int
	Clauses int
	Time    time.Duration
	Status  atpg.Status
}

// Figure1Result reproduces Figure 1: "Results of TEGUS on ATPG-SAT
// instances". The paper reports ~11,000 instances, some with over 15,000
// variables, over 90% solved in under 10 ms, the remainder growing
// roughly cubically.
type Figure1Result struct {
	Points     []Figure1Point
	Detected   int
	Untestable int
	Aborted    int
	// FracUnder10ms and FracUnder1ms are the fast-instance fractions (the
	// paper's headline is the 10 ms one; 1 ms compensates for 25 years of
	// hardware).
	FracUnder10ms float64
	FracUnder1ms  float64
	P50, P90, P99 time.Duration
	MaxVars       int
	// TimeHist is the log2-bucketed distribution of per-fault solve times
	// (nanoseconds) — the same histogram the engine exports live on
	// /metrics as atpg_fault_solve_ns, and the distribution shape that the
	// Section 3.3 average-time parameterization argues over: almost all
	// mass in the fast buckets with a thin polynomial tail.
	TimeHist obs.HistogramSnapshot
	// Fits are the time-vs-vars least-squares fits, best first; the
	// power-fit exponent is the analogue of the paper's "roughly cubic"
	// tail remark.
	Fits []fit.Curve
}

// Figure1 runs SAT-based ATPG (DPLL solver, the TEGUS stand-in) on every
// collapsed stuck-at fault of both benchmark suites and records per-
// instance solve time against instance size.
func Figure1(cfg Config) (*Figure1Result, error) {
	res := &Figure1Result{}
	eng := &atpg.Engine{Solver: &sat.DPLL{}, VerifyTests: true}
	hist := obs.NewHistogram()
	for _, suiteName := range []string{SuiteMCNC, SuiteISCAS} {
		ncs, err := suite(suiteName, cfg)
		if err != nil {
			return nil, err
		}
		for _, nc := range ncs {
			faults := atpg.Collapse(nc.C, atpg.AllFaults(nc.C))
			max := cfg.MaxFaultsPerCircuit
			if cfg.Quick && max == 0 {
				max = 30
			}
			faults = sampleFaults(faults, max, cfg.Seed+int64(len(res.Points)))
			cfg.progressf("fig1: %s (%d faults)\n", circuitLabel(nc), len(faults))
			for _, f := range faults {
				r, err := eng.TestFault(nc.C, f)
				if err != nil {
					return nil, fmt.Errorf("%s %s: %w", nc.Role, f.Name(nc.C), err)
				}
				switch r.Status {
				case atpg.Detected:
					res.Detected++
				case atpg.Untestable:
					res.Untestable++
				default:
					res.Aborted++
				}
				if r.Vars == 0 {
					continue // trivially untestable, no SAT instance built
				}
				hist.Observe(r.Elapsed.Nanoseconds())
				res.Points = append(res.Points, Figure1Point{
					Circuit: nc.Role,
					Fault:   f.Name(nc.C),
					Vars:    r.Vars,
					Clauses: r.Clauses,
					Time:    r.Elapsed,
					Status:  r.Status,
				})
			}
		}
	}
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("experiments: Figure1 produced no instances")
	}
	times := make([]float64, len(res.Points))
	xs := make([]float64, len(res.Points))
	for i, p := range res.Points {
		times[i] = float64(p.Time.Nanoseconds())
		xs[i] = float64(p.Vars)
		if p.Vars > res.MaxVars {
			res.MaxVars = p.Vars
		}
	}
	res.FracUnder10ms = stats.FractionBelow(times, 10e6)
	res.FracUnder1ms = stats.FractionBelow(times, 1e6)
	res.P50 = time.Duration(stats.Percentile(times, 50))
	res.P90 = time.Duration(stats.Percentile(times, 90))
	res.P99 = time.Duration(stats.Percentile(times, 99))
	res.Fits = fit.Best(xs, times)
	res.TimeHist = hist.Snapshot()
	return res, nil
}

// Render prints the Figure 1 report.
func (r *Figure1Result) Render(w io.Writer) error {
	hr(w, "Figure 1 — SAT solve time vs. ATPG-SAT instance size")
	fmt.Fprintf(w, "instances: %d  (detected %d, untestable %d, aborted %d)\n",
		len(r.Points), r.Detected, r.Untestable, r.Aborted)
	fmt.Fprintf(w, "largest instance: %d variables\n", r.MaxVars)
	fmt.Fprintf(w, "solved under 10 ms: %.1f%%   under 1 ms: %.1f%%   (paper: >90%% under 10 ms)\n",
		100*r.FracUnder10ms, 100*r.FracUnder1ms)
	fmt.Fprintf(w, "time percentiles: p50 %v  p90 %v  p99 %v\n", r.P50, r.P90, r.P99)
	if r.TimeHist.Count > 0 {
		fmt.Fprintf(w, "solve-time histogram (log2 ns buckets; mean %v, hist p50 %v, hist p99 %v):\n",
			time.Duration(r.TimeHist.Mean()),
			time.Duration(r.TimeHist.Quantile(0.50)),
			time.Duration(r.TimeHist.Quantile(0.99)))
		for _, b := range r.TimeHist.Buckets {
			if b.Count == 0 {
				continue
			}
			frac := float64(b.Count) / float64(r.TimeHist.Count)
			fmt.Fprintf(w, "  ≤ %10v  %6d  %5.1f%%  %s\n",
				time.Duration(b.Le), b.Count, 100*frac,
				strings.Repeat("#", 1+int(40*frac)))
		}
	}
	fmt.Fprintln(w, "time-vs-vars fits (best first; the paper's tail grows ~cubically in instance size):")
	for _, c := range r.Fits {
		fmt.Fprintf(w, "  %s\n", c.String())
	}
	xs := make([]float64, len(r.Points))
	ys := make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i] = float64(p.Vars)
		ys[i] = float64(p.Time.Microseconds())
	}
	fmt.Fprint(w, stats.Scatter(xs, ys, 72, 16, "solve time (µs) vs. instance variables"))
	return nil
}

// WriteCSV emits the raw scatter data.
func (r *Figure1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"circuit", "fault", "vars", "clauses", "time_ns", "status"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		rec := []string{
			p.Circuit, p.Fault,
			strconv.Itoa(p.Vars), strconv.Itoa(p.Clauses),
			strconv.FormatInt(p.Time.Nanoseconds(), 10),
			p.Status.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
