package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/core"
	"atpgeasy/internal/fit"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/mla"
	"atpgeasy/internal/partition"
	"atpgeasy/internal/stats"
)

// Figure8Point is one datapoint of Figure 8: per fault ψ, the size of
// C_ψ^sub and its estimated cut-width.
type Figure8Point struct {
	Circuit string
	Fault   string
	SubSize int
	Width   int
}

// Figure8Result reproduces Figure 8(a)/(b) and the Section 5.2.3
// generated-circuit study: the cut-width-vs-size scatter with the three
// least-squares fits; the paper found the logarithmic curve the best fit
// on every suite.
type Figure8Result struct {
	Title    string
	Circuits int
	Points   []Figure8Point
	// Fits are the width-vs-size fits, best (least SSE) first.
	Fits []fit.Curve
	// LogBounded reports whether the logarithmic family won.
	LogBounded bool
	// Bins summarize the scatter as equal-width size buckets.
	Bins []stats.Bin
}

// observableOnly drops faults with no path to a primary output (no
// ATPG-SAT instance exists for them; Figure 1 likewise skips them).
func observableOnly(c *logic.Circuit, faults []atpg.Fault) []atpg.Fault {
	outSet := make(map[int]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		outSet[o] = true
	}
	var out []atpg.Fault
	for _, f := range faults {
		seen := false
		for _, id := range c.TransitiveFanout(f.Net) {
			if outSet[id] {
				seen = true
				break
			}
		}
		if seen {
			out = append(out, f)
		}
	}
	return out
}

// mlaOptions returns the width-estimation configuration: fewer FM
// restarts than the partitioning default keeps the per-fault MLA cheap.
func mlaOptions(seed int64) mla.Options {
	return mla.Options{
		ExactThreshold: 8,
		Partition:      partition.Options{Restarts: 2, MaxPasses: 8, Seed: seed},
	}
}

// Figure8 runs the per-fault cut-width study on a benchmark suite
// (SuiteMCNC reproduces Figure 8(a), SuiteISCAS Figure 8(b)).
func Figure8(cfg Config, suiteName string) (*Figure8Result, error) {
	ncs, err := suite(suiteName, cfg)
	if err != nil {
		return nil, err
	}
	res := &Figure8Result{Title: fmt.Sprintf("Figure 8 — cut-width of C_ψ^sub vs. size (%s suite)", suiteName)}
	res.Circuits = len(ncs)
	max := cfg.MaxFaultsPerCircuit
	if max == 0 {
		if cfg.Quick {
			max = 12
		} else {
			max = 120
		}
	}
	for i, nc := range ncs {
		faults := atpg.Collapse(nc.C, atpg.AllFaults(nc.C))
		faults = sampleFaults(faults, max, cfg.Seed+int64(i))
		cfg.progressf("fig8(%s): %s (%d faults)\n", suiteName, circuitLabel(nc), len(faults))
		faults = observableOnly(nc.C, faults)
		points, err := core.WidthProfile(nc.C, faults, mlaOptions(cfg.Seed+int64(i)))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", nc.Role, err)
		}
		for _, p := range points {
			res.Points = append(res.Points, Figure8Point{
				Circuit: nc.Role,
				Fault:   p.Fault.Name(nc.C),
				SubSize: p.SubSize,
				Width:   p.Width,
			})
		}
	}
	return res, res.finish()
}

// GeneratedStudy reproduces Section 5.2.3: the cut-width study on
// parameterized random circuits scaled to sizes beyond the benchmark
// suites.
func GeneratedStudy(cfg Config) (*Figure8Result, error) {
	sizes := []int{100, 300, 900, 2700, 8000, 20000}
	perSize := 3
	if cfg.Quick {
		sizes = []int{60, 250, 1000, 4000}
		perSize = 2
	}
	res := &Figure8Result{Title: "Section 5.2.3 — cut-width of C_ψ^sub vs. size (generated circuits)"}
	max := cfg.MaxFaultsPerCircuit
	if max == 0 {
		if cfg.Quick {
			max = 8
		} else {
			max = 40
		}
	}
	idx := 0
	for _, size := range sizes {
		for rep := 0; rep < perSize; rep++ {
			idx++
			c := gen.Random(gen.RandomParams{
				Name:   fmt.Sprintf("gen%d_%d", size, rep),
				Inputs: 8 + size/25,
				Gates:  size,
				Seed:   cfg.Seed + int64(idx*977),
			})
			res.Circuits++
			faults := atpg.Collapse(c, atpg.AllFaults(c))
			faults = sampleFaults(faults, max, cfg.Seed+int64(idx))
			faults = observableOnly(c, faults)
			cfg.progressf("gen523: %s (%d faults)\n", c.String(), len(faults))
			points, err := core.WidthProfile(c, faults, mlaOptions(cfg.Seed+int64(idx)))
			if err != nil {
				return nil, err
			}
			for _, p := range points {
				res.Points = append(res.Points, Figure8Point{
					Circuit: c.Name,
					Fault:   p.Fault.Name(c),
					SubSize: p.SubSize,
					Width:   p.Width,
				})
			}
		}
	}
	return res, res.finish()
}

func (r *Figure8Result) finish() error {
	if len(r.Points) < 3 {
		return fmt.Errorf("experiments: %s produced %d points", r.Title, len(r.Points))
	}
	xs := make([]float64, len(r.Points))
	ys := make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i] = float64(p.SubSize)
		ys[i] = float64(p.Width)
	}
	r.Fits = fit.Best(xs, ys)
	cl, err := core.ClassifyWidthGrowth(toFaultWidths(r.Points))
	if err != nil {
		return err
	}
	r.LogBounded = cl.LogBounded
	r.Bins = stats.BinnedMeans(xs, ys, 10)
	return nil
}

func toFaultWidths(points []Figure8Point) []core.FaultWidth {
	out := make([]core.FaultWidth, len(points))
	for i, p := range points {
		out[i] = core.FaultWidth{SubSize: p.SubSize, Width: p.Width}
	}
	return out
}

// Render prints the Figure 8 report.
func (r *Figure8Result) Render(w io.Writer) error {
	hr(w, r.Title)
	fmt.Fprintf(w, "circuits: %d   datapoints: %d\n", r.Circuits, len(r.Points))
	fmt.Fprintln(w, "least-squares fits (best first; the paper reports the log curve winning):")
	for _, c := range r.Fits {
		fmt.Fprintf(w, "  %s\n", c.String())
	}
	fmt.Fprintf(w, "log-bounded-width verdict: %v (log best fit, or sublinear power with the linear fit losing)\n", r.LogBounded)
	fmt.Fprintln(w, "size-binned summary:")
	fmt.Fprintf(w, "  %12s %8s %10s %8s\n", "size range", "count", "mean width", "max")
	for _, b := range r.Bins {
		if b.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %5.0f..%-6.0f %8d %10.2f %8.0f\n", b.XLo, b.XHi, b.Count, b.MeanY, b.MaxY)
	}
	xs := make([]float64, len(r.Points))
	ys := make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i] = float64(p.SubSize)
		ys[i] = float64(p.Width)
	}
	fmt.Fprint(w, stats.Scatter(xs, ys, 72, 14, "cut-width vs. |C_ψ^sub|"))
	return nil
}

// WriteCSV emits the raw scatter data.
func (r *Figure8Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"circuit", "fault", "subsize", "width"}); err != nil {
		return err
	}
	for _, p := range r.Points {
		if err := cw.Write([]string{p.Circuit, p.Fault, strconv.Itoa(p.SubSize), strconv.Itoa(p.Width)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
