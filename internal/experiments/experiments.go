// Package experiments regenerates every quantitative result of "Why is
// ATPG Easy?" on the substitute benchmark suites (see DESIGN.md §3 for
// the substitution rationale):
//
//   - Figure 1  — SAT-solver runtime vs. ATPG-SAT instance size over all
//     collapsed faults of the MCNC91-like and ISCAS85-like suites;
//   - Figures 4–7 — the Section 4 worked example (Formula 4.1, the
//     caching-backtracking run, the cut-width of orderings A and A');
//   - Figure 8(a)/(b) — estimated cut-width of C_ψ^sub vs. subcircuit
//     size per fault, with linear/logarithmic/power least-squares fits;
//   - Section 5.2.3 — the same study on parameterized generated circuits;
//   - Section 3.1/3.3 — polynomial SAT class membership and the
//     average-time parameterization of ATPG-SAT instances;
//   - Section 6 — BDD sizes vs. the Berman/McMillan width bound vs. the
//     cut-width bound;
//   - the DESIGN.md ablations (caching vs. simple backtracking, ordering
//     quality, FM restarts, fault collapsing).
//
// Every experiment returns a structured result with a Render method that
// prints the rows/series the paper reports; cmd/experiments drives them.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"atpgeasy/internal/decomp"
	"atpgeasy/internal/gen"
)

// Config controls experiment scale and reporting.
type Config struct {
	// Quick shrinks the workloads to seconds-scale runs (used by tests);
	// the full runs mirror the paper's instance counts.
	Quick bool
	// Seed drives all sampling; experiments are deterministic per seed.
	Seed int64
	// MaxFaultsPerCircuit caps the per-circuit fault sample for the
	// width studies (0 = experiment default).
	MaxFaultsPerCircuit int
	// Verbose writers get progress lines; nil disables.
	Progress io.Writer
}

func (c Config) progressf(format string, args ...interface{}) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format, args...)
	}
}

// Suite names accepted by the suite-driven experiments.
const (
	SuiteMCNC  = "mcnc91"
	SuiteISCAS = "iscas85"
)

// suite returns the named benchmark suite, already technology-decomposed
// to ≤3-input AND/OR gates (the paper's tech_decomp step). Quick mode
// scales the suites down but keeps representatives of every structural
// family.
func suite(name string, cfg Config) ([]gen.NamedCircuit, error) {
	var ncs []gen.NamedCircuit
	switch name {
	case SuiteMCNC:
		if cfg.Quick {
			ncs = []gen.NamedCircuit{
				{Role: "ripple8", C: gen.RippleAdder(8)},
				{Role: "cla8", C: gen.CarryLookaheadAdder(8)},
				{Role: "mult4", C: gen.ArrayMultiplier(4)},
				{Role: "dec3", C: gen.Decoder(3)},
				{Role: "parity16", C: gen.ParityTree(16)},
				{Role: "mux8", C: gen.MuxTree(3)},
				{Role: "cmp8", C: gen.Comparator(8)},
				{Role: "cell1d_8", C: gen.CellularArray1D(8)},
				{Role: "logic60", C: gen.Random(gen.RandomParams{Name: "logic60", Inputs: 10, Gates: 60, Seed: 1001})},
				{Role: "logic200", C: gen.Random(gen.RandomParams{Name: "logic200", Inputs: 18, Gates: 200, Seed: 1002})},
				// Two larger members so the quick run spans enough size
				// range for the log-vs-linear fit comparison to be
				// meaningful (the full suite spans 20–3000 gates).
				{Role: "logic800", C: gen.Random(gen.RandomParams{Name: "logic800", Inputs: 40, Gates: 800, Seed: 1003})},
				{Role: "logic2000", C: gen.Random(gen.RandomParams{Name: "logic2000", Inputs: 90, Gates: 2000, Seed: 1004})},
			}
		} else {
			ncs = gen.MCNC91Like()
		}
	case SuiteISCAS:
		if cfg.Quick {
			ncs = []gen.NamedCircuit{
				{Role: "c432", C: gen.Random(gen.RandomParams{Name: "c432q", Inputs: 20, Gates: 150, Outputs: 7, Seed: 432})},
				{Role: "c499", C: gen.ParityTree(25)},
				{Role: "c880", C: gen.ALU(8)},
			}
		} else {
			ncs = gen.ISCAS85Like()
		}
	default:
		return nil, fmt.Errorf("experiments: unknown suite %q", name)
	}
	out := make([]gen.NamedCircuit, len(ncs))
	for i, nc := range ncs {
		mapped, err := decomp.Decompose(nc.C, 3)
		if err != nil {
			return nil, fmt.Errorf("decompose %s: %w", nc.Role, err)
		}
		out[i] = gen.NamedCircuit{Role: nc.Role, C: mapped}
	}
	return out, nil
}

// sampleFaults deterministically samples up to max faults (0 = all).
func sampleFaults[T any](faults []T, max int, seed int64) []T {
	if max <= 0 || len(faults) <= max {
		return faults
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(faults))[:max]
	sort.Ints(idx)
	out := make([]T, max)
	for i, j := range idx {
		out[i] = faults[j]
	}
	return out
}

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render(w io.Writer) error
}

// hr prints a section rule.
func hr(w io.Writer, title string) {
	fmt.Fprintf(w, "\n==== %s ====\n", title)
}

// circuitLabel renders "role (name: N gates)".
func circuitLabel(nc gen.NamedCircuit) string {
	return fmt.Sprintf("%-12s %s", nc.Role, nc.C.String())
}
