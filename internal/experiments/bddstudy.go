package experiments

import (
	"fmt"
	"io"
	"math"

	"atpgeasy/internal/bdd"
	"atpgeasy/internal/core"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
)

// BDDRow compares, for one single-output circuit, the actual BDD size
// against the Berman/McMillan directed-width bound and the cut-width
// quantity of this paper.
type BDDRow struct {
	Circuit  string
	Inputs   int
	Nodes    int
	BDDSize  int
	Wf, Wr   int
	McMillan float64
	// CutWidth is the undirected cut-width estimate, and CutBound the
	// paper's backtracking-tree level bound 2^(2·k_fo·W) — a bound on a
	// different quantity (sub-formula count, not BDD size), shown side by
	// side as in the Section 6 discussion.
	CutWidth int
	CutBound float64
}

// BDDStudyResult reproduces the Section 6 comparison.
type BDDStudyResult struct {
	Rows []BDDRow
}

// BDDStudy builds BDDs for a family of single-output circuits under their
// natural input order and tabulates the two width-based bounds.
func BDDStudy(cfg Config) (*BDDStudyResult, error) {
	depth := 4
	if cfg.Quick {
		depth = 3
	}
	circuits := []gen.NamedCircuit{
		{Role: "fig4a", C: logic.Figure4a()},
		{Role: "tree2", C: gen.KaryTree(2, depth)},
		{Role: "parity16", C: gen.ParityTree(16)},
		{Role: "mux8", C: gen.MuxTree(3)},
		{Role: "cmp6-gt", C: singleOutput(gen.Comparator(6), 2)},
		{Role: "ripple8-cout", C: singleOutput(gen.RippleAdder(8), 8)},
	}
	res := &BDDStudyResult{}
	for _, nc := range circuits {
		c := nc.C
		m := bdd.New(len(c.Inputs))
		outs, err := bdd.FromCircuit(m, c, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", nc.Role, err)
		}
		topo := append([]int(nil), c.TopoOrder()...)
		wf, wr, err := bdd.ForwardReverseWidth(c, topo)
		if err != nil {
			return nil, err
		}
		w, _ := core.MultiOutputWidth(c, mlaOptions(cfg.Seed))
		kfo := c.MaxFanout()
		if kfo < 1 {
			kfo = 1
		}
		res.Rows = append(res.Rows, BDDRow{
			Circuit:  nc.Role,
			Inputs:   len(c.Inputs),
			Nodes:    c.NumNodes(),
			BDDSize:  m.Size(outs...),
			Wf:       wf,
			Wr:       wr,
			McMillan: bdd.McMillanBound(len(c.Inputs), wf, wr),
			CutWidth: w,
			CutBound: core.Lemma41Bound(kfo, w),
		})
	}
	return res, nil
}

// singleOutput extracts the cone of output index i as a standalone
// circuit (the Section 6 bounds are stated for single-output circuits).
func singleOutput(c *logic.Circuit, outIdx int) *logic.Circuit {
	sub, err := c.Cone(c.Name+"_o", c.Outputs[outIdx])
	if err != nil {
		panic(err)
	}
	return sub.Circuit
}

// Render prints the Section 6 comparison table.
func (r *BDDStudyResult) Render(w io.Writer) error {
	hr(w, "Section 6 — BDD size vs. width bounds")
	fmt.Fprintf(w, "%-14s %6s %6s %8s %4s %4s %14s %9s %14s\n",
		"circuit", "in", "nodes", "bdd size", "wf", "wr", "n·2^(wf·2^wr)", "cut-width", "2^(2·kfo·W)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %6d %6d %8d %4d %4d %14s %9d %14s\n",
			row.Circuit, row.Inputs, row.Nodes, row.BDDSize, row.Wf, row.Wr,
			sci(row.McMillan), row.CutWidth, sci(row.CutBound))
	}
	fmt.Fprintln(w, "note: the two bounds cap different quantities (BDD nodes vs. distinct consistent")
	fmt.Fprintln(w, "sub-formulas); the cut-width bound is single-exponential in an undirected width,")
	fmt.Fprintln(w, "the Berman/McMillan bound double-exponential in the reverse width (Section 6).")
	return nil
}

func sci(v float64) string {
	if math.IsInf(v, 1) || v >= 1e15 {
		return ">=1e15"
	}
	if v >= 1e6 {
		return fmt.Sprintf("%.2e", v)
	}
	return fmt.Sprintf("%.0f", v)
}

// verifyBDDBound double-checks each row's McMillan bound dominance; used
// by tests.
func (r *BDDStudyResult) verify() error {
	for _, row := range r.Rows {
		if float64(row.BDDSize) > row.McMillan {
			return fmt.Errorf("%s: BDD size %d exceeds McMillan bound %g", row.Circuit, row.BDDSize, row.McMillan)
		}
	}
	return nil
}
