package experiments

import (
	"fmt"
	"io"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/cnf"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/qhorn"
)

// ClassRow is the class membership of one ATPG-SAT instance.
type ClassRow struct {
	Circuit   string
	Fault     string
	Vars      int
	Horn      bool
	TwoCNF    bool
	Renamable bool
	QHorn     qhorn.QHornResult
}

// QHornStudyResult reproduces the Section 3.1 argument: ATPG-SAT
// instances of even simple practical circuits fall outside every known
// polynomial SAT class (Horn, 2-SAT, renamable Horn, q-Horn).
type QHornStudyResult struct {
	Rows []ClassRow
	// AllOutside reports that no instance landed in any easy class.
	AllOutside bool
}

// QHornStudy classifies ATPG-SAT instances from a family of small
// circuits against the polynomial SAT classes.
func QHornStudy(cfg Config) (*QHornStudyResult, error) {
	circuits := []gen.NamedCircuit{
		{Role: "fig4a", C: logic.Figure4a()},
		{Role: "ripple2", C: gen.RippleAdder(2)},
		{Role: "mux4", C: gen.MuxTree(2)},
		{Role: "cmp3", C: gen.Comparator(3)},
		{Role: "dec2", C: gen.Decoder(2)},
	}
	res := &QHornStudyResult{AllOutside: true}
	for i, nc := range circuits {
		faults := atpg.Collapse(nc.C, atpg.AllFaults(nc.C))
		faults = sampleFaults(faults, 6, cfg.Seed+int64(i))
		for _, f := range faults {
			m, err := atpg.NewMiter(nc.C, f)
			if err == atpg.ErrUnobservable {
				continue
			}
			if err != nil {
				return nil, err
			}
			formula, err := m.Encode()
			if err != nil {
				return nil, err
			}
			ren, _ := qhorn.RenamableHorn(formula)
			q, _ := qhorn.IsQHorn(formula, 1<<18)
			row := ClassRow{
				Circuit:   nc.Role,
				Fault:     f.Name(nc.C),
				Vars:      formula.NumVars,
				Horn:      qhorn.IsHorn(formula),
				TwoCNF:    qhorn.Is2CNF(formula),
				Renamable: ren,
				QHorn:     q,
			}
			if row.Horn || row.TwoCNF || row.Renamable || row.QHorn == qhorn.QHorn {
				res.AllOutside = false
			}
			res.Rows = append(res.Rows, row)
		}
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("experiments: QHornStudy produced no instances")
	}
	return res, nil
}

// Render prints the class-membership table.
func (r *QHornStudyResult) Render(w io.Writer) error {
	hr(w, "Section 3.1 — polynomial SAT class membership of ATPG-SAT instances")
	fmt.Fprintf(w, "%-10s %-14s %6s %6s %6s %10s %12s\n", "circuit", "fault", "vars", "horn", "2-cnf", "renamable", "q-horn")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-14s %6d %6v %6v %10v %12v\n",
			row.Circuit, row.Fault, row.Vars, row.Horn, row.TwoCNF, row.Renamable, row.QHorn)
	}
	fmt.Fprintf(w, "every instance outside all easy classes: %v (paper: ATPG-SAT is not q-Horn in general)\n", r.AllOutside)
	return nil
}

// AvgTimeRow is the Purdom–Brown parameterization of one circuit's
// CIRCUIT-SAT formula.
type AvgTimeRow struct {
	Circuit string
	Params  qhorn.AverageTimeParams
	InClass bool
}

// AvgTimeResult reproduces Section 3.3: ATPG-SAT formulas fall in a
// polynomial-average-time class (bounded clause density and clause
// length), though that only suggests — not proves — easiness.
type AvgTimeResult struct {
	Rows  []AvgTimeRow
	AllIn bool
}

// AvgTimeStudy parameterizes the CIRCUIT-SAT formulas of a suite.
func AvgTimeStudy(cfg Config) (*AvgTimeResult, error) {
	ncs, err := suite(SuiteMCNC, cfg)
	if err != nil {
		return nil, err
	}
	res := &AvgTimeResult{AllIn: true}
	for _, nc := range ncs {
		f, err := cnf.FromCircuit(nc.C, nil)
		if err != nil {
			return nil, err
		}
		p := qhorn.Parameterize(f)
		in := p.InPolyAverageClass()
		if !in {
			res.AllIn = false
		}
		res.Rows = append(res.Rows, AvgTimeRow{Circuit: nc.Role, Params: p, InClass: in})
	}
	return res, nil
}

// Render prints the parameterization table.
func (r *AvgTimeResult) Render(w io.Writer) error {
	hr(w, "Section 3.3 — Purdom–Brown average-time parameterization")
	fmt.Fprintf(w, "%-12s %8s %8s %8s %10s %8s\n", "circuit", "vars", "clauses", "avg len", "density", "in class")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %8d %8d %8.2f %10.2f %8v\n",
			row.Circuit, row.Params.Vars, row.Params.Clauses,
			row.Params.AvgClauseLen, row.Params.ClauseDensity, row.InClass)
	}
	fmt.Fprintf(w, "all formulas in the polynomial-average-time regime: %v\n", r.AllIn)
	return nil
}
