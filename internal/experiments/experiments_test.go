package experiments

import (
	"strings"
	"testing"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/fit"
)

func quickCfg() Config { return Config{Quick: true, Seed: 7} }

func TestSuites(t *testing.T) {
	for _, name := range []string{SuiteMCNC, SuiteISCAS} {
		ncs, err := suite(name, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if len(ncs) == 0 {
			t.Fatalf("%s: empty suite", name)
		}
		for _, nc := range ncs {
			// The decomposition contract the paper requires: ≤3-input gates.
			if got := nc.C.MaxFanin(); got > 3 {
				t.Errorf("%s/%s: max fanin %d after decomposition", name, nc.Role, got)
			}
		}
	}
	if _, err := suite("nope", quickCfg()); err == nil {
		t.Error("unknown suite accepted")
	}
}

func TestSampleFaults(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5, 6}
	if got := sampleFaults(xs, 0, 1); len(got) != 6 {
		t.Errorf("max 0 should keep all, got %d", len(got))
	}
	got := sampleFaults(xs, 3, 1)
	if len(got) != 3 {
		t.Fatalf("sampled %d", len(got))
	}
	again := sampleFaults(xs, 3, 1)
	for i := range got {
		if got[i] != again[i] {
			t.Error("sampling not deterministic")
		}
	}
}

func TestFigure1Quick(t *testing.T) {
	cfg := quickCfg()
	cfg.MaxFaultsPerCircuit = 10
	res, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 50 {
		t.Fatalf("only %d points", len(res.Points))
	}
	if res.Aborted != 0 {
		t.Errorf("%d aborted instances", res.Aborted)
	}
	// The headline claim: the overwhelming majority of instances solve
	// fast. On modern hardware and quick-mode sizes everything is fast.
	if res.FracUnder10ms < 0.9 {
		t.Errorf("only %.0f%% under 10 ms", 100*res.FracUnder10ms)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "instances:", "under 10 ms"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != len(res.Points)+1 {
		t.Errorf("CSV has %d lines for %d points", lines, len(res.Points))
	}
}

func TestFigure8Quick(t *testing.T) {
	cfg := quickCfg()
	cfg.MaxFaultsPerCircuit = 6
	res, err := Figure8(cfg, SuiteMCNC)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 20 {
		t.Fatalf("only %d points", len(res.Points))
	}
	if len(res.Fits) != 3 {
		t.Fatalf("fits = %d", len(res.Fits))
	}
	// The reproduction target: width grows sublinearly — the winning fit
	// is logarithmic or a small-exponent power curve, never linear.
	best := res.Fits[0]
	if best.Kind == fit.Linear {
		t.Errorf("best fit is linear: %v", res.Fits)
	}
	if best.Kind == fit.Power && best.B > 0.8 {
		t.Errorf("power fit exponent %.2f too large for log-bounded-width", best.B)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "least-squares fits") {
		t.Error("render incomplete")
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedStudyQuick(t *testing.T) {
	cfg := quickCfg()
	res, err := GeneratedStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuits != 8 {
		t.Errorf("circuits = %d", res.Circuits)
	}
	if res.Fits[0].Kind == fit.Linear {
		t.Errorf("generated circuits: best fit linear")
	}
}

func TestWorkedExample(t *testing.T) {
	res, err := WorkedExample(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.WidthA != 3 {
		t.Errorf("W(C,A) = %d, want 3 (Figure 6)", res.WidthA)
	}
	if res.WidthBadB <= res.WidthA {
		t.Errorf("bad ordering width %d not worse than A's %d", res.WidthBadB, res.WidthA)
	}
	if res.WidthMin > 3 || res.WidthMin < 2 {
		t.Errorf("W_min = %d", res.WidthMin)
	}
	if res.MiterWidth > res.MiterBound {
		t.Errorf("miter width %d exceeds 2W+2 = %d", res.MiterWidth, res.MiterBound)
	}
	if res.ATPGStatus != atpg.Detected {
		t.Errorf("f/1 should be detected, got %v", res.ATPGStatus)
	}
	if !strings.Contains(res.Formula, "(i)") {
		t.Errorf("formula missing output clause: %s", res.Formula)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Formula 4.1") {
		t.Error("render incomplete")
	}
}

func TestQHornStudy(t *testing.T) {
	res, err := QHornStudy(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllOutside {
		t.Error("some ATPG-SAT instance fell into an easy class; the Section 3.1 claim should hold on these circuits")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "q-horn") {
		t.Error("render incomplete")
	}
}

func TestAvgTimeStudy(t *testing.T) {
	res, err := AvgTimeStudy(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllIn {
		t.Error("some CIRCUIT-SAT formula outside the poly-average regime; bounded-fanin netlists should all be inside")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestBDDStudy(t *testing.T) {
	res, err := BDDStudy(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.verify(); err != nil {
		t.Error(err)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "McMillan") && !strings.Contains(sb.String(), "2^(wf") {
		t.Error("render incomplete")
	}
}

func TestCachingAblation(t *testing.T) {
	res, err := CachingAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.CachingAborted && !row.SimpleAborted && row.CachingNodesMLA > row.SimpleNodesMLA {
			t.Errorf("%s: caching (%d) visited more nodes than simple (%d)",
				row.Circuit, row.CachingNodesMLA, row.SimpleNodesMLA)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestCollapsingAblation(t *testing.T) {
	res, err := CollapsingAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// XOR-only circuits (parity trees) admit no structural collapsing.
		if row.Circuit != "parity16" && row.AfterCollapse >= row.TotalFaults {
			t.Errorf("%s: collapsing did not reduce (%d → %d)", row.Circuit, row.TotalFaults, row.AfterCollapse)
		}
		if row.SolverCalls > row.AfterCollapse {
			t.Errorf("%s: more solver calls than faults", row.Circuit)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
}
