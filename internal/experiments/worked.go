package experiments

import (
	"fmt"
	"io"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/cnf"
	"atpgeasy/internal/core"
	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/logic"
	"atpgeasy/internal/mla"
	"atpgeasy/internal/sat"
)

// WorkedResult reproduces the Section 4 worked example: Formula 4.1
// (Figure 4(a)), the caching-backtracking run under ordering A (Figure
// 5), the cut profile of orderings A and a bad ordering (Figure 6), and
// the derived miter ordering A' for the stuck-at-1 fault on f (Figures
// 4(b) and 7).
type WorkedResult struct {
	Formula      string
	CachingStats sat.Stats
	SimpleStats  sat.Stats
	SatStatus    sat.Status
	TestVector   []bool

	ProfileA  []int
	WidthA    int
	WidthBadB int
	WidthMin  int

	MiterWidth  int
	MiterBound  int
	ATPGStatus  atpg.Status
	ATPGVector  []bool
	NotQHornRef bool
}

// WorkedExample runs the Section 4 walkthrough end to end.
func WorkedExample(cfg Config) (*WorkedResult, error) {
	c := logic.Figure4a()
	f, err := cnf.FromCircuit(c, nil)
	if err != nil {
		return nil, err
	}
	res := &WorkedResult{}
	var sb []byte
	for i, cl := range f.Clauses {
		if i > 0 {
			sb = append(sb, ' ')
		}
		sb = append(sb, f.PrettyClause(cl)...)
	}
	res.Formula = string(sb)

	orderA := logic.Figure4aOrderingA(c)
	cSol := (&sat.Caching{Order: orderA}).Solve(f)
	sSol := (&sat.Simple{Order: orderA}).Solve(f)
	res.CachingStats = cSol.Stats
	res.SimpleStats = sSol.Stats
	res.SatStatus = cSol.Status
	if cSol.Status == sat.Sat {
		res.TestVector = make([]bool, len(c.Inputs))
		for i, in := range c.Inputs {
			res.TestVector[i] = cSol.Model[in]
		}
	}

	g := hypergraph.FromCircuit(c)
	res.ProfileA, err = g.CutProfile(orderA)
	if err != nil {
		return nil, err
	}
	res.WidthA, _ = g.CutWidth(orderA)
	// Ordering B of Figure 6: a deliberately interleaved bad ordering.
	badB := []int{
		c.MustLookup("a"), c.MustLookup("d"), c.MustLookup("f"),
		c.MustLookup("g"), c.MustLookup("b"), c.MustLookup("e"),
		c.MustLookup("h"), c.MustLookup("c"), c.MustLookup("i"),
	}
	res.WidthBadB, _ = g.CutWidth(badB)
	_, res.WidthMin, err = mla.ExactOrder(g)
	if err != nil {
		return nil, err
	}

	fault := atpg.Fault{Net: c.MustLookup("f"), StuckAt: true}
	m, err := atpg.NewMiter(c, fault)
	if err != nil {
		return nil, err
	}
	mOrder, err := core.MiterOrdering(m, orderA)
	if err != nil {
		return nil, err
	}
	gm := hypergraph.FromCircuit(m.Circuit)
	res.MiterWidth, err = gm.CutWidth(mOrder)
	if err != nil {
		return nil, err
	}
	res.MiterBound = core.Lemma42Bound(res.WidthA)

	eng := &atpg.Engine{VerifyTests: true}
	ar, err := eng.TestFault(c, fault)
	if err != nil {
		return nil, err
	}
	res.ATPGStatus = ar.Status
	res.ATPGVector = ar.Vector
	return res, nil
}

// Render prints the worked-example report.
func (r *WorkedResult) Render(w io.Writer) error {
	hr(w, "Figures 4–7 — the Section 4 worked example")
	fmt.Fprintf(w, "Formula 4.1 from the Figure 4(a) circuit:\n  %s\n", r.Formula)
	fmt.Fprintf(w, "CIRCUIT-SAT under ordering A = b,c,f,a,h,d,e,g,i: %v\n", r.SatStatus)
	fmt.Fprintf(w, "  caching backtracking (Algorithm 1): %d nodes, %d cache hits, %d cached sub-formulas\n",
		r.CachingStats.Nodes, r.CachingStats.CacheHits, r.CachingStats.CacheEntries)
	fmt.Fprintf(w, "  simple backtracking:                %d nodes\n", r.SimpleStats.Nodes)
	if r.TestVector != nil {
		fmt.Fprintf(w, "  satisfying input vector (a,b,c,d,e): %v\n", r.TestVector)
	}
	fmt.Fprintf(w, "Figure 6: cut profile under A = %v → W(C,A) = %d; interleaved ordering W = %d; exact W_min = %d\n",
		r.ProfileA, r.WidthA, r.WidthBadB, r.WidthMin)
	fmt.Fprintf(w, "Figure 7: miter ordering A' gives W(C_ψ^ATPG, A') = %d ≤ 2·W+2 = %d (paper reports 4)\n",
		r.MiterWidth, r.MiterBound)
	fmt.Fprintf(w, "ATPG for f stuck-at-1: %v", r.ATPGStatus)
	if r.ATPGVector != nil {
		fmt.Fprintf(w, ", test vector (a,b,c,d,e) = %v", r.ATPGVector)
	}
	fmt.Fprintln(w)
	return nil
}
