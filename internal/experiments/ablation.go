package experiments

import (
	"context"
	"fmt"
	"io"

	"atpgeasy/internal/atpg"
	"atpgeasy/internal/gen"
	"atpgeasy/internal/hypergraph"
	"atpgeasy/internal/mla"
	"atpgeasy/internal/partition"
	"atpgeasy/internal/sat"
)

// AblationRow compares solver effort on one CIRCUIT-SAT instance under
// the design choices DESIGN.md calls out: the sub-formula cache and the
// quality of the static variable ordering.
type AblationRow struct {
	Circuit string
	Vars    int
	Width   int // cut-width of the MLA ordering

	CachingNodesMLA  int64 // Algorithm 1 under the MLA ordering
	SimpleNodesMLA   int64 // no cache, same ordering
	CachingNodesTopo int64 // Algorithm 1 under a plain topological ordering
	CachingAborted   bool
	SimpleAborted    bool
}

// AblationResult is the caching/ordering ablation study.
type AblationResult struct {
	Rows []AblationRow
}

// CachingAblation measures how much of the paper's mechanism each piece
// buys: the sub-formula cache (caching vs. simple backtracking) and the
// low-cut-width ordering (MLA vs. topological) on CIRCUIT-SAT instances
// from structured circuits.
func CachingAblation(cfg Config) (*AblationResult, error) {
	circuits := []gen.NamedCircuit{
		{Role: "parity12", C: gen.ParityTree(12)},
		{Role: "ripple5", C: gen.RippleAdder(5)},
		{Role: "tree2d4", C: gen.KaryTree(2, 4)},
		{Role: "cell1d6", C: gen.CellularArray1D(6)},
		{Role: "mux8", C: gen.MuxTree(3)},
	}
	if cfg.Quick {
		circuits = circuits[:3]
	}
	const limit = 2_000_000
	res := &AblationResult{}
	for _, nc := range circuits {
		// Make each instance a decision problem that exercises search:
		// CIRCUIT-SAT on the ATPG miter of the first collapsed fault.
		faults := atpg.Collapse(nc.C, atpg.AllFaults(nc.C))
		m, err := atpg.NewMiter(nc.C, faults[len(faults)/2])
		if err != nil {
			return nil, err
		}
		f, err := m.Encode()
		if err != nil {
			return nil, err
		}
		g := hypergraph.FromCircuit(m.Circuit)
		w, order := mla.EstimateCutWidth(g, mla.Options{Partition: partition.Options{Seed: cfg.Seed}})
		topo := m.Circuit.TopoOrder()

		cachingMLA := (&sat.Caching{Order: order, MaxNodes: limit}).Solve(f)
		simpleMLA := (&sat.Simple{Order: order, MaxNodes: limit}).Solve(f)
		cachingTopo := (&sat.Caching{Order: append([]int(nil), topo...), MaxNodes: limit}).Solve(f)
		res.Rows = append(res.Rows, AblationRow{
			Circuit:          nc.Role,
			Vars:             f.NumVars,
			Width:            w,
			CachingNodesMLA:  cachingMLA.Stats.Nodes,
			SimpleNodesMLA:   simpleMLA.Stats.Nodes,
			CachingNodesTopo: cachingTopo.Stats.Nodes,
			CachingAborted:   cachingMLA.Status == sat.Unknown,
			SimpleAborted:    simpleMLA.Status == sat.Unknown,
		})
	}
	return res, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render(w io.Writer) error {
	hr(w, "Ablation — sub-formula cache and ordering quality (backtracking nodes)")
	fmt.Fprintf(w, "%-10s %6s %6s %14s %14s %16s\n",
		"circuit", "vars", "width", "caching(MLA)", "simple(MLA)", "caching(topo)")
	for _, row := range r.Rows {
		mark := func(n int64, ab bool) string {
			if ab {
				return fmt.Sprintf(">%d", n-1)
			}
			return fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(w, "%-10s %6d %6d %14s %14s %16d\n",
			row.Circuit, row.Vars, row.Width,
			mark(row.CachingNodesMLA, row.CachingAborted),
			mark(row.SimpleNodesMLA, row.SimpleAborted),
			row.CachingNodesTopo)
	}
	fmt.Fprintln(w, "the cache is what turns the cut-width bound into a runtime bound; a bad ordering")
	fmt.Fprintln(w, "inflates the distinct-sub-formula count even with the cache (Theorem 4.1).")
	return nil
}

// CollapsingRow compares the ATPG workload with and without fault
// collapsing and vector compaction.
type CollapsingRow struct {
	Circuit       string
	TotalFaults   int
	AfterCollapse int
	SolverCalls   int
	Dropped       int
	Vectors       int
}

// CollapsingResult is the fault-collapsing/compaction ablation.
type CollapsingResult struct {
	Rows []CollapsingRow
}

// CollapsingAblation measures the instance-count reduction from
// structural fault collapsing plus fault-simulation-based dropping in the
// Figure 1 workload.
func CollapsingAblation(cfg Config) (*CollapsingResult, error) {
	circuits := []gen.NamedCircuit{
		{Role: "ripple8", C: gen.RippleAdder(8)},
		{Role: "alu4", C: gen.ALU(4)},
		{Role: "parity16", C: gen.ParityTree(16)},
	}
	if !cfg.Quick {
		circuits = append(circuits,
			gen.NamedCircuit{Role: "mult4", C: gen.ArrayMultiplier(4)},
			gen.NamedCircuit{Role: "cla16", C: gen.CarryLookaheadAdder(16)},
		)
	}
	res := &CollapsingResult{}
	eng := &atpg.Engine{VerifyTests: true}
	for _, nc := range circuits {
		all := atpg.AllFaults(nc.C)
		collapsed := atpg.Collapse(nc.C, all)
		sum, err := eng.RunFaults(context.Background(), nc.C, collapsed, atpg.RunOptions{DropDetected: true})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, CollapsingRow{
			Circuit:       nc.Role,
			TotalFaults:   len(all),
			AfterCollapse: len(collapsed),
			SolverCalls:   len(sum.Results),
			Dropped:       sum.DroppedByFaultSim,
			Vectors:       len(sum.Vectors),
		})
	}
	return res, nil
}

// Render prints the collapsing table.
func (r *CollapsingResult) Render(w io.Writer) error {
	hr(w, "Ablation — fault collapsing and fault-simulation dropping")
	fmt.Fprintf(w, "%-10s %10s %12s %12s %10s %9s\n",
		"circuit", "faults", "collapsed", "solver calls", "dropped", "vectors")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %10d %12d %12d %10d %9d\n",
			row.Circuit, row.TotalFaults, row.AfterCollapse, row.SolverCalls, row.Dropped, row.Vectors)
	}
	return nil
}
