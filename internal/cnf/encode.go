package cnf

import (
	"fmt"

	"atpgeasy/internal/logic"
)

// maxXorFanin bounds the fanin of XOR/XNOR gates we encode directly; a
// k-input parity gate needs 2^k clauses when the formula must keep one
// variable per net. Technology decomposition (package decomp) keeps real
// netlists well under this.
const maxXorFanin = 8

// GateClauses returns the consistency clauses for one gate, following
// Figure 2 of the paper. The gate's output variable is out; in[i] is the
// literal feeding gate input i (already carrying any input inversion).
//
//	AND z:  (l_i + ~z) for each i is wrong way round — the clause set is
//	        (~z + l_i) for each input i, plus (z + ~l_1 + ... + ~l_k).
//	OR  z:  (z + ~l_i) for each i, plus (~z + l_1 + ... + l_k).
//
// NAND/NOR are AND/OR with the output literal complemented; BUF/NOT are the
// two-clause equivalence; XOR/XNOR enumerate the parity-violating rows.
func GateClauses(t logic.GateType, out int, in []Lit) ([]Clause, error) {
	z := NewLit(out, false)
	nz := z.Not()
	switch t {
	case logic.Buf, logic.Not:
		l := in[0]
		if t == logic.Not {
			l = l.Not()
		}
		return []Clause{{nz, l}, {z, l.Not()}}, nil
	case logic.And, logic.Nand:
		if t == logic.Nand {
			z, nz = nz, z
		}
		clauses := make([]Clause, 0, len(in)+1)
		long := make(Clause, 0, len(in)+1)
		for _, l := range in {
			clauses = append(clauses, Clause{nz, l})
			long = append(long, l.Not())
		}
		long = append(long, z)
		return append(clauses, long), nil
	case logic.Or, logic.Nor:
		if t == logic.Nor {
			z, nz = nz, z
		}
		clauses := make([]Clause, 0, len(in)+1)
		long := make(Clause, 0, len(in)+1)
		for _, l := range in {
			clauses = append(clauses, Clause{z, l.Not()})
			long = append(long, l)
		}
		long = append(long, nz)
		return append(clauses, long), nil
	case logic.Xor, logic.Xnor:
		k := len(in)
		if k > maxXorFanin {
			return nil, fmt.Errorf("cnf: %d-input %s gate exceeds direct-encoding limit %d (run decomp first)", k, t, maxXorFanin)
		}
		want := t == logic.Xor
		var clauses []Clause
		// For every input combination, the row's clause forbids the wrong
		// output value: if parity(row) == want-parity the output must be 1.
		for row := 0; row < 1<<uint(k); row++ {
			parity := false
			cl := make(Clause, 0, k+1)
			for i := 0; i < k; i++ {
				bit := row>>uint(i)&1 == 1
				if bit {
					parity = !parity
				}
				// Literal that is false exactly on this row.
				lit := in[i]
				if bit {
					lit = lit.Not()
				}
				cl = append(cl, lit)
			}
			outVal := parity == want
			if outVal {
				cl = append(cl, z)
			} else {
				cl = append(cl, nz)
			}
			clauses = append(clauses, cl)
		}
		return clauses, nil
	default:
		return nil, fmt.Errorf("cnf: no clause encoding for %s", t)
	}
}

// FromCircuit builds the CIRCUIT-SAT formula f(C) of Section 2: one
// variable per net (variable index = node ID), Figure 2 clauses for each
// gate, unit clauses for constant drivers, and one clause asserting that at
// least one primary output is 1.
//
// ForcedNets optionally asserts nets to fixed values (unit clauses) — used
// by the ATPG encoding to activate the fault site. Passing nil forces
// nothing.
func FromCircuit(c *logic.Circuit, forced map[int]bool) (*Formula, error) {
	f := NewFormula(c.NumNodes())
	f.VarNames = make([]string, c.NumNodes())
	for i := range c.Nodes {
		f.VarNames[i] = c.Nodes[i].Name
	}
	for id := range c.Nodes {
		n := &c.Nodes[id]
		if _, isForced := forced[id]; isForced {
			continue // the forced value replaces the gate function
		}
		switch n.Type {
		case logic.Input:
			// free variable, no clauses
		case logic.Const0:
			f.AddClause(NewLit(id, true))
		case logic.Const1:
			f.AddClause(NewLit(id, false))
		default:
			in := make([]Lit, len(n.Fanin))
			for i, fi := range n.Fanin {
				in[i] = NewLit(fi, n.Negated(i))
			}
			clauses, err := GateClauses(n.Type, id, in)
			if err != nil {
				return nil, fmt.Errorf("gate %q: %w", n.Name, err)
			}
			f.Clauses = append(f.Clauses, clauses...)
		}
	}
	for id, v := range forced {
		f.AddClause(NewLit(id, !v))
	}
	if len(c.Outputs) > 0 {
		out := make(Clause, len(c.Outputs))
		for i, o := range c.Outputs {
			out[i] = NewLit(o, false)
		}
		f.AddClause(out...)
	}
	return f, nil
}

// FromCircuitConsistency builds only the gate-consistency clauses (no
// output-asserting clause): the characteristic function of the circuit's
// legal net-value combinations. Useful for counting distinct consistent
// sub-formulas and for equivalence checking harnesses.
func FromCircuitConsistency(c *logic.Circuit) (*Formula, error) {
	f, err := FromCircuit(c, nil)
	if err != nil {
		return nil, err
	}
	if len(c.Outputs) > 0 {
		f.Clauses = f.Clauses[:len(f.Clauses)-1]
	}
	return f, nil
}
