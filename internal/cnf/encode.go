package cnf

import (
	"fmt"

	"atpgeasy/internal/logic"
)

// maxXorFanin bounds the fanin of XOR/XNOR gates we encode directly; a
// k-input parity gate needs 2^k clauses when the formula must keep one
// variable per net. Technology decomposition (package decomp) keeps real
// netlists well under this.
const maxXorFanin = 8

// clauseWriter accumulates clauses in one shared literal slab so an
// encoder can be reused across many formulas without allocating a slice
// per clause. Clause boundaries are tracked as slab offsets and only
// materialized into []Clause views at the end (the slab may reallocate
// while clauses are still being appended, so views cannot be taken
// earlier).
type clauseWriter struct {
	slab []Lit
	ends []int32 // slab offset one past each clause's last literal
}

func (w *clauseWriter) reset() {
	w.slab = w.slab[:0]
	w.ends = w.ends[:0]
}

// add appends one complete clause.
func (w *clauseWriter) add(lits ...Lit) {
	w.slab = append(w.slab, lits...)
	w.ends = append(w.ends, int32(len(w.slab)))
}

// push/end build a clause literal by literal (for the long gate clauses).
func (w *clauseWriter) push(l Lit) { w.slab = append(w.slab, l) }
func (w *clauseWriter) end()       { w.ends = append(w.ends, int32(len(w.slab))) }

// clauses appends views over the slab to dst, one per collected clause.
// The views use full slice expressions so a later append to one clause
// copies instead of clobbering its neighbor.
func (w *clauseWriter) clauses(dst []Clause) []Clause {
	start := int32(0)
	for _, e := range w.ends {
		dst = append(dst, Clause(w.slab[start:e:e]))
		start = e
	}
	return dst
}

// emitGate appends the Figure 2 consistency clauses for one gate. See
// GateClauses for the clause sets.
func (w *clauseWriter) emitGate(t logic.GateType, out int, in []Lit) error {
	z := NewLit(out, false)
	nz := z.Not()
	switch t {
	case logic.Buf, logic.Not:
		l := in[0]
		if t == logic.Not {
			l = l.Not()
		}
		w.add(nz, l)
		w.add(z, l.Not())
	case logic.And, logic.Nand:
		if t == logic.Nand {
			z, nz = nz, z
		}
		for _, l := range in {
			w.add(nz, l)
		}
		for _, l := range in {
			w.push(l.Not())
		}
		w.push(z)
		w.end()
	case logic.Or, logic.Nor:
		if t == logic.Nor {
			z, nz = nz, z
		}
		for _, l := range in {
			w.add(z, l.Not())
		}
		for _, l := range in {
			w.push(l)
		}
		w.push(nz)
		w.end()
	case logic.Xor, logic.Xnor:
		k := len(in)
		if k > maxXorFanin {
			return fmt.Errorf("cnf: %d-input %s gate exceeds direct-encoding limit %d (run decomp first)", k, t, maxXorFanin)
		}
		want := t == logic.Xor
		// For every input combination, the row's clause forbids the wrong
		// output value: if parity(row) == want-parity the output must be 1.
		for row := 0; row < 1<<uint(k); row++ {
			parity := false
			for i := 0; i < k; i++ {
				bit := row>>uint(i)&1 == 1
				if bit {
					parity = !parity
				}
				// Literal that is false exactly on this row.
				lit := in[i]
				if bit {
					lit = lit.Not()
				}
				w.push(lit)
			}
			if parity == want {
				w.push(z)
			} else {
				w.push(nz)
			}
			w.end()
		}
	default:
		return fmt.Errorf("cnf: no clause encoding for %s", t)
	}
	return nil
}

// GateClauses returns the consistency clauses for one gate, following
// Figure 2 of the paper. The gate's output variable is out; in[i] is the
// literal feeding gate input i (already carrying any input inversion).
//
//	AND z:  (~z + l_i) for each input i, plus (z + ~l_1 + ... + ~l_k).
//	OR  z:  (z + ~l_i) for each i, plus (~z + l_1 + ... + l_k).
//
// NAND/NOR are AND/OR with the output literal complemented; BUF/NOT are the
// two-clause equivalence; XOR/XNOR enumerate the parity-violating rows.
func GateClauses(t logic.GateType, out int, in []Lit) ([]Clause, error) {
	var w clauseWriter
	if err := w.emitGate(t, out, in); err != nil {
		return nil, err
	}
	return w.clauses(nil), nil
}

// Encoder builds CIRCUIT-SAT formulas with reusable buffers, amortizing
// the per-clause and per-gate allocations of FromCircuit across the
// thousands of fault instances an ATPG worker encodes. The zero value is
// ready to use. An Encoder must not be used concurrently, and the
// *Formula returned by Encode (including its clauses and names) aliases
// the encoder's buffers: it is valid only until the next Encode call;
// callers needing to keep it must Clone it.
type Encoder struct {
	w       clauseWriter
	f       Formula
	clauses []Clause
	names   []string
	in      []Lit
}

// Encode is FromCircuit with buffer reuse; see the Encoder doc for the
// result's lifetime.
func (e *Encoder) Encode(c *logic.Circuit, forced map[int]bool) (*Formula, error) {
	e.w.reset()
	e.names = e.names[:0]
	for i := range c.Nodes {
		e.names = append(e.names, c.Nodes[i].Name)
	}
	for id := range c.Nodes {
		n := &c.Nodes[id]
		if _, isForced := forced[id]; isForced {
			continue // the forced value replaces the gate function
		}
		switch n.Type {
		case logic.Input:
			// free variable, no clauses
		case logic.Const0:
			e.w.add(NewLit(id, true))
		case logic.Const1:
			e.w.add(NewLit(id, false))
		default:
			e.in = e.in[:0]
			for i, fi := range n.Fanin {
				e.in = append(e.in, NewLit(fi, n.Negated(i)))
			}
			if err := e.w.emitGate(n.Type, id, e.in); err != nil {
				return nil, fmt.Errorf("gate %q: %w", n.Name, err)
			}
		}
	}
	for id, v := range forced {
		e.w.add(NewLit(id, !v))
	}
	if len(c.Outputs) > 0 {
		for _, o := range c.Outputs {
			e.w.push(NewLit(o, false))
		}
		e.w.end()
	}
	e.clauses = e.w.clauses(e.clauses[:0])
	e.f = Formula{NumVars: c.NumNodes(), Clauses: e.clauses, VarNames: e.names}
	return &e.f, nil
}

// FromCircuit builds the CIRCUIT-SAT formula f(C) of Section 2: one
// variable per net (variable index = node ID), Figure 2 clauses for each
// gate, unit clauses for constant drivers, and one clause asserting that at
// least one primary output is 1.
//
// ForcedNets optionally asserts nets to fixed values (unit clauses) — used
// by the ATPG encoding to activate the fault site. Passing nil forces
// nothing.
func FromCircuit(c *logic.Circuit, forced map[int]bool) (*Formula, error) {
	// A throwaway encoder: the formula owns the buffers outright.
	return new(Encoder).Encode(c, forced)
}

// FromCircuitConsistency builds only the gate-consistency clauses (no
// output-asserting clause): the characteristic function of the circuit's
// legal net-value combinations. Useful for counting distinct consistent
// sub-formulas and for equivalence checking harnesses.
func FromCircuitConsistency(c *logic.Circuit) (*Formula, error) {
	f, err := FromCircuit(c, nil)
	if err != nil {
		return nil, err
	}
	if len(c.Outputs) > 0 {
		f.Clauses = f.Clauses[:len(f.Clauses)-1]
	}
	return f, nil
}
