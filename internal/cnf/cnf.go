// Package cnf implements conjunctive normal form Boolean formulas and the
// CIRCUIT-SAT encoding of Section 2 of "Why is ATPG Easy?".
//
// A CIRCUIT-SAT problem on a circuit C is posed as a SAT problem on the
// formula f(C), which has one variable for each signal net of C, a set of
// clauses for each gate (Figure 2 of the paper), and one clause asserting
// that at least one primary output is 1.
package cnf

import (
	"fmt"
	"sort"
	"strings"
)

// Lit is a literal: an instance of a variable or its complement. Variables
// are numbered from 0. The encoding is var*2 for the positive literal and
// var*2+1 for the negative literal, so Lit values order naturally by
// variable.
type Lit int

// NewLit returns the literal for variable v, complemented if neg.
func NewLit(v int, neg bool) Lit {
	if neg {
		return Lit(v*2 + 1)
	}
	return Lit(v * 2)
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l) >> 1 }

// IsNeg reports whether the literal is complemented.
func (l Lit) IsNeg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Sat reports whether the literal is satisfied when its variable has
// value v.
func (l Lit) Sat(v bool) bool { return v != l.IsNeg() }

// String renders the literal as x5 or ~x5.
func (l Lit) String() string {
	if l.IsNeg() {
		return fmt.Sprintf("~x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// Clause is a disjunction of literals.
type Clause []Lit

// Normalize sorts the literals and removes duplicates. It reports whether
// the clause is a tautology (contains both a literal and its complement),
// in which case the clause contents are unspecified.
func (c Clause) Normalize() (Clause, bool) {
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	out := c[:0]
	for i, l := range c {
		if i > 0 && l == c[i-1] {
			continue
		}
		if i > 0 && l == c[i-1].Not() {
			return c, true
		}
		out = append(out, l)
	}
	return out, false
}

// String renders the clause in the paper's style, e.g. "(x0 + ~x3)".
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

// Formula is a CNF formula: a set of clauses over variables 0..NumVars-1.
// VarNames optionally gives a human-readable name per variable (the net
// names when the formula encodes a circuit).
type Formula struct {
	NumVars  int
	Clauses  []Clause
	VarNames []string
}

// NewFormula returns an empty formula over n variables.
func NewFormula(n int) *Formula {
	return &Formula{NumVars: n}
}

// AddClause appends a clause. Literals referencing variables ≥ NumVars
// grow the variable count.
func (f *Formula) AddClause(lits ...Lit) {
	for _, l := range lits {
		if l.Var() >= f.NumVars {
			f.NumVars = l.Var() + 1
		}
		if l < 0 {
			panic(fmt.Sprintf("cnf: negative literal %d", l))
		}
	}
	f.Clauses = append(f.Clauses, Clause(lits))
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// NumLiterals returns the total literal count over all clauses.
func (f *Formula) NumLiterals() int {
	n := 0
	for _, c := range f.Clauses {
		n += len(c)
	}
	return n
}

// VarName returns the name of variable v, falling back to "x<v>".
func (f *Formula) VarName(v int) string {
	if v < len(f.VarNames) && f.VarNames[v] != "" {
		return f.VarNames[v]
	}
	return fmt.Sprintf("x%d", v)
}

// Eval evaluates the formula under a complete assignment (one value per
// variable).
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if l.Sat(assign[l.Var()]) {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Value is a three-valued assignment entry.
type Value int8

// The three assignment states of a variable during search.
const (
	Unassigned Value = iota
	False
	True
)

// ValueOf converts a bool to a Value.
func ValueOf(b bool) Value {
	if b {
		return True
	}
	return False
}

// ClauseState classifies a clause under a partial assignment.
type ClauseState int8

// Clause states under a partial assignment: satisfied (some literal true),
// empty/null (all literals false — the paper's "null clause"), or open.
const (
	Open ClauseState = iota
	Satisfied
	Null
)

// StateUnder classifies clause c under the partial assignment.
func (c Clause) StateUnder(assign []Value) ClauseState {
	anyOpen := false
	for _, l := range c {
		switch assign[l.Var()] {
		case Unassigned:
			anyOpen = true
		case True:
			if !l.IsNeg() {
				return Satisfied
			}
		case False:
			if l.IsNeg() {
				return Satisfied
			}
		}
	}
	if anyOpen {
		return Open
	}
	return Null
}

// HasNullClause reports whether any clause is null under the partial
// assignment — i.e. the sub-formula is not a "consistent sub-formula" in
// the paper's sense.
func (f *Formula) HasNullClause(assign []Value) bool {
	for _, c := range f.Clauses {
		if c.StateUnder(assign) == Null {
			return true
		}
	}
	return false
}

// Residual returns the sub-formula obtained under the partial assignment:
// satisfied clauses are dropped and false literals removed from the rest.
// The paper caches sub-formulas "as sets of clauses"; ResidualKey provides
// the canonical cache key for this representation.
func (f *Formula) Residual(assign []Value) []Clause {
	var out []Clause
	for _, c := range f.Clauses {
		var reduced Clause
		sat := false
		for _, l := range c {
			switch assign[l.Var()] {
			case Unassigned:
				reduced = append(reduced, l)
			case True:
				if !l.IsNeg() {
					sat = true
				}
			case False:
				if l.IsNeg() {
					sat = true
				}
			}
			if sat {
				break
			}
		}
		if !sat {
			out = append(out, reduced)
		}
	}
	return out
}

// AppendUvarint appends x in LEB128 varint form. It is the literal
// encoding of the canonical residual key shared by ResidualKey, the sat
// package's exact cache keys and internal/core's DCSF counter.
func AppendUvarint(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}

// AppendResidualLits appends the residual of clause c under the partial
// assignment: varint(lit+1) for each unassigned literal in clause order,
// terminated by a 0 byte (no literal encodes to 0, so the terminator is
// unambiguous). The caller is responsible for skipping satisfied clauses.
func (c Clause) AppendResidualLits(buf []byte, assign []Value) []byte {
	for _, l := range c {
		if assign[l.Var()] == Unassigned {
			buf = AppendUvarint(buf, uint64(l)+1)
		}
	}
	return append(buf, 0)
}

// satisfiedUnder reports whether some literal of c is true under the
// partial assignment.
func (c Clause) satisfiedUnder(assign []Value) bool {
	for _, l := range c {
		switch assign[l.Var()] {
		case True:
			if !l.IsNeg() {
				return true
			}
		case False:
			if l.IsNeg() {
				return true
			}
		}
	}
	return false
}

// AppendResidualKey appends the canonical byte key of the residual
// sub-formula under the partial assignment: the AppendResidualLits
// encoding of every non-satisfied clause, in formula order. Clause order
// and within-clause literal order are fixed by the formula, so for a given
// formula two assignments produce the same key iff they induce the same
// residual clause set.
func (f *Formula) AppendResidualKey(buf []byte, assign []Value) []byte {
	for _, c := range f.Clauses {
		if c.satisfiedUnder(assign) {
			continue
		}
		buf = c.AppendResidualLits(buf, assign)
	}
	return buf
}

// ResidualKey builds a canonical string key for the residual sub-formula
// under the partial assignment. Two sub-formulas are identical if and only
// if they have the same set of clauses (footnote 2 of the paper: clause-set
// identity, not functional equivalence). Callers on a hot path should use
// AppendResidualKey with a reused buffer instead.
func (f *Formula) ResidualKey(assign []Value) string {
	return string(f.AppendResidualKey(nil, assign))
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	g := &Formula{NumVars: f.NumVars}
	g.Clauses = make([]Clause, len(f.Clauses))
	for i, c := range f.Clauses {
		g.Clauses[i] = append(Clause(nil), c...)
	}
	g.VarNames = append([]string(nil), f.VarNames...)
	return g
}

// String renders the whole formula in the paper's product-of-sums style.
func (f *Formula) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, "")
}

// PrettyClause renders a clause using variable names, in the paper's
// notation: (b + ~f).
func (f *Formula) PrettyClause(c Clause) string {
	parts := make([]string, len(c))
	for i, l := range c {
		s := f.VarName(l.Var())
		if l.IsNeg() {
			s = "~" + s
		}
		parts[i] = s
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

// Stats summarizes formula shape for the Purdom–Brown average-time
// parameterization of Section 3.3: variable count v, clause count t, and
// average clause length p (the probability parameterization uses literal
// density p = avg length / v).
type Stats struct {
	Vars          int
	ClauseCount   int
	Literals      int
	AvgClauseLen  float64
	MaxClauseLen  int
	UnitClauses   int
	BinaryClauses int
}

// Stats computes summary statistics.
func (f *Formula) Stats() Stats {
	s := Stats{Vars: f.NumVars, ClauseCount: len(f.Clauses)}
	for _, c := range f.Clauses {
		s.Literals += len(c)
		if len(c) > s.MaxClauseLen {
			s.MaxClauseLen = len(c)
		}
		switch len(c) {
		case 1:
			s.UnitClauses++
		case 2:
			s.BinaryClauses++
		}
	}
	if len(f.Clauses) > 0 {
		s.AvgClauseLen = float64(s.Literals) / float64(len(f.Clauses))
	}
	return s
}
