package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS writes the formula in standard DIMACS CNF format (variables
// are 1-based in the file).
func (f *Formula) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			v := l.Var() + 1
			if l.IsNeg() {
				v = -v
			}
			if _, err := fmt.Fprintf(bw, "%d ", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDIMACS parses a DIMACS CNF file. Comment lines ("c ...") are skipped;
// the problem line is validated against the clauses read.
func ReadDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var f *Formula
	declaredClauses := -1
	var cur Clause
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if f != nil {
				return nil, fmt.Errorf("dimacs: line %d: duplicate problem line", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs: line %d: malformed problem line %q", lineNo, line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return nil, fmt.Errorf("dimacs: line %d: malformed problem line %q", lineNo, line)
			}
			f = NewFormula(nv)
			declaredClauses = nc
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("dimacs: line %d: clause before problem line", lineNo)
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs: line %d: bad token %q", lineNo, tok)
			}
			if v == 0 {
				f.AddClause(cur...)
				cur = nil
				continue
			}
			neg := v < 0
			if neg {
				v = -v
			}
			if v > f.NumVars {
				return nil, fmt.Errorf("dimacs: line %d: variable %d exceeds declared %d", lineNo, v, f.NumVars)
			}
			cur = append(cur, NewLit(v-1, neg))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("dimacs: no problem line")
	}
	if len(cur) > 0 {
		f.AddClause(cur...)
	}
	if declaredClauses >= 0 && len(f.Clauses) != declaredClauses {
		return nil, fmt.Errorf("dimacs: declared %d clauses, read %d", declaredClauses, len(f.Clauses))
	}
	return f, nil
}
