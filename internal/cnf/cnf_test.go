package cnf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"atpgeasy/internal/logic"
)

func TestLitBasics(t *testing.T) {
	p := NewLit(5, false)
	n := NewLit(5, true)
	if p.Var() != 5 || n.Var() != 5 {
		t.Errorf("Var: %d %d", p.Var(), n.Var())
	}
	if p.IsNeg() || !n.IsNeg() {
		t.Errorf("IsNeg: %v %v", p.IsNeg(), n.IsNeg())
	}
	if p.Not() != n || n.Not() != p {
		t.Error("Not is not an involution")
	}
	if !p.Sat(true) || p.Sat(false) || !n.Sat(false) || n.Sat(true) {
		t.Error("Sat wrong")
	}
	if p.String() != "x5" || n.String() != "~x5" {
		t.Errorf("String: %s %s", p, n)
	}
}

func TestClauseNormalize(t *testing.T) {
	c := Clause{NewLit(3, false), NewLit(1, true), NewLit(3, false)}
	out, taut := c.Normalize()
	if taut {
		t.Fatal("unexpected tautology")
	}
	if len(out) != 2 || out[0] != NewLit(1, true) || out[1] != NewLit(3, false) {
		t.Errorf("Normalize = %v", out)
	}
	_, taut = Clause{NewLit(2, false), NewLit(2, true)}.Normalize()
	if !taut {
		t.Error("tautology not detected")
	}
}

func TestFormulaEval(t *testing.T) {
	f := NewFormula(2)
	f.AddClause(NewLit(0, false), NewLit(1, true)) // (x0 + ~x1)
	f.AddClause(NewLit(1, false))                  // (x1)
	if !f.Eval([]bool{true, true}) {
		t.Error("x0=1,x1=1 should satisfy")
	}
	if f.Eval([]bool{false, true}) {
		t.Error("x0=0,x1=1 should falsify first clause")
	}
	if f.Eval([]bool{true, false}) {
		t.Error("x1=0 should falsify unit clause")
	}
}

func TestAddClauseGrowsVars(t *testing.T) {
	f := NewFormula(0)
	f.AddClause(NewLit(9, false))
	if f.NumVars != 10 {
		t.Errorf("NumVars = %d, want 10", f.NumVars)
	}
	if f.NumClauses() != 1 || f.NumLiterals() != 1 {
		t.Errorf("counts = %d/%d", f.NumClauses(), f.NumLiterals())
	}
}

func TestClauseStateUnder(t *testing.T) {
	c := Clause{NewLit(0, false), NewLit(1, true)}
	assign := []Value{Unassigned, Unassigned}
	if c.StateUnder(assign) != Open {
		t.Error("want Open")
	}
	assign[0] = True
	if c.StateUnder(assign) != Satisfied {
		t.Error("want Satisfied")
	}
	assign[0] = False
	assign[1] = True
	if c.StateUnder(assign) != Null {
		t.Error("want Null")
	}
}

func TestResidualAndKey(t *testing.T) {
	f := NewFormula(3)
	f.AddClause(NewLit(0, false), NewLit(1, false))
	f.AddClause(NewLit(1, true), NewLit(2, false))
	assign := []Value{False, Unassigned, Unassigned}
	res := f.Residual(assign)
	if len(res) != 2 {
		t.Fatalf("residual = %v", res)
	}
	if len(res[0]) != 1 || res[0][0] != NewLit(1, false) {
		t.Errorf("first residual clause = %v", res[0])
	}
	// Keys are canonical: same clause set regardless of how it was reached.
	assign2 := []Value{False, Unassigned, Unassigned}
	if f.ResidualKey(assign) != f.ResidualKey(assign2) {
		t.Error("keys differ for identical assignments")
	}
	assign2[0] = True
	if f.ResidualKey(assign) == f.ResidualKey(assign2) {
		t.Error("keys equal for different residuals")
	}
}

func TestHasNullClause(t *testing.T) {
	f := NewFormula(1)
	f.AddClause(NewLit(0, false))
	if f.HasNullClause([]Value{Unassigned}) {
		t.Error("no null clause expected")
	}
	if !f.HasNullClause([]Value{False}) {
		t.Error("null clause expected")
	}
}

// TestFormula41 verifies the Figure 4(a) circuit encodes clause-for-clause
// to the paper's Formula 4.1:
//
//	(b+f̄)(c̄+f̄)(b̄+c+f) (d+g)(e+g)(d̄+ē+ḡ) (a+h̄)(f+h̄)(ā+f̄+h)
//	(h+ī)(g+ī)(h̄+ḡ+i) (i)
func TestFormula41(t *testing.T) {
	c := logic.Figure4a()
	f, err := FromCircuit(c, nil)
	if err != nil {
		t.Fatalf("FromCircuit: %v", err)
	}
	if f.NumVars != 9 {
		t.Fatalf("NumVars = %d, want 9 (one per net)", f.NumVars)
	}
	want := []string{
		"(b + ~f)", "(~c + ~f)", "(~b + c + f)",
		"(d + g)", "(e + g)", "(~d + ~e + ~g)",
		"(a + ~h)", "(f + ~h)", "(~a + ~f + h)",
		"(h + ~i)", "(g + ~i)", "(~h + ~g + i)",
		"(i)",
	}
	if len(f.Clauses) != len(want) {
		t.Fatalf("got %d clauses, want %d:\n%v", len(f.Clauses), len(want), f)
	}
	got := make(map[string]int)
	for _, cl := range f.Clauses {
		norm, _ := append(Clause(nil), cl...).Normalize()
		got[f.PrettyClause(norm)]++
	}
	for _, w := range want {
		// Normalize the wanted clause text through the same canonical form.
		wc := parsePretty(t, f, w)
		norm, _ := wc.Normalize()
		key := f.PrettyClause(norm)
		if got[key] == 0 {
			t.Errorf("missing clause %s (canonical %s)\nformula: %v", w, key, f)
		} else {
			got[key]--
		}
	}
}

// parsePretty parses "(a + ~b)" using the formula's variable names.
func parsePretty(t *testing.T, f *Formula, s string) Clause {
	t.Helper()
	s = strings.Trim(s, "()")
	name2var := map[string]int{}
	for v := 0; v < f.NumVars; v++ {
		name2var[f.VarName(v)] = v
	}
	var c Clause
	for _, part := range strings.Split(s, "+") {
		part = strings.TrimSpace(part)
		neg := strings.HasPrefix(part, "~")
		part = strings.TrimPrefix(part, "~")
		v, ok := name2var[part]
		if !ok {
			t.Fatalf("unknown variable %q in %q", part, s)
		}
		c = append(c, NewLit(v, neg))
	}
	return c
}

// TestEncodingMatchesSimulation is the core soundness property: for any
// circuit, an assignment of values to all nets satisfies the consistency
// clauses iff every net equals its gate function, and satisfies f(C) iff in
// addition some output is 1.
func TestEncodingMatchesSimulation(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 12)
		full, err := FromCircuit(c, nil)
		if err != nil {
			return false
		}
		nin := len(c.Inputs)
		for pat := 0; pat < 1<<uint(nin); pat++ {
			in := make([]bool, nin)
			for i := range in {
				in[i] = pat>>uint(i)&1 == 1
			}
			vals := c.Simulate(in)
			outOne := false
			for _, o := range c.Outputs {
				outOne = outOne || vals[o]
			}
			if full.Eval(vals) != outOne {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestConsistencyRejectsCorruptedNets: flipping one internal net value must
// violate the consistency clauses.
func TestConsistencyRejectsCorruptedNets(t *testing.T) {
	c := logic.Figure4a()
	cons, err := FromCircuitConsistency(c)
	if err != nil {
		t.Fatal(err)
	}
	vals := c.Simulate([]bool{true, true, false, false, false})
	if !cons.Eval(vals) {
		t.Fatal("true simulation rejected")
	}
	for _, name := range []string{"f", "g", "h", "i"} {
		id := c.MustLookup(name)
		vals[id] = !vals[id]
		if cons.Eval(vals) {
			t.Errorf("flipping %s not detected", name)
		}
		vals[id] = !vals[id]
	}
}

func TestGateClausesXor(t *testing.T) {
	// z = XOR(x, y): check all 8 rows of (x, y, z).
	clauses, err := GateClauses(logic.Xor, 2, []Lit{NewLit(0, false), NewLit(1, false)})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFormula(3)
	for _, c := range clauses {
		f.AddClause(c...)
	}
	for row := 0; row < 8; row++ {
		x, y, z := row&1 == 1, row&2 == 2, row&4 == 4
		want := (x != y) == z
		if got := f.Eval([]bool{x, y, z}); got != want {
			t.Errorf("x=%v y=%v z=%v: consistency=%v, want %v", x, y, z, got, want)
		}
	}
}

func TestGateClausesXnorWithInvertedInput(t *testing.T) {
	// z = XNOR(¬x, y) == XOR(x,y): check rows.
	clauses, err := GateClauses(logic.Xnor, 2, []Lit{NewLit(0, true), NewLit(1, false)})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFormula(3)
	for _, c := range clauses {
		f.AddClause(c...)
	}
	for row := 0; row < 8; row++ {
		x, y, z := row&1 == 1, row&2 == 2, row&4 == 4
		want := (x != y) == z
		if got := f.Eval([]bool{x, y, z}); got != want {
			t.Errorf("x=%v y=%v z=%v: consistency=%v, want %v", x, y, z, got, want)
		}
	}
}

func TestGateClausesErrors(t *testing.T) {
	in := make([]Lit, maxXorFanin+1)
	for i := range in {
		in[i] = NewLit(i, false)
	}
	if _, err := GateClauses(logic.Xor, 99, in); err == nil {
		t.Error("oversized XOR should error")
	}
	if _, err := GateClauses(logic.Input, 0, nil); err == nil {
		t.Error("Input gate should error")
	}
}

func TestFromCircuitForced(t *testing.T) {
	c := logic.Figure4a()
	fID := c.MustLookup("f")
	f, err := FromCircuit(c, map[int]bool{fID: true})
	if err != nil {
		t.Fatal(err)
	}
	// f's gate clauses must be replaced by the unit (f).
	sawUnitF := false
	for _, cl := range f.Clauses {
		if len(cl) == 1 && cl[0] == NewLit(fID, false) {
			sawUnitF = true
		}
		// No clause may mention both f and its gate inputs b,c.
		if len(cl) > 1 {
			hasF := false
			for _, l := range cl {
				if l.Var() == fID {
					hasF = true
				}
			}
			if hasF {
				for _, l := range cl {
					name := f.VarName(l.Var())
					if name == "b" || name == "c" {
						t.Errorf("forced net still has gate clause %s", f.PrettyClause(cl))
					}
				}
			}
		}
	}
	if !sawUnitF {
		t.Error("missing unit clause for forced net")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFormula(2)
	f.AddClause(NewLit(0, false), NewLit(1, false))
	g := f.Clone()
	g.Clauses[0][0] = NewLit(1, true)
	if f.Clauses[0][0] != NewLit(0, false) {
		t.Error("clone shares clause storage")
	}
}

func TestStats(t *testing.T) {
	c := logic.Figure4a()
	f, _ := FromCircuit(c, nil)
	s := f.Stats()
	if s.Vars != 9 || s.ClauseCount != 13 {
		t.Errorf("Stats = %+v", s)
	}
	if s.UnitClauses != 1 || s.MaxClauseLen != 3 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Literals != 8*2+4*3+1 {
		t.Errorf("Literals = %d", s.Literals)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	c := logic.Figure4a()
	f, _ := FromCircuit(c, nil)
	var sb strings.Builder
	if err := f.WriteDIMACS(&sb); err != nil {
		t.Fatal(err)
	}
	g, err := ReadDIMACS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadDIMACS: %v", err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip: %d/%d vars, %d/%d clauses", g.NumVars, f.NumVars, len(g.Clauses), len(f.Clauses))
	}
	for i := range f.Clauses {
		a, _ := append(Clause(nil), f.Clauses[i]...).Normalize()
		b, _ := append(Clause(nil), g.Clauses[i]...).Normalize()
		if Clause(a).String() != Clause(b).String() {
			t.Errorf("clause %d: %v vs %v", i, a, b)
		}
	}
}

func TestDIMACSErrors(t *testing.T) {
	cases := []string{
		"1 2 0\n",                   // clause before problem line
		"p cnf x y\n",               // malformed counts
		"p cnf 2 1\np cnf 2 1\n1 0", // duplicate problem line
		"p cnf 1 1\n5 0\n",          // var out of range
		"p cnf 2 2\n1 0\n",          // clause count mismatch
		"p cnf 2 1\n1 z 0\n",        // bad token
		"",                          // empty
	}
	for _, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestDIMACSCommentsAndTrailingClause(t *testing.T) {
	in := "c header\np cnf 3 2\nc mid\n1 -2 0\n-1 3"
	f, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadDIMACS: %v", err)
	}
	if len(f.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(f.Clauses))
	}
	if f.Clauses[1][1] != NewLit(2, false) {
		t.Errorf("second clause = %v", f.Clauses[1])
	}
}

func TestPrettyAndString(t *testing.T) {
	c := logic.Figure4a()
	f, _ := FromCircuit(c, nil)
	s := f.String()
	if !strings.Contains(s, "(") {
		t.Errorf("String = %q", s)
	}
	if got := f.PrettyClause(f.Clauses[len(f.Clauses)-1]); got != "(i)" {
		t.Errorf("output clause pretty = %q", got)
	}
	if f.VarName(100) != "x100" {
		t.Errorf("VarName fallback = %q", f.VarName(100))
	}
}

// randomCircuit builds a small random circuit for property tests (local
// copy to avoid an exported test helper in package logic).
func randomCircuit(rng *rand.Rand, n int) *logic.Circuit {
	b := logic.NewBuilder("rand")
	nin := 2 + rng.Intn(3)
	for i := 0; i < nin; i++ {
		b.Input("in" + string(rune('a'+i)))
	}
	types := []logic.GateType{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	for i := 0; i < n; i++ {
		gt := types[rng.Intn(len(types))]
		arity := 1
		if gt != logic.Not {
			arity = 1 + rng.Intn(3)
		}
		fanin := make([]int, arity)
		neg := make([]bool, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(b.NumNodes())
			neg[j] = rng.Intn(4) == 0
		}
		b.GateN(gt, "g"+string(rune('A'+i%26))+string(rune('0'+i/26)), fanin, neg)
	}
	b.MarkOutput(b.NumNodes() - 1)
	return b.MustBuild()
}
