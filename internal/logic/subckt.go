package logic

import (
	"fmt"
	"sort"
)

// Subcircuit is a circuit extracted from a parent together with the ID
// mapping between the two.
type Subcircuit struct {
	*Circuit
	// ToParent maps a node ID in the subcircuit to the corresponding node
	// ID in the parent circuit.
	ToParent []int
	// FromParent maps a parent node ID to the subcircuit node ID, or -1 if
	// the parent node is not part of the subcircuit.
	FromParent []int
}

// Induced extracts the subcircuit induced by the given parent node IDs.
// Nodes whose drivers lie outside the set become primary inputs of the
// subcircuit (cut inputs); outputs are the parent's primary outputs that
// lie inside the set plus any explicitly listed extraOutputs. ids need not
// be sorted; duplicates are ignored.
func (c *Circuit) Induced(name string, ids []int, extraOutputs ...int) (*Subcircuit, error) {
	in := make([]bool, len(c.Nodes))
	for _, id := range ids {
		if id < 0 || id >= len(c.Nodes) {
			return nil, fmt.Errorf("logic: Induced: node ID %d out of range", id)
		}
		in[id] = true
	}
	sorted := markedIDs(in)

	b := NewBuilder(name)
	fromParent := make([]int, len(c.Nodes))
	for i := range fromParent {
		fromParent[i] = -1
	}
	toParent := make([]int, 0, len(sorted))
	for _, id := range sorted {
		n := &c.Nodes[id]
		var sid int
		keep := n.Type == Input || n.Type == Const0 || n.Type == Const1
		if !keep {
			// A gate all of whose fanins are inside stays a gate; any
			// missing fanin turns the whole node into a cut input.
			for _, f := range n.Fanin {
				if !in[f] {
					keep = false
					break
				}
				keep = true
			}
		}
		switch {
		case n.Type == Input:
			sid = b.Input(n.Name)
		case n.Type == Const0:
			sid = b.Const(n.Name, false)
		case n.Type == Const1:
			sid = b.Const(n.Name, true)
		case !keep:
			sid = b.Input(n.Name)
		default:
			fanin := make([]int, len(n.Fanin))
			for i, f := range n.Fanin {
				fanin[i] = fromParent[f]
			}
			sid = b.GateN(n.Type, n.Name, fanin, n.Neg)
		}
		fromParent[id] = sid
		toParent = append(toParent, id)
	}

	marked := make(map[int]bool)
	for _, o := range c.Outputs {
		if in[o] && !marked[o] {
			b.MarkOutput(fromParent[o])
			marked[o] = true
		}
	}
	for _, o := range extraOutputs {
		if o < 0 || o >= len(c.Nodes) || !in[o] {
			return nil, fmt.Errorf("logic: Induced: extra output %d not in subcircuit", o)
		}
		if !marked[o] {
			b.MarkOutput(fromParent[o])
			marked[o] = true
		}
	}
	sc, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Subcircuit{Circuit: sc, ToParent: toParent, FromParent: fromParent}, nil
}

// Cone extracts the transitive fanin cone of the given output nets as a
// standalone single- or multi-output circuit. The given nets become the
// outputs of the cone, in the given order (plus no others, even if parent
// outputs fall inside the cone).
func (c *Circuit) Cone(name string, outs ...int) (*Subcircuit, error) {
	ids := c.TransitiveFanin(outs...)
	in := make([]bool, len(c.Nodes))
	for _, id := range ids {
		in[id] = true
	}
	b := NewBuilder(name)
	fromParent := make([]int, len(c.Nodes))
	for i := range fromParent {
		fromParent[i] = -1
	}
	toParent := make([]int, 0, len(ids))
	for _, id := range ids {
		n := &c.Nodes[id]
		var sid int
		switch n.Type {
		case Input:
			sid = b.Input(n.Name)
		case Const0:
			sid = b.Const(n.Name, false)
		case Const1:
			sid = b.Const(n.Name, true)
		default:
			fanin := make([]int, len(n.Fanin))
			for i, f := range n.Fanin {
				fanin[i] = fromParent[f]
			}
			sid = b.GateN(n.Type, n.Name, fanin, n.Neg)
		}
		fromParent[id] = sid
		toParent = append(toParent, id)
	}
	seen := make(map[int]bool)
	for _, o := range outs {
		if !seen[o] {
			b.MarkOutput(fromParent[o])
			seen[o] = true
		}
	}
	sc, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Subcircuit{Circuit: sc, ToParent: toParent, FromParent: fromParent}, nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	b := NewBuilder(c.Name)
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Type {
		case Input:
			b.Input(n.Name)
		case Const0:
			b.Const(n.Name, false)
		case Const1:
			b.Const(n.Name, true)
		default:
			b.GateN(n.Type, n.Name, n.Fanin, n.Neg)
		}
	}
	for _, o := range c.Outputs {
		b.MarkOutput(o)
	}
	return b.MustBuild()
}

// CheckInvariants verifies structural invariants that every constructed
// circuit must satisfy: fanin/fanout consistency, name-table consistency,
// topological ID ordering, and output validity. It is used by tests and
// property checks; a non-nil error indicates a bug in a constructor.
func (c *Circuit) CheckInvariants() error {
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.ID != i {
			return fmt.Errorf("node %d has ID %d", i, n.ID)
		}
		if got, ok := c.byName[n.Name]; !ok || got != i {
			return fmt.Errorf("name table broken for node %q", n.Name)
		}
		for _, f := range n.Fanin {
			if f >= i {
				return fmt.Errorf("node %q fanin %d not topologically earlier", n.Name, f)
			}
			if !containsInt(c.Nodes[f].Fanout, i) {
				return fmt.Errorf("fanout list of %q missing reader %q", c.Nodes[f].Name, n.Name)
			}
		}
		for _, fo := range n.Fanout {
			if !containsInt(c.Nodes[fo].Fanin, i) {
				return fmt.Errorf("fanin list of %q missing driver %q", c.Nodes[fo].Name, n.Name)
			}
		}
	}
	for _, o := range c.Outputs {
		if o < 0 || o >= len(c.Nodes) {
			return fmt.Errorf("output %d out of range", o)
		}
	}
	if !sort.IntsAreSorted(c.topo) {
		return fmt.Errorf("topological order not the identity ordering")
	}
	return nil
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
