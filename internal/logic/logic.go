// Package logic implements the combinational Boolean network model of
// Section 2 of "Why is ATPG Easy?" (Prasad, Chong, Keutzer, DAC 1999).
//
// A Circuit is a directed acyclic graph of gates. Each gate drives exactly
// one net, identified with the gate's node ID, so "net X" and "node X" are
// used interchangeably, as in the paper. Primary inputs are source nodes;
// primary outputs are designated nets.
//
// The package provides construction (Builder), structural queries
// (transitive fanin/fanout cones, levelization, topological order),
// simulation (single-pattern and 64-way bit-parallel), and subcircuit
// extraction — the substrate every other package in this module builds on.
package logic

import (
	"fmt"
	"sort"
)

// GateType enumerates the gate functions supported by the network model.
// The paper's analysis assumes circuits mapped to simple AND and OR gates
// with inversions (Section 2); the richer set here is what practical
// netlists contain before technology decomposition (package decomp maps
// them down).
type GateType uint8

// Gate function codes. Input nodes have no fanin; Const0/Const1 are
// zero-fanin constant drivers; all others require at least one fanin
// (Buf and Not exactly one).
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	numGateTypes
)

var gateTypeNames = [...]string{
	Input:  "INPUT",
	Const0: "CONST0",
	Const1: "CONST1",
	Buf:    "BUF",
	Not:    "NOT",
	And:    "AND",
	Or:     "OR",
	Nand:   "NAND",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
}

// String returns the conventional upper-case mnemonic for the gate type.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// Valid reports whether t is one of the defined gate type codes.
func (t GateType) Valid() bool { return t < numGateTypes }

// Node is one gate (or primary input, or constant) of a circuit. The node
// drives the net with the same ID.
//
// Neg marks inverted gate inputs ("bubbles"). The paper's circuit model is
// simple AND and OR gates *allowing inversions* (Section 2): an inversion
// is part of the consuming gate, not a separate net, so the working example
// of Figure 4(a) has exactly nine nets a..i. A nil Neg means no inversions.
type Node struct {
	ID     int
	Name   string
	Type   GateType
	Fanin  []int  // IDs of driver nodes, in gate-input order
	Neg    []bool // per-fanin inversion flags; nil = none inverted
	Fanout []int  // IDs of nodes reading this net (computed by Build)
}

// Negated reports whether gate input i is inverted.
func (n *Node) Negated(i int) bool { return n.Neg != nil && n.Neg[i] }

// Circuit is an immutable combinational Boolean network. Construct one with
// a Builder or a netlist parser; the zero value is an empty circuit.
type Circuit struct {
	Name    string
	Nodes   []Node // indexed by node ID
	Inputs  []int  // primary input node IDs, in declaration order
	Outputs []int  // primary output net IDs, in declaration order

	byName map[string]int
	topo   []int // topological order, computed once by Build
	level  []int // logic level per node (inputs = 0)
}

// NumNodes returns the number of nodes (gates + primary inputs + constants).
func (c *Circuit) NumNodes() int { return len(c.Nodes) }

// NumGates returns the number of logic gates, excluding primary inputs and
// constant drivers.
func (c *Circuit) NumGates() int {
	n := 0
	for i := range c.Nodes {
		switch c.Nodes[i].Type {
		case Input, Const0, Const1:
		default:
			n++
		}
	}
	return n
}

// Node returns the node with the given ID. It panics if id is out of range,
// mirroring slice indexing.
func (c *Circuit) Node(id int) *Node { return &c.Nodes[id] }

// Lookup returns the ID of the node with the given name.
func (c *Circuit) Lookup(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// MustLookup is Lookup that panics on a missing name; convenient in tests
// and examples where the name is known to exist.
func (c *Circuit) MustLookup(name string) int {
	id, ok := c.byName[name]
	if !ok {
		panic(fmt.Sprintf("logic: circuit %q has no node named %q", c.Name, name))
	}
	return id
}

// IsOutput reports whether net id is a primary output.
func (c *Circuit) IsOutput(id int) bool {
	for _, o := range c.Outputs {
		if o == id {
			return true
		}
	}
	return false
}

// TopoOrder returns node IDs in a topological order (fanins before fanouts).
// The returned slice is shared; callers must not modify it.
func (c *Circuit) TopoOrder() []int { return c.topo }

// Level returns the logic level of node id: 0 for primary inputs and
// constants, 1 + max(level of fanins) otherwise.
func (c *Circuit) Level(id int) int { return c.level[id] }

// Depth returns the maximum logic level over all nodes.
func (c *Circuit) Depth() int {
	d := 0
	for _, l := range c.level {
		if l > d {
			d = l
		}
	}
	return d
}

// MaxFanin returns k_fi, the largest gate fanin in the circuit.
func (c *Circuit) MaxFanin() int {
	k := 0
	for i := range c.Nodes {
		if len(c.Nodes[i].Fanin) > k {
			k = len(c.Nodes[i].Fanin)
		}
	}
	return k
}

// MaxFanout returns k_fo, the largest net fanout in the circuit. Nets
// feeding primary outputs only (no gate sinks) count their gate readers
// only, matching the paper's use of k_fo as the bound on how many gate
// clauses a single net variable appears in.
func (c *Circuit) MaxFanout() int {
	k := 0
	for i := range c.Nodes {
		if len(c.Nodes[i].Fanout) > k {
			k = len(c.Nodes[i].Fanout)
		}
	}
	return k
}

// Names returns the names of the given node IDs, in order.
func (c *Circuit) Names(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = c.Nodes[id].Name
	}
	return out
}

// Builder constructs a Circuit incrementally. Methods panic on structural
// misuse (duplicate names, bad fanin arity) because those are programming
// errors in the caller; Build returns an error for whole-circuit problems
// (cycles, dangling outputs) that can depend on input data.
type Builder struct {
	name    string
	nodes   []Node
	inputs  []int
	outputs []int
	byName  map[string]int
}

// NewBuilder returns an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]int)}
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodes) }

// Input adds a primary input with the given name and returns its net ID.
func (b *Builder) Input(name string) int {
	return b.add(name, Input, nil, nil)
}

// Const adds a constant driver (Const1 if v, else Const0).
func (b *Builder) Const(name string, v bool) int {
	t := Const0
	if v {
		t = Const1
	}
	return b.add(name, t, nil, nil)
}

// Gate adds a gate of type t named name with the given fanin nets and
// returns its net ID. No inputs are inverted; use GateN for bubbled inputs.
func (b *Builder) Gate(t GateType, name string, fanin ...int) int {
	return b.add(name, t, fanin, nil)
}

// GateN adds a gate with per-input inversion flags: input i is inverted
// when neg[i] is true. neg may be nil (no inversions) but otherwise must
// have the same length as fanin.
func (b *Builder) GateN(t GateType, name string, fanin []int, neg []bool) int {
	return b.add(name, t, fanin, neg)
}

// Lookup returns the ID already assigned to name, if any.
func (b *Builder) Lookup(name string) (int, bool) {
	id, ok := b.byName[name]
	return id, ok
}

func (b *Builder) add(name string, t GateType, fanin []int, neg []bool) int {
	if !t.Valid() {
		panic(fmt.Sprintf("logic: invalid gate type %d", t))
	}
	if _, dup := b.byName[name]; dup {
		panic(fmt.Sprintf("logic: duplicate node name %q", name))
	}
	if neg != nil && len(neg) != len(fanin) {
		panic(fmt.Sprintf("logic: node %q has %d fanins but %d inversion flags", name, len(fanin), len(neg)))
	}
	switch t {
	case Input, Const0, Const1:
		if len(fanin) != 0 {
			panic(fmt.Sprintf("logic: %s node %q must have no fanin", t, name))
		}
	case Buf, Not:
		if len(fanin) != 1 {
			panic(fmt.Sprintf("logic: %s node %q must have exactly one fanin, got %d", t, name, len(fanin)))
		}
	default:
		if len(fanin) < 1 {
			panic(fmt.Sprintf("logic: %s node %q must have at least one fanin", t, name))
		}
	}
	for _, f := range fanin {
		if f < 0 || f >= len(b.nodes) {
			panic(fmt.Sprintf("logic: node %q references undefined fanin ID %d", name, f))
		}
	}
	id := len(b.nodes)
	var negCopy []bool
	for _, inv := range neg {
		if inv {
			negCopy = append([]bool(nil), neg...)
			break
		}
	}
	b.nodes = append(b.nodes, Node{
		ID:    id,
		Name:  name,
		Type:  t,
		Fanin: append([]int(nil), fanin...),
		Neg:   negCopy,
	})
	b.byName[name] = id
	if t == Input {
		b.inputs = append(b.inputs, id)
	}
	return id
}

// MarkOutput declares net id as a primary output. Marking the same net
// twice is an error reported by Build.
func (b *Builder) MarkOutput(id int) {
	b.outputs = append(b.outputs, id)
}

// Build finalizes the circuit: computes fanout lists, checks output sanity,
// and derives topological order and levels. The builder may not be reused
// afterwards.
func (b *Builder) Build() (*Circuit, error) {
	c := &Circuit{
		Name:    b.name,
		Nodes:   b.nodes,
		Inputs:  b.inputs,
		Outputs: b.outputs,
		byName:  b.byName,
	}
	seen := make(map[int]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		if o < 0 || o >= len(c.Nodes) {
			return nil, fmt.Errorf("logic: circuit %q marks undefined net %d as output", c.Name, o)
		}
		if seen[o] {
			return nil, fmt.Errorf("logic: circuit %q marks net %q as output twice", c.Name, c.Nodes[o].Name)
		}
		seen[o] = true
	}
	for i := range c.Nodes {
		for _, f := range c.Nodes[i].Fanin {
			c.Nodes[f].Fanout = append(c.Nodes[f].Fanout, i)
		}
	}
	// Builder.add only permits references to already-created nodes, so IDs
	// are already topologically ordered; recompute levels in that order.
	c.topo = make([]int, len(c.Nodes))
	c.level = make([]int, len(c.Nodes))
	for i := range c.Nodes {
		c.topo[i] = i
		lvl := 0
		for _, f := range c.Nodes[i].Fanin {
			if c.level[f]+1 > lvl {
				lvl = c.level[f] + 1
			}
		}
		c.level[i] = lvl
	}
	return c, nil
}

// MustBuild is Build that panics on error, for statically known-good
// construction in tests and generators.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// TransitiveFanout returns the set of node IDs reachable from net start by
// following fanout edges, including start itself. The result is sorted.
func (c *Circuit) TransitiveFanout(start int) []int {
	mark := make([]bool, len(c.Nodes))
	stack := []int{start}
	mark[start] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range c.Nodes[n].Fanout {
			if !mark[fo] {
				mark[fo] = true
				stack = append(stack, fo)
			}
		}
	}
	return markedIDs(mark)
}

// TransitiveFanin returns the set of node IDs that can reach any of the
// given nets by following fanin edges, including the nets themselves.
// The result is sorted.
func (c *Circuit) TransitiveFanin(starts ...int) []int {
	mark := make([]bool, len(c.Nodes))
	var stack []int
	for _, s := range starts {
		if !mark[s] {
			mark[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fi := range c.Nodes[n].Fanin {
			if !mark[fi] {
				mark[fi] = true
				stack = append(stack, fi)
			}
		}
	}
	return markedIDs(mark)
}

func markedIDs(mark []bool) []int {
	var ids []int
	for i, m := range mark {
		if m {
			ids = append(ids, i)
		}
	}
	return ids
}

// OutputsIn returns the primary outputs of c that belong to the given
// sorted ID set.
func (c *Circuit) OutputsIn(ids []int) []int {
	var out []int
	for _, o := range c.Outputs {
		if containsSorted(ids, o) {
			out = append(out, o)
		}
	}
	return out
}

func containsSorted(ids []int, x int) bool {
	i := sort.SearchInts(ids, x)
	return i < len(ids) && ids[i] == x
}

// Stats summarizes a circuit's size and shape.
type Stats struct {
	Nodes     int
	Gates     int
	Inputs    int
	Outputs   int
	Depth     int
	MaxFanin  int
	MaxFanout int
}

// Stats computes summary statistics for the circuit.
func (c *Circuit) Stats() Stats {
	return Stats{
		Nodes:     c.NumNodes(),
		Gates:     c.NumGates(),
		Inputs:    len(c.Inputs),
		Outputs:   len(c.Outputs),
		Depth:     c.Depth(),
		MaxFanin:  c.MaxFanin(),
		MaxFanout: c.MaxFanout(),
	}
}

// String returns a one-line summary, e.g. "adder8: 41 gates, 17 in, 9 out".
func (c *Circuit) String() string {
	return fmt.Sprintf("%s: %d gates, %d in, %d out", c.Name, c.NumGates(), len(c.Inputs), len(c.Outputs))
}
