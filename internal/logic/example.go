package logic

// Figure4a constructs the working example circuit of Figure 4(a) of the
// paper, reconstructed from Formula 4.1 and the backtracking-tree walkthrough
// of Section 4.1. Nets a..e are primary inputs; the gates (AND/OR with input
// inversions, so the circuit has exactly the nine nets a..i) are:
//
//	f = AND(b, ¬c)   clauses (b + f̄)(c̄ + f̄)(b̄ + c + f)
//	g = OR(¬d, ¬e)   clauses (d + g)(e + g)(d̄ + ē + ḡ)
//	h = AND(a, f)    clauses (a + h̄)(f + h̄)(ā + f̄ + h)
//	i = AND(h, g)    clauses (h + ī)(g + ī)(h̄ + ḡ + i)
//
// plus the output-asserting unit clause (i). The reconstruction is pinned
// down by the paper's example partial assignment b=0, c=0, f=0, a=0, h=0
// being consistent and leaving exactly the sub-formula
// (d+g)(e+g)(d̄+ē+ḡ)(g+ī)(ī)(i), and by the cut {b,c,f,a,h} | {d,e,g,i}
// being crossed only by the net between h and i (Section 4.2). Under the
// paper's ordering A = b,c,f,a,h,d,e,g,i the circuit has cut-width 3
// (Figure 6).
func Figure4a() *Circuit {
	bld := NewBuilder("fig4a")
	a := bld.Input("a")
	b := bld.Input("b")
	c := bld.Input("c")
	d := bld.Input("d")
	e := bld.Input("e")
	f := bld.GateN(And, "f", []int{b, c}, []bool{false, true})
	g := bld.GateN(Or, "g", []int{d, e}, []bool{true, true})
	h := bld.Gate(And, "h", a, f)
	i := bld.Gate(And, "i", h, g)
	bld.MarkOutput(i)
	return bld.MustBuild()
}

// Figure4aOrderingA returns the paper's ordering A for the Figure 4(a)
// circuit — the variable order used for the backtracking tree of Figure 5
// and the minimum-cut-width ordering of Figure 6 — as node IDs.
func Figure4aOrderingA(c *Circuit) []int {
	names := []string{"b", "c", "f", "a", "h", "d", "e", "g", "i"}
	ids := make([]int, len(names))
	for k, n := range names {
		ids[k] = c.MustLookup(n)
	}
	return ids
}
