package logic

import (
	"fmt"
	"io"
)

// WriteDOT renders the circuit in Graphviz DOT format for debugging and
// documentation. Primary inputs are drawn as triangles, outputs are
// double-circled.
func (c *Circuit) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n", c.Name); err != nil {
		return err
	}
	outs := make(map[int]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		outs[o] = true
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		shape := "box"
		if n.Type == Input {
			shape = "triangle"
		}
		peripheries := 1
		if outs[i] {
			peripheries = 2
		}
		label := n.Name
		if n.Type != Input {
			label = fmt.Sprintf("%s\\n%s", n.Name, n.Type)
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\", shape=%s, peripheries=%d];\n", i, label, shape, peripheries); err != nil {
			return err
		}
	}
	for i := range c.Nodes {
		for _, f := range c.Nodes[i].Fanin {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", f, i); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
