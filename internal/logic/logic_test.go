package logic

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildHalfAdder(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("half")
	x := b.Input("x")
	y := b.Input("y")
	sum := b.Gate(Xor, "sum", x, y)
	carry := b.Gate(And, "carry", x, y)
	b.MarkOutput(sum)
	b.MarkOutput(carry)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestBuilderBasics(t *testing.T) {
	c := buildHalfAdder(t)
	if got := c.NumNodes(); got != 4 {
		t.Errorf("NumNodes = %d, want 4", got)
	}
	if got := c.NumGates(); got != 2 {
		t.Errorf("NumGates = %d, want 2", got)
	}
	if len(c.Inputs) != 2 || len(c.Outputs) != 2 {
		t.Errorf("inputs/outputs = %d/%d, want 2/2", len(c.Inputs), len(c.Outputs))
	}
	if id, ok := c.Lookup("sum"); !ok || c.Nodes[id].Type != Xor {
		t.Errorf("Lookup(sum) = %d,%v", id, ok)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("CheckInvariants: %v", err)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(b *Builder)
	}{
		{"duplicate name", func(b *Builder) { b.Input("x"); b.Input("x") }},
		{"not arity", func(b *Builder) { x := b.Input("x"); y := b.Input("y"); b.Gate(Not, "n", x, y) }},
		{"input with fanin", func(b *Builder) { x := b.Input("x"); b.Gate(Input, "i", x) }},
		{"and no fanin", func(b *Builder) { b.Gate(And, "a") }},
		{"undefined fanin", func(b *Builder) { b.Gate(And, "a", 5) }},
		{"neg length mismatch", func(b *Builder) {
			x := b.Input("x")
			y := b.Input("y")
			b.GateN(And, "a", []int{x, y}, []bool{true})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewBuilder("t"))
		})
	}
}

func TestBuildErrors(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x")
	b.MarkOutput(x)
	b.MarkOutput(x)
	if _, err := b.Build(); err == nil {
		t.Error("duplicate output: expected error")
	}

	b2 := NewBuilder("t2")
	b2.Input("x")
	b2.MarkOutput(7)
	if _, err := b2.Build(); err == nil {
		t.Error("undefined output: expected error")
	}
}

func TestGateTypeString(t *testing.T) {
	if And.String() != "AND" || Xnor.String() != "XNOR" || Input.String() != "INPUT" {
		t.Errorf("gate type names wrong: %s %s %s", And, Xnor, Input)
	}
	if got := GateType(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown type String = %q", got)
	}
	if GateType(200).Valid() {
		t.Error("GateType(200).Valid() = true")
	}
}

func TestEvalTruthTables(t *testing.T) {
	cases := []struct {
		t    GateType
		in   []bool
		want bool
	}{
		{Buf, []bool{true}, true},
		{Buf, []bool{false}, false},
		{Not, []bool{true}, false},
		{Not, []bool{false}, true},
		{And, []bool{true, true, true}, true},
		{And, []bool{true, false, true}, false},
		{Nand, []bool{true, true}, false},
		{Nand, []bool{true, false}, true},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Nor, []bool{true, false}, false},
		{Xor, []bool{true, true, true}, true},
		{Xor, []bool{true, true}, false},
		{Xnor, []bool{true, false}, false},
		{Xnor, []bool{true, true}, true},
	}
	for _, tc := range cases {
		if got := Eval(tc.t, tc.in); got != tc.want {
			t.Errorf("Eval(%s, %v) = %v, want %v", tc.t, tc.in, got, tc.want)
		}
	}
}

func TestEvalPanicsOnInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval(Input) should panic")
		}
	}()
	Eval(Input, nil)
}

// TestEval64MatchesEval is a property test: the bit-parallel evaluator must
// agree with the scalar one on every bit position.
func TestEval64MatchesEval(t *testing.T) {
	types := []GateType{Buf, Not, And, Or, Nand, Nor, Xor, Xnor}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gt := types[rng.Intn(len(types))]
		arity := 1
		if gt != Buf && gt != Not {
			arity = 1 + rng.Intn(4)
		}
		words := make([]uint64, arity)
		for i := range words {
			words[i] = rng.Uint64()
		}
		got := Eval64(gt, words)
		for bit := 0; bit < 64; bit++ {
			in := make([]bool, arity)
			for i := range in {
				in[i] = words[i]>>uint(bit)&1 == 1
			}
			want := Eval(gt, in)
			if (got>>uint(bit)&1 == 1) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimulateHalfAdder(t *testing.T) {
	c := buildHalfAdder(t)
	for _, tc := range []struct {
		x, y, sum, carry bool
	}{
		{false, false, false, false},
		{false, true, true, false},
		{true, false, true, false},
		{true, true, false, true},
	} {
		out := c.SimulateOutputs([]bool{tc.x, tc.y})
		if out[0] != tc.sum || out[1] != tc.carry {
			t.Errorf("x=%v y=%v: got sum=%v carry=%v, want %v %v", tc.x, tc.y, out[0], out[1], tc.sum, tc.carry)
		}
	}
}

func TestSimulateConstsAndInversions(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x")
	one := b.Const("one", true)
	zero := b.Const("zero", false)
	// g = AND(¬x, 1): equals ¬x.
	g := b.GateN(And, "g", []int{x, one}, []bool{true, false})
	// h = OR(x, ¬0): always 1.
	h := b.GateN(Or, "h", []int{x, zero}, []bool{false, true})
	b.MarkOutput(g)
	b.MarkOutput(h)
	c := b.MustBuild()
	for _, xv := range []bool{false, true} {
		out := c.SimulateOutputs([]bool{xv})
		if out[0] != !xv {
			t.Errorf("x=%v: g = %v, want %v", xv, out[0], !xv)
		}
		if out[1] != true {
			t.Errorf("x=%v: h = %v, want true", xv, out[1])
		}
	}
}

func TestSimulatePanicsOnBadWidth(t *testing.T) {
	c := buildHalfAdder(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong input width")
		}
	}()
	c.Simulate([]bool{true})
}

// TestSimulate64MatchesSimulate checks the parallel simulator against the
// scalar simulator on a random circuit over random patterns.
func TestSimulate64MatchesSimulate(t *testing.T) {
	c := randomCircuit(t, rand.New(rand.NewSource(7)), 40)
	rng := rand.New(rand.NewSource(8))
	words := make([]uint64, len(c.Inputs))
	for i := range words {
		words[i] = rng.Uint64()
	}
	got := c.Simulate64(words)
	for bit := 0; bit < 64; bit++ {
		in := make([]bool, len(c.Inputs))
		for i := range in {
			in[i] = words[i]>>uint(bit)&1 == 1
		}
		want := c.Simulate(in)
		for id := range want {
			if (got[id]>>uint(bit)&1 == 1) != want[id] {
				t.Fatalf("bit %d node %d: parallel %v, scalar %v", bit, id, got[id]>>uint(bit)&1, want[id])
			}
		}
	}
}

func TestSimulateWithFault(t *testing.T) {
	c := Figure4a()
	f := c.MustLookup("f")
	i := c.MustLookup("i")
	// Good circuit: a=1,b=1,c=0,d=0,e=0 → f=1,h=1,g=1,i=1.
	in := []bool{true, true, false, false, false}
	good := c.Simulate(in)
	if !good[i] {
		t.Fatalf("good circuit output = 0, want 1")
	}
	// f stuck-at-0 kills the output under this vector.
	faulty := c.SimulateWith(in, map[int]bool{f: false})
	if faulty[i] {
		t.Errorf("f/0 faulty output = 1, want 0")
	}
}

// randomCircuit builds a random well-formed circuit with n gates for
// property tests.
func randomCircuit(t *testing.T, rng *rand.Rand, n int) *Circuit {
	t.Helper()
	b := NewBuilder("rand")
	nin := 3 + rng.Intn(5)
	for i := 0; i < nin; i++ {
		b.Input("in" + string(rune('a'+i)))
	}
	types := []GateType{And, Or, Nand, Nor, Xor, Not, Buf}
	for i := 0; i < n; i++ {
		gt := types[rng.Intn(len(types))]
		arity := 1
		if gt != Not && gt != Buf {
			arity = 1 + rng.Intn(3)
		}
		fanin := make([]int, arity)
		neg := make([]bool, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(b.NumNodes())
			neg[j] = rng.Intn(4) == 0
		}
		b.GateN(gt, "g"+itoa(i), fanin, neg)
	}
	last := b.NumNodes() - 1
	b.MarkOutput(last)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("random Build: %v", err)
	}
	return c
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestTransitiveCones(t *testing.T) {
	c := Figure4a()
	a, b := c.MustLookup("a"), c.MustLookup("b")
	f, g, h, i := c.MustLookup("f"), c.MustLookup("g"), c.MustLookup("h"), c.MustLookup("i")

	fo := c.TransitiveFanout(f)
	want := []int{f, h, i}
	if !equalInts(fo, want) {
		t.Errorf("TransitiveFanout(f) = %v, want %v", fo, want)
	}

	fi := c.TransitiveFanin(h)
	if !containsSorted(fi, a) || !containsSorted(fi, b) || !containsSorted(fi, f) || containsSorted(fi, g) {
		t.Errorf("TransitiveFanin(h) = %v", fi)
	}

	all := c.TransitiveFanin(i)
	if len(all) != c.NumNodes() {
		t.Errorf("TransitiveFanin(i) covers %d nodes, want all %d", len(all), c.NumNodes())
	}
}

func TestLevelsAndDepth(t *testing.T) {
	c := Figure4a()
	if got := c.Level(c.MustLookup("a")); got != 0 {
		t.Errorf("level(a) = %d, want 0", got)
	}
	if got := c.Level(c.MustLookup("f")); got != 1 {
		t.Errorf("level(f) = %d, want 1", got)
	}
	if got := c.Level(c.MustLookup("h")); got != 2 {
		t.Errorf("level(h) = %d, want 2", got)
	}
	if got := c.Depth(); got != 3 {
		t.Errorf("depth = %d, want 3", got)
	}
}

func TestStatsAndString(t *testing.T) {
	c := Figure4a()
	s := c.Stats()
	if s.Gates != 4 || s.Inputs != 5 || s.Outputs != 1 || s.Nodes != 9 {
		t.Errorf("Stats = %+v", s)
	}
	if s.MaxFanin != 2 {
		t.Errorf("MaxFanin = %d, want 2", s.MaxFanin)
	}
	if s.MaxFanout != 1 {
		t.Errorf("MaxFanout = %d, want 1 (fig4a is a tree)", s.MaxFanout)
	}
	if got := c.String(); !strings.Contains(got, "4 gates") {
		t.Errorf("String = %q", got)
	}
}

func TestConeExtraction(t *testing.T) {
	c := Figure4a()
	h := c.MustLookup("h")
	cone, err := c.Cone("hcone", h)
	if err != nil {
		t.Fatalf("Cone: %v", err)
	}
	// h's cone is a, b, c, f, h.
	if cone.NumNodes() != 5 {
		t.Errorf("cone has %d nodes, want 5", cone.NumNodes())
	}
	if len(cone.Outputs) != 1 || cone.Nodes[cone.Outputs[0]].Name != "h" {
		t.Errorf("cone outputs = %v", cone.Names(cone.Outputs))
	}
	if err := cone.CheckInvariants(); err != nil {
		t.Errorf("cone invariants: %v", err)
	}
	// The cone must compute the same function as the parent net.
	for pat := 0; pat < 8; pat++ {
		av, bv, cv := pat&1 == 1, pat&2 == 2, pat&4 == 4
		parentVals := c.Simulate([]bool{av, bv, cv, false, false})
		coneOut := cone.SimulateOutputs([]bool{av, bv, cv})
		if coneOut[0] != parentVals[h] {
			t.Errorf("pat %d: cone=%v parent=%v", pat, coneOut[0], parentVals[h])
		}
	}
	// Mapping round-trip.
	for sid, pid := range cone.ToParent {
		if cone.FromParent[pid] != sid {
			t.Errorf("mapping mismatch at sub %d parent %d", sid, pid)
		}
	}
}

func TestInducedCutInputs(t *testing.T) {
	c := Figure4a()
	h, i, g := c.MustLookup("h"), c.MustLookup("i"), c.MustLookup("g")
	// Induce on {h, g, i} with h,g missing their drivers → both become inputs.
	sub, err := c.Induced("sub", []int{h, g, i})
	if err != nil {
		t.Fatalf("Induced: %v", err)
	}
	if len(sub.Inputs) != 2 {
		t.Errorf("induced inputs = %v, want h and g as cut inputs", sub.Names(sub.Inputs))
	}
	if len(sub.Outputs) != 1 || sub.Nodes[sub.Outputs[0]].Name != "i" {
		t.Errorf("induced outputs = %v", sub.Names(sub.Outputs))
	}
	// i = AND(h,g) must survive.
	out := sub.SimulateOutputs([]bool{true, true})
	if !out[0] {
		t.Errorf("induced AND(1,1) = %v", out[0])
	}
	if err := sub.CheckInvariants(); err != nil {
		t.Errorf("induced invariants: %v", err)
	}
}

func TestInducedErrors(t *testing.T) {
	c := Figure4a()
	if _, err := c.Induced("bad", []int{999}); err == nil {
		t.Error("out-of-range id: expected error")
	}
	if _, err := c.Induced("bad", []int{0}, 5); err == nil {
		t.Error("extra output outside set: expected error")
	}
}

func TestCloneEquivalence(t *testing.T) {
	c := randomCircuit(t, rand.New(rand.NewSource(99)), 60)
	cl := c.Clone()
	if err := cl.CheckInvariants(); err != nil {
		t.Fatalf("clone invariants: %v", err)
	}
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 50; trial++ {
		in := make([]bool, len(c.Inputs))
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		a := c.SimulateOutputs(in)
		b := cl.SimulateOutputs(in)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: clone differs at output %d", trial, i)
			}
		}
	}
}

func TestFigure4aFunction(t *testing.T) {
	c := Figure4a()
	// Exhaustive: i = AND(AND(a, AND(b,¬c)), OR(¬d,¬e)).
	for pat := 0; pat < 32; pat++ {
		in := []bool{pat&1 == 1, pat&2 == 2, pat&4 == 4, pat&8 == 8, pat&16 == 16}
		a, b, cc, d, e := in[0], in[1], in[2], in[3], in[4]
		f := b && !cc
		g := !d || !e
		h := a && f
		want := h && g
		got := c.SimulateOutputs(in)[0]
		if got != want {
			t.Errorf("pattern %05b: got %v, want %v", pat, got, want)
		}
	}
}

func TestFigure4aOrderingA(t *testing.T) {
	c := Figure4a()
	ord := Figure4aOrderingA(c)
	if len(ord) != 9 {
		t.Fatalf("ordering has %d nodes, want 9", len(ord))
	}
	seen := map[int]bool{}
	for _, id := range ord {
		if seen[id] {
			t.Fatalf("duplicate node %d in ordering", id)
		}
		seen[id] = true
	}
}

func TestWriteDOT(t *testing.T) {
	c := Figure4a()
	var sb strings.Builder
	if err := c.WriteDOT(&sb); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	s := sb.String()
	for _, want := range []string{"digraph", "triangle", "peripheries=2", "->"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

// TestRandomCircuitInvariants is a property test over the random circuit
// generator used throughout the test suite.
func TestRandomCircuitInvariants(t *testing.T) {
	check := func(seed int64) bool {
		c := randomCircuit(t, rand.New(rand.NewSource(seed)), 30)
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAccessorHelpers(t *testing.T) {
	c := Figure4a()
	i := c.MustLookup("i")
	if n := c.Node(i); n.Name != "i" || n.Type != And {
		t.Errorf("Node(i) = %+v", n)
	}
	if !c.IsOutput(i) {
		t.Error("i should be an output")
	}
	if c.IsOutput(c.MustLookup("a")) {
		t.Error("a is not an output")
	}
	topo := c.TopoOrder()
	if len(topo) != c.NumNodes() {
		t.Errorf("TopoOrder covers %d nodes", len(topo))
	}
	names := c.Names([]int{c.MustLookup("a"), i})
	if len(names) != 2 || names[0] != "a" || names[1] != "i" {
		t.Errorf("Names = %v", names)
	}
	in := c.TransitiveFanin(i)
	outs := c.OutputsIn(in)
	if len(outs) != 1 || outs[0] != i {
		t.Errorf("OutputsIn = %v", outs)
	}
	if got := c.OutputsIn([]int{c.MustLookup("a")}); len(got) != 0 {
		t.Errorf("OutputsIn(a) = %v", got)
	}
}

func TestBuilderLookupAndMustLookupPanic(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x")
	if got, ok := b.Lookup("x"); !ok || got != x {
		t.Errorf("Builder.Lookup = %d,%v", got, ok)
	}
	if _, ok := b.Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
	b.MarkOutput(x)
	c := b.MustBuild()
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on missing name should panic")
		}
	}()
	c.MustLookup("nope")
}

func TestMustBuildPanicsOnError(t *testing.T) {
	b := NewBuilder("bad")
	b.Input("x")
	b.MarkOutput(9)
	defer func() {
		if recover() == nil {
			t.Error("MustBuild on invalid circuit should panic")
		}
	}()
	b.MustBuild()
}
