package logic

import "fmt"

// Eval computes the output of a gate of type t from its input values.
// It panics for Input/Const types, which have no inputs to evaluate
// (use Simulate for whole-circuit evaluation, which handles them).
func Eval(t GateType, in []bool) bool {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		v := true
		for _, x := range in {
			v = v && x
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, x := range in {
			v = v || x
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, x := range in {
			v = v != x
		}
		if t == Xnor {
			return !v
		}
		return v
	default:
		panic(fmt.Sprintf("logic: Eval on %s gate", t))
	}
}

// Eval64 is Eval over 64 patterns packed one per bit.
func Eval64(t GateType, in []uint64) uint64 {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And, Nand:
		v := ^uint64(0)
		for _, x := range in {
			v &= x
		}
		if t == Nand {
			return ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, x := range in {
			v |= x
		}
		if t == Nor {
			return ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, x := range in {
			v ^= x
		}
		if t == Xnor {
			return ^v
		}
		return v
	default:
		panic(fmt.Sprintf("logic: Eval64 on %s gate", t))
	}
}

// Simulate evaluates the circuit on one input pattern. inputs[i] is the
// value of c.Inputs[i]. It returns the value of every net, indexed by
// node ID. len(inputs) must equal len(c.Inputs).
func (c *Circuit) Simulate(inputs []bool) []bool {
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("logic: Simulate on %q: %d input values for %d inputs", c.Name, len(inputs), len(c.Inputs)))
	}
	vals := make([]bool, len(c.Nodes))
	for i, in := range c.Inputs {
		vals[in] = inputs[i]
	}
	var buf []bool
	for _, id := range c.topo {
		n := &c.Nodes[id]
		switch n.Type {
		case Input:
			// already set
		case Const0:
			vals[id] = false
		case Const1:
			vals[id] = true
		default:
			buf = buf[:0]
			for i, f := range n.Fanin {
				buf = append(buf, vals[f] != n.Negated(i))
			}
			vals[id] = Eval(n.Type, buf)
		}
	}
	return vals
}

// SimulateOutputs evaluates the circuit and returns just the primary
// output values, in c.Outputs order.
func (c *Circuit) SimulateOutputs(inputs []bool) []bool {
	vals := c.Simulate(inputs)
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = vals[o]
	}
	return out
}

// Simulate64 evaluates 64 input patterns at once. inputs[i] packs the
// 64 values of primary input i, one per bit. It returns the 64 values of
// every net, indexed by node ID.
func (c *Circuit) Simulate64(inputs []uint64) []uint64 {
	return c.Simulate64Into(nil, inputs)
}

// Simulate64Into is Simulate64 reusing dst's backing array when it is
// large enough (contents are overwritten). Repeated fault-simulation
// batches use it to keep the good-value simulation allocation-free.
func (c *Circuit) Simulate64Into(dst []uint64, inputs []uint64) []uint64 {
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("logic: Simulate64 on %q: %d input words for %d inputs", c.Name, len(inputs), len(c.Inputs)))
	}
	vals := dst
	if cap(vals) >= len(c.Nodes) {
		vals = vals[:len(c.Nodes)]
		clear(vals)
	} else {
		vals = make([]uint64, len(c.Nodes))
	}
	for i, in := range c.Inputs {
		vals[in] = inputs[i]
	}
	// Stack-backed fanin buffer: Eval64 never retains its argument, so
	// gates with fanin <= 8 (all of them, in practice) evaluate without
	// touching the heap.
	var bufArr [8]uint64
	buf := bufArr[:0]
	for _, id := range c.topo {
		n := &c.Nodes[id]
		switch n.Type {
		case Input:
		case Const0:
			vals[id] = 0
		case Const1:
			vals[id] = ^uint64(0)
		default:
			buf = buf[:0]
			for i, f := range n.Fanin {
				v := vals[f]
				if n.Negated(i) {
					v = ^v
				}
				buf = append(buf, v)
			}
			vals[id] = Eval64(n.Type, buf)
		}
	}
	return vals
}

// SimulateWith evaluates the circuit on one pattern but with the given
// nets forced to fixed values (fault injection): forced maps node ID to
// the asserted value, overriding the node's computed function. This is
// the faulted circuit C_psi of the paper when forced holds a single
// stuck-at entry.
func (c *Circuit) SimulateWith(inputs []bool, forced map[int]bool) []bool {
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("logic: SimulateWith on %q: %d input values for %d inputs", c.Name, len(inputs), len(c.Inputs)))
	}
	vals := make([]bool, len(c.Nodes))
	for i, in := range c.Inputs {
		vals[in] = inputs[i]
	}
	var buf []bool
	for _, id := range c.topo {
		if v, ok := forced[id]; ok {
			vals[id] = v
			continue
		}
		n := &c.Nodes[id]
		switch n.Type {
		case Input:
		case Const0:
			vals[id] = false
		case Const1:
			vals[id] = true
		default:
			buf = buf[:0]
			for i, f := range n.Fanin {
				buf = append(buf, vals[f] != n.Negated(i))
			}
			vals[id] = Eval(n.Type, buf)
		}
	}
	return vals
}
