package blif

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"atpgeasy/internal/ioguard"
	"atpgeasy/internal/logic"
)

// TestMalformedBLIFErrors pins the parser's no-panic contract on inputs
// that previously escalated into circuit-builder panics or were
// otherwise under-diagnosed.
func TestMalformedBLIFErrors(t *testing.T) {
	cases := map[string]string{
		"aux-name-collision": ".model m\n.inputs a b y$blif1\n.outputs y\n.names a b y\n11 1\n00 1\n.end\n",
		"row-outside-names":  ".model m\n.inputs a\n11 1\n.end\n",
		"bad-cover-char":     ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
		"mixed-phase":        ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n",
		"latch":              ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n",
		"missing-model":      ".inputs a\n.outputs y\n.names a y\n1 1\n.end\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: Read accepted malformed input", name)
		}
	}
}

func interfaceNames(c *logic.Circuit, ids []int) []string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = c.Nodes[id].Name
	}
	sort.Strings(names)
	return names
}

// TestReadCapped pins the pre-parse admission bounds for BLIF input.
func TestReadCapped(t *testing.T) {
	good := ".model m\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n"
	if _, err := ReadCapped(strings.NewReader(good), 1<<10, 1<<10); err != nil {
		t.Fatalf("capped read of valid model: %v", err)
	}
	_, err := ReadCapped(strings.NewReader(good), int64(len(good))-1, 0)
	if !errors.Is(err, ioguard.ErrTooLarge) {
		t.Fatalf("over byte cap: got %v, want ErrTooLarge", err)
	}
	long := "# " + strings.Repeat("x", 4096) + "\n" + good
	_, err = ReadCapped(strings.NewReader(long), 0, 256)
	if !errors.Is(err, ioguard.ErrLineTooLong) {
		t.Fatalf("over line cap: got %v, want ErrLineTooLong", err)
	}
}

// FuzzParseBLIF hunts for panics and round-trip breaks: any model the
// parser accepts must re-emit and re-parse with the same interface.
func FuzzParseBLIF(f *testing.F) {
	seeds, err := filepath.Glob("../../examples/netlists/*.blif")
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed corpus: %v", err)
	}
	for _, p := range seeds {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add(".model m\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n")
	f.Add(".model m\n.outputs y\n.names y\n1\n.end\n")
	// Pathological shapes the ingestion caps exist for: a giant .inputs
	// line, an unbounded line-continuation chain, a wide cover, and an
	// oversized body.
	f.Add(".model m\n.inputs " + strings.Repeat("a", 1<<13) + "\n.end\n")
	f.Add(".model m\n.inputs a\n" + strings.Repeat("\\\n", 1<<12) + ".end\n")
	f.Add(".model m\n.inputs a b\n.outputs y\n.names a b y\n" + strings.Repeat("11 1\n", 1<<10) + ".end\n")
	f.Fuzz(func(t *testing.T, src string) {
		// The capped entry point is the one servers use; generous caps
		// keep real seeds parsing while pathological ones must reject
		// cleanly, never panic or OOM.
		c, err := ReadCapped(strings.NewReader(src), 1<<20, 1<<16)
		if err != nil {
			return // rejected cleanly
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return // e.g. parity gates too wide to enumerate
		}
		c2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("accepted model fails to re-parse after Write: %v\n%s", err, buf.String())
		}
		in1, in2 := interfaceNames(c, c.Inputs), interfaceNames(c2, c2.Inputs)
		out1, out2 := interfaceNames(c, c.Outputs), interfaceNames(c2, c2.Outputs)
		if strings.Join(in1, "\x00") != strings.Join(in2, "\x00") ||
			strings.Join(out1, "\x00") != strings.Join(out2, "\x00") {
			t.Fatalf("interface changed across a write/read round trip\n%s", buf.String())
		}
	})
}
