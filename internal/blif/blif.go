// Package blif reads and writes a combinational subset of the Berkeley
// Logic Interchange Format (BLIF) — the MCNC91 benchmark distribution
// format and the native format of SIS, whose tech_decomp output the paper
// consumes. Supported constructs: .model, .inputs, .outputs, .names with
// single-output SOP covers, and .end. Latches, subcircuits and multiple
// models are rejected.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"atpgeasy/internal/ioguard"
	"atpgeasy/internal/logic"
)

// namesBlock is one parsed .names construct.
type namesBlock struct {
	ins    []string
	out    string
	rows   []string // input parts of the cover rows
	phase  byte     // '1' or '0': the common output phase
	lineNo int
}

// Read parses a BLIF model into a circuit. Malformed input yields an
// error with the offending line; it never panics.
func Read(r io.Reader) (c *logic.Circuit, err error) {
	// A panic escaping the parser — e.g. a circuit-builder invariant
	// violated by pathological input (a net name colliding with the
	// parser's generated auxiliary names, say) — is a parse error, not a
	// reason to take down the caller.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("blif: malformed model: %v", r)
		}
	}()
	return read(r, 0)
}

// ReadCapped is Read with explicit pre-parse input caps for untrusted
// sources: input over maxBytes bytes is rejected with
// ioguard.ErrTooLarge before the parser sees it, and any single line
// over maxLine with ioguard.ErrLineTooLong (non-positive caps select
// the Read defaults: no byte cap, ioguard.DefaultMaxLine).
func ReadCapped(r io.Reader, maxBytes int64, maxLine int) (c *logic.Circuit, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("blif: malformed model: %v", r)
		}
	}()
	return read(ioguard.CapBytes(r, maxBytes), maxLine)
}

func read(r io.Reader, maxLine int) (*logic.Circuit, error) {
	sc := ioguard.Scanner(r, maxLine)
	var model string
	var inputs, outputs []string
	var blocks []*namesBlock
	var cur *namesBlock
	lineNo := 0
	ended := false
	// Handle "\" line continuations.
	var pendingLine string
	readLine := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			part := strings.TrimSpace(sc.Text())
			if strings.HasSuffix(part, "\\") {
				pendingLine += strings.TrimSuffix(part, "\\") + " "
				continue
			}
			line := pendingLine + part
			pendingLine = ""
			return line, true
		}
		return "", false
	}
	for {
		line, ok := readLine()
		if !ok {
			break
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if ended {
			return nil, fmt.Errorf("blif: line %d: content after .end", lineNo)
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if model != "" {
				return nil, fmt.Errorf("blif: line %d: multiple .model constructs", lineNo)
			}
			if len(fields) > 1 {
				model = fields[1]
			} else {
				model = "blif"
			}
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
			cur = nil
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
			cur = nil
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: line %d: .names needs at least an output", lineNo)
			}
			cur = &namesBlock{
				ins:    fields[1 : len(fields)-1],
				out:    fields[len(fields)-1],
				lineNo: lineNo,
			}
			blocks = append(blocks, cur)
		case ".end":
			ended = true
			cur = nil
		case ".latch", ".subckt", ".gate", ".mlatch", ".exdc":
			return nil, fmt.Errorf("blif: line %d: %s not supported (combinational single-model subset)", lineNo, fields[0])
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("blif: line %d: unknown construct %s", lineNo, fields[0])
			}
			if cur == nil {
				return nil, fmt.Errorf("blif: line %d: cover row outside .names", lineNo)
			}
			var inPart, outPart string
			if len(cur.ins) == 0 {
				if len(fields) != 1 {
					return nil, fmt.Errorf("blif: line %d: constant cover row must be a single output value", lineNo)
				}
				inPart, outPart = "", fields[0]
			} else {
				if len(fields) != 2 {
					return nil, fmt.Errorf("blif: line %d: cover row needs input part and output value", lineNo)
				}
				inPart, outPart = fields[0], fields[1]
				if len(inPart) != len(cur.ins) {
					return nil, fmt.Errorf("blif: line %d: cover row width %d for %d inputs", lineNo, len(inPart), len(cur.ins))
				}
				for _, ch := range inPart {
					if ch != '0' && ch != '1' && ch != '-' {
						return nil, fmt.Errorf("blif: line %d: bad cover character %q", lineNo, ch)
					}
				}
			}
			if outPart != "0" && outPart != "1" {
				return nil, fmt.Errorf("blif: line %d: output value must be 0 or 1", lineNo)
			}
			if cur.phase == 0 {
				cur.phase = outPart[0]
			} else if cur.phase != outPart[0] {
				return nil, fmt.Errorf("blif: line %d: mixed output phases in one .names", lineNo)
			}
			cur.rows = append(cur.rows, inPart)
		}
	}
	if err := ioguard.ScanErr("blif", sc.Err(), maxLine); err != nil {
		return nil, err
	}
	if model == "" {
		return nil, fmt.Errorf("blif: missing .model")
	}

	b := logic.NewBuilder(model)
	ids := map[string]int{}
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("blif: duplicate input %q", in)
		}
		ids[in] = b.Input(in)
	}
	// Topologically emit the .names blocks.
	pending := append([]*namesBlock(nil), blocks...)
	for len(pending) > 0 {
		progressed := false
		var next []*namesBlock
		for _, nb := range pending {
			ready := true
			for _, in := range nb.ins {
				if _, ok := ids[in]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, nb)
				continue
			}
			if _, dup := ids[nb.out]; dup {
				return nil, fmt.Errorf("blif: line %d: net %q driven twice", nb.lineNo, nb.out)
			}
			id, err := emitNames(b, nb, ids)
			if err != nil {
				return nil, err
			}
			ids[nb.out] = id
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("blif: undriven nets or cycle involving %q", next[0].out)
		}
		pending = next
	}
	for _, out := range outputs {
		id, ok := ids[out]
		if !ok {
			return nil, fmt.Errorf("blif: output %q is not driven", out)
		}
		b.MarkOutput(id)
	}
	return b.Build()
}

// emitNames builds the gate network for one SOP cover and returns the net
// carrying the block's function, named nb.out.
func emitNames(b *logic.Builder, nb *namesBlock, ids map[string]int) (int, error) {
	fanin := make([]int, len(nb.ins))
	for i, in := range nb.ins {
		fanin[i] = ids[in]
	}
	// Constant blocks.
	if len(nb.ins) == 0 {
		// No rows, or rows of "0": constant 0; a "1" row: constant 1.
		return b.Const(nb.out, nb.phase == '1' && len(nb.rows) > 0), nil
	}
	if len(nb.rows) == 0 {
		return b.Const(nb.out, false), nil
	}
	onPhase := nb.phase == '1'
	// Build one product term per row.
	aux := 0
	fresh := func() string {
		aux++
		return fmt.Sprintf("%s$blif%d", nb.out, aux)
	}
	var terms []int
	var termNeg []bool
	for _, row := range nb.rows {
		var lits []int
		var negs []bool
		for i, ch := range row {
			if ch == '-' {
				continue
			}
			lits = append(lits, fanin[i])
			negs = append(negs, ch == '0')
		}
		switch len(lits) {
		case 0:
			// Row of all don't-cares: function is constant onPhase.
			return b.Const(nb.out, onPhase), nil
		case 1:
			terms = append(terms, lits[0])
			termNeg = append(termNeg, negs[0])
		default:
			terms = append(terms, b.GateN(logic.And, fresh(), lits, negs))
			termNeg = append(termNeg, false)
		}
	}
	var root int
	switch {
	case len(terms) == 1 && onPhase:
		root = b.GateN(logic.Buf, nb.out, terms[:1], termNeg[:1])
	case len(terms) == 1:
		root = b.GateN(logic.Buf, nb.out, terms[:1], []bool{!termNeg[0]})
	case onPhase:
		root = b.GateN(logic.Or, nb.out, terms, termNeg)
	default:
		// Complemented cover: ¬(t1 ∨ … ∨ tk) = NOR.
		root = b.GateN(logic.Nor, nb.out, terms, termNeg)
	}
	return root, nil
}

// Write emits the circuit as a BLIF model. Each gate becomes one .names
// block; XOR/XNOR covers enumerate the 2^(k-1) parity rows (gate fanin is
// expected to be small — run decomp first for wide parity gates).
func Write(w io.Writer, c *logic.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", c.Name)
	fmt.Fprint(bw, ".inputs")
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, " %s", c.Nodes[in].Name)
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".outputs")
	for _, out := range c.Outputs {
		fmt.Fprintf(bw, " %s", c.Nodes[out].Name)
	}
	fmt.Fprintln(bw)
	for _, id := range c.TopoOrder() {
		n := &c.Nodes[id]
		if n.Type == logic.Input {
			continue
		}
		if err := writeNames(bw, c, n); err != nil {
			return err
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeNames(bw *bufio.Writer, c *logic.Circuit, n *logic.Node) error {
	fmt.Fprint(bw, ".names")
	for _, f := range n.Fanin {
		fmt.Fprintf(bw, " %s", c.Nodes[f].Name)
	}
	fmt.Fprintf(bw, " %s\n", n.Name)
	k := len(n.Fanin)
	lit := func(i int, on bool) byte {
		// Cover character selecting the input value that makes input i
		// "active" (true at the gate after the bubble) when on.
		if on != n.Negated(i) {
			return '1'
		}
		return '0'
	}
	switch n.Type {
	case logic.Const0:
		// Empty cover: constant 0.
	case logic.Const1:
		fmt.Fprintln(bw, "1")
	case logic.Buf:
		fmt.Fprintf(bw, "%c 1\n", lit(0, true))
	case logic.Not:
		fmt.Fprintf(bw, "%c 1\n", lit(0, false))
	case logic.And, logic.Nand:
		row := make([]byte, k)
		for i := range row {
			row[i] = lit(i, true)
		}
		if n.Type == logic.And {
			fmt.Fprintf(bw, "%s 1\n", row)
		} else {
			fmt.Fprintf(bw, "%s 0\n", row)
		}
	case logic.Or, logic.Nor:
		out := byte('1')
		if n.Type == logic.Nor {
			out = '0'
		}
		for i := 0; i < k; i++ {
			row := make([]byte, k)
			for j := range row {
				row[j] = '-'
			}
			row[i] = lit(i, true)
			fmt.Fprintf(bw, "%s %c\n", row, out)
		}
	case logic.Xor, logic.Xnor:
		if k > 16 {
			return fmt.Errorf("blif: %d-input parity gate %q too wide to enumerate", k, n.Name)
		}
		want := n.Type == logic.Xor
		for pat := 0; pat < 1<<uint(k); pat++ {
			parity := false
			row := make([]byte, k)
			for i := 0; i < k; i++ {
				on := pat>>uint(i)&1 == 1
				if on {
					parity = !parity
				}
				row[i] = lit(i, on)
			}
			if parity == want {
				fmt.Fprintf(bw, "%s 1\n", row)
			}
		}
	default:
		return fmt.Errorf("blif: unsupported gate type %s", n.Type)
	}
	return nil
}
