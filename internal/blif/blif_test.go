package blif

import (
	"math/rand"
	"strings"
	"testing"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
)

const sample = `
# a small model
.model demo
.inputs a b c
.outputs f g k one
.names a b t
11 1
.names t c f
1- 1
-1 1
# complemented cover: g = ~(a + ~b)
.names a b g
1- 0
-0 0
.names one
1
.names a b \
 c k
11- 1
--1 1
.end
`

func TestReadSample(t *testing.T) {
	c, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" {
		t.Errorf("model = %q", c.Name)
	}
	if len(c.Inputs) != 3 || len(c.Outputs) != 4 {
		t.Fatalf("interface: %d/%d", len(c.Inputs), len(c.Outputs))
	}
	for pat := 0; pat < 8; pat++ {
		a, b, cc := pat&1 == 1, pat&2 == 2, pat&4 == 4
		out := c.SimulateOutputs([]bool{a, b, cc})
		f := (a && b) || cc
		g := !(a || !b)
		k := (a && b) || cc
		if out[0] != f || out[1] != g || out[2] != k || out[3] != true {
			t.Errorf("pat %03b: got %v, want [%v %v %v true]", pat, out, f, g, k)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no model":      ".inputs a\n.outputs a\n.end\n",
		"latch":         ".model m\n.inputs a\n.outputs q\n.latch a q\n.end\n",
		"subckt":        ".model m\n.subckt foo\n.end\n",
		"two models":    ".model m\n.model n\n.end\n",
		"row outside":   ".model m\n.inputs a\n11 1\n.end\n",
		"bad char":      ".model m\n.inputs a\n.outputs f\n.names a f\nx 1\n.end\n",
		"width":         ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n",
		"mixed phase":   ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n",
		"undriven":      ".model m\n.inputs a\n.outputs f\n.end\n",
		"after end":     ".model m\n.inputs a\n.outputs a\n.end\n.names a b\n",
		"double driven": ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end\n",
		"cycle":         ".model m\n.inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n",
		"bad out value": ".model m\n.inputs a\n.outputs f\n.names a f\n1 2\n.end\n",
		"unknown dot":   ".model m\n.wibble\n.end\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestConstantsAndDontCares(t *testing.T) {
	src := `.model k
.inputs a
.outputs zero tauto
.names zero
.names a tauto
- 1
.end
`
	c, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := c.SimulateOutputs([]bool{true})
	if out[0] != false || out[1] != true {
		t.Errorf("constants: %v", out)
	}
}

func TestRoundTrip(t *testing.T) {
	circuits := []*logic.Circuit{
		gen.RippleAdder(4),
		gen.ALU(3),
		logic.Figure4a(),
		gen.ParityTree(6),
	}
	for _, orig := range circuits {
		var sb strings.Builder
		if err := Write(&sb, orig); err != nil {
			t.Fatalf("%s: Write: %v", orig.Name, err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: Read: %v\n%s", orig.Name, err, sb.String())
		}
		if len(back.Inputs) != len(orig.Inputs) || len(back.Outputs) != len(orig.Outputs) {
			t.Fatalf("%s: interface changed", orig.Name)
		}
		rng := rand.New(rand.NewSource(8))
		for trial := 0; trial < 60; trial++ {
			in := make([]bool, len(orig.Inputs))
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			a := orig.SimulateOutputs(in)
			b := back.SimulateOutputs(in)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s trial %d: output %d differs", orig.Name, trial, i)
				}
			}
		}
	}
}

func TestRoundTripWithGateVariety(t *testing.T) {
	b := logic.NewBuilder("variety")
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	one := b.Const("one", true)
	zero := b.Const("zero", false)
	nand := b.Gate(logic.Nand, "nand3", x, y, z)
	nor := b.GateN(logic.Nor, "nor2", []int{x, y}, []bool{true, false})
	xnor := b.Gate(logic.Xnor, "xnor3", x, y, z)
	not := b.Gate(logic.Not, "inv", x)
	buf := b.GateN(logic.Buf, "buf", []int{y}, []bool{true})
	mix := b.Gate(logic.And, "mix", nand, nor, one)
	mix2 := b.Gate(logic.Or, "mix2", xnor, not, buf, zero)
	b.MarkOutput(mix)
	b.MarkOutput(mix2)
	c := b.MustBuild()

	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Read: %v\n%s", err, sb.String())
	}
	for pat := 0; pat < 8; pat++ {
		in := []bool{pat&1 == 1, pat&2 == 2, pat&4 == 4}
		a := c.SimulateOutputs(in)
		bo := back.SimulateOutputs(in)
		for i := range a {
			if a[i] != bo[i] {
				t.Fatalf("pat %03b output %d differs\n%s", pat, i, sb.String())
			}
		}
	}
}

func TestWriteRejectsWideParity(t *testing.T) {
	b := logic.NewBuilder("wide")
	var ins []int
	for i := 0; i < 17; i++ {
		ins = append(ins, b.Input("x"+string(rune('a'+i))))
	}
	b.MarkOutput(b.Gate(logic.Xor, "p", ins...))
	c := b.MustBuild()
	var sb strings.Builder
	if err := Write(&sb, c); err == nil {
		t.Error("17-input XOR accepted")
	}
}
