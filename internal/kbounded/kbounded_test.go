package kbounded

import (
	"strings"
	"testing"

	"atpgeasy/internal/gen"
	"atpgeasy/internal/logic"
)

// rippleFullAdderPartition builds the canonical witness partition for a
// ripple-carry adder: one block per full adder (5 gates, 3 inputs).
func rippleFullAdderPartition(c *logic.Circuit) Partition {
	p := Partition{BlockOf: make([]int, c.NumNodes())}
	blocks := map[string]int{}
	for id := range c.Nodes {
		switch c.Nodes[id].Type {
		case logic.Input, logic.Const0, logic.Const1:
			p.BlockOf[id] = -1
			continue
		}
		name := c.Nodes[id].Name // fa<i>_<suffix>
		key := name[:strings.Index(name, "_")]
		b, ok := blocks[key]
		if !ok {
			b = p.NumBlocks
			blocks[key] = b
			p.NumBlocks++
		}
		p.BlockOf[id] = b
	}
	return p
}

// TestRippleAdderIsKBounded: the paper's canonical k-bounded example, with
// the full-adder partition as witness (k = 3).
func TestRippleAdderIsKBounded(t *testing.T) {
	c := gen.RippleAdder(8)
	p := rippleFullAdderPartition(c)
	if p.NumBlocks != 8 {
		t.Fatalf("blocks = %d, want 8 full adders", p.NumBlocks)
	}
	if err := Check(c, p, 3); err != nil {
		t.Errorf("full-adder partition rejected: %v", err)
	}
	// k = 2 is too tight for a full adder (3 inputs).
	if err := Check(c, p, 2); err == nil {
		t.Error("k=2 accepted for 3-input blocks")
	}
}

func TestPerGateTreeIsKBounded(t *testing.T) {
	// A tree circuit is k-bounded with every gate its own block.
	c := gen.KaryTree(3, 3)
	p := PerGate(c)
	if err := Check(c, p, 3); err != nil {
		t.Errorf("tree per-gate partition rejected: %v", err)
	}
}

func TestFigure4aPerGate(t *testing.T) {
	c := logic.Figure4a()
	if err := Check(c, PerGate(c), 2); err != nil {
		t.Errorf("fig4a (a tree) per-gate: %v", err)
	}
}

// TestMultiplierNotKBoundedPerGate: the array multiplier's global
// reconvergence defeats the per-gate partition.
func TestMultiplierNotKBoundedPerGate(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	if err := Check(c, PerGate(c), 3); err == nil {
		t.Error("per-gate partition of a multiplier accepted (expected reconvergent paths)")
	}
}

// TestXorPairReconvergence: a diamond a → {x, y} → z must be flagged.
func TestXorPairReconvergence(t *testing.T) {
	b := logic.NewBuilder("diamond")
	a := b.Input("a")
	c2 := b.Input("c")
	x := b.Gate(logic.And, "x", a, c2)
	y := b.Gate(logic.Or, "y", a, c2)
	z := b.Gate(logic.And, "z", x, y)
	b.MarkOutput(z)
	c := b.MustBuild()
	if err := Check(c, PerGate(c), 3); err == nil {
		t.Error("diamond accepted as reconvergence-free")
	}
	// Merging the whole diamond into one block makes it k-bounded (local
	// reconvergence is allowed).
	p := Partition{BlockOf: []int{-1, -1, 0, 0, 0}, NumBlocks: 1}
	if err := Check(c, p, 2); err != nil {
		t.Errorf("single-block diamond rejected: %v", err)
	}
}

func TestCheckErrors(t *testing.T) {
	c := logic.Figure4a()
	if err := Check(c, Partition{BlockOf: []int{0}}, 3); err == nil {
		t.Error("short partition accepted")
	}
	bad := PerGate(c)
	bad.BlockOf[c.Inputs[0]] = 0 // input assigned to a block
	if err := Check(c, bad, 3); err == nil {
		t.Error("input in block accepted")
	}
	bad2 := PerGate(c)
	bad2.BlockOf[c.MustLookup("f")] = 99
	if err := Check(c, bad2, 3); err == nil {
		t.Error("invalid block id accepted")
	}
}

func TestMultiNetPairFlagged(t *testing.T) {
	// Two nets from block {x,y} to block {z}: x→z and y→z where x,y merged.
	b := logic.NewBuilder("multi")
	a := b.Input("a")
	x := b.Gate(logic.Not, "x", a)
	y := b.Gate(logic.Not, "y", a)
	z := b.Gate(logic.And, "z", x, y)
	b.MarkOutput(z)
	c := b.MustBuild()
	p := Partition{BlockOf: []int{-1, 0, 0, 1}, NumBlocks: 2}
	if err := Check(c, p, 2); err == nil {
		t.Error("two parallel block nets accepted")
	}
}

func TestGreedyOnKBoundedFamilies(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    *logic.Circuit
		k    int
	}{
		{"tree", gen.KaryTree(2, 5), 2},
		{"cell1d", gen.CellularArray1D(12), 3},
		{"parity", gen.ParityTree(16), 2},
	} {
		p, ok := Greedy(tc.c, tc.k)
		if !ok {
			t.Errorf("%s: greedy failed to certify k-boundedness", tc.name)
			continue
		}
		if err := Check(tc.c, p, tc.k); err != nil {
			t.Errorf("%s: greedy partition invalid: %v", tc.name, err)
		}
	}
}

func TestGreedyDoesNotCertifyMultiplier(t *testing.T) {
	c := gen.ArrayMultiplier(4)
	if _, ok := Greedy(c, 3); ok {
		t.Error("greedy certified an array multiplier as 3-bounded")
	}
}

func TestBlockInputs(t *testing.T) {
	c := gen.RippleAdder(2)
	p := rippleFullAdderPartition(c)
	for b, n := range BlockInputs(c, p) {
		if n != 3 {
			t.Errorf("full adder block %d has %d inputs, want 3", b, n)
		}
	}
}
