// Package kbounded implements Fujiwara's k-bounded circuit class discussed
// in Section 3.2 of "Why is ATPG Easy?": a circuit is k-bounded if its
// gates can be partitioned into disjoint blocks such that each block has
// at most k inputs and the blocks form a DAG with no reconvergent paths
// (all reconvergence is local, confined within blocks). The paper's
// Theorem 5.1 shows every k-bounded circuit is log-bounded-width; the
// package supplies the partition checker and a heuristic partitioner used
// to demonstrate that theorem on the classic examples (ripple-carry
// adders, decoders, cellular arrays).
package kbounded

import (
	"fmt"

	"atpgeasy/internal/logic"
)

// Partition assigns every gate of a circuit to a block. Primary inputs
// and constant drivers are not part of any block (BlockOf = -1).
type Partition struct {
	// BlockOf maps node ID to block index, or -1 for non-gate nodes.
	BlockOf []int
	// NumBlocks is the number of blocks.
	NumBlocks int
}

// PerGate returns the finest partition: every gate its own block.
func PerGate(c *logic.Circuit) Partition {
	p := Partition{BlockOf: make([]int, c.NumNodes())}
	for id := range c.Nodes {
		switch c.Nodes[id].Type {
		case logic.Input, logic.Const0, logic.Const1:
			p.BlockOf[id] = -1
		default:
			p.BlockOf[id] = p.NumBlocks
			p.NumBlocks++
		}
	}
	return p
}

// BlockInputs returns, for each block, the number of distinct nets
// entering it from outside (primary inputs, constants, or gates of other
// blocks).
func BlockInputs(c *logic.Circuit, p Partition) []int {
	seen := make(map[[2]int]bool)
	counts := make([]int, p.NumBlocks)
	for id := range c.Nodes {
		b := p.BlockOf[id]
		if b < 0 {
			continue
		}
		for _, f := range c.Nodes[id].Fanin {
			if p.BlockOf[f] == b {
				continue
			}
			key := [2]int{b, f}
			if !seen[key] {
				seen[key] = true
				counts[b]++
			}
		}
	}
	return counts
}

// blockDAG returns the adjacency of the block DAG extended with one
// pseudo-node per primary input or constant driver (sources participate
// in reconvergence: a PI fanning out to two blocks that later merge is a
// reconvergent path pair). It also reports whether two distinct nets
// connect the same ordered node pair — trivially reconvergent signals.
// The returned node count is NumBlocks + number of pseudo-source nodes;
// pseudo-nodes are numbered from NumBlocks.
func blockDAG(c *logic.Circuit, p Partition) (adj [][]int, n int, multiEdge bool) {
	node := make([]int, c.NumNodes()) // node in the extended DAG per circuit node
	n = p.NumBlocks
	for id := range c.Nodes {
		if b := p.BlockOf[id]; b >= 0 {
			node[id] = b
		} else {
			node[id] = n
			n++
		}
	}
	// nets[from][to] = set of driver nets already seen for that edge.
	nets := make(map[[2]int]map[int]bool)
	for id := range c.Nodes {
		from := node[id]
		for _, reader := range c.Nodes[id].Fanout {
			to := node[reader]
			if to == from {
				continue
			}
			key := [2]int{from, to}
			if nets[key] == nil {
				nets[key] = make(map[int]bool)
			}
			nets[key][id] = true
		}
	}
	adj = make([][]int, n)
	for e, drivers := range nets {
		adj[e[0]] = append(adj[e[0]], e[1])
		if len(drivers) > 1 {
			multiEdge = true
		}
	}
	return adj, n, multiEdge
}

// topoBlocks topologically sorts the block DAG; ok is false on a cycle
// (the partition is then not convex and invalid).
func topoBlocks(adj [][]int, n int) (order []int, ok bool) {
	indeg := make([]int, n)
	for _, outs := range adj {
		for _, v := range outs {
			indeg[v]++
		}
	}
	var queue []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order, len(order) == n
}

// hasReconvergence reports whether the block DAG has two distinct directed
// paths between some pair of blocks: some block has two children whose
// reachability sets intersect.
func hasReconvergence(adj [][]int, n int) bool {
	order, ok := topoBlocks(adj, n)
	if !ok {
		return true // cycles count as invalid/reconvergent
	}
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	// Process in reverse topological order so children are done first.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		r := make([]uint64, words)
		r[v/64] |= 1 << uint(v%64)
		for _, w := range adj[v] {
			for j := 0; j < words; j++ {
				r[j] |= reach[w][j]
			}
		}
		reach[v] = r
	}
	for v := 0; v < n; v++ {
		children := adj[v]
		for i := 0; i < len(children); i++ {
			for j := i + 1; j < len(children); j++ {
				a, b := reach[children[i]], reach[children[j]]
				if a == nil || b == nil {
					continue
				}
				for w := 0; w < words; w++ {
					if a[w]&b[w] != 0 {
						return true
					}
				}
			}
		}
	}
	return false
}

// Check validates that the partition witnesses k-boundedness: every gate
// belongs to a block, each block has at most k inputs, the block DAG is
// acyclic, and it has no reconvergent paths.
func Check(c *logic.Circuit, p Partition, k int) error {
	if len(p.BlockOf) != c.NumNodes() {
		return fmt.Errorf("kbounded: partition covers %d of %d nodes", len(p.BlockOf), c.NumNodes())
	}
	for id := range c.Nodes {
		b := p.BlockOf[id]
		switch c.Nodes[id].Type {
		case logic.Input, logic.Const0, logic.Const1:
			if b != -1 {
				return fmt.Errorf("kbounded: non-gate node %q assigned to block %d", c.Nodes[id].Name, b)
			}
		default:
			if b < 0 || b >= p.NumBlocks {
				return fmt.Errorf("kbounded: gate %q has invalid block %d", c.Nodes[id].Name, b)
			}
		}
	}
	for b, n := range BlockInputs(c, p) {
		if n > k {
			return fmt.Errorf("kbounded: block %d has %d inputs > k = %d", b, n, k)
		}
	}
	adj, n, multi := blockDAG(c, p)
	if _, ok := topoBlocks(adj, n); !ok {
		return fmt.Errorf("kbounded: block graph has a cycle (partition not convex)")
	}
	if multi {
		return fmt.Errorf("kbounded: two blocks connected by multiple nets (reconvergent)")
	}
	if hasReconvergence(adj, n) {
		return fmt.Errorf("kbounded: block DAG has reconvergent paths")
	}
	return nil
}

// Greedy attempts to construct a k-bounded partition by growing blocks
// over fanout-free regions: a gate joins its single-fanout driver's block
// when the merged block still has at most k inputs. It returns the
// partition and whether it certifies k-boundedness (Check passes). A
// false result does not prove the circuit is not k-bounded — the
// partition-existence problem is not solved exactly here — but the greedy
// witness succeeds on the classic k-bounded families.
func Greedy(c *logic.Circuit, k int) (Partition, bool) {
	p := PerGate(c)
	// Union-find over blocks seeded by the per-gate partition.
	parent := make([]int, p.NumBlocks)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	blockOf := func(id int) int {
		if p.BlockOf[id] < 0 {
			return -1
		}
		return find(p.BlockOf[id])
	}
	inputsOf := func(root int) int {
		seen := map[int]bool{}
		for id := range c.Nodes {
			if blockOf(id) != root {
				continue
			}
			for _, f := range c.Nodes[id].Fanin {
				if blockOf(f) != root && !seen[f] {
					seen[f] = true
				}
			}
		}
		return len(seen)
	}
	// Merge gates into their single-fanout drivers, in reverse topological
	// order so chains collapse.
	for id := c.NumNodes() - 1; id >= 0; id-- {
		n := &c.Nodes[id]
		if p.BlockOf[id] < 0 {
			continue
		}
		for _, f := range n.Fanin {
			if p.BlockOf[f] < 0 || len(c.Nodes[f].Fanout) != 1 {
				continue
			}
			a, b := blockOf(id), blockOf(f)
			if a == b {
				continue
			}
			// Tentatively merge and check the input bound.
			parent[b] = a
			if inputsOf(a) > k {
				parent[b] = b // undo
			}
		}
	}
	// Renumber.
	remap := map[int]int{}
	out := Partition{BlockOf: make([]int, c.NumNodes())}
	for id := range c.Nodes {
		b := blockOf(id)
		if b < 0 {
			out.BlockOf[id] = -1
			continue
		}
		nb, ok := remap[b]
		if !ok {
			nb = out.NumBlocks
			remap[b] = nb
			out.NumBlocks++
		}
		out.BlockOf[id] = nb
	}
	return out, Check(c, out, k) == nil
}
