package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Flight recorder: a fixed-size lock-free ring of recent events, always
// on at negligible cost, dumped when something goes wrong (a fault
// panic, a watchdog shrink, SIGINT) so a crash deep into a long run is
// diagnosable after the fact. Writers claim a slot with one atomic add
// and guard the copy with a per-slot spinlock; a writer that finds the
// slot briefly held by a lapped reader skips the record rather than
// block — the recorder trades completeness for never slowing the engine.

// DefaultRingSize is the flight-recorder capacity the engine uses when
// the caller does not supply a ring of its own.
const DefaultRingSize = 512

// RingEvent is one flight-recorder entry. Kind names the event (the
// engine records "chunk", "solve", "flush", "rpt", "stall", "tier",
// "shrink", "panic"); A and B are two event-specific integer arguments
// (fault index and status for a solve, chunk bounds for a claim, ...)
// kept as plain ints so recording never allocates.
type RingEvent struct {
	Seq    uint64 `json:"seq"`
	TNS    int64  `json:"t_ns"` // since the ring's epoch (its creation)
	DurNS  int64  `json:"dur_ns,omitempty"`
	Worker int32  `json:"worker"`
	Kind   string `json:"kind"`
	A      int64  `json:"a,omitempty"`
	B      int64  `json:"b,omitempty"`
}

// ringSlot is one ring cell. lock is a CAS spinlock held only for the
// few stores of a copy; seq is the claim number of the event currently
// stored (0 = empty).
type ringSlot struct {
	lock atomic.Uint32
	ev   RingEvent
}

// Ring is the fixed-size lock-free flight recorder. The zero value is
// unusable; create one with NewRing. A nil *Ring discards records, so
// instrumented code can call Record unconditionally.
type Ring struct {
	slots []ringSlot
	mask  uint64
	seq   atomic.Uint64
	epoch time.Time
}

// NewRing returns a recorder holding the most recent n events (rounded
// up to a power of two, minimum 16).
func NewRing(n int) *Ring {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Ring{slots: make([]ringSlot, size), mask: uint64(size - 1), epoch: time.Now()}
}

// Record appends one event. Lock-free and allocation-free: one atomic
// add claims a slot, a CAS guards the copy, and a slot found locked (a
// concurrent Snapshot, or a writer a full lap ahead) drops the event
// instead of spinning.
func (r *Ring) Record(kind string, worker int, a, b, durNS int64) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	slot := &r.slots[seq&r.mask]
	if !slot.lock.CompareAndSwap(0, 1) {
		return // contended: losing a stale event beats blocking the engine
	}
	slot.ev = RingEvent{
		Seq: seq, TNS: time.Since(r.epoch).Nanoseconds(), DurNS: durNS,
		Worker: int32(worker), Kind: kind, A: a, B: b,
	}
	slot.lock.Store(0)
}

// Recorded returns the total number of events recorded (including those
// already overwritten).
func (r *Ring) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Snapshot copies the surviving events, oldest first. Concurrent Records
// keep running; a slot mid-write is skipped.
func (r *Ring) Snapshot() []RingEvent {
	if r == nil {
		return nil
	}
	out := make([]RingEvent, 0, len(r.slots))
	for i := range r.slots {
		slot := &r.slots[i]
		if !slot.lock.CompareAndSwap(0, 1) {
			continue
		}
		ev := slot.ev
		slot.lock.Store(0)
		if ev.Seq != 0 {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump renders the most recent events (all of them when max <= 0) as
// human-readable lines, one per event — the post-mortem view written to
// stderr on a panic or SIGINT.
func (r *Ring) Dump(w io.Writer, max int) {
	if r == nil {
		return
	}
	evs := r.Snapshot()
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:]
	}
	fmt.Fprintf(w, "flight recorder: %d of %d recorded events\n", len(evs), r.Recorded())
	for _, ev := range evs {
		fmt.Fprintf(w, "  [%d] +%.3fms w%d %-6s a=%d b=%d", ev.Seq,
			float64(ev.TNS)/1e6, ev.Worker, ev.Kind, ev.A, ev.B)
		if ev.DurNS > 0 {
			fmt.Fprintf(w, " dur=%.3fms", float64(ev.DurNS)/1e6)
		}
		fmt.Fprintln(w)
	}
}
