package obs

import (
	"sync/atomic"
	"time"
)

// Span tracing: a Tracer mints hierarchical spans — run → phase →
// dispatch-chunk/RPT-batch/retry-tier → fault — and emits each finished
// span to a Trace sink as one `"kind":"span"` JSONL record carrying its
// ID and its parent's ID, so consumers (cmd/atpgreport) can rebuild the
// tree and attribute wall time to the engine's real control flow. A span
// is a small value: Start costs one atomic add, End one timestamp and
// one Trace.Emit. The zero Span (and a nil Tracer) is inert, so
// instrumented code needs no nil checks of its own.

// SpanContext identifies a span and its parent for hierarchical tracing.
// IDs are unique within one Tracer; Parent 0 means a root span.
type SpanContext struct {
	ID     uint64
	Parent uint64
}

// SpanRecord is the JSONL form of a finished span.
type SpanRecord struct {
	Kind   string `json:"kind"` // always "span"
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Detail is an optional human label (e.g. the fault name or retry
	// tier) and Items an optional work count (chunk size, batch
	// detections, solver effort) — both set by the instrumentation site.
	Detail string `json:"detail,omitempty"`
	Worker int    `json:"worker,omitempty"`
	Items  int64  `json:"items,omitempty"`
	// StartNS is the span's start relative to the tracer's epoch.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// Tracer mints span IDs off one atomic counter and emits finished spans
// to a Trace sink. Safe for concurrent use; a nil Tracer is inert.
type Tracer struct {
	sink  *Trace
	epoch time.Time
	ids   atomic.Uint64
}

// NewTracer returns a tracer emitting to sink, with its epoch (the zero
// point of every StartNS) set to now.
func NewTracer(sink *Trace) *Tracer {
	return &Tracer{sink: sink, epoch: time.Now()}
}

// Span is one in-flight span. Set Detail/Worker/Items freely between
// Start and End; End emits the record. The zero Span is inert.
type Span struct {
	tr    *Tracer
	ctx   SpanContext
	name  string
	start time.Duration // since tracer epoch

	Detail string
	Worker int
	Items  int64
}

// Start begins a span under parent (the zero SpanContext makes a root).
func (t *Tracer) Start(name string, parent SpanContext) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		tr:    t,
		ctx:   SpanContext{ID: t.ids.Add(1), Parent: parent.ID},
		name:  name,
		start: time.Since(t.epoch),
	}
}

// Observed emits an already-measured span ending now with duration dur —
// for sites that detect an interval only at its end (e.g. a commit
// frontier noticing how long it was stalled). Returns the new span's
// context so children can still attach.
func (t *Tracer) Observed(name string, parent SpanContext, dur time.Duration, worker int) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	now := time.Since(t.epoch)
	ctx := SpanContext{ID: t.ids.Add(1), Parent: parent.ID}
	_ = t.sink.Emit(SpanRecord{
		Kind: "span", ID: ctx.ID, Parent: ctx.Parent, Name: name,
		Worker: worker, StartNS: int64(now - dur), DurNS: int64(dur),
	})
	return ctx
}

// Context returns the span's identity, for starting children.
func (s *Span) Context() SpanContext { return s.ctx }

// Active reports whether the span will emit on End — false for the zero
// Span and after End. Lets call sites skip work (e.g. formatting Detail)
// that only feeds the record.
func (s *Span) Active() bool { return s.tr != nil }

// End emits the span record. Safe to call on the zero Span and more than
// once (only the first End emits).
func (s *Span) End() {
	if s.tr == nil {
		return
	}
	now := time.Since(s.tr.epoch)
	_ = s.tr.sink.Emit(SpanRecord{
		Kind: "span", ID: s.ctx.ID, Parent: s.ctx.Parent, Name: s.name,
		Detail: s.Detail, Worker: s.Worker, Items: s.Items,
		StartNS: int64(s.start), DurNS: int64(now - s.start),
	})
	s.tr = nil
}
