package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanEmitsRecord(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tc := NewTracer(tr)

	root := tc.Start("run", SpanContext{})
	root.Items = 42
	child := tc.Start("phase", root.Context())
	child.Detail = "rpt"
	child.Worker = 3
	child.End()
	child.End() // second End must not double-emit
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []SpanRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// Children end first, so the child record leads.
	if recs[0].Kind != "span" || recs[0].Name != "phase" || recs[0].Detail != "rpt" || recs[0].Worker != 3 {
		t.Errorf("child record mismatch: %+v", recs[0])
	}
	if recs[1].Name != "run" || recs[1].Parent != 0 || recs[1].Items != 42 {
		t.Errorf("root record mismatch: %+v", recs[1])
	}
	if recs[0].Parent != recs[1].ID {
		t.Errorf("child parent %d != root id %d", recs[0].Parent, recs[1].ID)
	}
	if recs[0].DurNS < 0 || recs[0].StartNS < recs[1].StartNS {
		t.Errorf("child timing inconsistent: %+v vs root %+v", recs[0], recs[1])
	}
}

func TestSpanZeroValueAndNilTracerInert(t *testing.T) {
	var s Span
	if s.Active() {
		t.Error("zero Span reports Active")
	}
	s.End() // must not panic

	var tc *Tracer
	s2 := tc.Start("x", SpanContext{})
	if s2.Active() {
		t.Error("nil-tracer span reports Active")
	}
	s2.End()
	if ctx := tc.Observed("y", SpanContext{}, 0, 0); ctx.ID != 0 {
		t.Error("nil tracer minted an ID")
	}
}

func TestTracerObserved(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tc := NewTracer(tr)
	parent := tc.Start("run", SpanContext{})
	ctx := tc.Observed("stall", parent.Context(), 1000, 2)
	if ctx.ID == 0 || ctx.Parent != parent.Context().ID {
		t.Fatalf("observed context %+v", ctx)
	}
	parent.End()
	tr.Close()
	var r SpanRecord
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &r); err != nil {
		t.Fatal(err)
	}
	if r.Name != "stall" || r.DurNS != 1000 || r.Worker != 2 {
		t.Errorf("observed record %+v", r)
	}
}

func TestTracerConcurrentIDsUnique(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tc := NewTracer(tr)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s := tc.Start("fault", SpanContext{})
				s.End()
			}
		}()
	}
	wg.Wait()
	tr.Close()
	seen := make(map[uint64]bool)
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad line: %v", err)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d spans, want %d", len(seen), workers*per)
	}
}

func TestRingRecordAndSnapshot(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 40; i++ {
		r.Record("solve", i%4, int64(i), 1, 10)
	}
	if got := r.Recorded(); got != 40 {
		t.Fatalf("Recorded = %d, want 40", got)
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("snapshot kept %d events, want 16 (capacity)", len(evs))
	}
	for k := 1; k < len(evs); k++ {
		if evs[k].Seq <= evs[k-1].Seq {
			t.Fatalf("snapshot not seq-ordered at %d: %d <= %d", k, evs[k].Seq, evs[k-1].Seq)
		}
	}
	// The survivors are the most recent claims.
	if evs[len(evs)-1].A != 39 {
		t.Errorf("newest event A = %d, want 39", evs[len(evs)-1].A)
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Record("x", 0, 0, 0, 0)
	if r.Snapshot() != nil || r.Recorded() != 0 {
		t.Error("nil ring not inert")
	}
	r.Dump(&bytes.Buffer{}, 0)
}

func TestRingConcurrentWriters(t *testing.T) {
	r := NewRing(64)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record("chunk", w, int64(i), 0, 0)
				if i%64 == 0 {
					r.Snapshot() // concurrent reads must not race writers
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Recorded(); got != workers*per {
		t.Fatalf("Recorded = %d, want %d", got, workers*per)
	}
	evs := r.Snapshot()
	if len(evs) == 0 || len(evs) > 64 {
		t.Fatalf("snapshot size %d out of range", len(evs))
	}
}

func TestRingDump(t *testing.T) {
	r := NewRing(16)
	r.Record("panic", 2, 7, 0, 1500)
	var buf bytes.Buffer
	r.Dump(&buf, 8)
	out := buf.String()
	if !strings.Contains(out, "flight recorder") || !strings.Contains(out, "panic") || !strings.Contains(out, "a=7") {
		t.Errorf("dump output missing fields:\n%s", out)
	}
}
